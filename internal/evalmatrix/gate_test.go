package evalmatrix

import (
	"os"
	"strings"
	"testing"

	"repro/internal/inject"
)

// gridPath is the checked-in grid at the repository root.
const gridPath = "../../EVAL_matrix.json"

// TestMatrixRegressionGate is the detection-quality gate: it loads the
// checked-in EVAL_matrix.json, recomputes the exact same grid (the
// options ride inside the document), and fails if any cell's recall
// dropped — or its false-positive rate rose — beyond the gate tolerances.
// Same-seed same-code runs are byte-identical, so a red gate means a code
// change altered detection quality; if the change is intentional, refresh
// the grid with `make eval-matrix` and commit it alongside the change.
func TestMatrixRegressionGate(t *testing.T) {
	data, err := os.ReadFile(gridPath)
	if err != nil {
		t.Fatalf("read checked-in grid (regenerate with `make eval-matrix`): %v", err)
	}
	base, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]inject.Kind, len(base.Kinds))
	for i, k := range base.Kinds {
		kinds[i] = inject.Kind(k)
	}
	fresh, err := Run(Options{
		Seed:        base.Seed,
		TrainingN:   base.TrainingN,
		Victims:     base.Victims,
		PerVictim:   base.PerVictim,
		Populations: base.Populations,
		Configs:     base.Configs,
		Kinds:       kinds,
	})
	if err != nil {
		t.Fatal(err)
	}
	if violations := CompareForRegressions(base, fresh); len(violations) > 0 {
		t.Errorf("detection quality regressed in %d cell(s) vs checked-in %s:\n  %s\n(if intentional, refresh with `make eval-matrix` and commit the new grid)",
			len(violations), gridPath, strings.Join(violations, "\n  "))
	}
}
