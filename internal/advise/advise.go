// Package advise turns anomaly warnings into concrete remediation advice.
//
// The paper's conclusion names "assist[ing] the process of
// auto-configuration" as a natural application of the information EnCore
// integrates: a violated rule does not just say *that* something is wrong,
// its template says *what relation must be restored*, and the training
// histograms say *which values the fleet considers normal*. This package
// renders that into actionable suggestions — "chown /data/mysql to mysql",
// "lower upload_max_filesize below post_max_size (8M)", "create the
// missing directory /usr/lib/php/modules".
package advise

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/detect"
	"repro/internal/stats"
)

// Advice is one remediation suggestion derived from a warning.
type Advice struct {
	// Warning is the anomaly the advice addresses.
	Warning *detect.Warning
	// Action is the suggested remediation, phrased as an imperative.
	Action string
	// Confidence grades how mechanical the fix is: "high" for fixes fully
	// determined by the violated relation, "medium" for fixes that need a
	// human to choose among alternatives.
	Confidence string
}

// Advisor derives remediation advice using the training view's value
// distributions.
type Advisor struct {
	Training detect.TrainingView
}

// New returns an advisor over the detector's training view.
func New(training detect.TrainingView) *Advisor {
	return &Advisor{Training: training}
}

// ForReport derives advice for every warning in the report, in rank order.
// Warnings with no mechanical remediation are skipped.
func (a *Advisor) ForReport(r *detect.Report) []Advice {
	var out []Advice
	for _, w := range r.Warnings {
		if adv, ok := a.ForWarning(w); ok {
			out = append(out, adv)
		}
	}
	return out
}

// ForWarning derives advice for one warning; ok=false when no mechanical
// suggestion exists.
func (a *Advisor) ForWarning(w *detect.Warning) (Advice, bool) {
	switch w.Kind {
	case detect.KindName:
		return a.adviseName(w)
	case detect.KindCorrelation:
		return a.adviseCorrelation(w)
	case detect.KindType:
		return a.adviseType(w)
	case detect.KindSuspicious:
		return a.adviseSuspicious(w)
	default:
		return Advice{}, false
	}
}

func (a *Advisor) adviseName(w *detect.Warning) (Advice, bool) {
	// The detector embeds the nearest-name suggestion in the message.
	if i := strings.Index(w.Message, "did you mean "); i >= 0 {
		suggestion := strings.Trim(strings.TrimSuffix(w.Message[i+len("did you mean "):], "?)"), "\"")
		return Advice{
			Warning:    w,
			Action:     fmt.Sprintf("rename entry %s to %s", w.Attr, suggestion),
			Confidence: "high",
		}, true
	}
	return Advice{
		Warning:    w,
		Action:     fmt.Sprintf("remove or verify the unrecognized entry %s", w.Attr),
		Confidence: "medium",
	}, true
}

func (a *Advisor) adviseCorrelation(w *detect.Warning) (Advice, bool) {
	if w.Rule == nil {
		return Advice{}, false
	}
	r := w.Rule
	switch r.Template {
	case "owner":
		return Advice{
			Warning:    w,
			Action:     fmt.Sprintf("chown the path in %s to the user configured in %s", r.AttrA, r.AttrB),
			Confidence: "high",
		}, true
	case "eq", "match-one":
		return Advice{
			Warning:    w,
			Action:     fmt.Sprintf("make %s agree with %s (they name the same object on healthy systems)", r.AttrA, r.AttrB),
			Confidence: "high",
		}, true
	case "size-lt", "num-lt":
		return Advice{
			Warning:    w,
			Action:     fmt.Sprintf("lower %s below %s (or raise the latter)", r.AttrA, r.AttrB),
			Confidence: "high",
		}, true
	case "concat":
		return Advice{
			Warning:    w,
			Action:     fmt.Sprintf("install the file named by %s under the root in %s, or fix the relative path", r.AttrB, r.AttrA),
			Confidence: "medium",
		}, true
	case "user-group":
		return Advice{
			Warning:    w,
			Action:     fmt.Sprintf("add the user in %s to the group in %s", r.AttrA, r.AttrB),
			Confidence: "high",
		}, true
	case "not-access":
		return Advice{
			Warning:    w,
			Action:     fmt.Sprintf("tighten permissions so the path in %s is not accessible to the user in %s", r.AttrA, r.AttrB),
			Confidence: "high",
		}, true
	case "subnet":
		return Advice{
			Warning:    w,
			Action:     fmt.Sprintf("move the address in %s into the subnet of %s", r.AttrA, r.AttrB),
			Confidence: "medium",
		}, true
	case "bool-implies":
		return Advice{
			Warning:    w,
			Action:     fmt.Sprintf("review the interaction between %s and %s (enabled together on healthy systems)", r.AttrA, r.AttrB),
			Confidence: "medium",
		}, true
	default:
		return Advice{
			Warning:    w,
			Action:     fmt.Sprintf("restore the relation %s between %s and %s", r.Spec, r.AttrA, r.AttrB),
			Confidence: "medium",
		}, true
	}
}

func (a *Advisor) adviseType(w *detect.Warning) (Advice, bool) {
	action := fmt.Sprintf("value %q does not verify as the expected type; ", w.Value)
	if strings.Contains(w.Message, "semantic verification") {
		action += fmt.Sprintf("create the missing object or point %s at an existing one", w.Attr)
	} else {
		action += fmt.Sprintf("rewrite %s in the expected format", w.Attr)
	}
	if common, ok := a.commonValue(w.Attr); ok {
		action += fmt.Sprintf(" (most systems use %q)", common)
	}
	return Advice{Warning: w, Action: action, Confidence: "medium"}, true
}

func (a *Advisor) adviseSuspicious(w *detect.Warning) (Advice, bool) {
	common, ok := a.commonValue(w.Attr)
	if !ok {
		return Advice{}, false
	}
	hist := a.Training.Histogram(w.Attr)
	if len(hist) == 1 {
		return Advice{
			Warning:    w,
			Action:     fmt.Sprintf("every healthy system sets %s to %q; restore it unless the deviation is intentional", w.Attr, common),
			Confidence: "high",
		}, true
	}
	alternatives := make([]string, 0, len(hist))
	for v := range hist {
		alternatives = append(alternatives, v)
	}
	sort.Strings(alternatives)
	const maxShown = 4
	if len(alternatives) > maxShown {
		alternatives = alternatives[:maxShown]
	}
	return Advice{
		Warning:    w,
		Action:     fmt.Sprintf("healthy systems set %s to one of %s", w.Attr, strings.Join(quoteAll(alternatives), ", ")),
		Confidence: "medium",
	}, true
}

// commonValue returns the most frequent training value of the attribute.
func (a *Advisor) commonValue(attr string) (string, bool) {
	hist := a.Training.Histogram(attr)
	if len(hist) == 0 {
		return "", false
	}
	var values []string
	for v, c := range hist {
		for i := 0; i < c; i++ {
			values = append(values, v)
		}
	}
	v, _, ok := stats.MajorityValue(values)
	return v, ok
}

func quoteAll(vs []string) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = fmt.Sprintf("%q", v)
	}
	return out
}

// Render formats advice as a numbered list.
func Render(advice []Advice) string {
	var b strings.Builder
	for i, adv := range advice {
		fmt.Fprintf(&b, "%2d. [%s confidence] %s\n", i+1, adv.Confidence, adv.Action)
	}
	return b.String()
}
