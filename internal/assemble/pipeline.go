package assemble

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/confparse"
	"repro/internal/conftypes"
	"repro/internal/dataset"
	"repro/internal/sysimage"
	"repro/internal/telemetry"
)

// parsedImage pairs an image with its parsed configuration files.
type parsedImage struct {
	img   *sysimage.Image
	files []*confparse.File
}

// attrName builds the canonical column name for an entry argument.
// Single-value entries keep their entry name; multi-argument entries get
// /argN positions ("LoadModule/arg2"); bare flags get the entry name with
// the implicit value "on".
func attrName(app string, e *confparse.Entry, argIdx, argCount int) string {
	base := app + ":" + e.Name()
	if argCount <= 1 {
		return base
	}
	return fmt.Sprintf("%s/arg%d", base, argIdx+1)
}

// nameValue is one (attribute name, value) contribution of an entry.
type nameValue struct{ Name, Value string }

// entryValues returns the (attribute name, value) pairs an entry
// contributes.
func entryValues(app string, e *confparse.Entry) []nameValue {
	if len(e.Values) == 0 {
		return []nameValue{{attrName(app, e, 0, 1), "on"}}
	}
	out := make([]nameValue, 0, len(e.Values))
	for i, v := range e.Values {
		out = append(out, nameValue{attrName(app, e, i, len(e.Values)), v})
	}
	return out
}

// parseOne parses every configuration file of a single image. Errors carry
// the image ID (confparse adds the app and file path).
func parseOne(img *sysimage.Image) (parsedImage, error) {
	pi := parsedImage{img: img}
	for _, cf := range img.ConfigFiles {
		f, err := confparse.Parse(cf.App, cf.Path, cf.Content)
		if err != nil {
			return parsedImage{}, fmt.Errorf("assemble: image %s: %w", img.ID, err)
		}
		pi.files = append(pi.files, f)
	}
	return pi, nil
}

// parseImages is the sequential parse loop; each image's parse latency
// feeds the per-image histogram.
func (a *Assembler) parseImages(images []*sysimage.Image) ([]parsedImage, error) {
	parsed := make([]parsedImage, 0, len(images))
	for _, img := range images {
		start := time.Now()
		pi, err := parseOne(img)
		a.Telemetry.ObserveDur(telemetry.HistImageParse, time.Since(start))
		if err != nil {
			telemetry.LoggerOr(a.Log).Warn("image parse failed", "image", img.ID, "err", err)
			return nil, err
		}
		parsed = append(parsed, pi)
	}
	return parsed, nil
}

// workerCount resolves the assembler's pool size for n independent work
// items, mirroring internal/rules: 0 means NumCPU, and the pool never
// exceeds the number of items.
func (a *Assembler) workerCount(n int) int {
	w := a.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > n && n > 0 {
		w = n
	}
	return w
}

// forEachIndexed runs fn(i, worker) for i in [0, n) on a bounded worker
// pool; worker identifies the executing pool slot so instrumentation can
// attribute work to timelines. fn must write only to its own index of any
// shared slice.
func forEachIndexed(n, workers int, fn func(i, worker int)) {
	if n == 0 {
		return
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i, 0)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range next {
				fn(i, w)
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// parseImagesParallel parses every image on the worker pool. Results stay
// in image order, and the error returned is the one the sequential path
// would have hit first (lowest image index), so both paths are
// observationally identical. Each image's parse is a child span of parent
// attributed to its pool worker, and its latency feeds the per-image
// parse histogram.
func (a *Assembler) parseImagesParallel(images []*sysimage.Image, workers int, parent *telemetry.Span) ([]parsedImage, error) {
	parsed := make([]parsedImage, len(images))
	errs := make([]error, len(images))
	forEachIndexed(len(images), workers, func(i, w int) {
		sp := parent.StartChild("assemble.image",
			telemetry.A("image", images[i].ID), telemetry.A("worker", strconv.Itoa(w)))
		start := time.Now()
		parsed[i], errs[i] = parseOne(images[i])
		a.Telemetry.ObserveDur(telemetry.HistImageParse, time.Since(start))
		sp.End()
		if errs[i] != nil {
			sp.Logger(a.Log).Warn("image parse failed", "image", images[i].ID, "err", errs[i])
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return parsed, nil
}

// countFiles tallies the configuration files across images for telemetry.
func countFiles(images []*sysimage.Image) int64 {
	var n int64
	for _, img := range images {
		n += int64(len(img.ConfigFiles))
	}
	return n
}

// AssembleTraining builds the training dataset from a set of configured
// images: it parses every configuration file, infers one semantic type per
// attribute from all samples across the training set, and augments each row
// with environment attributes.
//
// Parsing, sample extraction, type inference, and row construction all run
// on a bounded worker pool (Workers; 0 = NumCPU), with a deterministic
// merge: the produced dataset — attribute order, inferred types, augmented
// columns, row contents — is identical to AssembleTrainingSerial's.
func (a *Assembler) AssembleTraining(images []*sysimage.Image) (*dataset.Dataset, error) {
	workers := a.workerCount(len(images))
	if workers <= 1 {
		return a.AssembleTrainingSerial(images)
	}

	root := a.Telemetry.StartSpan("assemble.training",
		telemetry.A("images", strconv.Itoa(len(images))),
		telemetry.A("workers", strconv.Itoa(workers)))
	defer root.End()

	parseSpan := root.StartChild("assemble.parse")
	stopParse := a.Telemetry.StartStage(telemetry.StageAssembleParse)
	parsed, err := a.parseImagesParallel(images, workers, parseSpan)
	stopParse()
	parseSpan.End()
	if err != nil {
		return nil, err
	}
	a.Telemetry.Add(telemetry.CounterImagesParsed, int64(len(images)))
	a.Telemetry.Add(telemetry.CounterFilesParsed, countFiles(images))

	// Pass 1: extract each image's (attribute, value) stream concurrently,
	// then merge in image order — first-seen attribute order and per-
	// attribute sample order come out exactly as the sequential single
	// loop produces them.
	inferSpan := root.StartChild("assemble.infer")
	stopInfer := a.Telemetry.StartStage(telemetry.StageAssembleInfer)
	extracted := make([][]nameValue, len(parsed))
	forEachIndexed(len(parsed), workers, func(i, _ int) {
		extracted[i] = extractPairs(parsed[i])
	})
	samples := make(map[string][]conftypes.Sample)
	var order []string
	for i, pairs := range extracted {
		img := parsed[i].img
		for _, nv := range pairs {
			if _, seen := samples[nv.Name]; !seen {
				order = append(order, nv.Name)
			}
			samples[nv.Name] = append(samples[nv.Name], conftypes.Sample{Value: nv.Value, Image: img})
		}
	}

	// Entry-level inference is independent per attribute.
	inferred := make([]conftypes.Type, len(order))
	forEachIndexed(len(order), workers, func(i, _ int) {
		inferred[i] = a.Inferencer.InferEntryNamed(order[i], samples[order[i]])
	})
	types := make(map[string]conftypes.Type, len(order))
	for i, name := range order {
		types[name] = inferred[i]
	}
	stopInfer()
	inferSpan.SetAttr("attributes", strconv.Itoa(len(order)))
	inferSpan.End()

	// Pass 2: build each row's attribute operations concurrently (the
	// augmenters' environment lookups dominate here), then replay them
	// into the dataset in image order so dynamic column declaration is
	// byte-identical to the sequential path.
	rowsSpan := root.StartChild("assemble.rows")
	stopRows := a.Telemetry.StartStage(telemetry.StageAssembleRows)
	recorded := make([]recordedRow, len(parsed))
	forEachIndexed(len(parsed), workers, func(i, w int) {
		sp := rowsSpan.StartChild("assemble.row",
			telemetry.A("image", parsed[i].img.ID), telemetry.A("worker", strconv.Itoa(w)))
		a.emitRow(&recorded[i], parsed[i], types)
		sp.End()
	})
	d := dataset.New()
	for _, name := range order {
		d.DeclareAttr(name, types[name], false)
	}
	for i, pi := range parsed {
		row := d.NewRow(pi.img.ID)
		recorded[i].replay(d, row)
	}
	stopRows()
	rowsSpan.End()
	a.Telemetry.Add(telemetry.CounterAttrsDeclared, int64(len(d.Attributes())))
	return d, nil
}

// AssembleTrainingSerial is the single-threaded reference implementation of
// AssembleTraining, kept as the equivalence oracle for the parallel path
// and for the parallelism ablation benchmark.
func (a *Assembler) AssembleTrainingSerial(images []*sysimage.Image) (*dataset.Dataset, error) {
	root := a.Telemetry.StartSpan("assemble.training",
		telemetry.A("images", strconv.Itoa(len(images))),
		telemetry.A("workers", "1"))
	defer root.End()
	stopParse := a.Telemetry.StartStage(telemetry.StageAssembleParse)
	parsed, err := a.parseImages(images)
	stopParse()
	if err != nil {
		return nil, err
	}
	a.Telemetry.Add(telemetry.CounterImagesParsed, int64(len(images)))
	a.Telemetry.Add(telemetry.CounterFilesParsed, countFiles(images))

	// Pass 1: collect samples per attribute for entry-level type
	// inference.
	stopInfer := a.Telemetry.StartStage(telemetry.StageAssembleInfer)
	samples := make(map[string][]conftypes.Sample)
	var order []string
	for _, pi := range parsed {
		for _, nv := range extractPairs(pi) {
			if _, seen := samples[nv.Name]; !seen {
				order = append(order, nv.Name)
			}
			samples[nv.Name] = append(samples[nv.Name], conftypes.Sample{Value: nv.Value, Image: pi.img})
		}
	}
	types := make(map[string]conftypes.Type, len(samples))
	for name, ss := range samples {
		types[name] = a.Inferencer.InferEntryNamed(name, ss)
	}
	stopInfer()

	// Pass 2: build the dataset with augmentation.
	stopRows := a.Telemetry.StartStage(telemetry.StageAssembleRows)
	d := dataset.New()
	for _, name := range order {
		d.DeclareAttr(name, types[name], false)
	}
	for _, pi := range parsed {
		row := d.NewRow(pi.img.ID)
		a.emitRow(directSink{d: d, row: row}, pi, types)
	}
	stopRows()
	a.Telemetry.Add(telemetry.CounterAttrsDeclared, int64(len(d.Attributes())))
	return d, nil
}

// extractPairs flattens one parsed image into its ordered (attribute,
// value) stream.
func extractPairs(pi parsedImage) []nameValue {
	var out []nameValue
	for _, f := range pi.files {
		for _, e := range f.Entries {
			out = append(out, entryValues(f.App, e)...)
		}
	}
	return out
}

// AssembleTarget assembles a single target image using the attribute types
// learned during training. Attributes unseen in training are inferred from
// the target's own context.
func (a *Assembler) AssembleTarget(img *sysimage.Image, training *dataset.Dataset) (*dataset.Dataset, error) {
	start := time.Now()
	pi, err := parseOne(img)
	a.Telemetry.ObserveDur(telemetry.HistImageParse, time.Since(start))
	if err != nil {
		return nil, err
	}
	a.Telemetry.Add(telemetry.CounterImagesParsed, 1)
	a.Telemetry.Add(telemetry.CounterFilesParsed, int64(len(img.ConfigFiles)))
	types := make(map[string]conftypes.Type)
	for _, f := range pi.files {
		for _, e := range f.Entries {
			for _, nv := range entryValues(f.App, e) {
				if _, done := types[nv.Name]; done {
					continue
				}
				if attr, ok := training.Attr(nv.Name); ok {
					types[nv.Name] = attr.Type
				} else {
					types[nv.Name] = a.Inferencer.InferValue(nv.Value, img)
				}
			}
		}
	}
	d := dataset.New()
	// Copy training column declarations so checks can reference them even
	// when absent on the target.
	for _, attr := range training.Attributes() {
		d.DeclareAttr(attr.Name, attr.Type, attr.Augmented)
	}
	for name, t := range types {
		d.DeclareAttr(name, t, false)
	}
	row := d.NewRow(img.ID)
	a.emitRow(directSink{d: d, row: row}, pi, types)
	return d, nil
}

// rowSink receives the attribute operations emitRow produces for one row.
// The sequential path applies them to the dataset directly; the parallel
// path records them for a deterministic in-order replay.
type rowSink interface {
	declare(name string, t conftypes.Type, augmented bool)
	add(name, value string)
	setType(name string, t conftypes.Type)
}

// directSink applies row operations straight to a dataset row.
type directSink struct {
	d   *dataset.Dataset
	row *dataset.Row
}

func (s directSink) declare(name string, t conftypes.Type, augmented bool) {
	s.d.DeclareAttr(name, t, augmented)
}
func (s directSink) add(name, value string)                { s.d.Add(s.row, name, value) }
func (s directSink) setType(name string, t conftypes.Type) { s.d.SetType(name, t) }

// rowOp is one recorded dataset operation.
type rowOp struct {
	kind      uint8 // opDeclare, opAdd, opSetType
	name      string
	value     string // opAdd value
	typ       conftypes.Type
	augmented bool
}

const (
	opDeclare uint8 = iota
	opAdd
	opSetType
)

// recordedRow buffers one row's operations for later replay.
type recordedRow struct{ ops []rowOp }

func (r *recordedRow) declare(name string, t conftypes.Type, augmented bool) {
	r.ops = append(r.ops, rowOp{kind: opDeclare, name: name, typ: t, augmented: augmented})
}
func (r *recordedRow) add(name, value string) {
	r.ops = append(r.ops, rowOp{kind: opAdd, name: name, value: value})
}
func (r *recordedRow) setType(name string, t conftypes.Type) {
	r.ops = append(r.ops, rowOp{kind: opSetType, name: name, typ: t})
}

// replay applies the recorded operations to a dataset row in the exact
// order emitRow produced them.
func (r *recordedRow) replay(d *dataset.Dataset, row *dataset.Row) {
	for _, op := range r.ops {
		switch op.kind {
		case opDeclare:
			d.DeclareAttr(op.name, op.typ, op.augmented)
		case opAdd:
			d.Add(row, op.name, op.value)
		case opSetType:
			d.SetType(op.name, op.typ)
		}
	}
}

// emitRow produces the original entries, the Table 5a augmented
// attributes, and the Table 5b environment attributes for one image.
func (a *Assembler) emitRow(sink rowSink, pi parsedImage, types map[string]conftypes.Type) {
	for _, f := range pi.files {
		for _, e := range f.Entries {
			for _, nv := range entryValues(f.App, e) {
				sink.declare(nv.Name, types[nv.Name], false)
				sink.add(nv.Name, nv.Value)
				a.augment(sink, nv.Name, nv.Value, types[nv.Name], pi.img)
			}
		}
	}
	for _, env := range a.envAttrs {
		if v, ok := env.Compute(pi.img); ok {
			sink.declare(env.Name, env.Type, true)
			sink.add(env.Name, v)
			sink.setType(env.Name, env.Type)
		}
	}
}

func (a *Assembler) augment(sink rowSink, name, value string, t conftypes.Type, img *sysimage.Image) {
	if a.SkipPatternValues && conftypes.LooksLikeRegexOrGlob(value) {
		return
	}
	for _, aug := range a.augmenters[t] {
		v, ok := aug.Compute(value, img)
		if !ok {
			continue
		}
		augName := name + "." + aug.Suffix
		sink.declare(augName, aug.Type, true)
		sink.add(augName, v)
		sink.setType(augName, aug.Type)
	}
}

// AppsIn lists the distinct applications configured in the images, sorted.
func AppsIn(images []*sysimage.Image) []string {
	set := map[string]bool{}
	for _, img := range images {
		for _, cf := range img.ConfigFiles {
			set[cf.App] = true
		}
	}
	out := make([]string, 0, len(set))
	for app := range set {
		out = append(out, app)
	}
	sort.Strings(out)
	return out
}

// BaseEntryName strips the app prefix from an attribute name, recovering
// the configuration entry name ("mysql:mysqld/datadir" ->
// "mysqld/datadir"). Whether an attribute is augmented is recorded on the
// dataset column, not encoded in the name (PHP entry names legitimately
// contain dots, e.g. session.save_path).
func BaseEntryName(attr string) string {
	if i := strings.Index(attr, ":"); i >= 0 {
		return attr[i+1:]
	}
	return attr
}
