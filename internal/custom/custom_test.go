package custom

import (
	"strings"
	"testing"

	"repro/internal/assemble"
	"repro/internal/conftypes"
	"repro/internal/rules"
	"repro/internal/sysimage"
	"repro/internal/templates"
)

func envImage() *sysimage.Image {
	im := sysimage.New("env")
	im.Users["mysql"] = &sysimage.User{Name: "mysql", UID: 27, GID: 27}
	im.Groups["mysql"] = &sysimage.Group{Name: "mysql", GID: 27}
	im.Services = []sysimage.Service{{Name: "mysql", Port: 3306, Protocol: "tcp"}}
	im.AddDir("/var/cache/app", "mysql", "mysql", 0o750)
	im.AddRegular("/var/cache/app/data.bin", "mysql", "mysql", 0o640, 9)
	im.Env["HOME"] = "/root"
	im.OS.SELinux = "enforcing"
	im.HW = sysimage.Hardware{Present: true, CPUCores: 4, MemBytes: 8 << 30}
	return im
}

func eval(t *testing.T, src string, vars map[string]string, img *sysimage.Image) Value {
	t.Helper()
	e, err := CompileExpr(src)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	v, err := e.Eval(&Env{Vars: vars, Image: img})
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestExprLiteralsAndOps(t *testing.T) {
	img := envImage()
	cases := []struct {
		src  string
		want bool
	}{
		{"true", true},
		{"false", false},
		{"!false", true},
		{"1 < 2", true},
		{"2 <= 2", true},
		{"3 > 4", false},
		{"'a' == 'a'", true},
		{"'a' != 'b'", true},
		{"1 + 1 == 2", true},
		{"'a' + 'b' == 'ab'", true},
		{"true && false", false},
		{"true || false", true},
		{"(1 < 2) && (2 < 3)", true},
		{"-1 < 0", true},
		{"size('1M') == 1048576", true},
		{"size('2K') < size('1M')", true},
	}
	for _, c := range cases {
		if got := eval(t, c.src, nil, img); got.Bool() != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestExprVariablesAndEnvFunctions(t *testing.T) {
	img := envImage()
	vars := map[string]string{"value": "/var/cache/app", "v1": "mysql", "v2": "/var/cache/app/data.bin"}
	cases := []struct {
		src  string
		want bool
	}{
		{"exists(value)", true},
		{"isDir(value)", true},
		{"isFile(value)", false},
		{"isFile(v2)", true},
		{"owner(value) == 'mysql'", true},
		{"group(value) == v1", true},
		{"perm(v2) == '0640'", true},
		{"accessible(v2, v1)", true},
		{"accessible(v2, 'nobody')", false},
		{"userExists(v1)", true},
		{"groupExists('mysql')", true},
		{"userInGroup(v1, 'mysql')", true},
		{"primaryGroup(v1) == 'mysql'", true},
		{"portRegistered(3306)", true},
		{"portRegistered(9999)", false},
		{"envVar('HOME') == '/root'", true},
		{"selinux() == 'enforcing'", true},
		{"memBytes() > 0", true},
		{"cpuCores() == 4", true},
		{"matches(value, '^/var/cache')", true},
		{"contains(value, 'cache')", true},
		{"hasPrefix(value, '/var')", true},
		{"hasSuffix(v2, '.bin')", true},
		{"lower('ABC') == 'abc'", true},
	}
	for _, c := range cases {
		if got := eval(t, c.src, vars, img); got.Bool() != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestExprNilImage(t *testing.T) {
	vars := map[string]string{"value": "/x"}
	for _, src := range []string{"exists(value)", "isDir(value)", "userExists('a')", "memBytes() == 0"} {
		e, err := CompileExpr(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Eval(&Env{Vars: vars}); err != nil {
			t.Errorf("%q should evaluate with nil image: %v", src, err)
		}
	}
}

func TestExprErrors(t *testing.T) {
	bad := []string{
		"",
		"1 +",
		"(1",
		"'unterminated",
		"unknownFn(1)",
		"matches('a')", // arity
		"1 ? 2",
		"a b",
	}
	for _, src := range bad {
		e, err := CompileExpr(src)
		if err != nil {
			continue
		}
		if _, err := e.Eval(&Env{Vars: map[string]string{}}); err == nil {
			t.Errorf("%q should fail", src)
		}
	}
	// Unknown variable errors at eval.
	e, err := CompileExpr("missing == 'x'")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Eval(&Env{Vars: map[string]string{}}); err == nil {
		t.Error("unknown variable should error")
	}
}

const sampleCustomization = `
# Custom cache-directory type with environment-aware validation.
$$TypeDeclaration
CacheDir
$$TypeInference
CacheDir (value): { matches(value, '^/var/cache(/.*)?$') }
$$TypeValidation
CacheDir (value): { isDir(value) }
$$TypeAugmentDeclaration
CacheDir.group GroupName
$$TypeAugment
CacheDir.group (value): { group(value) }
$$TypeOperator
ownedBy: Operator '~' (v1,v2): { owner(v1) == v2 }
$$Template
[A:CacheDir] ~ [B:UserName] -- 90%
`

func TestParseFileFull(t *testing.T) {
	c, err := ParseFile(sampleCustomization)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Types) != 1 || c.Types[0].Name != conftypes.Type("CacheDir") {
		t.Fatalf("types = %+v", c.Types)
	}
	img := envImage()
	if !c.Types[0].Match("/var/cache/app") {
		t.Fatal("inference method should match")
	}
	if c.Types[0].Match("/etc") {
		t.Fatal("inference should reject non-cache path")
	}
	if !c.Types[0].Verify("/var/cache/app", img) {
		t.Fatal("validation should pass for existing dir")
	}
	if c.Types[0].Verify("/var/cache/missing", img) {
		t.Fatal("validation should fail for missing dir")
	}
	augs := c.Augmenters[conftypes.Type("CacheDir")]
	if len(augs) != 1 || augs[0].Suffix != "group" || augs[0].Type != conftypes.TypeGroupName {
		t.Fatalf("augmenters = %+v", augs)
	}
	if v, ok := augs[0].Compute("/var/cache/app", img); !ok || v != "mysql" {
		t.Fatalf("augment compute = %q %v", v, ok)
	}
	if len(c.Operators) != 1 || c.Operators[0] != "ownedBy" {
		t.Fatalf("operators = %v", c.Operators)
	}
	if len(c.Templates) != 1 {
		t.Fatalf("templates = %d", len(c.Templates))
	}
	tpl := c.Templates[0]
	ok, app := tpl.Validate([]string{"/var/cache/app"}, []string{"mysql"}, &templates.Ctx{Image: img})
	if !app || !ok {
		t.Fatalf("custom template validate = %v %v", ok, app)
	}
	ok, _ = tpl.Validate([]string{"/var/cache/app"}, []string{"root"}, &templates.Ctx{Image: img})
	if ok {
		t.Fatal("wrong owner should not hold")
	}
}

func TestApply(t *testing.T) {
	c, err := ParseFile(sampleCustomization)
	if err != nil {
		t.Fatal(err)
	}
	inf := conftypes.NewInferencer()
	asm := assemble.New()
	eng := rules.NewEngine()
	before := len(eng.Templates)
	c.Apply(inf, asm, eng)
	img := envImage()
	if got := inf.InferValue("/var/cache/app", img); got != conftypes.Type("CacheDir") {
		t.Fatalf("custom type not active: %s", got)
	}
	if len(eng.Templates) != before+1 {
		t.Fatal("template not added to engine")
	}
	// Apply with nils must not panic.
	c.Apply(nil, nil, nil)
}

func TestParseFileErrors(t *testing.T) {
	bad := []string{
		"$$TypeInference\nUndeclared (value): { true }\n",
		"$$TypeValidation\nUndeclared (value): { true }\n",
		"$$TypeDeclaration\nBadName!\n",
		"$$TypeDeclaration\nlowercase\n",
		"$$TypeDeclaration\nNoMethod\n",
		"$$TypeDeclaration\nT\n$$TypeInference\nT (value): { bad syntax here ( }\n",
		"$$TypeAugmentDeclaration\nmissingdot GroupName\n",
		"$$TypeAugment\nX.y (value): { true }\n",
		"$$TypeOperator\nnocolonhere\n",
		"$$TypeOperator\nname: Operator noquotes (v1,v2): { true }\n",
		"$$Template\n[A:Size] ?? [B:Size]\n",
		"$$Template\ngarbage\n",
	}
	for _, src := range bad {
		if _, err := ParseFile(src); err == nil {
			t.Errorf("ParseFile should fail for %q", src)
		}
	}
}

func TestParseFileEmptyAndComments(t *testing.T) {
	c, err := ParseFile("# just comments\n\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Types) != 0 || len(c.Templates) != 0 {
		t.Fatal("empty file should parse to empty customization")
	}
}

func TestMethodMissingValidationIsOptional(t *testing.T) {
	src := "$$TypeDeclaration\nWord\n$$TypeInference\nWord (value): { matches(value, '^[a-z]+$') }\n"
	c, err := ParseFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Types[0].Verify != nil {
		t.Fatal("no validation section: Verify must be nil")
	}
}

func TestConfidenceAnnotationStripped(t *testing.T) {
	src := "$$Template\n[A:Size] < [B:Size] -- 95%\n"
	c, err := ParseFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Templates) != 1 {
		t.Fatal("template with annotation should parse")
	}
	if !strings.Contains(c.Templates[0].Spec, "[A:Size]") {
		t.Fatalf("spec = %q", c.Templates[0].Spec)
	}
}

func TestValueCoercions(t *testing.T) {
	img := envImage()
	// Numbers compare with size strings.
	if got := eval(t, "memBytes() == size('8G')", nil, img); !got.Bool() {
		t.Fatal("memBytes should equal 8G")
	}
	// String fallback comparison.
	if got := eval(t, "'abc' < 'abd'", nil, img); !got.Bool() {
		t.Fatal("string comparison should work")
	}
	v := str("x")
	if v.String() != "x" || !v.Bool() {
		t.Fatal("string value semantics")
	}
	if num(0).Bool() || !num(1).Bool() {
		t.Fatal("number truthiness")
	}
	if boolean(true).String() != "true" || num(2.5).String() != "2.5" {
		t.Fatal("value rendering")
	}
}
