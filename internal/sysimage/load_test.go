package sysimage

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestLoadFileMatchesLoadJSON pins the pooled-buffer reader against a
// plain decode of the same bytes, including across back-to-back calls
// that recycle the same buffer.
func TestLoadFileMatchesLoadJSON(t *testing.T) {
	dir := t.TempDir()
	a, b := testImage(), testImage()
	a.ID, b.ID = "img-a", "img-b"
	b.SetConfig("mysql", "/etc/my.cnf", "[mysqld]\nuser=mysql\n")
	if err := SaveDir(dir, []*Image{a, b}); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"img-a", "img-b", "img-a"} {
		path := filepath.Join(dir, id+".json")
		got, err := LoadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		want, err := LoadJSON(data)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("LoadFile(%s) differs from LoadJSON of the same bytes", id)
		}
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

// TestLoadDirStream pins the streaming walk: same images in the same
// sorted order as LoadDir, and fn errors stop the walk unchanged.
func TestLoadDirStream(t *testing.T) {
	dir := t.TempDir()
	a, b, c := testImage(), testImage(), testImage()
	a.ID, b.ID, c.ID = "img-c", "img-a", "img-b"
	if err := SaveDir(dir, []*Image{a, b, c}); err != nil {
		t.Fatal(err)
	}
	var seen []string
	if err := LoadDirStream(dir, func(im *Image) error {
		seen = append(seen, im.ID)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"img-a", "img-b", "img-c"}
	if !reflect.DeepEqual(seen, want) {
		t.Fatalf("stream order = %v, want %v", seen, want)
	}

	stop := errors.New("stop")
	seen = nil
	err := LoadDirStream(dir, func(im *Image) error {
		seen = append(seen, im.ID)
		if len(seen) == 2 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Fatalf("fn error not propagated: %v", err)
	}
	if len(seen) != 2 {
		t.Fatalf("walk did not stop after fn error: %v", seen)
	}
}
