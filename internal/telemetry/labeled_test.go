package telemetry

import (
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLabelRendering(t *testing.T) {
	cases := []struct{ got, want string }{
		{L(), ""},
		{L("app", "mysql"), `app="mysql"`},
		{L("code", "200", "app", "mysql"), `app="mysql",code="200"`},
		{L("app", "mysql", "code", "200"), `app="mysql",code="200"`},
		{L("k", `a"b`), `k="a\"b"`},
		{L("k", "v", "odd"), `k="v"`},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("L rendered %q, want %q", c.got, c.want)
		}
	}
}

// TestLabelRenderingAllocs pins the stack-scratch diet in L: sorting and
// escaping happen in fixed arrays, so a typical label set costs exactly
// the one string allocation for the rendered result.
func TestLabelRenderingAllocs(t *testing.T) {
	allocs := testing.AllocsPerRun(1000, func() {
		_ = L("app", "mysql", "code", "200")
	})
	if allocs > 1 {
		t.Errorf("L allocated %.1f objects per call; stack scratch should leave only the result string", allocs)
	}
}

func TestLabeledFamiliesSnapshotAndProm(t *testing.T) {
	r := New()
	app := L("app", "mysql")
	r.AddLabeled("encore_serve_requests_total", L("app", "mysql", "code", "200"), 3)
	r.AddLabeled("encore_serve_requests_total", L("app", "mysql", "code", "404"), 1)
	r.AddLabeled("encore_serve_findings_total", L("app", "mysql", "severity", "high"), 7)
	r.SetGauge("encore_serve_plans_loaded", "", 2)
	r.SetGauge("encore_serve_plan_swaps_total_x", app, 5) // fallback help path
	r.ObserveLabeled("encore_serve_scan_seconds", app, 100*time.Microsecond)
	r.ObserveLabeled("encore_serve_scan_seconds", app, 3*time.Millisecond)

	if got := r.LabeledCounter("encore_serve_requests_total", L("app", "mysql", "code", "200")); got != 3 {
		t.Fatalf("LabeledCounter = %d, want 3", got)
	}
	if _, ok := r.Gauge("encore_serve_plans_loaded", app); ok {
		t.Fatal("gauge read with wrong labels should miss")
	}
	if v, ok := r.Gauge("encore_serve_plans_loaded", ""); !ok || v != 2 {
		t.Fatalf("Gauge = %v, %v", v, ok)
	}
	hd, ok := r.LabeledHistogram("encore_serve_scan_seconds", app)
	if !ok || hd.Count != 2 || hd.P50 <= 0 {
		t.Fatalf("LabeledHistogram = %+v, %v", hd, ok)
	}

	prom := r.Snapshot().PromText()
	for _, want := range []string{
		`encore_serve_requests_total{app="mysql",code="200"} 3`,
		`encore_serve_requests_total{app="mysql",code="404"} 1`,
		`encore_serve_findings_total{app="mysql",severity="high"} 7`,
		"encore_serve_plans_loaded 2",
		`encore_serve_scan_seconds_bucket{app="mysql",le="+Inf"} 2`,
		`encore_serve_scan_seconds_count{app="mysql"} 2`,
		"# TYPE encore_serve_scan_seconds histogram",
		"# HELP encore_serve_requests_total Scan-service HTTP requests by app and status code.",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("PromText missing %q:\n%s", want, prom)
		}
	}

	// Snapshot ordering is deterministic: families sorted, series sorted
	// within each family.
	snap := r.Snapshot()
	if len(snap.LabeledCounters) != 3 || snap.LabeledCounters[0].Family != "encore_serve_findings_total" {
		t.Fatalf("labeled counter order = %+v", snap.LabeledCounters)
	}
	if snap.LabeledCounters[1].Labels >= snap.LabeledCounters[2].Labels {
		t.Fatalf("series not sorted: %+v", snap.LabeledCounters)
	}
}

func TestLabeledNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.AddLabeled("f", "", 1)
	r.SetGauge("f", "", 1)
	r.ObserveLabeled("f", "", time.Millisecond)
	r.SetBuildInfo("v1")
	r.SetSpanCap(10)
	if r.LabeledCounter("f", "") != 0 {
		t.Fatal("nil recorder counter")
	}
	if _, ok := r.Gauge("f", ""); ok {
		t.Fatal("nil recorder gauge")
	}
	if _, ok := r.LabeledHistogram("f", ""); ok {
		t.Fatal("nil recorder histogram")
	}
}

func TestLabeledJSONExportRoundTrip(t *testing.T) {
	r := New()
	r.SetBuildInfo("v-test")
	r.AddLabeled("encore_serve_requests_total", L("app", "a", "code", "200"), 2)
	r.SetGauge("encore_serve_plans_loaded", "", 1)
	r.ObserveLabeled("encore_serve_scan_seconds", L("app", "a"), time.Millisecond)
	data, err := r.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"build"`, `"version": "v-test"`, `"goVersion": "` + runtime.Version(),
		`"labeledCounters"`, `"gauges"`, `"labeledHistograms"`,
		`"family": "encore_serve_requests_total"`,
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JSON export missing %q", want)
		}
	}

	// An unlabeled snapshot must not render the optional sections at all —
	// the pre-daemon goldens depend on their absence.
	plain, err := New().Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, absent := range []string{"labeledCounters", "gauges", "labeledHistograms", `"build"`} {
		if strings.Contains(string(plain), absent) {
			t.Errorf("plain JSON export unexpectedly contains %q", absent)
		}
	}
}

func TestBuildInfoProm(t *testing.T) {
	r := New()
	if prom := r.Snapshot().PromText(); strings.Contains(prom, "encore_build_info") {
		t.Fatal("build info rendered without SetBuildInfo")
	}
	r.SetBuildInfo("v1.2.3")
	prom := r.Snapshot().PromText()
	want := `encore_build_info{go_version="` + runtime.Version() + `",version="v1.2.3"} 1`
	if !strings.Contains(prom, want) {
		t.Fatalf("PromText missing %q:\n%s", want, prom)
	}
}

func TestSpanCapBoundsRetention(t *testing.T) {
	r := New()
	r.SetSpanCap(64)
	for i := 0; i < 1000; i++ {
		r.StartSpan("req").End()
	}
	spans := r.Snapshot().Spans
	if len(spans) > 64 {
		t.Fatalf("span store exceeded cap: %d", len(spans))
	}
	// The newest spans survive shedding.
	maxID := int64(0)
	for _, sp := range spans {
		if sp.ID > maxID {
			maxID = sp.ID
		}
	}
	if maxID != 1000 {
		t.Fatalf("newest span id = %d, want 1000", maxID)
	}
}

func TestLabeledConcurrentUpdates(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			labels := L("app", "a")
			for i := 0; i < 200; i++ {
				r.AddLabeled("encore_serve_requests_total", labels, 1)
				r.ObserveLabeled("encore_serve_scan_seconds", labels, time.Duration(i)*time.Microsecond)
				r.SetGauge("encore_serve_plans_loaded", "", float64(i))
				_ = r.Snapshot().PromText()
			}
		}(w)
	}
	wg.Wait()
	if got := r.LabeledCounter("encore_serve_requests_total", L("app", "a")); got != 1600 {
		t.Fatalf("concurrent counter = %d, want 1600", got)
	}
}
