// Package intern provides a bounded, process-wide string interning table.
//
// A scanned corpus repeats the same short strings endlessly: every image
// carries the same owners, groups, shells, application names, and
// configuration keys. Interning collapses those duplicates to one
// canonical copy each, which (a) lets per-image decode garbage die young,
// and (b) releases substring-backed strings (a parsed key is a slice of
// the whole file's content) so retained entries do not pin their source
// buffers.
//
// The table only ever grows to MaxEntries canonical strings; past that,
// lookups still deduplicate against existing entries but misses pass
// through uninterned, so adversarial high-cardinality input cannot grow
// the table without bound.
package intern

import "sync"

// MaxEntries bounds the table size.
const MaxEntries = 1 << 16

var table = struct {
	sync.RWMutex
	m map[string]string
}{m: make(map[string]string, 1024)}

// String returns the canonical copy of s, storing s itself on first sight
// (while the table has room).
func String(s string) string {
	if s == "" {
		return ""
	}
	table.RLock()
	c, ok := table.m[s]
	table.RUnlock()
	if ok {
		return c
	}
	table.Lock()
	defer table.Unlock()
	if c, ok := table.m[s]; ok {
		return c
	}
	if len(table.m) >= MaxEntries {
		return s
	}
	table.m[s] = s
	return s
}

// Bytes returns the canonical string for b, allocating only when b has
// never been seen (map lookups on string(b) do not allocate).
func Bytes(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	table.RLock()
	c, ok := table.m[string(b)]
	table.RUnlock()
	if ok {
		return c
	}
	table.Lock()
	defer table.Unlock()
	if c, ok := table.m[string(b)]; ok {
		return c
	}
	s := string(b)
	if len(table.m) >= MaxEntries {
		return s
	}
	table.m[s] = s
	return s
}

// BytesInto fills dst[i] with the canonical string for at(i), exactly as
// per-element Bytes calls would, but amortizes table locking: one read
// lock for the whole batch, and one write lock only if the batch had
// misses. Decoding a plan's string table is hundreds of lookups back to
// back — per-call locking is measurable there. at is called with
// 0..len(dst)-1 and must be pure (it runs twice for missed indices).
func BytesInto(dst []string, at func(i int) []byte) {
	table.RLock()
	misses := 0
	for i := range dst {
		b := at(i)
		if len(b) == 0 {
			dst[i] = ""
			continue
		}
		c, ok := table.m[string(b)]
		if !ok {
			misses++
			dst[i] = ""
			continue
		}
		dst[i] = c
	}
	table.RUnlock()
	if misses == 0 {
		return
	}
	table.Lock()
	defer table.Unlock()
	for i := range dst {
		b := at(i)
		if dst[i] != "" || len(b) == 0 {
			continue
		}
		if c, ok := table.m[string(b)]; ok {
			dst[i] = c
			continue
		}
		s := string(b)
		if len(table.m) < MaxEntries {
			table.m[s] = s
		}
		dst[i] = s
	}
}

// Len reports the current table size (for tests and diagnostics).
func Len() int {
	table.RLock()
	defer table.RUnlock()
	return len(table.m)
}
