package confparse

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

const apacheSample = `
# Main server configuration
ServerRoot "/etc/httpd"
Listen 80
LoadModule php5_module modules/libphp5.so
User apache
Group apache

<Directory "/var/www/html">
    Options Indexes FollowSymLinks
    AllowOverride None
    <Limit GET POST>
        Require all granted
    </Limit>
</Directory>
DocumentRoot "/var/www/html"
HostnameLookups Off # inline comment
`

func TestApacheParse(t *testing.T) {
	d := NewApacheDialect()
	entries, err := d.Parse(apacheSample)
	if err != nil {
		t.Fatal(err)
	}
	f := &File{App: "apache", Entries: entries}
	sr := f.Find("ServerRoot")
	if len(sr) != 1 || sr[0].Value() != "/etc/httpd" {
		t.Fatalf("ServerRoot = %+v", sr)
	}
	lm := f.Find("LoadModule")
	if len(lm) != 1 || len(lm[0].Values) != 2 || lm[0].Values[1] != "modules/libphp5.so" {
		t.Fatalf("LoadModule = %+v", lm)
	}
	opts := f.FindKey("Options")
	if len(opts) != 1 || opts[0].Section != "Directory:/var/www/html" {
		t.Fatalf("Options = %+v", opts)
	}
	req := f.FindKey("Require")
	if len(req) != 1 || req[0].Section != "Directory:/var/www/html|Limit:GET:POST" {
		t.Fatalf("Require section = %q", req[0].Section)
	}
	hl := f.Find("HostnameLookups")
	if len(hl) != 1 || hl[0].Value() != "Off" {
		t.Fatalf("inline comment not stripped: %+v", hl)
	}
}

func TestApacheQuotedHashNotComment(t *testing.T) {
	d := NewApacheDialect()
	entries, err := d.Parse(`ServerAdmin "admin#example"` + "\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Value() != "admin#example" {
		t.Fatalf("entries = %+v", entries)
	}
}

func TestApacheErrors(t *testing.T) {
	d := NewApacheDialect()
	cases := []string{
		"</Directory>\n",
		"<Directory /a>\n</Limit>\n",
		"<Directory /a>\nOptions None\n",
		"<Directory /a\n",
		"<>\n",
	}
	for _, c := range cases {
		if _, err := d.Parse(c); err == nil {
			t.Errorf("expected parse error for %q", c)
		}
	}
}

func TestApacheRoundTrip(t *testing.T) {
	d := NewApacheDialect()
	entries, err := d.Parse(apacheSample)
	if err != nil {
		t.Fatal(err)
	}
	rendered := d.Render(entries)
	back, err := d.Parse(rendered)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, rendered)
	}
	if len(back) != len(entries) {
		t.Fatalf("round trip: %d entries vs %d", len(back), len(entries))
	}
	for i := range entries {
		if back[i].Name() != entries[i].Name() || back[i].Value() != entries[i].Value() {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, back[i], entries[i])
		}
	}
}

const mysqlSample = `
[mysqld]
datadir = /var/lib/mysql
user = mysql
port = 3306
skip-networking
max_allowed_packet = 16M
# comment
[client]
socket = /var/lib/mysql/mysql.sock
`

func TestINIParse(t *testing.T) {
	d := NewINIDialect("#", ";")
	entries, err := d.Parse(mysqlSample)
	if err != nil {
		t.Fatal(err)
	}
	f := &File{App: "mysql", Entries: entries}
	dd := f.Find("mysqld/datadir")
	if len(dd) != 1 || dd[0].Value() != "/var/lib/mysql" {
		t.Fatalf("datadir = %+v", dd)
	}
	sn := f.Find("mysqld/skip-networking")
	if len(sn) != 1 || len(sn[0].Values) != 0 {
		t.Fatalf("flag entry = %+v", sn)
	}
	sock := f.Find("client/socket")
	if len(sock) != 1 {
		t.Fatalf("socket = %+v", sock)
	}
}

func TestINIQuotedValues(t *testing.T) {
	d := NewINIDialect(";")
	entries, err := d.Parse("[PHP]\nerror_log = \"/var/log/php errors.log\"\n")
	if err != nil {
		t.Fatal(err)
	}
	if entries[0].Value() != "/var/log/php errors.log" {
		t.Fatalf("value = %q", entries[0].Value())
	}
}

func TestINIValueContainingEquals(t *testing.T) {
	d := NewINIDialect(";")
	entries, err := d.Parse("a = b=c\n")
	if err != nil {
		t.Fatal(err)
	}
	if entries[0].Value() != "b=c" {
		t.Fatalf("value = %q", entries[0].Value())
	}
}

func TestINIErrors(t *testing.T) {
	d := NewINIDialect("#")
	for _, c := range []string{"[unterminated\n", "[]\n", "= novalue\n"} {
		if _, err := d.Parse(c); err == nil {
			t.Errorf("expected error for %q", c)
		}
	}
}

func TestINIRoundTrip(t *testing.T) {
	d := NewINIDialect("#", ";")
	entries, err := d.Parse(mysqlSample)
	if err != nil {
		t.Fatal(err)
	}
	back, err := d.Parse(d.Render(entries))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(entries) {
		t.Fatalf("round trip: %d vs %d", len(back), len(entries))
	}
	for i := range entries {
		if back[i].Name() != entries[i].Name() || back[i].Value() != entries[i].Value() {
			t.Fatalf("entry %d: %+v vs %+v", i, back[i], entries[i])
		}
	}
}

const sshdSample = `
Port 22
PermitRootLogin no
AllowUsers alice bob
Match User deploy
    PasswordAuthentication no
`

func TestSSHDParse(t *testing.T) {
	d := NewSSHDDialect()
	entries, err := d.Parse(sshdSample)
	if err != nil {
		t.Fatal(err)
	}
	f := &File{App: "sshd", Entries: entries}
	au := f.Find("AllowUsers")
	if len(au) != 1 || len(au[0].Values) != 2 {
		t.Fatalf("AllowUsers = %+v", au)
	}
	pa := f.FindKey("PasswordAuthentication")
	if len(pa) != 1 || pa[0].Section != "Match:User:deploy" {
		t.Fatalf("Match scope = %+v", pa)
	}
}

func TestSSHDMatchError(t *testing.T) {
	d := NewSSHDDialect()
	if _, err := d.Parse("Match\n"); err == nil {
		t.Fatal("Match with no criteria should fail")
	}
}

func TestSSHDRoundTrip(t *testing.T) {
	d := NewSSHDDialect()
	entries, err := d.Parse(sshdSample)
	if err != nil {
		t.Fatal(err)
	}
	back, err := d.Parse(d.Render(entries))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(names(back), names(entries)) {
		t.Fatalf("round trip: %v vs %v", names(back), names(entries))
	}
}

func names(es []*Entry) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.Name() + "=" + e.Value()
	}
	return out
}

func TestRegistry(t *testing.T) {
	for _, app := range []string{"apache", "httpd", "mysql", "php", "sshd"} {
		if _, err := ForApp(app); err != nil {
			t.Errorf("dialect for %s missing: %v", app, err)
		}
	}
	if _, err := ForApp("nginx"); err == nil {
		t.Error("unknown app should error")
	}
}

func TestParseAndRenderTopLevel(t *testing.T) {
	f, err := Parse("mysql", "/etc/my.cnf", mysqlSample)
	if err != nil {
		t.Fatal(err)
	}
	if f.App != "mysql" || f.Path != "/etc/my.cnf" {
		t.Fatalf("file meta = %+v", f)
	}
	out, err := Render(f)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "datadir = /var/lib/mysql") {
		t.Fatalf("render missing datadir:\n%s", out)
	}
	if _, err := Parse("unknown", "", ""); err == nil {
		t.Fatal("unknown app should error")
	}
	if _, err := Render(&File{App: "unknown"}); err == nil {
		t.Fatal("unknown app render should error")
	}
}

func TestFileSetRemoveClone(t *testing.T) {
	f, _ := Parse("mysql", "", mysqlSample)
	f.Set("mysqld/port", "3307")
	if f.Find("mysqld/port")[0].Value() != "3307" {
		t.Fatal("Set should replace existing")
	}
	f.Set("mysqld/new_opt", "x")
	got := f.Find("mysqld/new_opt")
	if len(got) != 1 || got[0].Section != "mysqld" || got[0].Key != "new_opt" {
		t.Fatalf("Set append = %+v", got)
	}
	c := f.Clone()
	c.Find("mysqld/port")[0].Values[0] = "9999"
	if f.Find("mysqld/port")[0].Value() != "3307" {
		t.Fatal("Clone must be deep")
	}
	if !f.Remove("mysqld/port") {
		t.Fatal("Remove should report true")
	}
	if len(f.Find("mysqld/port")) != 0 {
		t.Fatal("entry not removed")
	}
	if f.Remove("mysqld/port") {
		t.Fatal("second Remove should report false")
	}
}

func TestEntryName(t *testing.T) {
	e := &Entry{Key: "Listen"}
	if e.Name() != "Listen" {
		t.Fatalf("top-level name = %q", e.Name())
	}
	e.Section = "VirtualHost:*:80"
	if e.Name() != "VirtualHost:*:80/Listen" {
		t.Fatalf("scoped name = %q", e.Name())
	}
}

func TestSplitArgsQuotes(t *testing.T) {
	got := splitArgs(`Alias /icons/ "/var/www/icons/"`)
	want := []string{"Alias", "/icons/", "/var/www/icons/"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("splitArgs = %v", got)
	}
	got = splitArgs(`a 'b c' d`)
	if !reflect.DeepEqual(got, []string{"a", "b c", "d"}) {
		t.Fatalf("single quotes = %v", got)
	}
}

// Property: INI render/parse round-trips arbitrary simple key-value pairs.
func TestINIRoundTripProperty(t *testing.T) {
	d := NewINIDialect("#", ";")
	sanitize := func(s string, isKey bool) string {
		var b strings.Builder
		for _, r := range s {
			if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_' || r == '-' || r == '/' || r == '.' {
				b.WriteRune(r)
			}
		}
		out := b.String()
		if out == "" {
			if isKey {
				return "k"
			}
			return "v"
		}
		return out
	}
	f := func(key, val string) bool {
		k, v := sanitize(key, true), sanitize(val, false)
		in := []*Entry{{Section: "s", Key: k, Values: []string{v}}}
		back, err := d.Parse(d.Render(in))
		if err != nil {
			return false
		}
		return len(back) == 1 && back[0].Key == k && back[0].Value() == v && back[0].Section == "s"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
