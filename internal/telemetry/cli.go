// Shared observability bootstrap for the CLIs. Both cmd/encore and
// cmd/evaluate register the same flag surface — the -stats text block, the
// machine-readable exporters, runtime/pprof capture, structured logging,
// and the live metrics service — through one Flags value, so every
// pipeline entry point exposes identical observability.
package telemetry

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"runtime/pprof"
	"time"
)

// ServeHooks are optional callbacks around the live metrics server's
// lifecycle, used by acceptance tests to fetch endpoints at
// deterministic points of a real CLI run.
type ServeHooks struct {
	// OnServe runs once the listener is up, before the pipeline starts.
	OnServe func(*Server)
	// BeforeShutdown runs after the pipeline finished and every requested
	// artifact was written, while the server is still serving — the last
	// moment a live /metrics fetch reflects the complete run.
	BeforeShutdown func(*Server)
}

// Flags bundles the observability flags shared by the encore subcommands
// and cmd/evaluate: Register installs them on a flag set, Start wires the
// requested sinks (recorder, logger, sampler, metrics server, pprof), and
// Finish flushes every artifact and tears the service down with zero
// leaked goroutines.
type Flags struct {
	Stats       bool
	StatsJSON   string
	TraceOut    string
	PprofMode   string
	PprofOut    string
	Serve       string
	SampleEvery time.Duration
	LogFormat   string
	LogLevel    string

	// Hooks is consulted around the metrics server lifecycle (tests).
	Hooks ServeHooks

	// Version, when set by the CLI (stamped via -ldflags), is recorded as
	// build info so live /metrics runs expose encore_build_info.
	Version string

	// Rec is the recorder Start attached (nil when no telemetry sink was
	// requested — every Recorder method is nil-safe).
	Rec *Recorder
	// Log is the structured logger Start built; never nil after Start.
	Log *slog.Logger

	sampler   *Sampler
	server    *Server
	pprofFile *os.File
}

// Register installs the shared observability flags on a command's flag
// set.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.BoolVar(&f.Stats, "stats", false, "print pipeline telemetry to stderr")
	fs.StringVar(&f.StatsJSON, "stats-json", "", "write the versioned JSON telemetry snapshot to this file (- for stdout)")
	fs.StringVar(&f.TraceOut, "trace-out", "", "write a Chrome trace_event file to this file (- for stdout)")
	fs.StringVar(&f.PprofMode, "pprof", "", "capture a runtime profile: cpu or heap")
	fs.StringVar(&f.PprofOut, "pprof-out", "", "runtime profile output file (default encore-<mode>.pprof)")
	fs.StringVar(&f.Serve, "serve", "", "serve live /metrics, /healthz, /snapshot, and /debug/pprof on this address while the run is in flight (e.g. :9464)")
	fs.DurationVar(&f.SampleEvery, "sample-every", DefaultSampleInterval, "runtime sampler cadence (heap, GC, goroutines, batch progress)")
	fs.StringVar(&f.LogFormat, "log", "text", "structured log format: "+LogFormats)
	fs.StringVar(&f.LogLevel, "log-level", "info", "structured log level: debug|info|warn|error")
}

// Serving reports whether the live metrics service was requested.
func (f *Flags) Serving() bool { return f.Serve != "" }

// Start builds the logger, attaches a recorder when any telemetry sink
// was requested, starts the runtime sampler and the live metrics server,
// and begins runtime profiling. phase seeds the recorder's phase (the
// subcommand name; pipeline stages overwrite it as they run). The
// returned error leaves nothing running.
func (f *Flags) Start(phase string) error {
	log, err := NewLogger(os.Stderr, f.LogFormat, f.LogLevel)
	if err != nil {
		return err
	}
	f.Log = log
	if f.Stats || f.StatsJSON != "" || f.TraceOut != "" || f.Serving() {
		f.Rec = New()
		f.Rec.SetPhase(phase)
		if f.Version != "" {
			f.Rec.SetBuildInfo(f.Version)
		}
		f.sampler = NewSampler(f.SampleEvery, 0)
		f.Rec.AttachSampler(f.sampler)
		f.sampler.Start()
	}
	if f.Serving() {
		srv, err := NewServer(f.Serve, f.Rec)
		if err != nil {
			f.sampler.Stop()
			return err
		}
		f.server = srv
		f.Log.Info("metrics service listening",
			"addr", srv.Addr(), "endpoints", "/metrics /healthz /snapshot /debug/pprof")
		if f.Hooks.OnServe != nil {
			f.Hooks.OnServe(srv)
		}
	}
	switch f.PprofMode {
	case "", "heap":
	case "cpu":
		file, err := os.Create(f.pprofPath())
		if err != nil {
			f.shutdownServe()
			return err
		}
		if err := pprof.StartCPUProfile(file); err != nil {
			file.Close()
			f.shutdownServe()
			return err
		}
		f.pprofFile = file
	default:
		f.shutdownServe()
		return fmt.Errorf("-pprof must be cpu or heap, got %q", f.PprofMode)
	}
	return nil
}

// SetProgress folds a batch progress reporter into the runtime sampler,
// so /metrics exposes encore_progress_done/_total while the batch runs.
func (f *Flags) SetProgress(p *Progress) {
	f.sampler.SetProgress(p)
}

func (f *Flags) pprofPath() string {
	if f.PprofOut != "" {
		return f.PprofOut
	}
	return "encore-" + f.PprofMode + ".pprof"
}

// shutdownServe tears down the sampler and server (error-path cleanup).
func (f *Flags) shutdownServe() {
	f.sampler.Stop()
	f.server.Close()
}

// Finish writes every requested artifact — pprof profiles, the -stats
// text block, the JSON snapshot, the Chrome trace — then stops the
// sampler and shuts the metrics server down. Defer it after Start
// succeeds and fold its error into the command's.
func (f *Flags) Finish() error {
	if f.pprofFile != nil {
		pprof.StopCPUProfile()
		if err := f.pprofFile.Close(); err != nil {
			f.shutdownServe()
			return err
		}
		f.Log.Info("wrote cpu profile", "path", f.pprofPath())
	}
	if f.PprofMode == "heap" {
		if err := f.writeHeapProfile(); err != nil {
			f.shutdownServe()
			return err
		}
	}
	// Final sample first, so the exported snapshot's runtime section ends
	// with a fresh reading; then mark the run complete.
	f.sampler.Stop()
	f.Rec.SetPhase("done")
	if f.Rec != nil {
		snap := f.Rec.Snapshot()
		if f.Stats {
			fmt.Fprint(os.Stderr, snap.Render())
		}
		if f.StatsJSON != "" {
			if err := snap.WriteJSON(f.StatsJSON); err != nil {
				f.server.Close()
				return err
			}
		}
		if f.TraceOut != "" {
			if err := snap.WriteChromeTrace(f.TraceOut); err != nil {
				f.server.Close()
				return err
			}
		}
	}
	if f.server != nil {
		if f.Hooks.BeforeShutdown != nil {
			f.Hooks.BeforeShutdown(f.server)
		}
		if err := f.server.Close(); err != nil {
			return err
		}
		f.Log.Info("metrics service stopped", "addr", f.server.Addr())
	}
	return nil
}

func (f *Flags) writeHeapProfile() error {
	file, err := os.Create(f.pprofPath())
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(file); err != nil {
		file.Close()
		return err
	}
	if err := file.Close(); err != nil {
		return err
	}
	f.Log.Info("wrote heap profile", "path", f.pprofPath())
	return nil
}
