// Prometheus text exposition (format version 0.0.4) rendered live from a
// recorder snapshot. The naming scheme:
//
//   - pipeline counters become "encore_*_total" counters — the well-known
//     counters get curated idiomatic names (scan.images.scanned ->
//     encore_scan_images_total), everything else falls back to
//     "encore_<sanitized>_total";
//   - stage timers become two counter families keyed by a "stage" label,
//     encore_stage_seconds_total and encore_stage_runs_total;
//   - log2 latency histograms become classic Prometheus histograms in
//     seconds ("encore_<sanitized>_seconds" with cumulative _bucket series,
//     _sum, and _count), bucket upper bounds carried over from the fixed
//     microsecond<<i boundaries;
//   - the runtime sampler's latest reading becomes process gauges
//     (encore_heap_bytes, encore_goroutines, encore_progress_done/_total)
//     and cumulative GC counters;
//   - the current pipeline phase is an info-style gauge,
//     encore_phase{phase="..."} 1.
//
// Families render sorted by metric name, so equal snapshots render to
// equal bytes.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// promCounterNames maps the pipeline counter constants to idiomatic
// Prometheus metric names. Counters not listed here are exposed under the
// generic sanitized fallback.
var promCounterNames = map[string]string{
	CounterImagesParsed:          "encore_assemble_images_parsed_total",
	CounterFilesParsed:           "encore_assemble_files_parsed_total",
	CounterAttrsDeclared:         "encore_assemble_attributes_declared_total",
	CounterRulesValidated:        "encore_rules_candidates_validated_total",
	CounterRulesKept:             "encore_rules_kept_total",
	CounterRulesPrunedSupport:    "encore_rules_pruned_support_total",
	CounterRulesPrunedEntropy:    "encore_rules_pruned_entropy_total",
	CounterRulesDeltaReused:      "encore_rules_delta_reused_total",
	CounterRulesDeltaRevalidated: "encore_rules_delta_revalidated_total",
	CounterPlanEncoded:           "encore_plan_encoded_total",
	CounterPlanEncodedBytes:      "encore_plan_encoded_bytes_total",
	CounterPlanLoaded:            "encore_plan_loaded_total",
	CounterPlanLoadedBytes:       "encore_plan_loaded_bytes_total",
	CounterImagesScanned:         "encore_scan_images_total",
	CounterFindingsEmitted:       "encore_scan_findings_total",
	CounterScanErrors:            "encore_scan_errors_total",
	CounterMatrixCells:           "encore_evalmatrix_cells_total",
	CounterMatrixInjections:      "encore_evalmatrix_injections_total",
	CounterMatrixFindings:        "encore_evalmatrix_findings_total",
}

// promSanitize rewrites an internal dotted name into a metric-name-safe
// token: every character outside [a-zA-Z0-9_] becomes '_'.
func promSanitize(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promCounterName resolves the exposition name for a pipeline counter.
func promCounterName(name string) string {
	if n, ok := promCounterNames[name]; ok {
		return n
	}
	return "encore_" + promSanitize(name) + "_total"
}

// promHistName resolves the exposition name for a latency histogram.
func promHistName(name string) string {
	return "encore_" + promSanitize(name) + "_seconds"
}

// promFloat formats a float sample value the way Prometheus expects
// (shortest round-trip representation; +Inf/-Inf/NaN spelled out).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promEscapeLabel escapes a label value per the exposition format.
func promEscapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// appendEscapedLabel is promEscapeLabel for hot paths: it appends the
// escaped value to dst without intermediate strings (clean values — the
// overwhelmingly common case — are a straight copy).
func appendEscapedLabel(dst []byte, v string) []byte {
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			dst = append(dst, '\\', '\\')
		case '\n':
			dst = append(dst, '\\', 'n')
		case '"':
			dst = append(dst, '\\', '"')
		default:
			dst = append(dst, v[i])
		}
	}
	return dst
}

// promLabeledHelp curates HELP strings for the labeled families the serve
// daemon records; families not listed fall back to a generic line.
var promLabeledHelp = map[string]string{
	"encore_serve_requests_total":                   "Scan-service HTTP requests by app and status code.",
	"encore_serve_findings_total":                   "Findings returned by scan requests, by app and severity.",
	"encore_serve_scan_seconds":                     "Scan request latency by app (seconds).",
	"encore_serve_plans_loaded":                     "Plans currently resident in the profile registry.",
	"encore_serve_plan_swaps_total":                 "Hot swaps applied per app since daemon start.",
	"encore_serve_plan_last_swap_timestamp_seconds": "Unix time of the last plan swap per app.",
	"encore_serve_inflight_requests":                "Requests currently being served.",
	"encore_build_info":                             "Build metadata; the value is always 1.",
	"encore_alerts_total":                           "Alert delivery attempts by notifier, severity, and outcome.",
	"encore_fleet_images_total":                     "Images processed by the sharded fleet coordinator.",
	"encore_fleet_errors_total":                     "Per-image failures seen by the fleet coordinator.",
	"encore_fleet_steals_total":                     "Tasks work-stolen across fleet shards.",
	"encore_fleet_batches_total":                    "Fleet coordinator runs started.",
	"encore_fleet_shards":                           "Shard count of the most recent fleet run.",
	"encore_fleet_inflight_bytes":                   "Estimated bytes of image payloads currently in flight in the fleet coordinator.",
	"encore_fleet_inflight_highwater_bytes":         "Peak in-flight payload reservation of the most recent fleet run.",
	"encore_alerts_dropped_total":                   "Alerts dropped because the bounded queue was full.",
	"encore_alerts_suppressed_total":                "Alerts suppressed before delivery, by reason (policy, dedup, rate).",
	"encore_alert_queue_depth":                      "Alerts buffered in the pipeline queue awaiting dispatch.",
	"encore_alert_delivery_seconds":                 "Alert delivery latency per notifier (seconds).",
}

// promLabeledHelpFor resolves a labeled family's HELP string.
func promLabeledHelpFor(family, fallback string) string {
	if h, ok := promLabeledHelp[family]; ok {
		return h
	}
	return fallback
}

// promFamily is one metric family: the HELP/TYPE header plus its sample
// lines, accumulated then rendered in name order.
type promFamily struct {
	name, help, typ string
	lines           []string
}

func (f *promFamily) addf(format string, args ...any) {
	f.lines = append(f.lines, fmt.Sprintf(format, args...))
}

// PromText renders the snapshot in the Prometheus text exposition format,
// version 0.0.4. The output is deterministic for a given snapshot: metric
// families sort by name and every sample line within a family keeps
// insertion order (bucket bounds ascending, stages sorted by name).
func (s Snapshot) PromText() string {
	var families []*promFamily
	add := func(name, help, typ string) *promFamily {
		f := &promFamily{name: name, help: help, typ: typ}
		families = append(families, f)
		return f
	}

	if s.Phase != "" {
		f := add("encore_phase", "Current pipeline phase.", "gauge")
		f.addf(`encore_phase{phase="%s"} 1`, promEscapeLabel(s.Phase))
	}

	if s.BuildVersion != "" {
		f := add("encore_build_info", promLabeledHelpFor("encore_build_info", "Build metadata."), "gauge")
		f.addf(`encore_build_info{go_version="%s",version="%s"} 1`,
			promEscapeLabel(s.GoVersion), promEscapeLabel(s.BuildVersion))
	}

	// Labeled families (see labeled.go): the snapshot's (family, labels)
	// sort order groups every family's series contiguously, so one pass
	// opens a family per name change.
	var cur *promFamily
	for _, c := range s.LabeledCounters {
		if cur == nil || cur.name != c.Family {
			cur = add(c.Family, promLabeledHelpFor(c.Family, "Labeled counter "+c.Family+"."), "counter")
		}
		if c.Labels == "" {
			cur.addf("%s %d", c.Family, c.Value)
			continue
		}
		cur.addf("%s{%s} %d", c.Family, c.Labels, c.Value)
	}
	cur = nil
	for _, g := range s.Gauges {
		if cur == nil || cur.name != g.Family {
			cur = add(g.Family, promLabeledHelpFor(g.Family, "Labeled gauge "+g.Family+"."), "gauge")
		}
		if g.Labels == "" {
			cur.addf("%s %s", g.Family, promFloat(g.Value))
			continue
		}
		cur.addf("%s{%s} %s", g.Family, g.Labels, promFloat(g.Value))
	}
	cur = nil
	for _, lh := range s.LabeledHistograms {
		if cur == nil || cur.name != lh.Family {
			cur = add(lh.Family, promLabeledHelpFor(lh.Family, "Labeled latency histogram "+lh.Family+" (seconds)."), "histogram")
		}
		h := lh.Data
		sep := ""
		if lh.Labels != "" {
			sep = ","
		}
		var cum uint64
		for _, b := range h.Buckets {
			if b.Upper == bucketUpper(histBuckets) {
				continue
			}
			cum += b.Count
			cur.addf(`%s_bucket{%s%sle="%s"} %d`, lh.Family, lh.Labels, sep, promFloat(b.Upper.Seconds()), cum)
		}
		cur.addf(`%s_bucket{%s%sle="+Inf"} %d`, lh.Family, lh.Labels, sep, h.Count)
		if lh.Labels == "" {
			cur.addf("%s_sum %s", lh.Family, promFloat(h.Sum.Seconds()))
			cur.addf("%s_count %d", lh.Family, h.Count)
		} else {
			cur.addf("%s_sum{%s} %s", lh.Family, lh.Labels, promFloat(h.Sum.Seconds()))
			cur.addf("%s_count{%s} %d", lh.Family, lh.Labels, h.Count)
		}
	}

	for _, c := range s.Counters {
		name := promCounterName(c.Name)
		f := add(name, "Pipeline counter "+c.Name+".", "counter")
		f.addf("%s %d", name, c.Value)
	}

	if len(s.Stages) > 0 {
		secs := add("encore_stage_seconds_total", "Accumulated wall-clock time per pipeline stage.", "counter")
		runs := add("encore_stage_runs_total", "Recorded runs per pipeline stage.", "counter")
		for _, st := range s.Stages {
			label := promEscapeLabel(st.Name)
			secs.addf(`encore_stage_seconds_total{stage="%s"} %s`, label, promFloat(st.Total.Seconds()))
			runs.addf(`encore_stage_runs_total{stage="%s"} %d`, label, st.Runs)
		}
	}

	for _, h := range s.Histograms {
		name := promHistName(h.Name)
		f := add(name, "Latency histogram "+h.Name+" (seconds).", "histogram")
		var cum uint64
		for _, b := range h.Buckets {
			if b.Upper == bucketUpper(histBuckets) {
				// The overflow bucket has no finite bound; its samples land
				// in the +Inf series below.
				continue
			}
			cum += b.Count
			f.addf(`%s_bucket{le="%s"} %d`, name, promFloat(b.Upper.Seconds()), cum)
		}
		f.addf(`%s_bucket{le="+Inf"} %d`, name, h.Count)
		f.addf("%s_sum %s", name, promFloat(h.Sum.Seconds()))
		f.addf("%s_count %d", name, h.Count)
	}

	if n := len(s.Runtime); n > 0 {
		latest := s.Runtime[n-1]
		gauge := func(name, help string, value string) {
			add(name, help, "gauge").addf("%s %s", name, value)
		}
		gauge("encore_heap_bytes", "Heap bytes in use (runtime.MemStats.HeapAlloc) at the last sample.", strconv.FormatUint(latest.HeapBytes, 10))
		gauge("encore_goroutines", "Live goroutines at the last sample.", strconv.Itoa(latest.Goroutines))
		add("encore_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.", "counter").
			addf("encore_gc_pause_seconds_total %s", promFloat(latest.GCPauseTotal.Seconds()))
		add("encore_gc_cycles_total", "Completed GC cycles.", "counter").
			addf("encore_gc_cycles_total %d", latest.GCCycles)
		if latest.ProgressTotal > 0 {
			gauge("encore_progress_done", "Batch units finished.", strconv.FormatInt(latest.ProgressDone, 10))
			gauge("encore_progress_total", "Batch units expected.", strconv.FormatInt(latest.ProgressTotal, 10))
		}
		gauge("encore_runtime_samples", "Runtime samples held in the ring buffer.", strconv.Itoa(n))
		if s.SampleEvery > 0 {
			gauge("encore_runtime_sample_interval_seconds", "Runtime sampler cadence.", promFloat(s.SampleEvery.Seconds()))
		}
	}

	sort.Slice(families, func(i, j int) bool { return families[i].name < families[j].name })
	var b strings.Builder
	for _, f := range families {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, line := range f.lines {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}
