// Package sysimage models a configured system image: file-system metadata,
// user and group accounts, registered network services, environment
// variables, and hardware/OS facts.
//
// EnCore treats systems as structured data. Everything the detector needs
// to know about the environment a configuration runs in — who owns a
// directory, whether a path is a regular file, which user ids exist,
// whether SELinux is enforcing — is a metadata lookup against an Image.
// The paper's data collector crawls real VM images; here an Image is built
// either synthetically (internal/corpus) or loaded from a JSON snapshot, but
// the query surface is identical in both cases.
package sysimage

import (
	"fmt"
	"path"
	"sort"
	"strings"
)

// FileKind discriminates file-system object kinds.
type FileKind int

const (
	// KindFile is a regular file.
	KindFile FileKind = iota
	// KindDir is a directory.
	KindDir
	// KindSymlink is a symbolic link.
	KindSymlink
)

// String returns the short human-readable kind name ("file", "dir",
// "symlink").
func (k FileKind) String() string {
	switch k {
	case KindFile:
		return "file"
	case KindDir:
		return "dir"
	case KindSymlink:
		return "symlink"
	default:
		return fmt.Sprintf("FileKind(%d)", int(k))
	}
}

// FileMeta is the per-object file-system metadata the collector gathers.
// Contents of regular files are not captured except for the configuration
// files themselves (held separately in ConfigFiles).
type FileMeta struct {
	Path   string   `json:"path"`
	Kind   FileKind `json:"kind"`
	Owner  string   `json:"owner"`
	Group  string   `json:"group"`
	Mode   uint32   `json:"mode"` // permission bits, e.g. 0o644
	Size   int64    `json:"size"`
	Target string   `json:"target,omitempty"` // symlink target
}

// User is an /etc/passwd row.
type User struct {
	Name    string `json:"name"`
	UID     int    `json:"uid"`
	GID     int    `json:"gid"`
	Home    string `json:"home"`
	Shell   string `json:"shell"`
	IsAdmin bool   `json:"isAdmin"` // sudoer or uid 0
}

// Group is an /etc/group row.
type Group struct {
	Name    string   `json:"name"`
	GID     int      `json:"gid"`
	Members []string `json:"members"`
}

// Service is an /etc/services row.
type Service struct {
	Name     string `json:"name"`
	Port     int    `json:"port"`
	Protocol string `json:"protocol"`
}

// Hardware captures the hardware specification of a (running) instance.
// For dormant images (e.g. freshly crawled EC2 templates) it is absent:
// Present is false and all probes fail. Table 9 case #8 depends on this.
type Hardware struct {
	Present    bool  `json:"present"`
	CPUCores   int   `json:"cpuCores"`
	CPUThreads int   `json:"cpuThreads"`
	CPUFreqMHz int   `json:"cpuFreqMHz"`
	MemBytes   int64 `json:"memBytes"`
	DiskBytes  int64 `json:"diskBytes"`
}

// OSInfo captures distribution facts and security-module state.
type OSInfo struct {
	DistName  string `json:"distName"`
	Version   string `json:"version"`
	SELinux   string `json:"seLinux"`  // "enforcing", "permissive", "disabled"
	AppArmor  bool   `json:"appArmor"` // an AppArmor profile confines the app
	FSType    string `json:"fsType"`
	HostName  string `json:"hostName"`
	IPAddress string `json:"ipAddress"`
}

// ConfigFile is a raw configuration file captured from the image.
type ConfigFile struct {
	App     string `json:"app"`     // "apache", "mysql", "php", "sshd"
	Path    string `json:"path"`    // location inside the image
	Content string `json:"content"` // raw text
}

// Image is a complete captured system image: the raw data the EnCore data
// collector produces for one system.
type Image struct {
	ID          string               `json:"id"`
	ConfigFiles []ConfigFile         `json:"configFiles"`
	Files       map[string]*FileMeta `json:"files"`
	Users       map[string]*User     `json:"users"`
	Groups      map[string]*Group    `json:"groups"`
	Services    []Service            `json:"services"`
	Env         map[string]string    `json:"env"` // only for running instances
	HW          Hardware             `json:"hw"`
	OS          OSInfo               `json:"os"`
}

// New returns an empty image with all maps initialized.
func New(id string) *Image {
	return &Image{
		ID:     id,
		Files:  make(map[string]*FileMeta),
		Users:  make(map[string]*User),
		Groups: make(map[string]*Group),
		Env:    make(map[string]string),
	}
}

// Clone returns a deep copy of the image. The corpus generator derives
// target images from templates by cloning and mutating.
func (im *Image) Clone() *Image {
	c := New(im.ID)
	c.HW = im.HW
	c.OS = im.OS
	c.ConfigFiles = append([]ConfigFile(nil), im.ConfigFiles...)
	c.Services = append([]Service(nil), im.Services...)
	for p, fm := range im.Files {
		dup := *fm
		c.Files[p] = &dup
	}
	for n, u := range im.Users {
		dup := *u
		c.Users[n] = &dup
	}
	for n, g := range im.Groups {
		dup := *g
		dup.Members = append([]string(nil), g.Members...)
		c.Groups[n] = &dup
	}
	for k, v := range im.Env {
		c.Env[k] = v
	}
	return c
}

// normalize cleans a path for lookup: collapses duplicate separators and
// trailing slashes (except root).
func normalize(p string) string {
	if p == "" {
		return p
	}
	cleaned := path.Clean(p)
	return cleaned
}

// AddFile records file metadata, creating parent directories implicitly
// (root-owned 0755) when absent so that lookups on ancestors succeed.
func (im *Image) AddFile(meta FileMeta) {
	meta.Path = normalize(meta.Path)
	im.ensureParents(meta.Path)
	m := meta
	im.Files[meta.Path] = &m
}

// AddDir is a convenience wrapper adding a directory.
func (im *Image) AddDir(p, owner, group string, mode uint32) {
	im.AddFile(FileMeta{Path: p, Kind: KindDir, Owner: owner, Group: group, Mode: mode})
}

// AddRegular is a convenience wrapper adding a regular file.
func (im *Image) AddRegular(p, owner, group string, mode uint32, size int64) {
	im.AddFile(FileMeta{Path: p, Kind: KindFile, Owner: owner, Group: group, Mode: mode, Size: size})
}

// AddSymlink records a symbolic link pointing at target.
func (im *Image) AddSymlink(p, target, owner, group string) {
	im.AddFile(FileMeta{Path: p, Kind: KindSymlink, Owner: owner, Group: group, Mode: 0o777, Target: target})
}

func (im *Image) ensureParents(p string) {
	for dir := path.Dir(p); dir != "/" && dir != "." && dir != ""; dir = path.Dir(dir) {
		if _, ok := im.Files[dir]; !ok {
			im.Files[dir] = &FileMeta{Path: dir, Kind: KindDir, Owner: "root", Group: "root", Mode: 0o755}
		}
	}
	if _, ok := im.Files["/"]; !ok && strings.HasPrefix(p, "/") {
		im.Files["/"] = &FileMeta{Path: "/", Kind: KindDir, Owner: "root", Group: "root", Mode: 0o755}
	}
}

// Lookup returns the metadata for a path, or nil if absent.
func (im *Image) Lookup(p string) *FileMeta {
	return im.Files[normalize(p)]
}

// Exists reports whether a path exists in the image.
func (im *Image) Exists(p string) bool { return im.Lookup(p) != nil }

// IsDir reports whether a path exists and is a directory (symlinks are
// resolved one level).
func (im *Image) IsDir(p string) bool {
	fm := im.Resolve(p)
	return fm != nil && fm.Kind == KindDir
}

// IsFile reports whether a path exists and is a regular file (symlinks are
// resolved one level).
func (im *Image) IsFile(p string) bool {
	fm := im.Resolve(p)
	return fm != nil && fm.Kind == KindFile
}

// Resolve follows symlinks (bounded, to tolerate cycles) and returns the
// final metadata, or nil.
func (im *Image) Resolve(p string) *FileMeta {
	fm := im.Lookup(p)
	for hops := 0; fm != nil && fm.Kind == KindSymlink && hops < 8; hops++ {
		fm = im.Lookup(fm.Target)
	}
	return fm
}

// Children returns the direct children of a directory, sorted by path.
func (im *Image) Children(dir string) []*FileMeta {
	dir = normalize(dir)
	var out []*FileMeta
	for p, fm := range im.Files {
		if p != dir && path.Dir(p) == dir {
			out = append(out, fm)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// HasSubdir reports whether the directory contains at least one
// sub-directory.
func (im *Image) HasSubdir(dir string) bool {
	for _, c := range im.Children(dir) {
		if c.Kind == KindDir {
			return true
		}
	}
	return false
}

// HasSymlink reports whether the directory contains at least one symbolic
// link.
func (im *Image) HasSymlink(dir string) bool {
	for _, c := range im.Children(dir) {
		if c.Kind == KindSymlink {
			return true
		}
	}
	return false
}

// UserExists reports whether the named user is present in /etc/passwd.
func (im *Image) UserExists(name string) bool {
	_, ok := im.Users[name]
	return ok
}

// GroupExists reports whether the named group is present in /etc/group.
func (im *Image) GroupExists(name string) bool {
	_, ok := im.Groups[name]
	return ok
}

// UserInGroup reports whether user belongs to group, either via primary GID
// or group membership list.
func (im *Image) UserInGroup(user, group string) bool {
	g, ok := im.Groups[group]
	if !ok {
		return false
	}
	if u, ok := im.Users[user]; ok && u.GID == g.GID {
		return true
	}
	for _, m := range g.Members {
		if m == user {
			return true
		}
	}
	return false
}

// IsAdmin reports whether the user has administrative privilege.
func (im *Image) IsAdmin(user string) bool {
	u, ok := im.Users[user]
	return ok && (u.IsAdmin || u.UID == 0)
}

// PrimaryGroup returns the name of the user's primary group ("" if
// unknown).
func (im *Image) PrimaryGroup(user string) string {
	u, ok := im.Users[user]
	if !ok {
		return ""
	}
	for name, g := range im.Groups {
		if g.GID == u.GID {
			return name
		}
	}
	return ""
}

// PortRegistered reports whether the port appears in /etc/services.
func (im *Image) PortRegistered(port int) bool {
	for _, s := range im.Services {
		if s.Port == port {
			return true
		}
	}
	return false
}

// ServiceForPort returns the registered service name for a port, or "".
func (im *Image) ServiceForPort(port int) string {
	for _, s := range im.Services {
		if s.Port == port {
			return s.Name
		}
	}
	return ""
}

// Accessible reports whether the named user can read the object at path,
// applying the standard owner/group/other permission-bit semantics plus
// root override. Missing paths or unknown users are inaccessible.
func (im *Image) Accessible(user, p string) bool {
	return im.permitted(user, p, 4)
}

// Writable reports whether the named user can write the object at path.
func (im *Image) Writable(user, p string) bool {
	return im.permitted(user, p, 2)
}

func (im *Image) permitted(user, p string, bit uint32) bool {
	fm := im.Resolve(p)
	if fm == nil {
		return false
	}
	if im.IsAdmin(user) {
		return true
	}
	u, ok := im.Users[user]
	if !ok {
		return false
	}
	switch {
	case fm.Owner == user:
		return fm.Mode&(bit<<6) != 0
	case im.UserInGroup(user, fm.Group) || im.PrimaryGroup(user) == fm.Group:
		return fm.Mode&(bit<<3) != 0
	default:
		_ = u
		return fm.Mode&bit != 0
	}
}

// ConfigFor returns the app's primary (first) configuration file, or nil.
func (im *Image) ConfigFor(app string) *ConfigFile {
	for i := range im.ConfigFiles {
		if im.ConfigFiles[i].App == app {
			return &im.ConfigFiles[i]
		}
	}
	return nil
}

// ConfigsFor returns every configuration file captured for an app, in
// capture order — the primary file first, then any included fragments
// (Apache conf.d files and the like).
func (im *Image) ConfigsFor(app string) []*ConfigFile {
	var out []*ConfigFile
	for i := range im.ConfigFiles {
		if im.ConfigFiles[i].App == app {
			out = append(out, &im.ConfigFiles[i])
		}
	}
	return out
}

// AddConfig appends an additional configuration file for an app (an
// included fragment). Unlike SetConfig it never replaces an existing file.
func (im *Image) AddConfig(app, path, content string) {
	im.ConfigFiles = append(im.ConfigFiles, ConfigFile{App: app, Path: path, Content: content})
}

// SetConfig replaces (or adds) the configuration file for an app.
func (im *Image) SetConfig(app, path, content string) {
	for i := range im.ConfigFiles {
		if im.ConfigFiles[i].App == app {
			im.ConfigFiles[i].Path = path
			im.ConfigFiles[i].Content = content
			return
		}
	}
	im.ConfigFiles = append(im.ConfigFiles, ConfigFile{App: app, Path: path, Content: content})
}

// FileList returns every path in the image, sorted. It backs the
// FS.FileList accessor exposed to customization code (Table 7).
func (im *Image) FileList() []string {
	out := make([]string, 0, len(im.Files))
	for p := range im.Files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// UserList returns every account name, sorted (Acct.UserList).
func (im *Image) UserList() []string {
	out := make([]string, 0, len(im.Users))
	for n := range im.Users {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// GroupList returns every group name, sorted (Acct.GroupList).
func (im *Image) GroupList() []string {
	out := make([]string, 0, len(im.Groups))
	for n := range im.Groups {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
