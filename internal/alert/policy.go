// Alert policy: the YAML document operators write to govern routing.
// The container image carries no YAML dependency, so this file includes
// a small parser for the strict subset the policy schema needs: nested
// block maps, block sequences of maps, inline flow lists ([a, b]),
// quoted and plain scalars, and # comments. Two-space indentation,
// spaces only. Unknown keys are errors — a misconfigured misconfig
// detector would be embarrassing.
//
// Schema (see examples/alerts.yaml for a commented instance):
//
//	version: 1               # required, must be 1
//	queue_size: 256          # bounded queue capacity (default 256)
//	ring_size: 128           # recent-alert ring capacity (default 128)
//	dedup_window: 30s        # suppress repeats of (app, attr, family); 0 = off
//	rate_limit: 120          # max deliveries per minute; 0 = unlimited
//	min_severity: low        # global severity floor: low | medium | high
//	notifiers:
//	  - name: ops-log        # unique handle used in metrics + rules.notify
//	    type: slog           # slog | file | webhook
//	  - name: audit
//	    type: file
//	    path: alerts.jsonl   # JSONL append target (file type)
//	  - name: pager
//	    type: webhook
//	    url: http://...      # POST target (webhook type)
//	    timeout: 2s          # per-attempt timeout (default 5s)
//	    retries: 3           # extra attempts after the first (default 2)
//	    backoff: 200ms       # exponential backoff base (default 500ms)
//	rules:                   # first match by family wins; "*" catches the rest
//	  - family: correlation  # detect.Kind or "*"
//	    enabled: true        # default true; false suppresses the family
//	    min_severity: medium # per-family floor (raises the global floor)
//	    notify: [pager]      # notifier names; omit to use every notifier
//
// When rules is omitted every alert at or above min_severity goes to
// every notifier. When rules is present, families matching no rule are
// suppressed — include a "*" rule to catch the rest.
package alert

import (
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"time"
)

// PolicyError reports an invalid policy document.
type PolicyError struct {
	// Line is the 1-based source line, when known (0 for semantic
	// errors with no single line).
	Line int
	Msg  string
}

func (e *PolicyError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("alert policy: line %d: %s", e.Line, e.Msg)
	}
	return "alert policy: " + e.Msg
}

// NotifierConfig is one notifier declaration in the policy.
type NotifierConfig struct {
	// Name is the unique handle used in metrics labels and rule routing.
	Name string
	// Type selects the implementation: "slog", "file", or "webhook".
	Type string
	// Path is the JSONL append target (file type).
	Path string
	// URL is the POST target (webhook type).
	URL string
	// Timeout bounds one webhook attempt (0 = DefaultWebhookTimeout).
	Timeout time.Duration
	// Retries is the number of extra webhook attempts after the first
	// (-1 = unset, defaults to DefaultWebhookRetries).
	Retries int
	// Backoff is the webhook exponential-backoff base
	// (0 = DefaultWebhookBackoff).
	Backoff time.Duration
}

// Rule routes one warning family. The zero Family is invalid; "*"
// matches any family not matched by an earlier rule.
type Rule struct {
	Family string
	// Enabled false suppresses the family entirely.
	Enabled bool
	// MinSeverity raises the global floor for this family ("" = no
	// per-family floor).
	MinSeverity Severity
	// Notify lists notifier names; nil routes to every notifier.
	Notify []string
}

// Policy is the parsed, validated alerting policy.
type Policy struct {
	Version     int
	QueueSize   int
	RingSize    int
	DedupWindow time.Duration
	// RateLimit caps deliveries per minute (token bucket); 0 = unlimited.
	RateLimit   int
	MinSeverity Severity
	Notifiers   []NotifierConfig
	Rules       []Rule
}

// Policy defaults.
const (
	DefaultQueueSize = 256
	DefaultRingSize  = 128
)

// DefaultPolicy is the policy used when no file is given: unlimited
// rate, no dedup, low severity floor, route everything to every
// (caller-injected) notifier.
func DefaultPolicy() *Policy {
	return &Policy{
		Version:     1,
		QueueSize:   DefaultQueueSize,
		RingSize:    DefaultRingSize,
		MinSeverity: SeverityLow,
	}
}

// route resolves (family, severity) against the policy: the returned
// names are the notifiers to deliver to (nil = all), ok false means the
// alert is suppressed. First rule matching the family wins, then a "*"
// rule; with no rules at all, everything at or above the global floor
// routes to every notifier.
func (p *Policy) route(family string, sev Severity) (notify []string, ok bool) {
	floor := p.MinSeverity.rank()
	var r *Rule
	for i := range p.Rules {
		if p.Rules[i].Family == family {
			r = &p.Rules[i]
			break
		}
	}
	if r == nil {
		for i := range p.Rules {
			if p.Rules[i].Family == "*" {
				r = &p.Rules[i]
				break
			}
		}
	}
	if r != nil {
		if !r.Enabled {
			return nil, false
		}
		if pr := r.MinSeverity.rank(); pr > floor {
			floor = pr
		}
		if sev.rank() < floor {
			return nil, false
		}
		return r.Notify, true
	}
	if len(p.Rules) > 0 {
		return nil, false
	}
	if sev.rank() < floor {
		return nil, false
	}
	return nil, true
}

// LoadPolicyFile reads and parses a policy YAML file.
func LoadPolicyFile(path string) (*Policy, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("alert policy: %w", err)
	}
	return ParsePolicy(data)
}

// ParsePolicy parses and validates a policy document.
func ParsePolicy(data []byte) (*Policy, error) {
	doc, err := parseYAMLSubset(data)
	if err != nil {
		return nil, err
	}
	p := DefaultPolicy()
	p.Version = 0 // version is required in an explicit document
	for _, kv := range doc {
		switch kv.key {
		case "version":
			if p.Version, err = atoiField(kv); err != nil {
				return nil, err
			}
		case "queue_size":
			if p.QueueSize, err = atoiField(kv); err != nil {
				return nil, err
			}
		case "ring_size":
			if p.RingSize, err = atoiField(kv); err != nil {
				return nil, err
			}
		case "dedup_window":
			if p.DedupWindow, err = durationField(kv); err != nil {
				return nil, err
			}
		case "rate_limit":
			if p.RateLimit, err = atoiField(kv); err != nil {
				return nil, err
			}
		case "min_severity":
			if p.MinSeverity, err = severityField(kv); err != nil {
				return nil, err
			}
		case "notifiers":
			items, err := seqOfMaps(kv)
			if err != nil {
				return nil, err
			}
			for _, item := range items {
				nc, err := parseNotifier(item)
				if err != nil {
					return nil, err
				}
				p.Notifiers = append(p.Notifiers, nc)
			}
		case "rules":
			items, err := seqOfMaps(kv)
			if err != nil {
				return nil, err
			}
			for _, item := range items {
				r, err := parseRule(item)
				if err != nil {
					return nil, err
				}
				p.Rules = append(p.Rules, r)
			}
		default:
			return nil, &PolicyError{Line: kv.line, Msg: "unknown key " + strconv.Quote(kv.key)}
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Validate checks the policy's internal consistency (a pipeline built
// with injected notifiers re-checks rule routing against the injected
// set instead).
func (p *Policy) Validate() error {
	if p.Version != 1 {
		return &PolicyError{Msg: fmt.Sprintf("unsupported version %d (want 1)", p.Version)}
	}
	if p.QueueSize <= 0 {
		return &PolicyError{Msg: fmt.Sprintf("queue_size must be positive, got %d", p.QueueSize)}
	}
	if p.RingSize <= 0 {
		return &PolicyError{Msg: fmt.Sprintf("ring_size must be positive, got %d", p.RingSize)}
	}
	if p.RateLimit < 0 {
		return &PolicyError{Msg: fmt.Sprintf("rate_limit must be >= 0, got %d", p.RateLimit)}
	}
	if p.DedupWindow < 0 {
		return &PolicyError{Msg: "dedup_window must be >= 0"}
	}
	seen := map[string]bool{}
	for _, n := range p.Notifiers {
		if n.Name == "" {
			return &PolicyError{Msg: "notifier missing name"}
		}
		if seen[n.Name] {
			return &PolicyError{Msg: "duplicate notifier name " + strconv.Quote(n.Name)}
		}
		seen[n.Name] = true
		switch n.Type {
		case "slog":
		case "file":
			if n.Path == "" {
				return &PolicyError{Msg: "file notifier " + n.Name + " missing path"}
			}
		case "webhook":
			if n.URL == "" {
				return &PolicyError{Msg: "webhook notifier " + n.Name + " missing url"}
			}
		default:
			return &PolicyError{Msg: "notifier " + n.Name + ": unknown type " + strconv.Quote(n.Type) + " (want slog, file, or webhook)"}
		}
	}
	for _, r := range p.Rules {
		if r.Family == "" {
			return &PolicyError{Msg: "rule missing family"}
		}
		for _, name := range r.Notify {
			if !seen[name] {
				return &PolicyError{Msg: "rule for family " + r.Family + " routes to unknown notifier " + strconv.Quote(name)}
			}
		}
	}
	return nil
}

// parseNotifier decodes one notifiers[] item.
func parseNotifier(item []field) (NotifierConfig, error) {
	nc := NotifierConfig{Retries: -1}
	var err error
	for _, kv := range item {
		switch kv.key {
		case "name":
			nc.Name, err = scalarField(kv)
		case "type":
			nc.Type, err = scalarField(kv)
		case "path":
			nc.Path, err = scalarField(kv)
		case "url":
			nc.URL, err = scalarField(kv)
		case "timeout":
			nc.Timeout, err = durationField(kv)
		case "retries":
			nc.Retries, err = atoiField(kv)
		case "backoff":
			nc.Backoff, err = durationField(kv)
		default:
			err = &PolicyError{Line: kv.line, Msg: "unknown notifier key " + strconv.Quote(kv.key)}
		}
		if err != nil {
			return nc, err
		}
	}
	return nc, nil
}

// parseRule decodes one rules[] item.
func parseRule(item []field) (Rule, error) {
	r := Rule{Enabled: true}
	var err error
	for _, kv := range item {
		switch kv.key {
		case "family":
			r.Family, err = scalarField(kv)
		case "enabled":
			var s string
			if s, err = scalarField(kv); err == nil {
				switch s {
				case "true":
					r.Enabled = true
				case "false":
					r.Enabled = false
				default:
					err = &PolicyError{Line: kv.line, Msg: "enabled must be true or false, got " + strconv.Quote(s)}
				}
			}
		case "min_severity":
			r.MinSeverity, err = severityField(kv)
		case "notify":
			r.Notify, err = listField(kv)
		default:
			err = &PolicyError{Line: kv.line, Msg: "unknown rule key " + strconv.Quote(kv.key)}
		}
		if err != nil {
			return r, err
		}
	}
	return r, nil
}

// ParseSeverity validates a severity name.
func ParseSeverity(s string) (Severity, error) {
	sev := Severity(s)
	if sev.rank() < 0 {
		return "", fmt.Errorf("unknown severity %q (want low, medium, or high)", s)
	}
	return sev, nil
}

// --- typed field accessors over the generic parse tree ---

func scalarField(kv field) (string, error) {
	s, ok := kv.value.(string)
	if !ok {
		return "", &PolicyError{Line: kv.line, Msg: kv.key + ": expected a scalar value"}
	}
	return s, nil
}

func atoiField(kv field) (int, error) {
	s, err := scalarField(kv)
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, &PolicyError{Line: kv.line, Msg: kv.key + ": expected an integer, got " + strconv.Quote(s)}
	}
	return n, nil
}

func durationField(kv field) (time.Duration, error) {
	s, err := scalarField(kv)
	if err != nil {
		return 0, err
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, &PolicyError{Line: kv.line, Msg: kv.key + ": expected a duration like 30s, got " + strconv.Quote(s)}
	}
	return d, nil
}

func severityField(kv field) (Severity, error) {
	s, err := scalarField(kv)
	if err != nil {
		return "", err
	}
	sev, err := ParseSeverity(s)
	if err != nil {
		return "", &PolicyError{Line: kv.line, Msg: kv.key + ": " + err.Error()}
	}
	return sev, nil
}

func listField(kv field) ([]string, error) {
	switch v := kv.value.(type) {
	case []string:
		return v, nil
	case string:
		return nil, &PolicyError{Line: kv.line, Msg: kv.key + ": expected a list like [a, b]"}
	}
	return nil, &PolicyError{Line: kv.line, Msg: kv.key + ": expected a list"}
}

func seqOfMaps(kv field) ([][]field, error) {
	items, ok := kv.value.([][]field)
	if !ok {
		return nil, &PolicyError{Line: kv.line, Msg: kv.key + ": expected a block sequence of maps"}
	}
	return items, nil
}

// --- YAML-subset parser ---
//
// The grammar is exactly what the schema above needs: a top-level block
// map whose values are scalars or block sequences; sequence items are
// flat maps of scalars or inline flow lists. Field order is preserved so
// error messages and rule precedence match the document.

// field is one key of a block map, carrying its source line for errors.
type field struct {
	key   string
	value any // string | []string | [][]field
	line  int
}

// yline is one meaningful source line.
type yline struct {
	indent int
	text   string
	num    int
}

// parseYAMLSubset tokenizes the document into indented lines and parses
// the top-level map.
func parseYAMLSubset(data []byte) ([]field, error) {
	var lines []yline
	for num, raw := range strings.Split(string(data), "\n") {
		if strings.Contains(raw, "\t") {
			return nil, &PolicyError{Line: num + 1, Msg: "tab indentation is not supported (use spaces)"}
		}
		text := stripComment(raw)
		trimmed := strings.TrimSpace(text)
		if trimmed == "" {
			continue
		}
		lines = append(lines, yline{
			indent: len(text) - len(strings.TrimLeft(text, " ")),
			text:   trimmed,
			num:    num + 1,
		})
	}
	var doc []field
	i := 0
	for i < len(lines) {
		ln := lines[i]
		if ln.indent != 0 {
			return nil, &PolicyError{Line: ln.num, Msg: "unexpected indentation at top level"}
		}
		kv, next, err := parseEntry(lines, i)
		if err != nil {
			return nil, err
		}
		doc = append(doc, kv)
		i = next
	}
	return doc, nil
}

// stripComment removes a trailing "#" comment that is not inside a
// quoted scalar. Full-line comments reduce to the empty string.
func stripComment(s string) string {
	inSingle, inDouble := false, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case '#':
			if !inSingle && !inDouble && (i == 0 || s[i-1] == ' ') {
				return s[:i]
			}
		}
	}
	return s
}

// parseEntry parses one "key:" or "key: value" map entry starting at
// lines[i]; a bare "key:" opens a block sequence at deeper indentation.
func parseEntry(lines []yline, i int) (field, int, error) {
	ln := lines[i]
	key, rest, ok := strings.Cut(ln.text, ":")
	if !ok || key == "" || strings.ContainsAny(key, " [{") {
		return field{}, 0, &PolicyError{Line: ln.num, Msg: "expected \"key: value\", got " + strconv.Quote(ln.text)}
	}
	rest = strings.TrimSpace(rest)
	kv := field{key: key, line: ln.num}
	if rest != "" {
		v, err := parseScalarOrFlow(rest, ln.num)
		if err != nil {
			return field{}, 0, err
		}
		kv.value = v
		return kv, i + 1, nil
	}
	// Block value: the only nested structure in the schema is a sequence
	// of flat maps.
	if i+1 >= len(lines) || lines[i+1].indent <= ln.indent {
		return field{}, 0, &PolicyError{Line: ln.num, Msg: key + ": missing value (empty sections are not allowed)"}
	}
	items, next, err := parseSeq(lines, i+1, lines[i+1].indent)
	if err != nil {
		return field{}, 0, err
	}
	kv.value = items
	return kv, next, nil
}

// parseSeq parses a block sequence of flat maps at the given indent.
func parseSeq(lines []yline, i, indent int) ([][]field, int, error) {
	var items [][]field
	for i < len(lines) && lines[i].indent >= indent {
		ln := lines[i]
		if ln.indent != indent || !strings.HasPrefix(ln.text, "- ") {
			return nil, 0, &PolicyError{Line: ln.num, Msg: "expected a \"- key: value\" sequence item"}
		}
		// The first key rides on the "- " line; its continuation keys sit
		// two columns deeper (aligned under the first key).
		first := yline{indent: indent + 2, text: strings.TrimSpace(ln.text[2:]), num: ln.num}
		item, next, err := parseItem(lines, i, first)
		if err != nil {
			return nil, 0, err
		}
		items = append(items, item)
		i = next
	}
	return items, i, nil
}

// parseItem parses one sequence item: the inlined first key plus any
// continuation keys at the item's alignment.
func parseItem(lines []yline, i int, first yline) ([]field, int, error) {
	key, rest, ok := strings.Cut(first.text, ":")
	if !ok || key == "" || strings.ContainsAny(key, " [{") {
		return nil, 0, &PolicyError{Line: first.num, Msg: "sequence item must be \"key: value\", got " + strconv.Quote(first.text)}
	}
	v, err := parseScalarOrFlow(strings.TrimSpace(rest), first.num)
	if err != nil {
		return nil, 0, err
	}
	item := []field{{key: key, value: v, line: first.num}}
	i++
	for i < len(lines) && lines[i].indent == first.indent && !strings.HasPrefix(lines[i].text, "- ") {
		kv, next, err := parseEntry(lines, i)
		if err != nil {
			return nil, 0, err
		}
		item = append(item, kv)
		i = next
	}
	if i < len(lines) && lines[i].indent > first.indent {
		return nil, 0, &PolicyError{Line: lines[i].num, Msg: "unexpected indentation"}
	}
	return item, i, nil
}

// parseScalarOrFlow parses a scalar or an inline flow list "[a, b]".
func parseScalarOrFlow(s string, line int) (any, error) {
	if s == "" {
		return nil, &PolicyError{Line: line, Msg: "missing value"}
	}
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return nil, &PolicyError{Line: line, Msg: "unterminated flow list " + strconv.Quote(s)}
		}
		inner := strings.TrimSpace(s[1 : len(s)-1])
		if inner == "" {
			return []string{}, nil
		}
		parts := strings.Split(inner, ",")
		out := make([]string, 0, len(parts))
		for _, part := range parts {
			v, err := unquoteScalar(strings.TrimSpace(part), line)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	}
	return unquoteScalar(s, line)
}

// unquoteScalar strips matching single or double quotes. Escapes are not
// supported — none of the schema's values need them.
func unquoteScalar(s string, line int) (string, error) {
	if len(s) >= 2 && (s[0] == '"' || s[0] == '\'') {
		if s[len(s)-1] != s[0] {
			return "", &PolicyError{Line: line, Msg: "unterminated quoted scalar " + strconv.Quote(s)}
		}
		return s[1 : len(s)-1], nil
	}
	return s, nil
}

// severityLogLevel maps a severity to the slog level the slog notifier
// records at.
func severityLogLevel(s Severity) slog.Level {
	switch s {
	case SeverityHigh:
		return slog.LevelError
	case SeverityMedium:
		return slog.LevelWarn
	default:
		return slog.LevelInfo
	}
}
