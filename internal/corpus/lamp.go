package corpus

import (
	"fmt"
	"math/rand"

	"repro/internal/conftypes"
	"repro/internal/sysimage"
)

// BuildLAMP generates one coherent full-stack image with Apache, MySQL,
// and PHP configured together. This is the paper's future-work extension
// made concrete: "the configuration of other components can be seen as one
// kind of environment factors." Because the assembler namespaces
// attributes per application and the rule engine is type-driven, the
// existing templates learn *cross-component* rules from these images with
// no new machinery:
//
//   - php:PHP/mysqli.default_socket == mysql:mysqld/socket (the web tier
//     must talk to the local database's actual socket),
//   - php:Session/session.save_path => apache:User (the web server
//     account owns the session store),
//   - php:PHP/upload_max_filesize below apache:LimitRequestBody (requests
//     Apache refuses can never reach PHP's upload handler).
func (b *Builder) BuildLAMP() error {
	img := b.Img
	b.SetOS()

	// The request-body ceiling is chosen first so the PHP limits generated
	// below (at most 32M post size) always fit under it.
	limitBody := int64(Pick(b.Rng, []int{64, 128, 256})) << 20
	b.BuildApache(ApacheOptions{LimitRequestBody: limitBody})
	apacheUser, ok := findConfValue(img, "apache", "User")
	if !ok {
		return fmt.Errorf("corpus: LAMP build lost the Apache user")
	}

	b.BuildMySQL(MySQLOptions{})
	socket, ok := findConfValue(img, "mysql", "socket")
	if !ok {
		return fmt.Errorf("corpus: LAMP build lost the MySQL socket")
	}

	b.BuildPHP(PHPOptions{MySQLSocket: socket, SessionOwner: apacheUser})
	return nil
}

// LAMPTraining generates n clean LAMP-stack images.
func LAMPTraining(n int, seed int64) ([]*sysimage.Image, error) {
	rng := rand.New(rand.NewSource(seed))
	images := make([]*sysimage.Image, 0, n)
	for i := 0; i < n; i++ {
		b := NewBuilder(fmt.Sprintf("lamp-train-%03d", i), rng)
		if err := b.BuildLAMP(); err != nil {
			return nil, err
		}
		images = append(images, b.Img)
	}
	return images, nil
}

// LAMPTrueRules lists the cross-component correlations that hold by
// construction in clean LAMP images (in addition to each component's own
// TrueRules).
func LAMPTrueRules() []TrueRule {
	return []TrueRule{
		{Template: "eq", AttrA: "mysql:mysqld/socket", AttrB: "php:PHP/mysqli.default_socket"},
		{Template: "match-one", AttrA: "mysql:mysqld/socket", AttrB: "php:PHP/mysqli.default_socket"},
		{Template: "match-one", AttrA: "php:PHP/mysqli.default_socket", AttrB: "mysql:mysqld/socket"},
		{Template: "eq", AttrA: "mysql:client/socket", AttrB: "php:PHP/mysqli.default_socket"},
		{Template: "match-one", AttrA: "mysql:client/socket", AttrB: "php:PHP/mysqli.default_socket"},
		{Template: "match-one", AttrA: "php:PHP/mysqli.default_socket", AttrB: "mysql:client/socket"},
		{Template: "owner", AttrA: "php:Session/session.save_path", AttrB: "apache:User"},
		{Template: "substr", AttrA: "mysql:mysqld/datadir", AttrB: "php:PHP/mysqli.default_socket"},
	}
}

// LAMPEntryTypes merges the per-component ground-truth types.
func LAMPEntryTypes() map[string]conftypes.Type {
	out := map[string]conftypes.Type{}
	for _, m := range []map[string]conftypes.Type{ApacheEntryTypes(), MySQLEntryTypes(), PHPEntryTypes()} {
		for k, v := range m {
			out[k] = v
		}
	}
	return out
}

// BreakLAMPSocket clones a LAMP image and points PHP's
// mysqli.default_socket at a stale path — the classic "web tier cannot
// reach the database after the datadir moved" cross-component failure.
func BreakLAMPSocket(img *sysimage.Image) *sysimage.Image {
	c := img.Clone()
	c.ID = img.ID + "-broken-socket"
	cf := c.ConfigFor("php")
	old, ok := findConfValue(c, "php", "mysqli.default_socket")
	if ok {
		c.SetConfig("php", cf.Path, replaceValue(cf.Content, old, "/var/run/mysqld/mysqld.sock"))
	}
	return c
}

// BreakLAMPSessionOwner clones a LAMP image and chowns the PHP session
// directory away from the Apache account.
func BreakLAMPSessionOwner(img *sysimage.Image) *sysimage.Image {
	c := img.Clone()
	c.ID = img.ID + "-broken-session"
	if dir, ok := findConfValue(c, "php", "session.save_path"); ok {
		if fm := c.Lookup(dir); fm != nil {
			fm.Owner = "root"
			fm.Group = "root"
			fm.Mode = 0o700
		}
	}
	return c
}
