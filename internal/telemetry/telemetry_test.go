package telemetry

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Add("x", 1)
	r.Observe("y", time.Second)
	r.StartStage("z")()
	if r.Counter("x") != 0 {
		t.Fatal("nil recorder should read zero")
	}
	if s := r.Snapshot(); len(s.Counters) != 0 || len(s.Stages) != 0 {
		t.Fatal("nil recorder snapshot should be empty")
	}
}

func TestCountersAndStages(t *testing.T) {
	r := New()
	r.Add(CounterImagesParsed, 3)
	r.Add(CounterImagesParsed, 2)
	r.Observe(StageAssembleParse, 10*time.Millisecond)
	r.Observe(StageAssembleParse, 5*time.Millisecond)
	if got := r.Counter(CounterImagesParsed); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	s := r.Snapshot()
	if len(s.Stages) != 1 || s.Stages[0].Total != 15*time.Millisecond || s.Stages[0].Runs != 2 {
		t.Fatalf("stage snapshot = %+v", s.Stages)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Add("n", 1)
				r.Observe("s", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n"); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

// TestRenderGolden locks the -stats output format: a deterministic
// snapshot must render byte-identically to the committed golden file.
func TestRenderGolden(t *testing.T) {
	r := New()
	r.Add(CounterImagesParsed, 60)
	r.Add(CounterFilesParsed, 74)
	r.Add(CounterAttrsDeclared, 214)
	r.Add(CounterRulesValidated, 1520)
	r.Add(CounterRulesKept, 33)
	r.Add(CounterImagesScanned, 12)
	r.Add(CounterFindingsEmitted, 41)
	r.Add(CounterScanErrors, 1)
	r.Observe(StageAssembleParse, 1530*time.Microsecond)
	r.Observe(StageAssembleInfer, 2250*time.Microsecond)
	r.Observe(StageAssembleRows, 870*time.Microsecond)
	r.Observe(StageRulesInfer, 12400*time.Microsecond)
	r.Observe(StageScanBatch, 9100*time.Microsecond)
	r.Observe(StageScanBatch, 900*time.Microsecond)

	got := r.Render()
	golden := filepath.Join("testdata", "stats.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("stats rendering changed; run `go test ./internal/telemetry -update` if intended\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestRenderEmpty(t *testing.T) {
	if got := New().Render(); got != "stats:\n  (empty)\n" {
		t.Fatalf("empty render = %q", got)
	}
}

// TestRenderPadWidensForLongNames checks that a name longer than the
// historical 36-column floor widens the name column for every row instead
// of breaking alignment (the old fixed %-36s format left long names flush
// against their values).
func TestRenderPadWidensForLongNames(t *testing.T) {
	long := "scan.a.counter.name.that.is.much.wider.than.the.36.column.floor"
	if len(long) <= minRenderPad {
		t.Fatalf("test name must exceed the floor (%d <= %d)", len(long), minRenderPad)
	}
	r := New()
	r.Add(long, 7)
	r.Add("short", 1)
	r.Observe("stage", 5*time.Millisecond)

	lines := strings.Split(strings.TrimRight(r.Render(), "\n"), "\n")
	var valueCols []int
	for _, l := range lines {
		if !strings.HasPrefix(l, "    ") {
			continue
		}
		body := l[4:]
		name := body[:strings.IndexByte(body, ' ')]
		rest := body[len(name):]
		valueCols = append(valueCols, 4+len(name)+len(rest)-len(strings.TrimLeft(rest, " ")))
	}
	if len(valueCols) != 3 {
		t.Fatalf("expected 3 data rows, got %d:\n%s", len(valueCols), r.Render())
	}
	for _, c := range valueCols {
		if c != valueCols[0] {
			t.Fatalf("value columns misaligned (%v):\n%s", valueCols, r.Render())
		}
	}
	if want := 4 + len(long) + 1; valueCols[0] != want {
		t.Fatalf("value column = %d, want %d (pad from longest name)", valueCols[0], want)
	}
}

// TestRenderLatencySection checks histograms render as a latency block
// with the quantile summary.
func TestRenderLatencySection(t *testing.T) {
	r := New()
	r.ObserveDur(HistImageScan, 2*time.Millisecond)
	r.ObserveDur(HistImageScan, 8*time.Millisecond)
	out := r.Render()
	if !strings.Contains(out, "  latency:\n") {
		t.Fatalf("no latency section:\n%s", out)
	}
	if !strings.Contains(out, HistImageScan) || !strings.Contains(out, "n=2 p50=") {
		t.Fatalf("latency row malformed:\n%s", out)
	}
}
