package templates

import (
	"fmt"
	"regexp"
	"strings"

	"repro/internal/conftypes"
)

// The template grammar (Section 5.3.2): a template specification is two
// typed slots joined by a relation operator, e.g.
//
//	[A:Size] < [B:Size]
//	[A:FilePath] => [B:UserName]
//
// Slots name a placeholder and its data type; the operator selects a
// validation method, either one of the built-in operators or one
// registered by the user's customization file.

var specRe = regexp.MustCompile(`^\[([A-Za-z]\w*):([A-Za-z]\w*)\]\s*(\S+)\s*\[([A-Za-z]\w*):([A-Za-z]\w*)\]$`)

// opRegistry maps operator token + operand types to a validator. Built-in
// operators are seeded from the predefined templates; custom operators are
// added with RegisterOp.
type opKey struct {
	op string
	ta conftypes.Type
	tb conftypes.Type
}

var opRegistry = map[opKey]Validator{}

// RegisterOp installs (or overrides) the validator used when a template
// specification uses operator op between types ta and tb. User
// customizations may override the predefined meaning, as the paper allows.
func RegisterOp(op string, ta, tb conftypes.Type, v Validator) {
	opRegistry[opKey{op, ta, tb}] = v
}

// LookupOp returns the validator registered for an operator and operand
// types, trying the exact pair first and then the wildcard pair
// (TypeString, TypeString).
func LookupOp(op string, ta, tb conftypes.Type) (Validator, bool) {
	if v, ok := opRegistry[opKey{op, ta, tb}]; ok {
		return v, true
	}
	if v, ok := opRegistry[opKey{op, conftypes.TypeString, conftypes.TypeString}]; ok {
		return v, true
	}
	return nil, false
}

func init() {
	// Seed operator meanings from the predefined templates so that the
	// spec grammar can express every built-in relation.
	seed := map[string]string{
		"==": "eq", "=": "match-one", "->": "bool-implies",
		"<subnet": "subnet", "+": "concat", "substr": "substr",
		"in": "user-group", "!=": "not-access", "=>": "owner",
		"<": "num-lt", "<size": "size-lt",
	}
	for op, id := range seed {
		t := ByID(id)
		for _, ta := range t.TypesA {
			for _, tb := range t.TypesB {
				RegisterOp(op, ta, tb, t.Validate)
			}
		}
	}
	// Size comparison is the natural meaning of '<' on sizes.
	sz := ByID("size-lt")
	RegisterOp("<", conftypes.TypeSize, conftypes.TypeSize, sz.Validate)
}

// ParseSpec parses a template specification into a Template. The returned
// template's ID is derived from the spec unless id is non-empty.
func ParseSpec(id, spec string) (*Template, error) {
	m := specRe.FindStringSubmatch(strings.TrimSpace(spec))
	if m == nil {
		return nil, fmt.Errorf("templates: malformed spec %q (want \"[A:Type] op [B:Type]\")", spec)
	}
	ta, tb := conftypes.Type(m[2]), conftypes.Type(m[5])
	op := m[3]
	v, ok := LookupOp(op, ta, tb)
	if !ok {
		return nil, fmt.Errorf("templates: no operator %q for types %s, %s (register it first)", op, ta, tb)
	}
	if id == "" {
		id = fmt.Sprintf("custom:%s:%s:%s", op, ta, tb)
	}
	return &Template{
		ID:             id,
		Spec:           spec,
		Description:    fmt.Sprintf("custom template %s between %s and %s", op, ta, tb),
		TypesA:         []conftypes.Type{ta},
		TypesB:         []conftypes.Type{tb},
		SameType:       ta == tb,
		AllowAugmented: true,
		Validate:       v,
	}, nil
}
