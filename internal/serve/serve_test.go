package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	encore "repro"
	"repro/internal/alert"
	"repro/internal/corpus"
	"repro/internal/detect"
	"repro/internal/inject"
	"repro/internal/serve"
	"repro/internal/sysimage"
	"repro/internal/telemetry"
)

// buildPlan learns a corpus and compiles it, the same path `encore learn`
// + `encore compile` take.
func buildPlan(t testing.TB, app string, n int, seed int64) *detect.Plan {
	t.Helper()
	imgs, err := corpus.Training(app, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	fw := encore.New()
	k, err := fw.Learn(imgs)
	if err != nil {
		t.Fatal(err)
	}
	return fw.CompilePlan(k)
}

// brokenVictim returns a held-out image with injected misconfigurations
// (JSON-encoded for the scan body) — scans against a same-app plan are
// guaranteed findings by the detection property tests.
func brokenVictim(t testing.TB, app string, seed int64, n int) []byte {
	t.Helper()
	victims, err := corpus.Training(app, 1, 300+seed)
	if err != nil {
		t.Fatal(err)
	}
	victim := victims[0]
	victim.ID = "victim"
	if _, err := inject.New(seed).Inject(victim, app, n); err != nil {
		t.Fatal(err)
	}
	data, err := victim.MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// startDaemon boots a daemon on a random port with both loaders wired the
// way cmd/encore wires them.
func startDaemon(t testing.TB, opts serve.Options) (*serve.Daemon, string) {
	t.Helper()
	fw := encore.New()
	opts.Addr = "127.0.0.1:0"
	if opts.LoadPlan == nil {
		opts.LoadPlan = fw.LoadPlan
	}
	if opts.LoadProfile == nil {
		opts.LoadProfile = func(data []byte) (*detect.Plan, error) {
			p, err := encore.LoadProfile(data)
			if err != nil {
				return nil, err
			}
			return fw.CompilePlanFromProfile(p), nil
		}
	}
	if opts.Log == nil {
		opts.Log = telemetry.NopLogger()
	}
	d, err := serve.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d, "http://" + d.Addr()
}

func getBody(t testing.TB, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

type scanResponse struct {
	RequestID   string          `json:"requestId"`
	App         string          `json:"app"`
	PlanVersion string          `json:"planVersion"`
	Findings    int             `json:"findings"`
	Report      json.RawMessage `json:"report"`
}

func postScan(t testing.TB, url string, body []byte, hdr map[string]string) (*http.Response, scanResponse) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr scanResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
	}
	return resp, sr
}

func TestScanEndpoint(t *testing.T) {
	rec := telemetry.New()
	d, base := startDaemon(t, serve.Options{Rec: rec})
	plan := buildPlan(t, "mysql", 30, 19)
	if _, err := d.Registry().Register("mysql", "", plan, "test"); err != nil {
		t.Fatal(err)
	}
	victim := brokenVictim(t, "mysql", 4, 8)

	resp, sr := postScan(t, base+"/v1/scan/mysql", victim, map[string]string{"X-Request-Id": "trace-42"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scan status = %d", resp.StatusCode)
	}
	if sr.RequestID != "trace-42" || resp.Header.Get("X-Request-Id") != "trace-42" {
		t.Fatalf("request id not propagated: body=%q header=%q", sr.RequestID, resp.Header.Get("X-Request-Id"))
	}
	if sr.PlanVersion != "v1" || sr.App != "mysql" {
		t.Fatalf("scan identity = %+v", sr)
	}
	if sr.Findings == 0 || !bytes.Contains(sr.Report, []byte("warnings")) {
		t.Fatalf("expected findings on injected victim, got %d", sr.Findings)
	}

	// Generated request IDs when the caller sends none.
	resp2, sr2 := postScan(t, base+"/v1/scan/mysql", victim, nil)
	if resp2.StatusCode != http.StatusOK || !strings.HasPrefix(sr2.RequestID, "req-") {
		t.Fatalf("generated request id = %q (status %d)", sr2.RequestID, resp2.StatusCode)
	}

	// On-disk scan via ?path=.
	path := filepath.Join(t.TempDir(), "victim.json")
	if err := os.WriteFile(path, victim, 0o644); err != nil {
		t.Fatal(err)
	}
	resp3, sr3 := postScan(t, base+"/v1/scan/mysql?path="+path, nil, nil)
	if resp3.StatusCode != http.StatusOK || sr3.Findings != sr.Findings {
		t.Fatalf("path scan: status=%d findings=%d want %d", resp3.StatusCode, sr3.Findings, sr.Findings)
	}

	// Unknown app and bad bodies are clean JSON errors.
	if resp, _ := postScan(t, base+"/v1/scan/nope", victim, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown app status = %d", resp.StatusCode)
	}
	if resp, _ := postScan(t, base+"/v1/scan/mysql", []byte("{broken"), nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body status = %d", resp.StatusCode)
	}
	if resp, _ := postScan(t, base+"/v1/scan/mysql", nil, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty body status = %d", resp.StatusCode)
	}

	// The request metrics landed with per-app labels.
	prom := rec.Snapshot().PromText()
	for _, want := range []string{
		`encore_serve_requests_total{app="mysql",code="200"} 3`,
		`encore_serve_requests_total{app="mysql",code="400"} 2`,
		`encore_serve_requests_total{app="nope",code="404"} 1`,
		`encore_serve_scan_seconds_count{app="mysql"} 3`,
		`encore_serve_findings_total{app="mysql",severity=`,
		`encore_serve_plans_loaded 1`,
		`encore_serve_plan_swaps_total{app="mysql"} 1`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestProfileUploadStatusAndVersions(t *testing.T) {
	rec := telemetry.New()
	d, base := startDaemon(t, serve.Options{Rec: rec, Version: "test-build"})
	fw := encore.New()
	plan := buildPlan(t, "mysql", 20, 7)
	binary := fw.MarshalPlan(plan)

	// First upload auto-versions as v1.
	resp, err := http.Post(base+"/v1/profiles/mysql", "application/octet-stream", bytes.NewReader(binary))
	if err != nil {
		t.Fatal(err)
	}
	var up struct {
		Version string `json:"version"`
		Rules   int    `json:"rules"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || up.Version != "v1" || up.Rules == 0 {
		t.Fatalf("upload = %d %+v", resp.StatusCode, up)
	}

	// A named upload keeps its name; swap count advances.
	req, _ := http.NewRequest(http.MethodPost, base+"/v1/profiles/mysql", bytes.NewReader(binary))
	req.Header.Set("X-Profile-Version", "prod-2026-08")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var up2 struct {
		Version string `json:"version"`
	}
	json.NewDecoder(resp2.Body).Decode(&up2)
	resp2.Body.Close()
	if up2.Version != "prod-2026-08" {
		t.Fatalf("named upload version = %q", up2.Version)
	}

	// A JSON knowledge profile compiles on upload too.
	imgs, err := corpus.Training("apache", 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	k, err := fw.Learn(imgs)
	if err != nil {
		t.Fatal(err)
	}
	profJSON, err := json.Marshal(k.Profile())
	if err != nil {
		t.Fatal(err)
	}
	resp3, err := http.Post(base+"/v1/profiles/apache", "application/json", bytes.NewReader(profJSON))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("profile upload status = %d", resp3.StatusCode)
	}

	// Corrupt uploads don't disturb the registry.
	resp4, err := http.Post(base+"/v1/profiles/mysql", "application/octet-stream", strings.NewReader("ENCPgarbage"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp4.Body)
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt upload status = %d", resp4.StatusCode)
	}
	if e, ok := d.Registry().Get("mysql"); !ok || e.Version != "prod-2026-08" {
		t.Fatalf("registry disturbed by corrupt upload: %+v", e)
	}

	// Run one scan so status has latency quantiles.
	if resp, _ := postScan(t, base+"/v1/scan/mysql", brokenVictim(t, "mysql", 2, 6), nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("scan status = %d", resp.StatusCode)
	}

	code, body := getBody(t, base+"/v1/status")
	if code != http.StatusOK {
		t.Fatalf("status code = %d", code)
	}
	var doc struct {
		Version  string `json:"version"`
		Draining bool   `json:"draining"`
		Apps     []struct {
			App       string `json:"app"`
			Version   string `json:"version"`
			Swaps     int64  `json:"swaps"`
			Rules     int    `json:"rules"`
			Scans     uint64 `json:"scans"`
			P50Micros int64  `json:"p50Micros"`
			P99Micros int64  `json:"p99Micros"`
		} `json:"apps"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Version != "test-build" || doc.Draining || len(doc.Apps) != 2 {
		t.Fatalf("status doc = %s", body)
	}
	if doc.Apps[0].App != "apache" || doc.Apps[1].App != "mysql" {
		t.Fatalf("apps not sorted: %s", body)
	}
	my := doc.Apps[1]
	if my.Version != "prod-2026-08" || my.Swaps != 2 || my.Rules == 0 {
		t.Fatalf("mysql status row = %+v", my)
	}
	if my.Scans != 1 || my.P50Micros <= 0 || my.P99Micros < my.P50Micros {
		t.Fatalf("latency quantiles = %+v", my)
	}
}

// TestSwapAtomicityUnderRace is the hot-swap property test: while one
// goroutine swaps between two different plans for the same app and others
// hammer /metrics, every concurrent scan response must be consistent with
// exactly ONE registry version — its reported planVersion's precomputed
// report, byte for byte. A torn swap (new plan, old version, or a blended
// plan) would produce a mismatch. Run under -race this also proves the
// registry and labeled-metrics paths are data-race free.
func TestSwapAtomicityUnderRace(t *testing.T) {
	rec := telemetry.New()
	rec.SetSpanCap(256)
	d, base := startDaemon(t, serve.Options{Rec: rec})

	planA := buildPlan(t, "mysql", 24, 19)
	planB := buildPlan(t, "apache", 24, 5)
	victimJSON := brokenVictim(t, "mysql", 4, 8)

	// Precompute each version's exact response report through the same
	// decode path the handler uses.
	expected := map[string][]byte{}
	for version, plan := range map[string]*detect.Plan{"A": planA, "B": planB} {
		img, err := sysimage.LoadJSON(victimJSON)
		if err != nil {
			t.Fatal(err)
		}
		report, err := plan.Check(img)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := report.RenderJSON()
		if err != nil {
			t.Fatal(err)
		}
		var compact bytes.Buffer
		if err := json.Compact(&compact, raw); err != nil {
			t.Fatal(err)
		}
		expected[version] = compact.Bytes()
	}
	if bytes.Equal(expected["A"], expected["B"]) {
		t.Fatal("test needs two plans with distinguishable reports")
	}
	if _, err := d.Registry().Register("target", "A", planA, "test"); err != nil {
		t.Fatal(err)
	}

	const (
		scanners = 6
		scansPer = 40
		swaps    = 60
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Swapper: alternate A and B.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < swaps; i++ {
			if i%2 == 0 {
				d.Registry().Register("target", "B", planB, "test")
			} else {
				d.Registry().Register("target", "A", planA, "test")
			}
			time.Sleep(500 * time.Microsecond)
		}
		close(stop)
	}()

	// Metrics hammer: concurrent /metrics renders while labels churn.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(base + "/metrics")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}

	errs := make(chan string, scanners*scansPer)
	for g := 0; g < scanners; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < scansPer; i++ {
				resp, sr := postScan(t, base+"/v1/scan/target", victimJSON, map[string]string{
					"X-Request-Id": fmt.Sprintf("race-%d-%d", g, i),
				})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("scan %d/%d status %d", g, i, resp.StatusCode)
					continue
				}
				want, ok := expected[sr.PlanVersion]
				if !ok {
					errs <- fmt.Sprintf("scan %d/%d unknown version %q", g, i, sr.PlanVersion)
					continue
				}
				if !bytes.Equal(sr.Report, want) {
					errs <- fmt.Sprintf("scan %d/%d: report inconsistent with version %q", g, i, sr.PlanVersion)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	if got := d.Registry().Swaps("target"); got != swaps+1 {
		t.Fatalf("swap count = %d, want %d", got, swaps+1)
	}
	prom := rec.Snapshot().PromText()
	if !strings.Contains(prom, `encore_serve_requests_total{app="target",code="200"} 240`) {
		t.Errorf("request counter wrong after storm:\n%s", prom)
	}
	if !strings.Contains(prom, `encore_serve_plan_swaps_total{app="target"} 61`) {
		t.Errorf("swap counter wrong after storm")
	}
}

func TestReadyzTransitions(t *testing.T) {
	d, base := startDaemon(t, serve.Options{Rec: telemetry.New()})

	// Live but not ready before any plan loads.
	if code, _ := getBody(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz pre-load = %d", code)
	}
	code, body := getBody(t, base+"/readyz")
	if code != http.StatusServiceUnavailable || !bytes.Contains(body, []byte("no plans loaded")) {
		t.Fatalf("readyz pre-load = %d %s", code, body)
	}

	// Ready once a plan is registered.
	if _, err := d.Registry().Register("mysql", "", buildPlan(t, "mysql", 12, 1), "test"); err != nil {
		t.Fatal(err)
	}
	if code, _ := getBody(t, base+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz post-load = %d", code)
	}

	// Draining: readiness drops so routers stop sending work, liveness
	// holds so the pod isn't killed mid-drain.
	d.Drain()
	code, body = getBody(t, base+"/readyz")
	if code != http.StatusServiceUnavailable || !bytes.Contains(body, []byte("draining")) {
		t.Fatalf("readyz draining = %d %s", code, body)
	}
	if code, _ := getBody(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz draining = %d", code)
	}
}

// TestGracefulShutdownDrainsInflight holds a scan open at the ScanHook
// while Shutdown runs: Shutdown must not return until the scan finishes,
// and the held scan must still complete with a 200.
func TestGracefulShutdownDrainsInflight(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var hookOnce sync.Once
	d, base := startDaemon(t, serve.Options{
		Rec: telemetry.New(),
		ScanHook: func(string) {
			hookOnce.Do(func() {
				close(entered)
				<-release
			})
		},
	})
	if _, err := d.Registry().Register("mysql", "", buildPlan(t, "mysql", 12, 1), "test"); err != nil {
		t.Fatal(err)
	}
	victim := brokenVictim(t, "mysql", 2, 4)

	scanDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(base+"/v1/scan/mysql", "application/json", bytes.NewReader(victim))
		if err != nil {
			scanDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		scanDone <- resp.StatusCode
	}()
	<-entered

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- d.Shutdown(ctx)
	}()

	// Shutdown must block while the scan is held open.
	select {
	case err := <-shutdownDone:
		t.Fatalf("shutdown returned before in-flight scan finished: %v", err)
	case <-time.After(150 * time.Millisecond):
	}
	if !d.Draining() {
		t.Fatal("daemon not draining during shutdown")
	}

	close(release)
	if code := <-scanDone; code != http.StatusOK {
		t.Fatalf("drained scan status = %d", code)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown error: %v", err)
	}
}

// TestDaemonCloseNoGoroutineLeak: the accept loop and every per-request
// goroutine must be gone after Close.
func TestDaemonCloseNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	rec := telemetry.New()
	d, base := startDaemon(t, serve.Options{Rec: rec})
	if _, err := d.Registry().Register("mysql", "", buildPlan(t, "mysql", 12, 1), "test"); err != nil {
		t.Fatal(err)
	}
	victim := brokenVictim(t, "mysql", 2, 4)
	for i := 0; i < 3; i++ {
		if resp, _ := postScan(t, base+"/v1/scan/mysql", victim, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("scan status = %d", resp.StatusCode)
		}
	}
	if _, body := getBody(t, base+"/metrics"); !bytes.Contains(body, []byte("encore_serve_scan_seconds_count")) {
		t.Fatal("metrics missing scan histogram before close")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	http.DefaultClient.CloseIdleConnections()

	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: before=%d after=%d\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// memNotifier captures delivered alerts for assertions.
type memNotifier struct {
	mu    sync.Mutex
	got   []alert.Alert
	delay time.Duration
}

func (m *memNotifier) Name() string { return "mem" }

func (m *memNotifier) Notify(a *alert.Alert) error {
	if m.delay > 0 {
		time.Sleep(m.delay)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.got = append(m.got, *a)
	return nil
}

func (m *memNotifier) count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.got)
}

// alertsDoc mirrors the /v1/alerts response shape.
type alertsDoc struct {
	Enabled bool           `json:"enabled"`
	Stats   alert.Stats    `json:"stats"`
	Count   int            `json:"count"`
	Alerts  []alert.Record `json:"alerts"`
}

// TestScanAlertsCarryProvenance: every warning a scan request produces
// must reach the pipeline carrying that request's ID and the registry
// plan version, and surface on GET /v1/alerts with delivery outcomes.
func TestScanAlertsCarryProvenance(t *testing.T) {
	rec := telemetry.New()
	mem := &memNotifier{}
	pipe, err := alert.NewPipeline(alert.Options{Notifiers: []alert.Notifier{mem}, Rec: rec})
	if err != nil {
		t.Fatal(err)
	}
	d, base := startDaemon(t, serve.Options{Rec: rec, Alerts: pipe})
	if _, err := d.Registry().Register("mysql", "", buildPlan(t, "mysql", 30, 19), "test"); err != nil {
		t.Fatal(err)
	}
	victim := brokenVictim(t, "mysql", 4, 8)

	resp, sr := postScan(t, base+"/v1/scan/mysql", victim, map[string]string{"X-Request-Id": "trace-alert-7"})
	if resp.StatusCode != http.StatusOK || sr.Findings == 0 {
		t.Fatalf("scan: status=%d findings=%d", resp.StatusCode, sr.Findings)
	}

	// Delivery is asynchronous; poll the ring until every finding landed.
	var doc alertsDoc
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, body := getBody(t, base+"/v1/alerts")
		doc = alertsDoc{}
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatal(err)
		}
		if doc.Count >= sr.Findings {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("alerts ring has %d records, want %d", doc.Count, sr.Findings)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !doc.Enabled {
		t.Fatal("alerts doc reports disabled with a live pipeline")
	}
	for _, rcd := range doc.Alerts {
		if rcd.RequestID != "trace-alert-7" || rcd.PlanVersion != "v1" || rcd.App != "mysql" {
			t.Fatalf("alert provenance wrong: %+v", rcd.Alert)
		}
		if rcd.Severity == "" || rcd.Family == "" || rcd.Attr == "" {
			t.Fatalf("alert classification missing: %+v", rcd.Alert)
		}
		if len(rcd.Deliveries) != 1 || rcd.Deliveries[0].Notifier != "mem" || rcd.Deliveries[0].Outcome != alert.OutcomeOK {
			t.Fatalf("alert deliveries wrong: %+v", rcd.Deliveries)
		}
	}
	if mem.count() != sr.Findings {
		t.Fatalf("notifier saw %d alerts, want %d", mem.count(), sr.Findings)
	}

	// ?limit trims newest-first; a bad limit is a clean JSON 400.
	if _, body := getBody(t, base+"/v1/alerts?limit=1"); !bytes.Contains(body, []byte(`"count":1`)) {
		t.Fatalf("limit=1 not honoured: %s", body)
	}
	if code, _ := getBody(t, base+"/v1/alerts?limit=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad limit status = %d", code)
	}

	// Self-metrics joined the shared recorder.
	prom := rec.Snapshot().PromText()
	for _, want := range []string{
		`encore_alerts_total{notifier="mem",outcome="ok",severity=`,
		`encore_alert_delivery_seconds_count{notifier="mem"}`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestAlertsEndpointWithoutPipeline: /v1/alerts stays a valid document
// when no -alerts policy was configured.
func TestAlertsEndpointWithoutPipeline(t *testing.T) {
	_, base := startDaemon(t, serve.Options{Rec: telemetry.New()})
	code, body := getBody(t, base+"/v1/alerts")
	if code != http.StatusOK {
		t.Fatalf("alerts status = %d", code)
	}
	var doc alertsDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Enabled || doc.Count != 0 || len(doc.Alerts) != 0 {
		t.Fatalf("disabled doc wrong: %+v", doc)
	}
}

// TestShutdownDrainsAlertPipeline: Daemon.Shutdown must deliver every
// queued alert through a slow notifier before returning, and leave no
// dispatcher goroutine behind.
func TestShutdownDrainsAlertPipeline(t *testing.T) {
	before := runtime.NumGoroutine()

	rec := telemetry.New()
	mem := &memNotifier{delay: 2 * time.Millisecond}
	pipe, err := alert.NewPipeline(alert.Options{Notifiers: []alert.Notifier{mem}, Rec: rec})
	if err != nil {
		t.Fatal(err)
	}
	d, base := startDaemon(t, serve.Options{Rec: rec, Alerts: pipe})
	if _, err := d.Registry().Register("mysql", "", buildPlan(t, "mysql", 30, 19), "test"); err != nil {
		t.Fatal(err)
	}
	victim := brokenVictim(t, "mysql", 4, 8)
	resp, sr := postScan(t, base+"/v1/scan/mysql", victim, nil)
	if resp.StatusCode != http.StatusOK || sr.Findings == 0 {
		t.Fatalf("scan: status=%d findings=%d", resp.StatusCode, sr.Findings)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	s := pipe.Stats()
	if s.Published != int64(sr.Findings) || s.Delivered != s.Published || s.Dropped != 0 {
		t.Fatalf("pipeline not drained: %+v (findings %d)", s, sr.Findings)
	}
	if mem.count() != sr.Findings {
		t.Fatalf("notifier saw %d alerts after drain, want %d", mem.count(), sr.Findings)
	}
	http.DefaultClient.CloseIdleConnections()

	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: before=%d after=%d\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// BenchmarkServeScan measures full-stack scan request throughput over real
// HTTP: decode + registry load + Plan.Check + report render per request.
func BenchmarkServeScan(b *testing.B) {
	d, base := startDaemon(b, serve.Options{Rec: telemetry.New()})
	if _, err := d.Registry().Register("mysql", "", buildPlan(b, "mysql", 30, 19), "bench"); err != nil {
		b.Fatal(err)
	}
	victim := brokenVictim(b, "mysql", 4, 8)
	url := base + "/v1/scan/mysql"

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(url, "application/json", bytes.NewReader(victim))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("scan status = %d", resp.StatusCode)
		}
	}
}
