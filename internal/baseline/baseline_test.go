package baseline

import (
	"strings"
	"testing"

	"repro/internal/assemble"
	"repro/internal/dataset"
	"repro/internal/sysimage"
)

func mkImage(id, datadir, packet string) *sysimage.Image {
	im := sysimage.New(id)
	im.Users["root"] = &sysimage.User{Name: "root", UID: 0, GID: 0, IsAdmin: true}
	im.Users["mysql"] = &sysimage.User{Name: "mysql", UID: 27, GID: 27}
	im.Groups["mysql"] = &sysimage.Group{Name: "mysql", GID: 27}
	im.AddDir(datadir, "mysql", "mysql", 0o750)
	im.SetConfig("mysql", "/etc/my.cnf", strings.Join([]string{
		"[mysqld]",
		"datadir = " + datadir,
		"user = mysql",
		"max_allowed_packet = " + packet,
		"",
	}, "\n"))
	return im
}

func training(t *testing.T) *dataset.Dataset {
	t.Helper()
	dirs := []string{"/var/lib/mysql", "/data/mysql", "/srv/mysql", "/u01/mysql"}
	packets := []string{"16M", "32M"}
	var images []*sysimage.Image
	for i := 0; i < 12; i++ {
		images = append(images, mkImage(string(rune('a'+i)), dirs[i%4], packets[i%2]))
	}
	d, err := assemble.New().AssembleTraining(images)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBaselineMissesPathDeviation(t *testing.T) {
	// The key limitation the paper exploits: datadir varies widely in
	// training, so a *new* path value gets a very low ICF score —
	// and a wrong-owner misconfiguration is entirely invisible because
	// values match.
	d := training(t)
	b := NewBaseline(d)
	target := mkImage("t", "/var/lib/mysql", "16M")
	target.Files["/var/lib/mysql"].Owner = "root" // Figure 1(b) error
	findings, err := b.Check(target)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if strings.Contains(f.Attr, "datadir") {
			t.Fatalf("pure value comparison should see nothing wrong: %v", f.Message)
		}
	}
}

func TestBaselineEnvSeesOwnershipDeviation(t *testing.T) {
	d := training(t)
	be := NewBaselineEnv(d)
	target := mkImage("t", "/var/lib/mysql", "16M")
	target.Files["/var/lib/mysql"].Owner = "root"
	findings, err := be.Check(target)
	if err != nil {
		t.Fatal(err)
	}
	if !FlaggedPrefix(findings, "mysql:mysqld/datadir") {
		t.Fatalf("Baseline+Env should flag datadir.owner deviation; findings: %v", msgs(findings))
	}
	// Specifically the augmented owner attribute.
	if !Flagged(findings, "mysql:mysqld/datadir.owner") {
		t.Fatalf("datadir.owner not flagged; findings: %v", msgs(findings))
	}
}

func TestBaselineFlagsValueDeviation(t *testing.T) {
	d := training(t)
	b := NewBaseline(d)
	target := mkImage("t", "/var/lib/mysql", "999M")
	findings, err := b.Check(target)
	if err != nil {
		t.Fatal(err)
	}
	if !Flagged(findings, "mysql:mysqld/max_allowed_packet") {
		t.Fatalf("value deviation not flagged; findings: %v", msgs(findings))
	}
}

func TestBaselineIgnoresUnseenEntry(t *testing.T) {
	// An entry absent from the peer database has no value distribution;
	// the statistical baseline says nothing about it. (EnCore's
	// entry-name check is what catches misspellings.)
	d := training(t)
	b := NewBaseline(d)
	target := mkImage("t", "/var/lib/mysql", "16M")
	cfg := target.ConfigFor("mysql")
	target.SetConfig("mysql", cfg.Path, cfg.Content+"novel_entry = 1\n")
	findings, err := b.Check(target)
	if err != nil {
		t.Fatal(err)
	}
	if Flagged(findings, "mysql:mysqld/novel_entry") {
		t.Fatalf("unseen entry should not be flagged; findings: %v", msgs(findings))
	}
}

func TestBaselineRankingStableEntriesFirst(t *testing.T) {
	d := training(t)
	b := NewBaseline(d)
	// user was constant (cardinality 1), packet had 2 values: deviations
	// on user must outrank deviations on packet.
	target := mkImage("t", "/var/lib/mysql", "999M")
	cfg := target.ConfigFor("mysql")
	target.Users["other"] = &sysimage.User{Name: "other", UID: 50, GID: 50}
	target.SetConfig("mysql", cfg.Path, strings.Replace(cfg.Content, "user = mysql", "user = other", 1))
	findings, err := b.Check(target)
	if err != nil {
		t.Fatal(err)
	}
	var userRank, packetRank int
	for _, f := range findings {
		switch f.Attr {
		case "mysql:mysqld/user":
			userRank = f.Rank
		case "mysql:mysqld/max_allowed_packet":
			packetRank = f.Rank
		}
	}
	if userRank == 0 || packetRank == 0 {
		t.Fatalf("expected both findings; got %v", msgs(findings))
	}
	if userRank >= packetRank {
		t.Fatalf("stable entry rank %d should beat volatile entry rank %d", userRank, packetRank)
	}
}

func TestBaselineCleanTarget(t *testing.T) {
	d := training(t)
	for _, det := range []*Detector{NewBaseline(d), NewBaselineEnv(d)} {
		findings, err := det.Check(mkImage("t", "/var/lib/mysql", "16M"))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range findings {
			if strings.HasPrefix(f.Attr, "mysql:") {
				t.Fatalf("clean target flagged: %v", f.Message)
			}
		}
	}
}

func TestBaselineParseError(t *testing.T) {
	d := training(t)
	b := NewBaseline(d)
	bad := mkImage("t", "/var/lib/mysql", "16M")
	bad.SetConfig("mysql", "/etc/my.cnf", "[broken\n")
	if _, err := b.Check(bad); err == nil {
		t.Fatal("parse error should propagate")
	}
}

func TestFlaggedHelpers(t *testing.T) {
	fs := []*Finding{{Attr: "a.owner"}, {Attr: "b"}}
	if !Flagged(fs, "b") || Flagged(fs, "c") {
		t.Fatal("Flagged wrong")
	}
	if !FlaggedPrefix(fs, "a") || FlaggedPrefix(fs, "ab") {
		t.Fatal("FlaggedPrefix wrong")
	}
}

func msgs(fs []*Finding) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.Attr + ": " + f.Message
	}
	return out
}
