// Package scan implements the batch target-scan engine: it assembles and
// checks N target images over a bounded worker pool with per-image fault
// isolation.
//
// The training phase and the detection phase of the paper are both
// embarrassingly parallel; internal/rules already exploits that for
// candidate validation and internal/assemble for training assembly. This
// package does the same for the detection side at fleet scale, and adds
// the failure semantics a production scanner needs: one malformed image
// out of thousands must not abort the batch. By default a failing image
// yields a per-image *ScanError in the result set while every other image
// still produces its report; Strict mode preserves the historical
// fail-fast behaviour (first error aborts the batch and cancels remaining
// work).
package scan

import (
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alert"
	"repro/internal/detect"
	"repro/internal/sysimage"
	"repro/internal/telemetry"
)

// CheckFunc checks one target image against previously learned knowledge.
// encore.Framework.Check and CheckWithProfile both adapt to this shape.
type CheckFunc func(img *sysimage.Image) (*detect.Report, error)

// Engine scans batches of target images.
type Engine struct {
	// Check produces the report for one image. Required.
	Check CheckFunc
	// Workers bounds the pool; 0 means NumCPU.
	Workers int
	// Strict restores fail-fast semantics: the first failing image aborts
	// the whole batch and Scan returns its error. When false (the
	// default), failures are isolated per image and collected in the
	// result set.
	Strict bool
	// Telemetry, when set, receives batch timings, per-image scan
	// latencies, and per-worker spans.
	Telemetry *telemetry.Recorder
	// Progress, when set, is stepped once per finished image with that
	// image's finding count — the periodic stderr reporter for long
	// batches. The engine does not stop it; the caller owns its lifecycle.
	Progress *telemetry.Progress
	// Log, when set, receives structured per-image records (failures at
	// warn, completions at debug), each correlated with its scan.image
	// span. Nil silences engine logging.
	Log *slog.Logger
	// Alerts, when set, receives every warning as a severity-classified
	// alert. Publishing is non-blocking by construction (a full queue
	// drops and counts instead of stalling the worker), so the scan hot
	// path never waits on a notifier.
	Alerts *alert.Pipeline
	// RequestID correlates this batch's alerts with its invocation (the
	// daemon's X-Request-Id, or a CLI run ID). Empty means the engine
	// generates one per batch, so even ad-hoc CLI scans emit joinable
	// alerts.
	RequestID string
	// PlanVersion is the knowledge provenance stamped on alerts
	// ("v3" from the registry, "plan:mysql.plan" from the CLI, ...).
	PlanVersion string
}

// AlertApp derives an alert's app routing key from a flagged attribute:
// config attributes are named "app:Entry" (the assembler's canonical
// column names); environment attributes ("Sys.HostName", "OS.Version")
// fall under "system". The fleet coordinator uses the same derivation so
// sharded and unsharded scans route alerts identically.
func AlertApp(attr string) string {
	if app, _, ok := strings.Cut(attr, ":"); ok {
		return app
	}
	return "system"
}

// ScanError is the per-image failure record of a non-strict batch scan.
type ScanError struct {
	// ImageID is the failing image's ID ("" when the image could not even
	// be decoded).
	ImageID string
	// Path is the source file, when the engine loaded the image itself.
	Path string
	// Err is the underlying assembly/check/decode error.
	Err error
}

// Error renders the failure with its image context.
func (e *ScanError) Error() string {
	switch {
	case e.ImageID != "":
		return fmt.Sprintf("scan: image %s: %v", e.ImageID, e.Err)
	case e.Path != "":
		return fmt.Sprintf("scan: %s: %v", e.Path, e.Err)
	default:
		return fmt.Sprintf("scan: %v", e.Err)
	}
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *ScanError) Unwrap() error { return e.Err }

// Item is the outcome for one input image, in input order. Exactly one of
// Report and Err is set.
type Item struct {
	// ImageID identifies the image ("" if it could not be decoded).
	ImageID string
	// Report is the check result for a healthy image.
	Report *detect.Report
	// Err records why this image produced no report.
	Err *ScanError
}

// Result is the outcome of one batch scan.
type Result struct {
	// Items holds one entry per input image, in input order.
	Items []Item
}

// Reports returns the successful reports in input order.
func (r *Result) Reports() []*detect.Report {
	var out []*detect.Report
	for _, it := range r.Items {
		if it.Report != nil {
			out = append(out, it.Report)
		}
	}
	return out
}

// Errors returns the per-image failures in input order.
func (r *Result) Errors() []*ScanError {
	var out []*ScanError
	for _, it := range r.Items {
		if it.Err != nil {
			out = append(out, it.Err)
		}
	}
	return out
}

// AttrCount is one attribute with its fleet-wide warning count.
type AttrCount struct {
	Attr  string
	Count int
}

// Summary aggregates a batch scan fleet-wide. It can be built in one shot
// from a Result (Summarize) or accumulated incrementally item by item
// (Observe + Finish) — the streaming form the fleet coordinator's sinks
// use so a 100k-image walk never has to retain its items.
type Summary struct {
	// Scanned counts all input images, healthy or not.
	Scanned int
	// Flagged counts images with at least minWarnings warnings.
	Flagged int
	// Warnings is the total warning count across healthy images.
	Warnings int
	// Errors counts images that failed to scan.
	Errors int
	// ByKind tallies warnings per kind across the fleet.
	ByKind map[detect.Kind]int
	// HotAttrs ranks attributes by how often they were flagged
	// (descending count, ties by name). Populated by Finish.
	HotAttrs []AttrCount

	// attrCounts accumulates per-attribute tallies until Finish ranks them.
	attrCounts map[string]int
}

// Observe folds one item into the summary; minWarnings is the flagging
// floor for the Flagged count. Call Finish once all items are observed.
// Observe is not safe for concurrent use — concurrent sinks must lock.
func (s *Summary) Observe(it Item, minWarnings int) {
	if s.ByKind == nil {
		s.ByKind = map[detect.Kind]int{}
	}
	if s.attrCounts == nil {
		s.attrCounts = map[string]int{}
	}
	s.Scanned++
	if it.Err != nil {
		s.Errors++
		return
	}
	s.Warnings += len(it.Report.Warnings)
	for _, w := range it.Report.Warnings {
		s.ByKind[w.Kind]++
		s.attrCounts[w.Attr]++
	}
	if len(it.Report.Warnings) >= minWarnings {
		s.Flagged++
	}
}

// Finish ranks the accumulated attribute tallies into HotAttrs.
func (s *Summary) Finish() {
	s.HotAttrs = s.HotAttrs[:0]
	for attr, n := range s.attrCounts {
		s.HotAttrs = append(s.HotAttrs, AttrCount{Attr: attr, Count: n})
	}
	sort.Slice(s.HotAttrs, func(i, j int) bool {
		if s.HotAttrs[i].Count != s.HotAttrs[j].Count {
			return s.HotAttrs[i].Count > s.HotAttrs[j].Count
		}
		return s.HotAttrs[i].Attr < s.HotAttrs[j].Attr
	})
}

// Summarize aggregates the result; minWarnings is the flagging floor used
// for the Flagged count.
func (r *Result) Summarize(minWarnings int) Summary {
	var s Summary
	for _, it := range r.Items {
		s.Observe(it, minWarnings)
	}
	s.Finish()
	if s.ByKind == nil {
		s.ByKind = map[detect.Kind]int{}
	}
	return s
}

// task is one unit of batch work: either an already-loaded image or a file
// to load first.
type task struct {
	path string
	img  *sysimage.Image
}

// taskName names a task for span attributes before its image is decoded.
func taskName(t task) string {
	if t.img != nil {
		return t.img.ID
	}
	return filepath.Base(t.path)
}

// Scan checks every image over the worker pool. In Strict mode the first
// failure (in input order among the processed images) aborts the batch; in
// the default mode every failure becomes a per-image Item.Err and Scan
// itself only errors on misuse (nil Check).
func (e *Engine) Scan(images []*sysimage.Image) (*Result, error) {
	tasks := make([]task, len(images))
	for i, img := range images {
		tasks[i] = task{img: img}
	}
	return e.run(tasks)
}

// ScanDir loads every "*.json" image in dir (sorted by file name, like
// sysimage.LoadDir) and scans them. Files that fail to decode are
// isolated exactly like images that fail to check: a per-image ScanError
// in the default mode, a batch abort in Strict mode.
func (e *Engine) ScanDir(dir string) (*Result, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("scan: %w", err)
	}
	var tasks []task
	for _, ent := range entries {
		if ent.IsDir() || filepath.Ext(ent.Name()) != ".json" {
			continue
		}
		tasks = append(tasks, task{path: filepath.Join(dir, ent.Name())})
	}
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].path < tasks[j].path })
	return e.run(tasks)
}

func (e *Engine) run(tasks []task) (*Result, error) {
	if e.Check == nil {
		return nil, fmt.Errorf("scan: engine has no Check function")
	}
	defer e.Telemetry.StartStage(telemetry.StageScanBatch)()

	// Every alert from this batch carries the same request ID; generate
	// one when the caller (CLI) didn't supply one so batch alerts are
	// still joinable per invocation.
	reqID := e.RequestID
	if reqID == "" && e.Alerts != nil {
		reqID = "scan-" + strconv.FormatInt(time.Now().UnixNano(), 36)
	}

	workers := e.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(tasks) && len(tasks) > 0 {
		workers = len(tasks)
	}

	root := e.Telemetry.StartSpan("scan.batch",
		telemetry.A("images", strconv.Itoa(len(tasks))),
		telemetry.A("workers", strconv.Itoa(workers)))
	defer root.End()

	items := make([]Item, len(tasks))
	var aborted atomic.Bool
	var wg sync.WaitGroup
	// The queue is buffered and filled up front: with an unbuffered
	// channel every fast image forces a producer/consumer rendezvous, and
	// the handoff serializes the pool enough that adding workers used to
	// make the batch slower.
	next := make(chan int, len(tasks))
	for i := range tasks {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := root.StartChild("scan.worker", telemetry.A("worker", strconv.Itoa(w)))
			defer ws.End()
			// Per-image scan latencies accumulate worker-locally and fold
			// into the shared recorder once per worker, so the hot loop
			// takes no recorder lock for histogram updates. Counters still
			// advance per finished image (live scrapes must see the batch
			// move), which is one short lock per image, not four.
			var scanHist telemetry.Histogram
			defer e.Telemetry.MergeHistogram(telemetry.HistImageScan, &scanHist)
			for i := range next {
				if e.Strict && aborted.Load() {
					continue
				}
				sp := ws.StartChild("scan.image", telemetry.A("task", taskName(tasks[i])))
				start := time.Now()
				items[i] = e.runOne(tasks[i])
				elapsed := time.Since(start)
				scanHist.Observe(elapsed)
				if items[i].ImageID != "" {
					sp.SetAttr("image", items[i].ImageID)
				}
				sp.End()
				// Counters advance per finished image — not once at batch
				// end — so a live /metrics scrape sees the batch move.
				e.Telemetry.Add(telemetry.CounterImagesScanned, 1)
				if items[i].Err == nil {
					warnings := len(items[i].Report.Warnings)
					if e.Alerts != nil {
						for _, w := range items[i].Report.Warnings {
							e.Alerts.Publish(alert.FromWarning(w,
								AlertApp(w.Attr), items[i].ImageID, reqID, e.PlanVersion))
						}
					}
					e.Telemetry.Add(telemetry.CounterFindingsEmitted, int64(warnings))
					e.Progress.Step(warnings)
					sp.Logger(e.Log).Debug("image scanned",
						"image", items[i].ImageID, "warnings", warnings, "elapsed", elapsed)
				} else {
					e.Telemetry.Add(telemetry.CounterScanErrors, 1)
					e.Progress.Step(0)
					sp.Logger(e.Log).Warn("image scan failed",
						"image", items[i].Err.ImageID, "path", items[i].Err.Path, "err", items[i].Err.Err)
				}
				if e.Strict && items[i].Err != nil {
					aborted.Store(true)
				}
			}
		}(w)
	}
	wg.Wait()

	if e.Strict {
		for _, it := range items {
			if it.Err != nil {
				return nil, it.Err
			}
		}
	}
	return &Result{Items: items}, nil
}

// runOne loads (if needed) and checks one image, converting any failure
// into the item's ScanError.
func (e *Engine) runOne(t task) Item {
	img := t.img
	if img == nil {
		var err error
		// LoadFile reads through a pooled buffer, so a big batch does not
		// allocate one decode buffer per file.
		img, err = sysimage.LoadFile(t.path)
		if err != nil {
			return Item{Err: &ScanError{Path: t.path, Err: err}}
		}
	}
	report, err := e.Check(img)
	if err != nil {
		return Item{ImageID: img.ID, Err: &ScanError{ImageID: img.ID, Path: t.path, Err: err}}
	}
	return Item{ImageID: img.ID, Report: report}
}
