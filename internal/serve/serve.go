package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alert"
	"repro/internal/detect"
	"repro/internal/sysimage"
	"repro/internal/telemetry"
)

// DefaultMaxBodyBytes caps scan and profile upload bodies.
const DefaultMaxBodyBytes = 64 << 20

// Options configures a Daemon.
type Options struct {
	// Addr is the listen address ("127.0.0.1:0" picks a free port).
	Addr string
	// Rec receives request metrics, spans, and registry gauges. Nil is
	// tolerated (every Recorder method is nil-safe) but /metrics and
	// /snapshot then serve empty documents.
	Rec *telemetry.Recorder
	// Log receives access and error records; nil discards them.
	Log *slog.Logger
	// LoadPlan decodes a binary compiled plan (required to accept binary
	// uploads and LoadDir plan files).
	LoadPlan PlanLoader
	// LoadProfile compiles a JSON knowledge profile into a plan
	// (optional; profile uploads 415 without it).
	LoadProfile PlanLoader
	// Version is the build version surfaced by /v1/status.
	Version string
	// MaxBodyBytes caps request bodies (0 = DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// ScanHook, when set, runs after the registry entry is resolved and
	// before Plan.Check — test instrumentation for drain and swap-race
	// tests. Leave nil in production.
	ScanHook func(app string)
	// Alerts, when set, receives every scan finding as a
	// severity-classified alert carrying the request ID and plan
	// version; GET /v1/alerts serves its recent ring. The daemon owns
	// the pipeline's drain: Shutdown delivers everything queued before
	// returning, so the final telemetry snapshot sees every outcome.
	Alerts *alert.Pipeline
}

// Daemon is the resident scan service. New starts it listening; Shutdown
// drains it gracefully; Close tears it down hard. All exported methods
// are safe for concurrent use.
type Daemon struct {
	opts     Options
	reg      *Registry
	ln       net.Listener
	srv      *http.Server
	rec      *telemetry.Recorder
	log      *slog.Logger
	start    time.Time
	draining atomic.Bool
	inflight atomic.Int64
	reqSeq   atomic.Int64
	idBase   string
	done     chan struct{}
	close    sync.Once
	err      error
}

// New binds addr and starts serving. The returned daemon is live:
// /healthz answers immediately, /readyz answers 503 until a plan is
// registered.
func New(opts Options) (*Daemon, error) {
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = DefaultMaxBodyBytes
	}
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", opts.Addr, err)
	}
	d := &Daemon{
		opts:  opts,
		reg:   NewRegistry(opts.Rec),
		ln:    ln,
		rec:   opts.Rec,
		log:   telemetry.LoggerOr(opts.Log),
		start: time.Now(),
		done:  make(chan struct{}),
	}
	d.idBase = strconv.FormatInt(d.start.UnixNano(), 36)

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/scan/{app}", d.instrument("scan", d.handleScan))
	mux.HandleFunc("POST /v1/scan/{app}/batch", d.instrument("scan_batch", d.handleScanBatch))
	mux.HandleFunc("POST /v1/profiles/{app}", d.instrument("profiles", d.handleProfileUpload))
	mux.HandleFunc("GET /v1/status", d.instrument("status", d.handleStatus))
	mux.HandleFunc("GET /v1/alerts", d.instrument("alerts", d.handleAlerts))
	mux.HandleFunc("GET /healthz", d.handleHealthz)
	mux.HandleFunc("GET /readyz", d.handleReadyz)
	mux.HandleFunc("GET /metrics", d.handleMetrics)
	mux.HandleFunc("GET /snapshot", d.handleSnapshot)
	// Explicit pprof registration; the daemon must not touch the global
	// DefaultServeMux.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	d.srv = &http.Server{Handler: mux}
	go func() {
		defer close(d.done)
		if err := d.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			d.err = err
		}
	}()
	return d, nil
}

// Addr returns the bound address.
func (d *Daemon) Addr() string { return d.ln.Addr().String() }

// Registry exposes the daemon's profile registry (preloads, SIGHUP
// re-scans, tests).
func (d *Daemon) Registry() *Registry { return d.reg }

// Drain flips the daemon into draining mode: /readyz starts answering
// 503 so load balancers stop routing new work, while in-flight and
// late-arriving requests still complete. Shutdown calls it implicitly.
func (d *Daemon) Drain() { d.draining.Store(true) }

// Draining reports whether Drain was called.
func (d *Daemon) Draining() bool { return d.draining.Load() }

// Shutdown drains the daemon and then gracefully stops the HTTP server:
// the listener closes, in-flight requests run to completion bounded by
// ctx, and the accept goroutine is joined. If ctx expires first the
// remaining connections are closed hard. Idempotent with Close.
func (d *Daemon) Shutdown(ctx context.Context) error {
	d.Drain()
	var shutErr error
	d.close.Do(func() {
		if err := d.srv.Shutdown(ctx); err != nil {
			d.srv.Close()
			shutErr = err
		}
		<-d.done
		// Drain the alert pipeline after the last handler has returned,
		// so every published finding is delivered (or counted as failed)
		// before the caller snapshots telemetry. Nil-safe and idempotent.
		if err := d.opts.Alerts.Shutdown(ctx); err != nil && shutErr == nil {
			shutErr = err
		}
	})
	if shutErr != nil {
		return shutErr
	}
	return d.err
}

// Close shuts the daemon down with a bounded 5s drain. Idempotent; safe
// on a nil daemon.
func (d *Daemon) Close() error {
	if d == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return d.Shutdown(ctx)
}

// requestID returns the caller-supplied X-Request-Id (truncated to 128
// bytes, control characters stripped) or generates one from the daemon's
// start time and a sequence number.
func (d *Daemon) requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-Id"); id != "" {
		if len(id) > 128 {
			id = id[:128]
		}
		clean := make([]byte, 0, len(id))
		for i := 0; i < len(id); i++ {
			if id[i] >= 0x20 && id[i] != 0x7f {
				clean = append(clean, id[i])
			}
		}
		if len(clean) > 0 {
			return string(clean)
		}
	}
	return "req-" + d.idBase + "-" + strconv.FormatInt(d.reqSeq.Add(1), 10)
}

// statusWriter captures the response code for the access log and the
// requests_total code label.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// reqCtx is the per-request observability context threaded into
// instrumented handlers: the request ID, the app wildcard, and the
// request's root telemetry span (handlers may open children under it).
type reqCtx struct {
	ID   string
	App  string
	Span *telemetry.Span
}

// instrument wraps an app-scoped API handler with the request
// observability envelope: request-ID resolution and echo, a root span
// carrying (endpoint, app, request id), the in-flight gauge, the
// per-(app, code) request counter, and a span-correlated access log
// record.
func (d *Daemon) instrument(name string, h func(http.ResponseWriter, *http.Request, *reqCtx)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rc := &reqCtx{ID: d.requestID(r), App: r.PathValue("app")}
		w.Header().Set("X-Request-Id", rc.ID)
		rc.Span = d.rec.StartSpan("serve."+name,
			telemetry.A("request_id", rc.ID),
			telemetry.A("app", rc.App),
			telemetry.A("method", r.Method))
		d.rec.SetGauge("encore_serve_inflight_requests", "", float64(d.inflight.Add(1)))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()

		h(sw, r, rc)

		elapsed := time.Since(start)
		d.rec.SetGauge("encore_serve_inflight_requests", "", float64(d.inflight.Add(-1)))
		code := strconv.Itoa(sw.status)
		d.rec.AddLabeled("encore_serve_requests_total",
			telemetry.L("app", rc.App, "code", code), 1)
		rc.Span.SetAttr("code", code)
		rc.Span.End()
		lvl := slog.LevelInfo
		if sw.status >= 500 {
			lvl = slog.LevelError
		}
		d.log.Log(r.Context(), lvl, "request",
			"request_id", rc.ID, "method", r.Method, "path", r.URL.Path,
			"app", rc.App, "code", sw.status, "dur", elapsed.Round(time.Microsecond))
	}
}

// apiError writes a JSON error document carrying the request ID.
func apiError(w http.ResponseWriter, rc *reqCtx, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{
		"error":     fmt.Sprintf(format, args...),
		"requestId": rc.ID,
	})
}

// scanResponse is the /v1/scan reply: request identity, the registry
// version the scan ran against, and the report in the CLI's check -json
// shape.
type scanResponse struct {
	RequestID     string          `json:"requestId"`
	App           string          `json:"app"`
	PlanVersion   string          `json:"planVersion"`
	ElapsedMicros int64           `json:"elapsedMicros"`
	Findings      int             `json:"findings"`
	Report        json.RawMessage `json:"report"`
}

func (d *Daemon) handleScan(w http.ResponseWriter, r *http.Request, rc *reqCtx) {
	entry, ok := d.reg.Get(rc.App)
	if !ok {
		apiError(w, rc, http.StatusNotFound, "no plan loaded for app %q", rc.App)
		return
	}
	rc.Span.SetAttr("plan_version", entry.Version)

	var img *sysimage.Image
	decode := rc.Span.StartChild("serve.decode")
	if path := r.URL.Query().Get("path"); path != "" {
		loaded, err := sysimage.LoadFile(path)
		decode.End()
		if err != nil {
			apiError(w, rc, http.StatusBadRequest, "load image %s: %v", path, err)
			return
		}
		img = loaded
	} else {
		// The body streams through sysimage's pooled read buffer (LoadJSON
		// copies every string it keeps), so per-request decode allocates no
		// transient body.
		err := sysimage.WithPooledRead(
			io.LimitReader(r.Body, d.opts.MaxBodyBytes+1), int(r.ContentLength),
			func(body []byte) error {
				if int64(len(body)) > d.opts.MaxBodyBytes {
					return fmt.Errorf("body exceeds %d bytes", d.opts.MaxBodyBytes)
				}
				if len(body) == 0 {
					return fmt.Errorf("empty body (send image JSON, or use ?path=)")
				}
				var err error
				img, err = sysimage.LoadJSON(body)
				return err
			})
		decode.End()
		if err != nil {
			apiError(w, rc, http.StatusBadRequest, "decode image: %v", err)
			return
		}
	}
	rc.Span.SetAttr("image", img.ID)

	if d.opts.ScanHook != nil {
		d.opts.ScanHook(rc.App)
	}
	check := rc.Span.StartChild("serve.check", telemetry.A("image", img.ID))
	start := time.Now()
	report, err := entry.Plan.Check(img)
	elapsed := time.Since(start)
	check.End()
	if err != nil {
		d.rec.AddLabeled("encore_serve_scan_errors_total", telemetry.L("app", rc.App), 1)
		apiError(w, rc, http.StatusUnprocessableEntity, "check %s: %v", img.ID, err)
		return
	}

	appLabel := telemetry.L("app", rc.App)
	d.rec.ObserveLabeled("encore_serve_scan_seconds", appLabel, elapsed)
	for _, warn := range report.Warnings {
		d.rec.AddLabeled("encore_serve_findings_total",
			telemetry.L("app", rc.App, "severity", string(alert.SeverityForScore(warn.Score))), 1)
		d.opts.Alerts.Publish(alert.FromWarning(warn, rc.App, img.ID, rc.ID, entry.Version))
	}

	// The report renders compactly into a pooled buffer; the outer encoder
	// re-compacts the RawMessage, so the wire bytes are identical to the
	// MarshalIndent path this replaced, minus its two big allocations.
	buf := renderBufPool.Get().(*bytes.Buffer)
	defer func() {
		buf.Reset()
		renderBufPool.Put(buf)
	}()
	if err := report.AppendJSON(buf); err != nil {
		apiError(w, rc, http.StatusInternalServerError, "encode report: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(scanResponse{
		RequestID:     rc.ID,
		App:           rc.App,
		PlanVersion:   entry.Version,
		ElapsedMicros: elapsed.Microseconds(),
		Findings:      len(report.Warnings),
		Report:        json.RawMessage(buf.Bytes()),
	})
}

// renderBufPool recycles report-render buffers across scan requests.
var renderBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// uploadResponse is the /v1/profiles reply.
type uploadResponse struct {
	RequestID string `json:"requestId"`
	App       string `json:"app"`
	Version   string `json:"version"`
	Rules     int    `json:"rules"`
	Attrs     int    `json:"attrs"`
	Samples   int    `json:"samples"`
}

// handleProfileUpload swaps in a new plan for {app}. The body is either
// a binary compiled plan (magic "ENCP") or a JSON knowledge profile; the
// version comes from X-Profile-Version or is auto-assigned.
func (d *Daemon) handleProfileUpload(w http.ResponseWriter, r *http.Request, rc *reqCtx) {
	body, err := io.ReadAll(io.LimitReader(r.Body, d.opts.MaxBodyBytes+1))
	if err != nil {
		apiError(w, rc, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if int64(len(body)) > d.opts.MaxBodyBytes {
		apiError(w, rc, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", d.opts.MaxBodyBytes)
		return
	}
	if len(body) == 0 {
		apiError(w, rc, http.StatusBadRequest, "empty body (send a binary plan or a profile JSON)")
		return
	}

	var plan *detect.Plan
	load := rc.Span.StartChild("serve.load_plan", telemetry.A("bytes", strconv.Itoa(len(body))))
	switch {
	case len(body) >= 4 && string(body[:4]) == "ENCP":
		if d.opts.LoadPlan == nil {
			load.End()
			apiError(w, rc, http.StatusUnsupportedMediaType, "binary plan uploads not configured")
			return
		}
		plan, err = d.opts.LoadPlan(body)
	default:
		if d.opts.LoadProfile == nil {
			load.End()
			apiError(w, rc, http.StatusUnsupportedMediaType, "profile uploads not configured")
			return
		}
		plan, err = d.opts.LoadProfile(body)
	}
	load.End()
	if err != nil {
		apiError(w, rc, http.StatusBadRequest, "load plan: %v", err)
		return
	}

	entry, err := d.reg.Register(rc.App, r.Header.Get("X-Profile-Version"), plan, "upload")
	if err != nil {
		apiError(w, rc, http.StatusBadRequest, "%v", err)
		return
	}
	rc.Span.SetAttr("plan_version", entry.Version)
	d.log.Info("plan swapped", "request_id", rc.ID, "app", entry.App,
		"version", entry.Version, "rules", plan.RuleCount(), "attrs", plan.AttrCount())
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(uploadResponse{
		RequestID: rc.ID,
		App:       entry.App,
		Version:   entry.Version,
		Rules:     plan.RuleCount(),
		Attrs:     plan.AttrCount(),
		Samples:   plan.Samples(),
	})
}

// appStatus is one app's row in the /v1/status document.
type appStatus struct {
	App          string  `json:"app"`
	Version      string  `json:"version"`
	Source       string  `json:"source"`
	LoadedAtUnix int64   `json:"loadedAtUnix"`
	Swaps        int64   `json:"swaps"`
	Rules        int     `json:"rules"`
	Attrs        int     `json:"attrs"`
	Samples      int     `json:"samples"`
	Scans        uint64  `json:"scans"`
	P50Micros    int64   `json:"p50Micros"`
	P90Micros    int64   `json:"p90Micros"`
	P99Micros    int64   `json:"p99Micros"`
	MeanMicros   float64 `json:"meanMicros"`
}

// statusDoc is the /v1/status document: build identity, uptime, drain
// state, and per-app registry versions with rolling latency quantiles.
type statusDoc struct {
	Status        string      `json:"status"`
	Version       string      `json:"version"`
	UptimeSeconds float64     `json:"uptimeSeconds"`
	Draining      bool        `json:"draining"`
	Apps          []appStatus `json:"apps"`
}

func (d *Daemon) handleStatus(w http.ResponseWriter, r *http.Request, rc *reqCtx) {
	doc := statusDoc{
		Status:        "ok",
		Version:       d.opts.Version,
		UptimeSeconds: time.Since(d.start).Seconds(),
		Draining:      d.Draining(),
		Apps:          []appStatus{},
	}
	for _, e := range d.reg.Entries() {
		row := appStatus{
			App:          e.App,
			Version:      e.Version,
			Source:       e.Source,
			LoadedAtUnix: e.LoadedAt.Unix(),
			Swaps:        d.reg.Swaps(e.App),
			Rules:        e.Plan.RuleCount(),
			Attrs:        e.Plan.AttrCount(),
			Samples:      e.Plan.Samples(),
		}
		if h, ok := d.rec.LabeledHistogram("encore_serve_scan_seconds", telemetry.L("app", e.App)); ok {
			row.Scans = h.Count
			row.P50Micros = h.P50.Microseconds()
			row.P90Micros = h.P90.Microseconds()
			row.P99Micros = h.P99.Microseconds()
			if h.Count > 0 {
				row.MeanMicros = float64(h.Sum.Microseconds()) / float64(h.Count)
			}
		}
		doc.Apps = append(doc.Apps, row)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(doc)
}

// alertsDoc is the /v1/alerts document: whether a pipeline is wired,
// cumulative pipeline counters, and the recent-alert ring newest-first.
// Each record carries the originating request ID and plan version plus
// per-notifier delivery outcomes.
type alertsDoc struct {
	Enabled bool           `json:"enabled"`
	Stats   alert.Stats    `json:"stats"`
	Count   int            `json:"count"`
	Alerts  []alert.Record `json:"alerts"`
}

func (d *Daemon) handleAlerts(w http.ResponseWriter, r *http.Request, rc *reqCtx) {
	limit := 0
	if s := r.URL.Query().Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			apiError(w, rc, http.StatusBadRequest, "limit must be a non-negative integer, got %q", s)
			return
		}
		limit = n
	}
	recent := d.opts.Alerts.Recent(limit)
	if recent == nil {
		recent = []alert.Record{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(alertsDoc{
		Enabled: d.opts.Alerts != nil,
		Stats:   d.opts.Alerts.Stats(),
		Count:   len(recent),
		Alerts:  recent,
	})
}

// handleHealthz is pure liveness: the process is up and serving. It
// stays 200 during drain — liveness failing would make an orchestrator
// kill a pod that is still finishing requests.
func (d *Daemon) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":        "ok",
		"uptimeSeconds": time.Since(d.start).Seconds(),
	})
}

// handleReadyz is readiness: 503 until the registry holds at least one
// plan, and 503 again once the daemon is draining, so traffic is only
// routed while scans can actually be answered.
func (d *Daemon) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	switch {
	case d.Draining():
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"status": "draining"})
	case d.reg.Len() == 0:
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"status": "unready", "reason": "no plans loaded"})
	default:
		json.NewEncoder(w).Encode(map[string]any{"status": "ready", "apps": d.reg.Len()})
	}
}

func (d *Daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, d.rec.Snapshot().PromText())
}

func (d *Daemon) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	data, err := d.rec.Snapshot().JSON()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}
