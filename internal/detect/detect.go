// Package detect implements EnCore's anomaly detector (Section 6): given
// the rules and types learned from a training set, it checks a target
// system for four classes of anomalies and produces a ranked warning list.
//
//  1. Entry-name violations — entries never seen in training (likely
//     misspellings, with a nearest-name suggestion).
//  2. Correlation violations — learned rules whose relation does not hold
//     on the target.
//  3. Data-type violations — values failing the syntactic match or the
//     semantic verification of the entry's learned type.
//  4. Suspicious values — values never seen in training, ranked by inverse
//     change frequency so deviations on historically stable entries rank
//     highest.
package detect

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/assemble"
	"repro/internal/conftypes"
	"repro/internal/dataset"
	"repro/internal/rules"
	"repro/internal/stats"
	"repro/internal/sysimage"
	"repro/internal/templates"
)

// Kind classifies a warning.
type Kind string

// Warning kinds, in the order Section 6 describes the checks.
const (
	KindName        Kind = "entry-name"
	KindCorrelation Kind = "correlation"
	KindType        Kind = "data-type"
	KindSuspicious  Kind = "suspicious-value"
)

// Warning is one detected anomaly.
type Warning struct {
	Kind    Kind
	Attr    string
	Value   string
	Message string
	// Rule is set for correlation violations.
	Rule *rules.Rule
	// Score orders the report; higher is more severe.
	Score float64
	// Rank is the 1-based position in the final report.
	Rank int
}

// Report is the ranked output of one check.
type Report struct {
	SystemID string
	Warnings []*Warning
}

// Top returns the highest-ranked warning, or nil.
func (r *Report) Top() *Warning {
	if len(r.Warnings) == 0 {
		return nil
	}
	return r.Warnings[0]
}

// RankOf returns the rank of the first warning satisfying pred, or 0.
func (r *Report) RankOf(pred func(*Warning) bool) int {
	for _, w := range r.Warnings {
		if pred(w) {
			return w.Rank
		}
	}
	return 0
}

// TrainingView is the read-only knowledge a detector needs about the
// training set. It is satisfied both by a live *dataset.Dataset (checking
// right after learning) and by a deserialized profile (checking from
// exported knowledge, without the training corpus).
type TrainingView interface {
	// Attr returns the attribute's declaration and whether it exists.
	Attr(name string) (dataset.Attribute, bool)
	// Attributes lists every declared attribute.
	Attributes() []dataset.Attribute
	// Present counts the systems in which the attribute appeared.
	Present(attr string) int
	// Histogram returns the attribute's value counts across all training
	// instances.
	Histogram(attr string) map[string]int
	// Samples is the number of training systems.
	Samples() int
}

// DatasetView adapts a live dataset to the TrainingView interface.
type DatasetView struct{ D *dataset.Dataset }

// Attr implements TrainingView.
func (v DatasetView) Attr(name string) (dataset.Attribute, bool) { return v.D.Attr(name) }

// Attributes implements TrainingView.
func (v DatasetView) Attributes() []dataset.Attribute { return v.D.Attributes() }

// Present implements TrainingView.
func (v DatasetView) Present(attr string) int { return v.D.Present(attr) }

// Histogram implements TrainingView.
func (v DatasetView) Histogram(attr string) map[string]int {
	return stats.Histogram(v.D.Column(attr))
}

// Samples implements TrainingView.
func (v DatasetView) Samples() int { return len(v.D.Rows) }

// Detector checks target systems against learned knowledge.
type Detector struct {
	Training  TrainingView
	Rules     []*rules.Rule
	Templates []*templates.Template
	Assembler *assemble.Assembler
	// TrainingTypes seeds the target assembler with learned attribute
	// types; when checking from a live dataset this is the dataset itself.
	TrainingTypes *dataset.Dataset

	// SuspiciousValueLimit caps suspicious-value warnings per report to
	// keep reports reviewable (0 = no cap).
	SuspiciousValueLimit int
}

// New returns a detector over the training dataset and learned rules,
// using the predefined templates and a fresh default assembler.
func New(training *dataset.Dataset, learned []*rules.Rule) *Detector {
	return &Detector{
		Training:      DatasetView{D: training},
		TrainingTypes: training,
		Rules:         learned,
		Templates:     templates.Predefined(),
		Assembler:     assemble.New(),
	}
}

// NewFromView returns a detector over an arbitrary training view (e.g. a
// deserialized knowledge profile). types carries the learned attribute
// types for target assembly.
func NewFromView(view TrainingView, types *dataset.Dataset, learned []*rules.Rule) *Detector {
	return &Detector{
		Training:      view,
		TrainingTypes: types,
		Rules:         learned,
		Templates:     templates.Predefined(),
		Assembler:     assemble.New(),
	}
}

func (dt *Detector) template(id string) *templates.Template {
	for _, t := range dt.Templates {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// Check assembles the target image and runs all four anomaly checks,
// returning a ranked report.
func (dt *Detector) Check(img *sysimage.Image) (*Report, error) {
	target, err := dt.Assembler.AssembleTarget(img, dt.TrainingTypes)
	if err != nil {
		return nil, err
	}
	row := target.Rows[0]
	ctx := &templates.Ctx{Row: row, Image: img}

	var warnings []*Warning
	warnings = append(warnings, dt.checkNames(target, row)...)
	warnings = append(warnings, dt.checkCorrelations(ctx)...)
	warnings = append(warnings, dt.checkTypes(row, img)...)
	warnings = append(warnings, dt.checkSuspiciousValues(row)...)

	sort.SliceStable(warnings, func(i, j int) bool {
		if warnings[i].Score != warnings[j].Score {
			return warnings[i].Score > warnings[j].Score
		}
		return warnings[i].Attr < warnings[j].Attr
	})
	for i, w := range warnings {
		w.Rank = i + 1
	}
	return &Report{SystemID: img.ID, Warnings: warnings}, nil
}

// trainingHas reports whether the attribute was observed (with a value) in
// the training set.
func (dt *Detector) trainingHas(attr string) bool {
	return dt.Training.Present(attr) > 0
}

// checkNames flags configured entries whose names never occur in training.
func (dt *Detector) checkNames(target *dataset.Dataset, row *dataset.Row) []*Warning {
	var out []*Warning
	for attr := range row.Cells {
		a, declared := dt.Training.Attr(attr)
		if a.Augmented {
			continue
		}
		// Augmented attributes derived from an unseen entry are noise:
		// the unseen entry itself is the warning.
		if ta, ok := target.Attr(attr); ok && ta.Augmented {
			continue
		}
		if declared && dt.trainingHas(attr) {
			continue
		}
		if isEnvAttr(attr) {
			continue
		}
		msg := fmt.Sprintf("entry %q was never seen in the training set", attr)
		score := 20.0
		if near := dt.nearestTrainingAttr(attr); near != "" {
			msg += fmt.Sprintf(" (did you mean %q?)", near)
			score = 35.0 // probable misspelling is a strong signal
		}
		out = append(out, &Warning{Kind: KindName, Attr: attr, Message: msg, Score: score})
	}
	return out
}

// isEnvAttr reports whether an attribute is a Table 5b environment
// attribute rather than a configuration entry.
func isEnvAttr(attr string) bool {
	return !strings.Contains(attr, ":")
}

// nearestTrainingAttr returns a training attribute within edit distance 2
// of attr, or "".
func (dt *Detector) nearestTrainingAttr(attr string) string {
	best, bestDist := "", 3
	for _, a := range dt.Training.Attributes() {
		if a.Augmented || a.Name == attr {
			continue
		}
		if d := editDistance(attr, a.Name, bestDist); d < bestDist {
			best, bestDist = a.Name, d
		}
	}
	return best
}

// checkCorrelations evaluates every learned rule whose attributes are both
// present on the target.
func (dt *Detector) checkCorrelations(ctx *templates.Ctx) []*Warning {
	var out []*Warning
	for _, r := range dt.Rules {
		tpl := dt.template(r.Template)
		if tpl == nil {
			continue
		}
		va := ctx.Row.Instances(r.AttrA)
		vb := ctx.Row.Instances(r.AttrB)
		if len(va) == 0 || len(vb) == 0 {
			continue // absent entries: rule is ignored (Section 6)
		}
		holds, applicable := tpl.Validate(va, vb, ctx)
		if !applicable || holds {
			continue
		}
		out = append(out, &Warning{
			Kind:  KindCorrelation,
			Attr:  r.AttrA,
			Value: strings.Join(va, ";"),
			Rule:  r,
			Message: fmt.Sprintf("correlation %s violated: %s=%q vs %s=%q",
				r.Spec, r.AttrA, strings.Join(va, ";"), r.AttrB, strings.Join(vb, ";")),
			Score: 40 + 20*r.Confidence,
		})
	}
	return out
}

// checkTypes verifies each target value against the type learned in
// training.
func (dt *Detector) checkTypes(row *dataset.Row, img *sysimage.Image) []*Warning {
	var out []*Warning
	for attr, values := range row.Cells {
		a, ok := dt.Training.Attr(attr)
		if !ok || a.Augmented || a.Type.IsTrivial() || !dt.trainingHas(attr) {
			continue
		}
		for _, v := range values {
			if conftypes.LooksLikeRegexOrGlob(v) {
				continue
			}
			syn, sem := dt.Assembler.Inferencer.CheckValue(a.Type, v, img)
			if syn && sem {
				continue
			}
			card := len(dt.Training.Histogram(attr))
			score := 50.0
			if card == 1 {
				// Every training system agreed on this aspect: strongest
				// possible signal (the extension_dir case of Figure 1a).
				score = 90
			} else if card > 1 {
				score = 50 + 30/float64(card)
			}
			step := "semantic verification"
			if !syn {
				step = "syntactic match"
			}
			out = append(out, &Warning{
				Kind:  KindType,
				Attr:  attr,
				Value: v,
				Message: fmt.Sprintf("value %q of %s fails %s for type %s",
					v, attr, step, a.Type),
				Score: score,
			})
		}
	}
	return out
}

// checkSuspiciousValues flags values never seen in training, ranked by
// inverse change frequency.
func (dt *Detector) checkSuspiciousValues(row *dataset.Row) []*Warning {
	samples := dt.Training.Samples()
	var out []*Warning
	for attr, values := range row.Cells {
		// Augmented attributes participate: deviations in environment
		// facts (extension_dir.type = file where training only ever saw
		// dir) are precisely the Env detections of the paper.
		a, ok := dt.Training.Attr(attr)
		if !ok || !dt.trainingHas(attr) {
			continue
		}
		seen := dt.Training.Histogram(attr)
		card := len(seen)
		// Attributes that are unique (or nearly so) per system — host
		// names, addresses — carry no peer signal; a fresh value there is
		// expected, not suspicious.
		if card*2 >= samples {
			continue
		}
		for _, v := range values {
			if seen[v] > 0 {
				continue
			}
			icf := stats.ICF(card, samples)
			score := 5 * icf
			if card == 1 {
				// Every training system agreed on this value; a deviation
				// is ranked far above ordinary unseen values.
				score = 70
				if a.Augmented {
					score = 75 // environment fact contradicting all peers
				}
			}
			out = append(out, &Warning{
				Kind:  KindSuspicious,
				Attr:  attr,
				Value: v,
				Message: fmt.Sprintf("value %q of %s never appeared in %d training systems (%d distinct values seen)",
					v, attr, samples, card),
				Score: score,
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	if dt.SuspiciousValueLimit > 0 && len(out) > dt.SuspiciousValueLimit {
		out = out[:dt.SuspiciousValueLimit]
	}
	return out
}

// editDistance computes Levenshtein distance with early exit once the
// distance is known to reach bound.
func editDistance(a, b string, bound int) int {
	if abs(len(a)-len(b)) >= bound {
		return bound
	}
	buf := make([]int, 2*(len(b)+1))
	return editDistanceInto(a, b, bound, buf[:len(b)+1], buf[len(b)+1:])
}

// editDistanceInto is editDistance's DP body over caller-provided rows
// (len(b)+1 each), so hot paths can reuse buffers across calls.
func editDistanceInto(a, b string, bound int, prev, cur []int) int {
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		rowMin := cur[0]
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
			if cur[j] < rowMin {
				rowMin = cur[j]
			}
		}
		if rowMin >= bound {
			return bound
		}
		prev, cur = cur, prev
	}
	if prev[len(b)] > bound {
		return bound
	}
	return prev[len(b)]
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func min3(a, b, c int) int {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}
