package eval

import (
	"fmt"
	"strings"

	"repro/internal/baseline"
	"repro/internal/corpus"
	"repro/internal/detect"
	"repro/internal/inject"
)

// ---- Extension: environment-error injection (Section 8 tie-in) ----

// EnvInjectionRow is the environment-error study result for one app.
type EnvInjectionRow struct {
	App         string
	Total       int
	Baseline    int
	BaselineEnv int
	EnCore      int
}

// EnvInjectionsPerApp is the number of environment errors injected per
// application in the extension study (bounded by the number of live
// environment objects the smallest configuration references).
const EnvInjectionsPerApp = 3

// ExtensionEnvInjection injects errors into the *environment* of a
// held-out image — the configuration file stays byte-identical — and
// counts detections. A pure value-comparison baseline is structurally
// blind here; environment-aware approaches are not.
func ExtensionEnvInjection(seed int64) ([]EnvInjectionRow, error) {
	var rows []EnvInjectionRow
	for _, app := range Apps {
		tr, err := Train(app, 0, seed)
		if err != nil {
			return nil, err
		}
		victims, err := corpus.Training(app, 1, seed+200)
		if err != nil {
			return nil, err
		}
		victim := victims[0]
		victim.ID = app + "-env-victim"
		injections, err := inject.New(seed+13).EnvInject(victim, app, EnvInjectionsPerApp)
		if err != nil {
			return nil, err
		}

		row := EnvInjectionRow{App: app, Total: len(injections)}
		blFindings, err := baseline.NewBaseline(tr.Data).Check(victim)
		if err != nil {
			return nil, err
		}
		bleFindings, err := baseline.NewBaselineEnv(tr.Data).Check(victim)
		if err != nil {
			return nil, err
		}
		report, err := tr.Detector().Check(victim)
		if err != nil {
			return nil, err
		}
		for _, inj := range injections {
			if matchFinding(blFindings, inj) {
				row.Baseline++
			}
			if matchFinding(bleFindings, inj) {
				row.BaselineEnv++
			}
			if matchWarning(report, inj) {
				row.EnCore++
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderEnvInjection prints the extension study.
func RenderEnvInjection(rows []EnvInjectionRow) string {
	var b strings.Builder
	b.WriteString("Extension: environment-error injection (config file untouched)\n")
	fmt.Fprintf(&b, "%-8s %6s %10s %14s %8s\n", "App", "Total", "Baseline", "Baseline+Env", "EnCore")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %6d %10d %14d %8d\n", r.App, r.Total, r.Baseline, r.BaselineEnv, r.EnCore)
	}
	return b.String()
}

// ---- Extension: cross-component rules on the LAMP stack ----

// CrossComponentResult summarizes the LAMP extension.
type CrossComponentResult struct {
	Rules       int
	CrossRules  int
	TrueCross   int // cross rules matching the LAMP ground truth
	SocketRank  int // rank of the stale-socket violation on the broken target
	SessionRank int // rank of the session-owner violation
}

// ExtensionCrossComponent learns from a LAMP-stack corpus and detects the
// two canonical cross-component failures.
func ExtensionCrossComponent(n int, seed int64) (*CrossComponentResult, error) {
	images, err := corpus.LAMPTraining(n, seed)
	if err != nil {
		return nil, err
	}
	asm := newAssembler()
	ds, err := asm.AssembleTraining(images)
	if err != nil {
		return nil, err
	}
	eng := newEngine()
	learned := eng.Infer(ds, corpus.ByID(images))

	res := &CrossComponentResult{Rules: len(learned)}
	truth := corpus.LAMPTrueRules()
	for _, r := range learned {
		if appOfAttr(r.AttrA) != appOfAttr(r.AttrB) && appOfAttr(r.AttrA) != "" && appOfAttr(r.AttrB) != "" {
			res.CrossRules++
			for _, t := range truth {
				if t.Matches(r.Template, r.AttrA, r.AttrB) {
					res.TrueCross++
				}
			}
		}
	}

	dt := detect.New(ds, learned)
	dt.Assembler = asm
	dt.Templates = eng.Templates

	victims, err := corpus.LAMPTraining(1, seed+50)
	if err != nil {
		return nil, err
	}
	socketTarget := corpus.BreakLAMPSocket(victims[0])
	rep, err := dt.Check(socketTarget)
	if err != nil {
		return nil, err
	}
	res.SocketRank = rep.RankOf(func(w *detect.Warning) bool {
		return attrRefers(w.Attr, "php:PHP/mysqli.default_socket")
	})

	sessionTarget := corpus.BreakLAMPSessionOwner(victims[0])
	rep, err = dt.Check(sessionTarget)
	if err != nil {
		return nil, err
	}
	res.SessionRank = rep.RankOf(func(w *detect.Warning) bool {
		return attrRefers(w.Attr, "php:Session/session.save_path")
	})
	return res, nil
}

func appOfAttr(attr string) string {
	if i := strings.Index(attr, ":"); i >= 0 {
		return attr[:i]
	}
	return ""
}

// RenderCrossComponent prints the LAMP extension summary.
func RenderCrossComponent(r *CrossComponentResult) string {
	var b strings.Builder
	b.WriteString("Extension: cross-component correlation on a LAMP stack\n")
	fmt.Fprintf(&b, "rules learned:              %d\n", r.Rules)
	fmt.Fprintf(&b, "cross-component rules:      %d (%d matching ground truth)\n", r.CrossRules, r.TrueCross)
	fmt.Fprintf(&b, "stale-socket failure rank:  %d\n", r.SocketRank)
	fmt.Fprintf(&b, "session-owner failure rank: %d\n", r.SessionRank)
	return b.String()
}
