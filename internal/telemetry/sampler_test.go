package telemetry

import (
	"io"
	"testing"
	"time"
)

// TestSamplerRingWraparound fills a tiny ring past capacity and checks the
// window slides: oldest samples fall off, order stays oldest-first.
func TestSamplerRingWraparound(t *testing.T) {
	s := NewSampler(time.Hour, 3)
	for i := 0; i < 5; i++ {
		s.sampleNow()
	}
	got := s.Samples()
	if len(got) != 3 {
		t.Fatalf("samples = %d, want ring capacity 3", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].At < got[i-1].At {
			t.Fatalf("samples out of order: %v after %v", got[i].At, got[i-1].At)
		}
	}
	latest, ok := s.Latest()
	if !ok || latest != got[len(got)-1] {
		t.Fatalf("Latest = %+v (ok=%v), want the newest ring entry %+v", latest, ok, got[len(got)-1])
	}
}

// TestSamplerPartialRing checks the pre-wraparound view: only taken
// samples are returned, capacity does not pad.
func TestSamplerPartialRing(t *testing.T) {
	s := NewSampler(time.Hour, 8)
	if _, ok := s.Latest(); ok {
		t.Fatal("Latest reported a sample before any was taken")
	}
	if got := s.Samples(); len(got) != 0 {
		t.Fatalf("fresh sampler has %d samples", len(got))
	}
	s.sampleNow()
	s.sampleNow()
	if got := s.Samples(); len(got) != 2 {
		t.Fatalf("samples = %d, want 2", len(got))
	}
}

// TestSamplerStartStop exercises the real ticker goroutine: Start takes an
// immediate sample, Stop joins the goroutine and appends a final one, and
// a second Stop is a harmless no-op.
func TestSamplerStartStop(t *testing.T) {
	s := NewSampler(time.Millisecond, 64)
	s.Start()
	time.Sleep(5 * time.Millisecond)
	s.Stop()
	n := len(s.Samples())
	if n < 2 {
		t.Fatalf("samples after a 5ms run at 1ms cadence = %d, want >= 2", n)
	}
	s.Stop()
	if got := len(s.Samples()); got != n {
		t.Fatalf("second Stop changed the ring: %d -> %d", n, got)
	}
	for _, smp := range s.Samples() {
		if smp.HeapBytes == 0 || smp.Goroutines <= 0 {
			t.Fatalf("sample missing runtime readings: %+v", smp)
		}
	}
}

// TestSamplerProgressFold checks an attached Progress reporter's counts
// land in subsequent samples.
func TestSamplerProgressFold(t *testing.T) {
	s := NewSampler(time.Hour, 4)
	p := NewProgress(io.Discard, "scan", 10, time.Hour)
	defer p.Stop()
	p.Step(1)
	p.Step(2)
	s.SetProgress(p)
	s.sampleNow()
	latest, ok := s.Latest()
	if !ok || latest.ProgressDone != 2 || latest.ProgressTotal != 10 {
		t.Fatalf("progress fold = %+v (ok=%v), want done=2 total=10", latest, ok)
	}
}

// TestSamplerNilSafety calls every method through a nil sampler.
func TestSamplerNilSafety(t *testing.T) {
	var s *Sampler
	s.Start()
	s.Stop()
	s.SetEpoch(time.Now())
	s.SetProgress(nil)
	if s.Samples() != nil {
		t.Fatal("nil sampler returned samples")
	}
	if _, ok := s.Latest(); ok {
		t.Fatal("nil sampler reported a latest sample")
	}
	if s.Interval() != 0 {
		t.Fatal("nil sampler reported an interval")
	}
}

// TestRecorderSamplerSnapshot checks AttachSampler aligns the epoch and
// folds the timeseries into Snapshot (phase included).
func TestRecorderSamplerSnapshot(t *testing.T) {
	r := New()
	r.SetPhase("learn")
	s := NewSampler(50*time.Millisecond, 16)
	r.AttachSampler(s)
	s.sampleNow()
	snap := r.Snapshot()
	if snap.Phase != "learn" {
		t.Fatalf("phase = %q", snap.Phase)
	}
	if snap.SampleEvery != 50*time.Millisecond {
		t.Fatalf("sampleEvery = %v", snap.SampleEvery)
	}
	if len(snap.Runtime) != 1 || snap.Runtime[0].HeapBytes == 0 {
		t.Fatalf("runtime section = %+v", snap.Runtime)
	}
}
