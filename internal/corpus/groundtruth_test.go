package corpus

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/confparse"
	"repro/internal/conftypes"
	"repro/internal/sysimage"
)

// TestTargetPopulationGroundTruthConsistency is the property test behind
// the evaluation matrix's denominator: across populations and seeds,
// every Latent the generators record must be verifiable against the
// generated images — the image exists, its configuration still parses,
// and the category-specific defect (wrong permission, dangling path,
// violated ordering) actually holds on the image. A Latent that does not
// reproduce on its own image would silently deflate every detector's
// measured recall.
func TestTargetPopulationGroundTruthConsistency(t *testing.T) {
	type popCase struct {
		name   string
		gen    func(int64) (*TargetPopulation, error)
		images int
		mix    categoryMix
		spread int
	}
	cases := []popCase{
		{"ec2", EC2Targets, 120, EC2Mix, 25},
		{"pc", PrivateCloudTargets, 300, PrivateCloudMix, 22},
	}
	for _, pc := range cases {
		for _, seed := range []int64{1, 2, 7, 13, 42} {
			pop, err := pc.gen(seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", pc.name, seed, err)
			}
			if len(pop.Images) != pc.images {
				t.Errorf("%s seed %d: %d images, want %d", pc.name, seed, len(pop.Images), pc.images)
			}
			wantTruth := pc.mix.filePath + pc.mix.permission + pc.mix.valueCompare
			if len(pop.Truth) != wantTruth {
				t.Errorf("%s seed %d: %d latents, want %d", pc.name, seed, len(pop.Truth), wantTruth)
			}
			byID := ByID(pop.Images)
			counts := map[string]int{}
			affected := map[string]bool{}
			for _, l := range pop.Truth {
				counts[l.Category]++
				affected[l.ImageID] = true
				img := byID[l.ImageID]
				if img == nil {
					t.Errorf("%s seed %d: latent %v names unknown image", pc.name, seed, l)
					continue
				}
				app, _, ok := strings.Cut(l.Attr, ":")
				if !ok {
					t.Errorf("%s seed %d: latent attr %q has no app prefix", pc.name, seed, l.Attr)
					continue
				}
				cf := img.ConfigFor(app)
				if cf == nil {
					t.Errorf("%s seed %d: image %s has no %s config for latent %v", pc.name, seed, img.ID, app, l)
					continue
				}
				if _, err := confparse.Parse(app, cf.Path, cf.Content); err != nil {
					t.Errorf("%s seed %d: image %s %s config unparsable after planting: %v", pc.name, seed, img.ID, app, err)
					continue
				}
				verifyLatent(t, pc.name, seed, img, l)
			}
			if counts["FilePath"] != pc.mix.filePath || counts["Permission"] != pc.mix.permission || counts["ValueCompare"] != pc.mix.valueCompare {
				t.Errorf("%s seed %d: category counts %v, want %+v", pc.name, seed, counts, pc.mix)
			}
			if len(affected) > pc.spread {
				t.Errorf("%s seed %d: %d affected images exceed spread %d", pc.name, seed, len(affected), pc.spread)
			}
		}
	}
}

// verifyLatent re-scans the image and asserts the planted defect holds.
func verifyLatent(t *testing.T, pop string, seed int64, img *sysimage.Image, l Latent) {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Helper()
		t.Errorf("%s seed %d image %s latent %q: "+format, append([]any{pop, seed, img.ID, l.Attr}, args...)...)
	}
	switch l.Category {
	case "Permission":
		switch l.Attr {
		case "mysql:mysqld/log-error":
			path, ok := findConfValue(img, "mysql", "log-error")
			if !ok {
				fail("log-error entry missing")
				return
			}
			fm := img.Lookup(path)
			if fm == nil || fm.Mode != 0o644 {
				fail("log file %s not world-readable (%v)", path, fm)
			}
		case "apache:Alias/arg2":
			cf := img.ConfigFor("apache")
			path, err := confValueAt(cf.Content, "apache", cf.Path, "Alias", 1)
			if err != nil {
				fail("Alias arg2 missing: %v", err)
				return
			}
			fm := img.Lookup(path)
			if fm == nil || fm.Owner != "root" || fm.Mode != 0o755 {
				fail("alias target %s not root-owned 0755 (%v)", path, fm)
			}
		case "php:Session/session.save_path":
			path, ok := findConfValue(img, "php", "session.save_path")
			if !ok {
				fail("session.save_path entry missing")
				return
			}
			fm := img.Lookup(path)
			if fm == nil || fm.Mode != 0o700 || fm.Group != "root" {
				fail("session dir %s not 0700 root-group (%v)", path, fm)
			}
		default:
			fail("unknown permission attr")
		}
	case "FilePath":
		var app, key string
		switch l.Attr {
		case "php:PHP/extension_dir":
			app, key = "php", "extension_dir"
		case "mysql:mysqld/tmpdir":
			app, key = "mysql", "tmpdir"
		case "apache:ErrorLog":
			app, key = "apache", "ErrorLog"
		default:
			fail("unknown file-path attr")
			return
		}
		path, ok := findConfValue(img, app, key)
		if !ok {
			fail("%s entry missing", key)
			return
		}
		if fm := img.Lookup(path); fm != nil {
			fail("configured path %s exists (%v) — defect did not take", path, fm)
		}
	case "ValueCompare":
		switch l.Attr {
		case "php:PHP/upload_max_filesize":
			upload, ok1 := sizeOf(img, "php", "upload_max_filesize")
			post, ok2 := sizeOf(img, "php", "post_max_size")
			if !ok1 || !ok2 || upload <= post {
				fail("upload_max_filesize %d not above post_max_size %d", upload, post)
			}
		case "apache:MinSpareServers":
			minSpare, ok1 := intOf(img, "apache", "MinSpareServers")
			maxSpare, ok2 := intOf(img, "apache", "MaxSpareServers")
			if !ok1 || !ok2 || minSpare <= maxSpare {
				fail("MinSpareServers %d not above MaxSpareServers %d", minSpare, maxSpare)
			}
		case "mysql:mysqld/max_allowed_packet":
			packet, ok1 := sizeOf(img, "mysql", "max_allowed_packet")
			netBuf, ok2 := sizeOf(img, "mysql", "net_buffer_length")
			if !ok1 || !ok2 || packet >= netBuf {
				fail("max_allowed_packet %d not below net_buffer_length %d", packet, netBuf)
			}
		default:
			fail("unknown value-compare attr")
		}
	default:
		fail("unknown category %q", l.Category)
	}
}

func sizeOf(img *sysimage.Image, app, key string) (int64, bool) {
	v, ok := findConfValue(img, app, key)
	if !ok {
		return 0, false
	}
	return conftypes.ParseSize(v)
}

func intOf(img *sysimage.Image, app, key string) (int, bool) {
	v, ok := findConfValue(img, app, key)
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(v)
	return n, err == nil
}
