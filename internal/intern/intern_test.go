package intern

import (
	"fmt"
	"sync"
	"testing"
	"unsafe"
)

func TestStringCanonicalizes(t *testing.T) {
	a := String("intern-test-" + fmt.Sprint(1))
	b := String("intern-test-" + fmt.Sprint(1)) // distinct backing array
	if a != b {
		t.Fatalf("interned values differ: %q vs %q", a, b)
	}
	if unsafe.StringData(a) != unsafe.StringData(b) {
		t.Fatal("second String call did not return the canonical copy")
	}
	if String("") != "" {
		t.Fatal("empty string must pass through")
	}
}

func TestBytesMatchesString(t *testing.T) {
	s := String("intern-bytes-probe")
	got := Bytes([]byte("intern-bytes-probe"))
	if got != s || unsafe.StringData(got) != unsafe.StringData(s) {
		t.Fatal("Bytes did not resolve to the canonical String entry")
	}
	if Bytes(nil) != "" {
		t.Fatal("empty bytes must pass through")
	}
}

// TestBytesHitPathNoAlloc pins the property LoadJSON's diet relies on:
// resolving an already-interned name from a byte slice allocates nothing.
func TestBytesHitPathNoAlloc(t *testing.T) {
	String("intern-noalloc-probe")
	b := []byte("intern-noalloc-probe")
	if allocs := testing.AllocsPerRun(100, func() { Bytes(b) }); allocs > 0 {
		t.Fatalf("Bytes hit path allocated %.1f objects per call", allocs)
	}
}

// TestBoundedGrowth verifies misses past MaxEntries pass through without
// growing the table, while existing entries keep deduplicating.
func TestBoundedGrowth(t *testing.T) {
	for i := 0; Len() < MaxEntries; i++ {
		String(fmt.Sprintf("intern-fill-%d", i))
	}
	before := Len()
	s := String("intern-overflow-miss")
	if Len() != before {
		t.Fatalf("table grew past MaxEntries: %d -> %d", before, Len())
	}
	if s != "intern-overflow-miss" {
		t.Fatal("overflow miss did not pass the input through")
	}
	// Hits still canonicalize at capacity.
	if String("intern-fill-0") != "intern-fill-0" {
		t.Fatal("existing entry lost at capacity")
	}
}

func TestConcurrentAccess(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				String(fmt.Sprintf("intern-conc-%d", i%50))
				Bytes([]byte(fmt.Sprintf("intern-conc-%d", i%50)))
			}
		}(g)
	}
	wg.Wait()
}
