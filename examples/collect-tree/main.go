// The data collector on a real filesystem tree: build an extracted-image
// tree on disk (as if a VM image were mounted), collect it into a system
// image, and check it against knowledge learned from the synthetic corpus.
//
// The collected tree deliberately carries the Figure 1(b) problem: the
// MySQL data directory is owned by root instead of the configured user.
//
//	go run ./examples/collect-tree
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	encore "repro"
	"repro/internal/collector"
	"repro/internal/corpus"
)

func main() {
	root, err := os.MkdirTemp("", "encore-tree-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)
	if err := buildTree(root); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extracted tree at %s\n", root)

	// Collect: walk the tree, resolve ownership against the tree's own
	// /etc/passwd, capture the MySQL configuration.
	img, err := collector.Collect(root, "collected-host", collector.Options{
		Apps: map[string]string{"mysql": "etc/my.cnf"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected %d files, %d users, %d services\n",
		len(img.Files), len(img.Users), len(img.Services))

	// The collector cannot see which uid created the files in this demo
	// tree (they belong to whoever runs the example), so ownership is
	// overlaid from the scenario: the restore ran as root.
	img.Files["/var/lib/mysql"].Owner = "root"
	img.Files["/var/lib/mysql"].Group = "root"

	training, err := corpus.Training("mysql", 60, 41)
	if err != nil {
		log.Fatal(err)
	}
	fw := encore.New()
	knowledge, err := fw.Learn(training)
	if err != nil {
		log.Fatal(err)
	}
	report, err := fw.Check(knowledge, img)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s", report.RenderText(5))
	fmt.Printf("\nremediation advice:\n%s", encore.RenderAdvice(knowledge.Advise(report)))
}

// buildTree lays out a minimal extracted system image on disk.
func buildTree(root string) error {
	files := map[string]string{
		"etc/passwd":     "root:x:0:0:root:/root:/bin/bash\nmysql:x:27:27:MySQL:/var/lib/mysql:/sbin/nologin\n",
		"etc/group":      "root:x:0:\nmysql:x:27:\n",
		"etc/services":   "mysql 3306/tcp\nssh 22/tcp\n",
		"etc/os-release": "ID=centos\nVERSION_ID=\"6.3\"\n",
		"etc/my.cnf": "[mysqld]\n" +
			"datadir = /var/lib/mysql\n" +
			"user = mysql\n" +
			"port = 3306\n" +
			"socket = /var/lib/mysql/mysql.sock\n" +
			"log-error = /var/log/mysqld.log\n" +
			"pid-file = /var/run/mysqld.pid\n" +
			"tmpdir = /tmp\n" +
			"max_allowed_packet = 16M\n" +
			"net_buffer_length = 8K\n" +
			"key_buffer_size = 16M\n" +
			"max_heap_table_size = 64M\n" +
			"max_connections = 151\n",
		"var/lib/mysql/ibdata1":    "x",
		"var/lib/mysql/mysql.sock": "",
		"var/log/mysqld.log":       "",
		"var/run/mysqld.pid":       "42",
		"tmp/.keep":                "",
	}
	for rel, content := range files {
		p := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			return err
		}
	}
	// Match the fleet's permission conventions (umask-proof chmods), so
	// the report isolates the planted ownership problem.
	modes := map[string]os.FileMode{
		"var/lib/mysql":            0o750,
		"var/lib/mysql/ibdata1":    0o660,
		"var/lib/mysql/mysql.sock": 0o777,
		"var/log/mysqld.log":       0o640,
		"tmp":                      0o777,
	}
	for rel, mode := range modes {
		if err := os.Chmod(filepath.Join(root, rel), mode); err != nil {
			return err
		}
	}
	return nil
}
