package inject

import (
	"fmt"

	"repro/internal/confparse"
	"repro/internal/sysimage"
)

// Environment error models. Section 8 of the paper observes that
// configuration-testing tools can use EnCore for "new error injection
// opportunities such as erroneous environment settings": errors that leave
// the configuration file byte-identical and corrupt only the environment
// the configuration refers to. A pure value-comparison detector can never
// see these.
const (
	KindEnvChown     Kind = "env-chown"       // referenced path gets a wrong owner
	KindEnvChmod     Kind = "env-chmod"       // referenced path gets wrong permissions
	KindEnvRemove    Kind = "env-remove"      // referenced path disappears
	KindEnvFileAsDir Kind = "env-file-as-dir" // referenced directory becomes a file
	KindEnvDropUser  Kind = "env-drop-user"   // referenced account disappears
)

// EnvInject applies n environment errors to paths and accounts referenced
// by the app's configuration, without touching the configuration file.
// Each error hits a distinct environment object.
func (in *Injector) EnvInject(img *sysimage.Image, app string, n int) ([]Injection, error) {
	cf := img.ConfigFor(app)
	if cf == nil {
		return nil, fmt.Errorf("inject: image %s has no %s configuration", img.ID, app)
	}
	f, err := confparse.Parse(app, cf.Path, cf.Content)
	if err != nil {
		return nil, fmt.Errorf("inject: %w", err)
	}

	// Collect injectable references: configured paths that exist and
	// configured accounts that exist.
	type ref struct {
		attr  string
		value string
		kind  byte // 'p' path, 'u' user
	}
	var refs []ref
	seen := map[string]bool{}
	for _, e := range f.Entries {
		for i, v := range e.Values {
			attr := app + ":" + e.Name()
			if len(e.Values) > 1 {
				attr = fmt.Sprintf("%s/arg%d", attr, i+1)
			}
			switch {
			case len(v) > 1 && v[0] == '/' && img.Exists(v):
				if !seen["p"+v] {
					seen["p"+v] = true
					refs = append(refs, ref{attr: attr, value: v, kind: 'p'})
				}
			case img.UserExists(v) && v != "root":
				if !seen["u"+v] {
					seen["u"+v] = true
					refs = append(refs, ref{attr: attr, value: v, kind: 'u'})
				}
			}
		}
	}
	if len(refs) == 0 {
		return nil, fmt.Errorf("inject: %s configuration references no live environment objects", app)
	}

	var log []Injection
	for _, idx := range in.rng.Perm(len(refs)) {
		if len(log) >= n {
			break
		}
		r := refs[idx]
		inj := Injection{Attr: r.attr, OrigAttr: r.attr, Before: r.value}
		switch r.kind {
		case 'p':
			fm := img.Lookup(r.value)
			// Only mutations that actually change state are eligible:
			// chowning a root-owned path to root would be a silent no-op.
			models := []Kind{KindEnvChmod, KindEnvRemove}
			if fm.Owner != "root" {
				models = append(models, KindEnvChown)
			}
			if fm.Kind == sysimage.KindDir {
				models = append(models, KindEnvFileAsDir)
			}
			switch models[in.rng.Intn(len(models))] {
			case KindEnvChown:
				inj.Kind = KindEnvChown
				fm.Owner, fm.Group = "root", "root"
				inj.After = "owner=root"
			case KindEnvChmod:
				inj.Kind = KindEnvChmod
				if fm.Mode&0o004 != 0 {
					fm.Mode &^= 0o077 // strip group/other bits
				} else {
					fm.Mode |= 0o007 // expose to everyone
				}
				inj.After = fmt.Sprintf("mode=0%o", fm.Mode&0o777)
			case KindEnvRemove:
				inj.Kind = KindEnvRemove
				delete(img.Files, fm.Path)
				inj.After = "<deleted>"
			case KindEnvFileAsDir:
				inj.Kind = KindEnvFileAsDir
				fm.Kind = sysimage.KindFile
				inj.After = "kind=file"
			}
		case 'u':
			inj.Kind = KindEnvDropUser
			delete(img.Users, r.value)
			inj.After = "<account removed>"
		}
		log = append(log, inj)
	}
	if len(log) < n {
		return log, fmt.Errorf("inject: only %d of %d environment errors injected", len(log), n)
	}
	return log, nil
}
