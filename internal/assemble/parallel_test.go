package assemble

import (
	"reflect"
	"testing"

	"repro/internal/corpus"
	"repro/internal/sysimage"
	"repro/internal/telemetry"
)

// equivCorpus builds a mixed seed corpus: the three single-app populations
// plus LAMP images whose rows span several config files per image.
func equivCorpus(t *testing.T) []*sysimage.Image {
	t.Helper()
	var images []*sysimage.Image
	for _, app := range []string{"apache", "mysql", "php", "sshd"} {
		imgs, err := corpus.Training(app, 12, 42)
		if err != nil {
			t.Fatal(err)
		}
		images = append(images, imgs...)
	}
	lamp, err := corpus.LAMPTraining(8, 43)
	if err != nil {
		t.Fatal(err)
	}
	return append(images, lamp...)
}

// TestParallelEquivalence locks the parallel AssembleTraining to the
// sequential reference path: attribute order, inferred types, augmented
// columns, and every row must be deep-equal on the seed corpus. Run under
// -race this also exercises the worker pool for data races.
func TestParallelEquivalence(t *testing.T) {
	images := equivCorpus(t)

	serial := New()
	serial.Workers = 1
	want, err := serial.AssembleTrainingSerial(images)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{0, 2, 3, 7} {
		par := New()
		par.Workers = workers
		got, err := par.AssembleTraining(images)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got.Attributes(), want.Attributes()) {
			t.Fatalf("workers=%d: attribute declarations diverge", workers)
		}
		if !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Fatalf("workers=%d: rows diverge", workers)
		}
		if got.CSV() != want.CSV() {
			t.Fatalf("workers=%d: CSV rendering diverges", workers)
		}
	}
}

// TestWorkersOneUsesSerialPath pins the Workers=1 fast path to the serial
// reference.
func TestWorkersOneUsesSerialPath(t *testing.T) {
	images := equivCorpus(t)[:5]
	a := New()
	a.Workers = 1
	got, err := a.AssembleTraining(images)
	if err != nil {
		t.Fatal(err)
	}
	want, err := New().AssembleTrainingSerial(images)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Fatal("Workers=1 path diverges from serial reference")
	}
}

// TestParallelParseErrorMatchesSerial verifies both paths surface the same
// (first, in image order) parse error with the image context attached.
func TestParallelParseErrorMatchesSerial(t *testing.T) {
	images := equivCorpus(t)[:6]
	images[2].ConfigFiles = append(images[2].ConfigFiles, sysimage.ConfigFile{
		App: "apache", Path: "/etc/apache2/broken.conf", Content: "<VirtualHost *:80>\n",
	})
	serial := New()
	serial.Workers = 1
	_, serr := serial.AssembleTraining(images)
	par := New()
	par.Workers = 4
	_, perr := par.AssembleTraining(images)
	if serr == nil || perr == nil {
		t.Fatalf("expected both paths to fail: serial=%v parallel=%v", serr, perr)
	}
	if serr.Error() != perr.Error() {
		t.Fatalf("error divergence:\nserial:   %v\nparallel: %v", serr, perr)
	}
}

// TestAssembleTelemetry verifies the counters the assembler reports.
func TestAssembleTelemetry(t *testing.T) {
	images := equivCorpus(t)[:10]
	rec := telemetry.New()
	a := New()
	a.Telemetry = rec
	ds, err := a.AssembleTraining(images)
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Counter(telemetry.CounterImagesParsed); got != int64(len(images)) {
		t.Fatalf("images parsed counter = %d, want %d", got, len(images))
	}
	if got := rec.Counter(telemetry.CounterAttrsDeclared); got != int64(len(ds.Attributes())) {
		t.Fatalf("attrs declared counter = %d, want %d", got, len(ds.Attributes()))
	}
	if rec.Counter(telemetry.CounterFilesParsed) == 0 {
		t.Fatal("files parsed counter not incremented")
	}
}
