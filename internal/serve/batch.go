package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/fleet"
	"repro/internal/scan"
	"repro/internal/sysimage"
)

// batchLine is one NDJSON record of a /v1/scan/{app}/batch response:
// exactly one per input image, in completion order, carrying the image's
// global input index so clients can recover the canonical order.
type batchLine struct {
	Index    int             `json:"index"`
	Image    string          `json:"image,omitempty"`
	Path     string          `json:"path,omitempty"`
	Findings int             `json:"findings"`
	Report   json.RawMessage `json:"report,omitempty"`
	Error    string          `json:"error,omitempty"`
}

// batchSummary is the final NDJSON record: the fleet-wide roll-up plus
// the coordinator topology that produced it.
type batchSummary struct {
	Summary        bool   `json:"summary"`
	RequestID      string `json:"requestId"`
	App            string `json:"app"`
	PlanVersion    string `json:"planVersion"`
	Images         int64  `json:"images"`
	Errors         int64  `json:"errors"`
	Findings       int64  `json:"findings"`
	Steals         int64  `json:"steals"`
	Shards         int    `json:"shards"`
	Workers        int    `json:"workers"`
	HighWaterBytes int64  `json:"highWaterBytes"`
	ElapsedMicros  int64  `json:"elapsedMicros"`
	Error          string `json:"error,omitempty"`
}

// handleScanBatch scans a whole fleet through the sharded coordinator and
// streams one NDJSON record per image as it completes, then a summary
// record. The fleet comes from ?dir= (a server-local image directory),
// ?dir=&synthetic=N (a synthetic fleet cycling that directory's images),
// or the request body (NDJSON, one image document per line). ?shards= and
// ?workers= tune the coordinator. Every finding feeds the alert pipeline
// with per-image provenance (image ID, request ID, plan version). Client
// disconnect cancels the fleet promptly.
func (d *Daemon) handleScanBatch(w http.ResponseWriter, r *http.Request, rc *reqCtx) {
	entry, ok := d.reg.Get(rc.App)
	if !ok {
		apiError(w, rc, http.StatusNotFound, "no plan loaded for app %q", rc.App)
		return
	}
	rc.Span.SetAttr("plan_version", entry.Version)

	src, err := d.batchSource(r)
	if err != nil {
		apiError(w, rc, http.StatusBadRequest, "%v", err)
		return
	}
	rc.Span.SetAttr("images", strconv.Itoa(src.Len()))
	shards, _ := strconv.Atoi(r.URL.Query().Get("shards"))
	workers, _ := strconv.Atoi(r.URL.Query().Get("workers"))
	if d.opts.ScanHook != nil {
		d.opts.ScanHook(rc.App)
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var mu sync.Mutex

	coord := &fleet.Coordinator{Opts: fleet.Options{
		Check:       entry.Plan.Check,
		Shards:      shards,
		Workers:     workers,
		Telemetry:   d.rec,
		Log:         d.log,
		Alerts:      d.opts.Alerts,
		RequestID:   rc.ID,
		App:         rc.App,
		PlanVersion: entry.Version,
	}}
	start := time.Now()
	stats, runErr := coord.Run(r.Context(), src, func(idx int, it scan.Item) {
		mu.Lock()
		defer mu.Unlock()
		if it.Err != nil {
			enc.Encode(batchLine{Index: idx, Image: it.Err.ImageID, Path: it.Err.Path, Error: it.Err.Err.Error()})
		} else {
			buf := renderBufPool.Get().(*bytes.Buffer)
			if err := it.Report.AppendJSON(buf); err == nil {
				enc.Encode(batchLine{
					Index:    idx,
					Image:    it.ImageID,
					Findings: len(it.Report.Warnings),
					Report:   json.RawMessage(buf.Bytes()),
				})
			}
			buf.Reset()
			renderBufPool.Put(buf)
		}
		if flusher != nil {
			flusher.Flush()
		}
	})

	sum := batchSummary{
		Summary:        true,
		RequestID:      rc.ID,
		App:            rc.App,
		PlanVersion:    entry.Version,
		Images:         stats.Images,
		Errors:         stats.Errors,
		Findings:       stats.Findings,
		Steals:         stats.Steals,
		Shards:         stats.Shards,
		Workers:        stats.Workers,
		HighWaterBytes: stats.HighWaterBytes,
		ElapsedMicros:  time.Since(start).Microseconds(),
	}
	if runErr != nil {
		sum.Error = runErr.Error()
	}
	mu.Lock()
	enc.Encode(sum)
	mu.Unlock()
	if flusher != nil {
		flusher.Flush()
	}
}

// batchSource resolves the request's fleet: a server-local directory, a
// synthetic fleet cycling it, or inline NDJSON image documents.
func (d *Daemon) batchSource(r *http.Request) (fleet.Source, error) {
	q := r.URL.Query()
	if dir := q.Get("dir"); dir != "" {
		if nStr := q.Get("synthetic"); nStr != "" {
			n, err := strconv.Atoi(nStr)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("bad synthetic count %q", nStr)
			}
			imgs, err := sysimage.LoadDir(dir)
			if err != nil {
				return nil, err
			}
			return fleet.NewSyntheticSource(imgs, n)
		}
		return fleet.NewDirSource(dir)
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, d.opts.MaxBodyBytes+1))
	if err != nil {
		return nil, fmt.Errorf("read batch body: %w", err)
	}
	if int64(len(body)) > d.opts.MaxBodyBytes {
		return nil, fmt.Errorf("body exceeds %d bytes", d.opts.MaxBodyBytes)
	}
	var blobs [][]byte
	for _, line := range bytes.Split(body, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		blobs = append(blobs, line)
	}
	if len(blobs) == 0 {
		return nil, fmt.Errorf("empty batch (send NDJSON image documents, or use ?dir=)")
	}
	return &fleet.BlobSource{Blobs: blobs, BaseName: "body"}, nil
}
