package detect

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/rules"
)

func sampleReport() *Report {
	return &Report{
		SystemID: "img-1",
		Warnings: []*Warning{
			{Rank: 1, Kind: KindCorrelation, Attr: "a", Message: "rule violated", Score: 60,
				Rule: &rules.Rule{Template: "owner", AttrA: "a", AttrB: "b", Support: 3, Confidence: 1}},
			{Rank: 2, Kind: KindType, Attr: "c", Value: "/x", Message: "type violated", Score: 50},
			{Rank: 3, Kind: KindSuspicious, Attr: "d", Value: "v", Message: "unseen value", Score: 5},
		},
	}
}

func TestRenderTextFull(t *testing.T) {
	out := sampleReport().RenderText(0)
	if !strings.Contains(out, "img-1: 3 warnings") {
		t.Fatalf("header missing:\n%s", out)
	}
	for _, want := range []string{"rule violated", "type violated", "unseen value"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestRenderTextTop(t *testing.T) {
	out := sampleReport().RenderText(1)
	if !strings.Contains(out, "rule violated") {
		t.Fatal("top warning missing")
	}
	if strings.Contains(out, "unseen value") {
		t.Fatal("capped warning should be hidden")
	}
	if !strings.Contains(out, "and 2 more") {
		t.Fatalf("truncation note missing:\n%s", out)
	}
}

func TestRenderJSON(t *testing.T) {
	data, err := sampleReport().RenderJSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		SystemID string `json:"systemId"`
		Warnings []struct {
			Rank  int     `json:"rank"`
			Kind  string  `json:"kind"`
			Rule  string  `json:"rule"`
			Score float64 `json:"score"`
		} `json:"warnings"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.SystemID != "img-1" || len(decoded.Warnings) != 3 {
		t.Fatalf("decoded = %+v", decoded)
	}
	if decoded.Warnings[0].Rule == "" {
		t.Fatal("correlation warning should embed its rule")
	}
	if decoded.Warnings[1].Rule != "" {
		t.Fatal("non-correlation warning should omit the rule")
	}
}

func TestAppendJSONMatchesRenderJSON(t *testing.T) {
	r := sampleReport()
	indented, err := r.RenderJSON()
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := json.Compact(&want, indented); err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	if err := r.AppendJSON(&got); err != nil {
		t.Fatal(err)
	}
	compact := bytes.TrimSuffix(got.Bytes(), []byte("\n"))
	if !bytes.Equal(compact, want.Bytes()) {
		t.Fatalf("AppendJSON diverged from RenderJSON:\n got %s\nwant %s", compact, want.Bytes())
	}

	// The pooled scratch must keep encoding allocation-light: reuse the
	// same buffer across runs and pin the per-call allocation count.
	got.Reset()
	allocs := testing.AllocsPerRun(100, func() {
		got.Reset()
		if err := r.AppendJSON(&got); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 12 {
		t.Errorf("AppendJSON allocated %.1f objects per call; pooled encoding should stay under 12", allocs)
	}
}

func TestCountByKind(t *testing.T) {
	counts := sampleReport().CountByKind()
	if counts[KindCorrelation] != 1 || counts[KindType] != 1 || counts[KindSuspicious] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestFilter(t *testing.T) {
	r := sampleReport()
	got := r.Filter(func(w *Warning) bool { return w.Score >= 50 })
	if len(got) != 2 || got[0].Rank != 1 || got[1].Rank != 2 {
		t.Fatalf("filter = %v", got)
	}
	if len(r.Filter(func(*Warning) bool { return false })) != 0 {
		t.Fatal("empty filter should return nothing")
	}
}
