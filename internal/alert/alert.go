// Package alert turns severity-classified findings into operator-facing
// notifications. Both the batch scanner (encore scan) and the resident
// daemon (encore serve) publish every warning they emit into a Pipeline;
// the pipeline classifies, filters, dedups, and rate-limits them against
// a YAML policy, then fans each surviving alert out to pluggable
// notifiers (structured log, JSONL file, HTTP webhook).
//
// The pipeline is bounded and never blocks the scan hot path: Publish
// does one route lookup and a non-blocking send into a buffered channel.
// When the queue is full the alert is counted as dropped instead of
// making the scanner wait; when the pipeline is shut down the queue is
// drained before Shutdown returns, so a daemon's final telemetry
// snapshot sees every delivery outcome.
//
// The layer observes itself through the recorder's labeled-metric
// machinery: encore_alerts_total{notifier,severity,outcome} per delivery
// attempt, encore_alerts_dropped_total for queue overflow,
// encore_alerts_suppressed_total{reason} for policy/dedup/rate
// suppression, an encore_alert_queue_depth gauge, and an
// encore_alert_delivery_seconds{notifier} latency histogram. A bounded
// ring of recent alerts (with request-ID and plan-version provenance)
// backs the daemon's GET /v1/alerts endpoint.
package alert

import (
	"context"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/detect"
	"repro/internal/telemetry"
)

// Severity buckets a warning score for routing and for the severity
// metric label. The score scale tops out around 90 (unanimous-training
// violations) with correlation warnings at 40-60 and weak unseen-value
// signals below.
type Severity string

// The three severity buckets, ordered low < medium < high.
const (
	SeverityLow    Severity = "low"
	SeverityMedium Severity = "medium"
	SeverityHigh   Severity = "high"
)

// SeverityForScore buckets a warning score: >=70 high, >=40 medium,
// otherwise low. The serve daemon's findings counter uses the same
// boundaries.
func SeverityForScore(score float64) Severity {
	switch {
	case score >= 70:
		return SeverityHigh
	case score >= 40:
		return SeverityMedium
	default:
		return SeverityLow
	}
}

// rank orders severities for threshold comparison; unknown severities
// rank lowest so a typo never out-ranks a real bucket.
func (s Severity) rank() int {
	switch s {
	case SeverityHigh:
		return 2
	case SeverityMedium:
		return 1
	case SeverityLow:
		return 0
	}
	return -1
}

// Alert is one finding on its way to an operator. The JSON shape is the
// webhook payload and the JSONL file line; RequestID and PlanVersion
// make an alert joinable against the daemon access log and the registry
// version that produced it.
type Alert struct {
	// App is the application the finding belongs to (registry app for
	// daemon scans, the attribute's app prefix for batch scans).
	App string `json:"app"`
	// ImageID identifies the scanned image.
	ImageID string `json:"imageId,omitempty"`
	// Family is the warning kind (detect.Kind: "correlation",
	// "entry-name", "data-type", "suspicious-value") — the policy's
	// per-rule-family routing key.
	Family string `json:"family"`
	// Attr is the flagged attribute.
	Attr string `json:"attr"`
	// Value is the offending value, when the warning carries one.
	Value string `json:"value,omitempty"`
	// Severity is the routing bucket (derived from Score when empty at
	// Publish time).
	Severity Severity `json:"severity"`
	// Score is the raw warning score.
	Score float64 `json:"score"`
	// Message is the human-readable warning text.
	Message string `json:"message"`
	// Rule is the violated correlation rule, when applicable.
	Rule string `json:"rule,omitempty"`
	// RequestID is the originating request ID: the daemon's X-Request-Id
	// for serve scans, the generated batch run ID for CLI scans.
	RequestID string `json:"requestId,omitempty"`
	// PlanVersion is the registry plan version (serve) or the knowledge
	// source provenance (batch).
	PlanVersion string `json:"planVersion,omitempty"`
	// FiredAtUnix is when the alert entered the pipeline.
	FiredAtUnix int64 `json:"firedAtUnix"`
}

// FromWarning builds an Alert from a detector warning plus its scan
// provenance. Severity is derived from the warning score.
func FromWarning(w *detect.Warning, app, imageID, requestID, planVersion string) Alert {
	a := Alert{
		App:         app,
		ImageID:     imageID,
		Family:      string(w.Kind),
		Attr:        w.Attr,
		Value:       w.Value,
		Severity:    SeverityForScore(w.Score),
		Score:       w.Score,
		Message:     w.Message,
		RequestID:   requestID,
		PlanVersion: planVersion,
	}
	if w.Rule != nil {
		a.Rule = w.Rule.String()
	}
	return a
}

// Notifier delivers one alert to one destination. Implementations must
// be safe for sequential reuse; the pipeline calls Notify from a single
// dispatcher goroutine. A notifier that also implements io.Closer is
// closed on pipeline shutdown.
type Notifier interface {
	// Name identifies the notifier in metrics labels and delivery
	// records.
	Name() string
	// Notify delivers the alert; a non-nil error is counted as
	// outcome="error" (the pipeline does not re-queue — retry policy
	// lives inside the notifier, e.g. the webhook's backoff loop).
	Notify(a *Alert) error
}

// Metric family names the pipeline records through the labeled-metric
// machinery.
const (
	// MetricAlertsTotal counts delivery attempts by
	// {notifier, severity, outcome}.
	MetricAlertsTotal = "encore_alerts_total"
	// MetricAlertsDropped counts alerts shed because the bounded queue
	// was full.
	MetricAlertsDropped = "encore_alerts_dropped_total"
	// MetricAlertsSuppressed counts alerts suppressed before delivery,
	// by {reason}: "policy" (disabled family / below severity floor),
	// "dedup" (repeat within the window), "rate" (rate limit).
	MetricAlertsSuppressed = "encore_alerts_suppressed_total"
	// MetricQueueDepth gauges the alerts waiting in the queue.
	MetricQueueDepth = "encore_alert_queue_depth"
	// MetricDeliverySeconds is the per-notifier delivery latency
	// histogram.
	MetricDeliverySeconds = "encore_alert_delivery_seconds"
)

// Delivery outcome label values.
const (
	OutcomeOK    = "ok"
	OutcomeError = "error"
)

// Delivery records one notifier's outcome for one alert.
type Delivery struct {
	Notifier      string `json:"notifier"`
	Outcome       string `json:"outcome"`
	Error         string `json:"error,omitempty"`
	ElapsedMicros int64  `json:"elapsedMicros"`
}

// Record is one delivered (or delivery-attempted) alert in the recent
// ring: the alert plus what every routed notifier did with it.
type Record struct {
	// Seq is the pipeline-lifetime sequence number (monotonic, starts
	// at 1); the ring keeps only the most recent RingSize records.
	Seq uint64 `json:"seq"`
	Alert
	Deliveries []Delivery `json:"deliveries"`
}

// Stats is a point-in-time pipeline tally.
type Stats struct {
	// Published counts alerts accepted into the queue.
	Published int64 `json:"published"`
	// Delivered counts successful notifier deliveries.
	Delivered int64 `json:"delivered"`
	// Failed counts notifier deliveries that errored.
	Failed int64 `json:"failed"`
	// Dropped counts alerts shed on queue overflow.
	Dropped int64 `json:"dropped"`
	// Suppressed counts alerts suppressed by policy, dedup, or rate
	// limiting.
	Suppressed int64 `json:"suppressed"`
}

// Options configures NewPipeline.
type Options struct {
	// Policy governs routing; nil means DefaultPolicy().
	Policy *Policy
	// Notifiers overrides the policy-built notifier set (tests, embedders).
	// When nil, notifiers are built from Policy.Notifiers.
	Notifiers []Notifier
	// Rec receives the pipeline's self-metrics; nil discards them.
	Rec *telemetry.Recorder
	// Log receives delivery-failure and lifecycle records; nil discards
	// them.
	Log *slog.Logger
	// Now overrides the clock for dedup and rate-limit windows (tests).
	Now func() time.Time
}

// Pipeline is the bounded alert queue plus its dispatcher. Publish is
// safe for concurrent use from any goroutine; delivery happens on one
// background dispatcher so notifier latency never lands on a scan
// worker.
type Pipeline struct {
	policy    *Policy
	notifiers []Notifier
	byName    map[string]Notifier
	rec       *telemetry.Recorder
	log       *slog.Logger
	now       func() time.Time

	// mu guards closed and the channel send: Publish holds it shared,
	// Shutdown exclusively, so a publish can never race the close.
	mu     sync.RWMutex
	closed bool
	ch     chan Alert
	done   chan struct{}

	published  atomic.Int64
	delivered  atomic.Int64
	failed     atomic.Int64
	dropped    atomic.Int64
	suppressed atomic.Int64

	ringMu sync.Mutex
	ring   []Record
	seq    uint64

	// Dispatcher-owned state (no locking: touched only by the dispatch
	// goroutine).
	lastSeen   map[string]dedupEntry
	tokens     float64
	lastRefill time.Time

	closeNotifiers sync.Once
}

// dedupEntry tracks the last delivery time for one (app, attr, family)
// key and how many repeats the window suppressed since.
type dedupEntry struct {
	last       time.Time
	suppressed int64
}

// NewPipeline builds the notifier set, validates routing against it, and
// starts the dispatcher. The caller owns the pipeline and must Shutdown
// it to drain the queue and release notifier resources.
func NewPipeline(opts Options) (*Pipeline, error) {
	pol := opts.Policy
	if pol == nil {
		pol = DefaultPolicy()
	}
	log := telemetry.LoggerOr(opts.Log)
	notifiers := opts.Notifiers
	if notifiers == nil {
		built, err := BuildNotifiers(pol, log)
		if err != nil {
			return nil, err
		}
		notifiers = built
	}
	byName := make(map[string]Notifier, len(notifiers))
	for _, n := range notifiers {
		if _, dup := byName[n.Name()]; dup {
			return nil, &PolicyError{Msg: "duplicate notifier name " + n.Name()}
		}
		byName[n.Name()] = n
	}
	for _, r := range pol.Rules {
		for _, name := range r.Notify {
			if _, ok := byName[name]; !ok {
				return nil, &PolicyError{Msg: "rule for family " + r.Family + " routes to unknown notifier " + name}
			}
		}
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	p := &Pipeline{
		policy:    pol,
		notifiers: notifiers,
		byName:    byName,
		rec:       opts.Rec,
		log:       log,
		now:       now,
		ch:        make(chan Alert, pol.QueueSize),
		done:      make(chan struct{}),
		lastSeen:  make(map[string]dedupEntry),
		tokens:    float64(pol.RateLimit),
	}
	p.lastRefill = now()
	go p.dispatch()
	return p, nil
}

// Publish offers one alert to the pipeline and never blocks: policy
// filtering happens inline (cheap, read-only), then a non-blocking send
// into the bounded queue. Returns true when the alert was queued; false
// when it was suppressed by policy, shed on overflow, or the pipeline is
// shut down. Safe on a nil pipeline (alerting disabled).
func (p *Pipeline) Publish(a Alert) bool {
	if p == nil {
		return false
	}
	if a.Severity == "" {
		a.Severity = SeverityForScore(a.Score)
	}
	if _, ok := p.policy.route(a.Family, a.Severity); !ok {
		p.suppressed.Add(1)
		p.rec.AddLabeled(MetricAlertsSuppressed, telemetry.L("reason", "policy"), 1)
		return false
	}
	if a.FiredAtUnix == 0 {
		a.FiredAtUnix = p.now().Unix()
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	select {
	case p.ch <- a:
		p.published.Add(1)
		p.rec.SetGauge(MetricQueueDepth, "", float64(len(p.ch)))
		return true
	default:
		p.dropped.Add(1)
		p.rec.AddLabeled(MetricAlertsDropped, "", 1)
		return false
	}
}

// Shutdown stops intake and drains the queue: every already-queued alert
// is delivered (or suppressed) before Shutdown returns, bounded by ctx.
// Idempotent, safe on a nil pipeline, and safe to call concurrently with
// Publish — late publishes after shutdown return false instead of
// panicking on a closed channel.
func (p *Pipeline) Shutdown(ctx context.Context) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.ch)
	}
	p.mu.Unlock()
	select {
	case <-p.done:
	case <-ctx.Done():
		return ctx.Err()
	}
	p.closeNotifiers.Do(func() {
		for _, n := range p.notifiers {
			if c, ok := n.(io.Closer); ok {
				if err := c.Close(); err != nil {
					p.log.Warn("alert notifier close failed", "notifier", n.Name(), "err", err)
				}
			}
		}
	})
	return nil
}

// Stats returns the pipeline's lifetime tallies.
func (p *Pipeline) Stats() Stats {
	if p == nil {
		return Stats{}
	}
	return Stats{
		Published:  p.published.Load(),
		Delivered:  p.delivered.Load(),
		Failed:     p.failed.Load(),
		Dropped:    p.dropped.Load(),
		Suppressed: p.suppressed.Load(),
	}
}

// Recent returns up to limit of the most recent alert records, newest
// first (limit <= 0 means all retained). Safe on a nil pipeline.
func (p *Pipeline) Recent(limit int) []Record {
	if p == nil {
		return nil
	}
	p.ringMu.Lock()
	defer p.ringMu.Unlock()
	n := len(p.ring)
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]Record, n)
	for i := 0; i < n; i++ {
		out[i] = p.ring[len(p.ring)-1-i]
	}
	return out
}

// dispatch is the single consumer: it owns dedup and rate-limit state
// and runs every notifier delivery, so slow notifiers back up the queue
// (visible in the depth gauge and, past the bound, the drop counter)
// instead of the scan path.
func (p *Pipeline) dispatch() {
	defer close(p.done)
	for a := range p.ch {
		p.rec.SetGauge(MetricQueueDepth, "", float64(len(p.ch)))
		p.process(a)
	}
	p.rec.SetGauge(MetricQueueDepth, "", 0)
}

// dedupSweepFloor bounds the dedup map: past this many live keys expired
// entries are swept on insert.
const dedupSweepFloor = 4096

func (p *Pipeline) process(a Alert) {
	now := p.now()
	if w := p.policy.DedupWindow; w > 0 {
		key := a.App + "\x00" + a.Attr + "\x00" + a.Family
		if e, ok := p.lastSeen[key]; ok && now.Sub(e.last) < w {
			e.suppressed++
			p.lastSeen[key] = e
			p.suppressed.Add(1)
			p.rec.AddLabeled(MetricAlertsSuppressed, telemetry.L("reason", "dedup"), 1)
			return
		}
		if len(p.lastSeen) >= dedupSweepFloor {
			for k, e := range p.lastSeen {
				if now.Sub(e.last) >= w {
					delete(p.lastSeen, k)
				}
			}
		}
		p.lastSeen[key] = dedupEntry{last: now}
	}
	if r := p.policy.RateLimit; r > 0 {
		p.tokens += now.Sub(p.lastRefill).Minutes() * float64(r)
		if max := float64(r); p.tokens > max {
			p.tokens = max
		}
		p.lastRefill = now
		if p.tokens < 1 {
			p.suppressed.Add(1)
			p.rec.AddLabeled(MetricAlertsSuppressed, telemetry.L("reason", "rate"), 1)
			return
		}
		p.tokens--
	}

	names, _ := p.policy.route(a.Family, a.Severity)
	rec := Record{Alert: a}
	for _, n := range p.notifiersFor(names) {
		start := time.Now()
		err := n.Notify(&a)
		elapsed := time.Since(start)
		d := Delivery{Notifier: n.Name(), Outcome: OutcomeOK, ElapsedMicros: elapsed.Microseconds()}
		if err != nil {
			d.Outcome = OutcomeError
			d.Error = err.Error()
			p.failed.Add(1)
			p.log.Warn("alert delivery failed", "notifier", n.Name(),
				"app", a.App, "attr", a.Attr, "request_id", a.RequestID, "err", err)
		} else {
			p.delivered.Add(1)
		}
		p.rec.AddLabeled(MetricAlertsTotal,
			telemetry.L("notifier", n.Name(), "severity", string(a.Severity), "outcome", d.Outcome), 1)
		p.rec.ObserveLabeled(MetricDeliverySeconds, telemetry.L("notifier", n.Name()), elapsed)
		rec.Deliveries = append(rec.Deliveries, d)
	}

	p.ringMu.Lock()
	p.seq++
	rec.Seq = p.seq
	p.ring = append(p.ring, rec)
	if over := len(p.ring) - p.policy.RingSize; over > 0 {
		p.ring = append(p.ring[:0], p.ring[over:]...)
	}
	p.ringMu.Unlock()
}

// notifiersFor resolves a route's notifier names (nil = every notifier)
// into delivery order. Unknown names were rejected at construction.
func (p *Pipeline) notifiersFor(names []string) []Notifier {
	if names == nil {
		return p.notifiers
	}
	out := make([]Notifier, 0, len(names))
	for _, name := range names {
		if n, ok := p.byName[name]; ok {
			out = append(out, n)
		}
	}
	return out
}
