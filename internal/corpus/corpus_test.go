package corpus

import (
	"math/rand"
	"testing"

	"repro/internal/assemble"
	"repro/internal/confparse"
	"repro/internal/sysimage"
	"repro/internal/templates"
)

func TestTrainingDeterministic(t *testing.T) {
	a, err := Training("mysql", 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Training("mysql", 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].ConfigFor("mysql").Content != b[i].ConfigFor("mysql").Content {
			t.Fatalf("image %d differs across runs with same seed", i)
		}
	}
	c, err := Training("mysql", 10, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i].ConfigFor("mysql").Content != c[i].ConfigFor("mysql").Content {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should produce different corpora")
	}
}

func TestAllAppsParseAndAreCoherent(t *testing.T) {
	for _, app := range []string{"apache", "mysql", "php", "sshd"} {
		images, err := Training(app, 25, 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(images) != 25 {
			t.Fatalf("%s: %d images", app, len(images))
		}
		for _, im := range images {
			cf := im.ConfigFor(app)
			if cf == nil {
				t.Fatalf("%s: image %s has no config", app, im.ID)
			}
			if _, err := confparse.Parse(app, cf.Path, cf.Content); err != nil {
				t.Fatalf("%s: %s: %v", app, im.ID, err)
			}
		}
	}
}

// TestCleanImagesSatisfyGroundTruthRules verifies internal coherence: every
// declared ground-truth correlation holds on (nearly) every clean image.
func TestCleanImagesSatisfyGroundTruthRules(t *testing.T) {
	cases := []struct {
		app   string
		truth []TrueRule
	}{
		{"mysql", MySQLTrueRules()},
		{"apache", ApacheTrueRules()},
		{"php", PHPTrueRules()},
	}
	for _, c := range cases {
		images, err := Training(c.app, 30, 11)
		if err != nil {
			t.Fatal(err)
		}
		ds, err := assemble.New().AssembleTraining(images)
		if err != nil {
			t.Fatal(err)
		}
		byID := ByID(images)
		for _, tr := range c.truth {
			tpl := templates.ByID(tr.Template)
			if tpl == nil {
				t.Fatalf("%s: unknown template %s", c.app, tr.Template)
			}
			present, holds := 0, 0
			for _, row := range ds.Rows {
				va, vb := row.Instances(tr.AttrA), row.Instances(tr.AttrB)
				if len(va) == 0 || len(vb) == 0 {
					continue
				}
				ctx := &templates.Ctx{Row: row, Image: byID[row.SystemID]}
				ok, app := tpl.Validate(va, vb, ctx)
				if !app {
					continue
				}
				present++
				if ok {
					holds++
				}
			}
			if tr.AttrB == "MemSize" {
				continue // only applies to hardware-bearing populations
			}
			if present == 0 {
				t.Errorf("%s: ground truth %s(%s,%s) never applicable", c.app, tr.Template, tr.AttrA, tr.AttrB)
				continue
			}
			if float64(holds)/float64(present) < 0.95 {
				t.Errorf("%s: ground truth %s(%s,%s) holds on %d/%d images",
					c.app, tr.Template, tr.AttrA, tr.AttrB, holds, present)
			}
		}
	}
}

func TestEC2TargetsGroundTruth(t *testing.T) {
	pop, err := EC2Targets(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pop.Images) != 120 {
		t.Fatalf("images = %d", len(pop.Images))
	}
	counts := map[string]int{}
	for _, l := range pop.Truth {
		counts[l.Category]++
	}
	if counts["FilePath"] != 3 || counts["Permission"] != 10 || counts["ValueCompare"] != 24 {
		t.Fatalf("EC2 category mix = %v, want 3/10/24", counts)
	}
	// Every truth entry names an existing image.
	ids := ByID(pop.Images)
	for _, l := range pop.Truth {
		if ids[l.ImageID] == nil {
			t.Fatalf("truth names unknown image %s", l.ImageID)
		}
	}
}

func TestPrivateCloudTargetsGroundTruth(t *testing.T) {
	pop, err := PrivateCloudTargets(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(pop.Images) != 300 {
		t.Fatalf("images = %d", len(pop.Images))
	}
	counts := map[string]int{}
	for _, l := range pop.Truth {
		counts[l.Category]++
	}
	if counts["FilePath"] != 10 || counts["Permission"] != 3 || counts["ValueCompare"] != 11 {
		t.Fatalf("private cloud mix = %v, want 10/3/11", counts)
	}
	// Private-cloud instances are running systems with hardware specs.
	for _, im := range pop.Images {
		if !im.HW.Present {
			t.Fatalf("image %s missing hardware", im.ID)
		}
	}
}

func TestDormantImagesHaveNoHardware(t *testing.T) {
	images, err := Training("mysql", 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, im := range images {
		if im.HW.Present {
			t.Fatalf("dormant image %s has hardware", im.ID)
		}
	}
}

func TestRealWorldCasesComplete(t *testing.T) {
	cases := RealWorldCases()
	if len(cases) != 10 {
		t.Fatalf("cases = %d, want 10", len(cases))
	}
	missCount := 0
	for _, c := range cases {
		img := c.Build()
		if img == nil {
			t.Fatalf("case %d built nil image", c.ID)
		}
		cf := img.ConfigFor(c.App)
		if cf == nil {
			t.Fatalf("case %d image lacks %s config", c.ID, c.App)
		}
		if _, err := confparse.Parse(c.App, cf.Path, cf.Content); err != nil {
			t.Fatalf("case %d config unparsable: %v", c.ID, err)
		}
		if c.ExpectMiss {
			missCount++
		}
		if c.MatchAttr == "" || c.Info == "" || c.Problem == "" {
			t.Fatalf("case %d metadata incomplete: %+v", c.ID, c)
		}
	}
	if missCount != 1 {
		t.Fatalf("exactly one case (paper's #8) should be expected-miss, got %d", missCount)
	}
	// Builds are deterministic.
	a := RealWorldCases()[0].Build()
	b := RealWorldCases()[0].Build()
	if a.ConfigFor("apache").Content != b.ConfigFor("apache").Content {
		t.Fatal("case build not deterministic")
	}
}

func TestCase1RemovesOnlyDocrootSection(t *testing.T) {
	c := RealWorldCases()[0]
	img := c.Build()
	cf := img.ConfigFor("apache")
	f, err := confparse.Parse("apache", cf.Path, cf.Content)
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := findConfValue(img, "apache", "DocumentRoot")
	dirs := f.FindKey("Directory")
	if len(dirs) == 0 {
		t.Fatal("all Directory sections removed; the root section must stay")
	}
	for _, d := range dirs {
		if len(d.Values) > 0 && d.Values[0] == doc {
			t.Fatal("docroot Directory section still present")
		}
	}
}

func TestCase3And9OwnershipBroken(t *testing.T) {
	c3 := RealWorldCases()[2]
	img := c3.Build()
	dd, _ := findConfValue(img, "mysql", "datadir")
	user, _ := findConfValue(img, "mysql", "user")
	if img.Files[dd].Owner == user {
		t.Fatal("case 3: datadir ownership not broken")
	}
	c9 := RealWorldCases()[8]
	img9 := c9.Build()
	lf, _ := findConfValue(img9, "mysql", "log-error")
	if img9.Files[lf].Owner != "root" {
		t.Fatal("case 9: log ownership not broken")
	}
}

func TestBuildAppUnknown(t *testing.T) {
	if _, err := BuildApp("nginx", "x", rand.New(rand.NewSource(1)), false); err == nil {
		t.Fatal("unknown app should error")
	}
}

func TestRemoveSectionHelpers(t *testing.T) {
	content := "a 1\n<Directory \"/x\">\n  b 2\n</Directory>\nc 3\n"
	out := removeSection(content, "<Directory \"/x\">")
	if out != "a 1\nc 3\n" {
		t.Fatalf("removeSection = %q", out)
	}
	if removeSection(content, "<Directory \"/y\">") != content {
		t.Fatal("missing header should be a no-op")
	}
	if got := replaceLine("a = 1\nbb = 2\n", "b", "bb = 3"); got != "a = 1\nbb = 2\n" {
		t.Fatalf("replaceLine prefix guard failed: %q", got)
	}
	if got := replaceLine("a = 1\nbb = 2\n", "bb", "bb = 3"); got != "a = 1\nbb = 3\n" {
		t.Fatalf("replaceLine = %q", got)
	}
	if got := removeLine("a 1\nb 2\n", "a"); got != "b 2\n" {
		t.Fatalf("removeLine = %q", got)
	}
}

func TestPickHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	opts := []string{"a", "b", "c"}
	seen := map[string]int{}
	for i := 0; i < 300; i++ {
		seen[Pick(rng, opts)]++
	}
	if len(seen) != 3 {
		t.Fatalf("Pick coverage = %v", seen)
	}
	w := map[string]int{}
	for i := 0; i < 1000; i++ {
		w[PickWeighted(rng, []string{"x", "y"}, []int{9, 1})]++
	}
	if w["x"] < w["y"] {
		t.Fatalf("weights ignored: %v", w)
	}
	tr, fa := 0, 0
	for i := 0; i < 1000; i++ {
		if Chance(rng, 0.2) {
			tr++
		} else {
			fa++
		}
	}
	if tr == 0 || fa == 0 || tr > fa {
		t.Fatalf("Chance(0.2): %d true %d false", tr, fa)
	}
}

func TestBuilderBaseSystem(t *testing.T) {
	b := NewBuilder("x", rand.New(rand.NewSource(1)))
	if !b.Img.UserExists("root") || !b.Img.IsAdmin("root") {
		t.Fatal("root missing")
	}
	if !b.Img.IsDir("/var/log") || !b.Img.IsDir("/tmp") {
		t.Fatal("base dirs missing")
	}
	if !b.Img.PortRegistered(22) || !b.Img.PortRegistered(3306) {
		t.Fatal("base services missing")
	}
	b.AddAccount("svc", 123)
	if !b.Img.UserExists("svc") || !b.Img.GroupExists("svc") {
		t.Fatal("AddAccount incomplete")
	}
}

func TestGroundTruthMapsCoverGeneratedAttrs(t *testing.T) {
	// Every non-augmented attribute the generators emit must have a
	// ground-truth type (Table 11 depends on this).
	for _, app := range []string{"mysql", "apache", "php", "sshd"} {
		images, err := Training(app, 20, 17)
		if err != nil {
			t.Fatal(err)
		}
		ds, err := assemble.New().AssembleTraining(images)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range ds.Attributes() {
			if a.Augmented {
				continue
			}
			if _, ok := GroundTruthType(app, a.Name); !ok {
				t.Errorf("%s: generated attribute %s missing from ground-truth types", app, a.Name)
			}
		}
	}
}

func TestGroundTruthTypeLookup(t *testing.T) {
	if ty, ok := GroundTruthType("mysql", "mysql:mysqld/datadir"); !ok || string(ty) != "FilePath" {
		t.Fatalf("datadir type = %v %v", ty, ok)
	}
	if ty, ok := GroundTruthType("apache", "apache:Directory:/var/www/Options"); !ok || string(ty) != "String" {
		t.Fatalf("scoped Options type = %v %v", ty, ok)
	}
	if ty, ok := GroundTruthType("apache", "apache:Directory://Require/arg2"); !ok || string(ty) != "String" {
		t.Fatalf("scoped Require/arg2 type = %v %v", ty, ok)
	}
	if _, ok := GroundTruthType("apache", "apache:TotallyUnknown"); ok {
		t.Fatal("unknown attribute should not resolve")
	}
	if _, ok := GroundTruthType("nginx", "x"); ok {
		t.Fatal("unknown app should not resolve")
	}
	if rs := GroundTruthRules("mysql"); len(rs) == 0 {
		t.Fatal("mysql ground-truth rules empty")
	}
	if rs := GroundTruthRules("nginx"); rs != nil {
		t.Fatal("unknown app rules should be nil")
	}
	tr := TrueRule{Template: "owner", AttrA: "a", AttrB: "b"}
	if !tr.Matches("owner", "a", "b") || tr.Matches("owner", "a", "c") {
		t.Fatal("TrueRule.Matches wrong")
	}
}

var _ = sysimage.New // keep import if helpers change
