package scan_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	encore "repro"
	"repro/internal/alert"
	"repro/internal/corpus"
	"repro/internal/detect"
	"repro/internal/inject"
	"repro/internal/scan"
	"repro/internal/sysimage"
	"repro/internal/telemetry"
)

// fleet returns learned knowledge plus a target fleet whose image at index
// corruptAt (if >= 0) fails assembly with a parse error.
func fleet(t *testing.T, n, corruptAt int) (*encore.Framework, *encore.Knowledge, []*sysimage.Image) {
	t.Helper()
	training, err := corpus.Training("mysql", 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	fw := encore.New()
	k, err := fw.Learn(training)
	if err != nil {
		t.Fatal(err)
	}
	targets, err := corpus.Training("mysql", n, 77)
	if err != nil {
		t.Fatal(err)
	}
	for i, img := range targets {
		img.ID = fmt.Sprintf("target-%03d", i)
	}
	if corruptAt >= 0 {
		targets[corruptAt].ConfigFiles = append(targets[corruptAt].ConfigFiles, sysimage.ConfigFile{
			App: "mysql", Path: "/etc/mysql/broken.cnf", Content: "[unterminated\n",
		})
	}
	return fw, k, targets
}

// TestBatchFaultIsolation is the acceptance-criterion test: a batch over a
// corpus containing one corrupt image returns findings for every other
// image plus exactly one ScanError.
func TestBatchFaultIsolation(t *testing.T) {
	fw, k, targets := fleet(t, 6, 2)
	eng := fw.ScanEngine(k)
	res, err := eng.Scan(targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != len(targets) {
		t.Fatalf("items = %d, want %d", len(res.Items), len(targets))
	}
	errs := res.Errors()
	if len(errs) != 1 {
		t.Fatalf("errors = %d, want exactly 1", len(errs))
	}
	if errs[0].ImageID != "target-002" {
		t.Fatalf("failed image = %q, want target-002", errs[0].ImageID)
	}
	if !strings.Contains(errs[0].Error(), "target-002") || !strings.Contains(errs[0].Error(), "broken.cnf") {
		t.Fatalf("ScanError lacks image/file context: %v", errs[0])
	}
	if got := len(res.Reports()); got != len(targets)-1 {
		t.Fatalf("reports = %d, want %d", got, len(targets)-1)
	}
	for i, it := range res.Items {
		if i == 2 {
			continue
		}
		if it.Report == nil || it.Report.SystemID != fmt.Sprintf("target-%03d", i) {
			t.Fatalf("item %d lost its report or its order", i)
		}
	}
}

// TestStrictFailFast checks the historical behaviour is preserved behind
// Strict: the corrupt image aborts the whole batch.
func TestStrictFailFast(t *testing.T) {
	fw, k, targets := fleet(t, 6, 2)
	eng := fw.ScanEngine(k)
	eng.Strict = true
	res, err := eng.Scan(targets)
	if err == nil {
		t.Fatal("strict scan of corrupt fleet should fail")
	}
	if res != nil {
		t.Fatal("strict failure should not return a partial result")
	}
	var se *scan.ScanError
	if !errors.As(err, &se) || se.ImageID != "target-002" {
		t.Fatalf("error = %v, want ScanError for target-002", err)
	}
}

// TestScanCleanFleet checks the no-error path across worker counts.
func TestScanCleanFleet(t *testing.T) {
	fw, k, targets := fleet(t, 5, -1)
	for _, workers := range []int{0, 1, 4} {
		eng := fw.ScanEngine(k)
		eng.Workers = workers
		res, err := eng.Scan(targets)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res.Errors()) != 0 || len(res.Reports()) != len(targets) {
			t.Fatalf("workers=%d: unexpected result shape", workers)
		}
	}
}

// TestScanDirIsolatesDecodeErrors checks ScanDir treats an undecodable
// image file like any other per-image failure.
func TestScanDirIsolatesDecodeErrors(t *testing.T) {
	fw, k, targets := fleet(t, 4, -1)
	dir := t.TempDir()
	if err := sysimage.SaveDir(dir, targets); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "corrupt.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	eng := fw.ScanEngine(k)
	res, err := eng.ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != len(targets)+1 {
		t.Fatalf("items = %d, want %d", len(res.Items), len(targets)+1)
	}
	errs := res.Errors()
	if len(errs) != 1 || !strings.Contains(errs[0].Path, "corrupt.json") {
		t.Fatalf("errors = %v, want one decode failure for corrupt.json", errs)
	}
	if len(res.Reports()) != len(targets) {
		t.Fatalf("reports = %d, want %d", len(res.Reports()), len(targets))
	}

	eng.Strict = true
	if _, err := eng.ScanDir(dir); err == nil {
		t.Fatal("strict ScanDir should fail on the corrupt file")
	}
}

// TestSummarize checks the fleet aggregation maths and ordering.
func TestSummarize(t *testing.T) {
	res := &scan.Result{Items: []scan.Item{
		{ImageID: "a", Report: &detect.Report{SystemID: "a", Warnings: []*detect.Warning{
			{Kind: detect.KindType, Attr: "x"},
			{Kind: detect.KindType, Attr: "y"},
		}}},
		{ImageID: "b", Report: &detect.Report{SystemID: "b", Warnings: []*detect.Warning{
			{Kind: detect.KindCorrelation, Attr: "x"},
		}}},
		{ImageID: "c", Report: &detect.Report{SystemID: "c"}},
		{Err: &scan.ScanError{ImageID: "d", Err: errors.New("boom")}},
	}}
	s := res.Summarize(2)
	if s.Scanned != 4 || s.Flagged != 1 || s.Warnings != 3 || s.Errors != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.ByKind[detect.KindType] != 2 || s.ByKind[detect.KindCorrelation] != 1 {
		t.Fatalf("byKind = %v", s.ByKind)
	}
	want := []scan.AttrCount{{Attr: "x", Count: 2}, {Attr: "y", Count: 1}}
	if len(s.HotAttrs) != 2 || s.HotAttrs[0] != want[0] || s.HotAttrs[1] != want[1] {
		t.Fatalf("hotAttrs = %v", s.HotAttrs)
	}
}

// TestScanTelemetry verifies the batch counters.
func TestScanTelemetry(t *testing.T) {
	fw, k, targets := fleet(t, 5, 1)
	rec := telemetry.New()
	eng := fw.ScanEngine(k)
	eng.Telemetry = rec
	res, err := eng.Scan(targets)
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Counter(telemetry.CounterImagesScanned); got != 5 {
		t.Fatalf("images scanned = %d, want 5", got)
	}
	if got := rec.Counter(telemetry.CounterScanErrors); got != 1 {
		t.Fatalf("scan errors = %d, want 1", got)
	}
	warnings := 0
	for _, rep := range res.Reports() {
		warnings += len(rep.Warnings)
	}
	if got := rec.Counter(telemetry.CounterFindingsEmitted); got != int64(warnings) {
		t.Fatalf("findings counter = %d, want %d", got, warnings)
	}
}

// TestScanTelemetrySpansAndHistogram verifies the batch records per-image
// scan latencies into the histogram, emits a span tree rooted at
// scan.batch with per-worker and per-image children, and steps the
// progress reporter once per image.
func TestScanTelemetrySpansAndHistogram(t *testing.T) {
	fw, k, targets := fleet(t, 5, -1)
	rec := telemetry.New()
	eng := fw.ScanEngine(k)
	eng.Telemetry = rec
	eng.Workers = 2
	var buf bytes.Buffer
	p := telemetry.NewProgress(&buf, "scan", len(targets), time.Hour)
	eng.Progress = p
	if _, err := eng.Scan(targets); err != nil {
		t.Fatal(err)
	}
	p.Stop()
	if !strings.Contains(buf.String(), "scan: 5/5 images") {
		t.Fatalf("progress output = %q", buf.String())
	}

	snap := rec.Snapshot()
	var hist *telemetry.HistogramData
	for i := range snap.Histograms {
		if snap.Histograms[i].Name == telemetry.HistImageScan {
			hist = &snap.Histograms[i]
		}
	}
	if hist == nil {
		t.Fatalf("no %s histogram in snapshot", telemetry.HistImageScan)
	}
	if hist.Count != 5 {
		t.Fatalf("scan latency samples = %d, want 5", hist.Count)
	}
	if hist.P50 <= 0 || hist.P99 <= 0 || hist.P99 > hist.Max {
		t.Fatalf("degenerate quantiles: p50=%v p99=%v max=%v", hist.P50, hist.P99, hist.Max)
	}

	var rootID int64
	workers, images := 0, 0
	workerIDs := map[int64]bool{}
	for _, sp := range snap.Spans {
		if sp.Name == "scan.batch" {
			rootID = sp.ID
		}
	}
	if rootID == 0 {
		t.Fatalf("no scan.batch root span; spans = %+v", snap.Spans)
	}
	for _, sp := range snap.Spans {
		if sp.Name == "scan.worker" {
			workers++
			workerIDs[sp.ID] = true
			if sp.Parent != rootID {
				t.Fatalf("worker span parent = %d, want %d", sp.Parent, rootID)
			}
		}
	}
	for _, sp := range snap.Spans {
		if sp.Name != "scan.image" {
			continue
		}
		images++
		if !workerIDs[sp.Parent] {
			t.Fatalf("image span parent %d is not a worker span", sp.Parent)
		}
		found := false
		for _, a := range sp.Attrs {
			if a.Key == "image" && strings.HasPrefix(a.Value, "target-") {
				found = true
			}
		}
		if !found {
			t.Fatalf("image span lacks image attr: %+v", sp)
		}
	}
	if workers != 2 || images != 5 {
		t.Fatalf("workers=%d images=%d, want 2 and 5", workers, images)
	}
}

// TestEngineRequiresCheck pins the misuse error.
func TestEngineRequiresCheck(t *testing.T) {
	eng := &scan.Engine{}
	if _, err := eng.Scan(nil); err == nil {
		t.Fatal("engine without Check should error")
	}
}

// memNotifier captures delivered alerts for assertions.
type memNotifier struct {
	mu  sync.Mutex
	got []alert.Alert
}

func (m *memNotifier) Name() string { return "mem" }

func (m *memNotifier) Notify(a *alert.Alert) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.got = append(m.got, *a)
	return nil
}

func (m *memNotifier) alerts() []alert.Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]alert.Alert(nil), m.got...)
}

// TestScanPublishesAlerts: every warning a batch scan emits must reach
// the alert pipeline carrying the batch request ID (generated when the
// engine has none) and the engine's plan-version provenance.
func TestScanPublishesAlerts(t *testing.T) {
	fw, k, targets := fleet(t, 3, -1)
	if _, err := inject.New(7).Inject(targets[0], "mysql", 5); err != nil {
		t.Fatal(err)
	}

	mem := &memNotifier{}
	pipe, err := alert.NewPipeline(alert.Options{Notifiers: []alert.Notifier{mem}})
	if err != nil {
		t.Fatal(err)
	}
	eng := fw.ScanEngine(k)
	eng.Alerts = pipe
	eng.PlanVersion = "plan:test.plan"
	res, err := eng.Scan(targets)
	if err != nil {
		t.Fatal(err)
	}
	if err := pipe.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	warnings := 0
	for _, it := range res.Items {
		if it.Report != nil {
			warnings += len(it.Report.Warnings)
		}
	}
	if warnings == 0 {
		t.Fatal("injected fleet produced no warnings")
	}
	got := mem.alerts()
	if len(got) != warnings {
		t.Fatalf("notifier saw %d alerts, want %d", len(got), warnings)
	}
	reqID := got[0].RequestID
	if !strings.HasPrefix(reqID, "scan-") {
		t.Fatalf("generated batch request id = %q, want scan- prefix", reqID)
	}
	for _, a := range got {
		if a.RequestID != reqID {
			t.Fatalf("request id not shared across the batch: %q vs %q", a.RequestID, reqID)
		}
		if a.PlanVersion != "plan:test.plan" || a.App == "" || a.Severity == "" {
			t.Fatalf("alert provenance wrong: %+v", a)
		}
	}
	if s := pipe.Stats(); s.Published != int64(warnings) || s.Delivered != int64(warnings) {
		t.Fatalf("pipeline stats = %+v, want %d published and delivered", s, warnings)
	}

	// An explicit engine request ID flows through unchanged.
	mem2 := &memNotifier{}
	pipe2, err := alert.NewPipeline(alert.Options{Notifiers: []alert.Notifier{mem2}})
	if err != nil {
		t.Fatal(err)
	}
	eng2 := fw.ScanEngine(k)
	eng2.Alerts = pipe2
	eng2.RequestID = "batch-42"
	if _, err := eng2.Scan(targets); err != nil {
		t.Fatal(err)
	}
	if err := pipe2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, a := range mem2.alerts() {
		if a.RequestID != "batch-42" {
			t.Fatalf("explicit request id lost: %+v", a)
		}
	}
}
