package rules

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/conftypes"
	"repro/internal/dataset"
)

// valuePools gives each semantic type a small value vocabulary so random
// corpora exhibit real correlations, near-constant columns (entropy-filter
// food), and multi-instance cells.
var valuePools = map[conftypes.Type][]string{
	conftypes.TypeNumber:          {"1", "2", "5", "10", "100", "oops"},
	conftypes.TypePortNumber:      {"80", "443", "3306", "8080"},
	conftypes.TypeSize:            {"16M", "32M", "64M", "1G"},
	conftypes.TypeBoolean:         {"on", "off", "yes", "no", "true"},
	conftypes.TypeFilePath:        {"/var/a", "/var/b", "/var/a/sub", "/srv/data"},
	conftypes.TypePartialFilePath: {"sub", "conf.d", "logs"},
	conftypes.TypeUserName:        {"alice", "bob", "mysql"},
	conftypes.TypeGroupName:       {"alice", "www", "staff"},
	conftypes.TypeIPAddress:       {"10.0.0.1", "10.0.0.2", "192.168.1.1", "0.0.0.0"},
	conftypes.TypeFileName:        {"my.cnf", "httpd.conf"},
	conftypes.TypeString:          {"x", "y", "/var", "alpha"},
}

var poolTypes = []conftypes.Type{
	conftypes.TypeNumber, conftypes.TypePortNumber, conftypes.TypeSize,
	conftypes.TypeBoolean, conftypes.TypeFilePath, conftypes.TypePartialFilePath,
	conftypes.TypeUserName, conftypes.TypeGroupName, conftypes.TypeIPAddress,
	conftypes.TypeFileName, conftypes.TypeString,
}

// randomDataset builds a seeded corpus: random typed columns, random
// presence gaps (so the support bitsets have structure), occasional
// multi-instance cells, and a couple of near-constant columns.
func randomDataset(rng *rand.Rand) *dataset.Dataset {
	d := dataset.New()
	nAttrs := 6 + rng.Intn(9)
	types := make([]conftypes.Type, nAttrs)
	for i := 0; i < nAttrs; i++ {
		types[i] = poolTypes[rng.Intn(len(poolTypes))]
		d.DeclareAttr(fmt.Sprintf("a%02d.%s", i, types[i]), types[i], i%7 == 6)
	}
	attrs := d.Attributes()
	nRows := 5 + rng.Intn(140) // often spans >1 bitset word
	for r := 0; r < nRows; r++ {
		row := d.NewRow(fmt.Sprintf("img-%03d", r))
		for i, a := range attrs {
			if rng.Float64() > 0.75 {
				continue // absent on this system
			}
			pool := valuePools[types[i]]
			// A third of the columns are near-constant: always the first
			// pool value, which keeps their entropy at or near zero.
			pick := 0
			if i%3 != 0 {
				pick = rng.Intn(len(pool))
			}
			d.Add(row, a.Name, pool[pick])
			if rng.Float64() < 0.15 {
				d.Add(row, a.Name, pool[rng.Intn(len(pool))])
			}
		}
	}
	return d
}

// configs derives a few threshold settings from the seed so the
// equivalence holds across the whole Config surface, not just defaults.
func randomConfig(rng *rand.Rand) Config {
	cfg := DefaultConfig()
	cfg.MinSupportFraction = []float64{0.01, 0.10, 0.30}[rng.Intn(3)]
	cfg.MinConfidence = []float64{0.50, 0.90, 1.0}[rng.Intn(3)]
	cfg.UseEntropyFilter = rng.Intn(4) != 0
	return cfg
}

func assertEquivalent(t *testing.T, label string, par, ser []*Rule, parStats, serStats Stats) {
	t.Helper()
	if parStats != serStats {
		t.Fatalf("%s: stats diverge:\nindexed: %+v\noracle:  %+v", label, parStats, serStats)
	}
	if len(par) != len(ser) {
		t.Fatalf("%s: %d indexed rules vs %d oracle rules", label, len(par), len(ser))
	}
	for i := range par {
		if !reflect.DeepEqual(par[i], ser[i]) {
			t.Fatalf("%s: rule %d diverges:\nindexed: %+v\noracle:  %+v", label, i, par[i], ser[i])
		}
	}
}

// TestIndexedInferMatchesSerialOracle is the columnar-index equivalence
// property: across randomized corpora and thresholds, the indexed parallel
// Infer and the index-free serial oracle return identical rules — every
// field, including support, confidence, and entropies — and identical
// filter accounting. Tier 2 runs this under -race, which also exercises
// the streamed candidate channel and the shared index snapshot.
func TestIndexedInferMatchesSerialOracle(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d := randomDataset(rng)
		cfg := randomConfig(rng)

		indexed := NewEngine()
		indexed.Config = cfg
		par := indexed.Infer(d, nil)

		oracle := NewEngine()
		oracle.Config = cfg
		ser := oracle.InferSerial(d, nil)

		assertEquivalent(t, fmt.Sprintf("seed %d", seed), par, ser, indexed.LastStats, oracle.LastStats)

		// Single-worker indexed run must agree too.
		one := NewEngine()
		one.Config = cfg
		one.Config.Workers = 1
		single := one.Infer(d, nil)
		assertEquivalent(t, fmt.Sprintf("seed %d workers=1", seed), single, ser, one.LastStats, oracle.LastStats)
	}
}

// TestIndexedInferMatchesSerialOnAssembledCorpus runs the same property on
// a real assembled corpus with system images, so the environment-consulting
// validators (owner, user-group, concat, not-access) are part of the
// equivalence, not just the value-only ones.
func TestIndexedInferMatchesSerialOnAssembledCorpus(t *testing.T) {
	d, imgs := buildTraining(t, 25)
	for _, filter := range []bool{true, false} {
		indexed := NewEngine()
		indexed.Config.UseEntropyFilter = filter
		oracle := NewEngine()
		oracle.Config.UseEntropyFilter = filter
		par := indexed.Infer(d, imgs)
		ser := oracle.InferSerial(d, imgs)
		assertEquivalent(t, fmt.Sprintf("assembled corpus (entropy=%v)", filter), par, ser, indexed.LastStats, oracle.LastStats)
	}
}

// TestInferAfterDatasetMutation guards the index-invalidation seam the
// engine depends on: learning, mutating the training table, and learning
// again must reflect the mutation (no stale bitsets or entropies).
func TestInferAfterDatasetMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	d := randomDataset(rng)
	e := NewEngine()
	e.Config.UseEntropyFilter = false
	e.Config.MinSupportFraction = 0.01
	_ = e.Infer(d, nil)

	// Mutate: add rows that change support and entropy for a fresh pair.
	d.DeclareAttr("fresh.num.a", conftypes.TypeNumber, false)
	d.DeclareAttr("fresh.num.b", conftypes.TypeNumber, false)
	for i := 0; i < len(d.Rows); i++ {
		d.Add(d.Rows[i], "fresh.num.a", fmt.Sprintf("%d", i%5+1))
		d.Add(d.Rows[i], "fresh.num.b", "1000")
	}
	par := e.Infer(d, nil)
	oracle := NewEngine()
	oracle.Config = e.Config
	ser := oracle.InferSerial(d, nil)
	assertEquivalent(t, "post-mutation", par, ser, e.LastStats, oracle.LastStats)
	found := false
	for _, r := range par {
		if r.Template == "num-lt" && r.AttrA == "fresh.num.a" && r.AttrB == "fresh.num.b" {
			found = true
		}
	}
	if !found {
		t.Fatal("rule over post-mutation columns not learned: stale index")
	}
}
