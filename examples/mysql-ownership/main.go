// The Figure 1(b) scenario: MySQL's datadir must be owned by the user the
// server runs as. The value of each entry looks perfectly ordinary — only
// the *correlation* between the two entries, checked against the file
// system, reveals the error.
//
//	go run ./examples/mysql-ownership
package main

import (
	"fmt"
	"log"

	encore "repro"
	"repro/internal/corpus"
)

func main() {
	training, err := corpus.Training("mysql", 80, 11)
	if err != nil {
		log.Fatal(err)
	}
	fw := encore.New()
	knowledge, err := fw.Learn(training)
	if err != nil {
		log.Fatal(err)
	}

	// Show the learned ownership rule (the concrete instantiation of the
	// "[A:FilePath] => [B:UserName]" template).
	for _, r := range knowledge.Rules {
		if r.Template == "owner" {
			fmt.Printf("learned: %s  (support %d, confidence %.0f%%)\n", r.Spec, r.Support, r.Confidence*100)
			fmt.Printf("  %s => %s\n", r.AttrA, r.AttrB)
		}
	}

	// Build a target whose configuration is value-identical to healthy
	// systems, but whose datadir is owned by root (e.g. after a restore
	// from backup ran as root).
	target := corpus.RealWorldCases()[2].Build()
	fmt.Printf("\ntarget %s: datadir owner broken in the environment, values unchanged\n", target.ID)

	report, err := fw.Check(knowledge, target)
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range report.Warnings {
		fmt.Printf("%3d. [%-16s] %s\n", w.Rank, w.Kind, w.Message)
	}
	if top := report.Top(); top != nil && top.Kind == encore.KindCorrelation {
		fmt.Println("\nthe ownership violation ranks first — invisible to value comparison alone")
	}
}
