package rules

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/assemble"
	"repro/internal/conftypes"
	"repro/internal/dataset"
	"repro/internal/sysimage"
)

// oracleInfer runs a from-scratch Infer over a rebuilt twin of d — same
// attribute declarations in the same order, same rows — with a fresh
// engine, so no incremental state, memoized contexts, or maintained index
// can leak into the reference answer.
func oracleInfer(d *dataset.Dataset, images map[string]*sysimage.Image, cfg Config) ([]*Rule, Stats) {
	twin := dataset.New()
	for _, a := range d.Attributes() {
		twin.DeclareAttr(a.Name, a.Type, a.Augmented)
	}
	twin.AddRows(d.Rows...)
	e := NewEngine()
	e.Config = cfg
	rules := e.Infer(twin, images)
	return rules, e.LastStats
}

// detachedRandomRow mirrors randomDataset's cell distribution but builds a
// detached row for AddRows, drawing from the same typed value pools.
func detachedRandomRow(rng *rand.Rand, id string, attrs []dataset.Attribute) *dataset.Row {
	row := &dataset.Row{SystemID: id, Cells: make(map[string][]string)}
	for i, a := range attrs {
		if rng.Float64() > 0.75 {
			continue
		}
		pool := valuePools[a.Type]
		if len(pool) == 0 {
			pool = valuePools[conftypes.TypeString]
		}
		pick := 0
		if i%3 != 0 {
			pick = rng.Intn(len(pool))
		}
		row.Cells[a.Name] = append(row.Cells[a.Name], pool[pick])
		if rng.Float64() < 0.15 {
			row.Cells[a.Name] = append(row.Cells[a.Name], pool[rng.Intn(len(pool))])
		}
	}
	return row
}

// TestInferDeltaMatchesInfer is the incremental-inference property: across
// randomized corpora, thresholds, and add/retire/retype sequences, the
// delta-maintained rule set — and the full filter accounting in LastStats —
// is identical to a from-scratch Infer over the current rows. Tier 2 runs
// this under -race.
func TestInferDeltaMatchesInfer(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			d := randomDataset(rng)
			cfg := randomConfig(rng)

			e := NewEngine()
			e.Config = cfg
			var st InferState
			got := e.InferWithState(d, nil, &st)
			want, wantStats := oracleInfer(d, nil, cfg)
			assertEquivalent(t, fmt.Sprintf("seed %d initial", seed), got, want, e.LastStats, wantStats)

			next := len(d.Rows)
			for step := 0; step < 12; step++ {
				label := fmt.Sprintf("seed %d step %d", seed, step)
				switch rng.Intn(4) {
				case 0, 1: // add a batch of rows
					n := 1 + rng.Intn(3)
					added := make([]*dataset.Row, n)
					for i := range added {
						added[i] = detachedRandomRow(rng, fmt.Sprintf("img-add-%03d", next), d.Attributes())
						next++
					}
					d.AddRows(added...)
					got = e.InferDelta(d, nil, &st, added, nil)
				case 2: // retire a random subset
					if len(d.Rows) < 4 {
						continue
					}
					var ids []string
					for _, row := range d.Rows {
						if rng.Intn(5) == 0 {
							ids = append(ids, row.SystemID)
						}
					}
					retired := d.RetireRows(ids...)
					if retired == nil {
						continue
					}
					got = e.InferDelta(d, nil, &st, nil, retired)
				case 3: // retype an attribute, then a no-op delta
					attrs := d.Attributes()
					a := attrs[rng.Intn(len(attrs))]
					d.SetType(a.Name, poolTypes[rng.Intn(len(poolTypes))])
					got = e.InferDelta(d, nil, &st, nil, nil)
				}
				want, wantStats = oracleInfer(d, nil, cfg)
				assertEquivalent(t, label, got, want, e.LastStats, wantStats)
			}
		})
	}
}

// TestInferDeltaOnAssembledCorpus runs the property on a real assembled
// corpus with system images, so the environment-consulting validators
// (owner, user-group, not-access) participate in the delta adjustments —
// including the retire path, which must re-validate retired rows against
// their images to subtract their contribution.
func TestInferDeltaOnAssembledCorpus(t *testing.T) {
	d, byID := buildTraining(t, 14)
	e := NewEngine()
	var st InferState
	got := e.InferWithState(d, byID, &st)
	want, wantStats := oracleInfer(d, byID, e.Config)
	assertEquivalent(t, "initial", got, want, e.LastStats, wantStats)

	asm := assemble.New()
	dirs := []string{"/var/lib/mysql", "/data/mysql", "/srv/mysql"}
	for step := 0; step < 6; step++ {
		label := fmt.Sprintf("step %d", step)
		if step%2 == 0 {
			// Grow: assemble new images as frozen-type delta rows.
			imgs := make([]*sysimage.Image, 2)
			for i := range imgs {
				user := "mysql"
				if (step+i)%3 == 0 {
					user = "mysqld_safe"
				}
				imgs[i] = trainingImage(fmt.Sprintf("inc-%d-%d", step, i), dirs[(step+i)%len(dirs)], user)
			}
			added, err := asm.AssembleDeltaRows(d, imgs)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			d.AddRows(added...)
			for _, im := range imgs {
				byID[im.ID] = im
			}
			got = e.InferDelta(d, byID, &st, added, nil)
		} else {
			// Shrink: retire two rows, keeping their images visible to the
			// delta inference, then drop the images.
			ids := []string{d.Rows[0].SystemID, d.Rows[len(d.Rows)/2].SystemID}
			retired := d.RetireRows(ids...)
			got = e.InferDelta(d, byID, &st, nil, retired)
			for _, row := range retired {
				delete(byID, row.SystemID)
			}
		}
		want, wantStats = oracleInfer(d, byID, e.Config)
		assertEquivalent(t, label, got, want, e.LastStats, wantStats)
	}
}

// TestInferDeltaColdState checks the degraded path: a zero-value state (or
// one whose row accounting does not match the dataset) must make
// InferDelta evaluate everything from scratch and still agree with Infer.
func TestInferDeltaColdState(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := randomDataset(rng)
	e := NewEngine()

	var cold InferState
	got := e.InferDelta(d, nil, &cold, nil, nil)
	want, wantStats := oracleInfer(d, nil, e.Config)
	assertEquivalent(t, "zero state", got, want, e.LastStats, wantStats)

	// Corrupt the row accounting: the guard must force full re-evaluation
	// rather than trusting the tallies.
	cold.total += 3
	extra := detachedRandomRow(rng, "img-extra", d.Attributes())
	d.AddRows(extra)
	got = e.InferDelta(d, nil, &cold, []*dataset.Row{extra}, nil)
	want, wantStats = oracleInfer(d, nil, e.Config)
	assertEquivalent(t, "mismatched state", got, want, e.LastStats, wantStats)
}

// TestInferWithStatePrimesCandidates sanity-checks the state capture: the
// tracked candidate count equals the engine's candidate space.
func TestInferWithStatePrimesCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := randomDataset(rng)
	e := NewEngine()
	var st InferState
	e.InferWithState(d, nil, &st)
	if st.Candidates() != e.CandidateCount(d) {
		t.Fatalf("state tracks %d candidates, engine enumerates %d", st.Candidates(), e.CandidateCount(d))
	}
}
