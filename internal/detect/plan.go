package detect

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"

	"repro/internal/assemble"
	"repro/internal/conftypes"
	"repro/internal/dataset"
	"repro/internal/rules"
	"repro/internal/stats"
	"repro/internal/sysimage"
	"repro/internal/templates"
)

// Plan is a compiled, immutable check plan: everything the four anomaly
// checks need from the training side — per-attribute histograms,
// cardinalities, precomputed scores, resolved type checkers, compiled
// rule/template pairs, and a pruned entry-name index for misspelling
// suggestions — resolved once at Compile time and shared read-only across
// any number of scan workers. Per-image state lives in pooled scratch, so
// Check builds no dataset, no histogram, and (for names already seen in
// training) no strings.
//
// A Plan snapshots the detector's training view at Compile time; mutating
// the training dataset afterwards is not reflected (compile a new Plan).
// Check is safe for concurrent use and produces reports identical to
// Detector.Check, which remains the reference implementation.
type Plan struct {
	samples   int
	suspLimit int
	assembler *assemble.Assembler

	// attrStore backs attrs with one allocation; attrs indexes it by name.
	attrStore []planAttr
	attrs     map[string]*planAttr

	// types carries TrainingTypes declarations for target-assembly type
	// resolution (the map AssembleTarget would consult per image).
	types map[string]conftypes.Type

	// names interns the training-side names not already keyed by attrs
	// (type declarations without a matching attribute): target attribute
	// names are built in a byte buffer and resolved against attrs, then
	// names, without allocating whenever the name was seen in training.
	names map[string]string

	// nameIdx lists the non-augmented training attributes in declaration
	// order for nearest-name search, each with a character signature for
	// pruning.
	nameIdx []nameCand

	// rules pairs each learned rule with its resolved template; rules
	// whose template is not installed are dropped at compile time, exactly
	// as checkCorrelations skips them.
	rules []planRule

	pool sync.Pool
}

// planAttr is one training attribute's compiled summary.
type planAttr struct {
	decl dataset.Attribute
	// has mirrors Detector.trainingHas (Present > 0).
	has bool
	// hist is the value histogram sorted by value. A sorted slice instead
	// of a map keeps the representation identical to the serialized
	// PlanSpec form, so a decoded plan aliases its spec's slices instead of
	// rebuilding per-attribute maps — the check side only ever asks for
	// membership (histHas).
	hist []PlanSpecHistEntry
	card int
	// trivial caches decl.Type.IsTrivial().
	trivial bool
	// typeScore is checkTypes' cardinality-derived score.
	typeScore float64
	// suspScore is checkSuspiciousValues' score for an unseen value.
	suspScore float64
	// suspSkip marks attributes too diverse to carry peer signal
	// (card*2 >= samples).
	suspSkip bool
	// check is the resolved type checker; nil means the type always
	// passes (String/Enum/unknown defs).
	check func(v string, img *sysimage.Image) (syntacticOK, semanticOK bool)
}

// sortedHist converts a training histogram map into the plan's sorted
// slice form (nil for an empty histogram, matching the spec encoding).
func sortedHist(m map[string]int) []PlanSpecHistEntry {
	if len(m) == 0 {
		return nil
	}
	hist := make([]PlanSpecHistEntry, 0, len(m))
	for v, n := range m {
		hist = append(hist, PlanSpecHistEntry{Value: v, Count: n})
	}
	sort.Slice(hist, func(a, b int) bool { return hist[a].Value < hist[b].Value })
	return hist
}

// histHas reports whether v appeared in training — binary search over the
// sorted histogram. Attributes diverse enough for this to matter are
// suspSkip'd anyway, so the searched slices stay small.
func (pa *planAttr) histHas(v string) bool {
	lo, hi := 0, len(pa.hist)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pa.hist[mid].Value < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(pa.hist) && pa.hist[lo].Value == v
}

// nameCand is one candidate for nearest-name search.
type nameCand struct {
	name string
	sig  uint64
}

// planRule is one learned rule with its template resolved.
type planRule struct {
	rule *rules.Rule
	tpl  *templates.Template
}

// charSig folds a string's bytes into a 64-bit set (one bit per byte
// class). Each unit edit changes at most one byte, hence adds at most one
// bit to either side's exclusive set, so
// popcount(sig(a) &^ sig(b)) <= editDistance(a, b): the signature test
// only ever skips candidates that true edit distance would reject too.
func charSig(s string) uint64 {
	var sig uint64
	for i := 0; i < len(s); i++ {
		sig |= 1 << (s[i] & 63)
	}
	return sig
}

// Compile builds the immutable check plan for this detector's current
// training view, rules, templates, and assembler.
func (dt *Detector) Compile() *Plan {
	attrs := dt.Training.Attributes()
	checkers := newCheckerCache(dt.Assembler.Inferencer)
	p := &Plan{
		samples:   dt.Training.Samples(),
		suspLimit: dt.SuspiciousValueLimit,
		assembler: dt.Assembler,
		attrStore: make([]planAttr, len(attrs)),
		attrs:     make(map[string]*planAttr, len(attrs)),
		types:     make(map[string]conftypes.Type, len(attrs)),
		names:     make(map[string]string, 8),
	}
	for i, a := range attrs {
		hist := sortedHist(dt.Training.Histogram(a.Name))
		pa := &p.attrStore[i]
		*pa = planAttr{
			decl:    a,
			has:     dt.Training.Present(a.Name) > 0,
			hist:    hist,
			card:    len(hist),
			trivial: a.Type.IsTrivial(),
			check:   checkers.get(a.Type),
		}
		pa.deriveScores(p.samples)
		p.attrs[a.Name] = pa
		if !a.Augmented {
			p.nameIdx = append(p.nameIdx, nameCand{name: a.Name, sig: charSig(a.Name)})
		}
	}
	if dt.TrainingTypes != nil {
		for _, a := range dt.TrainingTypes.Attributes() {
			p.types[a.Name] = a.Type
			if _, ok := p.attrs[a.Name]; !ok {
				p.names[a.Name] = a.Name
			}
		}
	}
	for _, r := range dt.Rules {
		if tpl := dt.template(r.Template); tpl != nil {
			p.rules = append(p.rules, planRule{rule: r, tpl: tpl})
		}
	}
	p.pool.New = func() any { return newScratch(p) }
	return p
}

// deriveScores computes the per-attribute check parameters that follow
// from the histogram cardinality, the Augmented flag, and the sample
// count. Compile and NewPlanFromSpec both go through it, so a plan rebuilt
// from its serialized spec is arithmetically identical to the originally
// compiled one.
func (pa *planAttr) deriveScores(samples int) {
	pa.typeScore = 50.0
	if pa.card == 1 {
		pa.typeScore = 90
	} else if pa.card > 1 {
		pa.typeScore = 50 + 30/float64(pa.card)
	}
	if pa.card == 1 {
		pa.suspScore = 70
		if pa.decl.Augmented {
			pa.suspScore = 75
		}
	} else {
		pa.suspScore = 5 * stats.ICF(pa.card, samples)
	}
	pa.suspSkip = pa.card*2 >= samples
}

// checkerCache memoizes compileChecker per type for one plan build: the
// distinct-type count is tiny next to the attribute count, so caching
// avoids re-resolving the def and re-allocating an identical closure for
// every attribute.
type checkerCache struct {
	inf   *conftypes.Inferencer
	byTyp map[conftypes.Type]func(string, *sysimage.Image) (bool, bool)
}

func newCheckerCache(inf *conftypes.Inferencer) *checkerCache {
	return &checkerCache{inf: inf, byTyp: make(map[conftypes.Type]func(string, *sysimage.Image) (bool, bool), 16)}
}

func (cc *checkerCache) get(t conftypes.Type) func(string, *sysimage.Image) (bool, bool) {
	if c, ok := cc.byTyp[t]; ok {
		return c
	}
	c := compileChecker(cc.inf, t)
	cc.byTyp[t] = c
	return c
}

// compileChecker resolves Inferencer.CheckValue's type dispatch once per
// type. A nil checker means every value passes both steps.
func compileChecker(inf *conftypes.Inferencer, t conftypes.Type) func(string, *sysimage.Image) (bool, bool) {
	switch t {
	case conftypes.TypeString, "":
		return nil
	case conftypes.TypeBoolean:
		return func(v string, _ *sysimage.Image) (bool, bool) {
			ok := conftypes.IsBooleanWord(v)
			return ok, ok
		}
	case conftypes.TypeEnum:
		return nil
	}
	def := inf.Def(t)
	if def == nil {
		return nil
	}
	if def.Verify == nil {
		return func(v string, _ *sysimage.Image) (bool, bool) {
			ok := def.Match(v)
			return ok, ok
		}
	}
	return func(v string, img *sysimage.Image) (bool, bool) {
		if !def.Match(v) {
			return false, false
		}
		return true, def.Verify(v, img)
	}
}

// scratch is the per-image working state of one Check call, pooled and
// reused across images. It implements assemble.TargetSink, receiving the
// streamed target attributes directly into the cells map (the one row the
// legacy path would have stored in a fresh dataset).
type scratch struct {
	p   *Plan
	img *sysimage.Image

	cells map[string][]string
	// arena backs single-instance cell slices so most Adds allocate
	// nothing; multi-instance attributes fall back to append's growth.
	arena []string

	// newAug resolves the target dataset's Augmented flag for attributes
	// unseen in training. The legacy target dataset declares every parsed
	// entry name (non-augmented) before emitting the row, so a
	// non-augmented Declare always wins regardless of stream order;
	// otherwise the first augmented Declare decides.
	newAug map[string]bool

	// typeMemo caches InferValue results per image for attributes absent
	// from the training types, reproducing the first-occurrence-wins type
	// map of AssembleTarget.
	typeMemo map[string]conftypes.Type

	// extra interns target-only attribute names across the images this
	// scratch serves; bounded in release().
	extra map[string]string

	// edPrev/edCur are the edit-distance DP rows.
	edPrev, edCur []int

	warnings []*Warning
	susp     []*Warning

	row dataset.Row
	ctx templates.Ctx
}

func newScratch(p *Plan) *scratch {
	return &scratch{
		p:        p,
		cells:    make(map[string][]string, 1+len(p.attrs)/2),
		arena:    make([]string, 0, 512),
		newAug:   make(map[string]bool, 16),
		typeMemo: make(map[string]conftypes.Type, 8),
		extra:    make(map[string]string, 16),
	}
}

// maxExtraInterned bounds the per-scratch interner for target-only names
// so a pathological corpus cannot grow it without limit.
const maxExtraInterned = 1 << 14

// release returns the scratch to the pool with per-image state cleared.
// The interner survives (that is its purpose); cells values may reference
// the arena, so cells must be cleared before the arena is rewound.
func (s *scratch) release() {
	clear(s.cells)
	clear(s.newAug)
	clear(s.typeMemo)
	if len(s.extra) > maxExtraInterned {
		clear(s.extra)
	}
	s.arena = s.arena[:0]
	s.warnings = s.warnings[:0]
	s.susp = s.susp[:0]
	s.img = nil
	s.row = dataset.Row{}
	s.ctx = templates.Ctx{}
	s.p.pool.Put(s)
}

// slot carves a length-0, capacity-1 string slice out of the arena.
func (s *scratch) slot() []string {
	if len(s.arena) == cap(s.arena) {
		s.arena = make([]string, 0, 2*cap(s.arena))
	}
	n := len(s.arena)
	s.arena = s.arena[: n+1 : cap(s.arena)]
	return s.arena[n : n : 1+n]
}

// Declare implements assemble.TargetSink.
func (s *scratch) Declare(name string, _ conftypes.Type, augmented bool) {
	if _, known := s.p.attrs[name]; known {
		// Training declarations come first in the legacy target dataset,
		// so its flag wins; the plan reads it from planAttr directly.
		return
	}
	if !augmented {
		s.newAug[name] = false
		return
	}
	if _, seen := s.newAug[name]; !seen {
		s.newAug[name] = true
	}
}

// Add implements assemble.TargetSink.
func (s *scratch) Add(name, value string) {
	vs, ok := s.cells[name]
	if !ok {
		vs = s.slot()
	}
	s.cells[name] = append(vs, value)
}

// TypeOf implements assemble.TargetSink.
func (s *scratch) TypeOf(name, value string) conftypes.Type {
	if t, ok := s.p.types[name]; ok {
		return t
	}
	if t, ok := s.typeMemo[name]; ok {
		return t
	}
	t := s.p.assembler.Inferencer.InferValue(value, s.img)
	s.typeMemo[name] = t
	return t
}

// InternName implements assemble.TargetSink.
func (s *scratch) InternName(name []byte) string {
	if pa, ok := s.p.attrs[string(name)]; ok {
		return pa.decl.Name
	}
	if n, ok := s.p.names[string(name)]; ok {
		return n
	}
	if n, ok := s.extra[string(name)]; ok {
		return n
	}
	n := string(name)
	s.extra[n] = n
	return n
}

// Check assembles the target image into pooled scratch and runs the four
// anomaly checks against the compiled tables, returning a report
// identical to Detector.Check's.
func (p *Plan) Check(img *sysimage.Image) (*Report, error) {
	s := p.pool.Get().(*scratch)
	s.img = img
	if err := p.assembler.StreamTarget(img, s); err != nil {
		s.release()
		return nil, err
	}
	s.row = dataset.Row{SystemID: img.ID, Cells: s.cells}
	s.ctx = templates.Ctx{Row: &s.row, Image: img}

	ws := s.warnings[:0]
	ws = p.checkNames(s, ws)
	ws = p.checkCorrelations(s, ws)
	ws = p.checkTypes(s, img, ws)
	ws = p.checkSuspicious(s, ws)

	sort.SliceStable(ws, func(i, j int) bool {
		if ws[i].Score != ws[j].Score {
			return ws[i].Score > ws[j].Score
		}
		return ws[i].Attr < ws[j].Attr
	})
	// nil for a clean image, exactly like the legacy detector's
	// unappended nil slice.
	var out []*Warning
	if len(ws) > 0 {
		out = make([]*Warning, len(ws))
		copy(out, ws)
	}
	for i, w := range out {
		w.Rank = i + 1
	}
	s.warnings = ws
	s.release()
	return &Report{SystemID: img.ID, Warnings: out}, nil
}

// checkNames is checkNames compiled: the training flags come from the
// plan, the target-side Augmented flag from the scratch's declare log.
func (p *Plan) checkNames(s *scratch, ws []*Warning) []*Warning {
	for attr := range s.cells {
		if pa, ok := p.attrs[attr]; ok {
			if pa.decl.Augmented || pa.has {
				continue
			}
		} else if s.newAug[attr] {
			continue
		}
		if isEnvAttr(attr) {
			continue
		}
		msg := fmt.Sprintf("entry %q was never seen in the training set", attr)
		score := 20.0
		if near := p.nearest(s, attr); near != "" {
			msg += fmt.Sprintf(" (did you mean %q?)", near)
			score = 35.0
		}
		ws = append(ws, &Warning{Kind: KindName, Attr: attr, Message: msg, Score: score})
	}
	return ws
}

// nearest is nearestTrainingAttr over the compiled name index: the same
// declaration-order scan with the same shrinking bound, plus two sound
// prefilters (length difference and character signature) that only skip
// candidates editDistance would have rejected at the current bound.
func (p *Plan) nearest(s *scratch, attr string) string {
	sig := charSig(attr)
	best, bestDist := "", 3
	for i := range p.nameIdx {
		c := &p.nameIdx[i]
		if d := len(c.name) - len(attr); d >= bestDist || -d >= bestDist {
			continue
		}
		if bits.OnesCount64(sig&^c.sig) >= bestDist || bits.OnesCount64(c.sig&^sig) >= bestDist {
			continue
		}
		if c.name == attr {
			continue
		}
		if d := s.editDistance(attr, c.name, bestDist); d < bestDist {
			best, bestDist = c.name, d
		}
	}
	return best
}

// editDistance is the bounded Levenshtein distance over the scratch's
// reusable DP rows.
func (s *scratch) editDistance(a, b string, bound int) int {
	if abs(len(a)-len(b)) >= bound {
		return bound
	}
	n := len(b) + 1
	if cap(s.edPrev) < n {
		s.edPrev = make([]int, n)
		s.edCur = make([]int, n)
	}
	return editDistanceInto(a, b, bound, s.edPrev[:n], s.edCur[:n])
}

// checkCorrelations is checkCorrelations compiled: templates were
// resolved per rule at Compile time.
func (p *Plan) checkCorrelations(s *scratch, ws []*Warning) []*Warning {
	for _, pr := range p.rules {
		r := pr.rule
		va := s.cells[r.AttrA]
		vb := s.cells[r.AttrB]
		if len(va) == 0 || len(vb) == 0 {
			continue // absent entries: rule is ignored (Section 6)
		}
		holds, applicable := pr.tpl.Validate(va, vb, &s.ctx)
		if !applicable || holds {
			continue
		}
		ws = append(ws, &Warning{
			Kind:  KindCorrelation,
			Attr:  r.AttrA,
			Value: strings.Join(va, ";"),
			Rule:  r,
			Message: fmt.Sprintf("correlation %s violated: %s=%q vs %s=%q",
				r.Spec, r.AttrA, strings.Join(va, ";"), r.AttrB, strings.Join(vb, ";")),
			Score: 40 + 20*r.Confidence,
		})
	}
	return ws
}

// checkTypes is checkTypes compiled: the type dispatch and the
// cardinality score were resolved per attribute at Compile time.
func (p *Plan) checkTypes(s *scratch, img *sysimage.Image, ws []*Warning) []*Warning {
	for attr, values := range s.cells {
		pa, ok := p.attrs[attr]
		if !ok || pa.decl.Augmented || pa.trivial || !pa.has {
			continue
		}
		for _, v := range values {
			if conftypes.LooksLikeRegexOrGlob(v) {
				continue
			}
			syn, sem := true, true
			if pa.check != nil {
				syn, sem = pa.check(v, img)
			}
			if syn && sem {
				continue
			}
			step := "semantic verification"
			if !syn {
				step = "syntactic match"
			}
			ws = append(ws, &Warning{
				Kind:  KindType,
				Attr:  attr,
				Value: v,
				Message: fmt.Sprintf("value %q of %s fails %s for type %s",
					v, attr, step, pa.decl.Type),
				Score: pa.typeScore,
			})
		}
	}
	return ws
}

// checkSuspicious is checkSuspiciousValues compiled: histogram,
// cardinality, ICF, and the resulting score come from the plan.
func (p *Plan) checkSuspicious(s *scratch, ws []*Warning) []*Warning {
	sus := s.susp[:0]
	for attr, values := range s.cells {
		pa, ok := p.attrs[attr]
		if !ok || !pa.has || pa.suspSkip {
			continue
		}
		for _, v := range values {
			if pa.histHas(v) {
				continue
			}
			sus = append(sus, &Warning{
				Kind:  KindSuspicious,
				Attr:  attr,
				Value: v,
				Message: fmt.Sprintf("value %q of %s never appeared in %d training systems (%d distinct values seen)",
					v, attr, p.samples, pa.card),
				Score: pa.suspScore,
			})
		}
	}
	sort.SliceStable(sus, func(i, j int) bool { return sus[i].Score > sus[j].Score })
	s.susp = sus
	if p.suspLimit > 0 && len(sus) > p.suspLimit {
		sus = sus[:p.suspLimit]
	}
	return append(ws, sus...)
}
