// Package eval regenerates every table of the paper's evaluation
// (Section 2 motivation tables and the Section 7 results tables) on the
// synthetic corpora. Each TableN function returns structured rows; the
// Render helpers print them in the paper's layout. cmd/evaluate and the
// benchmark harness are thin wrappers over this package.
package eval

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/assemble"
	"repro/internal/baseline"
	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/inject"
	"repro/internal/mining"
	"repro/internal/rules"
	"repro/internal/study"
	"repro/internal/sysimage"
	"repro/internal/telemetry"
)

// evalTelemetry is the recorder threaded through every assembler and rule
// engine the tables construct. It is set once by cmd/evaluate before any
// table runs and read concurrently afterwards; nil disables
// instrumentation (the recorder API is nil-safe throughout).
var evalTelemetry *telemetry.Recorder

// SetTelemetry attaches a recorder to all subsequently built pipelines.
// Call it before running tables, not concurrently with them.
func SetTelemetry(rec *telemetry.Recorder) { evalTelemetry = rec }

// newAssembler and newEngine are the only constructors the tables use, so
// one recorder reaches every pipeline the evaluation spins up.
func newAssembler() *assemble.Assembler {
	a := assemble.New()
	a.Telemetry = evalTelemetry
	return a
}

func newEngine() *rules.Engine {
	e := rules.NewEngine()
	e.Telemetry = evalTelemetry
	return e
}

// Apps are the applications of the detection evaluation, in paper order.
var Apps = []string{"apache", "mysql", "php"}

// TrainingSize returns the paper's per-app training-set size.
func TrainingSize(app string) int {
	switch app {
	case "apache":
		return corpus.TrainingApache
	case "mysql":
		return corpus.TrainingMySQL
	case "php":
		return corpus.TrainingPHP
	default:
		return 50
	}
}

// Trained bundles everything learned for one app.
type Trained struct {
	App       string
	Images    []*sysimage.Image
	ByID      map[string]*sysimage.Image
	Data      *dataset.Dataset
	Rules     []*rules.Rule
	Engine    *rules.Engine
	Assembler *assemble.Assembler
}

// Train builds the training corpus for an app and learns rules with the
// paper's thresholds. n == 0 uses the paper's population size.
func Train(app string, n int, seed int64) (*Trained, error) {
	if n == 0 {
		n = TrainingSize(app)
	}
	sp := evalTelemetry.StartSpan("eval.train", telemetry.A("app", app))
	defer sp.End()
	images, err := corpus.Training(app, n, seed)
	if err != nil {
		return nil, err
	}
	asm := newAssembler()
	ds, err := asm.AssembleTraining(images)
	if err != nil {
		return nil, err
	}
	eng := newEngine()
	byID := corpus.ByID(images)
	learned := eng.Infer(ds, byID)
	return &Trained{
		App: app, Images: images, ByID: byID, Data: ds,
		Rules: learned, Engine: eng, Assembler: asm,
	}, nil
}

// TrainImages learns from an explicit image set (e.g. a LAMP corpus)
// rather than a generated per-app population.
func TrainImages(images []*sysimage.Image) (*Trained, error) {
	asm := newAssembler()
	ds, err := asm.AssembleTraining(images)
	if err != nil {
		return nil, err
	}
	eng := newEngine()
	byID := corpus.ByID(images)
	return &Trained{
		Images: images, ByID: byID, Data: ds,
		Rules: eng.Infer(ds, byID), Engine: eng, Assembler: asm,
	}, nil
}

// forEachApp evaluates fn for every app concurrently — the tables'
// per-app work is independent — writing results by index so row order
// stays in paper order. The error returned is the first in app order,
// matching the sequential loops this replaces.
func forEachApp(fn func(i int, app string) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(Apps))
	for i, app := range Apps {
		wg.Add(1)
		go func(i int, app string) {
			defer wg.Done()
			errs[i] = fn(i, app)
		}(i, app)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// trainAll trains every app concurrently and returns the knowledge keyed
// by app.
func trainAll(seed int64) (map[string]*Trained, error) {
	trained := make([]*Trained, len(Apps))
	if err := forEachApp(func(i int, app string) error {
		tr, err := Train(app, 0, seed)
		trained[i] = tr
		return err
	}); err != nil {
		return nil, err
	}
	out := make(map[string]*Trained, len(Apps))
	for i, app := range Apps {
		out[app] = trained[i]
	}
	return out, nil
}

// Detector returns a detector over the trained knowledge.
func (t *Trained) Detector() *detect.Detector {
	dt := detect.New(t.Data, t.Rules)
	dt.Assembler = t.Assembler
	dt.Templates = t.Engine.Templates
	return dt
}

// ---- Table 1 ----

// Table1 returns the manual-study rows.
func Table1() []study.Row { return study.Table1() }

// RenderTable1 prints Table 1 in the paper's layout.
func RenderTable1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: configuration parameters associated with environment and correlations\n")
	fmt.Fprintf(&b, "%-8s %6s %14s %14s\n", "Apps", "Total", "Env-Related", "Correlated")
	for _, r := range Table1() {
		fmt.Fprintf(&b, "%-8s %6d %8d (%2d%%) %8d (%2d%%)\n",
			r.App, r.Total,
			r.EnvRelated, percent(r.EnvRelated, r.Total),
			r.Correlated, percent(r.Correlated, r.Total))
	}
	return b.String()
}

func percent(n, total int) int {
	if total == 0 {
		return 0
	}
	return int(float64(n)/float64(total)*100 + 0.5)
}

// ---- Table 2 ----

// Table2Row is the attribute-count growth for one app.
type Table2Row struct {
	App       string
	Original  int
	Augmented int
	Binomial  int
}

// Table2 measures attribute counts before augmentation, after environment
// integration, and after boolean discretization.
func Table2(seed int64) ([]Table2Row, error) {
	rows := make([]Table2Row, len(Apps))
	if err := forEachApp(func(i int, app string) error {
		images, err := corpus.Training(app, TrainingSize(app), seed)
		if err != nil {
			return err
		}
		ds, err := newAssembler().AssembleTraining(images)
		if err != nil {
			return err
		}
		rows[i] = Table2Row{
			App:       app,
			Original:  ds.OriginalAttrCount(),
			Augmented: ds.AugmentedAttrCount(),
			Binomial:  ds.Discretize(nil).BinomialCount(),
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderTable2 prints Table 2.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2: number of attributes generated using data mining methods\n")
	fmt.Fprintf(&b, "%-12s %10s %10s %10s\n", "", "Apache", "MySQL", "PHP")
	byApp := map[string]Table2Row{}
	for _, r := range rows {
		byApp[r.App] = r
	}
	fmt.Fprintf(&b, "%-12s %10d %10d %10d\n", "Original", byApp["apache"].Original, byApp["mysql"].Original, byApp["php"].Original)
	fmt.Fprintf(&b, "%-12s %10d %10d %10d\n", "Augmented", byApp["apache"].Augmented, byApp["mysql"].Augmented, byApp["php"].Augmented)
	fmt.Fprintf(&b, "%-12s %10d %10d %10d\n", "Binomial", byApp["apache"].Binomial, byApp["mysql"].Binomial, byApp["php"].Binomial)
	return b.String()
}

// ---- Table 3 ----

// Table3Row is one scalability measurement.
type Table3Row struct {
	App      string
	Attrs    int
	Duration time.Duration
	FreqSets int
	OOM      bool
}

// Table3Budget caps the frequent item sets a miner may materialize before
// the run is declared out-of-memory, mirroring the paper's OOM
// terminations.
const Table3Budget = 2_000_000

// Table3Fractions are the default sweep points: the fraction of each app's
// attribute columns included in the mining run. The paper sweeps absolute
// attribute counts (100/150/175/200+) on its larger real configurations;
// on the synthetic corpora the attribute budget per app is smaller, so the
// sweep is expressed as prefix fractions of the same ordered attribute
// list.
var Table3Fractions = []float64{0.4, 0.6, 0.8, 1.0}

// Table3 mines the discretized configuration data of each app at
// increasing attribute counts with FP-Growth. Attribute columns are
// ordered from diverse to stable (descending entropy), so larger prefixes
// pull in the near-constant attributes whose items co-occur everywhere —
// the combinatorial source of the paper's Finding 3 blow-up and OOM
// terminations.
func Table3(seed int64, fractions []float64, budget int) ([]Table3Row, error) {
	if budget <= 0 {
		budget = Table3Budget
	}
	if fractions == nil {
		fractions = Table3Fractions
	}
	perApp := make([][]Table3Row, len(Apps))
	if err := forEachApp(func(ai int, app string) error {
		images, err := corpus.Training(app, TrainingSize(app), seed)
		if err != nil {
			return err
		}
		ds, err := newAssembler().AssembleTraining(images)
		if err != nil {
			return err
		}
		order := attrsByEntropy(ds)
		for _, frac := range fractions {
			n := int(float64(len(order))*frac + 0.5)
			if n < 1 {
				n = 1
			}
			if n > len(order) {
				n = len(order)
			}
			disc := ds.Discretize(order[:n])
			miner := &mining.FPGrowth{MaxSets: budget}
			// The synthetic corpora are denser than real crawls (every
			// entry present on every image), so the mining support floor
			// is set high enough that only genuinely common items are
			// frequent; the blow-up is then driven by how many stable
			// attributes the prefix includes, as in the paper.
			minSupport := len(disc.Transactions) * 6 / 10
			start := time.Now()
			res, err := miner.Mine(disc.Transactions, minSupport)
			row := Table3Row{App: app, Attrs: n, Duration: time.Since(start)}
			if err != nil {
				row.OOM = true
			} else {
				row.FreqSets = res.Count
			}
			perApp[ai] = append(perApp[ai], row)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	var rows []Table3Row
	for _, appRows := range perApp {
		rows = append(rows, appRows...)
	}
	return rows, nil
}

// attrsByEntropy orders attribute names by descending value entropy
// (diverse first), ties broken by name for determinism.
func attrsByEntropy(ds *dataset.Dataset) []string {
	attrs := ds.Attributes()
	names := make([]string, len(attrs))
	entropy := make(map[string]float64, len(attrs))
	for i, a := range attrs {
		names[i] = a.Name
		entropy[a.Name] = ds.Entropy(a.Name)
	}
	sort.SliceStable(names, func(i, j int) bool {
		if entropy[names[i]] != entropy[names[j]] {
			return entropy[names[i]] > entropy[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}

// RenderTable3 prints Table 3.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table 3: time cost and frequent-item-set size vs number of attributes (FP-Growth)\n")
	fmt.Fprintf(&b, "%-8s %8s %12s %12s\n", "App", "attrs", "time", "freq sets")
	for _, r := range rows {
		if r.OOM {
			fmt.Fprintf(&b, "%-8s %8d %12s %12s\n", r.App, r.Attrs, r.Duration.Round(time.Millisecond), "OOM")
		} else {
			fmt.Fprintf(&b, "%-8s %8d %12s %12d\n", r.App, r.Attrs, r.Duration.Round(time.Millisecond), r.FreqSets)
		}
	}
	return b.String()
}

// ---- Table 8 ----

// Table8Row is the injection study result for one app.
type Table8Row struct {
	App         string
	Total       int
	Baseline    int
	BaselineEnv int
	EnCore      int
}

// InjectionsPerApp matches the paper's 15 injected errors per application.
const InjectionsPerApp = 15

// Table8 injects errors into a held-out image per app and counts how many
// each detector reports.
func Table8(seed int64) ([]Table8Row, error) {
	rows := make([]Table8Row, len(Apps))
	if err := forEachApp(func(i int, app string) error {
		tr, err := Train(app, 0, seed)
		if err != nil {
			return err
		}
		// Held-out victim image (different seed stream).
		victims, err := corpus.Training(app, 1, seed+100)
		if err != nil {
			return err
		}
		victim := victims[0]
		victim.ID = app + "-victim"
		injections, err := inject.New(seed+7).Inject(victim, app, InjectionsPerApp)
		if err != nil {
			return err
		}

		row := Table8Row{App: app, Total: len(injections)}

		bl := baseline.NewBaseline(tr.Data)
		blFindings, err := bl.Check(victim)
		if err != nil {
			return err
		}
		ble := baseline.NewBaselineEnv(tr.Data)
		bleFindings, err := ble.Check(victim)
		if err != nil {
			return err
		}
		report, err := tr.Detector().Check(victim)
		if err != nil {
			return err
		}

		for _, inj := range injections {
			if matchFinding(blFindings, inj) {
				row.Baseline++
			}
			if matchFinding(bleFindings, inj) {
				row.BaselineEnv++
			}
			if matchWarning(report, inj) {
				row.EnCore++
			}
		}
		rows[i] = row
		return nil
	}); err != nil {
		return nil, err
	}
	return rows, nil
}

func matchFinding(fs []*baseline.Finding, inj inject.Injection) bool {
	for _, f := range fs {
		if inj.Matches(f.Attr) {
			return true
		}
	}
	return false
}

func matchWarning(r *detect.Report, inj inject.Injection) bool {
	for _, w := range r.Warnings {
		if inj.Matches(w.Attr) {
			return true
		}
	}
	return false
}

// RenderTable8 prints Table 8 with the headline improvement factors.
func RenderTable8(rows []Table8Row) string {
	var b strings.Builder
	b.WriteString("Table 8: injected misconfigurations detected\n")
	fmt.Fprintf(&b, "%-8s %6s %10s %14s %8s %8s\n", "App", "Total", "Baseline", "Baseline+Env", "EnCore", "vs Base")
	for _, r := range rows {
		factor := "-"
		if r.Baseline > 0 {
			factor = fmt.Sprintf("%.1fx", float64(r.EnCore)/float64(r.Baseline))
		}
		fmt.Fprintf(&b, "%-8s %6d %10d %14d %8d %8s\n", r.App, r.Total, r.Baseline, r.BaselineEnv, r.EnCore, factor)
	}
	return b.String()
}
