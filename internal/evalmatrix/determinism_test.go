package evalmatrix

import (
	"bytes"
	"testing"

	"repro/internal/inject"
)

// TestGridByteDeterminism runs the full small grid twice with the same
// seed and asserts byte-identical JSON. Cells compute on a parallel
// worker pool, so under `go test -race` this both exercises the shared
// profile/victim structures for races and pins the per-cell seed
// derivation: any scheduling-dependent or map-order-dependent output
// would diverge here.
func TestGridByteDeterminism(t *testing.T) {
	opts := Options{
		Seed:        11,
		TrainingN:   12,
		Victims:     2,
		PerVictim:   3,
		Populations: []string{"apache", "lamp"},
		Configs:     []string{"plan-default", "legacy-default", "baseline-env"},
		Kinds: []inject.Kind{
			inject.KindNameTypo, inject.KindOmission, inject.KindPathBreak,
			inject.KindSectionMove,
		},
	}
	first, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	a, err := first.JSON()
	if err != nil {
		t.Fatal(err)
	}
	// Second run with a different worker count: the grid must not depend
	// on pool geometry.
	opts.Workers = 2
	second, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := second.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed grid runs differ:\nfirst:\n%s\nsecond:\n%s", a, b)
	}
}
