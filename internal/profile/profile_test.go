package profile

import (
	"strings"
	"testing"

	"repro/internal/assemble"
	"repro/internal/corpus"
	"repro/internal/detect"
	"repro/internal/rules"
)

func trainedFixture(t *testing.T) (*Profile, *detect.Detector) {
	t.Helper()
	images, err := corpus.Training("mysql", 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := assemble.New().AssembleTraining(images)
	if err != nil {
		t.Fatal(err)
	}
	learned := rules.NewEngine().Infer(ds, corpus.ByID(images))
	if len(learned) == 0 {
		t.Fatal("no rules learned")
	}
	return Build(ds, learned), detect.New(ds, learned)
}

func TestBuildCapturesKnowledge(t *testing.T) {
	p, _ := trainedFixture(t)
	if p.Samples != 40 {
		t.Fatalf("samples = %d", p.Samples)
	}
	if len(p.Rules) == 0 || len(p.Attrs) == 0 {
		t.Fatal("profile empty")
	}
	var datadir *AttrProfile
	for i := range p.Attrs {
		if p.Attrs[i].Name == "mysql:mysqld/datadir" {
			datadir = &p.Attrs[i]
		}
	}
	if datadir == nil {
		t.Fatal("datadir attr missing")
	}
	if datadir.Type != "FilePath" || datadir.Present != 40 {
		t.Fatalf("datadir profile = %+v", datadir)
	}
	total := 0
	for _, c := range datadir.Histogram {
		total += c
	}
	if total != 40 {
		t.Fatalf("histogram mass = %d", total)
	}
}

func TestRoundTrip(t *testing.T) {
	p, _ := trainedFixture(t)
	data, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Samples != p.Samples || len(back.Attrs) != len(p.Attrs) || len(back.Rules) != len(p.Rules) {
		t.Fatal("round trip lost data")
	}
	if _, err := Unmarshal([]byte("{bad")); err == nil {
		t.Fatal("bad JSON should error")
	}
}

// TestProfileDetectorMatchesLiveDetector is the separation guarantee: a
// detector rebuilt from the serialized profile produces the same report as
// one holding the live training dataset.
func TestProfileDetectorMatchesLiveDetector(t *testing.T) {
	p, live := trainedFixture(t)
	data, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	fromProfile := back.Detector()

	target := corpus.RealWorldCases()[2].Build() // datadir wrong owner
	liveReport, err := live.Check(target)
	if err != nil {
		t.Fatal(err)
	}
	profReport, err := fromProfile.Check(target)
	if err != nil {
		t.Fatal(err)
	}
	if len(liveReport.Warnings) != len(profReport.Warnings) {
		t.Fatalf("warning counts differ: live %d vs profile %d\nlive: %v\nprofile: %v",
			len(liveReport.Warnings), len(profReport.Warnings),
			messages(liveReport), messages(profReport))
	}
	for i := range liveReport.Warnings {
		lw, pw := liveReport.Warnings[i], profReport.Warnings[i]
		if lw.Kind != pw.Kind || lw.Attr != pw.Attr || lw.Score != pw.Score {
			t.Fatalf("warning %d differs: %+v vs %+v", i, lw, pw)
		}
	}
}

func TestViewAccessors(t *testing.T) {
	p, _ := trainedFixture(t)
	dt := p.Detector()
	v := dt.Training
	if v.Samples() != 40 {
		t.Fatalf("samples = %d", v.Samples())
	}
	if _, ok := v.Attr("mysql:mysqld/user"); !ok {
		t.Fatal("user attr missing from view")
	}
	if _, ok := v.Attr("ghost"); ok {
		t.Fatal("ghost attr should be absent")
	}
	if v.Present("ghost") != 0 || v.Histogram("ghost") != nil {
		t.Fatal("ghost attr should have empty stats")
	}
	if len(v.Attributes()) != len(p.Attrs) {
		t.Fatal("Attributes length mismatch")
	}
}

func messages(r *detect.Report) []string {
	out := make([]string, len(r.Warnings))
	for i, w := range r.Warnings {
		out[i] = string(w.Kind) + ":" + w.Attr
	}
	return out
}

func TestProfileJSONShape(t *testing.T) {
	p, _ := trainedFixture(t)
	data, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"samples": 40`, `"attrs"`, `"rules"`, `"histogram"`} {
		if !strings.Contains(s, want) {
			t.Errorf("serialized profile missing %q", want)
		}
	}
}
