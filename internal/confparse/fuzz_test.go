package confparse

import (
	"strings"
	"testing"
)

// fuzzDialect is the shared fuzz body: parsing arbitrary content must
// never panic, a parse error must carry the app and file context the
// assembler relies on for fault isolation, and a successful parse must
// render and re-parse without panicking.
func fuzzDialect(f *testing.F, app string, seeds []string) {
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, content string) {
		file, err := Parse(app, "fuzz.conf", content)
		if err != nil {
			msg := err.Error()
			if !strings.Contains(msg, app) || !strings.Contains(msg, "fuzz.conf") {
				t.Fatalf("parse error lost its app/file context: %v", err)
			}
			return
		}
		rendered, err := Render(file)
		if err != nil {
			t.Fatalf("render of parsed file failed: %v", err)
		}
		// Re-parsing rendered output must not panic; well-formed inputs
		// round-trip, adversarial ones may legitimately re-fail.
		_, _ = Parse(app, "fuzz.conf", rendered)
	})
}

func FuzzApacheParse(f *testing.F) {
	fuzzDialect(f, "apache", []string{
		"",
		"ServerRoot /etc/apache2\nListen 80\n",
		"LoadModule php_module modules/libphp.so\n",
		"<VirtualHost *:80>\n  DocumentRoot /var/www\n</VirtualHost>\n",
		"<VirtualHost *:80>\n<Directory /var/www>\nAllowOverride None\n</Directory>\n</VirtualHost>\n",
		"# comment\n\nKeepAlive On\n",
		"<VirtualHost *:80>\nDocumentRoot /var/www\n", // unclosed section
		"</VirtualHost>\n", // close with no open
		"<>\n",             // empty section
		"<Broken\n",        // unterminated header
	})
}

func FuzzINIParse(f *testing.F) {
	fuzzDialect(f, "mysql", []string{
		"",
		"[mysqld]\ndatadir = /var/lib/mysql\nport = 3306\n",
		"[mysqld]\nskip-networking\n",
		"; comment\n# comment\nkey = value\n",
		"[client]\nsocket=/run/mysqld/mysqld.sock\n",
		"key = value with spaces\n",
		"[unterminated\n",
		"[]\n",
		"= novalue\n",
	})
}

func FuzzSSHDParse(f *testing.F) {
	fuzzDialect(f, "sshd", []string{
		"",
		"Port 22\nPermitRootLogin no\n",
		"ListenAddress 0.0.0.0\nListenAddress ::\n",
		"Match User git\n  ForceCommand git-shell\n",
		"Match\n", // Match with no criteria
		"# comment\nSubsystem sftp /usr/lib/openssh/sftp-server\n",
		"AcceptEnv LANG LC_*\n",
	})
}
