// Customization: declare a new semantic type, a new augmented attribute, a
// new relation operator, and a new rule template from a customization file
// (Section 5.3 of the paper), then use them end-to-end on the Apache
// corpus.
//
//	go run ./examples/custom-template
package main

import (
	"fmt"
	"log"

	encore "repro"
	"repro/internal/corpus"
)

// customization declares an UploadDir type for web upload areas, augments
// it with its permission bits, defines a "writableBy" operator backed by
// the image's permission model, and asks the learner to try the template
// "[A:UploadDir] ~w [B:UserName]" — the upload area should be writable by
// the account the server runs as.
const customization = `
# Upload areas must be writable by the serving user.
$$TypeDeclaration
UploadDir
$$TypeInference
UploadDir (value): { matches(value, '^/.*/uploads$') }
$$TypeValidation
UploadDir (value): { isDir(value) }
$$TypeAugmentDeclaration
UploadDir.perm Permission
$$TypeAugment
UploadDir.perm (value): { perm(value) }
$$TypeOperator
writableBy: Operator '~w' (v1,v2): { writable(v1, v2) }
$$Template
[A:UploadDir] ~w [B:UserName] -- 90%
`

func main() {
	fw := encore.New()
	if err := fw.LoadCustomization(customization); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("customization loaded: %d templates active\n", len(fw.Templates()))

	training, err := corpus.Training("apache", 60, 21)
	if err != nil {
		log.Fatal(err)
	}
	knowledge, err := fw.Learn(training)
	if err != nil {
		log.Fatal(err)
	}

	// The custom type wins over the predefined FilePath for matching
	// values.
	if t, ok := knowledge.TypeOf("apache:Alias/arg2"); ok {
		fmt.Printf("Alias/arg2 (the upload area) inferred as %s\n", t)
	}
	var customRules int
	for _, r := range knowledge.Rules {
		if r.Template == "custom:~w:UploadDir:UserName" {
			customRules++
			fmt.Printf("custom rule learned: %s\n", r)
		}
	}
	fmt.Printf("%d rules total, %d from the custom template\n", len(knowledge.Rules), customRules)

	// Real-world case #7: the upload directory was chown'ed to root, so
	// visitors can no longer upload. The custom rule catches it.
	target := corpus.RealWorldCases()[6].Build()
	report, err := fw.Check(knowledge, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntarget %s (upload dir owned by root):\n", target.ID)
	for _, w := range report.Warnings {
		fmt.Printf("%3d. [%-16s] %s\n", w.Rank, w.Kind, w.Message)
	}
}
