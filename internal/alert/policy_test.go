package alert

import (
	"strings"
	"testing"
	"time"
)

const fullPolicyDoc = `# Operator alerting policy.
version: 1
queue_size: 512        # bounded queue
ring_size: 64
dedup_window: 30s
rate_limit: 120
min_severity: low

notifiers:
  - name: ops-log
    type: slog
  - name: audit
    type: file
    path: /tmp/alerts.jsonl
  - name: pager
    type: webhook
    url: "http://127.0.0.1:9099/hook"
    timeout: 2s
    retries: 3
    backoff: 200ms

rules:
  - family: correlation
    min_severity: medium
    notify: [pager, ops-log]
  - family: data-type
    enabled: false
  - family: "*"
    notify: [audit]
`

func TestParsePolicyFull(t *testing.T) {
	p, err := ParsePolicy([]byte(fullPolicyDoc))
	if err != nil {
		t.Fatal(err)
	}
	if p.Version != 1 || p.QueueSize != 512 || p.RingSize != 64 {
		t.Fatalf("scalars wrong: %+v", p)
	}
	if p.DedupWindow != 30*time.Second || p.RateLimit != 120 || p.MinSeverity != SeverityLow {
		t.Fatalf("windows wrong: %+v", p)
	}
	if len(p.Notifiers) != 3 {
		t.Fatalf("notifiers = %d, want 3", len(p.Notifiers))
	}
	hook := p.Notifiers[2]
	if hook.Name != "pager" || hook.Type != "webhook" || hook.URL != "http://127.0.0.1:9099/hook" {
		t.Fatalf("webhook decoded wrong: %+v", hook)
	}
	if hook.Timeout != 2*time.Second || hook.Retries != 3 || hook.Backoff != 200*time.Millisecond {
		t.Fatalf("webhook knobs wrong: %+v", hook)
	}
	if p.Notifiers[1].Path != "/tmp/alerts.jsonl" {
		t.Fatalf("file path wrong: %+v", p.Notifiers[1])
	}
	if len(p.Rules) != 3 {
		t.Fatalf("rules = %d, want 3", len(p.Rules))
	}
	if r := p.Rules[0]; r.Family != "correlation" || r.MinSeverity != SeverityMedium ||
		!r.Enabled || len(r.Notify) != 2 || r.Notify[0] != "pager" {
		t.Fatalf("rule 0 decoded wrong: %+v", r)
	}
	if r := p.Rules[1]; r.Enabled {
		t.Fatalf("rule 1 should be disabled: %+v", r)
	}
	if r := p.Rules[2]; r.Family != "*" || len(r.Notify) != 1 {
		t.Fatalf("catch-all rule wrong: %+v", r)
	}
}

func TestPolicyRouting(t *testing.T) {
	p, err := ParsePolicy([]byte(fullPolicyDoc))
	if err != nil {
		t.Fatal(err)
	}
	// correlation: per-family floor raises low to medium.
	if _, ok := p.route("correlation", SeverityLow); ok {
		t.Fatal("low correlation should be below the per-family floor")
	}
	names, ok := p.route("correlation", SeverityHigh)
	if !ok || len(names) != 2 {
		t.Fatalf("correlation route = %v, %v", names, ok)
	}
	// data-type: disabled.
	if _, ok := p.route("data-type", SeverityHigh); ok {
		t.Fatal("disabled family routed")
	}
	// entry-name falls through to "*".
	names, ok = p.route("entry-name", SeverityLow)
	if !ok || len(names) != 1 || names[0] != "audit" {
		t.Fatalf("catch-all route = %v, %v", names, ok)
	}
}

func TestDefaultPolicyRoutesEverything(t *testing.T) {
	p := DefaultPolicy()
	names, ok := p.route("correlation", SeverityLow)
	if !ok || names != nil {
		t.Fatalf("default route = %v, %v; want all notifiers", names, ok)
	}
}

func TestParsePolicyMinimal(t *testing.T) {
	p, err := ParsePolicy([]byte("version: 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if p.QueueSize != DefaultQueueSize || p.RingSize != DefaultRingSize {
		t.Fatalf("defaults not applied: %+v", p)
	}
	if p.MinSeverity != SeverityLow || p.DedupWindow != 0 || p.RateLimit != 0 {
		t.Fatalf("defaults not applied: %+v", p)
	}
}

func TestParsePolicyErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"missing version", "queue_size: 4\n", "unsupported version"},
		{"wrong version", "version: 2\n", "unsupported version"},
		{"tab indent", "version: 1\n\tqueue_size: 4\n", "tab indentation"},
		{"unknown key", "version: 1\nqueue_sizes: 4\n", "unknown key"},
		{"bad severity", "version: 1\nmin_severity: urgent\n", "unknown severity"},
		{"bad duration", "version: 1\ndedup_window: fast\n", "expected a duration"},
		{"bad int", "version: 1\nqueue_size: many\n", "expected an integer"},
		{"zero queue", "version: 1\nqueue_size: 0\n", "queue_size must be positive"},
		{"negative rate", "version: 1\nrate_limit: -1\n", "rate_limit must be >= 0"},
		{"empty section", "version: 1\nnotifiers:\n", "missing value"},
		{"unknown notifier key", "version: 1\nnotifiers:\n  - name: x\n    type: slog\n    speed: fast\n", "unknown notifier key"},
		{"unknown notifier type", "version: 1\nnotifiers:\n  - name: x\n    type: pigeon\n", "unknown type"},
		{"file without path", "version: 1\nnotifiers:\n  - name: x\n    type: file\n", "missing path"},
		{"webhook without url", "version: 1\nnotifiers:\n  - name: x\n    type: webhook\n", "missing url"},
		{"duplicate notifier", "version: 1\nnotifiers:\n  - name: x\n    type: slog\n  - name: x\n    type: slog\n", "duplicate notifier"},
		{"rule without family", "version: 1\nrules:\n  - enabled: true\n", "missing family"},
		{"unknown rule key", "version: 1\nrules:\n  - family: correlation\n    color: red\n", "unknown rule key"},
		{"route to unknown notifier", "version: 1\nrules:\n  - family: correlation\n    notify: [ghost]\n", "unknown notifier"},
		{"bad enabled", "version: 1\nrules:\n  - family: correlation\n    enabled: maybe\n", "enabled must be true or false"},
		{"notify scalar", "version: 1\nrules:\n  - family: correlation\n    notify: ghost\n", "expected a list"},
		{"unterminated list", "version: 1\nrules:\n  - family: correlation\n    notify: [a, b\n", "unterminated flow list"},
		{"unterminated quote", "version: 1\nrules:\n  - family: \"corr\n", "unterminated quoted scalar"},
		{"top-level indent", "version: 1\n  queue_size: 4\n", "unexpected indentation"},
		{"not a sequence", "version: 1\nnotifiers:\n  name: x\n", "sequence item"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParsePolicy([]byte(c.doc))
			if err == nil {
				t.Fatalf("parse accepted invalid doc:\n%s", c.doc)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// TestParseExamplePolicyFile keeps the checked-in operator example valid:
// if the schema moves, the example must move with it.
func TestParseExamplePolicyFile(t *testing.T) {
	p, err := LoadPolicyFile("../../examples/alerts.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Notifiers) == 0 || len(p.Rules) == 0 {
		t.Fatalf("example policy should declare notifiers and rules: %+v", p)
	}
	hasWebhook := false
	for _, n := range p.Notifiers {
		if n.Type == "webhook" {
			hasWebhook = true
		}
	}
	if !hasWebhook {
		t.Fatal("example policy should include a webhook notifier")
	}
}

func TestStripComment(t *testing.T) {
	cases := []struct{ in, want string }{
		{"# whole line", ""},
		{"key: value # trailing", "key: value "},
		{`url: "http://x#frag"`, `url: "http://x#frag"`},
		{"key: a#b", "key: a#b"}, // '#' not preceded by space stays
	}
	for _, c := range cases {
		if got := stripComment(c.in); got != c.want {
			t.Errorf("stripComment(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
