package eval

import (
	"strings"
	"testing"
)

func TestThresholdSweepShape(t *testing.T) {
	points, err := ThresholdSweep("mysql", testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 15 {
		t.Fatalf("points = %d, want 15 (3 sweeps x 5)", len(points))
	}

	// Confidence sweep (first 5 points): loosening confidence never
	// reduces the rule yield; tightening never increases it.
	conf := points[:5]
	for i := 1; i < len(conf); i++ {
		if conf[i].Rules > conf[i-1].Rules {
			t.Errorf("confidence sweep not monotone: %+v then %+v", conf[i-1], conf[i])
		}
	}

	// Support sweep (next 5): same monotonicity.
	supp := points[5:10]
	for i := 1; i < len(supp); i++ {
		if supp[i].Rules > supp[i-1].Rules {
			t.Errorf("support sweep not monotone: %+v then %+v", supp[i-1], supp[i])
		}
	}

	// Entropy sweep (last 5): no filter yields the most rules with the
	// worst precision; the paper's Ht=0.325 should improve precision over
	// the unfiltered run.
	ent := points[10:15]
	unfiltered := ent[0]
	var atPaperHt *SweepPoint
	for i := range ent {
		if ent[i].Entropy == 0.325 {
			atPaperHt = &ent[i]
		}
	}
	if atPaperHt == nil {
		t.Fatal("paper threshold missing from sweep")
	}
	if unfiltered.Rules <= atPaperHt.Rules {
		t.Errorf("entropy filter should reduce yield: %d vs %d", unfiltered.Rules, atPaperHt.Rules)
	}
	if atPaperHt.Precision() <= unfiltered.Precision() {
		t.Errorf("entropy filter should improve precision: %.2f vs %.2f",
			atPaperHt.Precision(), unfiltered.Precision())
	}

	out := RenderSweep("mysql", points)
	if !strings.Contains(out, "precision") || !strings.Contains(out, "0.33") && !strings.Contains(out, "0.325") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestSweepPointPrecision(t *testing.T) {
	if (SweepPoint{}).Precision() != 0 {
		t.Fatal("empty point precision should be 0")
	}
	p := SweepPoint{Rules: 4, TrueRules: 3}
	if p.Precision() != 0.75 {
		t.Fatalf("precision = %v", p.Precision())
	}
}
