package inject

import (
	"strings"
	"testing"

	"repro/internal/confparse"
	"repro/internal/sysimage"
)

func testImage() *sysimage.Image {
	im := sysimage.New("victim")
	im.AddDir("/var/lib/mysql", "mysql", "mysql", 0o750)
	im.SetConfig("mysql", "/etc/my.cnf", strings.Join([]string{
		"[mysqld]",
		"datadir = /var/lib/mysql",
		"user = mysql",
		"port = 3306",
		"max_allowed_packet = 16M",
		"skip-external-locking",
		"key_buffer_size = 8M",
		"max_connections = 100",
		"log_error = /var/log/mysqld.log",
		"tmpdir = /tmp",
		"bind-address = 127.0.0.1",
		"table_open_cache = 64",
		"sort_buffer_size = 512K",
		"net_buffer_length = 8K",
		"read_buffer_size = 256K",
		"thread_cache_size = 8",
		"query_cache_size = 16M",
		"",
	}, "\n"))
	return im
}

func TestInjectIsDeterministic(t *testing.T) {
	a, b := testImage(), testImage()
	logA, errA := New(42).Inject(a, "mysql", 5)
	logB, errB := New(42).Inject(b, "mysql", 5)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if len(logA) != 5 || len(logB) != 5 {
		t.Fatalf("log sizes %d %d", len(logA), len(logB))
	}
	for i := range logA {
		if logA[i] != logB[i] {
			t.Fatalf("injection %d differs: %v vs %v", i, logA[i], logB[i])
		}
	}
	if a.ConfigFor("mysql").Content != b.ConfigFor("mysql").Content {
		t.Fatal("same seed must produce same config")
	}
}

func TestInjectChangesConfig(t *testing.T) {
	im := testImage()
	before := im.ConfigFor("mysql").Content
	log, err := New(7).Inject(im, "mysql", 8)
	if err != nil {
		t.Fatal(err)
	}
	after := im.ConfigFor("mysql").Content
	if before == after {
		t.Fatal("config unchanged")
	}
	if len(log) != 8 {
		t.Fatalf("log = %d", len(log))
	}
	// The mutated config must still parse.
	if _, err := confparse.Parse("mysql", "/etc/my.cnf", after); err != nil {
		t.Fatalf("mutated config unparsable: %v\n%s", err, after)
	}
}

func TestInjectionsHitDistinctEntries(t *testing.T) {
	im := testImage()
	log, err := New(3).Inject(im, "mysql", 10)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, inj := range log {
		if seen[inj.OrigAttr] {
			t.Fatalf("entry %s hit twice", inj.OrigAttr)
		}
		seen[inj.OrigAttr] = true
	}
}

func TestInjectErrors(t *testing.T) {
	im := testImage()
	if _, err := New(1).Inject(im, "apache", 1); err == nil {
		t.Fatal("missing app config should error")
	}
	small := sysimage.New("small")
	small.SetConfig("mysql", "/etc/my.cnf", "[mysqld]\nuser = mysql\n")
	if _, err := New(1).Inject(small, "mysql", 50); err == nil {
		t.Fatal("too many injections should error")
	}
	empty := sysimage.New("empty")
	empty.SetConfig("mysql", "/etc/my.cnf", "")
	if _, err := New(1).Inject(empty, "mysql", 1); err == nil {
		t.Fatal("empty config should error")
	}
}

func TestMatches(t *testing.T) {
	inj := Injection{Attr: "mysql:mysqld/datadir", OrigAttr: "mysql:mysqld/datadir"}
	for _, attr := range []string{
		"mysql:mysqld/datadir",
		"mysql:mysqld/datadir.owner",
		"mysql:mysqld/datadir/arg1",
	} {
		if !inj.Matches(attr) {
			t.Errorf("should match %s", attr)
		}
	}
	for _, attr := range []string{
		"mysql:mysqld/datadir2",
		"mysql:mysqld/user",
		"",
	} {
		if inj.Matches(attr) {
			t.Errorf("should not match %s", attr)
		}
	}
	// A renamed (typo) entry matches both old and new names.
	typo := Injection{Kind: KindNameTypo, Attr: "mysql:mysqld/datadri", OrigAttr: "mysql:mysqld/datadir"}
	if !typo.Matches("mysql:mysqld/datadri") || !typo.Matches("mysql:mysqld/datadir") {
		t.Fatal("typo should match both names")
	}
}

func TestTypoAlwaysChanges(t *testing.T) {
	in := New(11)
	for i := 0; i < 200; i++ {
		s := "datadir"
		got := in.typo(s)
		if got == "" {
			t.Fatal("typo produced empty string")
		}
	}
	if in.typo("") != "x" {
		t.Fatal("typo of empty should produce something")
	}
}

func TestFlipBool(t *testing.T) {
	pairs := map[string]string{"on": "Off", "off": "On", "true": "false", "yes": "no", "1": "0", "0": "1"}
	for in, want := range pairs {
		if got := flipBool(in); got != want {
			t.Errorf("flip(%q) = %q, want %q", in, got, want)
		}
	}
	if flipBool("weird") != "weird" {
		t.Error("unknown word should pass through")
	}
}

func TestErrorModelDistribution(t *testing.T) {
	// Across many seeds, several distinct error kinds must appear — the
	// campaign should not degenerate to one model.
	kinds := map[Kind]bool{}
	for seed := int64(0); seed < 30; seed++ {
		im := testImage()
		log, err := New(seed).Inject(im, "mysql", 6)
		if err != nil {
			t.Fatal(err)
		}
		for _, inj := range log {
			kinds[inj.Kind] = true
		}
	}
	if len(kinds) < 5 {
		t.Fatalf("only %d error kinds observed: %v", len(kinds), kinds)
	}
}

func TestInjectionStringAndLog(t *testing.T) {
	im := testImage()
	log, err := New(5).Inject(im, "mysql", 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, inj := range log {
		s := inj.String()
		if !strings.Contains(s, string(inj.Kind)) || !strings.Contains(s, inj.OrigAttr) {
			t.Fatalf("String() = %q", s)
		}
	}
}
