#!/bin/sh
# End-to-end smoke of the resident scan daemon: build a stamped binary,
# preload a compiled plan, boot a local webhook sink and an alerting
# policy routed at it, boot the daemon on a random port, scan a
# deliberately misconfigured image over HTTP, assert findings, per-app
# metrics labels, and delivered alerts (webhook JSONL with request-ID and
# plan-version provenance, /v1/alerts ring, encore_alerts_total), hot-swap
# a plan upload, then SIGTERM and require exit 0.
set -eu

GO=${GO:-go}
VERSION=${VERSION:-smoke}
DIR=${TMPDIR:-/tmp}/encore-serve-smoke
rm -rf "$DIR" && mkdir -p "$DIR/plans"

cleanup() {
    [ -n "${DAEMON_PID:-}" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
    [ -n "${SINK_PID:-}" ] && kill -9 "$SINK_PID" 2>/dev/null || true
}
trap cleanup EXIT

echo "serve-smoke: building stamped binary"
$GO build -ldflags "-X main.version=$VERSION" -o "$DIR/encore" ./cmd/encore
"$DIR/encore" version | grep -q "encore $VERSION"

echo "serve-smoke: booting webhook alert sink"
$GO build -o "$DIR/alertsink" ./cmd/alertsink
"$DIR/alertsink" -addr 127.0.0.1:0 -addr-file "$DIR/sink-addr" -out "$DIR/sink.jsonl" &
SINK_PID=$!
for _ in $(seq 1 100); do
    [ -s "$DIR/sink-addr" ] && break
    kill -0 "$SINK_PID" 2>/dev/null || { echo "serve-smoke: alertsink died during boot"; exit 1; }
    sleep 0.1
done
[ -s "$DIR/sink-addr" ] || { echo "serve-smoke: alertsink never wrote addr-file"; exit 1; }
SINK="http://$(cat "$DIR/sink-addr" | tr -d '[:space:]')/hook"

cat > "$DIR/alerts.yaml" <<EOF
version: 1
notifiers:
  - name: hook
    type: webhook
    url: $SINK
    timeout: 2s
    retries: 2
    backoff: 100ms
  - name: audit
    type: file
    path: $DIR/alerts.jsonl
rules:
  - family: "*"
    notify: [hook, audit]
EOF

echo "serve-smoke: generating corpus + misconfigured victim"
$GO run ./cmd/imagegen -app mysql -n 10 -seed 7 -out "$DIR/training" >/dev/null
$GO run ./cmd/imagegen -app mysql -n 1 -seed 303 -out "$DIR/victim" >/dev/null
VICTIM=$(ls "$DIR"/victim/*.json | head -1)
$GO run ./cmd/confinject -image "$VICTIM" -app mysql -n 8 -seed 4 -out "$DIR/broken.json" >/dev/null
"$DIR/encore" compile -training "$DIR/training" -plan-out "$DIR/plans/mysql.plan" >/dev/null

echo "serve-smoke: booting daemon"
"$DIR/encore" serve -addr 127.0.0.1:0 -addr-file "$DIR/addr" -plans "$DIR/plans" \
    -alerts "$DIR/alerts.yaml" \
    -shutdown-timeout 5s -stats-json "$DIR/stats.json" -log-level warn &
DAEMON_PID=$!

for _ in $(seq 1 100); do
    [ -s "$DIR/addr" ] && break
    kill -0 "$DAEMON_PID" 2>/dev/null || { echo "serve-smoke: daemon died during boot"; exit 1; }
    sleep 0.1
done
[ -s "$DIR/addr" ] || { echo "serve-smoke: daemon never wrote addr-file"; exit 1; }
BASE="http://$(cat "$DIR/addr" | tr -d '[:space:]')"
echo "serve-smoke: daemon at $BASE"

curl -fsS "$BASE/readyz" | grep -q '"ready"'
curl -fsS "$BASE/healthz" | grep -q '"ok"'

echo "serve-smoke: scanning misconfigured image"
curl -fsS -X POST -H 'X-Request-Id: smoke-trace-1' \
    --data-binary @"$DIR/broken.json" "$BASE/v1/scan/mysql" > "$DIR/scan.json"
grep -q '"planVersion":"v1"' "$DIR/scan.json"
grep -q '"requestId":"smoke-trace-1"' "$DIR/scan.json"
grep -q '"warnings"' "$DIR/scan.json"
grep -q '"findings":0' "$DIR/scan.json" && { echo "serve-smoke: no findings on injected image"; exit 1; }

echo "serve-smoke: waiting for webhook alert delivery"
for _ in $(seq 1 100); do
    grep -q '"requestId":"smoke-trace-1"' "$DIR/sink.jsonl" 2>/dev/null && break
    sleep 0.1
done
grep -q '"requestId":"smoke-trace-1"' "$DIR/sink.jsonl" || { echo "serve-smoke: webhook never received the alert"; exit 1; }
grep -q '"planVersion":"v1"' "$DIR/sink.jsonl"
grep -q '"severity"' "$DIR/sink.jsonl"
grep -q '"app":"mysql"' "$DIR/sink.jsonl"
grep -q '"requestId":"smoke-trace-1"' "$DIR/alerts.jsonl" || { echo "serve-smoke: file notifier missed the alert"; exit 1; }

echo "serve-smoke: checking recent-alert ring"
curl -fsS "$BASE/v1/alerts" > "$DIR/alerts-ring.json"
grep -q '"enabled":true' "$DIR/alerts-ring.json"
grep -q '"requestId":"smoke-trace-1"' "$DIR/alerts-ring.json"
grep -q '"planVersion":"v1"' "$DIR/alerts-ring.json"
grep -q '"notifier":"hook"' "$DIR/alerts-ring.json"
grep -q '"outcome":"ok"' "$DIR/alerts-ring.json"

echo "serve-smoke: checking per-app metrics"
curl -fsS "$BASE/metrics" > "$DIR/metrics.prom"
grep -q 'encore_serve_requests_total{app="mysql",code="200"} 1' "$DIR/metrics.prom"
grep -q 'encore_serve_scan_seconds_count{app="mysql"} 1' "$DIR/metrics.prom"
grep -q 'encore_serve_findings_total{app="mysql",severity=' "$DIR/metrics.prom"
grep -q 'encore_serve_plans_loaded 1' "$DIR/metrics.prom"
grep -q "encore_build_info{go_version=\"go.*\",version=\"$VERSION\"} 1" "$DIR/metrics.prom"
grep -q 'encore_alerts_total{notifier="hook",outcome="ok",severity=' "$DIR/metrics.prom"
grep -q 'encore_alerts_total{notifier="audit",outcome="ok",severity=' "$DIR/metrics.prom"
grep -q 'encore_alert_delivery_seconds_count{notifier="hook"}' "$DIR/metrics.prom"

echo "serve-smoke: hot-swapping plan upload"
curl -fsS -X POST --data-binary @"$DIR/plans/mysql.plan" "$BASE/v1/profiles/mysql" > "$DIR/upload.json"
grep -q '"version":"v2"' "$DIR/upload.json"
curl -fsS "$BASE/v1/status" > "$DIR/status.json"
grep -q '"version":"v2"' "$DIR/status.json"
grep -q '"swaps":2' "$DIR/status.json"

echo "serve-smoke: graceful shutdown"
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || { echo "serve-smoke: daemon exited non-zero"; exit 1; }
DAEMON_PID=""
grep -q '"phase": "done"' "$DIR/stats.json"
grep -q 'encore_serve_requests_total' "$DIR/stats.json"
grep -q 'encore_alerts_total' "$DIR/stats.json"

kill -TERM "$SINK_PID"
wait "$SINK_PID" || { echo "serve-smoke: alertsink exited non-zero"; exit 1; }
SINK_PID=""

echo "serve-smoke: daemon lifecycle OK"
