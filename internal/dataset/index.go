// Columnar index: a per-attribute snapshot of the dataset with presence
// bitsets and memoized statistics.
//
// The assembled table is row-oriented (one map of cells per system image),
// which is the natural shape for assembly but the wrong shape for rule
// inference: the engine asks column questions — "in how many systems do A
// and B co-occur?", "what is the entropy of A?" — thousands of times per
// run. The Index answers those in O(rows/64) and O(1) respectively:
//
//   - each attribute gets a presence bitset ([]uint64, one bit per row), so
//     candidate support is popcount(bitsA AND bitsB);
//   - each attribute's per-row instance slices are laid out in a dense
//     column, so validation sweeps index a slice instead of hashing into
//     every row's cell map;
//   - entropy, cardinality, presence, and total instance counts are
//     computed once per snapshot and served from the cache.
//
// The snapshot is invalidated (not updated in place) by the row mutators
// Add and NewRow, and lazily rebuilt on the next access; DeclareAttr keeps
// it (a cell-less column is indistinguishable from an unknown one), and
// the batch mutators AddRows/RetireRows replace it with a copy-on-write
// delta snapshot (see delta.go) instead of discarding it. A caller must
// not retain an *Index across mutations; re-fetch it with Dataset.Index
// instead. Snapshot access is safe for concurrent readers (the scan
// engine's workers and the rule engine's candidate pool both read it in
// parallel).
package dataset

import (
	"math"
	"math/bits"
)

// colStats is the columnar view of one attribute.
type colStats struct {
	// bits is the presence bitset: bit r is set iff Rows[r] has at least
	// one instance of the attribute.
	bits []uint64
	// rowVals holds each row's instance slice (nil for absent rows). The
	// slices alias the row storage; the snapshot is discarded on mutation.
	rowVals [][]string
	// present is popcount(bits): the number of rows with the attribute.
	present int
	// instances is the total instance count across all rows.
	instances int
	// entropy is the Shannon entropy of the value distribution.
	entropy float64
	// card is the number of distinct instance values.
	card int
}

// Index is an immutable columnar snapshot of a dataset. Obtain one with
// Dataset.Index; all methods are safe for concurrent use.
type Index struct {
	rows  int
	words int
	cols  map[string]*colStats
}

// emptyCol is returned for attributes the snapshot does not know, so
// lookups on undeclared names behave like an all-absent column.
var emptyCol = &colStats{}

func (ix *Index) col(attr string) *colStats {
	if c, ok := ix.cols[attr]; ok {
		return c
	}
	return emptyCol
}

// Rows returns the number of rows the snapshot covers.
func (ix *Index) Rows() int { return ix.rows }

// Present returns the number of rows in which the attribute appears.
func (ix *Index) Present(attr string) int { return ix.col(attr).present }

// Instances returns the total instance count of the attribute.
func (ix *Index) Instances(attr string) int { return ix.col(attr).instances }

// Entropy returns the memoized Shannon entropy of the attribute's value
// distribution.
func (ix *Index) Entropy(attr string) float64 { return ix.col(attr).entropy }

// Cardinality returns the memoized distinct-value count.
func (ix *Index) Cardinality(attr string) int { return ix.col(attr).card }

// PresenceBits returns the attribute's presence bitset (bit r set iff row
// r has the attribute). The returned slice is shared and must be treated
// as read-only; it is nil for unknown attributes.
func (ix *Index) PresenceBits(attr string) []uint64 { return ix.col(attr).bits }

// RowValues returns the attribute's column: one instance slice per row
// (nil for rows where the attribute is absent). Shared storage — read
// only. It is nil for unknown attributes.
func (ix *Index) RowValues(attr string) [][]string { return ix.col(attr).rowVals }

// CoSupport returns the number of rows in which both attributes appear:
// popcount(bitsA AND bitsB), O(rows/64).
func (ix *Index) CoSupport(attrA, attrB string) int {
	ba, bb := ix.col(attrA).bits, ix.col(attrB).bits
	// Delta snapshots (see delta.go) share untouched columns whose bitsets
	// still have the pre-delta length; the missing high words are implicit
	// zeros, so the sweep stops at the shorter set.
	if len(bb) < len(ba) {
		ba = ba[:len(bb)]
	}
	n := 0
	for i, w := range ba {
		n += bits.OnesCount64(w & bb[i])
	}
	return n
}

// buildIndex scans the table once and assembles the columnar snapshot.
func buildIndex(d *Dataset) *Index {
	rows := len(d.Rows)
	words := (rows + 63) / 64
	ix := &Index{rows: rows, words: words, cols: make(map[string]*colStats, len(d.attrs))}
	newCol := func() *colStats {
		return &colStats{bits: make([]uint64, words), rowVals: make([][]string, rows)}
	}
	for _, a := range d.attrs {
		ix.cols[a.Name] = newCol()
	}
	for r, row := range d.Rows {
		for name, vs := range row.Cells {
			if len(vs) == 0 {
				continue
			}
			c, ok := ix.cols[name]
			if !ok {
				// Cells can only gain attributes through Add, which
				// declares the column; tolerate hand-built rows anyway.
				c = newCol()
				ix.cols[name] = c
			}
			c.bits[r>>6] |= 1 << (r & 63)
			c.rowVals[r] = vs
			c.present++
			c.instances += len(vs)
		}
	}
	for _, c := range ix.cols {
		c.entropy, c.card = entropyAndCardinality(c.rowVals, c.instances)
	}
	return ix
}

// entropyAndCardinality computes the Shannon entropy (natural log) and
// distinct-value count of a column. Values are accumulated in first-
// appearance order so the floating-point sum — unlike one over Go's
// randomized map iteration — is identical on every run.
func entropyAndCardinality(rowVals [][]string, instances int) (float64, int) {
	if instances == 0 {
		return 0, 0
	}
	counts := make(map[string]int, instances)
	order := make([]string, 0, instances)
	for _, vs := range rowVals {
		for _, v := range vs {
			if counts[v] == 0 {
				order = append(order, v)
			}
			counts[v]++
		}
	}
	h := 0.0
	total := float64(instances)
	for _, v := range order {
		p := float64(counts[v]) / total
		h -= p * math.Log(p)
	}
	return h, len(order)
}
