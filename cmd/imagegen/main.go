// Command imagegen generates synthetic system-image corpora (the EC2 and
// private-cloud stand-ins) as JSON snapshots, one image per file.
//
// Usage:
//
//	imagegen -app mysql -n 187 -seed 1 -out ./images/mysql
//	imagegen -population ec2 -seed 1 -out ./images/ec2
//	imagegen -population private-cloud -seed 2 -out ./images/pc
//
// Population mode also writes a ground-truth file (truth.txt) listing the
// latent misconfigurations planted in the population.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/corpus"
	"repro/internal/sysimage"
)

func main() {
	app := flag.String("app", "", "generate clean training images for this app (apache, mysql, php, sshd)")
	n := flag.Int("n", 50, "number of images (app mode)")
	population := flag.String("population", "", "generate a target population: ec2 or private-cloud")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "", "output directory")
	flag.Parse()

	if *out == "" || (*app == "") == (*population == "") {
		fmt.Fprintln(os.Stderr, "usage: imagegen (-app NAME -n N | -population ec2|private-cloud) -seed S -out DIR")
		os.Exit(2)
	}
	if err := run(*app, *population, *n, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "imagegen:", err)
		os.Exit(1)
	}
}

func run(app, population string, n int, seed int64, out string) error {
	var images []*sysimage.Image
	var truth []corpus.Latent
	switch {
	case app != "":
		var err error
		images, err = corpus.Training(app, n, seed)
		if err != nil {
			return err
		}
	case population == "ec2":
		pop, err := corpus.EC2Targets(seed)
		if err != nil {
			return err
		}
		images, truth = pop.Images, pop.Truth
	case population == "private-cloud":
		pop, err := corpus.PrivateCloudTargets(seed)
		if err != nil {
			return err
		}
		images, truth = pop.Images, pop.Truth
	default:
		return fmt.Errorf("unknown population %q", population)
	}
	if err := sysimage.SaveDir(out, images); err != nil {
		return err
	}
	fmt.Printf("wrote %d images to %s\n", len(images), out)
	if len(truth) > 0 {
		var b []byte
		for _, l := range truth {
			b = append(b, fmt.Sprintf("%s\t%s\t%s\t%s\n", l.ImageID, l.Category, l.Attr, l.Desc)...)
		}
		name := filepath.Join(out, "truth.txt")
		if err := os.WriteFile(name, b, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %d planted issues to %s\n", len(truth), name)
	}
	return nil
}
