// The Figure 1(a) scenario: PHP's extension_dir should name a directory.
// Its value varies widely across healthy systems, so value comparison
// learns nothing — but the *environment* knows whether the path is a
// directory, and every healthy system agrees on that fact.
//
//	go run ./examples/php-extension-dir
package main

import (
	"fmt"
	"log"

	encore "repro"
	"repro/internal/corpus"
)

func main() {
	training, err := corpus.Training("php", 80, 5)
	if err != nil {
		log.Fatal(err)
	}
	fw := encore.New()
	knowledge, err := fw.Learn(training)
	if err != nil {
		log.Fatal(err)
	}
	if t, ok := knowledge.TypeOf("php:PHP/extension_dir"); ok {
		fmt.Printf("extension_dir inferred as %s (verified against each image's file system)\n", t)
	}

	// Case 2 of the real-world study: extension_dir points at a regular
	// file (a stray .so) instead of the modules directory.
	fileTarget := corpus.RealWorldCases()[1].Build()
	report, err := fw.Check(knowledge, fileTarget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntarget A: extension_dir points at a regular file\n")
	for _, w := range report.Warnings {
		fmt.Printf("%3d. [%-16s] %s\n", w.Rank, w.Kind, w.Message)
	}

	// Case 5: extension_dir points at a location that does not exist.
	missingTarget := corpus.RealWorldCases()[4].Build()
	report, err = fw.Check(knowledge, missingTarget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntarget B: extension_dir points at a missing location\n")
	for _, w := range report.Warnings {
		fmt.Printf("%3d. [%-16s] %s\n", w.Rank, w.Kind, w.Message)
	}
}
