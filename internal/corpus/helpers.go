package corpus

import (
	"errors"
	"strings"

	"repro/internal/confparse"
	"repro/internal/sysimage"
)

var errMissingEntry = errors.New("corpus: entry not found in configuration")

// findConfValue parses the app's configuration inside the image and
// returns the first value of the entry with the given key.
func findConfValue(img *sysimage.Image, app, key string) (string, bool) {
	cf := img.ConfigFor(app)
	if cf == nil {
		return "", false
	}
	f, err := confparse.Parse(app, cf.Path, cf.Content)
	if err != nil {
		return "", false
	}
	es := f.FindKey(key)
	if len(es) == 0 || len(es[0].Values) == 0 {
		return "", false
	}
	return es[0].Values[0], true
}

// confValueAt parses raw configuration content and returns the argument at
// argIdx (0-based) of the first entry with the given key.
func confValueAt(content, app, path, key string, argIdx int) (string, error) {
	f, err := confparse.Parse(app, path, content)
	if err != nil {
		return "", err
	}
	es := f.FindKey(key)
	if len(es) == 0 || len(es[0].Values) <= argIdx {
		return "", errMissingEntry
	}
	return es[0].Values[argIdx], nil
}

// replaceValue substitutes the first occurrence of old with new in a raw
// configuration text.
func replaceValue(content, old, new string) string {
	return strings.Replace(content, old, new, 1)
}

// replaceLine replaces the whole line whose trimmed text starts with
// prefix (followed by a separator) with the replacement line.
func replaceLine(content, prefix, replacement string) string {
	lines := strings.Split(content, "\n")
	for i, line := range lines {
		t := strings.TrimSpace(line)
		if strings.HasPrefix(t, prefix) {
			rest := t[len(prefix):]
			if rest == "" || rest[0] == ' ' || rest[0] == '=' || rest[0] == '\t' {
				lines[i] = replacement
				break
			}
		}
	}
	return strings.Join(lines, "\n")
}

// removeLine deletes the first line whose trimmed text starts with prefix.
func removeLine(content, prefix string) string {
	lines := strings.Split(content, "\n")
	for i, line := range lines {
		if strings.HasPrefix(strings.TrimSpace(line), prefix) {
			return strings.Join(append(lines[:i:i], lines[i+1:]...), "\n")
		}
	}
	return content
}
