package telemetry

import "time"

// Attr is one key/value annotation on a span (image name, worker id, app,
// rule key, ...).
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// A builds an attribute; it keeps span-creation call sites short.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// Span is one in-flight timed operation. Spans form a tree: StartSpan
// opens a root, StartChild opens a child under any live span, End closes
// the span and files it with the recorder. A span is owned by the
// goroutine that started it (SetAttr and End are not synchronized), but
// StartChild may be called from any goroutine — pool workers routinely
// open children under a parent started by the coordinating goroutine.
// Every method is safe on a nil span, so instrumented code can hold the
// result of a nil recorder's StartSpan and call through it freely.
type Span struct {
	r      *Recorder
	id     int64
	parent int64
	name   string
	attrs  []Attr
	start  time.Duration // offset from the recorder's epoch
	began  time.Time
}

// SpanData is one completed span in a snapshot. Start is the offset from
// the recorder's creation, which makes exported timelines self-contained.
type SpanData struct {
	ID     int64
	Parent int64 // 0 for root spans
	Name   string
	Attrs  []Attr
	Start  time.Duration
	Dur    time.Duration
}

// StartSpan opens a root span. Safe on a nil recorder (returns a nil
// span, whose methods are all no-ops).
func (r *Recorder) StartSpan(name string, attrs ...Attr) *Span {
	return r.startSpan(name, 0, attrs)
}

func (r *Recorder) startSpan(name string, parent int64, attrs []Attr) *Span {
	if r == nil {
		return nil
	}
	now := time.Now()
	return &Span{
		r:      r,
		id:     r.spanID.Add(1),
		parent: parent,
		name:   name,
		attrs:  attrs,
		start:  now.Sub(r.epoch),
		began:  now,
	}
}

// ID returns the span's identifier (0 on a nil span), the value exported
// snapshots and span-correlated log records carry.
func (s *Span) ID() int64 {
	if s == nil {
		return 0
	}
	return s.id
}

// StartChild opens a child span under s. Safe on a nil span.
func (s *Span) StartChild(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.r.startSpan(name, s.id, attrs)
}

// SetAttr appends an annotation to a live span (e.g. a result count known
// only at the end of the work). Safe on a nil span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End closes the span and records it. Safe on a nil span. Ending a span
// twice records it twice; don't.
func (s *Span) End() {
	if s == nil {
		return
	}
	data := SpanData{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Attrs:  s.attrs,
		Start:  s.start,
		Dur:    time.Since(s.began),
	}
	s.r.mu.Lock()
	s.r.spans = append(s.r.spans, data)
	// A capped recorder (resident daemons, see SetSpanCap) sheds the
	// oldest half in one bulk move once the store overflows, so span
	// retention is bounded while recent requests stay inspectable.
	if s.r.spanCap > 0 && len(s.r.spans) > s.r.spanCap {
		keep := s.r.spanCap / 2
		if keep < 1 {
			keep = 1
		}
		n := copy(s.r.spans, s.r.spans[len(s.r.spans)-keep:])
		s.r.spans = s.r.spans[:n]
	}
	s.r.mu.Unlock()
}
