package corpus

import (
	"fmt"
	"strings"

	"repro/internal/conftypes"
)

// SSHDOptions tunes sshd image generation.
type SSHDOptions struct {
	Hardware bool
}

// BuildSSHD generates one coherent sshd image (sshd is part of the Table 1
// study but not of the paper's detection evaluation; it is included so the
// full study reproduces).
func (b *Builder) BuildSSHD(opts SSHDOptions) {
	b.SetOS()
	if opts.Hardware {
		b.SetHardware()
	}
	img := b.Img
	rng := b.Rng

	b.AddAccount("sshd", 74)
	img.AddDir("/var/empty/sshd", "root", "root", 0o711)
	img.AddRegular("/etc/ssh/sshd_config", "root", "root", 0o600, 3000)
	img.AddRegular("/usr/lib/openssh/sftp-server", "root", "root", 0o755, 65536)
	hostKey := "/etc/ssh/ssh_host_rsa_key"
	img.AddRegular(hostKey, "root", "root", 0o600, 1679)

	port := PickWeighted(rng, []string{"22", "2222"}, []int{9, 1})
	permitRoot := PickWeighted(rng, []string{"no", "without-password", "yes"}, []int{6, 3, 1})
	passAuth := PickWeighted(rng, []string{"yes", "no"}, []int{5, 5})
	x11 := PickWeighted(rng, []string{"yes", "no"}, []int{4, 6})
	maxAuth := Pick(rng, []string{"4", "6"})
	loginGrace := Pick(rng, []string{"60", "120"})

	var sb strings.Builder
	fmt.Fprintf(&sb, "Port %s\n", port)
	fmt.Fprintf(&sb, "Protocol 2\n")
	fmt.Fprintf(&sb, "HostKey %s\n", hostKey)
	fmt.Fprintf(&sb, "PermitRootLogin %s\n", permitRoot)
	fmt.Fprintf(&sb, "PasswordAuthentication %s\n", passAuth)
	fmt.Fprintf(&sb, "X11Forwarding %s\n", x11)
	fmt.Fprintf(&sb, "MaxAuthTries %s\n", maxAuth)
	fmt.Fprintf(&sb, "LoginGraceTime %s\n", loginGrace)
	fmt.Fprintf(&sb, "AuthorizedKeysFile .ssh/authorized_keys\n")
	fmt.Fprintf(&sb, "Subsystem sftp /usr/lib/openssh/sftp-server\n")
	fmt.Fprintf(&sb, "ChrootDirectory /var/empty/sshd\n")
	fmt.Fprintf(&sb, "UsePrivilegeSeparation yes\n")

	img.SetConfig("sshd", "/etc/ssh/sshd_config", sb.String())
}

// SSHDEntryTypes is the ground-truth semantic type of each sshd attribute.
func SSHDEntryTypes() map[string]conftypes.Type {
	return map[string]conftypes.Type{
		"sshd:Port":                   conftypes.TypePortNumber,
		"sshd:Protocol":               conftypes.TypeNumber,
		"sshd:HostKey":                conftypes.TypeFilePath,
		"sshd:PermitRootLogin":        conftypes.TypeString,
		"sshd:PasswordAuthentication": conftypes.TypeBoolean,
		"sshd:X11Forwarding":          conftypes.TypeBoolean,
		"sshd:MaxAuthTries":           conftypes.TypeNumber,
		"sshd:LoginGraceTime":         conftypes.TypeNumber,
		"sshd:AuthorizedKeysFile":     conftypes.TypePartialFilePath,
		"sshd:Subsystem/arg1":         conftypes.TypeString,
		"sshd:Subsystem/arg2":         conftypes.TypeFilePath,
		"sshd:ChrootDirectory":        conftypes.TypeFilePath,
		"sshd:UsePrivilegeSeparation": conftypes.TypeBoolean,
	}
}
