package eval

import (
	"strings"
	"testing"
)

func TestExtensionEnvInjectionShape(t *testing.T) {
	rows, err := ExtensionEnvInjection(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Total != EnvInjectionsPerApp {
			t.Errorf("%s: total = %d", r.App, r.Total)
		}
		// The structural claim: a pure value-comparison detector cannot
		// see environment errors (the config file is untouched), while
		// environment-aware detectors can.
		if r.Baseline != 0 {
			t.Errorf("%s: pure baseline detected %d environment errors (should be structurally blind)", r.App, r.Baseline)
		}
		if r.EnCore < r.BaselineEnv {
			t.Errorf("%s: EnCore %d below Baseline+Env %d", r.App, r.EnCore, r.BaselineEnv)
		}
		if r.EnCore < r.Total*3/5 {
			t.Errorf("%s: EnCore detected only %d of %d environment errors", r.App, r.EnCore, r.Total)
		}
	}
	out := RenderEnvInjection(rows)
	if !strings.Contains(out, "environment-error injection") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestExtensionCrossComponentShape(t *testing.T) {
	res, err := ExtensionCrossComponent(40, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if res.CrossRules == 0 {
		t.Fatal("no cross-component rules learned")
	}
	if res.TrueCross == 0 {
		t.Fatal("no ground-truth cross-component rules learned")
	}
	if res.SocketRank == 0 || res.SocketRank > 5 {
		t.Errorf("stale-socket failure rank = %d (want top 5)", res.SocketRank)
	}
	if res.SessionRank == 0 || res.SessionRank > 5 {
		t.Errorf("session-owner failure rank = %d (want top 5)", res.SessionRank)
	}
	out := RenderCrossComponent(res)
	if !strings.Contains(out, "LAMP") {
		t.Fatalf("render:\n%s", out)
	}
}
