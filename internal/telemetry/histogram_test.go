package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries pins the bucket edges: bucket i holds samples in
// (upper(i-1), upper(i)], zero and negative samples land in bucket 0, and
// anything past the last boundary lands in the overflow bucket.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-time.Second, 0},
		{0, 0},
		{time.Nanosecond, 0},
		{time.Microsecond, 0},                   // exactly upper(0): inclusive
		{time.Microsecond + time.Nanosecond, 1}, // one past upper(0)
		{2 * time.Microsecond, 1},
		{2*time.Microsecond + time.Nanosecond, 2},
		{time.Millisecond, 10}, // 1024µs bound is upper(10)
		{time.Second, 20},      // 1048576µs bound is upper(20)
		{bucketUpper(histBuckets - 1), histBuckets - 1},
		{bucketUpper(histBuckets-1) + time.Nanosecond, histBuckets},
		{time.Duration(math.MaxInt64), histBuckets},
	}
	for _, c := range cases {
		if got := bucketFor(c.d); got != c.want {
			t.Errorf("bucketFor(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	for i := 1; i < histBuckets; i++ {
		if bucketUpper(i) != 2*bucketUpper(i-1) {
			t.Fatalf("bucket %d bound %v is not double bucket %d bound %v",
				i, bucketUpper(i), i-1, bucketUpper(i-1))
		}
	}
	if bucketUpper(histBuckets) != time.Duration(math.MaxInt64) {
		t.Fatal("overflow bucket should report the maximum Duration bound")
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should read all zeros")
	}
	h.Observe(5 * time.Millisecond)
	if h.Count() != 1 || h.Sum() != 5*time.Millisecond {
		t.Fatalf("count/sum = %d/%v", h.Count(), h.Sum())
	}
	// A single sample is every quantile, including out-of-range q.
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := h.Quantile(q); got != 5*time.Millisecond {
			t.Fatalf("Quantile(%v) = %v, want 5ms", q, got)
		}
	}
	h.Observe(time.Millisecond)
	h.Observe(20 * time.Millisecond)
	if h.Min() != time.Millisecond || h.Max() != 20*time.Millisecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if got := h.Quantile(1); got != 20*time.Millisecond {
		t.Fatalf("Quantile(1) = %v, want the max", got)
	}
}

// TestQuantileOracle checks the estimator against a sorted-sample oracle on
// randomized inputs: for each q the estimate must fall inside the bucket
// that holds the true nearest-rank sample quantile, clipped to the observed
// range — the resolution guarantee log-bucketing promises.
func TestQuantileOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(400)
		samples := make([]time.Duration, n)
		var h Histogram
		for i := range samples {
			// Log-uniform over ~100ns .. ~1000s, crossing many buckets.
			d := time.Duration(100 * math.Pow(10, rng.Float64()*10))
			samples[i] = d
			h.Observe(d)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			rank := int(math.Ceil(q * float64(n)))
			if rank < 1 {
				rank = 1
			}
			truth := samples[rank-1]
			b := bucketFor(truth)
			lo := time.Duration(0)
			if b > 0 {
				lo = bucketUpper(b - 1)
			}
			hi := bucketUpper(b)
			if hi > h.Max() {
				hi = h.Max()
			}
			got := h.Quantile(q)
			if got < lo || got > hi {
				t.Fatalf("trial %d n=%d q=%v: estimate %v outside bucket [%v, %v] of true quantile %v",
					trial, n, q, got, lo, hi, truth)
			}
			if got <= 0 {
				t.Fatalf("trial %d q=%v: estimate %v not positive for positive samples", trial, q, got)
			}
		}
	}
}

// TestMergeEquivalence checks the property that makes per-worker local
// histograms sound: merging k shards is identical to observing every
// sample into one histogram, regardless of how samples were distributed.
func TestMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const workers = 5
	var whole Histogram
	shards := make([]Histogram, workers)
	for i := 0; i < 3000; i++ {
		d := time.Duration(rng.Int63n(int64(10 * time.Second)))
		whole.Observe(d)
		shards[rng.Intn(workers)].Observe(d)
	}
	var merged Histogram
	for i := range shards {
		merged.Merge(&shards[i])
	}
	if merged != whole {
		t.Fatalf("merged shards differ from the single histogram:\nmerged = %+v\nwhole  = %+v", merged, whole)
	}
	// Merging a nil or empty histogram is a no-op.
	merged.Merge(nil)
	merged.Merge(&Histogram{})
	if merged != whole {
		t.Fatal("merging nil/empty histograms changed the result")
	}
}

// TestMergeHistogramConcurrent drives the worker-local-then-merge pattern
// used by the rule engine under the race detector: concurrent goroutines
// each fold a private histogram into the recorder, and the result must
// equal a serial reference.
func TestMergeHistogramConcurrent(t *testing.T) {
	const workers, perWorker = 8, 500
	rec := New()
	var ref Histogram
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			ref.Observe(time.Duration(w*perWorker+i) * time.Microsecond)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local Histogram
			for i := 0; i < perWorker; i++ {
				local.Observe(time.Duration(w*perWorker+i) * time.Microsecond)
			}
			rec.MergeHistogram(HistRuleValidate, &local)
		}(w)
	}
	wg.Wait()
	snap := rec.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %d, want 1", len(snap.Histograms))
	}
	got := snap.Histograms[0]
	want := ref.data(HistRuleValidate)
	if got.Count != want.Count || got.Sum != want.Sum || got.Min != want.Min || got.Max != want.Max {
		t.Fatalf("summary mismatch:\ngot  = %+v\nwant = %+v", got, want)
	}
	if got.P50 != want.P50 || got.P90 != want.P90 || got.P99 != want.P99 {
		t.Fatalf("quantile mismatch:\ngot  = %+v\nwant = %+v", got, want)
	}
	if len(got.Buckets) != len(want.Buckets) {
		t.Fatalf("bucket count mismatch: %d vs %d", len(got.Buckets), len(want.Buckets))
	}
	for i := range got.Buckets {
		if got.Buckets[i] != want.Buckets[i] {
			t.Fatalf("bucket %d mismatch: %+v vs %+v", i, got.Buckets[i], want.Buckets[i])
		}
	}
}

// TestObserveDurNilSafe extends the recorder nil-safety guarantee to the
// histogram entry points.
func TestObserveDurNilSafe(t *testing.T) {
	var r *Recorder
	r.ObserveDur(HistImageScan, time.Second)
	var h Histogram
	h.Observe(time.Second)
	r.MergeHistogram(HistImageScan, &h)
	if s := r.Snapshot(); len(s.Histograms) != 0 {
		t.Fatal("nil recorder accumulated histogram data")
	}
}
