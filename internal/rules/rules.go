// Package rules implements EnCore's template-guided rule inference
// (Section 5, Figure 5): for each template, find the attributes eligible by
// semantic type, instantiate every candidate pair, validate each candidate
// against every training system, and keep the candidates that pass the
// support, confidence, and entropy filters.
//
// Instantiation of one candidate is independent of every other candidate
// (zero shared state), so the engine evaluates candidates on a worker pool
// sized to the machine — the same parallelism the paper exploits with a
// multi-process implementation.
package rules

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/dataset"
	"repro/internal/stats"
	"repro/internal/sysimage"
	"repro/internal/telemetry"
	"repro/internal/templates"
)

// Rule is a concrete instantiation of a template: the placeholders are
// filled with attribute names, and the training-set statistics are
// recorded.
type Rule struct {
	Template   string  `json:"template"`
	Spec       string  `json:"spec"`
	AttrA      string  `json:"attrA"`
	AttrB      string  `json:"attrB"`
	Support    int     `json:"support"`    // systems where both attributes co-occur
	Valid      int     `json:"valid"`      // systems where the relation holds
	Confidence float64 `json:"confidence"` // Valid / applicable systems
	EntropyA   float64 `json:"entropyA"`
	EntropyB   float64 `json:"entropyB"`
}

// String renders the rule for reports.
func (r *Rule) String() string {
	return fmt.Sprintf("%s(%s, %s) support=%d conf=%.2f", r.Template, r.AttrA, r.AttrB, r.Support, r.Confidence)
}

// Key identifies a rule regardless of statistics.
func (r *Rule) Key() string { return r.Template + "|" + r.AttrA + "|" + r.AttrB }

// Config holds the inference thresholds (Section 5.2 defaults).
type Config struct {
	// MinConfidence is the minimum fraction of applicable systems on which
	// the relation must hold (paper: 0.90).
	MinConfidence float64
	// MinSupportFraction is the minimum fraction of training systems in
	// which both attributes must co-occur (paper: 0.10).
	MinSupportFraction float64
	// EntropyThreshold is Ht; attributes at or below it are excluded.
	// Set UseEntropyFilter=false to disable (Table 13's ablation).
	EntropyThreshold float64
	UseEntropyFilter bool
	// Workers bounds the candidate-evaluation pool; 0 means NumCPU.
	Workers int
}

// DefaultConfig returns the paper's evaluation thresholds.
func DefaultConfig() Config {
	return Config{
		MinConfidence:      0.90,
		MinSupportFraction: 0.10,
		EntropyThreshold:   stats.DefaultEntropyThreshold,
		UseEntropyFilter:   true,
	}
}

// Stats summarizes one inference run: how many candidates each filter
// rejected. It explains where the typed search space went — the kind of
// accounting Table 13 does for the entropy filter, generalized to all
// three filters.
type Stats struct {
	// Candidates is the size of the typed instantiation space.
	Candidates int
	// NoEvidence counts candidates whose attributes never co-occurred (or
	// whose validator was never applicable).
	NoEvidence int
	// SupportRejected, ConfidenceRejected, EntropyRejected count
	// candidates killed by each filter, applied in that order.
	SupportRejected    int
	ConfidenceRejected int
	EntropyRejected    int
	// Kept is the number of surviving rules.
	Kept int
}

// Engine infers rules from an assembled training dataset.
type Engine struct {
	Config    Config
	Templates []*templates.Template

	// LastStats describes the most recent Infer/InferSerial run.
	LastStats Stats

	// Telemetry, when set, receives the inference stage timing and the
	// candidate-validation counters. Nil disables instrumentation.
	Telemetry *telemetry.Recorder
}

// NewEngine returns an engine with the predefined templates and default
// thresholds.
func NewEngine() *Engine {
	return &Engine{Config: DefaultConfig(), Templates: templates.Predefined()}
}

// AddTemplate registers an additional (custom) template.
func (e *Engine) AddTemplate(t *templates.Template) {
	e.Templates = append(e.Templates, t)
}

// candidate is one (template, attrA, attrB) instantiation to evaluate.
type candidate struct {
	tpl   *templates.Template
	attrA string
	attrB string
}

// Infer learns concrete rules from the dataset. images maps system ID to
// its image so validators can consult the environment; rows whose image is
// missing still participate in value-only validators.
func (e *Engine) Infer(d *dataset.Dataset, images map[string]*sysimage.Image) []*Rule {
	defer e.Telemetry.StartStage(telemetry.StageRulesInfer)()
	cands := e.candidates(d)
	ctxs := contexts(d, images)

	workers := e.Config.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(cands) && len(cands) > 0 {
		workers = len(cands)
	}

	results := make([]*Rule, len(cands))
	reasons := make([]rejectReason, len(cands))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], reasons[i] = e.evaluate(d, ctxs, cands[i])
			}
		}()
	}
	for i := range cands {
		next <- i
	}
	close(next)
	wg.Wait()

	var rules []*Rule
	for _, r := range results {
		if r != nil {
			rules = append(rules, r)
		}
	}
	e.LastStats = tally(len(cands), reasons)
	e.Telemetry.Add(telemetry.CounterRulesValidated, int64(len(cands)))
	e.Telemetry.Add(telemetry.CounterRulesKept, int64(e.LastStats.Kept))
	sort.Slice(rules, func(i, j int) bool { return rules[i].Key() < rules[j].Key() })
	return rules
}

// rejectReason records why a candidate did not become a rule.
type rejectReason int

const (
	kept rejectReason = iota
	noEvidence
	supportRejected
	confidenceRejected
	entropyRejected
)

func tally(candidates int, reasons []rejectReason) Stats {
	s := Stats{Candidates: candidates}
	for _, r := range reasons {
		switch r {
		case kept:
			s.Kept++
		case noEvidence:
			s.NoEvidence++
		case supportRejected:
			s.SupportRejected++
		case confidenceRejected:
			s.ConfidenceRejected++
		case entropyRejected:
			s.EntropyRejected++
		}
	}
	return s
}

// InferSerial is the single-threaded reference implementation, used by the
// parallelism ablation benchmark.
func (e *Engine) InferSerial(d *dataset.Dataset, images map[string]*sysimage.Image) []*Rule {
	defer e.Telemetry.StartStage(telemetry.StageRulesInfer)()
	ctxs := contexts(d, images)
	cands := e.candidates(d)
	reasons := make([]rejectReason, len(cands))
	var rules []*Rule
	for i, c := range cands {
		var r *Rule
		r, reasons[i] = e.evaluate(d, ctxs, c)
		if r != nil {
			rules = append(rules, r)
		}
	}
	e.LastStats = tally(len(cands), reasons)
	e.Telemetry.Add(telemetry.CounterRulesValidated, int64(len(cands)))
	e.Telemetry.Add(telemetry.CounterRulesKept, int64(e.LastStats.Kept))
	sort.Slice(rules, func(i, j int) bool { return rules[i].Key() < rules[j].Key() })
	return rules
}

// candidates enumerates every eligible (template, attrA, attrB) pair.
// Type-based attribute selection happens here: this is what keeps the
// candidate space tractable compared with frequent-item-set mining.
func (e *Engine) candidates(d *dataset.Dataset) []candidate {
	var out []candidate
	attrs := d.Attributes()
	for _, tpl := range e.Templates {
		var as, bs []dataset.Attribute
		for _, a := range attrs {
			if tpl.EligibleA(a) {
				as = append(as, a)
			}
			if tpl.EligibleB(a) {
				bs = append(bs, a)
			}
		}
		for _, a := range as {
			for _, b := range bs {
				if a.Name == b.Name {
					continue
				}
				if tpl.SameType && a.Type != b.Type {
					continue
				}
				if tpl.Symmetric && a.Name > b.Name {
					continue
				}
				// An augmented attribute correlating with its own base
				// entry is tautological (datadir.owner vs datadir);
				// skip base/augmented self-pairs.
				if isOwnAugment(a, b) || isOwnAugment(b, a) {
					continue
				}
				out = append(out, candidate{tpl: tpl, attrA: a.Name, attrB: b.Name})
			}
		}
	}
	return out
}

// CandidateCount exposes the size of the typed search space (used by the
// typed-selection ablation).
func (e *Engine) CandidateCount(d *dataset.Dataset) int { return len(e.candidates(d)) }

// isOwnAugment reports whether aug is an augmented attribute derived from
// base (aug.Name == base.Name + "." + suffix).
func isOwnAugment(aug, base dataset.Attribute) bool {
	return aug.Augmented && len(aug.Name) > len(base.Name)+1 &&
		aug.Name[:len(base.Name)] == base.Name && aug.Name[len(base.Name)] == '.'
}

func contexts(d *dataset.Dataset, images map[string]*sysimage.Image) []*templates.Ctx {
	ctxs := make([]*templates.Ctx, len(d.Rows))
	for i, row := range d.Rows {
		ctxs[i] = &templates.Ctx{Row: row, Image: images[row.SystemID]}
	}
	return ctxs
}

// evaluate validates one candidate across all systems and applies the
// filters; a nil rule is accompanied by the reason the candidate died.
func (e *Engine) evaluate(d *dataset.Dataset, ctxs []*templates.Ctx, c candidate) (*Rule, rejectReason) {
	total := len(ctxs)
	support, applicable, valid := 0, 0, 0
	for _, ctx := range ctxs {
		va := ctx.Row.Instances(c.attrA)
		vb := ctx.Row.Instances(c.attrB)
		if len(va) == 0 || len(vb) == 0 {
			continue
		}
		support++
		holds, app := c.tpl.Validate(va, vb, ctx)
		if !app {
			continue
		}
		applicable++
		if holds {
			valid++
		}
	}
	if total == 0 || support == 0 || applicable == 0 {
		return nil, noEvidence
	}
	if stats.SupportFraction(support, total) < e.Config.MinSupportFraction {
		return nil, supportRejected
	}
	conf := stats.Confidence(valid, applicable)
	if conf < e.Config.MinConfidence {
		return nil, confidenceRejected
	}
	if e.Config.UseEntropyFilter {
		if d.Entropy(c.attrA) <= e.Config.EntropyThreshold || d.Entropy(c.attrB) <= e.Config.EntropyThreshold {
			return nil, entropyRejected
		}
	}
	return &Rule{
		Template:   c.tpl.ID,
		Spec:       c.tpl.Spec,
		AttrA:      c.attrA,
		AttrB:      c.attrB,
		Support:    support,
		Valid:      valid,
		Confidence: conf,
		EntropyA:   d.Entropy(c.attrA),
		EntropyB:   d.Entropy(c.attrB),
	}, kept
}

// RuleSet is a serializable collection of learned rules together with the
// attribute type map needed to check targets.
type RuleSet struct {
	Rules []*Rule           `json:"rules"`
	Types map[string]string `json:"types"` // attribute -> semantic type
}

// NewRuleSet bundles rules with the training dataset's attribute types.
func NewRuleSet(rules []*Rule, d *dataset.Dataset) *RuleSet {
	types := make(map[string]string)
	for _, a := range d.Attributes() {
		types[a.Name] = string(a.Type)
	}
	return &RuleSet{Rules: rules, Types: types}
}

// Marshal serializes the rule set to JSON.
func (rs *RuleSet) Marshal() ([]byte, error) {
	return json.MarshalIndent(rs, "", "  ")
}

// UnmarshalRuleSet parses a serialized rule set.
func UnmarshalRuleSet(data []byte) (*RuleSet, error) {
	var rs RuleSet
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, fmt.Errorf("rules: decode rule set: %w", err)
	}
	return &rs, nil
}
