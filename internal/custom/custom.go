package custom

import (
	"fmt"
	"strings"

	"repro/internal/assemble"
	"repro/internal/conftypes"
	"repro/internal/rules"
	"repro/internal/sysimage"
	"repro/internal/templates"
)

// Customization is the parsed content of a customization file.
type Customization struct {
	// Types holds user-defined semantic types in declaration order
	// (custom types take priority over predefined ones).
	Types []*conftypes.Def
	// Augmenters holds user-defined augmented attributes keyed by the
	// type they apply to.
	Augmenters map[conftypes.Type][]assemble.Augmenter
	// Templates holds user-defined rule templates.
	Templates []*templates.Template
	// Operators records the operator names registered (for reporting).
	Operators []string
}

// Apply installs the customization into an inferencer, an assembler, and a
// rule engine (any of which may be nil to skip).
func (c *Customization) Apply(inf *conftypes.Inferencer, asm *assemble.Assembler, eng *rules.Engine) {
	if inf != nil {
		for _, d := range c.Types {
			inf.AddCustom(d)
		}
	}
	if asm != nil {
		if inf != nil {
			asm.Inferencer = inf
		}
		for t, augs := range c.Augmenters {
			for _, a := range augs {
				asm.AddAugmenter(t, a)
			}
		}
	}
	if eng != nil {
		for _, t := range c.Templates {
			eng.AddTemplate(t)
		}
	}
}

// section names of the customization file (Figure 6).
const (
	secTypeDecl       = "$$TypeDeclaration"
	secTypeInference  = "$$TypeInference"
	secTypeValidation = "$$TypeValidation"
	secAugmentDecl    = "$$TypeAugmentDeclaration"
	secAugment        = "$$TypeAugment"
	secTypeOperator   = "$$TypeOperator"
	secTemplate       = "$$Template"
)

var sectionNames = map[string]bool{
	secTypeDecl: true, secTypeInference: true, secTypeValidation: true,
	secAugmentDecl: true, secAugment: true, secTypeOperator: true,
	secTemplate: true,
}

// ParseFile parses a customization file. The format has seven optional
// sections, each introduced by its "$$" header:
//
//	$$TypeDeclaration
//	CacheDir
//	$$TypeInference
//	CacheDir (value): { matches(value, '^/.*cache') }
//	$$TypeValidation
//	CacheDir (value): { isDir(value) }
//	$$TypeAugmentDeclaration
//	CacheDir.group GroupName
//	$$TypeAugment
//	CacheDir.group (value): { group(value) }
//	$$TypeOperator
//	sameOwner: Operator '~' (v1,v2): { owner(v1) == owner(v2) }
//	$$Template
//	[A:CacheDir] ~ [B:FilePath] -- 90%
func ParseFile(src string) (*Customization, error) {
	c := &Customization{Augmenters: map[conftypes.Type][]assemble.Augmenter{}}

	sections := splitSections(src)

	// Pass 1: declarations.
	declared := map[string]bool{}
	for _, line := range sections[secTypeDecl] {
		name := strings.TrimSpace(line)
		if name == "" {
			continue
		}
		if !isTypeName(name) {
			return nil, fmt.Errorf("custom: invalid type name %q", name)
		}
		declared[name] = true
	}

	inference := map[string]Expr{}
	for _, line := range sections[secTypeInference] {
		name, expr, err := parseMethod(line, 1)
		if err != nil {
			return nil, err
		}
		if !declared[name] {
			return nil, fmt.Errorf("custom: inference for undeclared type %q", name)
		}
		inference[name] = expr
	}
	validation := map[string]Expr{}
	for _, line := range sections[secTypeValidation] {
		name, expr, err := parseMethod(line, 1)
		if err != nil {
			return nil, err
		}
		if !declared[name] {
			return nil, fmt.Errorf("custom: validation for undeclared type %q", name)
		}
		validation[name] = expr
	}

	// Materialize the type defs in declaration order.
	for _, line := range sections[secTypeDecl] {
		name := strings.TrimSpace(line)
		if name == "" {
			continue
		}
		inf, ok := inference[name]
		if !ok {
			return nil, fmt.Errorf("custom: type %q has no $$TypeInference method", name)
		}
		val := validation[name]
		def := &conftypes.Def{
			Name: conftypes.Type(name),
			Match: func(v string) bool {
				res, err := inf.Eval(&Env{Vars: map[string]string{"value": v}})
				return err == nil && res.Bool()
			},
		}
		if val != nil {
			def.Verify = func(v string, img *sysimage.Image) bool {
				res, err := val.Eval(&Env{Vars: map[string]string{"value": v}, Image: img})
				return err == nil && res.Bool()
			}
		}
		c.Types = append(c.Types, def)
	}

	// Augmented attributes: declaration gives "<Type>.<suffix> <AugType>",
	// the method computes the value.
	augTypes := map[string]conftypes.Type{} // "CacheDir.group" -> GroupName
	for _, line := range sections[secAugmentDecl] {
		f := strings.Fields(strings.TrimSpace(line))
		if len(f) == 0 {
			continue
		}
		if len(f) != 2 || !strings.Contains(f[0], ".") {
			return nil, fmt.Errorf("custom: bad augment declaration %q (want \"Type.suffix AugType\")", line)
		}
		augTypes[f[0]] = conftypes.Type(f[1])
	}
	for _, line := range sections[secAugment] {
		name, expr, err := parseMethod(line, 1)
		if err != nil {
			return nil, err
		}
		augType, ok := augTypes[name]
		if !ok {
			return nil, fmt.Errorf("custom: augment method for undeclared attribute %q", name)
		}
		base, suffix, _ := strings.Cut(name, ".")
		e := expr
		c.Augmenters[conftypes.Type(base)] = append(c.Augmenters[conftypes.Type(base)], assemble.Augmenter{
			Suffix: suffix,
			Type:   augType,
			Compute: func(v string, img *sysimage.Image) (string, bool) {
				res, err := e.Eval(&Env{Vars: map[string]string{"value": v}, Image: img})
				if err != nil {
					return "", false
				}
				s := res.String()
				return s, s != ""
			},
		})
	}

	// Operators: "<name>: Operator '<op>' (v1,v2): { expr }".
	for _, line := range sections[secTypeOperator] {
		if strings.TrimSpace(line) == "" {
			continue
		}
		name, op, expr, err := parseOperator(line)
		if err != nil {
			return nil, err
		}
		c.Operators = append(c.Operators, name)
		e := expr
		validator := func(a, b []string, ctx *templates.Ctx) (bool, bool) {
			if len(a) == 0 || len(b) == 0 {
				return false, false
			}
			var img *sysimage.Image
			if ctx != nil {
				img = ctx.Image
			}
			res, err := e.Eval(&Env{Vars: map[string]string{"v1": a[0], "v2": b[0]}, Image: img})
			if err != nil {
				return false, false
			}
			return res.Bool(), true
		}
		// Register for every declared custom type pair and as wildcard.
		templates.RegisterOp(op, conftypes.TypeString, conftypes.TypeString, validator)
		for _, da := range c.Types {
			for _, db := range c.Types {
				templates.RegisterOp(op, da.Name, db.Name, validator)
			}
			templates.RegisterOp(op, da.Name, conftypes.TypeFilePath, validator)
			templates.RegisterOp(op, conftypes.TypeFilePath, da.Name, validator)
		}
	}

	// Templates: "[A:Type] op [B:Type]" with optional "-- NN%" confidence
	// annotation (recorded but thresholds stay engine-wide).
	for _, line := range sections[secTemplate] {
		spec := strings.TrimSpace(line)
		if spec == "" {
			continue
		}
		if i := strings.Index(spec, "--"); i >= 0 {
			spec = strings.TrimSpace(spec[:i])
		}
		tpl, err := templates.ParseSpec("", spec)
		if err != nil {
			return nil, err
		}
		c.Templates = append(c.Templates, tpl)
	}

	return c, nil
}

// splitSections groups the file's lines under their "$$" headers.
func splitSections(src string) map[string][]string {
	out := map[string][]string{}
	current := ""
	for _, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "#") {
			continue
		}
		if sectionNames[trimmed] {
			current = trimmed
			continue
		}
		if current != "" && trimmed != "" {
			out[current] = append(out[current], line)
		}
	}
	return out
}

func isTypeName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_') {
			return false
		}
	}
	return s[0] >= 'A' && s[0] <= 'Z'
}

// parseMethod parses "<name> (args): { expr }" lines.
func parseMethod(line string, nargs int) (string, Expr, error) {
	open := strings.Index(line, "(")
	colon := strings.Index(line, ":")
	lbrace := strings.Index(line, "{")
	rbrace := strings.LastIndex(line, "}")
	if open < 0 || colon < open || lbrace < colon || rbrace < lbrace {
		return "", nil, fmt.Errorf("custom: malformed method %q (want \"Name (value): { expr }\")", strings.TrimSpace(line))
	}
	name := strings.TrimSpace(line[:open])
	expr, err := CompileExpr(line[lbrace+1 : rbrace])
	if err != nil {
		return "", nil, fmt.Errorf("custom: method %s: %w", name, err)
	}
	return name, expr, nil
}

// parseOperator parses "<name>: Operator '<op>' (v1,v2): { expr }" lines.
func parseOperator(line string) (name, op string, expr Expr, err error) {
	colon := strings.Index(line, ":")
	if colon < 0 {
		return "", "", nil, fmt.Errorf("custom: malformed operator %q", strings.TrimSpace(line))
	}
	name = strings.TrimSpace(line[:colon])
	rest := line[colon+1:]
	q1 := strings.Index(rest, "'")
	q2 := -1
	if q1 >= 0 {
		q2 = strings.Index(rest[q1+1:], "'")
	}
	if !strings.Contains(rest, "Operator") || q1 < 0 || q2 < 0 {
		return "", "", nil, fmt.Errorf("custom: operator %q missing Operator '<symbol>'", name)
	}
	op = rest[q1+1 : q1+1+q2]
	lbrace := strings.Index(rest, "{")
	rbrace := strings.LastIndex(rest, "}")
	if lbrace < 0 || rbrace < lbrace {
		return "", "", nil, fmt.Errorf("custom: operator %q missing body", name)
	}
	expr, err = CompileExpr(rest[lbrace+1 : rbrace])
	if err != nil {
		return "", "", nil, fmt.Errorf("custom: operator %s: %w", name, err)
	}
	return name, op, expr, nil
}
