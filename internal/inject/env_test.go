package inject

import (
	"strings"
	"testing"

	"repro/internal/sysimage"
)

func envVictim() *sysimage.Image {
	im := sysimage.New("env-victim")
	im.Users["mysql"] = &sysimage.User{Name: "mysql", UID: 27, GID: 27}
	im.Groups["mysql"] = &sysimage.Group{Name: "mysql", GID: 27}
	im.AddDir("/var/lib/mysql", "mysql", "mysql", 0o750)
	im.AddRegular("/var/log/mysqld.log", "mysql", "mysql", 0o640, 100)
	im.AddRegular("/var/run/mysqld.pid", "mysql", "mysql", 0o644, 8)
	im.AddDir("/tmp", "root", "root", 0o777)
	im.SetConfig("mysql", "/etc/my.cnf", strings.Join([]string{
		"[mysqld]",
		"datadir = /var/lib/mysql",
		"user = mysql",
		"log-error = /var/log/mysqld.log",
		"pid-file = /var/run/mysqld.pid",
		"tmpdir = /tmp",
		"",
	}, "\n"))
	return im
}

func TestEnvInjectLeavesConfigUntouched(t *testing.T) {
	im := envVictim()
	before := im.ConfigFor("mysql").Content
	log, err := New(3).EnvInject(im, "mysql", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != 3 {
		t.Fatalf("log = %d", len(log))
	}
	if im.ConfigFor("mysql").Content != before {
		t.Fatal("environment injection must not modify the configuration file")
	}
}

func TestEnvInjectMutatesEnvironment(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		im := envVictim()
		orig := envVictim()
		log, err := New(seed).EnvInject(im, "mysql", 4)
		if err != nil {
			t.Fatal(err)
		}
		changed := 0
		for _, inj := range log {
			switch inj.Kind {
			case KindEnvRemove:
				if im.Exists(inj.Before) {
					t.Fatalf("%s: path still exists", inj)
				}
				changed++
			case KindEnvChown:
				fm := im.Lookup(inj.Before)
				if fm == nil || fm.Owner != "root" {
					t.Fatalf("%s: owner not changed", inj)
				}
				changed++
			case KindEnvChmod:
				a, b := im.Lookup(inj.Before), orig.Lookup(inj.Before)
				if a == nil || b == nil || a.Mode == b.Mode {
					t.Fatalf("%s: mode not changed", inj)
				}
				changed++
			case KindEnvFileAsDir:
				fm := im.Lookup(inj.Before)
				if fm == nil || fm.Kind != sysimage.KindFile {
					t.Fatalf("%s: kind not changed", inj)
				}
				changed++
			case KindEnvDropUser:
				if im.UserExists(inj.Before) {
					t.Fatalf("%s: user still exists", inj)
				}
				changed++
			default:
				t.Fatalf("unexpected kind %s", inj.Kind)
			}
		}
		if changed != len(log) {
			t.Fatalf("seed %d: %d of %d mutations verified", seed, changed, len(log))
		}
	}
}

func TestEnvInjectDeterministic(t *testing.T) {
	a, b := envVictim(), envVictim()
	logA, errA := New(5).EnvInject(a, "mysql", 4)
	logB, errB := New(5).EnvInject(b, "mysql", 4)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	for i := range logA {
		if logA[i] != logB[i] {
			t.Fatalf("injection %d differs", i)
		}
	}
}

func TestEnvInjectDistinctObjects(t *testing.T) {
	im := envVictim()
	log, err := New(2).EnvInject(im, "mysql", 5)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, inj := range log {
		if seen[inj.Before] {
			t.Fatalf("object %s hit twice", inj.Before)
		}
		seen[inj.Before] = true
	}
}

func TestEnvInjectErrors(t *testing.T) {
	im := envVictim()
	if _, err := New(1).EnvInject(im, "apache", 1); err == nil {
		t.Fatal("missing app should error")
	}
	if _, err := New(1).EnvInject(im, "mysql", 50); err == nil {
		t.Fatal("too many errors should fail")
	}
	bare := sysimage.New("bare")
	bare.SetConfig("mysql", "/etc/my.cnf", "[mysqld]\nnovalue = 42\n")
	if _, err := New(1).EnvInject(bare, "mysql", 1); err == nil {
		t.Fatal("no live references should error")
	}
}
