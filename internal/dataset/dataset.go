// Package dataset holds the assembled configuration data: a column-typed
// attribute table with one row per system image.
//
// Columns ("attributes" in the paper's data-mining terminology) cover both
// original configuration entries and the augmented environment attributes
// the assembler attaches. A cell may be absent (the entry is not configured
// on that system) or hold one or more instances (Apache's LoadModule occurs
// many times per file). The table also knows how to discretize itself into
// boolean transactions — the representation association-rule miners need,
// and the step whose attribute blow-up Table 2 quantifies.
package dataset

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/conftypes"
)

// Attribute is one column: a named, semantically typed configuration or
// environment attribute.
type Attribute struct {
	Name string
	Type conftypes.Type
	// Augmented marks attributes synthesized from environment data rather
	// than parsed from a configuration file.
	Augmented bool
}

// Row holds the attribute instances observed on one system.
type Row struct {
	SystemID string
	Cells    map[string][]string
}

// Instances returns the values of an attribute in this row (nil if
// absent).
func (r *Row) Instances(attr string) []string { return r.Cells[attr] }

// First returns the first instance of an attribute and whether the
// attribute is present.
func (r *Row) First(attr string) (string, bool) {
	vs := r.Cells[attr]
	if len(vs) == 0 {
		return "", false
	}
	return vs[0], true
}

// Dataset is the assembled table.
type Dataset struct {
	attrs []Attribute
	index map[string]int
	Rows  []*Row

	// idx caches the columnar snapshot (see index.go). Mutators store nil;
	// Index rebuilds lazily. Atomic so concurrent readers (scan and rule
	// inference worker pools) never observe a half-built snapshot.
	idx atomic.Pointer[Index]
}

// New returns an empty dataset.
func New() *Dataset {
	return &Dataset{index: make(map[string]int)}
}

// DeclareAttr registers a column if not already present and returns its
// definition. Re-declaring with a different type keeps the first type
// (training data wins over later observations).
func (d *Dataset) DeclareAttr(name string, t conftypes.Type, augmented bool) Attribute {
	if i, ok := d.index[name]; ok {
		return d.attrs[i]
	}
	a := Attribute{Name: name, Type: t, Augmented: augmented}
	d.index[name] = len(d.attrs)
	d.attrs = append(d.attrs, a)
	// Declaring a column does not invalidate a cached index: a freshly
	// declared attribute has no cells yet, and Index.col falls back to an
	// all-absent column for names the snapshot does not know. Keeping the
	// snapshot alive is what lets AddRows/RetireRows maintain it by delta.
	return a
}

// Index returns the columnar snapshot of the dataset, rebuilding it if a
// mutation invalidated the cached one. The snapshot must not be retained
// across mutations.
func (d *Dataset) Index() *Index {
	if ix := d.idx.Load(); ix != nil {
		return ix
	}
	ix := buildIndex(d)
	d.idx.Store(ix)
	return ix
}

// SetType overrides the declared type of an attribute (used when entry-level
// inference, which sees all samples, refines the initial guess).
func (d *Dataset) SetType(name string, t conftypes.Type) {
	if i, ok := d.index[name]; ok {
		d.attrs[i].Type = t
	}
}

// Attr returns the attribute definition and whether it exists.
func (d *Dataset) Attr(name string) (Attribute, bool) {
	i, ok := d.index[name]
	if !ok {
		return Attribute{}, false
	}
	return d.attrs[i], true
}

// Attributes returns all columns in declaration order.
func (d *Dataset) Attributes() []Attribute { return d.attrs }

// AttributesOfType returns the names of all columns with the given semantic
// type, sorted.
func (d *Dataset) AttributesOfType(t conftypes.Type) []string {
	var out []string
	for _, a := range d.attrs {
		if a.Type == t {
			out = append(out, a.Name)
		}
	}
	sort.Strings(out)
	return out
}

// NewRow appends and returns an empty row for a system.
func (d *Dataset) NewRow(systemID string) *Row {
	r := &Row{SystemID: systemID, Cells: make(map[string][]string)}
	d.Rows = append(d.Rows, r)
	d.idx.Store(nil)
	return r
}

// Add records an instance of an attribute in a row, declaring the column on
// first use with type String.
func (d *Dataset) Add(r *Row, attr, value string) {
	d.DeclareAttr(attr, conftypes.TypeString, false)
	r.Cells[attr] = append(r.Cells[attr], value)
	d.idx.Store(nil)
}

// Column returns every instance value of the attribute across all rows
// (multi-instance attributes like Apache's LoadModule contribute each
// occurrence). The slice is preallocated from the index's cached instance
// count.
func (d *Dataset) Column(attr string) []string {
	ix := d.Index()
	n := ix.Instances(attr)
	if n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	for _, vs := range ix.RowValues(attr) {
		out = append(out, vs...)
	}
	return out
}

// Present counts the rows in which the attribute appears.
func (d *Dataset) Present(attr string) int {
	return d.Index().Present(attr)
}

// Entropy returns the Shannon entropy of the attribute's value
// distribution across all instances (memoized on the columnar index).
func (d *Dataset) Entropy(attr string) float64 {
	return d.Index().Entropy(attr)
}

// Cardinality returns the number of distinct instance values (memoized on
// the columnar index).
func (d *Dataset) Cardinality(attr string) int {
	return d.Index().Cardinality(attr)
}

// OriginalAttrCount counts attribute occurrences the way mining tools see
// them (Table 2 "Original"): every occurrence of an entry in every row is a
// distinct attribute, so the count is the maximum total instance count over
// rows summed per attribute.
func (d *Dataset) OriginalAttrCount() int {
	total := 0
	for _, a := range d.attrs {
		if a.Augmented {
			continue
		}
		max := 0
		for _, r := range d.Rows {
			if n := len(r.Cells[a.Name]); n > max {
				max = n
			}
		}
		total += max
	}
	return total
}

// AugmentedAttrCount counts columns after environment integration
// (Table 2 "Augmented"): original occurrences plus augmented columns.
func (d *Dataset) AugmentedAttrCount() int {
	total := d.OriginalAttrCount()
	for _, a := range d.attrs {
		if !a.Augmented {
			continue
		}
		max := 0
		for _, r := range d.Rows {
			if n := len(r.Cells[a.Name]); n > max {
				max = n
			}
		}
		total += max
	}
	return total
}

// Item is a boolean item produced by discretization: attribute == value.
type Item struct {
	Attr  string
	Value string
}

// String renders the item as "attr=value".
func (it Item) String() string { return it.Attr + "=" + it.Value }

// Discretized is the boolean (binomial) form of the dataset: the item
// dictionary plus one transaction (item-id set) per row. This is the input
// representation for Apriori and FP-Growth, and the step that blows up the
// attribute count (Table 2 "Binominal").
type Discretized struct {
	Items        []Item
	Transactions [][]int
}

// BinomialCount returns the number of boolean attributes after
// discretization.
func (disc *Discretized) BinomialCount() int { return len(disc.Items) }

// Discretize converts the dataset (restricted to the given attributes; nil
// means all) into boolean transactions. Every distinct (attribute, value)
// pair becomes an item; every row becomes the set of items it exhibits.
func (d *Dataset) Discretize(attrs []string) *Discretized {
	if attrs == nil {
		attrs = make([]string, len(d.attrs))
		for i, a := range d.attrs {
			attrs[i] = a.Name
		}
	}
	keep := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		keep[a] = true
	}
	ids := make(map[Item]int)
	disc := &Discretized{}
	for _, r := range d.Rows {
		var txn []int
		seen := make(map[int]bool)
		names := make([]string, 0, len(r.Cells))
		for name := range r.Cells {
			if keep[name] {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			for _, v := range r.Cells[name] {
				it := Item{Attr: name, Value: v}
				id, ok := ids[it]
				if !ok {
					id = len(disc.Items)
					ids[it] = id
					disc.Items = append(disc.Items, it)
				}
				if !seen[id] {
					seen[id] = true
					txn = append(txn, id)
				}
			}
		}
		sort.Ints(txn)
		disc.Transactions = append(disc.Transactions, txn)
	}
	return disc
}

// CSV renders the dataset in the paper's .csv layout: one column per
// attribute, one row per system, multi-instance cells joined with ';'.
func (d *Dataset) CSV() string {
	var b strings.Builder
	b.WriteString("system")
	for _, a := range d.attrs {
		b.WriteString(",")
		b.WriteString(csvEscape(a.Name))
	}
	b.WriteString("\n")
	for _, r := range d.Rows {
		b.WriteString(csvEscape(r.SystemID))
		for _, a := range d.attrs {
			b.WriteString(",")
			b.WriteString(csvEscape(strings.Join(r.Cells[a.Name], ";")))
		}
		b.WriteString("\n")
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Summary returns a one-line description for logs.
func (d *Dataset) Summary() string {
	return fmt.Sprintf("%d attributes x %d rows", len(d.attrs), len(d.Rows))
}
