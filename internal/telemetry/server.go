package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Server is the live observability endpoint for a running pipeline. It
// serves, rendered fresh from the attached recorder on every request:
//
//	/metrics        Prometheus text exposition (format 0.0.4)
//	/healthz        JSON readiness document with the current phase
//	/snapshot       the versioned JSON telemetry snapshot (live)
//	/debug/pprof/   the standard runtime profiling endpoints
//
// NewServer binds and serves in the background; Close shuts down
// gracefully — in-flight handlers drain, idle connections close, and the
// accept goroutine exits before Close returns, so a closed server leaks
// nothing.
type Server struct {
	rec   *Recorder
	ln    net.Listener
	srv   *http.Server
	start time.Time
	done  chan struct{}
	close sync.Once
	err   error
}

// NewServer starts serving the recorder's live state on addr (host:port;
// ":0" picks a free port, see Addr).
func NewServer(addr string, rec *Recorder) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{
		rec:   rec,
		ln:    ln,
		start: time.Now(),
		done:  make(chan struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	// The pprof handlers are registered explicitly on this mux instead of
	// importing net/http/pprof for its side effect on http.DefaultServeMux:
	// the server must not mutate global state.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.err = err
		}
	}()
	return s, nil
}

// Addr returns the bound address ("127.0.0.1:43211"), useful when the
// server was started on ":0".
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the server down gracefully: it stops accepting, waits for
// in-flight handlers (bounded by a 5s deadline, then hard-closes), and
// joins the accept goroutine. Idempotent; safe on a nil server.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	s.close.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.srv.Shutdown(ctx); err != nil {
			// Deadline hit: drop the stragglers so Close never hangs.
			s.srv.Close()
			if s.err == nil {
				s.err = err
			}
		}
		<-s.done
	})
	return s.err
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, s.rec.Snapshot().PromText())
}

// healthDoc is the /healthz readiness document.
type healthDoc struct {
	Status        string  `json:"status"`
	Phase         string  `json:"phase"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	doc := healthDoc{
		Status:        "ok",
		Phase:         s.rec.Phase(),
		UptimeSeconds: time.Since(s.start).Seconds(),
	}
	json.NewEncoder(w).Encode(doc)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	data, err := s.rec.Snapshot().JSON()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}
