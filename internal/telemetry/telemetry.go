// Package telemetry provides the lightweight instrumentation threaded
// through the assembly, rule-inference, and scan stages: named counters
// (images parsed, attributes declared, rules validated, findings emitted)
// and accumulated per-stage wall-clock timers.
//
// A Recorder is safe for concurrent use — pipeline workers update it while
// running — and every method is nil-receiver safe, so instrumented code
// can call it unconditionally and pay nothing when telemetry is off.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Counter names used by the instrumented pipeline stages. Stages add their
// own names freely; these constants exist so the assembler, rule engine,
// and scan engine agree with the CLI's -stats rendering.
const (
	CounterImagesParsed   = "assemble.images.parsed"
	CounterFilesParsed    = "assemble.files.parsed"
	CounterAttrsDeclared  = "assemble.attributes.declared"
	CounterRulesValidated = "rules.candidates.validated"
	CounterRulesKept      = "rules.kept"
	// CounterRulesPrunedSupport counts candidates the columnar index killed
	// on the support bitset before any per-system validation; the entropy
	// variant counts candidates the memoized entropy filter rejected.
	CounterRulesPrunedSupport = "rules.pruned.support"
	CounterRulesPrunedEntropy = "rules.pruned.entropy"
	CounterImagesScanned      = "scan.images.scanned"
	CounterFindingsEmitted    = "scan.findings.emitted"
	CounterScanErrors         = "scan.errors"
)

// Stage names used by the instrumented pipeline stages.
const (
	StageAssembleParse = "assemble.parse"
	StageAssembleInfer = "assemble.infer"
	StageAssembleRows  = "assemble.rows"
	StageRulesInfer    = "rules.infer"
	StageScanBatch     = "scan.batch"
)

// Recorder accumulates counters and stage timings.
type Recorder struct {
	mu       sync.Mutex
	counters map[string]int64
	stages   map[string]stage
}

type stage struct {
	total time.Duration
	runs  int64
}

// New returns an empty recorder.
func New() *Recorder {
	return &Recorder{
		counters: make(map[string]int64),
		stages:   make(map[string]stage),
	}
}

// Add increments a named counter. Safe on a nil recorder.
func (r *Recorder) Add(name string, n int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += n
	r.mu.Unlock()
}

// Observe accumulates one timed run of a stage. Safe on a nil recorder.
func (r *Recorder) Observe(name string, d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	s := r.stages[name]
	s.total += d
	s.runs++
	r.stages[name] = s
	r.mu.Unlock()
}

// StartStage starts timing a stage and returns the function that stops the
// timer and records the elapsed time. Safe on a nil recorder.
//
//	defer rec.StartStage(telemetry.StageAssembleParse)()
func (r *Recorder) StartStage(name string) func() {
	if r == nil {
		return func() {}
	}
	start := time.Now()
	return func() { r.Observe(name, time.Since(start)) }
}

// Counter returns the current value of a counter (0 if never added, or on
// a nil recorder).
func (r *Recorder) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// CounterValue is one named counter in a snapshot.
type CounterValue struct {
	Name  string
	Value int64
}

// StageTiming is one stage's accumulated wall-clock time in a snapshot.
type StageTiming struct {
	Name  string
	Total time.Duration
	Runs  int64
}

// Snapshot is a point-in-time copy of a recorder, ordered by name so that
// rendering is deterministic.
type Snapshot struct {
	Counters []CounterValue
	Stages   []StageTiming
}

// Snapshot copies the recorder's current state. Safe on a nil recorder
// (returns an empty snapshot).
func (r *Recorder) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, v := range r.counters {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: v})
	}
	for name, st := range r.stages {
		s.Stages = append(s.Stages, StageTiming{Name: name, Total: st.total, Runs: st.runs})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Stages, func(i, j int) bool { return s.Stages[i].Name < s.Stages[j].Name })
	return s
}

// Render formats the snapshot as the CLI's -stats block: counters first,
// then stage timings, both sorted by name.
func (s Snapshot) Render() string {
	var b strings.Builder
	b.WriteString("stats:\n")
	if len(s.Counters) > 0 {
		b.WriteString("  counters:\n")
		for _, c := range s.Counters {
			fmt.Fprintf(&b, "    %-36s %d\n", c.Name, c.Value)
		}
	}
	if len(s.Stages) > 0 {
		b.WriteString("  stages:\n")
		for _, st := range s.Stages {
			fmt.Fprintf(&b, "    %-36s %s (%d runs)\n", st.Name, st.Total.Round(time.Microsecond), st.Runs)
		}
	}
	if len(s.Counters) == 0 && len(s.Stages) == 0 {
		b.WriteString("  (empty)\n")
	}
	return b.String()
}

// Render formats the recorder's current state; see Snapshot.Render.
func (r *Recorder) Render() string { return r.Snapshot().Render() }
