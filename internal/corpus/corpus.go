// Package corpus synthesizes system-image populations that stand in for
// the paper's Amazon EC2 and private-cloud image sets.
//
// Each generated image is internally coherent: the environment (file
// system, accounts, services, OS facts) is built to match the generated
// configuration, so the correlations EnCore is supposed to learn — user
// owns datadir, modules live under ServerRoot, upload limits are ordered —
// genuinely hold in clean images. Value distributions vary realistically
// across a population (several data directories, two or three size
// settings, a minority of differently named service accounts), because the
// learner's filters are calibrated against exactly that kind of diversity.
//
// The generator is fully deterministic for a given seed.
package corpus

import (
	"fmt"
	"math/rand"

	"repro/internal/sysimage"
)

// Builder accumulates one image under construction.
type Builder struct {
	Img *sysimage.Image
	Rng *rand.Rand
}

// NewBuilder returns a builder for an image with the standard base system
// (root account, common system users, core directories).
func NewBuilder(id string, rng *rand.Rand) *Builder {
	im := sysimage.New(id)
	im.Users["root"] = &sysimage.User{Name: "root", UID: 0, GID: 0, Home: "/root", Shell: "/bin/bash", IsAdmin: true}
	im.Users["daemon"] = &sysimage.User{Name: "daemon", UID: 2, GID: 2, Shell: "/sbin/nologin"}
	im.Users["nobody"] = &sysimage.User{Name: "nobody", UID: 99, GID: 99, Shell: "/sbin/nologin"}
	im.Groups["root"] = &sysimage.Group{Name: "root", GID: 0}
	im.Groups["daemon"] = &sysimage.Group{Name: "daemon", GID: 2}
	im.Groups["nobody"] = &sysimage.Group{Name: "nobody", GID: 99}
	im.Services = []sysimage.Service{
		{Name: "ssh", Port: 22, Protocol: "tcp"},
		{Name: "http", Port: 80, Protocol: "tcp"},
		{Name: "https", Port: 443, Protocol: "tcp"},
		{Name: "mysql", Port: 3306, Protocol: "tcp"},
		{Name: "http-alt", Port: 8080, Protocol: "tcp"},
	}
	for _, d := range []string{"/etc", "/var", "/var/log", "/var/run", "/tmp", "/usr", "/usr/lib", "/home", "/srv", "/opt", "/data"} {
		im.AddDir(d, "root", "root", 0o755)
	}
	im.Files["/tmp"].Mode = 0o777
	return &Builder{Img: im, Rng: rng}
}

// Pick returns a uniformly random element.
func Pick[T any](rng *rand.Rand, options []T) T {
	return options[rng.Intn(len(options))]
}

// PickWeighted returns options[i] with probability weights[i]/sum(weights).
func PickWeighted[T any](rng *rand.Rand, options []T, weights []int) T {
	total := 0
	for _, w := range weights {
		total += w
	}
	n := rng.Intn(total)
	for i, w := range weights {
		if n < w {
			return options[i]
		}
		n -= w
	}
	return options[len(options)-1]
}

// Chance reports true with probability p.
func Chance(rng *rand.Rand, p float64) bool {
	return rng.Float64() < p
}

// AddAccount creates a service user and same-named group.
func (b *Builder) AddAccount(name string, uid int) {
	b.Img.Users[name] = &sysimage.User{Name: name, UID: uid, GID: uid, Home: "/var/lib/" + name, Shell: "/sbin/nologin"}
	b.Img.Groups[name] = &sysimage.Group{Name: name, GID: uid}
}

// distro captures the OS-level diversity in a population.
type distro struct {
	name     string
	versions []string
	fsType   string
}

var distros = []distro{
	{name: "amazon-linux", versions: []string{"2012.03", "2013.09"}, fsType: "ext4"},
	{name: "centos", versions: []string{"5.8", "6.3", "6.4"}, fsType: "ext4"},
	{name: "ubuntu", versions: []string{"10.04", "12.04"}, fsType: "ext4"},
	{name: "debian", versions: []string{"6.0", "7.0"}, fsType: "ext3"},
}

// SetOS picks a distribution and fills the OS facts. AppArmor confinement
// follows the Ubuntu/Debian convention. Composed builders (the LAMP stack)
// call the per-app generators on one image; the first SetOS wins so the
// stack shares a single OS identity.
func (b *Builder) SetOS() {
	if b.Img.OS.DistName != "" {
		return
	}
	d := Pick(b.Rng, distros)
	selinux := "disabled"
	if d.name == "centos" && Chance(b.Rng, 0.5) {
		selinux = Pick(b.Rng, []string{"enforcing", "permissive"})
	}
	b.Img.OS = sysimage.OSInfo{
		DistName:  d.name,
		Version:   Pick(b.Rng, d.versions),
		SELinux:   selinux,
		AppArmor:  (d.name == "ubuntu" || d.name == "debian") && Chance(b.Rng, 0.6),
		FSType:    d.fsType,
		HostName:  fmt.Sprintf("ip-10-%d-%d-%d", b.Rng.Intn(256), b.Rng.Intn(256), b.Rng.Intn(254)+1),
		IPAddress: fmt.Sprintf("10.%d.%d.%d", b.Rng.Intn(4), b.Rng.Intn(256), b.Rng.Intn(254)+1),
	}
}

// SetHardware attaches a hardware specification (running instances only;
// dormant EC2 template images do not have one).
func (b *Builder) SetHardware() {
	cores := Pick(b.Rng, []int{1, 2, 4, 8})
	b.Img.HW = sysimage.Hardware{
		Present:    true,
		CPUCores:   cores,
		CPUThreads: cores * 2,
		CPUFreqMHz: Pick(b.Rng, []int{1800, 2000, 2400, 2600}),
		MemBytes:   int64(Pick(b.Rng, []int{1, 2, 4, 8, 16})) << 30,
		DiskBytes:  int64(Pick(b.Rng, []int{20, 50, 100, 200})) << 30,
	}
}
