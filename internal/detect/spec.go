package detect

import (
	"fmt"
	"sort"

	"repro/internal/assemble"
	"repro/internal/conftypes"
	"repro/internal/dataset"
	"repro/internal/rules"
	"repro/internal/templates"
)

// PlanSpec is the serializable content of a compiled Plan: everything
// Compile derived from the training view, in a deterministic order, with
// all runtime-only state (checkers, pools, derived scores) stripped.
// internal/planio encodes a PlanSpec to the binary plan format;
// NewPlanFromSpec turns a decoded spec back into a live Plan. Derived
// quantities (cardinality, type/suspicion scores, prefilter skip flags)
// are intentionally not carried — they are recomputed by the same code
// Compile uses, so a round-tripped plan cannot drift from a compiled one.
type PlanSpec struct {
	// Samples is the training-population size.
	Samples int
	// SuspLimit caps suspicious-value warnings per report (0 = no cap).
	SuspLimit int
	// Attrs lists the compiled attributes in declaration order.
	Attrs []PlanSpecAttr
	// Types carries the target-assembly type declarations (the
	// TrainingTypes map), sorted by name.
	Types []PlanSpecType
	// Rules lists the learned rules whose templates resolved at compile
	// time, in plan order.
	Rules []*rules.Rule
}

// PlanSpecAttr is one attribute's serialized summary.
type PlanSpecAttr struct {
	Name      string
	Type      conftypes.Type
	Augmented bool
	// Has mirrors planAttr.has (attribute observed with a value in
	// training).
	Has bool
	// Sig is the misspelling-prefilter character signature of Name; stored
	// in the binary format so the nearest-name index loads without
	// recomputation.
	Sig uint64
	// Hist is the value histogram, sorted by value for determinism.
	Hist []PlanSpecHistEntry
}

// PlanSpecHistEntry is one histogram bucket.
type PlanSpecHistEntry struct {
	Value string
	Count int
}

// PlanSpecType is one target-assembly type declaration.
type PlanSpecType struct {
	Name string
	Type conftypes.Type
}

// Spec extracts the serializable content of a compiled plan. The result is
// deterministic: attributes keep their declaration order, histograms are
// sorted by value, and the type table is sorted by name, so encoding the
// same plan twice yields identical bytes.
func (p *Plan) Spec() *PlanSpec {
	spec := &PlanSpec{
		Samples:   p.samples,
		SuspLimit: p.suspLimit,
		Attrs:     make([]PlanSpecAttr, len(p.attrStore)),
		Types:     make([]PlanSpecType, 0, len(p.types)),
		Rules:     make([]*rules.Rule, len(p.rules)),
	}
	for i := range p.attrStore {
		pa := &p.attrStore[i]
		sa := &spec.Attrs[i]
		*sa = PlanSpecAttr{
			Name:      pa.decl.Name,
			Type:      pa.decl.Type,
			Augmented: pa.decl.Augmented,
			Has:       pa.has,
			Sig:       charSig(pa.decl.Name),
		}
		// The plan keeps histograms in spec form (sorted by value), so the
		// spec aliases them; both sides treat the slices as immutable.
		sa.Hist = pa.hist
	}
	for name, t := range p.types {
		spec.Types = append(spec.Types, PlanSpecType{Name: name, Type: t})
	}
	sort.Slice(spec.Types, func(a, b int) bool { return spec.Types[a].Name < spec.Types[b].Name })
	for i, pr := range p.rules {
		spec.Rules[i] = pr.rule
	}
	return spec
}

// NewPlanFromSpec rebuilds a live Plan from a (decoded) spec, resolving
// type checkers against the assembler's inferencer and rule templates
// against tpls — the same resolution Compile performs, so checking with
// the rebuilt plan is byte-identical to checking with the original. A nil
// assembler gets a fresh default one; nil templates get the predefined
// set (mirroring detect.New). Rules whose template is not installed are
// dropped, exactly as Compile drops them.
func NewPlanFromSpec(spec *PlanSpec, asm *assemble.Assembler, tpls []*templates.Template) (*Plan, error) {
	if spec == nil {
		return nil, fmt.Errorf("detect: nil plan spec")
	}
	if asm == nil {
		asm = assemble.New()
	}
	if tpls == nil {
		tpls = templates.Predefined()
	}
	checkers := newCheckerCache(asm.Inferencer)
	p := &Plan{
		samples:   spec.Samples,
		suspLimit: spec.SuspLimit,
		assembler: asm,
		attrStore: make([]planAttr, len(spec.Attrs)),
		attrs:     make(map[string]*planAttr, len(spec.Attrs)),
		types:     make(map[string]conftypes.Type, len(spec.Types)),
		names:     make(map[string]string, 8),
		nameIdx:   make([]nameCand, 0, len(spec.Attrs)),
	}
	for i := range spec.Attrs {
		sa := &spec.Attrs[i]
		pa := &p.attrStore[i]
		// The histogram slice is aliased, not copied: the plan and the spec
		// share the sorted-by-value representation, and neither mutates it.
		*pa = planAttr{
			decl:    dataset.Attribute{Name: sa.Name, Type: sa.Type, Augmented: sa.Augmented},
			has:     sa.Has,
			hist:    sa.Hist,
			card:    len(sa.Hist),
			trivial: sa.Type.IsTrivial(),
			check:   checkers.get(sa.Type),
		}
		pa.deriveScores(p.samples)
		p.attrs[sa.Name] = pa
		if !sa.Augmented {
			p.nameIdx = append(p.nameIdx, nameCand{name: sa.Name, sig: sa.Sig})
		}
	}
	for _, ty := range spec.Types {
		p.types[ty.Name] = ty.Type
		if _, ok := p.attrs[ty.Name]; !ok {
			p.names[ty.Name] = ty.Name
		}
	}
	for _, r := range spec.Rules {
		if tpl := findTemplate(tpls, r.Template); tpl != nil {
			p.rules = append(p.rules, planRule{rule: r, tpl: tpl})
		}
	}
	p.pool.New = func() any { return newScratch(p) }
	return p, nil
}

// findTemplate resolves a template ID against an installed set (the
// package-level twin of Detector.template).
func findTemplate(tpls []*templates.Template, id string) *templates.Template {
	for _, t := range tpls {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// Samples reports the training-population size the plan was compiled from.
func (p *Plan) Samples() int { return p.samples }

// RuleCount reports the number of rules the plan checks (rules whose
// template did not resolve at compile time are excluded).
func (p *Plan) RuleCount() int { return len(p.rules) }

// AttrCount reports the number of compiled training attributes.
func (p *Plan) AttrCount() int { return len(p.attrStore) }
