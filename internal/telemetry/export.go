package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"
)

// SnapshotVersion is the schema version stamped into every exported JSON
// snapshot. Bump it when a field changes meaning or disappears; adding
// fields is backward-compatible and does not require a bump. Version 2
// added the top-level "phase" string and "runtime" sampler section; every
// v1 field kept its exact meaning and encoding (the v1-compat test locks
// that).
const SnapshotVersion = 2

// The export structs fix the JSON field order (encoding/json emits struct
// fields in declaration order) and flatten Durations to integral
// microseconds, so snapshots diff cleanly and golden tests hold.

type exportFile struct {
	Version    int            `json:"version"`
	Phase      string         `json:"phase"`
	Counters   []exportCount  `json:"counters"`
	Stages     []exportStage  `json:"stages"`
	Histograms []exportHist   `json:"histograms"`
	Runtime    *exportRuntime `json:"runtime,omitempty"`
	Spans      []exportSpan   `json:"spans"`
	// Optional sections added for the resident scan daemon; absent (not
	// rendered) for pipelines that never record them, which keeps the
	// pre-daemon goldens byte-identical without a version bump.
	Build             *exportBuild        `json:"build,omitempty"`
	LabeledCounters   []exportLabeled     `json:"labeledCounters,omitempty"`
	Gauges            []exportGauge       `json:"gauges,omitempty"`
	LabeledHistograms []exportLabeledHist `json:"labeledHistograms,omitempty"`
}

// exportBuild is the SetBuildInfo metadata.
type exportBuild struct {
	Version   string `json:"version"`
	GoVersion string `json:"goVersion"`
}

type exportLabeled struct {
	Family string `json:"family"`
	Labels string `json:"labels"`
	Value  int64  `json:"value"`
}

type exportGauge struct {
	Family string  `json:"family"`
	Labels string  `json:"labels"`
	Value  float64 `json:"value"`
}

type exportLabeledHist struct {
	Family string `json:"family"`
	Labels string `json:"labels"`
	exportHist
}

// exportRuntime is the Sampler's ring-buffer timeseries: process-health
// samples at a fixed cadence, oldest first.
type exportRuntime struct {
	SampleEveryMicros int64                 `json:"sampleEveryMicros"`
	Samples           []exportRuntimeSample `json:"samples"`
}

type exportRuntimeSample struct {
	AtMicros      int64  `json:"atMicros"`
	HeapBytes     uint64 `json:"heapBytes"`
	GCPauseMicros int64  `json:"gcPauseMicros"`
	GCCycles      uint32 `json:"gcCycles"`
	Goroutines    int    `json:"goroutines"`
	ProgressDone  int64  `json:"progressDone"`
	ProgressTotal int64  `json:"progressTotal"`
}

type exportCount struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

type exportStage struct {
	Name        string `json:"name"`
	TotalMicros int64  `json:"totalMicros"`
	Runs        int64  `json:"runs"`
}

type exportHist struct {
	Name      string         `json:"name"`
	Count     uint64         `json:"count"`
	SumMicros int64          `json:"sumMicros"`
	MinMicros int64          `json:"minMicros"`
	MaxMicros int64          `json:"maxMicros"`
	P50Micros int64          `json:"p50Micros"`
	P90Micros int64          `json:"p90Micros"`
	P99Micros int64          `json:"p99Micros"`
	Buckets   []exportBucket `json:"buckets"`
}

// exportBucket is one histogram bucket; UpperMicros -1 marks the overflow
// bucket (an unbounded upper edge).
type exportBucket struct {
	UpperMicros int64  `json:"upperMicros"`
	Count       uint64 `json:"count"`
}

type exportSpan struct {
	ID          int64  `json:"id"`
	Parent      int64  `json:"parent"`
	Name        string `json:"name"`
	Attrs       []Attr `json:"attrs,omitempty"`
	StartMicros int64  `json:"startMicros"`
	DurMicros   int64  `json:"durMicros"`
}

// exportHistFrom flattens one histogram snapshot into its export shape.
func exportHistFrom(h HistogramData) exportHist {
	eh := exportHist{
		Name:      h.Name,
		Count:     h.Count,
		SumMicros: h.Sum.Microseconds(),
		MinMicros: h.Min.Microseconds(),
		MaxMicros: h.Max.Microseconds(),
		P50Micros: h.P50.Microseconds(),
		P90Micros: h.P90.Microseconds(),
		P99Micros: h.P99.Microseconds(),
		Buckets:   []exportBucket{},
	}
	for _, b := range h.Buckets {
		ub := b.Upper.Microseconds()
		if b.Upper == bucketUpper(histBuckets) {
			ub = -1
		}
		eh.Buckets = append(eh.Buckets, exportBucket{UpperMicros: ub, Count: b.Count})
	}
	return eh
}

// JSON serializes the snapshot as the versioned machine-readable document
// behind the CLI's -stats-json flag. Field order is fixed by the export
// structs and every list is sorted (counters/stages/histograms by name,
// spans by start offset then id), so equal snapshots serialize to equal
// bytes.
func (s Snapshot) JSON() ([]byte, error) {
	f := exportFile{
		Version:    SnapshotVersion,
		Phase:      s.Phase,
		Counters:   []exportCount{},
		Stages:     []exportStage{},
		Histograms: []exportHist{},
		Spans:      []exportSpan{},
	}
	if s.SampleEvery > 0 || len(s.Runtime) > 0 {
		rt := &exportRuntime{
			SampleEveryMicros: s.SampleEvery.Microseconds(),
			Samples:           []exportRuntimeSample{},
		}
		for _, smp := range s.Runtime {
			rt.Samples = append(rt.Samples, exportRuntimeSample{
				AtMicros:      smp.At.Microseconds(),
				HeapBytes:     smp.HeapBytes,
				GCPauseMicros: smp.GCPauseTotal.Microseconds(),
				GCCycles:      smp.GCCycles,
				Goroutines:    smp.Goroutines,
				ProgressDone:  smp.ProgressDone,
				ProgressTotal: smp.ProgressTotal,
			})
		}
		f.Runtime = rt
	}
	for _, c := range s.Counters {
		f.Counters = append(f.Counters, exportCount{Name: c.Name, Value: c.Value})
	}
	for _, st := range s.Stages {
		f.Stages = append(f.Stages, exportStage{Name: st.Name, TotalMicros: st.Total.Microseconds(), Runs: st.Runs})
	}
	for _, h := range s.Histograms {
		f.Histograms = append(f.Histograms, exportHistFrom(h))
	}
	if s.BuildVersion != "" {
		f.Build = &exportBuild{Version: s.BuildVersion, GoVersion: s.GoVersion}
	}
	for _, c := range s.LabeledCounters {
		f.LabeledCounters = append(f.LabeledCounters, exportLabeled{Family: c.Family, Labels: c.Labels, Value: c.Value})
	}
	for _, g := range s.Gauges {
		f.Gauges = append(f.Gauges, exportGauge{Family: g.Family, Labels: g.Labels, Value: g.Value})
	}
	for _, lh := range s.LabeledHistograms {
		f.LabeledHistograms = append(f.LabeledHistograms, exportLabeledHist{
			Family: lh.Family, Labels: lh.Labels, exportHist: exportHistFrom(lh.Data),
		})
	}
	for _, sp := range s.Spans {
		f.Spans = append(f.Spans, exportSpan{
			ID:          sp.ID,
			Parent:      sp.Parent,
			Name:        sp.Name,
			Attrs:       sp.Attrs,
			StartMicros: sp.Start.Microseconds(),
			DurMicros:   sp.Dur.Microseconds(),
		})
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("telemetry: encode snapshot: %w", err)
	}
	return append(data, '\n'), nil
}

// writeArtifact writes an exported document to a file, or to stdout when
// path is "-" (the conventional stdout sentinel; no file named "-" is ever
// created).
func writeArtifact(path string, data []byte, what string) error {
	if path == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			return fmt.Errorf("telemetry: write %s to stdout: %w", what, err)
		}
		return nil
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("telemetry: write %s: %w", what, err)
	}
	return nil
}

// WriteJSON writes the snapshot document to a file ("-" for stdout).
func (s Snapshot) WriteJSON(path string) error {
	data, err := s.JSON()
	if err != nil {
		return err
	}
	return writeArtifact(path, data, "snapshot")
}

// NormalizeTimes returns a copy of the snapshot with every span rewritten
// onto a synthetic clock — span i (in the snapshot's deterministic order)
// starts at i*step and lasts step — every stage total zeroed, and every
// runtime sample's offset rewritten to i*step. Counter values, histogram
// contents, span names/ids/attrs, the tree shape, and the sampled gauge
// values are preserved. Golden tests use this to strip the only
// nondeterministic inputs (wall-clock readings) from exported documents.
func (s Snapshot) NormalizeTimes(step time.Duration) Snapshot {
	out := s
	out.Stages = append([]StageTiming(nil), s.Stages...)
	for i := range out.Stages {
		out.Stages[i].Total = 0
	}
	out.Spans = append([]SpanData(nil), s.Spans...)
	sort.Slice(out.Spans, func(i, j int) bool { return out.Spans[i].ID < out.Spans[j].ID })
	for i := range out.Spans {
		out.Spans[i].Start = time.Duration(i) * step
		out.Spans[i].Dur = step
	}
	out.Runtime = append([]RuntimeSample(nil), s.Runtime...)
	for i := range out.Runtime {
		out.Runtime[i].At = time.Duration(i) * step
	}
	return out
}
