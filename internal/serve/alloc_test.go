package serve_test

import (
	"bytes"
	"io"
	"net/http"
	"testing"

	"repro/internal/serve"
)

// maxScanRequestAllocs is the end-to-end allocation ceiling for one
// /v1/scan request, measured across every goroutine involved (client,
// server conn, handler). The diet that routed body reads through the
// pooled sysimage buffer, report rendering through a pooled compact
// encoder, and telemetry.L through stack scratch landed the request at
// ~453 objects end-to-end (458 server-side by benchmem); 900 leaves ~2x
// headroom for runtime scheduling noise while still failing hard if the
// old MarshalIndent + io.ReadAll costs (~250 objects and ~34KB) creep
// back in.
const maxScanRequestAllocs = 900

// TestServeScanAllocCeiling pins the serve-path allocation diet: the
// per-request decode and render hot path must keep using the pooled
// machinery, so the whole request stays under the ceiling.
func TestServeScanAllocCeiling(t *testing.T) {
	d, base := startDaemon(t, serve.Options{})
	if _, err := d.Registry().Register("mysql", "", buildPlan(t, "mysql", 30, 19), "test"); err != nil {
		t.Fatal(err)
	}
	victim := brokenVictim(t, "mysql", 4, 8)
	url := base + "/v1/scan/mysql"

	post := func() {
		resp, err := http.Post(url, "application/json", bytes.NewReader(victim))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
	}
	// Warm the connection pool, the decode/render buffer pools, and the
	// interner before measuring.
	for i := 0; i < 5; i++ {
		post()
	}
	allocs := testing.AllocsPerRun(30, post)
	t.Logf("scan request: %.1f allocs end-to-end", allocs)
	if allocs > maxScanRequestAllocs {
		t.Errorf("scan request allocated %.1f objects end-to-end; ceiling is %d", allocs, maxScanRequestAllocs)
	}
}
