// Command evaluate regenerates the paper's evaluation tables on the
// synthetic corpora.
//
// Usage:
//
//	evaluate              # all tables
//	evaluate -table 8     # one table (1, 2, 3, 8, 9, 10, 11, 12, 13)
//	evaluate -seed 42     # different corpus seed
//	evaluate -matrix      # scenario × detector evaluation matrix only
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/eval"
	"repro/internal/evalmatrix"
	"repro/internal/inject"
	"repro/internal/telemetry"
)

func main() {
	table := flag.Int("table", 0, "table to regenerate (0 = all)")
	seed := flag.Int64("seed", 1, "corpus seed")
	budget := flag.Int("budget", eval.Table3Budget, "frequent-item-set budget for Table 3 (simulated OOM)")
	ext := flag.Bool("ext", false, "also run the extension studies (env-error injection, LAMP cross-component)")
	matrix := flag.Bool("matrix", false, "run only the scenario × detector evaluation matrix")
	matrixOut := flag.String("matrix-out", "", "write the matrix grid JSON to this file")
	matrixPops := flag.String("matrix-pops", "", "comma-separated population subset for the matrix (default: all)")
	matrixKinds := flag.String("matrix-kinds", "", "comma-separated error-class subset for the matrix (default: all 9)")
	matrixConfigs := flag.String("matrix-configs", "", "comma-separated detector-config subset for the matrix (default: all)")
	matrixTraining := flag.Int("matrix-training", 0, "training images per matrix population (0 = default)")
	matrixVictims := flag.Int("matrix-victims", 0, "victim images per matrix cell (0 = default)")
	matrixPerVictim := flag.Int("matrix-per-victim", 0, "injections per matrix victim (0 = default)")
	obs := &telemetry.Flags{}
	obs.Register(flag.CommandLine)
	flag.Parse()

	if err := obs.Start("evaluate"); err != nil {
		fmt.Fprintln(os.Stderr, "evaluate:", err)
		os.Exit(1)
	}
	if obs.Rec != nil {
		eval.SetTelemetry(obs.Rec)
	}
	fail := func(err error) {
		obs.Log.Error("evaluate failed", "err", err)
		obs.Finish()
		os.Exit(1)
	}

	if *matrix {
		opts := evalmatrix.Options{
			Seed:        *seed,
			TrainingN:   *matrixTraining,
			Victims:     *matrixVictims,
			PerVictim:   *matrixPerVictim,
			Populations: splitList(*matrixPops),
			Configs:     splitList(*matrixConfigs),
			Telemetry:   obs.Rec,
		}
		for _, k := range splitList(*matrixKinds) {
			opts.Kinds = append(opts.Kinds, inject.Kind(k))
		}
		if err := runMatrix(opts, *matrixOut); err != nil {
			fail(err)
		}
	} else {
		if err := run(*table, *seed, *budget); err != nil {
			fail(err)
		}
		if *ext || *table == 0 {
			if err := runExtensions(*seed); err != nil {
				fail(err)
			}
		}
	}
	if err := obs.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, "evaluate:", err)
		os.Exit(1)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func runMatrix(opts evalmatrix.Options, outPath string) error {
	grid, err := evalmatrix.Run(opts)
	if err != nil {
		return err
	}
	fmt.Println(evalmatrix.Render(grid))
	if outPath == "" {
		return nil
	}
	data, err := grid.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return fmt.Errorf("evaluate: write matrix grid: %w", err)
	}
	fmt.Fprintf(os.Stderr, "evaluate: wrote %s (%d cells)\n", outPath, len(grid.Cells))
	return nil
}

func runExtensions(seed int64) error {
	rows, err := eval.ExtensionEnvInjection(seed)
	if err != nil {
		return err
	}
	fmt.Println(eval.RenderEnvInjection(rows))
	res, err := eval.ExtensionCrossComponent(60, seed)
	if err != nil {
		return err
	}
	fmt.Println(eval.RenderCrossComponent(res))
	points, err := eval.ThresholdSweep("mysql", seed)
	if err != nil {
		return err
	}
	fmt.Println(eval.RenderSweep("mysql", points))
	return nil
}

func run(table int, seed int64, budget int) error {
	want := func(n int) bool { return table == 0 || table == n }

	if want(1) {
		fmt.Println(eval.RenderTable1())
	}
	if want(2) {
		rows, err := eval.Table2(seed)
		if err != nil {
			return err
		}
		fmt.Println(eval.RenderTable2(rows))
	}
	if want(3) {
		rows, err := eval.Table3(seed, nil, budget)
		if err != nil {
			return err
		}
		fmt.Println(eval.RenderTable3(rows))
	}
	if want(8) {
		rows, err := eval.Table8(seed)
		if err != nil {
			return err
		}
		fmt.Println(eval.RenderTable8(rows))
	}
	if want(9) {
		rows, err := eval.Table9(seed)
		if err != nil {
			return err
		}
		fmt.Println(eval.RenderTable9(rows))
	}
	if want(10) {
		rows, err := eval.Table10(seed)
		if err != nil {
			return err
		}
		fmt.Println(eval.RenderTable10(rows))
	}
	if want(11) {
		rows, err := eval.Table11(seed)
		if err != nil {
			return err
		}
		fmt.Println(eval.RenderTable11(rows))
	}
	if want(12) {
		rows, err := eval.Table12(seed)
		if err != nil {
			return err
		}
		fmt.Println(eval.RenderTable12(rows))
	}
	if want(13) {
		rows, err := eval.Table13(seed)
		if err != nil {
			return err
		}
		fmt.Println(eval.RenderTable13(rows))
	}
	return nil
}
