// Package evalmatrix runs the scenario × detector evaluation matrix: every
// injection error class × every application population × a set of named
// detector configurations, each cell scored as precision/recall/F1 against
// the injector's ground truth. The grid exports as a versioned JSON
// document (EVAL_matrix.json) plus a rendered text table, and a regression
// gate (CompareForRegressions) makes detection-quality drift as CI-visible
// as the perf trajectory in BENCH_*.json.
//
// Determinism: one profile is trained per population from the root seed
// and shared read-only across all of its cells (exactly how a compiled
// detect.Plan is shared by scan workers); victim images and their
// injections derive from CellSeed(root, population, kind), so every
// detector configuration is graded on identical inputs and the whole grid
// is byte-reproducible regardless of worker scheduling.
package evalmatrix

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"

	"repro/internal/assemble"
	"repro/internal/baseline"
	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/inject"
	"repro/internal/rules"
	"repro/internal/sysimage"
	"repro/internal/telemetry"
	"repro/internal/templates"
)

// Grid defaults: small enough that the regression gate re-runs the full
// checked-in grid inside the ordinary test suite, large enough that every
// population learns real rules.
const (
	DefaultTrainingN = 40
	DefaultVictims   = 3
	DefaultPerVictim = 4
)

// DefaultPopulations are the grid's application populations: the three
// per-app corpora of the paper's evaluation plus the LAMP composite from
// the cross-component extension.
var DefaultPopulations = []string{"apache", "mysql", "php", "lamp"}

// Detector engines a configuration can select.
const (
	EnginePlan        = "plan"         // compiled detect.Plan (the production scan path)
	EngineLegacy      = "legacy"       // detect.Detector.Check (the reference implementation)
	EngineBaseline    = "baseline"     // value-comparison baseline (PeerPressure-style)
	EngineBaselineEnv = "baseline-env" // baseline over the env-augmented attribute set
)

// Config is one named detector configuration: which engine checks the
// victims and, for the EnCore engines, the rule-inference thresholds the
// shared profile is specialized with.
type Config struct {
	Name   string
	Engine string
	Rules  rules.Config
}

// DefaultConfigs returns the named configurations of the full grid: both
// EnCore engines at the paper's thresholds (their cells must agree —
// plan/legacy equivalence is visible right in the grid), two threshold
// sweep points, and the two comparison baselines of Table 8.
func DefaultConfigs() []Config {
	def := rules.DefaultConfig()
	support := def
	support.MinSupportFraction = 0.50
	entropy := def
	entropy.UseEntropyFilter = false
	return []Config{
		{Name: "plan-default", Engine: EnginePlan, Rules: def},
		{Name: "legacy-default", Engine: EngineLegacy, Rules: def},
		{Name: "plan-support-50", Engine: EnginePlan, Rules: support},
		{Name: "plan-entropy-off", Engine: EnginePlan, Rules: entropy},
		{Name: "baseline", Engine: EngineBaseline},
		{Name: "baseline-env", Engine: EngineBaselineEnv},
	}
}

// configsByName resolves a name filter against DefaultConfigs (nil or
// empty selects all).
func configsByName(names []string) ([]Config, error) {
	all := DefaultConfigs()
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]Config, len(all))
	for _, c := range all {
		byName[c.Name] = c
	}
	out := make([]Config, 0, len(names))
	for _, n := range names {
		c, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("evalmatrix: unknown config %q", n)
		}
		out = append(out, c)
	}
	return out, nil
}

// population describes one grid population: how its training corpus and
// victims are generated, and which apps injections target (victims
// rotate through the list, so the LAMP composite spreads error classes
// across all three components).
type population struct {
	name string
	apps []string
}

func populationByName(name string) (population, error) {
	switch name {
	case "apache", "mysql", "php":
		return population{name: name, apps: []string{name}}, nil
	case "lamp":
		return population{name: "lamp", apps: []string{"apache", "mysql", "php"}}, nil
	}
	return population{}, fmt.Errorf("evalmatrix: unknown population %q", name)
}

func (p population) build(n int, seed int64) ([]*sysimage.Image, error) {
	if p.name == "lamp" {
		return corpus.LAMPTraining(n, seed)
	}
	return corpus.Training(p.name, n, seed)
}

// Options parameterize a grid run. Zero values select the defaults; the
// axis filters (Populations, Configs, Kinds) select subsets for smoke
// grids.
type Options struct {
	Seed        int64
	TrainingN   int
	Victims     int
	PerVictim   int
	Workers     int
	Populations []string
	Configs     []string
	Kinds       []inject.Kind
	Telemetry   *telemetry.Recorder
}

func (o Options) withDefaults() Options {
	if o.TrainingN <= 0 {
		o.TrainingN = DefaultTrainingN
	}
	if o.Victims <= 0 {
		o.Victims = DefaultVictims
	}
	if o.PerVictim <= 0 {
		o.PerVictim = DefaultPerVictim
	}
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if len(o.Populations) == 0 {
		o.Populations = DefaultPopulations
	}
	if len(o.Kinds) == 0 {
		o.Kinds = inject.Kinds
	}
	return o
}

// CellSeed derives the deterministic seed for a (population, kind) victim
// set from the root seed. The configuration deliberately does not enter
// the derivation: every detector configuration is graded on the same
// victims carrying the same injections, so config columns compare
// apples-to-apples. The derivation is pinned by TestCellSeedDerivation —
// changing it changes every cell's inputs and requires regenerating the
// checked-in grid.
func CellSeed(root int64, pop string, kind inject.Kind) int64 {
	h := fnv.New64a()
	h.Write([]byte(pop))
	h.Write([]byte{0})
	h.Write([]byte(kind))
	return root*int64(0x9E3779B97F4A7C15&0x7FFFFFFFFFFFFFFF) ^ int64(h.Sum64()>>1)
}

// instance is one (population, config) detector specialization sharing
// the population's trained dataset read-only.
type instance struct {
	cfg       Config
	ds        *dataset.Dataset
	rules     []*rules.Rule
	templates []*templates.Template
	plan      *detect.Plan
}

// findings checks one victim and returns the flagged attribute names.
// Plan.Check is share-safe; the legacy and baseline engines get a fresh
// (cheap) detector per call over the shared read-only dataset.
func (ins *instance) findings(img *sysimage.Image) ([]string, error) {
	switch ins.cfg.Engine {
	case EnginePlan:
		rep, err := ins.plan.Check(img)
		if err != nil {
			return nil, err
		}
		return warningAttrs(rep), nil
	case EngineLegacy:
		dt := detect.New(ins.ds, ins.rules)
		dt.Templates = ins.templates
		rep, err := dt.Check(img)
		if err != nil {
			return nil, err
		}
		return warningAttrs(rep), nil
	case EngineBaseline, EngineBaselineEnv:
		bl := baseline.NewBaseline(ins.ds)
		if ins.cfg.Engine == EngineBaselineEnv {
			bl = baseline.NewBaselineEnv(ins.ds)
		}
		fs, err := bl.Check(img)
		if err != nil {
			return nil, err
		}
		attrs := make([]string, len(fs))
		for i, f := range fs {
			attrs[i] = f.Attr
		}
		return attrs, nil
	}
	return nil, fmt.Errorf("evalmatrix: unknown engine %q", ins.cfg.Engine)
}

func warningAttrs(rep *detect.Report) []string {
	attrs := make([]string, len(rep.Warnings))
	for i, w := range rep.Warnings {
		attrs[i] = w.Attr
	}
	return attrs
}

// victim is one mutated target image with its injection ground truth.
type victim struct {
	img  *sysimage.Image
	injs []inject.Injection
}

// buildVictims generates the (population, kind) victim set: fresh images
// from the cell seed, each carrying up to PerVictim injections of the
// kind. Victims where the kind is inapplicable (zero injections) are
// dropped so they neither pad the denominator nor pollute precision with
// a clean image's noise floor.
func buildVictims(pop population, kind inject.Kind, opts Options) ([]victim, error) {
	cs := CellSeed(opts.Seed, pop.name, kind)
	var out []victim
	for v := 0; v < opts.Victims; v++ {
		genSeed := cs + int64(v)*1_000_003
		imgs, err := pop.build(1, genSeed)
		if err != nil {
			return nil, err
		}
		img := imgs[0]
		img.ID = fmt.Sprintf("%s-%s-victim-%d", pop.name, kind, v)
		app := pop.apps[v%len(pop.apps)]
		injs, err := inject.New(genSeed+17).InjectKind(img, app, kind, opts.PerVictim)
		if err != nil {
			return nil, err
		}
		if len(injs) == 0 {
			continue
		}
		out = append(out, victim{img: img, injs: injs})
	}
	return out, nil
}

// Run computes the grid. Populations train concurrently, then all cells
// compute on a bounded worker pool; results land in axis order, so the
// output is independent of scheduling.
func Run(opts Options) (*Grid, error) {
	opts = opts.withDefaults()
	rec := opts.Telemetry
	root := rec.StartSpan("evalmatrix.run")
	defer root.End()

	pops := make([]population, len(opts.Populations))
	for i, name := range opts.Populations {
		p, err := populationByName(name)
		if err != nil {
			return nil, err
		}
		pops[i] = p
	}
	configs, err := configsByName(opts.Configs)
	if err != nil {
		return nil, err
	}

	// Phase 1: per population, train once (corpus + assembly) and
	// specialize per config (rule inference at the config's thresholds,
	// plan compilation). Populations run concurrently; within one
	// population the config specializations run serially because they
	// share the dataset's lazily built columnar index. Configs with
	// identical thresholds share one inference run.
	instances := make([][]*instance, len(pops))
	victims := make([][][]victim, len(pops)) // [pop][kind]
	trainErrs := make([]error, len(pops))
	var wg sync.WaitGroup
	for pi := range pops {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			trainErrs[pi] = func() error {
				pop := pops[pi]
				sp := root.StartChild("evalmatrix.train", telemetry.A("population", pop.name))
				defer sp.End()
				images, err := pop.build(opts.TrainingN, opts.Seed)
				if err != nil {
					return err
				}
				asm := assemble.New()
				asm.Telemetry = rec
				ds, err := asm.AssembleTraining(images)
				if err != nil {
					return err
				}
				byID := corpus.ByID(images)
				type inferred struct {
					rules     []*rules.Rule
					templates []*templates.Template
				}
				cache := map[rules.Config]inferred{}
				instances[pi] = make([]*instance, len(configs))
				for ci, cfg := range configs {
					ins := &instance{cfg: cfg, ds: ds}
					if cfg.Engine == EnginePlan || cfg.Engine == EngineLegacy {
						inf, ok := cache[cfg.Rules]
						if !ok {
							eng := rules.NewEngine()
							eng.Config = cfg.Rules
							eng.Telemetry = rec
							inf = inferred{rules: eng.Infer(ds, byID), templates: eng.Templates}
							cache[cfg.Rules] = inf
						}
						ins.rules, ins.templates = inf.rules, inf.templates
						if cfg.Engine == EnginePlan {
							dt := detect.New(ds, ins.rules)
							dt.Templates = ins.templates
							ins.plan = dt.Compile()
						}
					}
					instances[pi][ci] = ins
				}
				victims[pi] = make([][]victim, len(opts.Kinds))
				for ki, kind := range opts.Kinds {
					vs, err := buildVictims(pop, kind, opts)
					if err != nil {
						return err
					}
					victims[pi][ki] = vs
					for _, v := range vs {
						rec.Add(telemetry.CounterMatrixInjections, int64(len(v.injs)))
					}
				}
				return nil
			}()
		}(pi)
	}
	wg.Wait()
	for _, err := range trainErrs {
		if err != nil {
			return nil, err
		}
	}

	// Phase 2: all cells on a bounded worker pool. Cells only read the
	// shared instances and victim sets; results are written by index, so
	// the grid's cell order is the axis order, not completion order.
	type cellJob struct{ pi, ci, ki int }
	jobs := make([]cellJob, 0, len(pops)*len(configs)*len(opts.Kinds))
	for pi := range pops {
		for ci := range configs {
			for ki := range opts.Kinds {
				jobs = append(jobs, cellJob{pi, ci, ki})
			}
		}
	}
	cells := make([]Cell, len(jobs))
	cellErrs := make([]error, len(jobs))
	next := make(chan int, len(jobs))
	for i := range jobs {
		next <- i
	}
	close(next)
	workers := opts.Workers
	if workers > len(jobs) && len(jobs) > 0 {
		workers = len(jobs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				j := jobs[i]
				pop, cfg, kind := pops[j.pi], configs[j.ci], opts.Kinds[j.ki]
				sp := root.StartChild("evalmatrix.cell",
					telemetry.A("population", pop.name),
					telemetry.A("config", cfg.Name),
					telemetry.A("kind", string(kind)))
				cells[i], cellErrs[i] = computeCell(pop.name, instances[j.pi][j.ci], kind, victims[j.pi][j.ki])
				rec.Add(telemetry.CounterMatrixCells, 1)
				rec.Add(telemetry.CounterMatrixFindings, int64(cells[i].Findings))
				sp.End()
			}
		}()
	}
	wg.Wait()
	for _, err := range cellErrs {
		if err != nil {
			return nil, err
		}
	}

	kinds := make([]string, len(opts.Kinds))
	for i, k := range opts.Kinds {
		kinds[i] = string(k)
	}
	configNames := make([]string, len(configs))
	for i, c := range configs {
		configNames[i] = c.Name
	}
	return &Grid{
		Version:     GridVersion,
		Seed:        opts.Seed,
		TrainingN:   opts.TrainingN,
		Victims:     opts.Victims,
		PerVictim:   opts.PerVictim,
		Populations: opts.Populations,
		Configs:     configNames,
		Kinds:       kinds,
		Cells:       cells,
	}, nil
}

// computeCell scores one configuration against one victim set.
func computeCell(pop string, ins *instance, kind inject.Kind, vs []victim) (Cell, error) {
	c := Cell{Population: pop, Config: ins.cfg.Name, Kind: string(kind), Victims: len(vs)}
	for _, v := range vs {
		attrs, err := ins.findings(v.img)
		if err != nil {
			return c, fmt.Errorf("evalmatrix: %s/%s/%s on %s: %w", pop, ins.cfg.Name, kind, v.img.ID, err)
		}
		c.Injected += len(v.injs)
		c.Findings += len(attrs)
		for _, inj := range v.injs {
			for _, attr := range attrs {
				if inj.Matches(attr) {
					c.Detected++
					break
				}
			}
		}
		for _, attr := range attrs {
			for _, inj := range v.injs {
				if inj.Matches(attr) {
					c.Matched++
					break
				}
			}
		}
	}
	if c.Findings > 0 {
		c.Precision = round4(float64(c.Matched) / float64(c.Findings))
	}
	if c.Injected > 0 {
		c.Recall = round4(float64(c.Detected) / float64(c.Injected))
	}
	if c.Precision+c.Recall > 0 {
		c.F1 = round4(2 * c.Precision * c.Recall / (c.Precision + c.Recall))
	}
	return c, nil
}
