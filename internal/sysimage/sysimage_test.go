package sysimage

import (
	"testing"
	"testing/quick"
)

func testImage() *Image {
	im := New("test-1")
	im.Users["root"] = &User{Name: "root", UID: 0, GID: 0, IsAdmin: true}
	im.Users["mysql"] = &User{Name: "mysql", UID: 27, GID: 27}
	im.Users["nobody"] = &User{Name: "nobody", UID: 99, GID: 99}
	im.Groups["root"] = &Group{Name: "root", GID: 0}
	im.Groups["mysql"] = &Group{Name: "mysql", GID: 27}
	im.Groups["www"] = &Group{Name: "www", GID: 48, Members: []string{"nobody"}}
	im.Services = []Service{{Name: "mysql", Port: 3306, Protocol: "tcp"}}
	im.AddDir("/var/lib/mysql", "mysql", "mysql", 0o750)
	im.AddRegular("/var/lib/mysql/ibdata1", "mysql", "mysql", 0o660, 1024)
	im.AddRegular("/etc/my.cnf", "root", "root", 0o644, 200)
	im.AddSymlink("/data", "/var/lib/mysql", "root", "root")
	return im
}

func TestLookupAndKinds(t *testing.T) {
	im := testImage()
	if !im.IsDir("/var/lib/mysql") {
		t.Fatal("expected directory")
	}
	if !im.IsFile("/etc/my.cnf") {
		t.Fatal("expected regular file")
	}
	if im.IsDir("/etc/my.cnf") {
		t.Fatal("file must not be a directory")
	}
	if im.Exists("/no/such/path") {
		t.Fatal("missing path must not exist")
	}
}

func TestImplicitParents(t *testing.T) {
	im := testImage()
	for _, p := range []string{"/var", "/var/lib", "/etc", "/"} {
		fm := im.Lookup(p)
		if fm == nil || fm.Kind != KindDir {
			t.Fatalf("parent %s should be an implicit directory, got %+v", p, fm)
		}
	}
}

func TestPathNormalization(t *testing.T) {
	im := testImage()
	if !im.IsDir("/var/lib/mysql/") {
		t.Fatal("trailing slash should normalize")
	}
	if !im.IsFile("/etc//my.cnf") {
		t.Fatal("duplicate separators should normalize")
	}
}

func TestSymlinkResolution(t *testing.T) {
	im := testImage()
	if !im.IsDir("/data") {
		t.Fatal("symlink to directory should resolve to dir")
	}
	fm := im.Lookup("/data")
	if fm == nil || fm.Kind != KindSymlink {
		t.Fatal("Lookup must not resolve symlinks")
	}
}

func TestSymlinkCycleBounded(t *testing.T) {
	im := New("cycle")
	im.AddSymlink("/a", "/b", "root", "root")
	im.AddSymlink("/b", "/a", "root", "root")
	if im.Resolve("/a") != nil && im.Resolve("/a").Kind != KindSymlink {
		t.Fatal("cycle should not resolve to a non-symlink")
	}
	// Must terminate (no infinite loop) — reaching here is the test.
}

func TestChildrenSorted(t *testing.T) {
	im := testImage()
	im.AddRegular("/var/lib/mysql/a.frm", "mysql", "mysql", 0o660, 10)
	kids := im.Children("/var/lib/mysql")
	if len(kids) != 2 {
		t.Fatalf("children = %d, want 2", len(kids))
	}
	if kids[0].Path > kids[1].Path {
		t.Fatal("children must be sorted")
	}
}

func TestHasSubdirAndSymlink(t *testing.T) {
	im := testImage()
	if im.HasSubdir("/var/lib/mysql") {
		t.Fatal("no subdir expected")
	}
	im.AddDir("/var/lib/mysql/perf", "mysql", "mysql", 0o750)
	if !im.HasSubdir("/var/lib/mysql") {
		t.Fatal("subdir expected")
	}
	if im.HasSymlink("/var/lib/mysql") {
		t.Fatal("no symlink expected")
	}
	im.AddSymlink("/var/lib/mysql/link", "/tmp", "mysql", "mysql")
	if !im.HasSymlink("/var/lib/mysql") {
		t.Fatal("symlink expected")
	}
}

func TestAccounts(t *testing.T) {
	im := testImage()
	if !im.UserExists("mysql") || im.UserExists("ghost") {
		t.Fatal("user existence wrong")
	}
	if !im.GroupExists("www") || im.GroupExists("ghost") {
		t.Fatal("group existence wrong")
	}
	if !im.UserInGroup("mysql", "mysql") {
		t.Fatal("primary-GID membership should count")
	}
	if !im.UserInGroup("nobody", "www") {
		t.Fatal("member-list membership should count")
	}
	if im.UserInGroup("mysql", "www") {
		t.Fatal("non-member should not be in group")
	}
	if !im.IsAdmin("root") || im.IsAdmin("mysql") {
		t.Fatal("admin detection wrong")
	}
	if pg := im.PrimaryGroup("mysql"); pg != "mysql" {
		t.Fatalf("primary group = %q", pg)
	}
}

func TestPermissions(t *testing.T) {
	im := testImage()
	if !im.Accessible("mysql", "/var/lib/mysql/ibdata1") {
		t.Fatal("owner should read 0660 file")
	}
	if im.Accessible("nobody", "/var/lib/mysql/ibdata1") {
		t.Fatal("other should not read 0660 file")
	}
	if !im.Accessible("root", "/var/lib/mysql/ibdata1") {
		t.Fatal("root reads everything")
	}
	if !im.Accessible("nobody", "/etc/my.cnf") {
		t.Fatal("other should read 0644 file")
	}
	if im.Writable("nobody", "/etc/my.cnf") {
		t.Fatal("other should not write 0644 file")
	}
	if !im.Writable("mysql", "/var/lib/mysql/ibdata1") {
		t.Fatal("owner should write 0660 file")
	}
	if im.Accessible("ghost", "/etc/my.cnf") {
		t.Fatal("unknown user should not access anything")
	}
	if im.Accessible("mysql", "/missing") {
		t.Fatal("missing path never accessible")
	}
}

func TestGroupPermissionBit(t *testing.T) {
	im := testImage()
	im.AddRegular("/srv/shared.log", "root", "www", 0o640, 0)
	if !im.Accessible("nobody", "/srv/shared.log") {
		t.Fatal("www group member should read 0640 group file")
	}
	if im.Writable("nobody", "/srv/shared.log") {
		t.Fatal("group bit 4 does not grant write")
	}
}

func TestServices(t *testing.T) {
	im := testImage()
	if !im.PortRegistered(3306) || im.PortRegistered(1234) {
		t.Fatal("port registration wrong")
	}
	if im.ServiceForPort(3306) != "mysql" || im.ServiceForPort(1) != "" {
		t.Fatal("service lookup wrong")
	}
}

func TestConfigFiles(t *testing.T) {
	im := testImage()
	im.SetConfig("mysql", "/etc/my.cnf", "[mysqld]\nuser=mysql\n")
	cf := im.ConfigFor("mysql")
	if cf == nil || cf.Path != "/etc/my.cnf" {
		t.Fatalf("config = %+v", cf)
	}
	im.SetConfig("mysql", "/etc/my.cnf", "new")
	if im.ConfigFor("mysql").Content != "new" {
		t.Fatal("SetConfig should replace in place")
	}
	if len(im.ConfigFiles) != 1 {
		t.Fatal("SetConfig must not duplicate")
	}
	if im.ConfigFor("apache") != nil {
		t.Fatal("missing app config should be nil")
	}
}

func TestCloneIsDeep(t *testing.T) {
	im := testImage()
	c := im.Clone()
	c.Files["/etc/my.cnf"].Owner = "attacker"
	c.Users["mysql"].UID = 1
	c.Groups["www"].Members[0] = "attacker"
	c.Env["X"] = "1"
	if im.Files["/etc/my.cnf"].Owner != "root" {
		t.Fatal("clone shares file meta")
	}
	if im.Users["mysql"].UID != 27 {
		t.Fatal("clone shares users")
	}
	if im.Groups["www"].Members[0] != "nobody" {
		t.Fatal("clone shares group member slices")
	}
	if _, ok := im.Env["X"]; ok {
		t.Fatal("clone shares env")
	}
}

func TestListsSorted(t *testing.T) {
	im := testImage()
	files := im.FileList()
	for i := 1; i < len(files); i++ {
		if files[i-1] > files[i] {
			t.Fatal("FileList not sorted")
		}
	}
	users := im.UserList()
	if len(users) != 3 || users[0] != "mysql" {
		t.Fatalf("UserList = %v", users)
	}
	groups := im.GroupList()
	if len(groups) != 3 || groups[0] != "mysql" {
		t.Fatalf("GroupList = %v", groups)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	im := testImage()
	im.SetConfig("mysql", "/etc/my.cnf", "[mysqld]\nuser=mysql\n")
	im.HW = Hardware{Present: true, CPUCores: 4, MemBytes: 1 << 30}
	im.OS = OSInfo{DistName: "ubuntu", Version: "12.04", SELinux: "disabled"}
	data, err := im.MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != im.ID || len(back.Files) != len(im.Files) {
		t.Fatal("round trip lost data")
	}
	if !back.IsDir("/var/lib/mysql") || !back.UserExists("mysql") {
		t.Fatal("round trip lost semantics")
	}
	if back.HW.CPUCores != 4 || back.OS.DistName != "ubuntu" {
		t.Fatal("round trip lost HW/OS")
	}
}

func TestLoadJSONEmptyMaps(t *testing.T) {
	im, err := LoadJSON([]byte(`{"id":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	// Maps must be usable after decoding a minimal document.
	im.Env["k"] = "v"
	im.Users["u"] = &User{Name: "u"}
	if !im.UserExists("u") {
		t.Fatal("maps not initialized")
	}
}

func TestLoadJSONError(t *testing.T) {
	if _, err := LoadJSON([]byte("{broken")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestSaveLoadDir(t *testing.T) {
	dir := t.TempDir()
	a, b := testImage(), testImage()
	a.ID, b.ID = "img-b", "img-a"
	if err := SaveDir(dir, []*Image{a, b}); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != "img-a" || got[1].ID != "img-b" {
		t.Fatalf("LoadDir order wrong: %v %v", got[0].ID, got[1].ID)
	}
}

func TestFileKindString(t *testing.T) {
	if KindFile.String() != "file" || KindDir.String() != "dir" || KindSymlink.String() != "symlink" {
		t.Fatal("kind strings wrong")
	}
	if FileKind(42).String() == "" {
		t.Fatal("unknown kind should still stringify")
	}
}

func TestPermissionProperty(t *testing.T) {
	// Property: write permission implies nothing about read, but the root
	// user can always do both; and Accessible never panics for arbitrary
	// inputs.
	im := testImage()
	f := func(user, p string, mode uint16) bool {
		im.AddRegular("/prop/file", "mysql", "mysql", uint32(mode)&0o777, 1)
		_ = im.Accessible(user, p)
		_ = im.Writable(user, p)
		return im.Accessible("root", "/prop/file") && im.Writable("root", "/prop/file")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
