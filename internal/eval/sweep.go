package eval

import (
	"fmt"
	"strings"

	"repro/internal/corpus"
	"repro/internal/rules"
)

// SweepPoint is the rule-inference outcome at one threshold setting.
type SweepPoint struct {
	Confidence float64
	Support    float64
	Entropy    float64
	Rules      int
	TrueRules  int
	FalseRules int
}

// Precision returns the fraction of learned rules that match ground truth.
func (p SweepPoint) Precision() float64 {
	if p.Rules == 0 {
		return 0
	}
	return float64(p.TrueRules) / float64(p.Rules)
}

// ThresholdSweep measures how the paper's three filters trade rule yield
// against precision on one app's corpus. Each point varies a single
// threshold from the defaults (conf 0.90 / support 0.10 / entropy 0.325),
// so the sweep doubles as a sensitivity analysis for the values Section
// 5.2 selects.
func ThresholdSweep(app string, seed int64) ([]SweepPoint, error) {
	tr, err := Train(app, 0, seed)
	if err != nil {
		return nil, err
	}
	truth := corpus.GroundTruthRules(app)
	var points []SweepPoint

	// One engine serves all 15 points: only the thresholds change between
	// runs, so the per-row evaluation contexts (and the dataset's columnar
	// index) are derived once instead of once per point.
	eng := newEngine()
	runWith := func(cfg rules.Config) SweepPoint {
		eng.Config = cfg
		learned := eng.Infer(tr.Data, tr.ByID)
		p := SweepPoint{
			Confidence: cfg.MinConfidence,
			Support:    cfg.MinSupportFraction,
			Rules:      len(learned),
		}
		if cfg.UseEntropyFilter {
			p.Entropy = cfg.EntropyThreshold
		}
		for _, r := range learned {
			if isTrueRule(r, truth) {
				p.TrueRules++
			} else {
				p.FalseRules++
			}
		}
		return p
	}

	for _, conf := range []float64{0.70, 0.80, 0.90, 0.95, 1.0} {
		cfg := rules.DefaultConfig()
		cfg.MinConfidence = conf
		points = append(points, runWith(cfg))
	}
	for _, supp := range []float64{0.01, 0.05, 0.10, 0.25, 0.50} {
		cfg := rules.DefaultConfig()
		cfg.MinSupportFraction = supp
		points = append(points, runWith(cfg))
	}
	for _, ht := range []float64{0, 0.1, 0.325, 0.6, 1.0} {
		cfg := rules.DefaultConfig()
		cfg.EntropyThreshold = ht
		cfg.UseEntropyFilter = ht > 0
		points = append(points, runWith(cfg))
	}
	return points, nil
}

// RenderSweep prints the sweep.
func RenderSweep(app string, points []SweepPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: filter-threshold sensitivity (%s)\n", app)
	fmt.Fprintf(&b, "%-6s %-8s %-8s %7s %6s %6s %10s\n", "conf", "support", "entropy", "rules", "true", "false", "precision")
	for _, p := range points {
		fmt.Fprintf(&b, "%-6.2f %-8.2f %-8.3f %7d %6d %6d %9.0f%%\n",
			p.Confidence, p.Support, p.Entropy, p.Rules, p.TrueRules, p.FalseRules, p.Precision()*100)
	}
	return b.String()
}
