package templates

import (
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/sysimage"
)

// TestValidatorsNeverPanic feeds arbitrary instance slices (including nil,
// empty strings, and garbage) to every predefined validator, with and
// without an environment. Validators must classify or abstain, never
// panic.
func TestValidatorsNeverPanic(t *testing.T) {
	img := sysimage.New("fz")
	img.Users["u"] = &sysimage.User{Name: "u", UID: 1, GID: 1}
	img.Groups["g"] = &sysimage.Group{Name: "g", GID: 1}
	img.AddDir("/d", "u", "g", 0o755)
	ctxs := []*Ctx{
		{Row: &dataset.Row{Cells: map[string][]string{}}, Image: img},
		{Row: &dataset.Row{Cells: map[string][]string{}}},
	}
	f := func(a, b []string) bool {
		for _, tpl := range Predefined() {
			for _, ctx := range ctxs {
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("%s panicked on (%q, %q): %v", tpl.ID, a, b, r)
						}
					}()
					_, _ = tpl.Validate(a, b, ctx)
				}()
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestValidatorsAbstainWithoutEvidence: every validator reports
// inapplicable for empty instance lists.
func TestValidatorsAbstainWithoutEvidence(t *testing.T) {
	ctx := &Ctx{Row: &dataset.Row{Cells: map[string][]string{}}}
	for _, tpl := range Predefined() {
		if _, app := tpl.Validate(nil, nil, ctx); app {
			t.Errorf("%s claims applicability with no instances", tpl.ID)
		}
		if _, app := tpl.Validate([]string{"x"}, nil, ctx); app {
			t.Errorf("%s claims applicability with one empty side", tpl.ID)
		}
	}
}

// TestValidatorDeterminism: validators are pure functions of their inputs.
func TestValidatorDeterminism(t *testing.T) {
	img := sysimage.New("det")
	img.Users["mysql"] = &sysimage.User{Name: "mysql", UID: 27, GID: 27}
	img.AddDir("/var/lib/mysql", "mysql", "mysql", 0o750)
	ctx := &Ctx{Row: &dataset.Row{Cells: map[string][]string{}}, Image: img}
	inputs := [][2][]string{
		{{"/var/lib/mysql"}, {"mysql"}},
		{{"1M"}, {"2M"}},
		{{"On"}, {"Off"}},
		{{"10.0.0.1"}, {"10.0.0.2"}},
		{{"a", "b"}, {"b", "c"}},
	}
	for _, tpl := range Predefined() {
		for _, in := range inputs {
			h1, a1 := tpl.Validate(in[0], in[1], ctx)
			for i := 0; i < 5; i++ {
				h2, a2 := tpl.Validate(in[0], in[1], ctx)
				if h1 != h2 || a1 != a2 {
					t.Fatalf("%s nondeterministic on %v", tpl.ID, in)
				}
			}
		}
	}
}
