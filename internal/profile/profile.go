// Package profile serializes learned knowledge — attribute declarations,
// per-attribute value histograms, and the inferred rules — into a single
// portable document.
//
// The paper notes that "since the checking and the learning are cleanly
// separated, the learned rules can be reused to check different systems".
// A Profile is that separation made concrete: it carries everything the
// anomaly detector consumes about the training population, so a target can
// be checked on a machine that never saw (and is never shipped) the
// training images.
package profile

import (
	"encoding/json"
	"fmt"

	"repro/internal/conftypes"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/rules"
)

// AttrProfile is one attribute's learned summary.
type AttrProfile struct {
	Name      string         `json:"name"`
	Type      string         `json:"type"`
	Augmented bool           `json:"augmented,omitempty"`
	Present   int            `json:"present"`
	Histogram map[string]int `json:"histogram,omitempty"`
}

// Profile is the serializable learned knowledge.
type Profile struct {
	// Samples is the training-population size.
	Samples int           `json:"samples"`
	Attrs   []AttrProfile `json:"attrs"`
	Rules   []*rules.Rule `json:"rules"`
}

// Build summarizes a training dataset and its learned rules.
func Build(training *dataset.Dataset, learned []*rules.Rule) *Profile {
	p := &Profile{Samples: len(training.Rows), Rules: learned}
	view := detect.DatasetView{D: training}
	for _, a := range training.Attributes() {
		p.Attrs = append(p.Attrs, AttrProfile{
			Name:      a.Name,
			Type:      string(a.Type),
			Augmented: a.Augmented,
			Present:   training.Present(a.Name),
			Histogram: view.Histogram(a.Name),
		})
	}
	return p
}

// Marshal serializes the profile to JSON.
func (p *Profile) Marshal() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// Unmarshal parses a serialized profile.
func Unmarshal(data []byte) (*Profile, error) {
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("profile: decode: %w", err)
	}
	return &p, nil
}

// view adapts a Profile to detect.TrainingView.
type view struct {
	p     *Profile
	index map[string]int
}

func (v view) attr(i int) dataset.Attribute {
	a := v.p.Attrs[i]
	return dataset.Attribute{Name: a.Name, Type: conftypes.Type(a.Type), Augmented: a.Augmented}
}

// Attr implements detect.TrainingView.
func (v view) Attr(name string) (dataset.Attribute, bool) {
	i, ok := v.index[name]
	if !ok {
		return dataset.Attribute{}, false
	}
	return v.attr(i), true
}

// Attributes implements detect.TrainingView.
func (v view) Attributes() []dataset.Attribute {
	out := make([]dataset.Attribute, len(v.p.Attrs))
	for i := range v.p.Attrs {
		out[i] = v.attr(i)
	}
	return out
}

// Present implements detect.TrainingView.
func (v view) Present(attr string) int {
	if i, ok := v.index[attr]; ok {
		return v.p.Attrs[i].Present
	}
	return 0
}

// Histogram implements detect.TrainingView.
func (v view) Histogram(attr string) map[string]int {
	if i, ok := v.index[attr]; ok {
		return v.p.Attrs[i].Histogram
	}
	return nil
}

// Samples implements detect.TrainingView.
func (v view) Samples() int { return v.p.Samples }

// Detector builds a ready anomaly detector from the profile alone.
func (p *Profile) Detector() *detect.Detector {
	idx := make(map[string]int, len(p.Attrs))
	types := dataset.New()
	for i, a := range p.Attrs {
		idx[a.Name] = i
		types.DeclareAttr(a.Name, conftypes.Type(a.Type), a.Augmented)
	}
	return detect.NewFromView(view{p: p, index: idx}, types, p.Rules)
}
