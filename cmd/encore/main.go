// Command encore is the EnCore CLI: learn best-practice configuration
// rules from a directory of training images, and check target images
// against learned rules.
//
// Usage:
//
//	encore learn  -training DIR [-rules FILE] [-custom FILE]
//	encore check  -training DIR -target FILE [-custom FILE] [-top N]
//	encore assemble -training DIR [-csv FILE]
//
// Images are JSON snapshots as produced by imagegen (one image per file).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"sync"

	encore "repro"
	"repro/internal/alert"
	"repro/internal/collector"
	"repro/internal/fleet"
	"repro/internal/scan"
	"repro/internal/sysimage"
	"repro/internal/telemetry"
)

// version is the build version, stamped by the Makefile via
// -ldflags "-X main.version=...". It feeds `encore -version`, the serve
// daemon's /v1/status, and the encore_build_info metric.
var version = "dev"

func goVersion() string {
	return fmt.Sprintf("%s %s/%s", runtime.Version(), runtime.GOOS, runtime.GOARCH)
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "learn":
		err = runLearn(os.Args[2:])
	case "check":
		err = runCheck(os.Args[2:])
	case "compile":
		err = runCompile(os.Args[2:])
	case "assemble":
		err = runAssemble(os.Args[2:])
	case "scan":
		err = runScan(os.Args[2:])
	case "rules":
		err = runRules(os.Args[2:])
	case "collect":
		err = runCollect(os.Args[2:])
	case "serve":
		err = runServe(os.Args[2:])
	case "version", "-version", "--version":
		printVersion()
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "encore: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		logger, _ := telemetry.NewLogger(os.Stderr, "text", "info")
		logger.Error("encore failed", "command", os.Args[1], "err", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  encore learn    -training DIR [-rules FILE] [-profile FILE] [-custom FILE] [telemetry flags]
  encore compile  (-training DIR | -profile FILE) -plan-out FILE [-custom FILE] [telemetry flags]
  encore check    (-training DIR | -profile FILE | -plan FILE) -target FILE [-top N] [-json] [-advise] [telemetry flags]
  encore scan     (-training DIR | -profile FILE | -plan FILE) -targets DIR [-min-warnings N] [-strict] [-workers N] [-progress] [-alerts POLICY.yaml] [telemetry flags]
  encore rules    (-training DIR | -profile FILE) [-custom FILE]
  encore collect  -root DIR -id NAME -app NAME=RELPATH [-app ...] -out FILE
  encore assemble -training DIR [-csv FILE]
  encore serve    [-addr HOST:PORT] [-plans DIR] [-alerts POLICY.yaml] [-shutdown-timeout DUR] [-stats-json FILE]
  encore version

telemetry flags (learn/check/scan):
  -stats             print pipeline counters, stage timings, and latency quantiles to stderr
  -stats-json FILE   write the versioned JSON telemetry snapshot (counters, histograms, span tree; - for stdout)
  -trace-out FILE    write a Chrome trace_event timeline of the pipeline's worker spans (- for stdout)
  -pprof cpu|heap    capture a runtime profile ([-pprof-out FILE], default encore-<mode>.pprof)
  -serve ADDR        serve live /metrics (Prometheus), /healthz, /snapshot, /debug/pprof during the run
  -sample-every DUR  runtime sampler cadence for the live service and snapshot (default 1s)
  -log text|json     structured log format ([-log-level debug|info|warn|error])`)
}

func newFramework(customFile string) (*encore.Framework, error) {
	fw := encore.New()
	if customFile != "" {
		if err := fw.LoadCustomizationFile(customFile); err != nil {
			return nil, err
		}
	}
	return fw, nil
}

// obsHooks lets the acceptance tests observe the live metrics server at
// deterministic points of a real CLI run (listener up; pipeline complete
// but still serving).
var obsHooks telemetry.ServeHooks

// registerObsFlags installs the shared observability flags — the -stats
// text block, the machine-readable exporters, the runtime/pprof hooks
// (-pprof, not -profile: the knowledge-profile flags already own that
// name), the live -serve metrics service, and -log — on a command's flag
// set.
func registerObsFlags(fs *flag.FlagSet) *telemetry.Flags {
	o := &telemetry.Flags{Hooks: obsHooks}
	o.Register(fs)
	return o
}

// startObs wires the observability sinks and threads the recorder and
// structured logger through the framework. The returned function flushes
// every requested artifact and stops the live service; defer it and fold
// its error into the command's.
func startObs(o *telemetry.Flags, fw *encore.Framework, phase string) (finish func() error, err error) {
	if err := o.Start(phase); err != nil {
		return nil, err
	}
	fw.SetTelemetry(o.Rec)
	fw.SetLogger(o.Log)
	return o.Finish, nil
}

func learn(fw *encore.Framework, trainingDir string) (*encore.Knowledge, error) {
	images, err := sysimage.LoadDir(trainingDir)
	if err != nil {
		return nil, err
	}
	return fw.Learn(images)
}

func runLearn(args []string) (err error) {
	fs := flag.NewFlagSet("learn", flag.ExitOnError)
	training := fs.String("training", "", "directory of training image JSON files")
	rulesOut := fs.String("rules", "", "write learned rules to this file (default stdout)")
	profileOut := fs.String("profile", "", "write a full knowledge profile (rules + histograms) to this file")
	customFile := fs.String("custom", "", "customization file")
	obs := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *training == "" {
		return fmt.Errorf("learn: -training is required")
	}
	fw, err := newFramework(*customFile)
	if err != nil {
		return err
	}
	finish, err := startObs(obs, fw, "learn")
	if err != nil {
		return err
	}
	defer func() {
		if ferr := finish(); ferr != nil && err == nil {
			err = ferr
		}
	}()
	k, err := learn(fw, *training)
	if err != nil {
		return err
	}
	if *profileOut != "" {
		data, err := k.Profile().Marshal()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*profileOut, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote knowledge profile (%d rules, %d attributes) -> %s\n",
			len(k.Rules), len(k.Training.Attributes()), *profileOut)
	}
	data, err := k.RuleSet().Marshal()
	if err != nil {
		return err
	}
	if *rulesOut == "" {
		if *profileOut == "" {
			fmt.Println(string(data))
		}
		return nil
	}
	if err := os.WriteFile(*rulesOut, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("learned %d rules from %d images -> %s\n", len(k.Rules), len(k.Training.Rows), *rulesOut)
	return nil
}

// exactlyOne reports whether exactly one of the knowledge-source flag
// values is set.
func exactlyOne(vals ...string) bool {
	n := 0
	for _, v := range vals {
		if v != "" {
			n++
		}
	}
	return n == 1
}

// runCompile learns (or loads) knowledge and writes the compiled check
// plan in the binary plan format — the millisecond cold-start artifact the
// scan and check commands accept via -plan.
func runCompile(args []string) (err error) {
	fs := flag.NewFlagSet("compile", flag.ExitOnError)
	training := fs.String("training", "", "directory of training image JSON files")
	profileIn := fs.String("profile", "", "knowledge profile file (alternative to -training)")
	planOut := fs.String("plan-out", "", "write the compiled binary plan to this file")
	customFile := fs.String("custom", "", "customization file")
	obs := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*training == "") == (*profileIn == "") || *planOut == "" {
		return fmt.Errorf("compile: -plan-out and exactly one of -training / -profile are required")
	}
	fw, err := newFramework(*customFile)
	if err != nil {
		return err
	}
	finish, err := startObs(obs, fw, "compile")
	if err != nil {
		return err
	}
	defer func() {
		if ferr := finish(); ferr != nil && err == nil {
			err = ferr
		}
	}()
	var plan *encore.Plan
	if *profileIn != "" {
		pdata, err := os.ReadFile(*profileIn)
		if err != nil {
			return err
		}
		p, err := encore.LoadProfile(pdata)
		if err != nil {
			return err
		}
		plan = fw.CompilePlanFromProfile(p)
	} else {
		k, err := learn(fw, *training)
		if err != nil {
			return err
		}
		plan = fw.CompilePlan(k)
	}
	data := fw.MarshalPlan(plan)
	if err := os.WriteFile(*planOut, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("compiled plan (%d attributes, %d rules, %d training images) -> %s (%d bytes)\n",
		plan.AttrCount(), plan.RuleCount(), plan.Samples(), *planOut, len(data))
	return nil
}

// loadPlanFile reads and rebuilds a binary plan written by compile.
func loadPlanFile(fw *encore.Framework, path string) (*encore.Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return fw.LoadPlan(data)
}

func runCheck(args []string) (err error) {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	training := fs.String("training", "", "directory of training image JSON files")
	profileIn := fs.String("profile", "", "knowledge profile file (alternative to -training)")
	planIn := fs.String("plan", "", "compiled binary plan file (alternative to -training/-profile)")
	target := fs.String("target", "", "target image JSON file")
	customFile := fs.String("custom", "", "customization file")
	top := fs.Int("top", 0, "print only the top N warnings (0 = all)")
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	withAdvice := fs.Bool("advise", false, "append remediation advice (requires -training)")
	obs := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !exactlyOne(*training, *profileIn, *planIn) || *target == "" {
		return fmt.Errorf("check: -target and exactly one of -training / -profile / -plan are required")
	}
	fw, err := newFramework(*customFile)
	if err != nil {
		return err
	}
	finish, err := startObs(obs, fw, "check")
	if err != nil {
		return err
	}
	defer func() {
		if ferr := finish(); ferr != nil && err == nil {
			err = ferr
		}
	}()
	data, err := os.ReadFile(*target)
	if err != nil {
		return err
	}
	img, err := sysimage.LoadJSON(data)
	if err != nil {
		return err
	}
	var report *encore.Report
	var knowledge *encore.Knowledge
	var nRules, nTraining int
	if *planIn != "" {
		plan, err := loadPlanFile(fw, *planIn)
		if err != nil {
			return err
		}
		start := time.Now()
		report, err = plan.Check(img)
		obs.Rec.ObserveDur(telemetry.HistTargetCheck, time.Since(start))
		if err != nil {
			return err
		}
		nRules, nTraining = plan.RuleCount(), plan.Samples()
	} else if *profileIn != "" {
		pdata, err := os.ReadFile(*profileIn)
		if err != nil {
			return err
		}
		p, err := encore.LoadProfile(pdata)
		if err != nil {
			return err
		}
		start := time.Now()
		report, err = fw.CheckWithProfile(p, img)
		obs.Rec.ObserveDur(telemetry.HistTargetCheck, time.Since(start))
		if err != nil {
			return err
		}
		nRules, nTraining = len(p.Rules), p.Samples
	} else {
		k, err := learn(fw, *training)
		if err != nil {
			return err
		}
		start := time.Now()
		report, err = fw.Check(k, img)
		obs.Rec.ObserveDur(telemetry.HistTargetCheck, time.Since(start))
		if err != nil {
			return err
		}
		knowledge = k
		nRules, nTraining = len(k.Rules), len(k.Training.Rows)
	}
	if *asJSON {
		data, err := report.RenderJSON()
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	fmt.Printf("checked %s against %d rules from %d training images\n", img.ID, nRules, nTraining)
	fmt.Print(report.RenderText(*top))
	if *withAdvice {
		if knowledge == nil {
			return fmt.Errorf("check: -advise requires -training (advice uses the live training distributions)")
		}
		advice := knowledge.Advise(report)
		if len(advice) > 0 {
			fmt.Println("\nremediation advice:")
			fmt.Print(encore.RenderAdvice(advice))
		}
	}
	return nil
}

// runScan checks every image in a directory through the batch scan engine
// and prints a fleet summary: per-image warning counts by kind, isolated
// per-image failures, then the attributes flagged most often across the
// fleet.
func runScan(args []string) (err error) {
	fs := flag.NewFlagSet("scan", flag.ExitOnError)
	training := fs.String("training", "", "directory of training image JSON files")
	profileIn := fs.String("profile", "", "knowledge profile file (alternative to -training)")
	planIn := fs.String("plan", "", "compiled binary plan file (alternative to -training/-profile)")
	targets := fs.String("targets", "", "directory of target image JSON files")
	minWarnings := fs.Int("min-warnings", 1, "only list images with at least this many warnings")
	customFile := fs.String("custom", "", "customization file")
	strict := fs.Bool("strict", false, "abort the batch on the first failing image instead of isolating it")
	workers := fs.Int("workers", 0, "scan worker pool size (0 = NumCPU)")
	shards := fs.Int("shards", 0, "scan -targets through the sharded fleet coordinator with this many shards (0 = unsharded engine)")
	fleetSize := fs.Int("fleet", 0, "scan a synthetic fleet of this many images cycling the -targets corpus (implies the fleet coordinator)")
	progress := fs.Bool("progress", false, "report periodic batch progress (done/total, findings, ETA) on stderr")
	progressEvery := fs.Duration("progress-every", 2*time.Second, "progress reporting interval")
	alertsFile := fs.String("alerts", "", "alerting policy YAML; findings fan out to its notifiers (see examples/alerts.yaml)")
	obs := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !exactlyOne(*training, *profileIn, *planIn) || *targets == "" {
		return fmt.Errorf("scan: -targets and exactly one of -training / -profile / -plan are required")
	}
	fleetMode := *shards > 0 || *fleetSize > 0
	if fleetMode && *strict {
		// Strict mode's contract is "first failure in input order aborts the
		// batch"; the coordinator processes out of order by design, so
		// honoring that ordering would serialize the fleet.
		return fmt.Errorf("scan: -strict cannot be combined with -shards/-fleet")
	}
	fw, err := newFramework(*customFile)
	if err != nil {
		return err
	}
	finish, err := startObs(obs, fw, "scan")
	if err != nil {
		return err
	}
	defer func() {
		if ferr := finish(); ferr != nil && err == nil {
			err = ferr
		}
	}()
	var eng *scan.Engine
	var planVersion string
	if *planIn != "" {
		plan, err := loadPlanFile(fw, *planIn)
		if err != nil {
			return err
		}
		eng = fw.ScanEngineWithPlan(plan)
		planVersion = "plan:" + filepath.Base(*planIn)
	} else if *profileIn != "" {
		data, err := os.ReadFile(*profileIn)
		if err != nil {
			return err
		}
		p, err := encore.LoadProfile(data)
		if err != nil {
			return err
		}
		eng = fw.ScanEngineWithProfile(p)
		planVersion = "profile:" + filepath.Base(*profileIn)
	} else {
		k, err := learn(fw, *training)
		if err != nil {
			return err
		}
		eng = fw.ScanEngine(k)
		planVersion = "training:" + filepath.Base(*training)
	}
	eng.Strict = *strict
	eng.Workers = *workers
	eng.Log = obs.Log
	var alerts *alert.Pipeline
	if *alertsFile != "" {
		policy, err := alert.LoadPolicyFile(*alertsFile)
		if err != nil {
			return err
		}
		alerts, err = alert.NewPipeline(alert.Options{Policy: policy, Rec: obs.Rec, Log: obs.Log})
		if err != nil {
			return err
		}
		// Drain on every exit path; the explicit Shutdown after ScanDir
		// makes this a no-op on the happy path. Registered after the
		// finish() defer so it runs first and the final snapshot sees
		// every delivery outcome.
		defer alerts.Shutdown(context.Background())
		eng.Alerts = alerts
		eng.PlanVersion = planVersion
	}
	if *progress || obs.Serving() {
		// The reporter needs the batch size up front; count the target
		// files the same way ScanDir will (synthetic fleets know theirs).
		// A live -serve run gets a silent reporter even without -progress,
		// so the runtime sampler can expose encore_progress_done/_total on
		// /metrics.
		total := *fleetSize
		if total == 0 {
			total, err = countTargets(*targets)
			if err != nil {
				return err
			}
		}
		w := io.Writer(os.Stderr)
		if !*progress {
			w = io.Discard
		}
		p := telemetry.NewProgress(w, "scan", total, *progressEvery)
		eng.Progress = p
		obs.SetProgress(p)
		defer p.Stop()
	}

	if fleetMode {
		return runFleetScan(eng, obs.Rec, alerts, *targets, *fleetSize, *shards, *minWarnings, planVersion)
	}
	result, err := eng.ScanDir(*targets)
	if err != nil {
		return err
	}
	// Deliver every queued alert before the fleet summary prints, so the
	// stats line below is final.
	if err := alerts.Shutdown(context.Background()); err != nil {
		return err
	}
	for _, it := range result.Items {
		for _, ln := range itemLines(it, *minWarnings) {
			fmt.Println(ln)
		}
	}
	printScanSummary(result.Summarize(*minWarnings), alerts)
	return nil
}

// itemLines renders the per-image output block for one scan outcome:
// failures get their FAILED line, flagged images the warning-count line
// plus the top finding, healthy images below the floor render nothing.
// Both the unsharded and fleet scan paths print through this renderer, so
// their output cannot diverge.
func itemLines(it scan.Item, minWarnings int) []string {
	if it.Err != nil {
		name := it.Err.ImageID
		if name == "" {
			name = it.Err.Path
		}
		return []string{fmt.Sprintf("%-28s FAILED: %v", name, it.Err.Err)}
	}
	report := it.Report
	if len(report.Warnings) < minWarnings {
		return nil
	}
	kinds := report.CountByKind()
	lines := []string{fmt.Sprintf("%-28s %3d warnings (corr %d, type %d, name %d, value %d)",
		it.ImageID, len(report.Warnings),
		kinds[encore.KindCorrelation], kinds[encore.KindType],
		kinds[encore.KindName], kinds[encore.KindSuspicious])}
	if top := report.Top(); top != nil {
		lines = append(lines, fmt.Sprintf("%-28s     top: %s", "", top.Message))
	}
	return lines
}

// printScanSummary prints the fleet-wide footer shared by both scan paths.
func printScanSummary(sum scan.Summary, alerts *alert.Pipeline) {
	if sum.Errors > 0 {
		fmt.Printf("\nscanned %d images: %d flagged, %d warnings total, %d failed\n",
			sum.Scanned, sum.Flagged, sum.Warnings, sum.Errors)
	} else {
		fmt.Printf("\nscanned %d images: %d flagged, %d warnings total\n",
			sum.Scanned, sum.Flagged, sum.Warnings)
	}
	if len(sum.HotAttrs) > 0 {
		fmt.Println("most-flagged attributes:")
		for i, h := range sum.HotAttrs {
			if i == 5 {
				break
			}
			fmt.Printf("  %3dx %s\n", h.Count, h.Attr)
		}
	}
	if alerts != nil {
		s := alerts.Stats()
		fmt.Printf("alerts: %d published, %d delivered, %d failed, %d dropped, %d suppressed\n",
			s.Published, s.Delivered, s.Failed, s.Dropped, s.Suppressed)
	}
}

// runFleetScan drives the sharded coordinator over the target corpus (or
// a synthetic fleet cycling it) and reproduces runScan's output byte for
// byte: outcomes are keyed by global input index and printed in canonical
// order, the summary accumulates incrementally, and error retention is
// bounded by scan.ErrorLog so a fleet-wide error storm stays at constant
// memory.
func runFleetScan(eng *scan.Engine, rec *telemetry.Recorder, alerts *alert.Pipeline, targets string, fleetSize, shards, minWarnings int, planVersion string) error {
	var src fleet.Source
	if fleetSize > 0 {
		imgs, err := sysimage.LoadDir(targets)
		if err != nil {
			return err
		}
		src, err = fleet.NewSyntheticSource(imgs, fleetSize)
		if err != nil {
			return err
		}
	} else {
		var err error
		src, err = fleet.NewDirSource(targets)
		if err != nil {
			return err
		}
	}
	var (
		mu    sync.Mutex
		lines = map[int][]string{}
		sum   scan.Summary
		errs  scan.ErrorLog
	)
	coord := &fleet.Coordinator{Opts: fleet.Options{
		Check:       eng.Check,
		Shards:      shards,
		Workers:     eng.Workers,
		Telemetry:   rec,
		Log:         eng.Log,
		Progress:    eng.Progress,
		Alerts:      alerts,
		PlanVersion: planVersion,
	}}
	stats, err := coord.Run(context.Background(), src, func(idx int, it scan.Item) {
		mu.Lock()
		defer mu.Unlock()
		sum.Observe(it, minWarnings)
		if it.Err != nil && !errs.Add(it.Err) {
			return // past the retention cap: counted above, not printed
		}
		if ls := itemLines(it, minWarnings); len(ls) != 0 {
			lines[idx] = ls
		}
	})
	if err != nil {
		return err
	}
	// Deliver every queued alert before the fleet summary prints, so the
	// stats line below is final.
	if err := alerts.Shutdown(context.Background()); err != nil {
		return err
	}
	idxs := make([]int, 0, len(lines))
	for i := range lines {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		for _, ln := range lines[i] {
			fmt.Println(ln)
		}
	}
	if d := errs.Dropped(); d > 0 {
		fmt.Printf("%-28s ... and %d more failures (retention cap %d)\n", "", d, scan.DefaultMaxErrors)
	}
	sum.Finish()
	printScanSummary(sum, alerts)
	// Topology note goes to stderr: stdout must stay byte-identical to the
	// unsharded engine's report.
	fmt.Fprintf(os.Stderr, "fleet: %d shards, %d workers, %d steals, %s high water\n",
		stats.Shards, stats.Workers, stats.Steals, formatBytes(stats.HighWaterBytes))
	return nil
}

// formatBytes renders a byte count with a binary unit suffix.
func formatBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// countTargets counts the "*.json" images ScanDir will pick up in dir.
func countTargets(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, ent := range entries {
		if !ent.IsDir() && strings.HasSuffix(ent.Name(), ".json") {
			n++
		}
	}
	return n, nil
}

// runRules prints the learned rules in human-readable form, grouped by
// template, with each template's description.
func runRules(args []string) error {
	fs := flag.NewFlagSet("rules", flag.ExitOnError)
	training := fs.String("training", "", "directory of training image JSON files")
	profileIn := fs.String("profile", "", "knowledge profile file (alternative to -training)")
	customFile := fs.String("custom", "", "customization file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*training == "") == (*profileIn == "") {
		return fmt.Errorf("rules: exactly one of -training / -profile is required")
	}
	fw, err := newFramework(*customFile)
	if err != nil {
		return err
	}
	var learned []*encore.Rule
	if *profileIn != "" {
		data, err := os.ReadFile(*profileIn)
		if err != nil {
			return err
		}
		p, err := encore.LoadProfile(data)
		if err != nil {
			return err
		}
		learned = p.Rules
	} else {
		k, err := learn(fw, *training)
		if err != nil {
			return err
		}
		learned = k.Rules
		s := fw.Engine.LastStats
		fmt.Printf("typed candidate space: %d (no evidence %d, support-rejected %d, confidence-rejected %d, entropy-rejected %d)\n\n",
			s.Candidates, s.NoEvidence, s.SupportRejected, s.ConfidenceRejected, s.EntropyRejected)
	}
	byTemplate := map[string][]*encore.Rule{}
	var order []string
	for _, r := range learned {
		if _, seen := byTemplate[r.Template]; !seen {
			order = append(order, r.Template)
		}
		byTemplate[r.Template] = append(byTemplate[r.Template], r)
	}
	sort.Strings(order)
	for _, tplID := range order {
		desc := ""
		for _, tpl := range fw.Templates() {
			if tpl.ID == tplID {
				desc = tpl.Description
			}
		}
		fmt.Printf("%s — %s\n", tplID, desc)
		for _, r := range byTemplate[tplID] {
			fmt.Printf("    %s => %s  (support %d, confidence %.0f%%)\n", r.AttrA, r.AttrB, r.Support, r.Confidence*100)
		}
	}
	fmt.Printf("\n%d rules across %d templates\n", len(learned), len(order))
	return nil
}

// appFlags collects repeated -app NAME=RELPATH flags.
type appFlags map[string]string

func (a appFlags) String() string { return fmt.Sprint(map[string]string(a)) }

func (a appFlags) Set(v string) error {
	name, rel, ok := strings.Cut(v, "=")
	if !ok || name == "" || rel == "" {
		return fmt.Errorf("want NAME=RELPATH, got %q", v)
	}
	a[name] = rel
	return nil
}

// runCollect builds an image snapshot from a real filesystem tree (a
// mounted VM image, a container filesystem, a chroot).
func runCollect(args []string) error {
	fs := flag.NewFlagSet("collect", flag.ExitOnError)
	root := fs.String("root", "", "root of the extracted system tree")
	id := fs.String("id", "", "image id for the snapshot")
	out := fs.String("out", "", "output image JSON file")
	apps := appFlags{}
	fs.Var(apps, "app", "application config as NAME=RELPATH (repeatable)")
	maxFiles := fs.Int("max-files", 0, "cap on collected file-system entries (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *root == "" || *id == "" || *out == "" {
		return fmt.Errorf("collect: -root, -id, and -out are required")
	}
	img, err := collector.Collect(*root, *id, collector.Options{Apps: apps, MaxFiles: *maxFiles})
	if err != nil {
		return err
	}
	data, err := img.MarshalJSONIndent()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("collected %d files, %d users, %d services from %s -> %s\n",
		len(img.Files), len(img.Users), len(img.Services), *root, *out)
	return nil
}

func runAssemble(args []string) error {
	fs := flag.NewFlagSet("assemble", flag.ExitOnError)
	training := fs.String("training", "", "directory of training image JSON files")
	csvOut := fs.String("csv", "", "write assembled dataset CSV to this file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *training == "" {
		return fmt.Errorf("assemble: -training is required")
	}
	fw := encore.New()
	k, err := learn(fw, *training)
	if err != nil {
		return err
	}
	csv := k.Training.CSV()
	if *csvOut == "" {
		fmt.Print(csv)
		return nil
	}
	if err := os.WriteFile(*csvOut, []byte(csv), 0o644); err != nil {
		return err
	}
	fmt.Printf("assembled %s -> %s\n", k.Training.Summary(), *csvOut)
	return nil
}
