package telemetry

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// exportFixture builds a recorder exercising every signal kind — counters,
// stages, histograms, and a two-worker span tree — with fixed values, then
// snapshots it onto the synthetic clock so the exported bytes are fully
// deterministic.
func exportFixture() Snapshot {
	r := New()
	r.Add(CounterImagesScanned, 4)
	r.Add(CounterFindingsEmitted, 9)
	r.Observe(StageScanBatch, 10*time.Millisecond)
	for _, d := range []time.Duration{
		800 * time.Nanosecond,
		3 * time.Microsecond,
		70 * time.Microsecond,
		1200 * time.Microsecond,
		30 * time.Millisecond,
	} {
		r.ObserveDur(HistImageScan, d)
	}
	root := r.StartSpan("scan.batch", A("images", "2"), A("workers", "2"))
	w0 := root.StartChild("scan.worker", A("worker", "0"))
	img0 := w0.StartChild("scan.image", A("task", "img-0"))
	img0.SetAttr("image", "img-0")
	img0.End()
	w1 := root.StartChild("scan.worker", A("worker", "1"))
	img1 := w1.StartChild("scan.image", A("task", "img-1"))
	img1.End()
	w1.End()
	w0.End()
	root.SetAttr("errors", "0")
	root.End()
	r.SetPhase("done")
	s := r.Snapshot()
	// Hand-built runtime samples: the real sampler reads live MemStats,
	// which would leak nondeterminism into the golden bytes.
	s.SampleEvery = 250 * time.Millisecond
	s.Runtime = []RuntimeSample{
		{HeapBytes: 1 << 20, GCPauseTotal: 120 * time.Microsecond, GCCycles: 1, Goroutines: 8, ProgressDone: 1, ProgressTotal: 4},
		{HeapBytes: 3 << 20, GCPauseTotal: 260 * time.Microsecond, GCCycles: 2, Goroutines: 10, ProgressDone: 4, ProgressTotal: 4},
	}
	return s.NormalizeTimes(1000 * time.Microsecond)
}

func checkGolden(t *testing.T, got []byte, name string) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("%s changed; run `go test ./internal/telemetry -update` if intended\ngot:\n%s\nwant:\n%s",
			name, got, want)
	}
}

// TestSnapshotJSONGolden locks the versioned -stats-json document format
// byte-for-byte on a normalized snapshot.
func TestSnapshotJSONGolden(t *testing.T) {
	got, err := exportFixture().JSON()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, got, "snapshot.golden.json")

	// The document must also be semantically sound, not just stable.
	var doc struct {
		Version    int `json:"version"`
		Histograms []struct {
			Name      string `json:"name"`
			Count     uint64 `json:"count"`
			P50Micros int64  `json:"p50Micros"`
			P99Micros int64  `json:"p99Micros"`
			Buckets   []struct {
				UpperMicros int64  `json:"upperMicros"`
				Count       uint64 `json:"count"`
			} `json:"buckets"`
		} `json:"histograms"`
		Spans []struct {
			ID     int64 `json:"id"`
			Parent int64 `json:"parent"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Version != SnapshotVersion {
		t.Fatalf("version = %d, want %d", doc.Version, SnapshotVersion)
	}
	if len(doc.Histograms) != 1 || doc.Histograms[0].Name != HistImageScan {
		t.Fatalf("histograms = %+v", doc.Histograms)
	}
	h := doc.Histograms[0]
	if h.Count != 5 || h.P50Micros <= 0 || h.P99Micros <= 0 {
		t.Fatalf("histogram stats = %+v, want count 5 and positive p50/p99", h)
	}
	var bucketTotal uint64
	for _, b := range h.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != h.Count {
		t.Fatalf("bucket counts sum to %d, want %d", bucketTotal, h.Count)
	}
	if len(doc.Spans) != 5 {
		t.Fatalf("spans = %d, want 5", len(doc.Spans))
	}
}

// TestSnapshotV1Compat proves the v2 document is a strict superset of v1:
// every field a v1 consumer reads keeps its exact meaning and encoding.
// testdata/snapshot.v1.golden.json is the last v1 export of this same
// fixture, frozen when the version was bumped.
func TestSnapshotV1Compat(t *testing.T) {
	type v1Doc struct {
		Counters   []exportCount `json:"counters"`
		Stages     []exportStage `json:"stages"`
		Histograms []exportHist  `json:"histograms"`
		Spans      []exportSpan  `json:"spans"`
	}
	old, err := os.ReadFile(filepath.Join("testdata", "snapshot.v1.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := exportFixture().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var want, got v1Doc
	if err := json.Unmarshal(old, &want); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(cur, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("v1 view of the v2 document diverged\ngot:  %+v\nwant: %+v", got, want)
	}
}

// TestChromeTraceGolden locks the trace_event export byte-for-byte and
// checks the document loads per the spec: a traceEvents array of metadata
// ("M") lane names plus complete ("X") events with microsecond ts/dur.
func TestChromeTraceGolden(t *testing.T) {
	got, err := exportFixture().ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, got, "trace.golden.json")

	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Pid  int               `json:"pid"`
			Tid  int               `json:"tid"`
			Dur  int64             `json:"dur"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	lanes := map[string]int{}
	var complete int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name != "thread_name" {
				t.Fatalf("metadata event %q, want thread_name", ev.Name)
			}
			lanes[ev.Args["name"]] = ev.Tid
		case "X":
			complete++
			if ev.Pid != 1 || ev.Dur <= 0 {
				t.Fatalf("bad complete event: %+v", ev)
			}
			if ev.Args["spanId"] == "" {
				t.Fatalf("complete event lost its spanId: %+v", ev)
			}
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}
	if complete != 5 {
		t.Fatalf("complete events = %d, want 5", complete)
	}
	// The two pool workers render as distinct per-worker timelines.
	w0, ok0 := lanes["scan.batch/worker 0"]
	w1, ok1 := lanes["scan.batch/worker 1"]
	if !ok0 || !ok1 || w0 == w1 {
		t.Fatalf("worker lanes = %v, want distinct scan.batch/worker 0 and 1", lanes)
	}
}

// TestNormalizeTimes pins what normalization may and may not touch.
func TestNormalizeTimes(t *testing.T) {
	r := New()
	r.Add("c", 1)
	r.Observe("st", time.Second)
	r.ObserveDur(HistImageParse, 3*time.Millisecond)
	a := r.StartSpan("a")
	b := a.StartChild("b")
	b.End()
	a.End()

	orig := r.Snapshot()
	norm := orig.NormalizeTimes(time.Millisecond)
	if norm.Stages[0].Total != 0 {
		t.Fatal("stage totals should be zeroed")
	}
	if orig.Stages[0].Total != time.Second {
		t.Fatal("normalization mutated the original snapshot")
	}
	if len(norm.Spans) != 2 {
		t.Fatalf("spans = %d", len(norm.Spans))
	}
	for i, sp := range norm.Spans {
		if sp.Start != time.Duration(i)*time.Millisecond || sp.Dur != time.Millisecond {
			t.Fatalf("span %d not on the synthetic clock: %+v", i, sp)
		}
	}
	if norm.Spans[1].Parent != norm.Spans[0].ID {
		t.Fatal("normalization broke the span tree")
	}
	if norm.Counters[0].Value != 1 || norm.Histograms[0].Count != 1 {
		t.Fatal("normalization touched counters or histograms")
	}
}
