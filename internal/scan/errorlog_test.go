package scan_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/scan"
)

func scanErr(i int) *scan.ScanError {
	return &scan.ScanError{ImageID: fmt.Sprintf("img-%04d", i), Err: fmt.Errorf("boom %d", i)}
}

// TestErrorLogDefaultCap checks the zero value retains DefaultMaxErrors
// and counts — but does not store — the overflow.
func TestErrorLogDefaultCap(t *testing.T) {
	var l scan.ErrorLog
	total := scan.DefaultMaxErrors + 250
	for i := 0; i < total; i++ {
		retained := l.Add(scanErr(i))
		if want := i < scan.DefaultMaxErrors; retained != want {
			t.Fatalf("Add(%d) retained = %v, want %v", i, retained, want)
		}
	}
	if l.Len() != scan.DefaultMaxErrors {
		t.Fatalf("Len = %d, want %d", l.Len(), scan.DefaultMaxErrors)
	}
	if l.Dropped() != 250 {
		t.Fatalf("Dropped = %d, want 250", l.Dropped())
	}
	if l.Total() != int64(total) {
		t.Fatalf("Total = %d, want %d", l.Total(), total)
	}
	errs := l.Errors()
	if len(errs) != scan.DefaultMaxErrors {
		t.Fatalf("Errors len = %d", len(errs))
	}
	// Arrival order: the first errors survive, the storm's tail is dropped.
	if errs[0].ImageID != "img-0000" || errs[len(errs)-1].ImageID != fmt.Sprintf("img-%04d", scan.DefaultMaxErrors-1) {
		t.Fatalf("retention lost arrival order: first=%s last=%s", errs[0].ImageID, errs[len(errs)-1].ImageID)
	}
}

// TestErrorLogCustomAndCountOnlyCaps checks explicit and negative caps.
func TestErrorLogCustomAndCountOnlyCaps(t *testing.T) {
	l := &scan.ErrorLog{Cap: 3}
	for i := 0; i < 10; i++ {
		l.Add(scanErr(i))
	}
	if l.Len() != 3 || l.Dropped() != 7 || l.Total() != 10 {
		t.Fatalf("cap 3: len=%d dropped=%d total=%d", l.Len(), l.Dropped(), l.Total())
	}

	countOnly := &scan.ErrorLog{Cap: -1}
	for i := 0; i < 5; i++ {
		if countOnly.Add(scanErr(i)) {
			t.Fatal("count-only log retained an error")
		}
	}
	if countOnly.Len() != 0 || countOnly.Total() != 5 {
		t.Fatalf("count-only: len=%d total=%d", countOnly.Len(), countOnly.Total())
	}

	if l.Add(nil) {
		t.Fatal("nil error must not be retained")
	}
}

// TestErrorLogConcurrent hammers Add from many goroutines; the cap and
// the total must stay exact (run under -race for the data-race half).
func TestErrorLogConcurrent(t *testing.T) {
	l := &scan.ErrorLog{Cap: 100}
	var wg sync.WaitGroup
	const goroutines, each = 8, 200
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				l.Add(scanErr(g*each + i))
			}
		}(g)
	}
	wg.Wait()
	if l.Len() != 100 {
		t.Fatalf("Len = %d, want 100", l.Len())
	}
	if l.Total() != goroutines*each {
		t.Fatalf("Total = %d, want %d", l.Total(), goroutines*each)
	}
	if copied := l.Errors(); len(copied) != 100 {
		t.Fatalf("Errors len = %d", len(copied))
	}
}
