package serve_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/alert"
	"repro/internal/corpus"
	"repro/internal/serve"
	"repro/internal/sysimage"
	"repro/internal/telemetry"
)

// batchLine mirrors one NDJSON record of the batch response.
type batchLine struct {
	Index    int             `json:"index"`
	Image    string          `json:"image"`
	Path     string          `json:"path"`
	Findings int             `json:"findings"`
	Report   json.RawMessage `json:"report"`
	Error    string          `json:"error"`

	Summary        bool   `json:"summary"`
	RequestID      string `json:"requestId"`
	PlanVersion    string `json:"planVersion"`
	Images         int64  `json:"images"`
	Errors         int64  `json:"errors"`
	TotalFindings  int64  `json:"-"`
	Shards         int    `json:"shards"`
	Workers        int    `json:"workers"`
	HighWaterBytes int64  `json:"highWaterBytes"`
}

// postBatch posts to the batch endpoint and splits the NDJSON stream into
// per-image lines plus the trailing summary.
func postBatch(t *testing.T, url string, body []byte) (int, []batchLine, *batchLine) {
	t.Helper()
	resp, err := http.Post(url, "application/x-ndjson", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil, nil
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	var lines []batchLine
	var summary *batchLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var ln batchLine
		if err := json.Unmarshal(sc.Bytes(), &ln); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if ln.Summary {
			cp := ln
			summary = &cp
			continue
		}
		lines = append(lines, ln)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, lines, summary
}

// TestBatchScanBody scans an inline NDJSON fleet containing one corrupt
// document: every healthy image streams back a report line, the corrupt
// one an error line, and the summary reconciles with both.
func TestBatchScanBody(t *testing.T) {
	rec := telemetry.New()
	d, base := startDaemon(t, serve.Options{Rec: rec})
	if _, err := d.Registry().Register("mysql", "", buildPlan(t, "mysql", 30, 19), "test"); err != nil {
		t.Fatal(err)
	}

	victims, err := corpus.Training("mysql", 5, 123)
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	for _, im := range victims {
		data, err := json.Marshal(im) // NDJSON needs one-line documents
		if err != nil {
			t.Fatal(err)
		}
		body.Write(data)
		body.WriteByte('\n')
	}
	body.WriteString("{corrupt\n")

	status, lines, summary := postBatch(t, base+"/v1/scan/mysql/batch?shards=2", body.Bytes())
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if len(lines) != 6 {
		t.Fatalf("lines = %d, want 6", len(lines))
	}
	seen := map[int]bool{}
	var errLines int
	for _, ln := range lines {
		if seen[ln.Index] {
			t.Fatalf("index %d delivered twice", ln.Index)
		}
		seen[ln.Index] = true
		if ln.Error != "" {
			errLines++
			if ln.Index != 5 || ln.Path != "body[5]" {
				t.Fatalf("error line misattributed: %+v", ln)
			}
			continue
		}
		if ln.Image == "" || !bytes.Contains(ln.Report, []byte("warnings")) {
			t.Fatalf("healthy line missing report: %+v", ln)
		}
	}
	if errLines != 1 {
		t.Fatalf("error lines = %d, want 1", errLines)
	}
	if summary == nil {
		t.Fatal("missing summary record")
	}
	if summary.Images != 6 || summary.Errors != 1 || summary.Shards != 2 || summary.PlanVersion != "v1" {
		t.Fatalf("summary = %+v", summary)
	}

	// Fleet metric families surface on the exposition.
	prom := rec.Snapshot().PromText()
	for _, want := range []string{
		"encore_fleet_images_total 6",
		"encore_fleet_batches_total 1",
		"encore_fleet_errors_total 1",
		"encore_fleet_shards 2",
	} {
		if !bytes.Contains([]byte(prom), []byte(want)) {
			t.Fatalf("/metrics missing %q:\n%s", want, prom)
		}
	}
}

// TestBatchScanDirAndSynthetic covers the server-local directory mode and
// the synthetic fan-out mode, plus per-image alert provenance.
func TestBatchScanDirAndSynthetic(t *testing.T) {
	rec := telemetry.New()
	mem := &memNotifier{}
	pipe, err := alert.NewPipeline(alert.Options{Notifiers: []alert.Notifier{mem}, Rec: rec})
	if err != nil {
		t.Fatal(err)
	}
	d, base := startDaemon(t, serve.Options{Rec: rec, Alerts: pipe})
	if _, err := d.Registry().Register("mysql", "", buildPlan(t, "mysql", 30, 19), "test"); err != nil {
		t.Fatal(err)
	}

	victims, err := corpus.Training("mysql", 4, 321)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := sysimage.SaveDir(dir, victims); err != nil {
		t.Fatal(err)
	}

	status, lines, summary := postBatch(t, base+"/v1/scan/mysql/batch?dir="+dir, nil)
	if status != http.StatusOK || summary == nil {
		t.Fatalf("dir batch: status=%d summary=%v", status, summary)
	}
	if len(lines) != 4 || summary.Images != 4 || summary.Errors != 0 {
		t.Fatalf("dir batch shape: lines=%d summary=%+v", len(lines), summary)
	}

	status, lines, summary = postBatch(t, base+"/v1/scan/mysql/batch?dir="+dir+"&synthetic=25&shards=4", nil)
	if status != http.StatusOK || summary == nil {
		t.Fatalf("synthetic batch: status=%d", status)
	}
	if len(lines) != 25 || summary.Images != 25 {
		t.Fatalf("synthetic batch shape: lines=%d summary=%+v", len(lines), summary)
	}
	for _, ln := range lines {
		if ln.Error == "" && ln.Image == "" {
			t.Fatalf("synthetic line lacks image identity: %+v", ln)
		}
	}

	// Any findings published carry per-image provenance (request ID and
	// plan version); the alert pipeline drains asynchronously.
	deadline := time.Now().Add(5 * time.Second)
	for {
		recent := pipe.Recent(0)
		done := true
		for _, rcd := range recent {
			if rcd.RequestID == "" || rcd.PlanVersion != "v1" || rcd.App != "mysql" || rcd.ImageID == "" {
				t.Fatalf("batch alert lacks provenance: %+v", rcd.Alert)
			}
		}
		if done && len(recent) > 0 {
			break
		}
		if time.Now().After(deadline) {
			// A clean corpus can legitimately produce zero findings; don't
			// hang the test on it.
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Error paths: unknown app, bad synthetic count, empty batch.
	if status, _, _ := postBatch(t, base+"/v1/scan/nope/batch?dir="+dir, nil); status != http.StatusNotFound {
		t.Fatalf("unknown app status = %d", status)
	}
	if status, _, _ := postBatch(t, base+"/v1/scan/mysql/batch?dir="+dir+"&synthetic=zero", nil); status != http.StatusBadRequest {
		t.Fatalf("bad synthetic status = %d", status)
	}
	if status, _, _ := postBatch(t, base+"/v1/scan/mysql/batch", nil); status != http.StatusBadRequest {
		t.Fatalf("empty batch status = %d", status)
	}
}
