package templates

import (
	"testing"

	"repro/internal/conftypes"
	"repro/internal/dataset"
	"repro/internal/sysimage"
)

func ctxWith(img *sysimage.Image) *Ctx {
	return &Ctx{Row: &dataset.Row{SystemID: "t", Cells: map[string][]string{}}, Image: img}
}

func envImage() *sysimage.Image {
	im := sysimage.New("env")
	im.Users["mysql"] = &sysimage.User{Name: "mysql", UID: 27, GID: 27}
	im.Users["nobody"] = &sysimage.User{Name: "nobody", UID: 99, GID: 99}
	im.Groups["mysql"] = &sysimage.Group{Name: "mysql", GID: 27}
	im.Groups["www"] = &sysimage.Group{Name: "www", GID: 48, Members: []string{"nobody"}}
	im.AddDir("/var/lib/mysql", "mysql", "mysql", 0o700)
	im.AddDir("/etc/httpd", "root", "root", 0o755)
	im.AddRegular("/etc/httpd/modules/libphp5.so", "root", "root", 0o755, 9)
	return im
}

func TestPredefinedCount(t *testing.T) {
	if n := len(Predefined()); n != 11 {
		t.Fatalf("predefined templates = %d, want 11 (Table 6)", n)
	}
	seen := map[string]bool{}
	for _, tpl := range Predefined() {
		if tpl.ID == "" || tpl.Validate == nil || tpl.Spec == "" || tpl.Description == "" {
			t.Fatalf("template %+v incomplete", tpl)
		}
		if seen[tpl.ID] {
			t.Fatalf("duplicate template id %s", tpl.ID)
		}
		seen[tpl.ID] = true
	}
}

func TestByID(t *testing.T) {
	if ByID("owner") == nil || ByID("nope") != nil {
		t.Fatal("ByID lookup wrong")
	}
}

func TestEqTemplate(t *testing.T) {
	tpl := ByID("eq")
	ctx := ctxWith(nil)
	if ok, app := tpl.Validate([]string{"x"}, []string{"x"}, ctx); !ok || !app {
		t.Fatal("equal values should hold")
	}
	if ok, _ := tpl.Validate([]string{"x"}, []string{"y"}, ctx); ok {
		t.Fatal("unequal values must not hold")
	}
	if _, app := tpl.Validate(nil, []string{"y"}, ctx); app {
		t.Fatal("missing side is inapplicable")
	}
}

func TestMatchOneTemplate(t *testing.T) {
	tpl := ByID("match-one")
	ctx := ctxWith(nil)
	if ok, _ := tpl.Validate([]string{"a", "b"}, []string{"c", "b"}, ctx); !ok {
		t.Fatal("shared instance should hold")
	}
	if ok, _ := tpl.Validate([]string{"a"}, []string{"c"}, ctx); ok {
		t.Fatal("disjoint instances must not hold")
	}
}

func TestBoolImpliesTemplate(t *testing.T) {
	tpl := ByID("bool-implies")
	ctx := ctxWith(nil)
	cases := []struct {
		a, b  string
		holds bool
	}{
		{"On", "true", true},
		{"On", "false", false},
		{"Off", "false", true},
		{"Off", "true", true}, // false antecedent: implication holds
	}
	for _, c := range cases {
		ok, app := tpl.Validate([]string{c.a}, []string{c.b}, ctx)
		if !app || ok != c.holds {
			t.Errorf("%s -> %s: holds=%v app=%v, want %v", c.a, c.b, ok, app, c.holds)
		}
	}
	if _, app := tpl.Validate([]string{"Maybe"}, []string{"On"}, ctx); app {
		t.Fatal("non-boolean word is inapplicable")
	}
}

func TestSubnetTemplate(t *testing.T) {
	tpl := ByID("subnet")
	ctx := ctxWith(nil)
	if ok, _ := tpl.Validate([]string{"10.0.1.5"}, []string{"10.0.1.99"}, ctx); !ok {
		t.Fatal("same /24 should hold")
	}
	if ok, _ := tpl.Validate([]string{"10.0.1.5"}, []string{"10.0.2.1"}, ctx); ok {
		t.Fatal("different /24 must not hold")
	}
	if ok, _ := tpl.Validate([]string{"10.0.1.5"}, []string{"0.0.0.0"}, ctx); !ok {
		t.Fatal("wildcard matches everything")
	}
}

func TestConcatTemplate(t *testing.T) {
	tpl := ByID("concat")
	ctx := ctxWith(envImage())
	if ok, app := tpl.Validate([]string{"/etc/httpd"}, []string{"modules/libphp5.so"}, ctx); !ok || !app {
		t.Fatalf("existing concat should hold (ok=%v app=%v)", ok, app)
	}
	if ok, _ := tpl.Validate([]string{"/etc/httpd"}, []string{"modules/missing.so"}, ctx); ok {
		t.Fatal("missing concat must not hold")
	}
	// Trailing slash on the root is tolerated.
	if ok, _ := tpl.Validate([]string{"/etc/httpd/"}, []string{"modules/libphp5.so"}, ctx); !ok {
		t.Fatal("trailing slash should still concat")
	}
	if _, app := tpl.Validate([]string{"/etc/httpd"}, []string{"modules/libphp5.so"}, ctxWith(nil)); app {
		t.Fatal("no image: inapplicable")
	}
}

func TestSubstrTemplate(t *testing.T) {
	tpl := ByID("substr")
	ctx := ctxWith(nil)
	if ok, _ := tpl.Validate([]string{"/var/www"}, []string{"/var/www/html"}, ctx); !ok {
		t.Fatal("prefix should hold")
	}
	if ok, _ := tpl.Validate([]string{"/var/www"}, []string{"/var/www"}, ctx); ok {
		t.Fatal("identical strings are excluded (eq covers that)")
	}
	if ok, _ := tpl.Validate([]string{"/srv"}, []string{"/var"}, ctx); ok {
		t.Fatal("non-substring must not hold")
	}
}

func TestUserGroupTemplate(t *testing.T) {
	tpl := ByID("user-group")
	ctx := ctxWith(envImage())
	if ok, _ := tpl.Validate([]string{"nobody"}, []string{"www"}, ctx); !ok {
		t.Fatal("member should hold")
	}
	if ok, _ := tpl.Validate([]string{"mysql"}, []string{"www"}, ctx); ok {
		t.Fatal("non-member must not hold")
	}
}

func TestNotAccessTemplate(t *testing.T) {
	tpl := ByID("not-access")
	ctx := ctxWith(envImage())
	// /var/lib/mysql is 0700 mysql: nobody cannot access it.
	if ok, app := tpl.Validate([]string{"/var/lib/mysql"}, []string{"nobody"}, ctx); !ok || !app {
		t.Fatalf("inaccessible path should hold (ok=%v app=%v)", ok, app)
	}
	// /etc/httpd is world readable: rule does not hold.
	if ok, _ := tpl.Validate([]string{"/etc/httpd"}, []string{"nobody"}, ctx); ok {
		t.Fatal("accessible path must not hold")
	}
	if _, app := tpl.Validate([]string{"/missing"}, []string{"nobody"}, ctx); app {
		t.Fatal("missing path is inapplicable")
	}
}

func TestOwnerTemplate(t *testing.T) {
	tpl := ByID("owner")
	ctx := ctxWith(envImage())
	if ok, _ := tpl.Validate([]string{"/var/lib/mysql"}, []string{"mysql"}, ctx); !ok {
		t.Fatal("correct owner should hold")
	}
	if ok, _ := tpl.Validate([]string{"/var/lib/mysql"}, []string{"nobody"}, ctx); ok {
		t.Fatal("wrong owner must not hold")
	}
	if _, app := tpl.Validate([]string{"/missing"}, []string{"mysql"}, ctx); app {
		t.Fatal("missing path is inapplicable")
	}
}

func TestNumLtTemplate(t *testing.T) {
	tpl := ByID("num-lt")
	ctx := ctxWith(nil)
	if ok, _ := tpl.Validate([]string{"5"}, []string{"10"}, ctx); !ok {
		t.Fatal("5 < 10 should hold")
	}
	if ok, _ := tpl.Validate([]string{"10"}, []string{"5"}, ctx); ok {
		t.Fatal("10 < 5 must not hold")
	}
	if _, app := tpl.Validate([]string{"x"}, []string{"5"}, ctx); app {
		t.Fatal("non-numeric is inapplicable")
	}
}

func TestSizeLtTemplate(t *testing.T) {
	tpl := ByID("size-lt")
	ctx := ctxWith(nil)
	// The PHP upload case: upload_max_filesize < post_max_size.
	if ok, _ := tpl.Validate([]string{"2M"}, []string{"8M"}, ctx); !ok {
		t.Fatal("2M < 8M should hold")
	}
	if ok, _ := tpl.Validate([]string{"16M"}, []string{"8M"}, ctx); ok {
		t.Fatal("16M < 8M must not hold")
	}
	if ok, _ := tpl.Validate([]string{"1G"}, []string{"1025M"}, ctx); !ok {
		t.Fatal("1G < 1025M should hold")
	}
}

func TestEligibility(t *testing.T) {
	owner := ByID("owner")
	fp := dataset.Attribute{Name: "datadir", Type: conftypes.TypeFilePath}
	user := dataset.Attribute{Name: "user", Type: conftypes.TypeUserName}
	aug := dataset.Attribute{Name: "datadir.owner", Type: conftypes.TypeUserName, Augmented: true}
	if !owner.EligibleA(fp) || owner.EligibleA(user) {
		t.Fatal("A eligibility wrong")
	}
	if !owner.EligibleB(user) || owner.EligibleB(fp) {
		t.Fatal("B eligibility wrong")
	}
	if owner.EligibleB(aug) {
		t.Fatal("owner template must not take augmented attributes")
	}
	bi := ByID("bool-implies")
	augBool := dataset.Attribute{Name: "dir.hasSymLink", Type: conftypes.TypeBoolean, Augmented: true}
	if !bi.EligibleB(augBool) {
		t.Fatal("bool-implies allows augmented attributes")
	}
}

func TestParseSpec(t *testing.T) {
	tpl, err := ParseSpec("", "[A:Size] < [B:Size]")
	if err != nil {
		t.Fatal(err)
	}
	if tpl.TypesA[0] != conftypes.TypeSize || !tpl.SameType {
		t.Fatalf("parsed template = %+v", tpl)
	}
	if ok, _ := tpl.Validate([]string{"1M"}, []string{"2M"}, ctxWith(nil)); !ok {
		t.Fatal("parsed size template should validate sizes")
	}
	tpl, err = ParseSpec("my-owner", "[A:FilePath] => [B:UserName]")
	if err != nil {
		t.Fatal(err)
	}
	if tpl.ID != "my-owner" {
		t.Fatalf("id = %s", tpl.ID)
	}
	if ok, _ := tpl.Validate([]string{"/var/lib/mysql"}, []string{"mysql"}, ctxWith(envImage())); !ok {
		t.Fatal("parsed owner template should consult environment")
	}
}

func TestParseSpecErrors(t *testing.T) {
	if _, err := ParseSpec("", "garbage"); err == nil {
		t.Fatal("malformed spec should error")
	}
	if _, err := ParseSpec("", "[A:Size] ?? [B:FilePath]"); err == nil {
		t.Fatal("unknown operator should error")
	}
}

func TestRegisterCustomOp(t *testing.T) {
	RegisterOp("endswith", conftypes.TypeString, conftypes.TypeString,
		func(a, b []string, _ *Ctx) (bool, bool) {
			if len(a) == 0 || len(b) == 0 {
				return false, false
			}
			return len(b[0]) >= len(a[0]) && b[0][len(b[0])-len(a[0]):] == a[0], true
		})
	tpl, err := ParseSpec("", "[A:String] endswith [B:String]")
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := tpl.Validate([]string{".log"}, []string{"error.log"}, ctxWith(nil)); !ok {
		t.Fatal("custom operator should run")
	}
}

func TestNormBool(t *testing.T) {
	for _, v := range []string{"On", "TRUE", "yes", "1", "enabled"} {
		if b, ok := normBool(v); !ok || !b {
			t.Errorf("normBool(%q) = %v %v", v, b, ok)
		}
	}
	for _, v := range []string{"Off", "false", "NO", "0", "none"} {
		if b, ok := normBool(v); !ok || b {
			t.Errorf("normBool(%q) = %v %v", v, b, ok)
		}
	}
	if _, ok := normBool("maybe"); ok {
		t.Error("normBool should reject unknown words")
	}
}
