// Package templates defines EnCore's rule templates: typed relation
// patterns that guide rule inference (Section 5.1, Table 6).
//
// A template is not a rule — it is a *pattern of correlation* between two
// typed placeholders, together with a validation method that decides
// whether a concrete attribute pair satisfies the relation on one system.
// The learner instantiates each template over every eligible attribute pair
// (eligibility is decided by semantic type, which is what keeps the search
// tractable) and keeps instantiations that hold with high confidence across
// the training set.
package templates

import (
	"strconv"
	"strings"

	"repro/internal/conftypes"
	"repro/internal/dataset"
	"repro/internal/sysimage"
)

// Ctx is the evaluation context for one system: its dataset row and the
// system image environment (for validators that consult the file system,
// accounts, or services).
type Ctx struct {
	Row   *dataset.Row
	Image *sysimage.Image
}

// Validator decides whether the relation holds between the instances of
// attribute A and attribute B on one system. applicable=false means the
// system gives no evidence either way (e.g. values unparsable for the
// relation, or no environment available) and the system is excluded from
// the confidence denominator.
type Validator func(a, b []string, ctx *Ctx) (holds, applicable bool)

// Template is one rule pattern.
type Template struct {
	// ID is a short stable identifier ("owner", "num-lt", ...).
	ID string
	// Spec is the display form, e.g. "[A:FilePath] => [B:UserName]".
	Spec string
	// Description explains the relation in prose (Table 6).
	Description string
	// TypesA and TypesB are the eligible semantic types for each
	// placeholder.
	TypesA, TypesB []conftypes.Type
	// SameType additionally requires both attributes to share one concrete
	// type (the "same type" templates).
	SameType bool
	// Symmetric relations are deduplicated (only A < B lexicographically
	// is instantiated).
	Symmetric bool
	// AllowAugmented permits augmented attributes to fill placeholders.
	AllowAugmented bool
	// Validate is the relation's validation method.
	Validate Validator
}

// EligibleA reports whether an attribute may fill placeholder A.
func (t *Template) EligibleA(a dataset.Attribute) bool {
	return t.eligible(a, t.TypesA)
}

// EligibleB reports whether an attribute may fill placeholder B.
func (t *Template) EligibleB(a dataset.Attribute) bool {
	return t.eligible(a, t.TypesB)
}

func (t *Template) eligible(a dataset.Attribute, types []conftypes.Type) bool {
	if a.Augmented && !t.AllowAugmented {
		return false
	}
	for _, ty := range types {
		if a.Type == ty {
			return true
		}
	}
	return false
}

func first(vs []string) (string, bool) {
	if len(vs) == 0 {
		return "", false
	}
	return vs[0], true
}

// normBool maps the boolean lexicon to true/false; ok=false for non-boolean
// words.
func normBool(v string) (bool, bool) {
	switch strings.ToLower(v) {
	case "on", "true", "yes", "1", "enabled":
		return true, true
	case "off", "false", "no", "0", "disabled", "none":
		return false, true
	default:
		return false, false
	}
}

// identityTypes are the types over which the same-type equality templates
// range. Trivial strings and numbers are excluded: equality over them is
// the frequent-item-set noise the paper moves away from.
var identityTypes = []conftypes.Type{
	conftypes.TypeFilePath, conftypes.TypeUserName, conftypes.TypeGroupName,
	conftypes.TypeIPAddress, conftypes.TypePortNumber, conftypes.TypeFileName,
}

// Predefined returns the 11 predefined templates of Table 6.
func Predefined() []*Template {
	return []*Template{
		{
			ID:          "eq",
			Spec:        "[A] == [B]",
			Description: "An entry should be equal to another entry of the same type",
			TypesA:      identityTypes, TypesB: identityTypes,
			SameType: true, Symmetric: true,
			Validate: func(a, b []string, _ *Ctx) (bool, bool) {
				va, oka := first(a)
				vb, okb := first(b)
				if !oka || !okb {
					return false, false
				}
				return va == vb, true
			},
		},
		{
			ID:          "match-one",
			Spec:        "[A] = [B]",
			Description: "One instance of an entry should equal at least one instance of another entry of the same type",
			TypesA:      identityTypes, TypesB: identityTypes,
			SameType: true, Symmetric: false,
			Validate: func(a, b []string, _ *Ctx) (bool, bool) {
				if len(a) == 0 || len(b) == 0 {
					return false, false
				}
				set := make(map[string]bool, len(b))
				for _, v := range b {
					set[v] = true
				}
				for _, v := range a {
					if set[v] {
						return true, true
					}
				}
				return false, true
			},
		},
		{
			ID:             "bool-implies",
			Spec:           "[A:Boolean] -> [B:Boolean]",
			Description:    "A boolean entry implies a boolean (often augmented) attribute",
			TypesA:         []conftypes.Type{conftypes.TypeBoolean},
			TypesB:         []conftypes.Type{conftypes.TypeBoolean},
			AllowAugmented: true,
			Validate: func(a, b []string, _ *Ctx) (bool, bool) {
				va, oka := first(a)
				vb, okb := first(b)
				if !oka || !okb {
					return false, false
				}
				ba, oka := normBool(va)
				bb, okb := normBool(vb)
				if !oka || !okb {
					return false, false
				}
				return !ba || bb, true
			},
		},
		{
			ID:          "subnet",
			Spec:        "[A:IPAddress] < [B:IPAddress]",
			Description: "An IP address entry is within the subnet of another",
			TypesA:      []conftypes.Type{conftypes.TypeIPAddress},
			TypesB:      []conftypes.Type{conftypes.TypeIPAddress},
			Validate: func(a, b []string, _ *Ctx) (bool, bool) {
				va, oka := first(a)
				vb, okb := first(b)
				if !oka || !okb {
					return false, false
				}
				return sameSubnet(va, vb), true
			},
		},
		{
			ID:          "concat",
			Spec:        "[A:FilePath] + [B:PartialFilePath] => exists",
			Description: "Concatenating a file path entry with a partial file path entry forms a full path that exists",
			TypesA:      []conftypes.Type{conftypes.TypeFilePath},
			TypesB:      []conftypes.Type{conftypes.TypePartialFilePath},
			Validate: func(a, b []string, ctx *Ctx) (bool, bool) {
				if ctx.Image == nil || len(a) == 0 || len(b) == 0 {
					return false, false
				}
				for _, part := range b {
					found := false
					for _, root := range a {
						if ctx.Image.Exists(strings.TrimSuffix(root, "/") + "/" + part) {
							found = true
							break
						}
					}
					if !found {
						return false, true
					}
				}
				return true, true
			},
		},
		{
			ID:          "substr",
			Spec:        "[A] substr [B]",
			Description: "An entry is a substring of another entry",
			TypesA:      []conftypes.Type{conftypes.TypeFilePath, conftypes.TypeString},
			TypesB:      []conftypes.Type{conftypes.TypeFilePath, conftypes.TypeString},
			SameType:    true,
			Validate: func(a, b []string, _ *Ctx) (bool, bool) {
				va, oka := first(a)
				vb, okb := first(b)
				// A substring of one character ("/" in any path) holds
				// vacuously and would generate pure noise; such pairs are
				// not evidence either way.
				if !oka || !okb || len(va) < 2 {
					return false, false
				}
				return va != vb && strings.Contains(vb, va), true
			},
		},
		{
			ID:          "user-group",
			Spec:        "[A:UserName] in [B:GroupName]",
			Description: "The user name belongs to the group name",
			TypesA:      []conftypes.Type{conftypes.TypeUserName},
			TypesB:      []conftypes.Type{conftypes.TypeGroupName},
			Validate: func(a, b []string, ctx *Ctx) (bool, bool) {
				va, oka := first(a)
				vb, okb := first(b)
				if !oka || !okb || ctx.Image == nil {
					return false, false
				}
				return ctx.Image.UserInGroup(va, vb), true
			},
		},
		{
			ID:          "not-access",
			Spec:        "[A:FilePath] != [B:UserName]",
			Description: "The file path is not accessible by the user specified in the entry",
			TypesA:      []conftypes.Type{conftypes.TypeFilePath},
			TypesB:      []conftypes.Type{conftypes.TypeUserName},
			Validate: func(a, b []string, ctx *Ctx) (bool, bool) {
				va, oka := first(a)
				vb, okb := first(b)
				if !oka || !okb || ctx.Image == nil {
					return false, false
				}
				if !ctx.Image.Exists(va) || !ctx.Image.UserExists(vb) {
					return false, false
				}
				return !ctx.Image.Accessible(vb, va), true
			},
		},
		{
			ID:          "owner",
			Spec:        "[A:FilePath] => [B:UserName]",
			Description: "The entry of UserName is the owner of the file path specified in the entry",
			TypesA:      []conftypes.Type{conftypes.TypeFilePath},
			TypesB:      []conftypes.Type{conftypes.TypeUserName},
			Validate: func(a, b []string, ctx *Ctx) (bool, bool) {
				va, oka := first(a)
				vb, okb := first(b)
				if !oka || !okb || ctx.Image == nil {
					return false, false
				}
				fm := ctx.Image.Resolve(va)
				if fm == nil {
					return false, false
				}
				return fm.Owner == vb, true
			},
		},
		{
			ID:          "num-lt",
			Spec:        "[A:Number] < [B:Number]",
			Description: "The number in one entry is less than that of the other entry",
			TypesA:      []conftypes.Type{conftypes.TypeNumber, conftypes.TypePortNumber},
			TypesB:      []conftypes.Type{conftypes.TypeNumber, conftypes.TypePortNumber},
			Validate: func(a, b []string, _ *Ctx) (bool, bool) {
				va, oka := first(a)
				vb, okb := first(b)
				if !oka || !okb {
					return false, false
				}
				fa, erra := strconv.ParseFloat(va, 64)
				fb, errb := strconv.ParseFloat(vb, 64)
				if erra != nil || errb != nil {
					return false, false
				}
				return fa < fb, true
			},
		},
		{
			ID:             "size-lt",
			Spec:           "[A:Size] < [B:Size]",
			Description:    "The size in one entry is smaller than that of the other entry",
			TypesA:         []conftypes.Type{conftypes.TypeSize},
			TypesB:         []conftypes.Type{conftypes.TypeSize},
			AllowAugmented: true,
			Validate: func(a, b []string, _ *Ctx) (bool, bool) {
				va, oka := first(a)
				vb, okb := first(b)
				if !oka || !okb {
					return false, false
				}
				na, oka := conftypes.ParseSize(va)
				nb, okb := conftypes.ParseSize(vb)
				if !oka || !okb {
					return false, false
				}
				return na < nb, true
			},
		},
	}
}

// ByID returns the predefined template with the given ID, or nil.
func ByID(id string) *Template {
	for _, t := range Predefined() {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// sameSubnet reports whether two IPv4 addresses share a /24 prefix, or the
// second address is the wildcard.
func sameSubnet(a, b string) bool {
	if b == "0.0.0.0" || b == "::" {
		return true
	}
	pa := strings.Split(a, ".")
	pb := strings.Split(b, ".")
	if len(pa) != 4 || len(pb) != 4 {
		return false
	}
	return pa[0] == pb[0] && pa[1] == pb[1] && pa[2] == pb[2]
}
