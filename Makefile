GO ?= go

# Build version stamped into the binary (encore -version, /v1/status, and
# the encore_build_info metric). Falls back to "dev" outside a git clone.
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)

.PHONY: tier1 tier2 smoke serve-smoke fleet-smoke eval-matrix eval-matrix-smoke build bench bench-rules bench-scan bench-check bench-plan bench-serve bench-fleet bench-all bench-smoke fuzz fmt

# Stamped CLI binary: bin/encore reports $(VERSION) via `encore version`.
build:
	$(GO) build -ldflags "-X main.version=$(VERSION)" -o bin/encore ./cmd/encore

# Tier 1: the gate every change must keep green — build + full test suite.
tier1:
	$(GO) build ./... && $(GO) test ./...

# Tier 2: static analysis + the full suite under the race detector, then
# an end-to-end smoke of the CLI telemetry exporters. The parallel
# assembly, rule inference, batch scan, and eval paths all run real
# goroutine pools, so tier 2 is where data races would surface.
tier2:
	$(GO) vet ./... && $(GO) test -race ./... && $(MAKE) smoke

# Smoke: generate a small corpus, scan it with the JSON snapshot and
# Chrome trace exporters on, and check both documents materialize.
SMOKE_DIR := $(or $(TMPDIR),/tmp)/encore-smoke
smoke:
	rm -rf $(SMOKE_DIR) && mkdir -p $(SMOKE_DIR)
	$(GO) run ./cmd/imagegen -app mysql -n 8 -seed 7 -out $(SMOKE_DIR)/training
	$(GO) run ./cmd/imagegen -app mysql -n 4 -seed 91 -out $(SMOKE_DIR)/targets
	$(GO) run ./cmd/encore scan -training $(SMOKE_DIR)/training -targets $(SMOKE_DIR)/targets \
		-stats-json $(SMOKE_DIR)/stats.json -trace-out $(SMOKE_DIR)/trace.json >/dev/null
	grep -q '"version": 2' $(SMOKE_DIR)/stats.json
	grep -q '"traceEvents"' $(SMOKE_DIR)/trace.json
	$(GO) run ./cmd/encore compile -training $(SMOKE_DIR)/training -plan-out $(SMOKE_DIR)/app.plan
	head -c 4 $(SMOKE_DIR)/app.plan | grep -q ENCP
	$(GO) run ./cmd/encore scan -plan $(SMOKE_DIR)/app.plan -targets $(SMOKE_DIR)/targets >/dev/null
	head -c 4 internal/planio/testdata/plan_v1.golden | grep -q ENCP
	$(GO) run ./cmd/evaluate -matrix -seed 5 -matrix-training 10 -matrix-victims 1 -matrix-per-victim 2 \
		-matrix-pops apache -matrix-kinds name-typo -matrix-configs plan-default \
		-matrix-out $(SMOKE_DIR)/matrix.json >/dev/null
	grep -q '"version": 1' $(SMOKE_DIR)/matrix.json
	@echo "smoke: telemetry exporters + matrix JSON OK"

# Serve smoke: boot the resident daemon on a random port, upload a plan,
# scan a misconfigured image, assert findings + per-app metrics labels,
# then SIGTERM it and require a clean exit.
serve-smoke:
	VERSION=$(VERSION) ./scripts/serve_smoke.sh

# Fleet smoke: push a 1k synthetic fleet through the sharded CLI path
# and the daemon's NDJSON batch endpoint, asserting the encore_fleet_*
# metric families on both.
fleet-smoke:
	VERSION=$(VERSION) ./scripts/fleet_smoke.sh

# Regenerate the checked-in evaluation matrix: every error class × every
# app population × every detector configuration at the default seed.
# Byte-reproducible — commit the refreshed EVAL_matrix.json whenever a
# change intentionally moves detection quality.
eval-matrix:
	$(GO) run ./cmd/evaluate -matrix -seed 1 -matrix-out EVAL_matrix.json
	grep -q '"version": 1' EVAL_matrix.json

# Small matrix for CI: 2 populations × 3 kinds × 2 configs, then the
# full-grid regression gate against the checked-in EVAL_matrix.json.
eval-matrix-smoke:
	$(GO) run ./cmd/evaluate -matrix -seed 1 -matrix-training 12 -matrix-victims 2 -matrix-per-victim 3 \
		-matrix-pops apache,mysql -matrix-kinds name-typo,numeric,boolean-flip \
		-matrix-configs plan-default,baseline -matrix-out EVAL_matrix_smoke.json
	grep -q '"version": 1' EVAL_matrix_smoke.json
	$(GO) test -run TestMatrixRegressionGate ./internal/evalmatrix
	@echo "eval-matrix-smoke: grid + regression gate OK"

bench:
	$(GO) test -bench=. -benchmem .

# Rule-inference perf trajectory: run the RuleInference benches (serial
# oracle, parallel, indexed with the corpus-scaling axis) and record the
# machine-readable results so speedups/regressions are tracked across PRs.
bench-rules:
	$(GO) test -run '^$$' -bench=RuleInference -benchmem -json . > BENCH_rules.json.tmp && mv BENCH_rules.json.tmp BENCH_rules.json
	./scripts/bench_summary.sh BENCH_rules.json
	@grep -o '"Output":"[^"]*"' BENCH_rules.json | sed 's/^"Output":"//;s/"$$//' | \
		awk '{gsub(/\\t/,"\t");gsub(/\\n/,"\n");printf "%s",$$0}' | grep 'ns/op'

# Batch-scan perf trajectory: the serial and NumCPU-worker fleet scans,
# recorded machine-readably like bench-rules so scan throughput is
# tracked across PRs.
bench-scan:
	$(GO) test -run '^$$' -bench=BatchScan -benchmem -json . > BENCH_scan.json.tmp && mv BENCH_scan.json.tmp BENCH_scan.json
	./scripts/bench_summary.sh BENCH_scan.json
	@grep -o '"Output":"[^"]*"' BENCH_scan.json | sed 's/^"Output":"//;s/"$$//' | \
		awk '{gsub(/\\t/,"\t");gsub(/\\n/,"\n");printf "%s",$$0}' | grep 'ns/op'

# Per-image check-path perf trajectory: the legacy detector, the
# profile-backed detector, and the compiled check plan on the same corpus
# and target, recorded machine-readably like bench-scan. The plan/legacy
# ratio is the allocation-diet headline.
bench-check:
	$(GO) test -run '^$$' -bench='DetectorCheck|ProfileCheck|PlanCheck' -benchmem -json . > BENCH_check.json.tmp && mv BENCH_check.json.tmp BENCH_check.json
	./scripts/bench_summary.sh BENCH_check.json
	@grep -o '"Output":"[^"]*"' BENCH_check.json | sed 's/^"Output":"//;s/"$$//' | \
		awk '{gsub(/\\t/,"\t");gsub(/\\n/,"\n");printf "%s",$$0}' | grep 'ns/op'

# Plan cold-start trajectory: decoding the binary plan vs compiling from
# the JSON profile vs a full re-learn (all three starting from serialized
# bytes), plus the incremental-vs-full inference pair. The binary-load /
# compile-from-profile and binary-load / full-relearn ratios are the
# format's reason to exist; eyeball them when this file changes.
bench-plan:
	$(GO) test -run '^$$' -bench='PlanColdStart|IncrementalInfer' -benchmem -json . > BENCH_plan.json.tmp && mv BENCH_plan.json.tmp BENCH_plan.json
	./scripts/bench_summary.sh BENCH_plan.json
	@grep -o '"Output":"[^"]*"' BENCH_plan.json | sed 's/^"Output":"//;s/"$$//' | \
		awk '{gsub(/\\t/,"\t");gsub(/\\n/,"\n");printf "%s",$$0}' | grep 'ns/op'

# Resident-daemon throughput trajectory: full-stack scan requests over
# real HTTP (decode + registry load + Plan.Check + report render),
# recorded machine-readably like the other bench families. ns/op is the
# request latency floor; allocs/op the per-request allocation budget.
bench-serve:
	$(GO) test -run '^$$' -bench=ServeScan -benchmem -json ./internal/serve > BENCH_serve.json.tmp && mv BENCH_serve.json.tmp BENCH_serve.json
	./scripts/bench_summary.sh BENCH_serve.json
	@grep -o '"Output":"[^"]*"' BENCH_serve.json | sed 's/^"Output":"//;s/"$$//' | \
		awk '{gsub(/\\t/,"\t");gsub(/\\n/,"\n");printf "%s",$$0}' | grep 'ns/op'

# Fleet-scale perf trajectory: the sharded coordinator over 1k/10k/100k
# synthetic fleets, recorded machine-readably like the other bench
# families. ns/image is the throughput headline; peak-heap-bytes staying
# flat across the 1k→100k axis is the constant-memory claim, and
# steals/op shows the work-stealing deques actually engage.
bench-fleet:
	$(GO) test -run '^$$' -bench=FleetScan -benchmem -timeout 30m -json . > BENCH_fleet.json.tmp && mv BENCH_fleet.json.tmp BENCH_fleet.json
	./scripts/bench_summary.sh BENCH_fleet.json
	@grep -o '"Output":"[^"]*"' BENCH_fleet.json | sed 's/^"Output":"//;s/"$$//' | \
		awk '{gsub(/\\t/,"\t");gsub(/\\n/,"\n");printf "%s",$$0}' | grep 'ns/op'

# Refresh every recorded benchmark file in one go.
bench-all: bench-rules bench-scan bench-check bench-plan bench-serve bench-fleet

# One-iteration pass over the recorded benchmark families so CI catches
# bench bit-rot without paying for stable measurements.
bench-smoke:
	$(GO) test -run '^$$' -bench='BatchScan|RuleInference|DetectorCheck|ProfileCheck|PlanCheck|PlanColdStart|IncrementalInfer|FleetScan/images=1000' \
		-benchtime 1x -benchmem . >/dev/null
	$(GO) test -run '^$$' -bench=ServeScan -benchtime 1x -benchmem ./internal/serve >/dev/null
	@echo "bench-smoke: benchmarks build and run OK"

# Short fuzz pass over each config-parser dialect (seed corpus always
# runs as part of tier 1; this explores beyond it).
fuzz:
	$(GO) test ./internal/confparse -fuzz FuzzApacheParse -fuzztime 10s
	$(GO) test ./internal/confparse -fuzz FuzzINIParse -fuzztime 10s
	$(GO) test ./internal/confparse -fuzz FuzzSSHDParse -fuzztime 10s
	$(GO) test ./internal/planio -fuzz FuzzPlanDecode -fuzztime 10s

fmt:
	gofmt -l .
