package study

import "testing"

// TestTable1Counts verifies the catalog aggregates to exactly the numbers
// the paper's Table 1 reports.
func TestTable1Counts(t *testing.T) {
	want := map[string]Row{
		"Apache": {App: "Apache", Total: 94, EnvRelated: 29, Correlated: 42},
		"MySQL":  {App: "MySQL", Total: 113, EnvRelated: 19, Correlated: 31},
		"PHP":    {App: "PHP", Total: 53, EnvRelated: 16, Correlated: 20},
		"sshd":   {App: "sshd", Total: 57, EnvRelated: 12, Correlated: 29},
	}
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		w := want[r.App]
		if r != w {
			t.Errorf("%s: got %+v, want %+v", r.App, r, w)
		}
	}
}

func TestRowOrder(t *testing.T) {
	rows := Table1()
	order := []string{"Apache", "MySQL", "PHP", "sshd"}
	for i, r := range rows {
		if r.App != order[i] {
			t.Fatalf("row %d = %s, want %s", i, r.App, order[i])
		}
	}
}

func TestNoDuplicateNames(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Catalog() {
		key := e.App + "/" + e.Name
		if seen[key] {
			t.Errorf("duplicate entry %s", key)
		}
		seen[key] = true
		if e.Name == "" {
			t.Error("empty entry name")
		}
	}
}

func TestNames(t *testing.T) {
	names := Names("sshd")
	if len(names) != 57 {
		t.Fatalf("sshd names = %d", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("names not sorted")
		}
	}
	if len(Names("nginx")) != 0 {
		t.Fatal("unknown app should have no names")
	}
}

func TestMkFlagParsing(t *testing.T) {
	es := mk("X", []string{"plain", "env|E", "corr|C", "both|EC"})
	if es[0].EnvRelated || es[0].Correlated {
		t.Fatal("plain entry has flags")
	}
	if !es[1].EnvRelated || es[1].Correlated {
		t.Fatal("|E parsed wrong")
	}
	if es[2].EnvRelated || !es[2].Correlated {
		t.Fatal("|C parsed wrong")
	}
	if !es[3].EnvRelated || !es[3].Correlated {
		t.Fatal("|EC parsed wrong")
	}
	if es[1].Name != "env" {
		t.Fatalf("name = %q", es[1].Name)
	}
}
