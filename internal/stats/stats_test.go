package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestEntropyUniform(t *testing.T) {
	h := Entropy(map[string]int{"a": 1, "b": 1})
	if !almostEqual(h, math.Ln2) {
		t.Fatalf("entropy of 50/50 = %v, want ln 2", h)
	}
}

func TestEntropySingleValue(t *testing.T) {
	if h := Entropy(map[string]int{"a": 10}); h != 0 {
		t.Fatalf("entropy of constant = %v, want 0", h)
	}
}

func TestEntropyEmpty(t *testing.T) {
	if h := Entropy(nil); h != 0 {
		t.Fatalf("entropy of empty = %v, want 0", h)
	}
	if h := Entropy(map[string]int{"a": 0}); h != 0 {
		t.Fatalf("entropy of zero-count = %v, want 0", h)
	}
}

func TestEntropyIgnoresNegativeCounts(t *testing.T) {
	h := Entropy(map[string]int{"a": 5, "bogus": -3})
	if h != 0 {
		t.Fatalf("entropy with negative count = %v, want 0 (single effective value)", h)
	}
}

func TestDefaultThresholdMatchesPaper(t *testing.T) {
	// The paper defines Ht as the entropy of a 90/10 two-value split.
	h := TwoValueEntropy(0.9)
	if math.Abs(h-DefaultEntropyThreshold) > 0.001 {
		t.Fatalf("TwoValueEntropy(0.9) = %v, want ~%v", h, DefaultEntropyThreshold)
	}
}

func TestTwoValueEntropyBoundary(t *testing.T) {
	if TwoValueEntropy(0) != 0 || TwoValueEntropy(1) != 0 {
		t.Fatal("degenerate distributions must have zero entropy")
	}
	if !almostEqual(TwoValueEntropy(0.5), math.Ln2) {
		t.Fatal("TwoValueEntropy(0.5) should be ln 2")
	}
}

func TestEntropyOfValues(t *testing.T) {
	h := EntropyOfValues([]string{"x", "x", "y", "y"})
	if !almostEqual(h, math.Ln2) {
		t.Fatalf("EntropyOfValues = %v, want ln 2", h)
	}
}

func TestEntropyProperties(t *testing.T) {
	// Property: entropy is non-negative and maximized by the uniform
	// distribution over the same support size.
	f := func(counts []uint8) bool {
		m := make(map[string]int)
		n := 0
		for i, c := range counts {
			if c == 0 {
				continue
			}
			m[string(rune('a'+i%26))+string(rune('0'+i/26))] += int(c)
			n++
		}
		h := Entropy(m)
		if h < 0 {
			return false
		}
		if len(m) > 0 && h > math.Log(float64(len(m)))+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestConfidenceAndSupport(t *testing.T) {
	if c := Confidence(9, 10); !almostEqual(c, 0.9) {
		t.Fatalf("confidence = %v", c)
	}
	if c := Confidence(0, 0); c != 0 {
		t.Fatalf("confidence with zero present = %v", c)
	}
	if s := SupportFraction(5, 50); !almostEqual(s, 0.1) {
		t.Fatalf("support fraction = %v", s)
	}
	if s := SupportFraction(5, 0); s != 0 {
		t.Fatalf("support fraction with zero total = %v", s)
	}
}

func TestICFOrdering(t *testing.T) {
	// Fewer distinct values => higher score, for the same sample size.
	stable := ICF(1, 100)
	volatile := ICF(50, 100)
	if stable <= volatile {
		t.Fatalf("ICF(1) = %v should exceed ICF(50) = %v", stable, volatile)
	}
	if ICF(0, 10) != 0 || ICF(10, 0) != 0 {
		t.Fatal("degenerate ICF inputs must be 0")
	}
}

func TestRankByICFDeterministic(t *testing.T) {
	scores := map[string]float64{"b": 1.0, "a": 1.0, "c": 2.0}
	got := RankByICF(scores)
	want := []string{"c", "a", "b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank = %v, want %v", got, want)
		}
	}
}

func TestMajorityValue(t *testing.T) {
	v, f, ok := MajorityValue([]string{"on", "on", "off"})
	if !ok || v != "on" || !almostEqual(f, 2.0/3.0) {
		t.Fatalf("majority = %q %v %v", v, f, ok)
	}
	if _, _, ok := MajorityValue(nil); ok {
		t.Fatal("empty sample should report !ok")
	}
	// Tie breaks lexicographically.
	v, _, _ = MajorityValue([]string{"b", "a"})
	if v != "a" {
		t.Fatalf("tie-break majority = %q, want a", v)
	}
}

func TestCardinality(t *testing.T) {
	if c := Cardinality([]string{"a", "b", "a"}); c != 2 {
		t.Fatalf("cardinality = %d", c)
	}
	if c := Cardinality(nil); c != 0 {
		t.Fatalf("cardinality of nil = %d", c)
	}
}

func TestMeanStdDev(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); !almostEqual(m, 2) {
		t.Fatalf("mean = %v", m)
	}
	if s := StdDev([]float64{2, 2, 2}); s != 0 {
		t.Fatalf("stddev of constant = %v", s)
	}
	if s := StdDev(nil); s != 0 {
		t.Fatalf("stddev of empty = %v", s)
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]string{"x", "x", "y"})
	if h["x"] != 2 || h["y"] != 1 {
		t.Fatalf("histogram = %v", h)
	}
}
