package encore

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/detect"
	"repro/internal/inject"
	"repro/internal/sysimage"
)

// requireSameReport fails the test when the compiled plan's report differs
// in any observable way from the legacy detector's.
func requireSameReport(t *testing.T, label string, legacy, plan *detect.Report) {
	t.Helper()
	if reflect.DeepEqual(legacy, plan) {
		return
	}
	if legacy.SystemID != plan.SystemID {
		t.Fatalf("%s: SystemID %q vs %q", label, legacy.SystemID, plan.SystemID)
	}
	if len(legacy.Warnings) != len(plan.Warnings) {
		t.Fatalf("%s: warning count %d vs %d\nlegacy: %v\nplan:   %v",
			label, len(legacy.Warnings), len(plan.Warnings), renderWarnings(legacy), renderWarnings(plan))
	}
	for i := range legacy.Warnings {
		if !reflect.DeepEqual(legacy.Warnings[i], plan.Warnings[i]) {
			t.Fatalf("%s: warning %d differs\nlegacy: %+v\nplan:   %+v",
				label, i, legacy.Warnings[i], plan.Warnings[i])
		}
	}
	t.Fatalf("%s: reports differ", label)
}

func renderWarnings(r *detect.Report) []string {
	out := make([]string, len(r.Warnings))
	for i, w := range r.Warnings {
		out[i] = fmt.Sprintf("#%d %.2f %s %s", w.Rank, w.Score, w.Kind, w.Message)
	}
	return out
}

// equivalenceTargets builds a target fleet that exercises all four checks:
// clean drift targets from a fresh seed, targets with injected
// configuration errors (typos drive the misspelling index, value
// mutations drive type/suspicious checks), and the real-world cases.
func equivalenceTargets(t *testing.T, app string, seed int64) []*sysimage.Image {
	t.Helper()
	targets, err := corpus.Training(app, 6, seed+1000)
	if err != nil {
		t.Fatal(err)
	}
	in := inject.New(seed + 7)
	for i, clean := range targets[:3] {
		broken := clean.Clone()
		broken.ID = fmt.Sprintf("%s-broken-%d", broken.ID, i)
		if _, err := in.Inject(broken, app, 2+i); err != nil {
			t.Fatal(err)
		}
		targets = append(targets, broken)
	}
	if app == "mysql" {
		for _, c := range corpus.RealWorldCases() {
			targets = append(targets, c.Build())
		}
	}
	return targets
}

// TestPlanReportEquivalence is the compiled-plan equivalence property
// test: across apps, seeds, and target mutations, Plan.Check must emit a
// report identical to Framework.Check (the legacy per-image detector).
func TestPlanReportEquivalence(t *testing.T) {
	for _, app := range []string{"apache", "mysql", "php", "sshd"} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", app, seed), func(t *testing.T) {
				training, err := corpus.Training(app, 12, seed)
				if err != nil {
					t.Fatal(err)
				}
				fw := New()
				k, err := fw.Learn(training)
				if err != nil {
					t.Fatal(err)
				}
				plan := fw.CompilePlan(k)
				for _, img := range equivalenceTargets(t, app, seed) {
					legacy, err := fw.Check(k, img)
					if err != nil {
						t.Fatal(err)
					}
					got, err := plan.Check(img)
					if err != nil {
						t.Fatal(err)
					}
					requireSameReport(t, img.ID, legacy, got)
					// A second pass reuses the pooled scratch; the report
					// must not change (stale per-image state would show
					// here).
					again, err := plan.Check(img)
					if err != nil {
						t.Fatal(err)
					}
					requireSameReport(t, img.ID+"/reused-scratch", legacy, again)
				}
			})
		}
	}
}

// TestPlanReportEquivalenceConcurrent drives one shared plan from many
// goroutines (tier-2 runs this under -race): every concurrent report must
// match the serial legacy report for its image.
func TestPlanReportEquivalenceConcurrent(t *testing.T) {
	training, err := corpus.Training("mysql", 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	fw := New()
	k, err := fw.Learn(training)
	if err != nil {
		t.Fatal(err)
	}
	plan := fw.CompilePlan(k)
	targets := equivalenceTargets(t, "mysql", 5)
	legacy := make([]*detect.Report, len(targets))
	for i, img := range targets {
		if legacy[i], err = fw.Check(k, img); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan string, len(targets)*4)
	for round := 0; round < 4; round++ {
		for i, img := range targets {
			wg.Add(1)
			go func(i int, img *sysimage.Image) {
				defer wg.Done()
				got, err := plan.Check(img)
				if err != nil {
					errs <- fmt.Sprintf("%s: %v", img.ID, err)
					return
				}
				if !reflect.DeepEqual(legacy[i], got) {
					errs <- fmt.Sprintf("%s: concurrent report differs", img.ID)
				}
			}(i, img)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestPlanProfileEquivalence checks the profile round trip: a plan
// compiled from a deserialized profile must reproduce CheckWithProfile.
func TestPlanProfileEquivalence(t *testing.T) {
	training, err := corpus.Training("mysql", 12, 2)
	if err != nil {
		t.Fatal(err)
	}
	fw := New()
	k, err := fw.Learn(training)
	if err != nil {
		t.Fatal(err)
	}
	data, err := k.Profile().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	p, err := LoadProfile(data)
	if err != nil {
		t.Fatal(err)
	}
	plan := fw.CompilePlanFromProfile(p)
	for _, img := range equivalenceTargets(t, "mysql", 2) {
		legacy, err := fw.CheckWithProfile(p, img)
		if err != nil {
			t.Fatal(err)
		}
		got, err := plan.Check(img)
		if err != nil {
			t.Fatal(err)
		}
		requireSameReport(t, img.ID, legacy, got)
	}
}

// TestPlanAugmentedEntryNameCollision locks the trickiest naming corner:
// a literal entry whose name equals another entry's augmented attribute
// ("dir.exists" next to a FilePath entry "dir"). The legacy target
// dataset declares every parsed entry name non-augmented before emitting
// augmentations, so such an entry must still produce an entry-name
// warning even though the augmented declare streams first.
func TestPlanAugmentedEntryNameCollision(t *testing.T) {
	training, err := corpus.Training("mysql", 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	fw := New()
	k, err := fw.Learn(training)
	if err != nil {
		t.Fatal(err)
	}
	plan := fw.CompilePlan(k)
	target, err := corpus.Training("mysql", 1, 999)
	if err != nil {
		t.Fatal(err)
	}
	img := target[0].Clone()
	img.ID = "collision-target"
	img.ConfigFiles = append(img.ConfigFiles, sysimage.ConfigFile{
		App:     "php",
		Path:    "/etc/php.ini",
		Content: "dir=/etc\ndir.exists=weird\n",
	})
	legacy, err := fw.Check(k, img)
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan.Check(img)
	if err != nil {
		t.Fatal(err)
	}
	requireSameReport(t, img.ID, legacy, got)
	if legacy.RankOf(func(w *Warning) bool {
		return w.Kind == KindName && w.Attr == "php:dir.exists"
	}) == 0 {
		t.Fatalf("expected an entry-name warning for php:dir.exists; report: %v", renderWarnings(legacy))
	}
}

// TestScanEngineMatchesPerImageCheck pins that the batch engine (which
// runs the compiled plan) returns the same reports as per-image Check.
func TestScanEngineMatchesPerImageCheck(t *testing.T) {
	training, err := corpus.Training("apache", 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	fw := New()
	k, err := fw.Learn(training)
	if err != nil {
		t.Fatal(err)
	}
	targets := equivalenceTargets(t, "apache", 4)
	res, err := fw.ScanEngine(k).Scan(targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != len(targets) {
		t.Fatalf("items: %d vs %d targets", len(res.Items), len(targets))
	}
	for i, it := range res.Items {
		if it.Err != nil {
			t.Fatalf("%s: %v", targets[i].ID, it.Err)
		}
		legacy, err := fw.Check(k, targets[i])
		if err != nil {
			t.Fatal(err)
		}
		requireSameReport(t, targets[i].ID, legacy, it.Report)
	}
}
