GO ?= go

.PHONY: tier1 tier2 bench fuzz fmt

# Tier 1: the gate every change must keep green — build + full test suite.
tier1:
	$(GO) build ./... && $(GO) test ./...

# Tier 2: static analysis + the full suite under the race detector.
# The parallel assembly, rule inference, batch scan, and eval paths all
# run real goroutine pools, so tier 2 is where data races would surface.
tier2:
	$(GO) vet ./... && $(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# Short fuzz pass over each config-parser dialect (seed corpus always
# runs as part of tier 1; this explores beyond it).
fuzz:
	$(GO) test ./internal/confparse -fuzz FuzzApacheParse -fuzztime 10s
	$(GO) test ./internal/confparse -fuzz FuzzINIParse -fuzztime 10s
	$(GO) test ./internal/confparse -fuzz FuzzSSHDParse -fuzztime 10s

fmt:
	gofmt -l .
