package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/conftypes"
	"repro/internal/stats"
)

// indexFixture builds a small table with presence gaps and a
// multi-instance column.
func indexFixture() *Dataset {
	d := New()
	d.DeclareAttr("path", conftypes.TypeFilePath, false)
	d.DeclareAttr("user", conftypes.TypeUserName, false)
	d.DeclareAttr("module", conftypes.TypeString, false)
	r1 := d.NewRow("img-1")
	d.Add(r1, "path", "/var/a")
	d.Add(r1, "user", "alice")
	d.Add(r1, "module", "mod_a")
	d.Add(r1, "module", "mod_b")
	r2 := d.NewRow("img-2")
	d.Add(r2, "path", "/var/b")
	r3 := d.NewRow("img-3")
	d.Add(r3, "user", "bob")
	d.Add(r3, "module", "mod_a")
	return d
}

func TestIndexPresenceBitsAndCounts(t *testing.T) {
	d := indexFixture()
	ix := d.Index()
	if ix.Rows() != 3 {
		t.Fatalf("rows = %d", ix.Rows())
	}
	if got := ix.PresenceBits("path"); len(got) != 1 || got[0] != 0b011 {
		t.Fatalf("path bits = %b", got)
	}
	if got := ix.PresenceBits("user"); got[0] != 0b101 {
		t.Fatalf("user bits = %b", got)
	}
	if ix.Present("path") != 2 || ix.Present("user") != 2 || ix.Present("module") != 2 {
		t.Fatal("present counts wrong")
	}
	if ix.Instances("module") != 3 {
		t.Fatalf("module instances = %d", ix.Instances("module"))
	}
	// CoSupport = popcount of the AND: path∧user share only row 0.
	if ix.CoSupport("path", "user") != 1 {
		t.Fatalf("CoSupport(path,user) = %d", ix.CoSupport("path", "user"))
	}
	if ix.CoSupport("user", "module") != 2 {
		t.Fatalf("CoSupport(user,module) = %d", ix.CoSupport("user", "module"))
	}
	// Unknown attributes behave like an all-absent column.
	if ix.CoSupport("path", "ghost") != 0 || ix.Present("ghost") != 0 || ix.Entropy("ghost") != 0 {
		t.Fatal("unknown attribute should be all-absent")
	}
	if vs := ix.RowValues("module"); len(vs) != 3 || len(vs[0]) != 2 || vs[1] != nil || vs[2][0] != "mod_a" {
		t.Fatalf("RowValues(module) = %v", vs)
	}
}

// TestIndexCacheInvalidation walks the declare → add → read → add → read
// sequence the memo cache must survive.
func TestIndexCacheInvalidation(t *testing.T) {
	d := New()
	d.DeclareAttr("attr", conftypes.TypeString, false)
	r := d.NewRow("img-1")
	if d.Present("attr") != 0 || d.Cardinality("attr") != 0 {
		t.Fatal("declared-but-empty column should read as absent")
	}
	d.Add(r, "attr", "x")
	if d.Present("attr") != 1 || d.Cardinality("attr") != 1 {
		t.Fatal("first add not visible after cached read")
	}
	d.Add(r, "attr", "y")
	if d.Cardinality("attr") != 2 || d.Index().Instances("attr") != 2 {
		t.Fatal("second add not visible: cache is stale")
	}
	// A new row invalidates too (bitset length grows).
	r2 := d.NewRow("img-2")
	if d.Index().Rows() != 2 {
		t.Fatal("new row not visible in index")
	}
	d.Add(r2, "attr", "x")
	if d.Present("attr") != 2 {
		t.Fatal("add on new row not visible")
	}
	// Declaring a fresh column after reads must show up as well.
	d.DeclareAttr("late", conftypes.TypeString, false)
	d.Add(r2, "late", "v")
	if d.Present("late") != 1 {
		t.Fatal("late-declared column not indexed")
	}
}

// TestStaleEntropyRegression pins the cache-invalidation contract for the
// statistic the rule engine's filter depends on: entropy read after a
// mutation must reflect the new distribution, not the memoized one.
func TestStaleEntropyRegression(t *testing.T) {
	d := New()
	d.DeclareAttr("attr", conftypes.TypeString, false)
	for i := 0; i < 4; i++ {
		d.Add(d.NewRow(fmt.Sprintf("img-%d", i)), "attr", "same")
	}
	if d.Entropy("attr") != 0 {
		t.Fatalf("constant column entropy = %v", d.Entropy("attr"))
	}
	// Diversify the distribution; entropy must rise on the next read.
	d.Add(d.NewRow("img-odd"), "attr", "different")
	want := stats.EntropyOfValues(d.Column("attr"))
	if got := d.Entropy("attr"); math.Abs(got-want) > 1e-12 || got == 0 {
		t.Fatalf("stale entropy after mutation: got %v want %v", got, want)
	}
}

// TestIndexMatchesNaive cross-checks every memoized statistic against a
// direct recomputation on randomized tables.
func TestIndexMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d := New()
		nAttrs := 3 + rng.Intn(6)
		attrs := make([]string, nAttrs)
		for i := range attrs {
			attrs[i] = fmt.Sprintf("a%d", i)
			d.DeclareAttr(attrs[i], conftypes.TypeString, false)
		}
		nRows := 1 + rng.Intn(130) // spans multiple bitset words
		for r := 0; r < nRows; r++ {
			row := d.NewRow(fmt.Sprintf("img-%d", r))
			for _, a := range attrs {
				for k := rng.Intn(3); k > 0; k-- {
					d.Add(row, a, fmt.Sprintf("v%d", rng.Intn(4)))
				}
			}
		}
		ix := d.Index()
		for _, a := range attrs {
			present, instances := 0, 0
			var col []string
			for _, row := range d.Rows {
				vs := row.Cells[a]
				if len(vs) > 0 {
					present++
				}
				instances += len(vs)
				col = append(col, vs...)
			}
			if ix.Present(a) != present || ix.Instances(a) != instances {
				t.Fatalf("seed %d attr %s: present/instances mismatch", seed, a)
			}
			if ix.Cardinality(a) != stats.Cardinality(col) {
				t.Fatalf("seed %d attr %s: cardinality mismatch", seed, a)
			}
			if math.Abs(ix.Entropy(a)-stats.EntropyOfValues(col)) > 1e-12 {
				t.Fatalf("seed %d attr %s: entropy %v vs %v", seed, a, ix.Entropy(a), stats.EntropyOfValues(col))
			}
			gotCol := d.Column(a)
			if len(gotCol) != len(col) {
				t.Fatalf("seed %d attr %s: column length %d vs %d", seed, a, len(gotCol), len(col))
			}
			for i := range col {
				if gotCol[i] != col[i] {
					t.Fatalf("seed %d attr %s: column order diverges at %d", seed, a, i)
				}
			}
		}
		for i := 0; i < len(attrs); i++ {
			for j := i + 1; j < len(attrs); j++ {
				naive := 0
				for _, row := range d.Rows {
					if len(row.Cells[attrs[i]]) > 0 && len(row.Cells[attrs[j]]) > 0 {
						naive++
					}
				}
				if ix.CoSupport(attrs[i], attrs[j]) != naive {
					t.Fatalf("seed %d: CoSupport(%s,%s) = %d want %d",
						seed, attrs[i], attrs[j], ix.CoSupport(attrs[i], attrs[j]), naive)
				}
			}
		}
	}
}

// TestColumnPreallocation verifies Column sizes its slice from the cached
// instance count instead of growing by repeated append.
func TestColumnPreallocation(t *testing.T) {
	d := indexFixture()
	col := d.Column("module")
	if len(col) != 3 || cap(col) != 3 {
		t.Fatalf("Column(module): len %d cap %d, want exactly 3", len(col), cap(col))
	}
	if d.Column("ghost") != nil {
		t.Fatal("unknown column should be nil")
	}
}

// TestIndexConcurrentReaders exercises the lazy rebuild under concurrent
// access (meaningful under -race in tier 2).
func TestIndexConcurrentReaders(t *testing.T) {
	d := indexFixture()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if d.Entropy("module") < 0 || d.Index().CoSupport("path", "user") != 1 {
					t.Error("index read inconsistent under concurrency")
				}
			}
		}()
	}
	wg.Wait()
}
