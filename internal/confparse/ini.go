package confparse

import (
	"fmt"
	"strings"
)

// INIDialect parses the INI family used by MySQL (my.cnf) and PHP
// (php.ini): [section] headers, key = value lines, bare boolean flags
// (MySQL's skip-networking), and configurable comment markers.
type INIDialect struct {
	commentMarkers []string
}

// NewINIDialect returns an INI dialect using the given comment markers
// (e.g. "#" and ";").
func NewINIDialect(markers ...string) *INIDialect {
	if len(markers) == 0 {
		markers = []string{"#", ";"}
	}
	return &INIDialect{commentMarkers: markers}
}

// Name implements Dialect.
func (d *INIDialect) Name() string { return "ini" }

// Parse implements Dialect.
func (d *INIDialect) Parse(content string) ([]*Entry, error) {
	var entries []*Entry
	section := ""
	for lineNo, raw := range strings.Split(content, "\n") {
		line := raw
		for _, m := range d.commentMarkers {
			line = stripComment(line, m)
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "[") {
			if !strings.HasSuffix(line, "]") {
				return nil, fmt.Errorf("line %d: unterminated section header %q", lineNo+1, line)
			}
			section = strings.TrimSpace(line[1 : len(line)-1])
			if section == "" {
				return nil, fmt.Errorf("line %d: empty section header", lineNo+1)
			}
			continue
		}
		key, value, hasValue := strings.Cut(line, "=")
		key = strings.TrimSpace(key)
		if key == "" {
			return nil, fmt.Errorf("line %d: missing key", lineNo+1)
		}
		e := &Entry{Section: section, Key: key, Line: lineNo + 1}
		if hasValue {
			e.Values = []string{unquote(strings.TrimSpace(value))}
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// Render implements Dialect, grouping entries under section headers in
// first-appearance order.
func (d *INIDialect) Render(entries []*Entry) string {
	var b strings.Builder
	current := ""
	first := true
	for _, e := range entries {
		if e.Section != current || first {
			if e.Section != "" && (e.Section != current || first) {
				if !first {
					b.WriteString("\n")
				}
				fmt.Fprintf(&b, "[%s]\n", e.Section)
			}
			current = e.Section
		}
		first = false
		if len(e.Values) == 0 {
			fmt.Fprintf(&b, "%s\n", e.Key)
		} else {
			v := e.Value()
			if strings.ContainsAny(v, " \t") || v == "" {
				v = `"` + v + `"`
			}
			fmt.Fprintf(&b, "%s = %s\n", e.Key, v)
		}
	}
	return b.String()
}

func unquote(s string) string {
	if len(s) >= 2 {
		if (s[0] == '"' && s[len(s)-1] == '"') || (s[0] == '\'' && s[len(s)-1] == '\'') {
			return s[1 : len(s)-1]
		}
	}
	return s
}
