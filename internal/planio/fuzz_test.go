package planio

import (
	"encoding/binary"
	"reflect"
	"testing"
)

// FuzzPlanDecode feeds arbitrary bytes to Decode. The invariants mirror
// the confparse fuzz harness: hostile input must produce an error, never a
// panic and never an input-disproportionate allocation (the count guards
// make the largest possible allocation linear in the input size). Inputs
// that do decode must re-encode and decode again to the same spec — the
// canonical-encoding property, checked from arbitrary entry points.
func FuzzPlanDecode(f *testing.F) {
	valid := Encode(testSpec())
	f.Add(valid)
	// Truncations at section-ish boundaries.
	f.Add(valid[:headerSize+trailerSize])
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-trailerSize])
	// Version and flag skew with a refreshed checksum, so the payload
	// parser (not just the header gate) gets explored.
	skew := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint16(skew[4:6], Version+1)
	f.Add(refixCRC(skew))
	flagged := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint16(flagged[6:8], 1)
	f.Add(refixCRC(flagged))
	// Flipped payload byte with a refreshed checksum — parser-level
	// corruption rather than checksum-gate rejection.
	flip := append([]byte(nil), valid...)
	flip[len(flip)/2] ^= 0x40
	f.Add(refixCRC(flip))
	// Degenerate inputs.
	f.Add([]byte{})
	f.Add([]byte("ENCP"))
	f.Add([]byte("ENCP\x01\x00\x00\x00\x00\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Decode(data)
		if err != nil {
			return
		}
		// Anything Decode accepts must round-trip through the canonical
		// encoding.
		out := Encode(spec)
		again, err := Decode(out)
		if err != nil {
			t.Fatalf("re-decode of re-encoded accepted input failed: %v", err)
		}
		if !reflect.DeepEqual(again, spec) {
			t.Fatal("accepted input did not round-trip through the canonical encoding")
		}
	})
}
