package corpus

import (
	"fmt"
	"strings"

	"repro/internal/conftypes"
)

// PHPOptions tunes PHP image generation.
type PHPOptions struct {
	Hardware bool
	// MySQLSocket, when set, emits mysqli.default_socket pointing at the
	// co-installed MySQL's socket (the LAMP cross-component correlation).
	MySQLSocket string
	// SessionOwner, when set, chowns the session directory to this user
	// (the LAMP stack sets it to the Apache service account).
	SessionOwner string
}

// BuildPHP generates one coherent PHP image.
func (b *Builder) BuildPHP(opts PHPOptions) {
	b.SetOS()
	if opts.Hardware {
		b.SetHardware()
	}
	img := b.Img
	rng := b.Rng

	extDir := Pick(rng, []string{
		"/usr/lib/php/modules",
		"/usr/lib64/php/modules",
		"/usr/lib/php5/20090626",
	})
	img.AddDir(extDir, "root", "root", 0o755)
	for _, so := range []string{"mysql.so", "gd.so", "json.so"} {
		img.AddRegular(extDir+"/"+so, "root", "root", 0o755, int64(rng.Intn(256)+32)<<10)
	}

	sessionDir := Pick(rng, []string{"/var/lib/php/session", "/tmp"})
	if opts.SessionOwner != "" {
		sessionDir = "/var/lib/php/session"
	}
	if sessionDir != "/tmp" {
		owner := "root"
		group := "apache"
		if opts.SessionOwner != "" {
			owner, group = opts.SessionOwner, opts.SessionOwner
		}
		img.AddDir(sessionDir, owner, group, 0o770)
		if _, ok := img.Users[group]; !ok {
			b.AddAccount(group, 48)
		}
	}

	errorLog := "/var/log/php_errors.log"
	img.AddRegular(errorLog, "root", "root", 0o644, int64(rng.Intn(2))<<20)

	includePath := ".:/usr/share/pear:/usr/share/php"

	// Ordered size chain: upload_max_filesize < post_max_size <=
	// memory_limit holds by construction in clean images.
	upload := Pick(rng, []int{2, 8, 16})
	post := upload * 2
	memory := post * Pick(rng, []int{2, 4})

	maxExec := Pick(rng, []string{"30", "60", "120"})
	displayErrors := PickWeighted(rng, []string{"Off", "On"}, []int{8, 2})

	var sb strings.Builder
	sb.WriteString("[PHP]\n")
	sb.WriteString("engine = On\n")
	fmt.Fprintf(&sb, "short_open_tag = %s\n", PickWeighted(rng, []string{"Off", "On"}, []int{6, 4}))
	fmt.Fprintf(&sb, "output_buffering = %s\n", Pick(rng, []string{"4096", "Off"}))
	fmt.Fprintf(&sb, "date.timezone = %s\n", Pick(rng, []string{"UTC", "America/Los_Angeles", "Europe/Berlin"}))
	fmt.Fprintf(&sb, "extension_dir = %q\n", extDir)
	fmt.Fprintf(&sb, "include_path = %q\n", includePath)
	fmt.Fprintf(&sb, "error_log = %s\n", errorLog)
	fmt.Fprintf(&sb, "error_reporting = 10\n") // constant warning level
	fmt.Fprintf(&sb, "display_errors = %s\n", displayErrors)
	fmt.Fprintf(&sb, "max_execution_time = %s\n", maxExec)
	fmt.Fprintf(&sb, "memory_limit = %dM\n", memory)
	fmt.Fprintf(&sb, "post_max_size = %dM\n", post)
	fmt.Fprintf(&sb, "upload_max_filesize = %dM\n", upload)
	fmt.Fprintf(&sb, "file_uploads = On\n")
	fmt.Fprintf(&sb, "expose_php = %s\n", PickWeighted(rng, []string{"Off", "On"}, []int{7, 3}))
	if opts.MySQLSocket != "" {
		fmt.Fprintf(&sb, "mysqli.default_socket = %s\n", opts.MySQLSocket)
	}
	sb.WriteString("\n[Session]\n")
	fmt.Fprintf(&sb, "session.save_path = %q\n", sessionDir)
	fmt.Fprintf(&sb, "session.gc_maxlifetime = %s\n", Pick(rng, []string{"1440", "3600"}))

	img.SetConfig("php", "/etc/php.ini", sb.String())
}

// PHPEntryTypes is the ground-truth semantic type of each PHP attribute
// the generator can emit.
func PHPEntryTypes() map[string]conftypes.Type {
	return map[string]conftypes.Type{
		"php:PHP/engine":                     conftypes.TypeBoolean,
		"php:PHP/short_open_tag":             conftypes.TypeBoolean,
		"php:PHP/output_buffering":           conftypes.TypeString,
		"php:PHP/date.timezone":              conftypes.TypeString,
		"php:PHP/extension_dir":              conftypes.TypeFilePath,
		"php:PHP/mysqli.default_socket":      conftypes.TypeFilePath,
		"php:PHP/include_path":               conftypes.TypeString,
		"php:PHP/error_log":                  conftypes.TypeFilePath,
		"php:PHP/error_reporting":            conftypes.TypeNumber,
		"php:PHP/display_errors":             conftypes.TypeBoolean,
		"php:PHP/max_execution_time":         conftypes.TypeNumber,
		"php:PHP/memory_limit":               conftypes.TypeSize,
		"php:PHP/post_max_size":              conftypes.TypeSize,
		"php:PHP/upload_max_filesize":        conftypes.TypeSize,
		"php:PHP/file_uploads":               conftypes.TypeBoolean,
		"php:PHP/expose_php":                 conftypes.TypeBoolean,
		"php:Session/session.save_path":      conftypes.TypeFilePath,
		"php:Session/session.gc_maxlifetime": conftypes.TypeNumber,
	}
}

// PHPTrueRules lists correlations that hold by construction in clean PHP
// images.
func PHPTrueRules() []TrueRule {
	return []TrueRule{
		{Template: "size-lt", AttrA: "php:PHP/upload_max_filesize", AttrB: "php:PHP/post_max_size"},
		{Template: "size-lt", AttrA: "php:PHP/upload_max_filesize", AttrB: "php:PHP/memory_limit"},
		{Template: "size-lt", AttrA: "php:PHP/post_max_size", AttrB: "php:PHP/memory_limit"},
	}
}
