package encore

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/internal/rules"
	"repro/internal/sysimage"
)

// freshRules re-infers the rule set from scratch over the knowledge's
// current rows — a rebuilt dataset twin, a fresh engine, no incremental
// state — so it is the reference answer for the delta-maintained rules.
func freshRules(t *testing.T, k *Knowledge) []*rules.Rule {
	t.Helper()
	twin := dataset.New()
	for _, a := range k.Training.Attributes() {
		twin.DeclareAttr(a.Name, a.Type, a.Augmented)
	}
	twin.AddRows(k.Training.Rows...)
	return New().Engine.Infer(twin, k.images)
}

func requireRulesFresh(t *testing.T, label string, k *Knowledge) {
	t.Helper()
	want := freshRules(t, k)
	if len(k.Rules) != len(want) {
		t.Fatalf("%s: incremental kept %d rules, from-scratch inference kept %d", label, len(k.Rules), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(k.Rules[i], want[i]) {
			t.Fatalf("%s: rule %d differs\nincremental:  %+v\nfrom-scratch: %+v", label, i, k.Rules[i], want[i])
		}
	}
}

// TestIncrementalLearnEquivalence drives the framework-level incremental
// pipeline — Learn on a partial fleet, AddImages for the rest, then
// RetireImages — and checks after every step that the delta-maintained
// rule set matches a from-scratch inference over the same rows, and that
// the final knowledge produces the same reports as one learned in a
// single batch over the same images.
func TestIncrementalLearnEquivalence(t *testing.T) {
	for _, app := range []string{"apache", "mysql"} {
		t.Run(app, func(t *testing.T) {
			training, err := corpus.Training(app, 16, 3)
			if err != nil {
				t.Fatal(err)
			}
			fw := New()
			k, err := fw.Learn(training[:10])
			if err != nil {
				t.Fatal(err)
			}
			requireRulesFresh(t, "after Learn", k)

			if err := fw.AddImages(k, training[10:13]...); err != nil {
				t.Fatal(err)
			}
			requireRulesFresh(t, "after AddImages batch 1", k)
			if err := fw.AddImages(k, training[13:]...); err != nil {
				t.Fatal(err)
			}
			requireRulesFresh(t, "after AddImages batch 2", k)

			retire := []string{training[1].ID, training[7].ID, training[14].ID}
			if err := fw.RetireImages(k, retire...); err != nil {
				t.Fatal(err)
			}
			requireRulesFresh(t, "after RetireImages", k)
			for _, id := range retire {
				if _, ok := k.images[id]; ok {
					t.Fatalf("retired image %s still registered", id)
				}
			}

			// The surviving fleet, learned in one batch, must make the same
			// calls on every target as the incrementally maintained one.
			var survivors []*sysimage.Image
			for _, row := range k.Training.Rows {
				survivors = append(survivors, k.images[row.SystemID])
			}
			batch, err := New().Learn(survivors)
			if err != nil {
				t.Fatal(err)
			}
			incPlan, batchPlan := fw.CompilePlan(k), fw.CompilePlan(batch)
			for _, img := range equivalenceTargets(t, app, 3) {
				want, err := batchPlan.Check(img)
				if err != nil {
					t.Fatal(err)
				}
				got, err := incPlan.Check(img)
				if err != nil {
					t.Fatal(err)
				}
				requireSameReport(t, img.ID, want, got)
			}
		})
	}
}

// TestIncrementalLearnErrors locks the guard rails: nil knowledge,
// duplicate image IDs, and retiring unknown IDs.
func TestIncrementalLearnErrors(t *testing.T) {
	training, err := corpus.Training("mysql", 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	fw := New()
	if err := fw.AddImages(nil, training[0]); err == nil {
		t.Fatal("AddImages accepted nil knowledge")
	}
	k, err := fw.Learn(training[:3])
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.AddImages(k, training[0]); err == nil {
		t.Fatal("AddImages accepted a duplicate image ID")
	}
	before := len(k.Training.Rows)
	if err := fw.RetireImages(k, "no-such-image"); err != nil {
		t.Fatalf("retiring an unknown ID should be a no-op, got %v", err)
	}
	if len(k.Training.Rows) != before {
		t.Fatal("no-op retire changed the training rows")
	}
	if err := fw.RetireImages(nil, "x"); err == nil {
		t.Fatal("RetireImages accepted nil knowledge")
	}
}

// TestBinaryPlanReportEquivalence extends the plan equivalence property
// through the binary codec: a plan marshaled to the binary format and
// loaded back must report byte-identically to the legacy detector and to
// the in-memory plan it came from, and re-marshaling the loaded plan must
// reproduce the same bytes.
func TestBinaryPlanReportEquivalence(t *testing.T) {
	for _, app := range []string{"apache", "mysql", "php", "sshd"} {
		for seed := int64(1); seed <= 2; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", app, seed), func(t *testing.T) {
				training, err := corpus.Training(app, 12, seed)
				if err != nil {
					t.Fatal(err)
				}
				fw := New()
				k, err := fw.Learn(training)
				if err != nil {
					t.Fatal(err)
				}
				plan := fw.CompilePlan(k)
				data := fw.MarshalPlan(plan)
				loaded, err := fw.LoadPlan(data)
				if err != nil {
					t.Fatal(err)
				}
				if again := fw.MarshalPlan(loaded); string(again) != string(data) {
					t.Fatalf("re-marshaling the loaded plan changed the bytes: %d vs %d", len(again), len(data))
				}
				if loaded.Samples() != plan.Samples() || loaded.RuleCount() != plan.RuleCount() || loaded.AttrCount() != plan.AttrCount() {
					t.Fatalf("loaded plan shape differs: %d/%d/%d vs %d/%d/%d",
						loaded.Samples(), loaded.RuleCount(), loaded.AttrCount(),
						plan.Samples(), plan.RuleCount(), plan.AttrCount())
				}
				for _, img := range equivalenceTargets(t, app, seed) {
					legacy, err := fw.Check(k, img)
					if err != nil {
						t.Fatal(err)
					}
					got, err := loaded.Check(img)
					if err != nil {
						t.Fatal(err)
					}
					requireSameReport(t, img.ID, legacy, got)
				}
			})
		}
	}
}

// TestBinaryPlanFromProfile covers the other production path into the
// codec: profile JSON -> compiled plan -> binary -> loaded plan, compared
// against CheckWithProfile.
func TestBinaryPlanFromProfile(t *testing.T) {
	training, err := corpus.Training("mysql", 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	fw := New()
	k, err := fw.Learn(training)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := k.Profile().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	p, err := LoadProfile(raw)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := fw.LoadPlan(fw.MarshalPlan(fw.CompilePlanFromProfile(p)))
	if err != nil {
		t.Fatal(err)
	}
	for _, img := range equivalenceTargets(t, "mysql", 4) {
		legacy, err := fw.CheckWithProfile(p, img)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Check(img)
		if err != nil {
			t.Fatal(err)
		}
		requireSameReport(t, img.ID, legacy, got)
	}
}
