package confparse

import (
	"fmt"
	"strings"
)

// ApacheDialect parses the Apache httpd directive format: one directive per
// line with whitespace-separated arguments, '#' comments, and nested
// container sections such as <Directory /var/www> ... </Directory>.
type ApacheDialect struct{}

// NewApacheDialect returns the dialect for Apache-style configuration.
func NewApacheDialect() *ApacheDialect { return &ApacheDialect{} }

// Name implements Dialect.
func (d *ApacheDialect) Name() string { return "apache" }

// Parse implements Dialect.
func (d *ApacheDialect) Parse(content string) ([]*Entry, error) {
	var entries []*Entry
	var stack []string // open section path elements
	for lineNo, raw := range strings.Split(content, "\n") {
		line := strings.TrimSpace(stripComment(raw, "#"))
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "</"):
			name := strings.TrimSuffix(strings.TrimPrefix(line, "</"), ">")
			if len(stack) == 0 {
				return nil, fmt.Errorf("line %d: closing </%s> with no open section", lineNo+1, name)
			}
			top := stack[len(stack)-1]
			if !strings.EqualFold(sectionKind(top), name) {
				return nil, fmt.Errorf("line %d: closing </%s> does not match open <%s>", lineNo+1, name, sectionKind(top))
			}
			stack = stack[:len(stack)-1]
		case strings.HasPrefix(line, "<"):
			if !strings.HasSuffix(line, ">") {
				return nil, fmt.Errorf("line %d: unterminated section %q", lineNo+1, line)
			}
			inner := strings.TrimSuffix(strings.TrimPrefix(line, "<"), ">")
			fields := splitArgs(inner)
			if len(fields) == 0 {
				return nil, fmt.Errorf("line %d: empty section", lineNo+1)
			}
			// The section container itself is observable: emit a
			// pseudo-entry carrying its arguments so rules can correlate
			// against them (e.g. DocumentRoot with <Directory> paths).
			entries = append(entries, &Entry{
				Section:   strings.Join(stack, "|"),
				Key:       fields[0],
				Values:    fields[1:],
				Line:      lineNo + 1,
				IsSection: true,
			})
			elem := fields[0]
			if len(fields) > 1 {
				elem += ":" + strings.Join(fields[1:], ":")
			}
			stack = append(stack, elem)
		default:
			fields := splitArgs(line)
			if len(fields) == 0 {
				continue
			}
			entries = append(entries, &Entry{
				Section: strings.Join(stack, "|"),
				Key:     fields[0],
				Values:  fields[1:],
				Line:    lineNo + 1,
			})
		}
	}
	if len(stack) > 0 {
		return nil, fmt.Errorf("unclosed section <%s>", sectionKind(stack[len(stack)-1]))
	}
	return entries, nil
}

// Render implements Dialect. Entries are emitted in order, opening and
// closing section containers as the section path changes.
func (d *ApacheDialect) Render(entries []*Entry) string {
	var b strings.Builder
	var open []string
	for _, e := range entries {
		want := splitSection(e.Section)
		if e.IsSection {
			// A section pseudo-entry renders as the container itself:
			// extend the desired path with its own element and emit no
			// directive line.
			elem := e.Key
			if len(e.Values) > 0 {
				elem += ":" + strings.Join(e.Values, ":")
			}
			want = append(want, elem)
		}
		// Close sections no longer shared with the desired path.
		common := 0
		for common < len(open) && common < len(want) && open[common] == want[common] {
			common++
		}
		for i := len(open) - 1; i >= common; i-- {
			fmt.Fprintf(&b, "%s</%s>\n", strings.Repeat("    ", i), sectionKind(open[i]))
		}
		open = open[:common]
		// Open the remaining sections of the desired path.
		for i := common; i < len(want); i++ {
			kind, arg := sectionKindArg(want[i])
			if arg != "" {
				fmt.Fprintf(&b, "%s<%s %s>\n", strings.Repeat("    ", i), kind, arg)
			} else {
				fmt.Fprintf(&b, "%s<%s>\n", strings.Repeat("    ", i), kind)
			}
			open = append(open, want[i])
		}
		if e.IsSection {
			continue
		}
		indent := strings.Repeat("    ", len(open))
		if len(e.Values) > 0 {
			fmt.Fprintf(&b, "%s%s %s\n", indent, e.Key, strings.Join(quoteArgs(e.Values), " "))
		} else {
			fmt.Fprintf(&b, "%s%s\n", indent, e.Key)
		}
	}
	for i := len(open) - 1; i >= 0; i-- {
		fmt.Fprintf(&b, "%s</%s>\n", strings.Repeat("    ", i), sectionKind(open[i]))
	}
	return b.String()
}

// splitSection splits a nested-section path. Nested containers are joined
// with '|' (not '/') because section arguments are often file paths that
// themselves contain slashes.
func splitSection(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, "|")
}

// sectionKind returns the container kind of a section path element
// ("Directory:/var/www" -> "Directory").
func sectionKind(elem string) string {
	kind, _ := sectionKindArg(elem)
	return kind
}

func sectionKindArg(elem string) (kind, arg string) {
	if i := strings.Index(elem, ":"); i >= 0 {
		return elem[:i], strings.ReplaceAll(elem[i+1:], ":", " ")
	}
	return elem, ""
}

// stripComment removes an unquoted trailing comment introduced by marker.
func stripComment(line, marker string) string {
	inQuote := byte(0)
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case inQuote != 0:
			if c == inQuote {
				inQuote = 0
			}
		case c == '"' || c == '\'':
			inQuote = c
		case strings.HasPrefix(line[i:], marker):
			return line[:i]
		}
	}
	return line
}

// splitArgs tokenizes a directive line, honoring double- and single-quoted
// arguments.
func splitArgs(line string) []string {
	var args []string
	var cur strings.Builder
	inQuote := byte(0)
	flush := func() {
		if cur.Len() > 0 {
			args = append(args, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case inQuote != 0:
			if c == inQuote {
				inQuote = 0
			} else {
				cur.WriteByte(c)
			}
		case c == '"' || c == '\'':
			inQuote = c
		case c == ' ' || c == '\t':
			flush()
		default:
			cur.WriteByte(c)
		}
	}
	flush()
	return args
}

// quoteArgs re-quotes arguments containing whitespace.
func quoteArgs(args []string) []string {
	out := make([]string, len(args))
	for i, a := range args {
		if strings.ContainsAny(a, " \t") {
			out[i] = `"` + a + `"`
		} else {
			out[i] = a
		}
	}
	return out
}
