package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/corpus"
	"repro/internal/sysimage"
)

func writeImage(t *testing.T) string {
	t.Helper()
	images, err := corpus.Training("mysql", 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := sysimage.SaveDir(dir, images); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, images[0].ID+".json")
}

func TestRunInjects(t *testing.T) {
	in := writeImage(t)
	out := filepath.Join(t.TempDir(), "broken.json")
	if err := run(in, "mysql", 5, 9, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	img, err := sysimage.LoadJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := os.ReadFile(in)
	origImg, _ := sysimage.LoadJSON(orig)
	if img.ConfigFor("mysql").Content == origImg.ConfigFor("mysql").Content {
		t.Fatal("output config unchanged")
	}
}

func TestRunErrors(t *testing.T) {
	out := filepath.Join(t.TempDir(), "x.json")
	if err := run("/no/such/file.json", "mysql", 1, 1, out); err == nil {
		t.Fatal("missing input should error")
	}
	in := writeImage(t)
	if err := run(in, "apache", 1, 1, out); err == nil {
		t.Fatal("missing app config should error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{broken"), 0o644)
	if err := run(bad, "mysql", 1, 1, out); err == nil {
		t.Fatal("bad JSON should error")
	}
}
