package detect

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenCompare asserts got matches the committed golden file byte for
// byte, so any change to the CLI-facing report rendering is reviewed, not
// accidental.
func goldenCompare(t *testing.T, name, got string) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("%s changed; run `go test ./internal/detect -update` if intended\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

func TestRenderTextGolden(t *testing.T) {
	goldenCompare(t, "report_text.golden", sampleReport().RenderText(0))
}

func TestRenderTextTopGolden(t *testing.T) {
	goldenCompare(t, "report_text_top.golden", sampleReport().RenderText(2))
}

func TestRenderJSONGolden(t *testing.T) {
	data, err := sampleReport().RenderJSON()
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "report_json.golden", string(data))
}

func TestRenderTextEmptyGolden(t *testing.T) {
	empty := &Report{SystemID: "img-clean"}
	goldenCompare(t, "report_text_empty.golden", empty.RenderText(0))
}
