// Command evaluate regenerates the paper's evaluation tables on the
// synthetic corpora.
//
// Usage:
//
//	evaluate              # all tables
//	evaluate -table 8     # one table (1, 2, 3, 8, 9, 10, 11, 12, 13)
//	evaluate -seed 42     # different corpus seed
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/eval"
	"repro/internal/telemetry"
)

func main() {
	table := flag.Int("table", 0, "table to regenerate (0 = all)")
	seed := flag.Int64("seed", 1, "corpus seed")
	budget := flag.Int("budget", eval.Table3Budget, "frequent-item-set budget for Table 3 (simulated OOM)")
	ext := flag.Bool("ext", false, "also run the extension studies (env-error injection, LAMP cross-component)")
	obs := &telemetry.Flags{}
	obs.Register(flag.CommandLine)
	flag.Parse()

	if err := obs.Start("evaluate"); err != nil {
		fmt.Fprintln(os.Stderr, "evaluate:", err)
		os.Exit(1)
	}
	if obs.Rec != nil {
		eval.SetTelemetry(obs.Rec)
	}
	fail := func(err error) {
		obs.Log.Error("evaluate failed", "err", err)
		obs.Finish()
		os.Exit(1)
	}

	if err := run(*table, *seed, *budget); err != nil {
		fail(err)
	}
	if *ext || *table == 0 {
		if err := runExtensions(*seed); err != nil {
			fail(err)
		}
	}
	if err := obs.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, "evaluate:", err)
		os.Exit(1)
	}
}

func runExtensions(seed int64) error {
	rows, err := eval.ExtensionEnvInjection(seed)
	if err != nil {
		return err
	}
	fmt.Println(eval.RenderEnvInjection(rows))
	res, err := eval.ExtensionCrossComponent(60, seed)
	if err != nil {
		return err
	}
	fmt.Println(eval.RenderCrossComponent(res))
	points, err := eval.ThresholdSweep("mysql", seed)
	if err != nil {
		return err
	}
	fmt.Println(eval.RenderSweep("mysql", points))
	return nil
}

func run(table int, seed int64, budget int) error {
	want := func(n int) bool { return table == 0 || table == n }

	if want(1) {
		fmt.Println(eval.RenderTable1())
	}
	if want(2) {
		rows, err := eval.Table2(seed)
		if err != nil {
			return err
		}
		fmt.Println(eval.RenderTable2(rows))
	}
	if want(3) {
		rows, err := eval.Table3(seed, nil, budget)
		if err != nil {
			return err
		}
		fmt.Println(eval.RenderTable3(rows))
	}
	if want(8) {
		rows, err := eval.Table8(seed)
		if err != nil {
			return err
		}
		fmt.Println(eval.RenderTable8(rows))
	}
	if want(9) {
		rows, err := eval.Table9(seed)
		if err != nil {
			return err
		}
		fmt.Println(eval.RenderTable9(rows))
	}
	if want(10) {
		rows, err := eval.Table10(seed)
		if err != nil {
			return err
		}
		fmt.Println(eval.RenderTable10(rows))
	}
	if want(11) {
		rows, err := eval.Table11(seed)
		if err != nil {
			return err
		}
		fmt.Println(eval.RenderTable11(rows))
	}
	if want(12) {
		rows, err := eval.Table12(seed)
		if err != nil {
			return err
		}
		fmt.Println(eval.RenderTable12(rows))
	}
	if want(13) {
		rows, err := eval.Table13(seed)
		if err != nil {
			return err
		}
		fmt.Println(eval.RenderTable13(rows))
	}
	return nil
}
