package encore

import (
	"strings"
	"testing"

	"repro/internal/corpus"
)

// TestEndToEndMySQL exercises the full pipeline on a realistic corpus: learn
// from clean MySQL images, then detect a planted ownership violation.
func TestEndToEndMySQL(t *testing.T) {
	images, err := corpus.Training("mysql", 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	fw := New()
	k, err := fw.Learn(images)
	if err != nil {
		t.Fatal(err)
	}
	if len(k.Rules) == 0 {
		t.Fatal("no rules learned from 60 clean images")
	}
	// The headline rule must be among them.
	found := false
	for _, r := range k.Rules {
		if r.Template == "owner" && r.AttrA == "mysql:mysqld/datadir" && r.AttrB == "mysql:mysqld/user" {
			found = true
		}
	}
	if !found {
		for _, r := range k.Rules {
			t.Logf("rule: %s", r)
		}
		t.Fatal("datadir => user ownership rule not learned")
	}

	target := corpus.RealWorldCases()[2].Build() // case 3: wrong datadir owner
	report, err := fw.Check(k, target)
	if err != nil {
		t.Fatal(err)
	}
	rank := report.RankOf(func(w *Warning) bool {
		return w.Kind == KindCorrelation && strings.Contains(w.Attr, "datadir")
	})
	if rank == 0 || rank > 3 {
		for _, w := range report.Warnings {
			t.Logf("%d %s %s", w.Rank, w.Kind, w.Message)
		}
		t.Fatalf("ownership violation rank = %d", rank)
	}
}

func TestLearnEmptyTrainingSet(t *testing.T) {
	if _, err := New().Learn(nil); err == nil {
		t.Fatal("empty training set should error")
	}
}

func TestCheckNilKnowledge(t *testing.T) {
	img := corpus.RealWorldCases()[1].Build()
	if _, err := New().Check(nil, img); err == nil {
		t.Fatal("nil knowledge should error")
	}
}

func TestRuleSetExport(t *testing.T) {
	images, err := corpus.Training("php", 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	fw := New()
	k, err := fw.Learn(images)
	if err != nil {
		t.Fatal(err)
	}
	rs := k.RuleSet()
	data, err := rs.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "upload_max_filesize") {
		t.Log(string(data)[:min(len(data), 500)])
		t.Fatal("serialized rules should mention the PHP size chain")
	}
	if ty, ok := k.TypeOf("php:PHP/extension_dir"); !ok || string(ty) != "FilePath" {
		t.Fatalf("TypeOf = %v %v", ty, ok)
	}
	if _, ok := k.TypeOf("missing"); ok {
		t.Fatal("missing attr should report !ok")
	}
}

func TestLoadCustomization(t *testing.T) {
	fw := New()
	src := `
$$TypeDeclaration
LogDir
$$TypeInference
LogDir (value): { matches(value, '^/var/log(/.*)?$') }
$$TypeValidation
LogDir (value): { isDir(value) || isFile(value) }
$$Template
[A:LogDir] => [B:UserName]
`
	// "=>" between LogDir and UserName is not registered; expect an error
	// that names the operator.
	err := fw.LoadCustomization(src)
	if err == nil || !strings.Contains(err.Error(), "operator") {
		t.Fatalf("expected operator error, got %v", err)
	}
	// Without the template the customization applies cleanly.
	src = strings.Split(src, "$$Template")[0]
	if err := fw.LoadCustomization(src); err != nil {
		t.Fatal(err)
	}
	if len(fw.Templates()) == 0 {
		t.Fatal("templates missing")
	}
}

func TestLoadCustomizationFileMissing(t *testing.T) {
	if err := New().LoadCustomizationFile("/no/such/file"); err == nil {
		t.Fatal("missing file should error")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
