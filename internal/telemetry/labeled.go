// Labeled metric families for long-running services. The flat pipeline
// counters and histograms in telemetry.go describe one batch run; a
// resident daemon additionally needs families broken out by label —
// requests by (app, code), scan latency by app, findings by (app,
// severity), registry gauges by app. A labeled family is identified by
// its full Prometheus exposition name (e.g. "encore_serve_requests_total")
// plus a pre-rendered label string built with L, so the hot path does one
// map lookup per update and rendering is a straight copy.
//
// Labeled families ride along in snapshots: PromText renders them as
// first-class Prometheus families (histograms with labeled
// _bucket/_sum/_count series), the JSON export appends them as optional
// sections (absent when empty, so pre-existing goldens are unaffected),
// and Render lists them after the flat sections.
package telemetry

import (
	"sort"
	"time"
)

// L renders a label set into its canonical exposition form:
//
//	L("app", "mysql", "code", "200") == `app="mysql",code="200"`
//
// Keys sort lexicographically so equal label sets render to equal strings
// (the map key for the family's series). Values are escaped per the
// exposition format. An odd trailing key is dropped. An empty call
// returns "", the unlabeled series of a family.
// L sits on the daemon's per-request hot path (three calls per scan), so
// it allocates exactly once — the returned string. Pairs sort on a stack
// array (label sets are tiny; insertion sort beats sort.Slice's closure
// allocations) and the rendering buffer starts on the stack too, escaping
// only via the final string conversion when it stays within bounds.
func L(kv ...string) string {
	n := len(kv) / 2
	if n == 0 {
		return ""
	}
	type pair struct{ k, v string }
	var scratch [8]pair
	var pairs []pair
	if n <= len(scratch) {
		pairs = scratch[:0]
	} else {
		pairs = make([]pair, 0, n)
	}
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	for i := 1; i < len(pairs); i++ {
		for j := i; j > 0 && pairs[j].k < pairs[j-1].k; j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
	var bufArr [96]byte
	out := bufArr[:0]
	for i, p := range pairs {
		if i > 0 {
			out = append(out, ',')
		}
		out = append(out, p.k...)
		out = append(out, '=', '"')
		out = appendEscapedLabel(out, p.v)
		out = append(out, '"')
	}
	return string(out)
}

// labeled is the recorder's store for labeled families, lazily allocated
// on first use so batch pipelines that never touch labels pay nothing.
type labeled struct {
	counters map[string]map[string]int64
	gauges   map[string]map[string]float64
	hists    map[string]map[string]*Histogram
}

// labeledStore returns the recorder's labeled store, allocating it on
// first use. Callers hold r.mu.
func (r *Recorder) labeledStore() *labeled {
	if r.labels == nil {
		r.labels = &labeled{
			counters: make(map[string]map[string]int64),
			gauges:   make(map[string]map[string]float64),
			hists:    make(map[string]map[string]*Histogram),
		}
	}
	return r.labels
}

// AddLabeled increments one series of a labeled counter family. family is
// the full exposition name ("encore_serve_requests_total"); labels is a
// canonical label string from L. Safe on a nil recorder.
func (r *Recorder) AddLabeled(family, labels string, n int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	st := r.labeledStore()
	m := st.counters[family]
	if m == nil {
		m = make(map[string]int64)
		st.counters[family] = m
	}
	m[labels] += n
	r.mu.Unlock()
}

// LabeledCounter reads one series of a labeled counter family (0 when the
// series was never incremented, or on a nil recorder).
func (r *Recorder) LabeledCounter(family, labels string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.labels == nil {
		return 0
	}
	return r.labels.counters[family][labels]
}

// SetGauge sets one series of a labeled gauge family to an absolute
// value (use labels == "" for an unlabeled gauge). Safe on a nil
// recorder.
func (r *Recorder) SetGauge(family, labels string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	st := r.labeledStore()
	m := st.gauges[family]
	if m == nil {
		m = make(map[string]float64)
		st.gauges[family] = m
	}
	m[labels] = v
	r.mu.Unlock()
}

// Gauge reads one series of a labeled gauge family.
func (r *Recorder) Gauge(family, labels string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.labels == nil {
		return 0, false
	}
	v, ok := r.labels.gauges[family][labels]
	return v, ok
}

// ObserveLabeled records one latency sample into one series of a labeled
// histogram family. family is the full exposition base name
// ("encore_serve_scan_seconds" — PromText derives the _bucket/_sum/_count
// series from it). Safe on a nil recorder.
func (r *Recorder) ObserveLabeled(family, labels string, d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	st := r.labeledStore()
	m := st.hists[family]
	if m == nil {
		m = make(map[string]*Histogram)
		st.hists[family] = m
	}
	h := m[labels]
	if h == nil {
		h = &Histogram{}
		m[labels] = h
	}
	h.Observe(d)
	r.mu.Unlock()
}

// LabeledHistogram snapshots one series of a labeled histogram family
// (quantiles included); ok is false when the series has no samples.
func (r *Recorder) LabeledHistogram(family, labels string) (HistogramData, bool) {
	if r == nil {
		return HistogramData{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.labels == nil {
		return HistogramData{}, false
	}
	h := r.labels.hists[family][labels]
	if h == nil {
		return HistogramData{}, false
	}
	return h.data(family), true
}

// LabeledValue is one series of a labeled counter family in a snapshot.
type LabeledValue struct {
	Family string
	Labels string
	Value  int64
}

// GaugeValue is one series of a labeled gauge family in a snapshot.
type GaugeValue struct {
	Family string
	Labels string
	Value  float64
}

// LabeledHistogramData is one series of a labeled histogram family in a
// snapshot.
type LabeledHistogramData struct {
	Family string
	Labels string
	Data   HistogramData
}

// snapshotLabeled copies the labeled families into the snapshot, sorted
// by (family, labels). Callers hold r.mu.
func (r *Recorder) snapshotLabeled(s *Snapshot) {
	if r.labels == nil {
		return
	}
	for family, series := range r.labels.counters {
		for labels, v := range series {
			s.LabeledCounters = append(s.LabeledCounters, LabeledValue{Family: family, Labels: labels, Value: v})
		}
	}
	for family, series := range r.labels.gauges {
		for labels, v := range series {
			s.Gauges = append(s.Gauges, GaugeValue{Family: family, Labels: labels, Value: v})
		}
	}
	for family, series := range r.labels.hists {
		for labels, h := range series {
			s.LabeledHistograms = append(s.LabeledHistograms, LabeledHistogramData{Family: family, Labels: labels, Data: h.data(family)})
		}
	}
	sort.Slice(s.LabeledCounters, func(i, j int) bool {
		if s.LabeledCounters[i].Family != s.LabeledCounters[j].Family {
			return s.LabeledCounters[i].Family < s.LabeledCounters[j].Family
		}
		return s.LabeledCounters[i].Labels < s.LabeledCounters[j].Labels
	})
	sort.Slice(s.Gauges, func(i, j int) bool {
		if s.Gauges[i].Family != s.Gauges[j].Family {
			return s.Gauges[i].Family < s.Gauges[j].Family
		}
		return s.Gauges[i].Labels < s.Gauges[j].Labels
	})
	sort.Slice(s.LabeledHistograms, func(i, j int) bool {
		if s.LabeledHistograms[i].Family != s.LabeledHistograms[j].Family {
			return s.LabeledHistograms[i].Family < s.LabeledHistograms[j].Family
		}
		return s.LabeledHistograms[i].Labels < s.LabeledHistograms[j].Labels
	})
}
