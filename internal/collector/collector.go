// Package collector implements EnCore's data collector (Figure 2) for real
// filesystem trees: given the root of an extracted system image (a mounted
// VM image, a container filesystem, a chroot), it gathers everything the
// assembler needs — file metadata, accounts, services, OS facts, and the
// application configuration files — into a sysimage.Image.
//
// Ownership is resolved against the *image's own* /etc/passwd and
// /etc/group (by uid/gid), not the host's, so a tree extracted by any user
// still reports the accounts the image knows about.
package collector

import (
	"bufio"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/sysimage"
)

// Options configures a collection run.
type Options struct {
	// Apps maps application names to their primary configuration file,
	// relative to the root (e.g. "mysql" -> "etc/my.cnf").
	Apps map[string]string
	// ExtraConfigs lists additional configuration fragments per app
	// (include files), relative to the root.
	ExtraConfigs map[string][]string
	// MaxFiles bounds the number of file-system entries collected
	// (0 = DefaultMaxFiles). The paper's collector gathers full metadata;
	// the bound keeps pathological trees from exhausting memory.
	MaxFiles int
	// SkipDirs lists directory names to skip entirely (defaults to
	// proc, sys, dev).
	SkipDirs []string
}

// DefaultMaxFiles bounds collection on unbounded trees.
const DefaultMaxFiles = 200_000

// Collect walks the tree rooted at root and builds a system image.
func Collect(root, id string, opts Options) (*sysimage.Image, error) {
	info, err := os.Stat(root)
	if err != nil {
		return nil, fmt.Errorf("collector: %w", err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("collector: %s is not a directory", root)
	}
	img := sysimage.New(id)

	// Accounts first: file ownership resolves against them.
	uidNames, gidNames := map[int]string{}, map[int]string{}
	if err := collectPasswd(img, filepath.Join(root, "etc/passwd"), uidNames); err != nil {
		return nil, err
	}
	if err := collectGroup(img, filepath.Join(root, "etc/group"), gidNames); err != nil {
		return nil, err
	}
	if err := collectServices(img, filepath.Join(root, "etc/services")); err != nil {
		return nil, err
	}
	collectOSRelease(img, filepath.Join(root, "etc/os-release"))

	skip := map[string]bool{"proc": true, "sys": true, "dev": true}
	for _, d := range opts.SkipDirs {
		skip[d] = true
	}
	maxFiles := opts.MaxFiles
	if maxFiles <= 0 {
		maxFiles = DefaultMaxFiles
	}

	count := 0
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, walkErr error) error {
		if walkErr != nil {
			return nil // unreadable entries are simply not collected
		}
		rel, err := filepath.Rel(root, path)
		if err != nil || rel == "." {
			return nil
		}
		if d.IsDir() && skip[d.Name()] && filepath.Dir(rel) == "." {
			return fs.SkipDir
		}
		if count >= maxFiles {
			return fs.SkipAll
		}
		count++
		meta := fileMeta("/"+filepath.ToSlash(rel), path, d, uidNames, gidNames)
		img.AddFile(meta)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("collector: walk: %w", err)
	}

	for app, rel := range opts.Apps {
		content, err := os.ReadFile(filepath.Join(root, rel))
		if err != nil {
			return nil, fmt.Errorf("collector: %s config: %w", app, err)
		}
		img.SetConfig(app, "/"+filepath.ToSlash(rel), string(content))
		for _, extra := range opts.ExtraConfigs[app] {
			data, err := os.ReadFile(filepath.Join(root, extra))
			if err != nil {
				return nil, fmt.Errorf("collector: %s fragment %s: %w", app, extra, err)
			}
			img.AddConfig(app, "/"+filepath.ToSlash(extra), string(data))
		}
	}
	return img, nil
}

// fileMeta converts one directory entry to image metadata, resolving
// ownership through the image's account tables.
func fileMeta(imgPath, hostPath string, d fs.DirEntry, uids, gids map[int]string) sysimage.FileMeta {
	meta := sysimage.FileMeta{Path: imgPath, Owner: "root", Group: "root"}
	info, err := d.Info()
	if err != nil {
		return meta
	}
	meta.Mode = uint32(info.Mode().Perm())
	meta.Size = info.Size()
	switch {
	case d.Type()&fs.ModeSymlink != 0:
		meta.Kind = sysimage.KindSymlink
		if target, err := os.Readlink(hostPath); err == nil {
			meta.Target = target
		}
	case d.IsDir():
		meta.Kind = sysimage.KindDir
	default:
		meta.Kind = sysimage.KindFile
	}
	if st, ok := info.Sys().(*syscall.Stat_t); ok {
		if name, ok := uids[int(st.Uid)]; ok {
			meta.Owner = name
		}
		if name, ok := gids[int(st.Gid)]; ok {
			meta.Group = name
		}
	}
	return meta
}

// collectPasswd parses an /etc/passwd file into the image's user table.
// A missing file is not an error (minimal trees).
func collectPasswd(img *sysimage.Image, path string, uidNames map[int]string) error {
	lines, err := readLines(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("collector: passwd: %w", err)
	}
	for _, line := range lines {
		f := strings.Split(line, ":")
		if len(f) < 7 {
			continue
		}
		uid, err1 := strconv.Atoi(f[2])
		gid, err2 := strconv.Atoi(f[3])
		if err1 != nil || err2 != nil {
			continue
		}
		img.Users[f[0]] = &sysimage.User{
			Name: f[0], UID: uid, GID: gid, Home: f[5], Shell: f[6],
			IsAdmin: uid == 0,
		}
		uidNames[uid] = f[0]
	}
	return nil
}

// collectGroup parses an /etc/group file into the image's group table.
func collectGroup(img *sysimage.Image, path string, gidNames map[int]string) error {
	lines, err := readLines(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("collector: group: %w", err)
	}
	for _, line := range lines {
		f := strings.Split(line, ":")
		if len(f) < 4 {
			continue
		}
		gid, err := strconv.Atoi(f[2])
		if err != nil {
			continue
		}
		g := &sysimage.Group{Name: f[0], GID: gid}
		if f[3] != "" {
			g.Members = strings.Split(f[3], ",")
		}
		img.Groups[f[0]] = g
		gidNames[gid] = f[0]
	}
	return nil
}

// collectServices parses an /etc/services file.
func collectServices(img *sysimage.Image, path string) error {
	lines, err := readLines(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("collector: services: %w", err)
	}
	for _, line := range lines {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		portProto := strings.SplitN(fields[1], "/", 2)
		if len(portProto) != 2 {
			continue
		}
		port, err := strconv.Atoi(portProto[0])
		if err != nil {
			continue
		}
		img.Services = append(img.Services, sysimage.Service{
			Name: fields[0], Port: port, Protocol: portProto[1],
		})
	}
	return nil
}

// collectOSRelease fills OS facts from /etc/os-release; absence is fine.
func collectOSRelease(img *sysimage.Image, path string) {
	lines, err := readLines(path)
	if err != nil {
		return
	}
	for _, line := range lines {
		key, value, ok := strings.Cut(line, "=")
		if !ok {
			continue
		}
		value = strings.Trim(value, `"`)
		switch key {
		case "ID":
			img.OS.DistName = value
		case "VERSION_ID":
			img.OS.Version = value
		}
	}
}

// readLines reads a small text file and returns its non-comment lines.
func readLines(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out, sc.Err()
}
