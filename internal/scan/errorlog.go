package scan

import "sync"

// DefaultMaxErrors is the ErrorLog retention cap used when none is given.
// At fleet scale an error storm (a corrupt mirror, a bad mount) can fail
// every image of a 100k walk; retaining the first thousand failures is
// enough to diagnose the storm while keeping aggregation memory constant.
const DefaultMaxErrors = 1000

// ErrorLog is a bounded, concurrency-safe collector of per-image scan
// failures. It retains the first Cap errors in arrival order and counts —
// but does not store — everything past the cap, so a fleet-wide error
// storm cannot grow the aggregation without bound. The zero value is
// usable and applies DefaultMaxErrors.
type ErrorLog struct {
	// Cap bounds retained errors; 0 means DefaultMaxErrors, negative
	// means retain nothing (count only).
	Cap int

	mu      sync.Mutex
	errs    []*ScanError
	dropped int64
}

// cap resolves the effective retention bound.
func (l *ErrorLog) capacity() int {
	switch {
	case l.Cap > 0:
		return l.Cap
	case l.Cap < 0:
		return 0
	default:
		return DefaultMaxErrors
	}
}

// Add records one failure. It returns true when the error was retained
// and false when it only advanced the overflow counter.
func (l *ErrorLog) Add(e *ScanError) bool {
	if e == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.errs) >= l.capacity() {
		l.dropped++
		return false
	}
	l.errs = append(l.errs, e)
	return true
}

// Errors returns the retained failures in arrival order. The slice is a
// copy; mutating it does not affect the log.
func (l *ErrorLog) Errors() []*ScanError {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]*ScanError(nil), l.errs...)
}

// Len reports how many failures are retained.
func (l *ErrorLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.errs)
}

// Dropped reports how many failures arrived past the cap — the overflow
// counter that keeps "N failed" totals honest when the retained list is
// truncated.
func (l *ErrorLog) Dropped() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Total reports every failure seen, retained or not.
func (l *ErrorLog) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int64(len(l.errs)) + l.dropped
}
