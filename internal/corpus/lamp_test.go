package corpus

import (
	"testing"

	"repro/internal/assemble"
	"repro/internal/confparse"
	"repro/internal/rules"
	"repro/internal/templates"
)

func TestLAMPTrainingCoherent(t *testing.T) {
	images, err := LAMPTraining(15, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(images) != 15 {
		t.Fatalf("images = %d", len(images))
	}
	for _, im := range images {
		for _, app := range []string{"apache", "mysql", "php"} {
			cf := im.ConfigFor(app)
			if cf == nil {
				t.Fatalf("%s: missing %s config", im.ID, app)
			}
			if _, err := confparse.Parse(app, cf.Path, cf.Content); err != nil {
				t.Fatalf("%s/%s: %v", im.ID, app, err)
			}
		}
		// Cross-component coherence: PHP points at MySQL's real socket.
		phpSock, ok1 := findConfValue(im, "php", "mysqli.default_socket")
		mySock, ok2 := findConfValue(im, "mysql", "socket")
		if !ok1 || !ok2 || phpSock != mySock {
			t.Fatalf("%s: socket mismatch %q vs %q", im.ID, phpSock, mySock)
		}
		// The session store belongs to the Apache account.
		user, _ := findConfValue(im, "apache", "User")
		sess, _ := findConfValue(im, "php", "session.save_path")
		if fm := im.Lookup(sess); fm == nil || fm.Owner != user {
			t.Fatalf("%s: session dir not owned by %s", im.ID, user)
		}
	}
}

func TestLAMPSharesOneOS(t *testing.T) {
	images, err := LAMPTraining(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, im := range images {
		if im.OS.DistName == "" {
			t.Fatal("OS missing")
		}
	}
}

func TestLAMPCrossComponentRulesLearned(t *testing.T) {
	images, err := LAMPTraining(40, 4)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := assemble.New().AssembleTraining(images)
	if err != nil {
		t.Fatal(err)
	}
	learned := rules.NewEngine().Infer(ds, ByID(images))
	cross := 0
	for _, r := range learned {
		if appPrefix(r.AttrA) != appPrefix(r.AttrB) && appPrefix(r.AttrA) != "" && appPrefix(r.AttrB) != "" {
			cross++
		}
	}
	if cross == 0 {
		for _, r := range learned {
			t.Logf("rule: %s", r)
		}
		t.Fatal("no cross-component rules learned from the LAMP corpus")
	}
	// The headline cross rule: the web tier's socket equals the DB's.
	found := false
	for _, r := range learned {
		for _, tr := range LAMPTrueRules() {
			if tr.Matches(r.Template, r.AttrA, r.AttrB) {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no ground-truth cross-component rule among the learned rules")
	}
}

func appPrefix(attr string) string {
	for i := 0; i < len(attr); i++ {
		if attr[i] == ':' {
			return attr[:i]
		}
	}
	return ""
}

func TestLAMPGroundTruthHolds(t *testing.T) {
	images, err := LAMPTraining(25, 6)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := assemble.New().AssembleTraining(images)
	if err != nil {
		t.Fatal(err)
	}
	byID := ByID(images)
	for _, tr := range LAMPTrueRules() {
		tpl := templates.ByID(tr.Template)
		if tpl == nil {
			t.Fatalf("unknown template %s", tr.Template)
		}
		present, holds := 0, 0
		for _, row := range ds.Rows {
			va, vb := row.Instances(tr.AttrA), row.Instances(tr.AttrB)
			if len(va) == 0 || len(vb) == 0 {
				continue
			}
			ok, app := tpl.Validate(va, vb, &templates.Ctx{Row: row, Image: byID[row.SystemID]})
			if !app {
				continue
			}
			present++
			if ok {
				holds++
			}
		}
		if present == 0 {
			t.Errorf("%s(%s,%s) never applicable", tr.Template, tr.AttrA, tr.AttrB)
			continue
		}
		if holds != present {
			t.Errorf("%s(%s,%s) holds on %d/%d", tr.Template, tr.AttrA, tr.AttrB, holds, present)
		}
	}
}

func TestBreakLAMPSocketDetectable(t *testing.T) {
	images, err := LAMPTraining(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	broken := BreakLAMPSocket(images[0])
	phpSock, _ := findConfValue(broken, "php", "mysqli.default_socket")
	mySock, _ := findConfValue(broken, "mysql", "socket")
	if phpSock == mySock {
		t.Fatal("socket not broken")
	}
	// The original image is untouched.
	origSock, _ := findConfValue(images[0], "php", "mysqli.default_socket")
	if origSock == phpSock {
		t.Fatal("original image mutated")
	}
}

func TestBreakLAMPSessionOwner(t *testing.T) {
	images, err := LAMPTraining(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	broken := BreakLAMPSessionOwner(images[0])
	dir, _ := findConfValue(broken, "php", "session.save_path")
	if fm := broken.Lookup(dir); fm == nil || fm.Owner != "root" {
		t.Fatal("session dir not chowned")
	}
	// Original untouched.
	if fm := images[0].Lookup(dir); fm == nil || fm.Owner == "root" {
		t.Fatal("original image mutated")
	}
}

func TestLAMPEntryTypesMerged(t *testing.T) {
	m := LAMPEntryTypes()
	for _, key := range []string{"apache:User", "mysql:mysqld/socket", "php:PHP/mysqli.default_socket"} {
		if _, ok := m[key]; !ok {
			t.Errorf("merged types missing %s", key)
		}
	}
}
