package telemetry

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Progress is a periodic progress reporter for long batch runs: a
// background ticker prints "done/total, findings, elapsed, eta" lines
// until Stop, which prints one final line. Workers call Step concurrently;
// all methods are safe on a nil reporter, so pipelines can thread one
// through unconditionally.
type Progress struct {
	w        io.Writer
	label    string
	total    int64
	start    time.Time
	done     atomic.Int64
	findings atomic.Int64
	quit     chan struct{}
	wg       sync.WaitGroup
	stop     sync.Once
}

// NewProgress starts a reporter writing to w every interval (<= 0 means
// every 2s). label prefixes every line ("scan"), total is the number of
// units expected.
func NewProgress(w io.Writer, label string, total int, interval time.Duration) *Progress {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	p := &Progress{
		w:     w,
		label: label,
		total: int64(total),
		start: time.Now(),
		quit:  make(chan struct{}),
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				p.report(false)
			case <-p.quit:
				return
			}
		}
	}()
	return p
}

// Done reports the number of finished units so far. Safe on a nil
// reporter.
func (p *Progress) Done() int64 {
	if p == nil {
		return 0
	}
	return p.done.Load()
}

// Total reports the expected unit count. Safe on a nil reporter.
func (p *Progress) Total() int64 {
	if p == nil {
		return 0
	}
	return p.total
}

// Findings reports the accumulated finding count. Safe on a nil reporter.
func (p *Progress) Findings() int64 {
	if p == nil {
		return 0
	}
	return p.findings.Load()
}

// Step records one finished unit and its finding count. Safe on a nil
// reporter and from any goroutine.
func (p *Progress) Step(findings int) {
	if p == nil {
		return
	}
	p.done.Add(1)
	p.findings.Add(int64(findings))
}

// Stop halts the ticker and prints the final line. Safe on a nil reporter
// and idempotent.
func (p *Progress) Stop() {
	if p == nil {
		return
	}
	p.stop.Do(func() {
		close(p.quit)
		p.wg.Wait()
		p.report(true)
	})
}

func (p *Progress) report(final bool) {
	done := p.done.Load()
	findings := p.findings.Load()
	elapsed := time.Since(p.start)
	line := fmt.Sprintf("%s: %d/%d images, %d findings, elapsed %s",
		p.label, done, p.total, findings, elapsed.Round(10*time.Millisecond))
	if !final && done > 0 && done < p.total {
		eta := time.Duration(float64(elapsed) / float64(done) * float64(p.total-done))
		line += fmt.Sprintf(", eta %s", eta.Round(10*time.Millisecond))
	}
	fmt.Fprintln(p.w, line)
}
