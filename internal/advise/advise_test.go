package advise

import (
	"strings"
	"testing"

	"repro/internal/assemble"
	"repro/internal/corpus"
	"repro/internal/detect"
	"repro/internal/rules"
)

func fixture(t *testing.T) (*Advisor, *detect.Detector) {
	t.Helper()
	images, err := corpus.Training("mysql", 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := assemble.New().AssembleTraining(images)
	if err != nil {
		t.Fatal(err)
	}
	learned := rules.NewEngine().Infer(ds, corpus.ByID(images))
	dt := detect.New(ds, learned)
	return New(dt.Training), dt
}

func TestAdviceForOwnershipViolation(t *testing.T) {
	adv, dt := fixture(t)
	target := corpus.RealWorldCases()[2].Build() // datadir wrong owner
	report, err := dt.Check(target)
	if err != nil {
		t.Fatal(err)
	}
	advice := adv.ForReport(report)
	if len(advice) == 0 {
		t.Fatal("no advice for a broken target")
	}
	found := false
	for _, a := range advice {
		if strings.Contains(a.Action, "chown") && strings.Contains(a.Action, "datadir") {
			found = true
			if a.Confidence != "high" {
				t.Errorf("ownership fix should be high confidence, got %s", a.Confidence)
			}
		}
	}
	if !found {
		t.Fatalf("no chown advice; got:\n%s", Render(advice))
	}
}

func TestAdviceForNameTypo(t *testing.T) {
	adv, _ := fixture(t)
	w := &detect.Warning{
		Kind:    detect.KindName,
		Attr:    "mysql:mysqld/datadi",
		Message: `entry "mysql:mysqld/datadi" was never seen in the training set (did you mean "mysql:mysqld/datadir"?)`,
	}
	a, ok := adv.ForWarning(w)
	if !ok {
		t.Fatal("no advice for a name typo")
	}
	if !strings.Contains(a.Action, "rename") || !strings.Contains(a.Action, "mysql:mysqld/datadir") {
		t.Fatalf("action = %q", a.Action)
	}
	if a.Confidence != "high" {
		t.Fatalf("confidence = %s", a.Confidence)
	}
	// Without a suggestion the advice degrades to verify/remove.
	w2 := &detect.Warning{Kind: detect.KindName, Attr: "x", Message: "entry never seen"}
	a2, ok := adv.ForWarning(w2)
	if !ok || !strings.Contains(a2.Action, "remove or verify") {
		t.Fatalf("fallback advice = %+v", a2)
	}
}

func TestAdviceForEveryRuleTemplate(t *testing.T) {
	adv, _ := fixture(t)
	templates := []string{"owner", "eq", "match-one", "size-lt", "num-lt", "concat", "user-group", "not-access", "subnet", "bool-implies", "unknown-template"}
	for _, tpl := range templates {
		w := &detect.Warning{
			Kind: detect.KindCorrelation,
			Attr: "a",
			Rule: &rules.Rule{Template: tpl, Spec: "[A] ? [B]", AttrA: "a", AttrB: "b"},
		}
		a, ok := adv.ForWarning(w)
		if !ok || a.Action == "" || a.Confidence == "" {
			t.Errorf("template %s: advice = %+v ok=%v", tpl, a, ok)
		}
	}
	// A correlation warning without a rule gets no advice.
	if _, ok := adv.ForWarning(&detect.Warning{Kind: detect.KindCorrelation}); ok {
		t.Error("correlation advice requires a rule")
	}
}

func TestAdviceForTypeViolation(t *testing.T) {
	adv, _ := fixture(t)
	w := &detect.Warning{
		Kind:    detect.KindType,
		Attr:    "mysql:mysqld/port",
		Value:   "not-a-port",
		Message: "value fails syntactic match for type PortNumber",
	}
	a, ok := adv.ForWarning(w)
	if !ok || !strings.Contains(a.Action, "rewrite") {
		t.Fatalf("syntactic advice = %+v", a)
	}
	// Constant training value gets quoted as the common value.
	if !strings.Contains(a.Action, `"3306"`) {
		t.Fatalf("expected common value hint: %q", a.Action)
	}
	w.Message = "value fails semantic verification for type FilePath"
	a, _ = adv.ForWarning(w)
	if !strings.Contains(a.Action, "missing object") {
		t.Fatalf("semantic advice = %q", a.Action)
	}
}

func TestAdviceForSuspiciousValue(t *testing.T) {
	adv, _ := fixture(t)
	// port is constant in training: the advice should say "restore".
	w := &detect.Warning{Kind: detect.KindSuspicious, Attr: "mysql:mysqld/port", Value: "3307"}
	a, ok := adv.ForWarning(w)
	if !ok || !strings.Contains(a.Action, "restore") || a.Confidence != "high" {
		t.Fatalf("constant-attr advice = %+v", a)
	}
	// datadir varies: advice lists alternatives.
	w = &detect.Warning{Kind: detect.KindSuspicious, Attr: "mysql:mysqld/datadir", Value: "/weird"}
	a, ok = adv.ForWarning(w)
	if !ok || !strings.Contains(a.Action, "one of") {
		t.Fatalf("varied-attr advice = %+v", a)
	}
	// Unknown attribute: no advice.
	w = &detect.Warning{Kind: detect.KindSuspicious, Attr: "ghost", Value: "x"}
	if _, ok := adv.ForWarning(w); ok {
		t.Fatal("ghost attr should yield no advice")
	}
}

func TestRender(t *testing.T) {
	out := Render([]Advice{
		{Action: "do a thing", Confidence: "high"},
		{Action: "consider another", Confidence: "medium"},
	})
	if !strings.Contains(out, " 1. [high confidence] do a thing") ||
		!strings.Contains(out, " 2. [medium confidence] consider another") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestUnknownKindNoAdvice(t *testing.T) {
	adv, _ := fixture(t)
	if _, ok := adv.ForWarning(&detect.Warning{Kind: detect.Kind("other")}); ok {
		t.Fatal("unknown kind should yield no advice")
	}
}
