package main

import "testing"

func TestRunSingleTables(t *testing.T) {
	// Fast tables only; the heavy ones are covered by internal/eval tests
	// and the benchmark harness.
	for _, table := range []int{1, 2} {
		if err := run(table, 1, 50_000); err != nil {
			t.Fatalf("table %d: %v", table, err)
		}
	}
}

func TestRunUnknownTableIsNoop(t *testing.T) {
	if err := run(99, 1, 1000); err != nil {
		t.Fatal(err)
	}
}

func TestRunExtensions(t *testing.T) {
	if err := runExtensions(1); err != nil {
		t.Fatal(err)
	}
}
