package fleet_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	encore "repro"
	"repro/internal/corpus"
	"repro/internal/detect"
	"repro/internal/fleet"
	"repro/internal/scan"
	"repro/internal/sysimage"
	"repro/internal/telemetry"
)

// testFleet learns knowledge from a small training corpus and writes a
// target directory of n images; corrupt file names are added on top.
func testFleet(t *testing.T, n int, corruptFiles ...string) (*encore.Framework, *encore.Knowledge, string) {
	t.Helper()
	training, err := corpus.Training("mysql", 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	fw := encore.New()
	k, err := fw.Learn(training)
	if err != nil {
		t.Fatal(err)
	}
	targets, err := corpus.Training("mysql", n, 77)
	if err != nil {
		t.Fatal(err)
	}
	for i, img := range targets {
		img.ID = fmt.Sprintf("target-%03d", i)
	}
	dir := t.TempDir()
	if err := sysimage.SaveDir(dir, targets); err != nil {
		t.Fatal(err)
	}
	for _, name := range corruptFiles {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{not json"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return fw, k, dir
}

// itemsEqual compares two scan items for byte-identical equivalence: same
// image identity, same rendered report, same error record.
func itemsEqual(t *testing.T, i int, got, want scan.Item) {
	t.Helper()
	if got.ImageID != want.ImageID {
		t.Fatalf("item %d: image = %q, want %q", i, got.ImageID, want.ImageID)
	}
	if (got.Err == nil) != (want.Err == nil) {
		t.Fatalf("item %d: err = %v, want %v", i, got.Err, want.Err)
	}
	if got.Err != nil {
		if got.Err.Error() != want.Err.Error() || got.Err.Path != want.Err.Path {
			t.Fatalf("item %d: err = %v (path %q), want %v (path %q)",
				i, got.Err, got.Err.Path, want.Err, want.Err.Path)
		}
		return
	}
	gj, err := got.Report.RenderJSON()
	if err != nil {
		t.Fatal(err)
	}
	wj, err := want.Report.RenderJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gj, wj) {
		t.Fatalf("item %d: report mismatch:\n%s\nwant:\n%s", i, gj, wj)
	}
}

// TestFleetMatchesUnsharded is the determinism property test: across
// shard/worker/queue/budget configurations — including degenerate ones
// that force heavy stealing or heavy budget contention — the coordinator's
// index-aggregated output is item-for-item identical to the unsharded
// engine's. Run under -race this also exercises the deque and budget
// synchronization.
func TestFleetMatchesUnsharded(t *testing.T) {
	fw, k, dir := testFleet(t, 14, "0corrupt.json", "mcorrupt.json")
	eng := fw.ScanEngine(k)
	want, err := eng.ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}

	configs := []fleet.Options{
		{},                                       // defaults
		{Shards: 1, Workers: 1},                  // fully serial
		{Shards: 3, Workers: 7},                  // uneven split
		{Shards: 16, Workers: 16},                // more shards than fits evenly
		{Shards: 4, Workers: 8, QueueDepth: 1},   // constant stealing pressure
		{Shards: 2, Workers: 6, MemoryBudget: 1}, // budget admits one image at a time
		{Shards: 5, Workers: 2},                  // fewer workers than shards (raised)
	}
	for ci, opts := range configs {
		opts.Check = eng.Check
		src, err := fleet.NewDirSource(dir)
		if err != nil {
			t.Fatal(err)
		}
		if src.Len() != len(want.Items) {
			t.Fatalf("config %d: source len = %d, want %d", ci, src.Len(), len(want.Items))
		}
		coord := &fleet.Coordinator{Opts: opts}
		got, stats, err := coord.Collect(context.Background(), src)
		if err != nil {
			t.Fatalf("config %d: %v", ci, err)
		}
		if len(got.Items) != len(want.Items) {
			t.Fatalf("config %d: items = %d, want %d", ci, len(got.Items), len(want.Items))
		}
		for i := range want.Items {
			itemsEqual(t, i, got.Items[i], want.Items[i])
		}
		if stats.Images != int64(len(want.Items)) {
			t.Fatalf("config %d: stats.Images = %d, want %d", ci, stats.Images, len(want.Items))
		}
		if stats.Errors != 2 {
			t.Fatalf("config %d: stats.Errors = %d, want 2", ci, stats.Errors)
		}
	}
}

// sleepSource is a synthetic fleet whose per-index check cost is dictated
// by the test — the lever for skewing shard load.
type sleepSource struct {
	n int
}

func (s *sleepSource) Len() int          { return s.n }
func (s *sleepSource) Name(i int) string { return fmt.Sprintf("sleep-%04d", i) }
func (s *sleepSource) Size(i int) int64  { return 0 }
func (s *sleepSource) Load(i int) (*sysimage.Image, error) {
	return &sysimage.Image{ID: fmt.Sprintf("sleep-%04d", i)}, nil
}

// TestFleetWorkStealing pins the fairness property: with two shards where
// shard 0's range holds ~95% of the work, shard 1's worker must finish its
// slice and steal from shard 0 rather than idle. Every index is still
// delivered exactly once.
func TestFleetWorkStealing(t *testing.T) {
	const n = 80
	src := &sleepSource{n: n}
	var mu sync.Mutex
	seen := map[int]int{}
	coord := &fleet.Coordinator{Opts: fleet.Options{
		Check: func(img *sysimage.Image) (*detect.Report, error) {
			var idx int
			fmt.Sscanf(img.ID, "sleep-%04d", &idx)
			if idx < n/2 {
				time.Sleep(2 * time.Millisecond) // shard 0's range: the heavy 95%
			}
			return &detect.Report{SystemID: img.ID}, nil
		},
		Shards:  2,
		Workers: 2,
	}}
	stats, err := coord.Run(context.Background(), src, func(idx int, it scan.Item) {
		mu.Lock()
		seen[idx]++
		mu.Unlock()
		if it.Err != nil {
			t.Errorf("index %d failed: %v", idx, it.Err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("delivered %d distinct indices, want %d", len(seen), n)
	}
	for idx, c := range seen {
		if c != 1 {
			t.Fatalf("index %d delivered %d times", idx, c)
		}
	}
	if stats.Steals == 0 {
		t.Fatal("skewed fleet produced zero steals; shard 1's worker idled instead of helping")
	}
	t.Logf("steals = %d of %d tasks", stats.Steals, n)
}

// TestFleetCancelStopsPromptlyWithoutLeaks is the goroutine-leak
// regression: canceling mid-walk must stop discovery, workers, and
// thieves promptly and join every goroutine the coordinator started.
func TestFleetCancelStopsPromptlyWithoutLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	const n = 10_000
	src := &sleepSource{n: n}
	ctx, cancel := context.WithCancel(context.Background())
	var processed int64
	var mu sync.Mutex
	coord := &fleet.Coordinator{Opts: fleet.Options{
		Check: func(img *sysimage.Image) (*detect.Report, error) {
			time.Sleep(200 * time.Microsecond)
			return &detect.Report{SystemID: img.ID}, nil
		},
		Shards:     4,
		Workers:    8,
		QueueDepth: 2, // keep discovery blocked on backpressure when canceled
	}}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := coord.Run(ctx, src, func(idx int, it scan.Item) {
			mu.Lock()
			processed++
			if processed == 20 {
				cancel()
			}
			mu.Unlock()
		})
		if err != context.Canceled {
			t.Errorf("Run error = %v, want context.Canceled", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator did not stop within 10s of cancellation")
	}
	cancel()
	mu.Lock()
	got := processed
	mu.Unlock()
	if got >= n {
		t.Fatalf("processed the whole fleet (%d) despite cancellation", got)
	}
	// Goroutine count settles back; poll briefly to absorb runtime noise.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			sz := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: before=%d now=%d\n%s",
				before, runtime.NumGoroutine(), buf[:sz])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// sizedSource reports a fixed Size per task so budget arithmetic is exact.
type sizedSource struct {
	n    int
	size int64
}

func (s *sizedSource) Len() int          { return s.n }
func (s *sizedSource) Name(i int) string { return fmt.Sprintf("sized-%04d", i) }
func (s *sizedSource) Size(i int) int64  { return s.size }
func (s *sizedSource) Load(i int) (*sysimage.Image, error) {
	return &sysimage.Image{ID: fmt.Sprintf("sized-%04d", i)}, nil
}

// TestFleetMemoryBudgetInvariant pins the budget's hard guarantee: the
// in-flight reservation high-water mark never exceeds the configured
// budget, no matter how many workers contend for it.
func TestFleetMemoryBudgetInvariant(t *testing.T) {
	const budget = 4 << 20
	src := &sizedSource{n: 200, size: 1 << 20}
	coord := &fleet.Coordinator{Opts: fleet.Options{
		Check: func(img *sysimage.Image) (*detect.Report, error) {
			return &detect.Report{SystemID: img.ID}, nil
		},
		Shards:       4,
		Workers:      16,
		MemoryBudget: budget,
	}}
	stats, err := coord.Run(context.Background(), src, func(int, scan.Item) {})
	if err != nil {
		t.Fatal(err)
	}
	if stats.HighWaterBytes == 0 {
		t.Fatal("high-water mark never recorded")
	}
	if stats.HighWaterBytes > budget {
		t.Fatalf("high water %d exceeds budget %d", stats.HighWaterBytes, budget)
	}
}

// TestFleetOversizedImageAdmitted pins the no-deadlock rule: a single
// image larger than the whole budget is clamped and admitted alone.
func TestFleetOversizedImageAdmitted(t *testing.T) {
	src := &sizedSource{n: 3, size: 8 << 20}
	coord := &fleet.Coordinator{Opts: fleet.Options{
		Check: func(img *sysimage.Image) (*detect.Report, error) {
			return &detect.Report{SystemID: img.ID}, nil
		},
		MemoryBudget: 1 << 20,
	}}
	stats, err := coord.Run(context.Background(), src, func(int, scan.Item) {})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Images != 3 {
		t.Fatalf("images = %d, want 3", stats.Images)
	}
	if stats.HighWaterBytes > 1<<20 {
		t.Fatalf("high water %d exceeds clamped budget", stats.HighWaterBytes)
	}
}

// TestFleetConstantMemory is the constant-memory pin: growing a synthetic
// fleet 10× (1k → 10k images) must not grow peak heap, because only the
// bounded deques and in-flight images are ever resident. Peak heap is
// observed through the runtime sampler, the same instrument the CLI's
// -serve mode exposes.
func TestFleetConstantMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet-scale walk; skipped in -short")
	}
	variants, err := corpus.Training("mysql", 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	check := func(img *sysimage.Image) (*detect.Report, error) {
		return &detect.Report{SystemID: img.ID}, nil
	}
	peak := func(n int) uint64 {
		src, err := fleet.NewSyntheticSource(variants, n)
		if err != nil {
			t.Fatal(err)
		}
		runtime.GC()
		s := telemetry.NewSampler(2*time.Millisecond, 1<<14)
		s.Start()
		coord := &fleet.Coordinator{Opts: fleet.Options{Check: check, Shards: 4, Workers: 8}}
		stats, err := coord.Run(context.Background(), src, func(int, scan.Item) {})
		s.Stop()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Images != int64(n) {
			t.Fatalf("images = %d, want %d", stats.Images, n)
		}
		var max uint64
		for _, sm := range s.Samples() {
			if sm.HeapBytes > max {
				max = sm.HeapBytes
			}
		}
		if max == 0 {
			// Tiny runs can finish between samples; fall back to a direct
			// reading so the ratio below still has a denominator.
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			max = ms.HeapAlloc
		}
		return max
	}
	p1k := peak(1_000)
	p10k := peak(10_000)
	t.Logf("peak heap: 1k=%d bytes, 10k=%d bytes", p1k, p10k)
	// 2× + slack absorbs GC timing noise while still failing hard on O(n)
	// growth (10× the images would blow straight past it).
	if limit := 2*p1k + 16<<20; p10k > limit {
		t.Fatalf("peak heap grew with fleet size: 1k=%d, 10k=%d (limit %d)", p1k, p10k, limit)
	}
}

// TestFleetTelemetryFamilies checks the encore_fleet_* families are
// recorded and rendered on the Prometheus exposition.
func TestFleetTelemetryFamilies(t *testing.T) {
	rec := telemetry.New()
	src := &sleepSource{n: 30}
	coord := &fleet.Coordinator{Opts: fleet.Options{
		Check: func(img *sysimage.Image) (*detect.Report, error) {
			time.Sleep(100 * time.Microsecond)
			return &detect.Report{SystemID: img.ID}, nil
		},
		Shards:    2,
		Workers:   2,
		Telemetry: rec,
	}}
	if _, err := coord.Run(context.Background(), src, func(int, scan.Item) {}); err != nil {
		t.Fatal(err)
	}
	if got := rec.LabeledCounter(fleet.MetricImages, ""); got != 30 {
		t.Fatalf("%s = %d, want 30", fleet.MetricImages, got)
	}
	if got := rec.LabeledCounter(fleet.MetricBatches, ""); got != 1 {
		t.Fatalf("%s = %d, want 1", fleet.MetricBatches, got)
	}
	prom := string(rec.Snapshot().PromText())
	for _, family := range []string{
		fleet.MetricImages, fleet.MetricBatches, fleet.MetricShards,
		fleet.MetricInflightBytes, fleet.MetricHighWaterBytes,
	} {
		if !bytes.Contains([]byte(prom), []byte(family)) {
			t.Fatalf("/metrics missing %s:\n%s", family, prom)
		}
	}
}

// TestSourceShapes covers the source adapters' naming and sizing
// contracts the coordinator depends on.
func TestSourceShapes(t *testing.T) {
	imgs, err := corpus.Training("mysql", 2, 5)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if err := sysimage.SaveDir(dir, imgs); err != nil {
		t.Fatal(err)
	}
	ds, err := fleet.NewDirSource(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 2 {
		t.Fatalf("dir len = %d, want 2", ds.Len())
	}
	if got := ds.Name(0); filepath.Dir(got) != dir {
		t.Fatalf("dir name %q not under %q", got, dir)
	}
	if ds.Size(0) <= 0 {
		t.Fatal("dir size should be the positive file size")
	}
	if _, err := ds.Load(0); err != nil {
		t.Fatal(err)
	}

	syn, err := fleet.NewSyntheticSource(imgs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if syn.Len() != 5 {
		t.Fatalf("synthetic len = %d, want 5", syn.Len())
	}
	im3, err := syn.Load(3)
	if err != nil {
		t.Fatal(err)
	}
	if im3.ID != "synthetic-0000003" {
		t.Fatalf("synthetic ID = %q", im3.ID)
	}
	if syn.Size(3) != syn.Size(1) {
		t.Fatal("synthetic variants should cycle sizes")
	}

	blob, _ := imgs[0].MarshalJSONIndent()
	bs := &fleet.BlobSource{Blobs: [][]byte{blob}, BaseName: "body"}
	if bs.Name(0) != "body[0]" {
		t.Fatalf("blob name = %q", bs.Name(0))
	}
	if _, err := bs.Load(0); err != nil {
		t.Fatal(err)
	}

	is := &fleet.ImageSource{Images: imgs}
	if is.Size(0) != 0 {
		t.Fatal("resident images must bypass the budget")
	}
	if is.Name(0) != imgs[0].ID {
		t.Fatalf("image name = %q, want %q", is.Name(0), imgs[0].ID)
	}
}
