package alert

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/detect"
	"repro/internal/telemetry"
)

// memNotifier records delivered alerts; gate (when set) blocks every
// delivery until released, and fail makes every delivery error.
type memNotifier struct {
	name string
	gate chan struct{}
	fail bool

	mu    sync.Mutex
	seen  []Alert
	calls int
}

func (m *memNotifier) Name() string { return m.name }

func (m *memNotifier) Notify(a *Alert) error {
	if m.gate != nil {
		<-m.gate
	}
	m.mu.Lock()
	m.calls++
	m.seen = append(m.seen, *a)
	m.mu.Unlock()
	if m.fail {
		return fmt.Errorf("synthetic failure")
	}
	return nil
}

func (m *memNotifier) delivered() []Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Alert(nil), m.seen...)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func testAlert(app, attr string, score float64) Alert {
	return Alert{
		App: app, ImageID: app + "-img-1", Family: string(detect.KindCorrelation),
		Attr: attr, Severity: SeverityForScore(score), Score: score,
		Message: "test warning on " + attr, RequestID: "req-1", PlanVersion: "v1",
	}
}

func shutdownPipeline(t *testing.T, p *Pipeline) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := p.Shutdown(ctx); err != nil {
		t.Fatalf("pipeline shutdown: %v", err)
	}
}

func TestSeverityForScore(t *testing.T) {
	cases := []struct {
		score float64
		want  Severity
	}{
		{90, SeverityHigh}, {70, SeverityHigh}, {69.9, SeverityMedium},
		{40, SeverityMedium}, {39.9, SeverityLow}, {0, SeverityLow},
	}
	for _, c := range cases {
		if got := SeverityForScore(c.score); got != c.want {
			t.Errorf("SeverityForScore(%v) = %s, want %s", c.score, got, c.want)
		}
	}
}

func TestFromWarningCarriesProvenance(t *testing.T) {
	w := &detect.Warning{
		Kind: detect.KindType, Attr: "mysql:port", Value: "banana",
		Message: "type mismatch", Score: 85,
	}
	a := FromWarning(w, "mysql", "img-9", "req-42", "v3")
	if a.App != "mysql" || a.ImageID != "img-9" || a.RequestID != "req-42" || a.PlanVersion != "v3" {
		t.Fatalf("provenance not carried: %+v", a)
	}
	if a.Family != "data-type" || a.Severity != SeverityHigh || a.Value != "banana" {
		t.Fatalf("warning fields not carried: %+v", a)
	}
}

// TestPipelineDeliversAndRecords: the happy path end to end — queued,
// delivered, counted, and retained in the ring with provenance.
func TestPipelineDeliversAndRecords(t *testing.T) {
	rec := telemetry.New()
	mem := &memNotifier{name: "mem"}
	p, err := NewPipeline(Options{Rec: rec, Notifiers: []Notifier{mem}})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Publish(testAlert("mysql", "mysql:port", 85)) {
		t.Fatal("publish rejected")
	}
	if !p.Publish(testAlert("mysql", "mysql:datadir", 45)) {
		t.Fatal("publish rejected")
	}
	shutdownPipeline(t, p)

	got := mem.delivered()
	if len(got) != 2 {
		t.Fatalf("delivered %d alerts, want 2", len(got))
	}
	if got[0].RequestID != "req-1" || got[0].PlanVersion != "v1" {
		t.Fatalf("delivered alert lost provenance: %+v", got[0])
	}
	if n := rec.LabeledCounter(MetricAlertsTotal,
		telemetry.L("notifier", "mem", "severity", "high", "outcome", "ok")); n != 1 {
		t.Fatalf("alerts_total{high,ok} = %d, want 1", n)
	}
	if n := rec.LabeledCounter(MetricAlertsTotal,
		telemetry.L("notifier", "mem", "severity", "medium", "outcome", "ok")); n != 1 {
		t.Fatalf("alerts_total{medium,ok} = %d, want 1", n)
	}
	if _, ok := rec.LabeledHistogram(MetricDeliverySeconds, telemetry.L("notifier", "mem")); !ok {
		t.Fatal("delivery latency histogram not recorded")
	}

	recent := p.Recent(0)
	if len(recent) != 2 {
		t.Fatalf("ring holds %d records, want 2", len(recent))
	}
	// Newest first.
	if recent[0].Attr != "mysql:datadir" || recent[0].Seq != 2 {
		t.Fatalf("ring order wrong: %+v", recent[0])
	}
	if len(recent[0].Deliveries) != 1 || recent[0].Deliveries[0].Outcome != OutcomeOK {
		t.Fatalf("ring delivery record wrong: %+v", recent[0].Deliveries)
	}
	if st := p.Stats(); st.Published != 2 || st.Delivered != 2 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestRingBounded: the ring retains only the newest RingSize records.
func TestRingBounded(t *testing.T) {
	pol := DefaultPolicy()
	pol.RingSize = 3
	mem := &memNotifier{name: "mem"}
	p, err := NewPipeline(Options{Policy: pol, Notifiers: []Notifier{mem}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		p.Publish(testAlert("mysql", fmt.Sprintf("mysql:a%d", i), 80))
	}
	shutdownPipeline(t, p)
	recent := p.Recent(0)
	if len(recent) != 3 {
		t.Fatalf("ring holds %d, want 3", len(recent))
	}
	if recent[0].Seq != 10 || recent[2].Seq != 8 {
		t.Fatalf("ring kept wrong records: seqs %d..%d", recent[0].Seq, recent[2].Seq)
	}
	if got := p.Recent(2); len(got) != 2 || got[0].Seq != 10 {
		t.Fatalf("Recent(2) = %d records, first seq %d", len(got), got[0].Seq)
	}
}

// TestPolicySeverityFloor: alerts below the floor are suppressed at
// publish time with reason="policy".
func TestPolicySeverityFloor(t *testing.T) {
	pol := DefaultPolicy()
	pol.MinSeverity = SeverityMedium
	rec := telemetry.New()
	mem := &memNotifier{name: "mem"}
	p, err := NewPipeline(Options{Policy: pol, Rec: rec, Notifiers: []Notifier{mem}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Publish(testAlert("mysql", "mysql:low", 10)) {
		t.Fatal("low-severity alert should have been suppressed")
	}
	if !p.Publish(testAlert("mysql", "mysql:med", 50)) {
		t.Fatal("medium-severity alert should pass")
	}
	shutdownPipeline(t, p)
	if got := mem.delivered(); len(got) != 1 || got[0].Attr != "mysql:med" {
		t.Fatalf("delivered = %+v, want only mysql:med", got)
	}
	if n := rec.LabeledCounter(MetricAlertsSuppressed, telemetry.L("reason", "policy")); n != 1 {
		t.Fatalf("suppressed{policy} = %d, want 1", n)
	}
}

// TestFamilyRouting: a family rule routes to its named notifiers only;
// disabled families and unmatched families (with rules present) are
// suppressed.
func TestFamilyRouting(t *testing.T) {
	pol := DefaultPolicy()
	pol.Rules = []Rule{
		{Family: "correlation", Enabled: true, Notify: []string{"a"}},
		{Family: "data-type", Enabled: false},
	}
	a := &memNotifier{name: "a"}
	b := &memNotifier{name: "b"}
	p, err := NewPipeline(Options{Policy: pol, Notifiers: []Notifier{a, b}})
	if err != nil {
		t.Fatal(err)
	}
	corr := testAlert("mysql", "mysql:port", 80) // family correlation
	if !p.Publish(corr) {
		t.Fatal("correlation alert should route")
	}
	typ := corr
	typ.Family = "data-type"
	if p.Publish(typ) {
		t.Fatal("disabled family should be suppressed")
	}
	name := corr
	name.Family = "entry-name"
	if p.Publish(name) {
		t.Fatal("unmatched family with rules present should be suppressed")
	}
	shutdownPipeline(t, p)
	if len(a.delivered()) != 1 || len(b.delivered()) != 0 {
		t.Fatalf("routing wrong: a=%d b=%d", len(a.delivered()), len(b.delivered()))
	}
}

// TestRouteUnknownNotifierRejected: construction fails when a rule names
// a notifier that does not exist in the injected set.
func TestRouteUnknownNotifierRejected(t *testing.T) {
	pol := DefaultPolicy()
	pol.Rules = []Rule{{Family: "*", Enabled: true, Notify: []string{"ghost"}}}
	_, err := NewPipeline(Options{Policy: pol, Notifiers: []Notifier{&memNotifier{name: "mem"}}})
	if err == nil {
		t.Fatal("pipeline accepted a route to an unknown notifier")
	}
}

// TestDedupSuppression: repeats of (app, attr, family) within the window
// are suppressed and counted; a different key, or the same key after the
// window, delivers.
func TestDedupSuppression(t *testing.T) {
	pol := DefaultPolicy()
	pol.DedupWindow = 10 * time.Minute
	rec := telemetry.New()
	mem := &memNotifier{name: "mem"}
	var mu sync.Mutex
	now := time.Unix(1700000000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	p, err := NewPipeline(Options{Policy: pol, Rec: rec, Notifiers: []Notifier{mem}, Now: clock})
	if err != nil {
		t.Fatal(err)
	}
	p.Publish(testAlert("mysql", "mysql:port", 80))
	p.Publish(testAlert("mysql", "mysql:port", 80)) // repeat: suppressed
	p.Publish(testAlert("mysql", "mysql:other", 80))
	p.Publish(testAlert("apache", "mysql:port", 80)) // different app: delivers
	waitFor(t, "first round processed", func() bool { return len(mem.delivered()) >= 3 })

	mu.Lock()
	now = now.Add(11 * time.Minute)
	mu.Unlock()
	p.Publish(testAlert("mysql", "mysql:port", 80)) // window passed: delivers
	shutdownPipeline(t, p)

	if got := mem.delivered(); len(got) != 4 {
		t.Fatalf("delivered %d, want 4", len(got))
	}
	if n := rec.LabeledCounter(MetricAlertsSuppressed, telemetry.L("reason", "dedup")); n != 1 {
		t.Fatalf("suppressed{dedup} = %d, want 1", n)
	}
	if st := p.Stats(); st.Suppressed != 1 {
		t.Fatalf("stats.Suppressed = %d, want 1", st.Suppressed)
	}
}

// TestRateLimit: past the per-minute budget alerts are suppressed with
// reason="rate"; elapsed time refills the bucket.
func TestRateLimit(t *testing.T) {
	pol := DefaultPolicy()
	pol.RateLimit = 2
	rec := telemetry.New()
	mem := &memNotifier{name: "mem"}
	var mu sync.Mutex
	now := time.Unix(1700000000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	p, err := NewPipeline(Options{Policy: pol, Rec: rec, Notifiers: []Notifier{mem}, Now: clock})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		p.Publish(testAlert("mysql", fmt.Sprintf("mysql:a%d", i), 80))
	}
	waitFor(t, "burst processed", func() bool {
		return rec.LabeledCounter(MetricAlertsSuppressed, telemetry.L("reason", "rate")) == 3
	})
	if got := mem.delivered(); len(got) != 2 {
		t.Fatalf("delivered %d during burst, want 2", len(got))
	}

	mu.Lock()
	now = now.Add(time.Minute) // refills both tokens
	mu.Unlock()
	p.Publish(testAlert("mysql", "mysql:refilled", 80))
	shutdownPipeline(t, p)
	if got := mem.delivered(); len(got) != 3 {
		t.Fatalf("delivered %d after refill, want 3", len(got))
	}
}

// TestQueueOverflowDoesNotBlock is the backpressure contract: with the
// dispatcher wedged on a slow notifier and the queue full, Publish must
// return immediately (false) and count the drop — the scan hot path
// never waits on alerting.
func TestQueueOverflowDoesNotBlock(t *testing.T) {
	pol := DefaultPolicy()
	pol.QueueSize = 4
	rec := telemetry.New()
	gate := make(chan struct{})
	mem := &memNotifier{name: "mem", gate: gate}
	p, err := NewPipeline(Options{Policy: pol, Rec: rec, Notifiers: []Notifier{mem}})
	if err != nil {
		t.Fatal(err)
	}
	// One alert wedges in the dispatcher, four fill the queue. Publish
	// naturally races the dispatcher's pickup of the first alert, so
	// publish until the queue reports full (drop observed) rather than a
	// fixed count.
	storm := 0
	waitFor(t, "queue to fill", func() bool {
		storm++
		return !p.Publish(testAlert("mysql", fmt.Sprintf("mysql:a%d", storm), 80))
	})

	// The queue is now provably full; every further publish must return
	// false immediately.
	start := time.Now()
	for i := 0; i < 100; i++ {
		if p.Publish(testAlert("mysql", fmt.Sprintf("mysql:b%d", i), 80)) {
			t.Fatal("publish succeeded against a full queue")
		}
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("publishes against a full queue took %v — the path blocked", elapsed)
	}
	if n := rec.LabeledCounter(MetricAlertsDropped, ""); n != p.Stats().Dropped || n < 100 {
		t.Fatalf("dropped counter = %d (stats %d), want >= 100 and consistent", n, p.Stats().Dropped)
	}
	// The depth gauge is written by both publishers and the dispatcher,
	// so mid-storm its exact value races; it must exist and be within
	// the queue bound (the deterministic zero-after-drain case is pinned
	// by TestShutdownDrainsQueue).
	if depth, ok := rec.Gauge(MetricQueueDepth, ""); !ok || depth < 0 || depth > float64(pol.QueueSize) {
		t.Fatalf("queue depth gauge = %v, %v; want within [0,%d]", depth, ok, pol.QueueSize)
	}

	close(gate) // unwedge; shutdown must drain everything queued
	shutdownPipeline(t, p)
	if got, want := int64(len(mem.delivered())), p.Stats().Published; got != want {
		t.Fatalf("delivered %d of %d queued alerts after drain", got, want)
	}
}

// TestShutdownDrainsQueue: alerts queued before Shutdown are all
// delivered before it returns, and the depth gauge lands on zero.
func TestShutdownDrainsQueue(t *testing.T) {
	rec := telemetry.New()
	mem := &memNotifier{name: "mem"}
	p, err := NewPipeline(Options{Rec: rec, Notifiers: []Notifier{mem}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if !p.Publish(testAlert("mysql", fmt.Sprintf("mysql:a%d", i), 80)) {
			t.Fatalf("publish %d rejected", i)
		}
	}
	shutdownPipeline(t, p)
	if got := mem.delivered(); len(got) != 50 {
		t.Fatalf("drain delivered %d of 50", len(got))
	}
	if depth, _ := rec.Gauge(MetricQueueDepth, ""); depth != 0 {
		t.Fatalf("queue depth after drain = %v, want 0", depth)
	}
}

// TestPublishAfterShutdown: a late publish is rejected, not a panic on a
// closed channel.
func TestPublishAfterShutdown(t *testing.T) {
	p, err := NewPipeline(Options{Notifiers: []Notifier{&memNotifier{name: "mem"}}})
	if err != nil {
		t.Fatal(err)
	}
	shutdownPipeline(t, p)
	if p.Publish(testAlert("mysql", "mysql:late", 80)) {
		t.Fatal("publish accepted after shutdown")
	}
	shutdownPipeline(t, p) // idempotent
}

// TestNilPipelineSafe: a nil pipeline (alerting disabled) is a no-op on
// every method.
func TestNilPipelineSafe(t *testing.T) {
	var p *Pipeline
	if p.Publish(testAlert("mysql", "mysql:x", 80)) {
		t.Fatal("nil pipeline accepted an alert")
	}
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := p.Recent(5); got != nil {
		t.Fatal("nil pipeline returned records")
	}
	if st := p.Stats(); st != (Stats{}) {
		t.Fatal("nil pipeline returned stats")
	}
}

// TestPipelineNoGoroutineLeak: the dispatcher goroutine must be gone
// after Shutdown (same pin as serve.Close).
func TestPipelineNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		mem := &memNotifier{name: "mem"}
		p, err := NewPipeline(Options{Rec: telemetry.New(), Notifiers: []Notifier{mem}})
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 20; j++ {
			p.Publish(testAlert("mysql", fmt.Sprintf("mysql:a%d", j), 80))
		}
		shutdownPipeline(t, p)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: before=%d after=%d\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestConcurrentPublish: many publishers against one dispatcher under
// the race detector; every accepted alert is accounted for.
func TestConcurrentPublish(t *testing.T) {
	mem := &memNotifier{name: "mem"}
	pol := DefaultPolicy()
	pol.QueueSize = 64
	p, err := NewPipeline(Options{Policy: pol, Notifiers: []Notifier{mem}})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				p.Publish(testAlert("mysql", fmt.Sprintf("mysql:g%d-a%d", g, i), 80))
			}
		}(g)
	}
	wg.Wait()
	shutdownPipeline(t, p)
	st := p.Stats()
	if int64(len(mem.delivered())) != st.Published {
		t.Fatalf("delivered %d != published %d", len(mem.delivered()), st.Published)
	}
	if st.Published+st.Dropped != 400 {
		t.Fatalf("published %d + dropped %d != 400", st.Published, st.Dropped)
	}
}
