package encore

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/sysimage"
)

// Allocation ceilings for the per-image hot path. Measured steady-state
// costs are ~64 allocs for Plan.Check (mysql corpus image) and ~193 for
// LoadJSON of a ~5KB snapshot; the ceilings leave roughly 2x headroom for
// legitimate growth while still catching a re-bloat of the scan path (the
// legacy per-image Check ran at ~700 allocs).
const (
	maxPlanCheckAllocs = 150
	maxLoadJSONAllocs  = 400
	// Binary plan decode of a learned 30-image mysql plan sits around ~260
	// allocations once the string interner is warm (one per histogram slice
	// and rule, plus the spec scaffolding); 600 leaves ~2x headroom while
	// still catching a per-string or per-varint alloc regression that would
	// erode the cold-start win.
	maxPlanDecodeAllocs = 600
)

// TestPlanCheckAllocCeiling pins the steady-state allocation count of one
// compiled-plan check so future changes cannot silently reintroduce
// per-image churn (histograms, datasets, per-call name strings).
func TestPlanCheckAllocCeiling(t *testing.T) {
	training, err := corpus.Training("mysql", 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	fw := New()
	k, err := fw.Learn(training)
	if err != nil {
		t.Fatal(err)
	}
	plan := fw.CompilePlan(k)
	targets, err := corpus.Training("mysql", 4, 1009)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the scratch pool and the target-name interner.
	for _, img := range targets {
		if _, err := plan.Check(img); err != nil {
			t.Fatal(err)
		}
	}
	img := targets[0]
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := plan.Check(img); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > maxPlanCheckAllocs {
		t.Errorf("Plan.Check allocated %.1f objects per image; ceiling is %d", allocs, maxPlanCheckAllocs)
	}
}

// TestLoadJSONAllocCeiling pins the decode cost of one image snapshot.
func TestLoadJSONAllocCeiling(t *testing.T) {
	images, err := corpus.Training("mysql", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	data, err := images[0].MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sysimage.LoadJSON(data); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := sysimage.LoadJSON(data); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > maxLoadJSONAllocs {
		t.Errorf("LoadJSON allocated %.1f objects for a %d-byte image; ceiling is %d",
			allocs, len(data), maxLoadJSONAllocs)
	}
}

// TestPlanDecodeAllocCeiling pins the allocation count of decoding a
// compiled binary plan — the millisecond cold-start path. The ceiling is
// what keeps `scan -plan` startup from quietly regressing toward the
// JSON-profile cost it replaces.
func TestPlanDecodeAllocCeiling(t *testing.T) {
	training, err := corpus.Training("mysql", 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	fw := New()
	k, err := fw.Learn(training)
	if err != nil {
		t.Fatal(err)
	}
	data := fw.MarshalPlan(fw.CompilePlan(k))
	// Warm the string interner with the plan's vocabulary.
	if _, err := fw.LoadPlan(data); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := fw.LoadPlan(data); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > maxPlanDecodeAllocs {
		t.Errorf("LoadPlan allocated %.1f objects for a %d-byte plan; ceiling is %d",
			allocs, len(data), maxPlanDecodeAllocs)
	}
}
