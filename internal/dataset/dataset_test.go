package dataset

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/conftypes"
)

func sample() *Dataset {
	d := New()
	d.DeclareAttr("mysqld/datadir", conftypes.TypeFilePath, false)
	d.DeclareAttr("mysqld/user", conftypes.TypeUserName, false)
	d.DeclareAttr("mysqld/datadir.owner", conftypes.TypeUserName, true)
	r1 := d.NewRow("img-1")
	d.Add(r1, "mysqld/datadir", "/var/lib/mysql")
	d.Add(r1, "mysqld/user", "mysql")
	d.Add(r1, "mysqld/datadir.owner", "mysql")
	r2 := d.NewRow("img-2")
	d.Add(r2, "mysqld/datadir", "/data/mysql")
	d.Add(r2, "mysqld/user", "mysql")
	d.Add(r2, "mysqld/datadir.owner", "mysql")
	r3 := d.NewRow("img-3")
	d.Add(r3, "mysqld/user", "mysql")
	return d
}

func TestDeclareAndAttr(t *testing.T) {
	d := sample()
	a, ok := d.Attr("mysqld/datadir")
	if !ok || a.Type != conftypes.TypeFilePath || a.Augmented {
		t.Fatalf("attr = %+v ok=%v", a, ok)
	}
	// Re-declare keeps the first type.
	d.DeclareAttr("mysqld/datadir", conftypes.TypeString, false)
	a, _ = d.Attr("mysqld/datadir")
	if a.Type != conftypes.TypeFilePath {
		t.Fatal("re-declare must not clobber type")
	}
	d.SetType("mysqld/datadir", conftypes.TypeString)
	a, _ = d.Attr("mysqld/datadir")
	if a.Type != conftypes.TypeString {
		t.Fatal("SetType should override")
	}
	if _, ok := d.Attr("missing"); ok {
		t.Fatal("missing attr should report !ok")
	}
}

func TestColumnPresentEntropy(t *testing.T) {
	d := sample()
	col := d.Column("mysqld/datadir")
	if len(col) != 2 {
		t.Fatalf("column = %v", col)
	}
	if d.Present("mysqld/datadir") != 2 || d.Present("mysqld/user") != 3 {
		t.Fatal("present counts wrong")
	}
	if d.Entropy("mysqld/user") != 0 {
		t.Fatal("constant column must have zero entropy")
	}
	if d.Entropy("mysqld/datadir") == 0 {
		t.Fatal("two-valued column must have positive entropy")
	}
	if d.Cardinality("mysqld/datadir") != 2 {
		t.Fatal("cardinality wrong")
	}
}

func TestAttributesOfType(t *testing.T) {
	d := sample()
	users := d.AttributesOfType(conftypes.TypeUserName)
	if len(users) != 2 || users[0] != "mysqld/datadir.owner" || users[1] != "mysqld/user" {
		t.Fatalf("AttributesOfType = %v", users)
	}
}

func TestOccurrenceCounts(t *testing.T) {
	d := New()
	d.DeclareAttr("LoadModule", conftypes.TypeString, false)
	d.DeclareAttr("Listen.local", conftypes.TypeBoolean, true)
	r1 := d.NewRow("a")
	d.Add(r1, "LoadModule", "mod_php")
	d.Add(r1, "LoadModule", "mod_ssl")
	d.Add(r1, "LoadModule", "mod_rewrite")
	d.Add(r1, "Listen.local", "true")
	r2 := d.NewRow("b")
	d.Add(r2, "LoadModule", "mod_php")
	// Original counts per-occurrence: max 3 instances of LoadModule.
	if got := d.OriginalAttrCount(); got != 3 {
		t.Fatalf("original = %d, want 3", got)
	}
	if got := d.AugmentedAttrCount(); got != 4 {
		t.Fatalf("augmented = %d, want 4", got)
	}
}

func TestDiscretize(t *testing.T) {
	d := sample()
	disc := d.Discretize(nil)
	if len(disc.Transactions) != 3 {
		t.Fatalf("transactions = %d", len(disc.Transactions))
	}
	// Distinct items: datadir has 2 values, user 1, owner 1 => 4.
	if disc.BinomialCount() != 4 {
		t.Fatalf("items = %d, want 4", disc.BinomialCount())
	}
	// Binomial expansion always >= number of involved columns.
	if disc.BinomialCount() < len(d.Attributes())-1 {
		t.Fatal("binomial must not shrink below column count")
	}
	// Restricting attributes restricts items.
	only := d.Discretize([]string{"mysqld/user"})
	if only.BinomialCount() != 1 {
		t.Fatalf("restricted items = %d", only.BinomialCount())
	}
	// Transactions are sorted, deduplicated item-id sets.
	for _, txn := range disc.Transactions {
		for i := 1; i < len(txn); i++ {
			if txn[i-1] >= txn[i] {
				t.Fatal("transaction not strictly sorted")
			}
		}
	}
}

func TestDiscretizeDeterministic(t *testing.T) {
	d := sample()
	a := d.Discretize(nil)
	b := d.Discretize(nil)
	if len(a.Items) != len(b.Items) {
		t.Fatal("nondeterministic item count")
	}
	for i := range a.Items {
		if a.Items[i] != b.Items[i] {
			t.Fatalf("item %d differs: %v vs %v", i, a.Items[i], b.Items[i])
		}
	}
}

func TestItemString(t *testing.T) {
	it := Item{Attr: "user", Value: "mysql"}
	if it.String() != "user=mysql" {
		t.Fatalf("item = %q", it.String())
	}
}

func TestCSV(t *testing.T) {
	d := sample()
	csv := d.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv lines = %d\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "system,") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "/var/lib/mysql") {
		t.Fatalf("row 1 = %q", lines[1])
	}
	// Empty cell for img-3's datadir.
	if !strings.Contains(lines[3], "img-3,,") {
		t.Fatalf("row 3 = %q", lines[3])
	}
}

func TestCSVEscaping(t *testing.T) {
	d := New()
	r := d.NewRow(`sys"1`)
	d.Add(r, "a,b", `va"l`)
	csv := d.CSV()
	if !strings.Contains(csv, `"a,b"`) || !strings.Contains(csv, `"sys""1"`) || !strings.Contains(csv, `"va""l"`) {
		t.Fatalf("escaping wrong:\n%s", csv)
	}
}

func TestMultiInstanceCellsJoined(t *testing.T) {
	d := New()
	r := d.NewRow("s")
	d.Add(r, "LoadModule", "a")
	d.Add(r, "LoadModule", "b")
	if !strings.Contains(d.CSV(), "a;b") {
		t.Fatalf("multi-instance join missing:\n%s", d.CSV())
	}
}

func TestRowFirst(t *testing.T) {
	d := sample()
	r := d.Rows[2]
	if _, ok := r.First("mysqld/datadir"); ok {
		t.Fatal("absent attr should report !ok")
	}
	v, ok := r.First("mysqld/user")
	if !ok || v != "mysql" {
		t.Fatalf("First = %q %v", v, ok)
	}
	if r.Instances("mysqld/user") == nil {
		t.Fatal("instances should be present")
	}
}

func TestSummary(t *testing.T) {
	d := sample()
	if !strings.Contains(d.Summary(), "3 attributes x 3 rows") {
		t.Fatalf("summary = %q", d.Summary())
	}
}

func TestDiscretizePropertyTransactionSize(t *testing.T) {
	// Property: each transaction's size is at most the row's total distinct
	// (attr,value) pairs, and item ids are always in range.
	f := func(vals []string) bool {
		d := New()
		r := d.NewRow("s")
		for i, v := range vals {
			if len(v) > 8 {
				v = v[:8]
			}
			d.Add(r, "attr"+string(rune('a'+i%5)), v)
		}
		disc := d.Discretize(nil)
		for _, txn := range disc.Transactions {
			for _, id := range txn {
				if id < 0 || id >= len(disc.Items) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
