// Package stats provides the statistical primitives EnCore uses for rule
// filtering and warning ranking: Shannon entropy over observed values,
// support and confidence of candidate rules, and the inverse change
// frequency (ICF) heuristic used to rank suspicious values.
package stats

import (
	"math"
	"sort"
)

// DefaultEntropyThreshold is Ht from the paper: the entropy of a two-valued
// distribution with probabilities 0.9 and 0.1. Attributes whose value
// entropy does not exceed this threshold are considered too stable to carry
// interesting rules.
const DefaultEntropyThreshold = 0.325

// Entropy returns the Shannon entropy (natural log) of the value
// distribution described by counts. Zero counts are ignored; an empty or
// all-zero histogram has entropy 0.
func Entropy(counts map[string]int) float64 {
	total := 0
	for _, c := range counts {
		if c > 0 {
			total += c
		}
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c <= 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log(p)
	}
	return h
}

// EntropyOfValues computes Entropy over a raw sample of values.
func EntropyOfValues(values []string) float64 {
	counts := make(map[string]int, len(values))
	for _, v := range values {
		counts[v]++
	}
	return Entropy(counts)
}

// TwoValueEntropy returns the entropy of a Bernoulli-like distribution with
// the given probability p for one value and 1-p for the other. It is the
// function used to derive DefaultEntropyThreshold (p = 0.9).
func TwoValueEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	q := 1 - p
	return -p*math.Log(p) - q*math.Log(q)
}

// Support is the absolute number of training samples in which all
// attributes participating in a rule are present.
func Support(present, total int) int {
	_ = total
	return present
}

// SupportFraction is the fraction of training samples in which the rule's
// attributes co-occur.
func SupportFraction(present, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(present) / float64(total)
}

// Confidence is the fraction of co-occurring samples in which the rule's
// relation actually holds.
func Confidence(valid, present int) float64 {
	if present == 0 {
		return 0
	}
	return float64(valid) / float64(present)
}

// Cardinality returns the number of distinct values in the sample.
func Cardinality(values []string) int {
	seen := make(map[string]struct{}, len(values))
	for _, v := range values {
		seen[v] = struct{}{}
	}
	return len(seen)
}

// ICF computes the inverse change frequency score for an attribute given
// the number of distinct values it took in the training set. Attributes
// with fewer distinct historical values get higher scores, so a deviation
// on a historically stable attribute ranks above a deviation on a volatile
// one.
func ICF(distinctValues, samples int) float64 {
	if distinctValues <= 0 || samples <= 0 {
		return 0
	}
	return math.Log(1+float64(samples)) / float64(distinctValues)
}

// RankByICF sorts the given keys by descending ICF score; ties break
// lexicographically so ranking is deterministic.
func RankByICF(scores map[string]float64) []string {
	keys := make([]string, 0, len(scores))
	for k := range scores {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		si, sj := scores[keys[i]], scores[keys[j]]
		if si != sj {
			return si > sj
		}
		return keys[i] < keys[j]
	})
	return keys
}

// Histogram counts occurrences of each value.
func Histogram(values []string) map[string]int {
	h := make(map[string]int, len(values))
	for _, v := range values {
		h[v]++
	}
	return h
}

// MajorityValue returns the most common value and its frequency fraction.
// Ties break lexicographically for determinism. ok is false for an empty
// sample.
func MajorityValue(values []string) (value string, frac float64, ok bool) {
	if len(values) == 0 {
		return "", 0, false
	}
	h := Histogram(values)
	best := ""
	bestN := -1
	for v, n := range h {
		if n > bestN || (n == bestN && v < best) {
			best, bestN = v, n
		}
	}
	return best, float64(bestN) / float64(len(values)), true
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	v := 0.0
	for _, x := range xs {
		d := x - m
		v += d * d
	}
	return math.Sqrt(v / float64(len(xs)))
}
