// Package rules implements EnCore's template-guided rule inference
// (Section 5, Figure 5): for each template, find the attributes eligible by
// semantic type, instantiate every candidate pair, validate each candidate
// against every training system, and keep the candidates that pass the
// support, confidence, and entropy filters.
//
// Instantiation of one candidate is independent of every other candidate
// (zero shared state), so the engine streams candidates to a worker pool
// sized to the machine — the same parallelism the paper exploits with a
// multi-process implementation. On top of that, Infer runs against the
// dataset's columnar index (see internal/dataset/index.go): candidate
// support is popcount(bitsetA AND bitsetB) in O(rows/64), support-rejected
// candidates die before any per-system validation, the validation sweep
// itself iterates only the co-occurrence bitset, and the entropy filter
// reads memoized per-attribute entropies instead of rebuilding value
// histograms per candidate. InferSerial remains the index-free,
// single-threaded oracle; the two are equivalence-tested on rules and
// Stats alike.
package rules

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"math/bits"
	"reflect"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/stats"
	"repro/internal/sysimage"
	"repro/internal/telemetry"
	"repro/internal/templates"
)

// Rule is a concrete instantiation of a template: the placeholders are
// filled with attribute names, and the training-set statistics are
// recorded.
type Rule struct {
	Template   string  `json:"template"`
	Spec       string  `json:"spec"`
	AttrA      string  `json:"attrA"`
	AttrB      string  `json:"attrB"`
	Support    int     `json:"support"`    // systems where both attributes co-occur
	Valid      int     `json:"valid"`      // systems where the relation holds
	Confidence float64 `json:"confidence"` // Valid / applicable systems
	EntropyA   float64 `json:"entropyA"`
	EntropyB   float64 `json:"entropyB"`
}

// String renders the rule for reports.
func (r *Rule) String() string {
	return fmt.Sprintf("%s(%s, %s) support=%d conf=%.2f", r.Template, r.AttrA, r.AttrB, r.Support, r.Confidence)
}

// Key identifies a rule regardless of statistics.
func (r *Rule) Key() string { return r.Template + "|" + r.AttrA + "|" + r.AttrB }

// Config holds the inference thresholds (Section 5.2 defaults).
type Config struct {
	// MinConfidence is the minimum fraction of applicable systems on which
	// the relation must hold (paper: 0.90).
	MinConfidence float64
	// MinSupportFraction is the minimum fraction of training systems in
	// which both attributes must co-occur (paper: 0.10).
	MinSupportFraction float64
	// EntropyThreshold is Ht; attributes at or below it are excluded.
	// Set UseEntropyFilter=false to disable (Table 13's ablation).
	EntropyThreshold float64
	UseEntropyFilter bool
	// Workers bounds the candidate-evaluation pool; 0 means NumCPU.
	Workers int
}

// DefaultConfig returns the paper's evaluation thresholds.
func DefaultConfig() Config {
	return Config{
		MinConfidence:      0.90,
		MinSupportFraction: 0.10,
		EntropyThreshold:   stats.DefaultEntropyThreshold,
		UseEntropyFilter:   true,
	}
}

// Stats summarizes one inference run: how many candidates each filter
// rejected. It explains where the typed search space went — the kind of
// accounting Table 13 does for the entropy filter, generalized to all
// three filters. Filters apply in order support → confidence → entropy,
// so e.g. EntropyRejected counts candidates that passed support and
// confidence (Table 13's accounting of what the entropy filter alone
// removes).
type Stats struct {
	// Candidates is the size of the typed instantiation space.
	Candidates int
	// NoEvidence counts candidates whose attributes never co-occurred (or
	// whose validator was never applicable).
	NoEvidence int
	// SupportRejected, ConfidenceRejected, EntropyRejected count
	// candidates killed by each filter, applied in that order.
	SupportRejected    int
	ConfidenceRejected int
	EntropyRejected    int
	// Kept is the number of surviving rules.
	Kept int
}

// Engine infers rules from an assembled training dataset.
type Engine struct {
	Config    Config
	Templates []*templates.Template

	// LastStats describes the most recent Infer/InferSerial run.
	LastStats Stats

	// Telemetry, when set, receives the inference stage timing and the
	// candidate-validation counters. Nil disables instrumentation.
	Telemetry *telemetry.Recorder

	// Log, when set, receives a structured summary record per inference
	// run (candidate and survivor counts, correlated with the rules.infer
	// span). Nil silences engine logging.
	Log *slog.Logger

	// ctxMu guards the memoized per-row evaluation contexts, shared
	// across Infer/InferSerial runs over the same dataset and image map
	// (the threshold sweeps re-infer 15x over one corpus).
	ctxMu      sync.Mutex
	ctxData    *dataset.Dataset
	ctxImgsKey uintptr
	ctxs       []*templates.Ctx
}

// NewEngine returns an engine with the predefined templates and default
// thresholds.
func NewEngine() *Engine {
	return &Engine{Config: DefaultConfig(), Templates: templates.Predefined()}
}

// AddTemplate registers an additional (custom) template.
func (e *Engine) AddTemplate(t *templates.Template) {
	e.Templates = append(e.Templates, t)
}

// candidate is one (template, attrA, attrB) instantiation to evaluate.
type candidate struct {
	tpl   *templates.Template
	attrA string
	attrB string
}

// inferTally accumulates one worker's share of an inference run, merged
// after the pool drains so the hot loop touches no shared state.
type inferTally struct {
	rules         []*Rule
	stats         Stats
	prunedSupport int64 // candidates killed by the bitset before any Validate call

	// cands captures each candidate's evaluation tally when the run feeds
	// an InferState (see incremental.go); nil when capture is off.
	cands []capturedCand
}

func (t *inferTally) record(r *Rule, reason rejectReason) {
	switch reason {
	case kept:
		t.stats.Kept++
	case noEvidence:
		t.stats.NoEvidence++
	case supportRejected:
		t.stats.SupportRejected++
	case confidenceRejected:
		t.stats.ConfidenceRejected++
	case entropyRejected:
		t.stats.EntropyRejected++
	}
	if r != nil {
		t.rules = append(t.rules, r)
	}
}

func (t *inferTally) merge(o *inferTally) {
	t.rules = append(t.rules, o.rules...)
	t.stats.Kept += o.stats.Kept
	t.stats.NoEvidence += o.stats.NoEvidence
	t.stats.SupportRejected += o.stats.SupportRejected
	t.stats.ConfidenceRejected += o.stats.ConfidenceRejected
	t.stats.EntropyRejected += o.stats.EntropyRejected
	t.prunedSupport += o.prunedSupport
	t.cands = append(t.cands, o.cands...)
}

// Infer learns concrete rules from the dataset. images maps system ID to
// its image so validators can consult the environment; rows whose image is
// missing still participate in value-only validators.
//
// Candidates are generated on the fly and streamed to the worker pool —
// the full instantiation space (millions of structs in the untyped
// ablation's worst case) is never materialized.
func (e *Engine) Infer(d *dataset.Dataset, images map[string]*sysimage.Image) []*Rule {
	rules, _ := e.infer(d, images, false)
	return rules
}

// infer is the shared body of Infer and InferWithState. When capture is
// set, every candidate's evaluation tally is collected (via the worker
// tallies, so the hot loop still touches no shared state) and returned for
// the caller to fold into an InferState.
func (e *Engine) infer(d *dataset.Dataset, images map[string]*sysimage.Image, capture bool) ([]*Rule, []capturedCand) {
	defer e.Telemetry.StartStage(telemetry.StageRulesInfer)()
	ix := d.Index()
	ctxs := e.contexts(d, images)

	workers := e.Config.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}

	root := e.Telemetry.StartSpan("rules.infer",
		telemetry.A("templates", strconv.Itoa(len(e.Templates))),
		telemetry.A("workers", strconv.Itoa(workers)))
	defer root.End()
	timed := e.Telemetry != nil

	tallies := make([]inferTally, workers)
	next := make(chan candidate, 4*workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int, t *inferTally) {
			defer wg.Done()
			ws := root.StartChild("rules.worker", telemetry.A("worker", strconv.Itoa(w)))
			// Per-candidate latencies accumulate into a worker-local
			// histogram (no lock per sample) merged once at drain.
			var local telemetry.Histogram
			n := 0
			for c := range next {
				var start time.Time
				if timed {
					start = time.Now()
				}
				r, reason, ct := e.evaluateCandidate(ix, ctxs, c)
				if timed {
					local.Observe(time.Since(start))
				}
				n++
				t.record(r, reason)
				if !ct.validated {
					t.prunedSupport++
				}
				if capture {
					t.cands = append(t.cands, capturedCand{
						key:   candKey{tpl: c.tpl.ID, attrA: c.attrA, attrB: c.attrB},
						tally: ct,
					})
				}
			}
			e.Telemetry.MergeHistogram(telemetry.HistRuleValidate, &local)
			ws.SetAttr("candidates", strconv.Itoa(n))
			ws.End()
		}(w, &tallies[w])
	}
	candidates := 0
	e.forEachCandidate(d, func(c candidate) {
		candidates++
		next <- c
	})
	close(next)
	wg.Wait()

	var total inferTally
	for i := range tallies {
		total.merge(&tallies[i])
	}
	total.stats.Candidates = candidates
	e.LastStats = total.stats
	e.Telemetry.Add(telemetry.CounterRulesValidated, int64(candidates))
	e.Telemetry.Add(telemetry.CounterRulesKept, int64(total.stats.Kept))
	e.Telemetry.Add(telemetry.CounterRulesPrunedSupport, total.prunedSupport)
	e.Telemetry.Add(telemetry.CounterRulesPrunedEntropy, int64(total.stats.EntropyRejected))
	root.Logger(e.Log).Debug("rule inference done",
		"candidates", candidates, "kept", total.stats.Kept,
		"pruned_support", total.prunedSupport, "pruned_entropy", total.stats.EntropyRejected)
	rules := total.rules
	sort.Slice(rules, func(i, j int) bool { return rules[i].Key() < rules[j].Key() })
	return rules, total.cands
}

// rejectReason records why a candidate did not become a rule.
type rejectReason int

const (
	kept rejectReason = iota
	noEvidence
	supportRejected
	confidenceRejected
	entropyRejected
)

// InferSerial is the single-threaded, index-free reference implementation:
// the oracle for the parallelism and columnar-index equivalence tests, and
// the baseline of the indexed-inference benchmark. It validates every
// candidate against every system with plain row lookups and applies the
// same filters in the same order as the indexed path.
func (e *Engine) InferSerial(d *dataset.Dataset, images map[string]*sysimage.Image) []*Rule {
	defer e.Telemetry.StartStage(telemetry.StageRulesInfer)()
	root := e.Telemetry.StartSpan("rules.infer",
		telemetry.A("templates", strconv.Itoa(len(e.Templates))),
		telemetry.A("workers", "1"))
	defer root.End()
	timed := e.Telemetry != nil
	ctxs := e.contexts(d, images)
	var tally inferTally
	var local telemetry.Histogram
	candidates := 0
	e.forEachCandidate(d, func(c candidate) {
		candidates++
		var start time.Time
		if timed {
			start = time.Now()
		}
		tally.record(e.evaluateSerial(d, ctxs, c))
		if timed {
			local.Observe(time.Since(start))
		}
	})
	e.Telemetry.MergeHistogram(telemetry.HistRuleValidate, &local)
	tally.stats.Candidates = candidates
	e.LastStats = tally.stats
	e.Telemetry.Add(telemetry.CounterRulesValidated, int64(candidates))
	e.Telemetry.Add(telemetry.CounterRulesKept, int64(tally.stats.Kept))
	rules := tally.rules
	sort.Slice(rules, func(i, j int) bool { return rules[i].Key() < rules[j].Key() })
	return rules
}

// forEachCandidate enumerates every eligible (template, attrA, attrB) pair
// without materializing the instantiation space. Type-based attribute
// selection happens here: this is what keeps the candidate space tractable
// compared with frequent-item-set mining.
func (e *Engine) forEachCandidate(d *dataset.Dataset, yield func(candidate)) {
	attrs := d.Attributes()
	for _, tpl := range e.Templates {
		var as, bs []dataset.Attribute
		for _, a := range attrs {
			if tpl.EligibleA(a) {
				as = append(as, a)
			}
			if tpl.EligibleB(a) {
				bs = append(bs, a)
			}
		}
		for _, a := range as {
			for _, b := range bs {
				if a.Name == b.Name {
					continue
				}
				if tpl.SameType && a.Type != b.Type {
					continue
				}
				if tpl.Symmetric && a.Name > b.Name {
					continue
				}
				// An augmented attribute correlating with its own base
				// entry is tautological (datadir.owner vs datadir);
				// skip base/augmented self-pairs.
				if isOwnAugment(a, b) || isOwnAugment(b, a) {
					continue
				}
				yield(candidate{tpl: tpl, attrA: a.Name, attrB: b.Name})
			}
		}
	}
}

// CandidateCount exposes the size of the typed search space (used by the
// typed-selection ablation). It streams the space, so even the untyped
// worst case costs no per-candidate allocation.
func (e *Engine) CandidateCount(d *dataset.Dataset) int {
	n := 0
	e.forEachCandidate(d, func(candidate) { n++ })
	return n
}

// isOwnAugment reports whether aug is an augmented attribute derived from
// base (aug.Name == base.Name + "." + suffix).
func isOwnAugment(aug, base dataset.Attribute) bool {
	return aug.Augmented && len(aug.Name) > len(base.Name)+1 &&
		aug.Name[:len(base.Name)] == base.Name && aug.Name[len(base.Name)] == '.'
}

// contexts returns the per-row evaluation contexts, memoized across runs
// over the same (dataset, image map) pair so repeated inference — the
// threshold sweep's 15 runs, Table 13's filtered/unfiltered pair — builds
// them once.
func (e *Engine) contexts(d *dataset.Dataset, images map[string]*sysimage.Image) []*templates.Ctx {
	var key uintptr
	if images != nil {
		key = reflect.ValueOf(images).Pointer()
	}
	e.ctxMu.Lock()
	defer e.ctxMu.Unlock()
	if e.ctxData == d && e.ctxImgsKey == key && len(e.ctxs) == len(d.Rows) {
		// The dataset is mutable (AddRows/RetireRows shift rows in place),
		// so a matching length is not proof the memo is current — an add
		// followed by an equal-sized retire leaves the count unchanged with
		// different rows. Verify row identity before trusting the hit.
		fresh := true
		for i, ctx := range e.ctxs {
			if ctx.Row != d.Rows[i] {
				fresh = false
				break
			}
		}
		if fresh {
			return e.ctxs
		}
	}
	ctxs := make([]*templates.Ctx, len(d.Rows))
	for i, row := range d.Rows {
		ctxs[i] = &templates.Ctx{Row: row, Image: images[row.SystemID]}
	}
	e.ctxData, e.ctxImgsKey, e.ctxs = d, key, ctxs
	return ctxs
}

// evaluateCandidate validates one candidate using the columnar index:
// support comes from the presence bitsets, the validation sweep visits
// only co-occurrence rows, and the entropy filter reads memoized values.
// The returned candTally carries the raw counts (for incremental
// maintenance, see incremental.go); tally.validated is false when the
// candidate died on the support filter before any Validate call. A nil
// rule is accompanied by the reason the candidate died; the
// classification is identical to evaluateSerial's.
func (e *Engine) evaluateCandidate(ix *dataset.Index, ctxs []*templates.Ctx, c candidate) (*Rule, rejectReason, candTally) {
	total := len(ctxs)
	support := ix.CoSupport(c.attrA, c.attrB)
	if total == 0 || support == 0 {
		return nil, noEvidence, candTally{support: support}
	}
	if stats.SupportFraction(support, total) < e.Config.MinSupportFraction {
		return nil, supportRejected, candTally{support: support}
	}
	bitsA, bitsB := ix.PresenceBits(c.attrA), ix.PresenceBits(c.attrB)
	// Delta index snapshots share untouched columns with pre-delta bitset
	// lengths (implicit zero high words); clamp to the shorter set.
	if len(bitsB) < len(bitsA) {
		bitsA = bitsA[:len(bitsB)]
	}
	rowsA, rowsB := ix.RowValues(c.attrA), ix.RowValues(c.attrB)
	applicable, valid := 0, 0
	for w, wa := range bitsA {
		word := wa & bitsB[w]
		for word != 0 {
			i := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			holds, app := c.tpl.Validate(rowsA[i], rowsB[i], ctxs[i])
			if !app {
				continue
			}
			applicable++
			if holds {
				valid++
			}
		}
	}
	r, reason := e.finish(c, total, support, applicable, valid, ix.Entropy(c.attrA), ix.Entropy(c.attrB))
	return r, reason, candTally{support: support, applicable: applicable, valid: valid, validated: true}
}

// evaluateSerial validates one candidate with plain per-row lookups and no
// index — the reference the indexed path is tested against. The dataset's
// memoized entropy is shared with the indexed path so both report
// bit-identical rule statistics.
func (e *Engine) evaluateSerial(d *dataset.Dataset, ctxs []*templates.Ctx, c candidate) (*Rule, rejectReason) {
	total := len(ctxs)
	support, applicable, valid := 0, 0, 0
	for _, ctx := range ctxs {
		va := ctx.Row.Instances(c.attrA)
		vb := ctx.Row.Instances(c.attrB)
		if len(va) == 0 || len(vb) == 0 {
			continue
		}
		support++
		holds, app := c.tpl.Validate(va, vb, ctx)
		if !app {
			continue
		}
		applicable++
		if holds {
			valid++
		}
	}
	if total == 0 || support == 0 {
		return nil, noEvidence
	}
	if stats.SupportFraction(support, total) < e.Config.MinSupportFraction {
		return nil, supportRejected
	}
	return e.finish(c, total, support, applicable, valid, d.Entropy(c.attrA), d.Entropy(c.attrB))
}

// finish applies the shared filter chain — no applicable evidence, then
// confidence, then entropy — and builds the rule for survivors. Support
// has already been checked; keeping the tail in one place guarantees the
// indexed and serial paths classify candidates identically.
func (e *Engine) finish(c candidate, total, support, applicable, valid int, entA, entB float64) (*Rule, rejectReason) {
	if applicable == 0 {
		return nil, noEvidence
	}
	conf := stats.Confidence(valid, applicable)
	if conf < e.Config.MinConfidence {
		return nil, confidenceRejected
	}
	if e.Config.UseEntropyFilter {
		if entA <= e.Config.EntropyThreshold || entB <= e.Config.EntropyThreshold {
			return nil, entropyRejected
		}
	}
	return &Rule{
		Template:   c.tpl.ID,
		Spec:       c.tpl.Spec,
		AttrA:      c.attrA,
		AttrB:      c.attrB,
		Support:    support,
		Valid:      valid,
		Confidence: conf,
		EntropyA:   entA,
		EntropyB:   entB,
	}, kept
}

// RuleSet is a serializable collection of learned rules together with the
// attribute type map needed to check targets.
type RuleSet struct {
	Rules []*Rule           `json:"rules"`
	Types map[string]string `json:"types"` // attribute -> semantic type
}

// NewRuleSet bundles rules with the training dataset's attribute types.
func NewRuleSet(rules []*Rule, d *dataset.Dataset) *RuleSet {
	types := make(map[string]string)
	for _, a := range d.Attributes() {
		types[a.Name] = string(a.Type)
	}
	return &RuleSet{Rules: rules, Types: types}
}

// Marshal serializes the rule set to JSON.
func (rs *RuleSet) Marshal() ([]byte, error) {
	return json.MarshalIndent(rs, "", "  ")
}

// UnmarshalRuleSet parses a serialized rule set.
func UnmarshalRuleSet(data []byte) (*RuleSet, error) {
	var rs RuleSet
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, fmt.Errorf("rules: decode rule set: %w", err)
	}
	return &rs, nil
}
