// Structured leveled logging for the pipelines, built on log/slog. Two
// handler formats back the CLI's -log flag: "text" (logfmt-style key=value
// with the time attribute dropped, so CLI output is stable and diffable)
// and "json" (one JSON object per line, timestamped, for log shippers).
// Spans correlate log lines with the trace: Span.Logger derives a logger
// that stamps every record with the span id and the span's attributes
// (image, worker, app, ...), so a log line can be joined against the
// exported span tree or the Chrome trace timeline.
package telemetry

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// LogFormats lists the accepted -log values.
const LogFormats = "text|json"

// NewLogger builds a leveled structured logger writing to w.
// format is "text" (default when empty) or "json"; level names are
// "debug", "info" (default when empty), "warn", and "error".
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("telemetry: unknown log level %q (want debug|info|warn|error)", level)
	}
	switch strings.ToLower(format) {
	case "", "text":
		h := slog.NewTextHandler(w, &slog.HandlerOptions{
			Level: lv,
			ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
				// CLI text output stays deterministic and greppable
				// without per-line wall-clock timestamps.
				if len(groups) == 0 && a.Key == slog.TimeKey {
					return slog.Attr{}
				}
				return a
			},
		})
		return slog.New(h), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: lv})), nil
	default:
		return nil, fmt.Errorf("telemetry: unknown log format %q (want %s)", format, LogFormats)
	}
}

// discardHandler drops every record; it backs NopLogger.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

var nopLogger = slog.New(discardHandler{})

// NopLogger returns a logger that discards everything — the default for
// pipeline Log fields left unset, so instrumented code can log
// unconditionally.
func NopLogger() *slog.Logger { return nopLogger }

// LoggerOr returns l, or the discarding logger when l is nil. Pipeline
// code calls it once per batch instead of nil-checking per record.
func LoggerOr(l *slog.Logger) *slog.Logger {
	if l == nil {
		return nopLogger
	}
	return l
}

// Logger derives a span-correlated logger from base: every record carries
// span=<id> plus the span's attributes as fields. Safe on a nil span
// (returns base, or the discarding logger when base is also nil) and with
// a nil base.
func (s *Span) Logger(base *slog.Logger) *slog.Logger {
	base = LoggerOr(base)
	if s == nil {
		return base
	}
	args := make([]any, 0, 2+2*len(s.attrs))
	args = append(args, "span", s.id)
	for _, a := range s.attrs {
		args = append(args, a.Key, a.Value)
	}
	return base.With(args...)
}
