package assemble

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/confparse"
	"repro/internal/conftypes"
	"repro/internal/dataset"
	"repro/internal/sysimage"
)

// parsedImage pairs an image with its parsed configuration files.
type parsedImage struct {
	img   *sysimage.Image
	files []*confparse.File
}

// attrName builds the canonical column name for an entry argument.
// Single-value entries keep their entry name; multi-argument entries get
// /argN positions ("LoadModule/arg2"); bare flags get the entry name with
// the implicit value "on".
func attrName(app string, e *confparse.Entry, argIdx, argCount int) string {
	base := app + ":" + e.Name()
	if argCount <= 1 {
		return base
	}
	return fmt.Sprintf("%s/arg%d", base, argIdx+1)
}

// entryValues returns the (attribute name, value) pairs an entry
// contributes.
func entryValues(app string, e *confparse.Entry) [](struct{ Name, Value string }) {
	var out [](struct{ Name, Value string })
	if len(e.Values) == 0 {
		out = append(out, struct{ Name, Value string }{attrName(app, e, 0, 1), "on"})
		return out
	}
	for i, v := range e.Values {
		out = append(out, struct{ Name, Value string }{attrName(app, e, i, len(e.Values)), v})
	}
	return out
}

func parseImages(images []*sysimage.Image) ([]parsedImage, error) {
	parsed := make([]parsedImage, 0, len(images))
	for _, img := range images {
		pi := parsedImage{img: img}
		for _, cf := range img.ConfigFiles {
			f, err := confparse.Parse(cf.App, cf.Path, cf.Content)
			if err != nil {
				return nil, fmt.Errorf("assemble: image %s: %w", img.ID, err)
			}
			pi.files = append(pi.files, f)
		}
		parsed = append(parsed, pi)
	}
	return parsed, nil
}

// AssembleTraining builds the training dataset from a set of configured
// images: it parses every configuration file, infers one semantic type per
// attribute from all samples across the training set, and augments each row
// with environment attributes.
func (a *Assembler) AssembleTraining(images []*sysimage.Image) (*dataset.Dataset, error) {
	parsed, err := parseImages(images)
	if err != nil {
		return nil, err
	}

	// Pass 1: collect samples per attribute for entry-level type
	// inference.
	samples := make(map[string][]conftypes.Sample)
	var order []string
	for _, pi := range parsed {
		for _, f := range pi.files {
			for _, e := range f.Entries {
				for _, nv := range entryValues(f.App, e) {
					if _, seen := samples[nv.Name]; !seen {
						order = append(order, nv.Name)
					}
					samples[nv.Name] = append(samples[nv.Name], conftypes.Sample{Value: nv.Value, Image: pi.img})
				}
			}
		}
	}
	types := make(map[string]conftypes.Type, len(samples))
	for name, ss := range samples {
		types[name] = a.Inferencer.InferEntryNamed(name, ss)
	}

	// Pass 2: build the dataset with augmentation.
	d := dataset.New()
	for _, name := range order {
		d.DeclareAttr(name, types[name], false)
	}
	for _, pi := range parsed {
		row := d.NewRow(pi.img.ID)
		a.fillRow(d, row, pi, types)
	}
	return d, nil
}

// AssembleTarget assembles a single target image using the attribute types
// learned during training. Attributes unseen in training are inferred from
// the target's own context.
func (a *Assembler) AssembleTarget(img *sysimage.Image, training *dataset.Dataset) (*dataset.Dataset, error) {
	parsed, err := parseImages([]*sysimage.Image{img})
	if err != nil {
		return nil, err
	}
	pi := parsed[0]
	types := make(map[string]conftypes.Type)
	for _, f := range pi.files {
		for _, e := range f.Entries {
			for _, nv := range entryValues(f.App, e) {
				if _, done := types[nv.Name]; done {
					continue
				}
				if attr, ok := training.Attr(nv.Name); ok {
					types[nv.Name] = attr.Type
				} else {
					types[nv.Name] = a.Inferencer.InferValue(nv.Value, img)
				}
			}
		}
	}
	d := dataset.New()
	// Copy training column declarations so checks can reference them even
	// when absent on the target.
	for _, attr := range training.Attributes() {
		d.DeclareAttr(attr.Name, attr.Type, attr.Augmented)
	}
	for name, t := range types {
		d.DeclareAttr(name, t, false)
	}
	row := d.NewRow(img.ID)
	a.fillRow(d, row, pi, types)
	return d, nil
}

// fillRow adds the original entries, the Table 5a augmented attributes, and
// the Table 5b environment attributes for one image.
func (a *Assembler) fillRow(d *dataset.Dataset, row *dataset.Row, pi parsedImage, types map[string]conftypes.Type) {
	for _, f := range pi.files {
		for _, e := range f.Entries {
			for _, nv := range entryValues(f.App, e) {
				d.DeclareAttr(nv.Name, types[nv.Name], false)
				d.Add(row, nv.Name, nv.Value)
				a.augment(d, row, nv.Name, nv.Value, types[nv.Name], pi.img)
			}
		}
	}
	for _, env := range a.envAttrs {
		if v, ok := env.Compute(pi.img); ok {
			d.DeclareAttr(env.Name, env.Type, true)
			d.Add(row, env.Name, v)
			d.SetType(env.Name, env.Type)
		}
	}
}

func (a *Assembler) augment(d *dataset.Dataset, row *dataset.Row, name, value string, t conftypes.Type, img *sysimage.Image) {
	if a.SkipPatternValues && conftypes.LooksLikeRegexOrGlob(value) {
		return
	}
	for _, aug := range a.augmenters[t] {
		v, ok := aug.Compute(value, img)
		if !ok {
			continue
		}
		augName := name + "." + aug.Suffix
		d.DeclareAttr(augName, aug.Type, true)
		d.Add(row, augName, v)
		d.SetType(augName, aug.Type)
	}
}

// AppsIn lists the distinct applications configured in the images, sorted.
func AppsIn(images []*sysimage.Image) []string {
	set := map[string]bool{}
	for _, img := range images {
		for _, cf := range img.ConfigFiles {
			set[cf.App] = true
		}
	}
	out := make([]string, 0, len(set))
	for app := range set {
		out = append(out, app)
	}
	sort.Strings(out)
	return out
}

// BaseEntryName strips the app prefix from an attribute name, recovering
// the configuration entry name ("mysql:mysqld/datadir" ->
// "mysqld/datadir"). Whether an attribute is augmented is recorded on the
// dataset column, not encoded in the name (PHP entry names legitimately
// contain dots, e.g. session.save_path).
func BaseEntryName(attr string) string {
	if i := strings.Index(attr, ":"); i >= 0 {
		return attr[i+1:]
	}
	return attr
}
