package planio

import (
	"encoding/binary"
	"flag"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/conftypes"
	"repro/internal/detect"
	"repro/internal/intern"
	"repro/internal/rules"
)

var update = flag.Bool("update", false, "rewrite golden files")

// testSpec builds a small hand-authored plan spec that exercises every
// section of the format: augmented and plain attributes, multi-bucket and
// empty histograms, string-table sharing between sections, and rules with
// non-trivial float statistics.
func testSpec() *detect.PlanSpec {
	return &detect.PlanSpec{
		Samples:   12,
		SuspLimit: 3,
		Attrs: []detect.PlanSpecAttr{
			{
				Name: "mysql:mysqld/datadir", Type: conftypes.TypeFilePath,
				Has: true, Sig: 0x1234567890abcdef,
				Hist: []detect.PlanSpecHistEntry{
					{Value: "/var/lib/mysql", Count: 10},
					{Value: "/srv/mysql", Count: 2},
				},
			},
			{
				Name: "mysql:mysqld/datadir.owner", Type: conftypes.TypeUserName,
				Augmented: true, Has: true, Sig: 0xfeed,
				Hist: []detect.PlanSpecHistEntry{{Value: "mysql", Count: 12}},
			},
			{
				Name: "mysql:mysqld/skip-networking", Type: conftypes.TypeBoolean,
				Has: false, Sig: 7,
			},
		},
		Types: []detect.PlanSpecType{
			{Name: "mysql:mysqld/datadir", Type: conftypes.TypeFilePath},
			{Name: "mysql:mysqld/port", Type: conftypes.TypePortNumber},
		},
		Rules: []*rules.Rule{
			{
				Template: "T1", Spec: "owner(A) == B",
				AttrA: "mysql:mysqld/datadir", AttrB: "mysql:mysqld/datadir.owner",
				Support: 12, Valid: 11, Confidence: 0.9166666666666666,
				EntropyA: 0.45056120886630463, EntropyB: 0,
			},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	spec := testSpec()
	data := Encode(spec)
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, spec) {
		t.Fatalf("decode(encode(spec)) != spec\ngot:  %+v\nwant: %+v", got, spec)
	}
	// Re-encoding the decoded spec must reproduce the bytes exactly — the
	// format has one canonical encoding per spec.
	if again := Encode(got); string(again) != string(data) {
		t.Fatalf("encode(decode(encode(spec))) differs from encode(spec): %d vs %d bytes", len(again), len(data))
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a, b := Encode(testSpec()), Encode(testSpec())
	if string(a) != string(b) {
		t.Fatal("encoding the same spec twice produced different bytes")
	}
}

// TestGoldenFormat locks the byte format: any change to the encoding —
// field order, varint packing, string-table layout, checksum — fails this
// test and forces a deliberate version bump. Regenerate with -update after
// such a bump.
func TestGoldenFormat(t *testing.T) {
	data := Encode(testSpec())
	path := filepath.Join("testdata", "plan_v1.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if string(data) != string(want) {
		t.Fatalf("encoded bytes diverge from %s (%d vs %d bytes); if the format change is intentional, bump Version and regenerate with -update",
			path, len(data), len(want))
	}
	if string(want[:4]) != magic {
		t.Fatalf("golden file does not start with magic %q", magic)
	}
	if v := binary.LittleEndian.Uint16(want[4:6]); v != Version {
		t.Fatalf("golden file version %d, want %d", v, Version)
	}
}

// refixCRC recomputes the trailer checksum so a deliberately corrupted
// payload reaches the parser instead of dying at the checksum gate.
func refixCRC(data []byte) []byte {
	body := data[:len(data)-trailerSize]
	return binary.LittleEndian.AppendUint32(append([]byte(nil), body...), crc32.ChecksumIEEE(body))
}

func TestDecodeErrors(t *testing.T) {
	valid := Encode(testSpec())

	corrupt := func(mutate func([]byte) []byte) []byte {
		return mutate(append([]byte(nil), valid...))
	}
	cases := []struct {
		name    string
		input   []byte
		wantSub string
	}{
		{"empty", nil, "too short"},
		{"short", valid[:headerSize+trailerSize-1], "too short"},
		{"bad magic", corrupt(func(b []byte) []byte { b[0] = 'X'; return b }), "bad magic"},
		{"future version", corrupt(func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[4:6], Version+1)
			return refixCRC(b)
		}), "unsupported plan version"},
		{"reserved flags", corrupt(func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[6:8], 0x8000)
			return refixCRC(b)
		}), "unsupported plan flags"},
		{"checksum mismatch", corrupt(func(b []byte) []byte {
			b[len(b)/2] ^= 0xff
			return b
		}), "checksum mismatch"},
		{"truncated payload", refixCRC(append(append([]byte(nil), valid[:len(valid)-12]...), 0, 0, 0, 0)), ""},
		{"huge string count", corrupt(func(b []byte) []byte {
			// The string-table count is the first uvarint after the header;
			// overwrite it with a large varint (the old count occupied >= 1
			// byte, so this stays parseable garbage).
			b[headerSize] = 0xff
			b[headerSize+1] = 0xff
			b[headerSize+2] = 0x7f
			return refixCRC(b)
		}), "exceeds remaining"},
		{"trailing bytes", refixCRC(append(append([]byte(nil), valid[:len(valid)-trailerSize]...), 0xAA, 0, 0, 0, 0)), "trailing bytes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := Decode(tc.input)
			if err == nil {
				t.Fatalf("Decode accepted corrupt input (spec: %+v)", spec)
			}
			if !strings.HasPrefix(err.Error(), "planio: ") {
				t.Fatalf("error %q lacks the planio: prefix", err)
			}
			if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestDecodeBadStringRef corrupts a string reference past the table size;
// the decoder must reject it rather than index out of range.
func TestDecodeBadStringRef(t *testing.T) {
	spec := &detect.PlanSpec{
		Samples: 1,
		Attrs:   []detect.PlanSpecAttr{{Name: "a", Type: conftypes.TypeString}},
		Types:   []detect.PlanSpecType{},
		Rules:   []*rules.Rule{},
	}
	valid := Encode(spec)
	// The attribute section's first uvarint after samples/suspLimit/count is
	// the nameRef; find it by scanning for the encoded body. Rather than
	// hand-computing offsets, brute-force every single-byte bump and require
	// that none of them panics and any accepted mutant still decodes to a
	// structurally sane spec.
	for i := headerSize; i < len(valid)-trailerSize; i++ {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0x5f
		mut = refixCRC(mut)
		got, err := Decode(mut)
		if err != nil {
			continue
		}
		for _, a := range got.Attrs {
			_ = a.Name
		}
	}
}

// TestDecodeWithFullInterner locks the string-table load path's behavior
// when the process-global interner is at capacity: decoding must stay
// correct (pass-through strings, no eviction), and the table must not grow
// past its bound.
func TestDecodeWithFullInterner(t *testing.T) {
	for i := 0; intern.Len() < intern.MaxEntries && i < intern.MaxEntries*2; i++ {
		intern.String(fmt.Sprintf("planio-fill-%d", i))
	}
	if intern.Len() < intern.MaxEntries {
		t.Fatalf("could not fill interner: %d of %d", intern.Len(), intern.MaxEntries)
	}
	spec := testSpec()
	// Novel vocabulary that cannot already be in the table.
	spec.Attrs[0].Name = "planio-novel-attr-name-after-full"
	spec.Attrs[0].Hist[0].Value = "planio-novel-value-after-full"
	data := Encode(spec)
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode with full interner: %v", err)
	}
	if !reflect.DeepEqual(got, spec) {
		t.Fatal("decode with full interner corrupted the spec")
	}
	if got.Attrs[0].Name != "planio-novel-attr-name-after-full" {
		t.Fatalf("novel string mangled: %q", got.Attrs[0].Name)
	}
	if intern.Len() > intern.MaxEntries {
		t.Fatalf("interner grew past its bound: %d > %d", intern.Len(), intern.MaxEntries)
	}
}
