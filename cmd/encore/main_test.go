package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/sysimage"
	"repro/internal/telemetry"
)

func fixture(t *testing.T) (trainingDir, targetFile string) {
	t.Helper()
	images, err := corpus.Training("mysql", 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	trainingDir = t.TempDir()
	if err := sysimage.SaveDir(trainingDir, images); err != nil {
		t.Fatal(err)
	}
	target := corpus.RealWorldCases()[2].Build()
	data, err := target.MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	targetFile = filepath.Join(t.TempDir(), "target.json")
	if err := os.WriteFile(targetFile, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return trainingDir, targetFile
}

// TestRunLearnStatsShowsPruning asserts the -stats block surfaces the
// rule engine's columnar-index pruning counters alongside the existing
// pipeline counters.
func TestRunLearnStatsShowsPruning(t *testing.T) {
	training, _ := fixture(t)
	rulesFile := filepath.Join(t.TempDir(), "rules.json")

	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	runErr := runLearn([]string{"-training", training, "-rules", rulesFile, "-stats"})
	w.Close()
	os.Stderr = old
	out, readErr := io.ReadAll(r)
	if runErr != nil {
		t.Fatal(runErr)
	}
	if readErr != nil {
		t.Fatal(readErr)
	}
	for _, counter := range []string{
		"rules.candidates.validated",
		"rules.pruned.support",
		"rules.pruned.entropy",
	} {
		if !strings.Contains(string(out), counter) {
			t.Fatalf("-stats output missing %q:\n%s", counter, out)
		}
	}
}

func TestRunLearnWritesRules(t *testing.T) {
	training, _ := fixture(t)
	rulesFile := filepath.Join(t.TempDir(), "rules.json")
	if err := runLearn([]string{"-training", training, "-rules", rulesFile}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(rulesFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty rules file")
	}
}

func TestRunLearnWritesProfile(t *testing.T) {
	training, _ := fixture(t)
	profileFile := filepath.Join(t.TempDir(), "profile.json")
	if err := runLearn([]string{"-training", training, "-profile", profileFile}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(profileFile); err != nil {
		t.Fatal(err)
	}
}

func TestRunCheckWithTraining(t *testing.T) {
	training, target := fixture(t)
	if err := runCheck([]string{"-training", training, "-target", target, "-top", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCheckWithProfile(t *testing.T) {
	training, target := fixture(t)
	profileFile := filepath.Join(t.TempDir(), "profile.json")
	if err := runLearn([]string{"-training", training, "-profile", profileFile}); err != nil {
		t.Fatal(err)
	}
	if err := runCheck([]string{"-profile", profileFile, "-target", target}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAssembleWritesCSV(t *testing.T) {
	training, _ := fixture(t)
	csvFile := filepath.Join(t.TempDir(), "data.csv")
	if err := runAssemble([]string{"-training", training, "-csv", csvFile}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csvFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty CSV")
	}
}

func TestRunArgumentValidation(t *testing.T) {
	if err := runLearn([]string{}); err == nil {
		t.Fatal("learn without -training should error")
	}
	if err := runCheck([]string{"-target", "x.json"}); err == nil {
		t.Fatal("check without knowledge source should error")
	}
	if err := runCheck([]string{"-training", "a", "-profile", "b", "-target", "x.json"}); err == nil {
		t.Fatal("check with both knowledge sources should error")
	}
	if err := runAssemble([]string{}); err == nil {
		t.Fatal("assemble without -training should error")
	}
	if err := runCheck([]string{"-profile", "/no/such.json", "-target", "/no/such.json"}); err == nil {
		t.Fatal("missing files should error")
	}
}

func TestRunWithCustomization(t *testing.T) {
	training, target := fixture(t)
	customFile := filepath.Join(t.TempDir(), "custom.txt")
	custom := "$$TypeDeclaration\nDataDir\n$$TypeInference\nDataDir (value): { matches(value, 'mysql') && hasPrefix(value, '/') }\n"
	if err := os.WriteFile(customFile, []byte(custom), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runCheck([]string{"-training", training, "-target", target, "-custom", customFile}); err != nil {
		t.Fatal(err)
	}
	if err := runCheck([]string{"-training", training, "-target", target, "-custom", "/missing.txt"}); err == nil {
		t.Fatal("missing customization file should error")
	}
}

func TestRunScan(t *testing.T) {
	training, _ := fixture(t)
	// Scan a small fleet containing one broken image.
	targets := t.TempDir()
	images, err := corpus.Training("mysql", 3, 91)
	if err != nil {
		t.Fatal(err)
	}
	broken := corpus.RealWorldCases()[2].Build()
	images = append(images, broken)
	if err := sysimage.SaveDir(targets, images); err != nil {
		t.Fatal(err)
	}
	if err := runScan([]string{"-training", training, "-targets", targets}); err != nil {
		t.Fatal(err)
	}
	// Profile-based scan.
	profileFile := filepath.Join(t.TempDir(), "p.json")
	if err := runLearn([]string{"-training", training, "-profile", profileFile}); err != nil {
		t.Fatal(err)
	}
	if err := runScan([]string{"-profile", profileFile, "-targets", targets}); err != nil {
		t.Fatal(err)
	}
	// Argument validation.
	if err := runScan([]string{"-targets", targets}); err == nil {
		t.Fatal("scan without knowledge source should error")
	}
	if err := runScan([]string{"-training", training}); err == nil {
		t.Fatal("scan without targets should error")
	}
}

// TestRunScanObservabilityExports is the acceptance-criterion test for
// the telemetry exporters: one scan producing a versioned JSON snapshot
// whose per-image scan histogram has non-zero quantiles, plus a loadable
// Chrome trace with at least the batch span.
func TestRunScanObservabilityExports(t *testing.T) {
	training, _ := fixture(t)
	targets := t.TempDir()
	images, err := corpus.Training("mysql", 4, 91)
	if err != nil {
		t.Fatal(err)
	}
	if err := sysimage.SaveDir(targets, images); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "stats.json")
	trace := filepath.Join(t.TempDir(), "trace.json")
	err = runScan([]string{
		"-training", training, "-targets", targets,
		"-stats-json", out, "-trace-out", trace,
	})
	if err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Version    int `json:"version"`
		Histograms []struct {
			Name      string `json:"name"`
			Count     uint64 `json:"count"`
			P50Micros int64  `json:"p50Micros"`
			P99Micros int64  `json:"p99Micros"`
		} `json:"histograms"`
		Spans []struct {
			Name string `json:"name"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("stats JSON does not parse: %v", err)
	}
	if snap.Version != 2 {
		t.Fatalf("snapshot version = %d, want 2", snap.Version)
	}
	found := false
	for _, h := range snap.Histograms {
		if h.Name != "scan.image.scan" {
			continue
		}
		found = true
		if h.Count != 4 || h.P50Micros <= 0 || h.P99Micros <= 0 {
			t.Fatalf("scan histogram = %+v, want count 4 and non-zero p50/p99", h)
		}
	}
	if !found {
		t.Fatalf("no scan.image.scan histogram in %s", data)
	}
	batchSpan := false
	for _, sp := range snap.Spans {
		if sp.Name == "scan.batch" {
			batchSpan = true
		}
	}
	if !batchSpan {
		t.Fatal("no scan.batch span in snapshot")
	}

	traceData, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceData, &tf); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	batchEvent := false
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "X" && ev.Name == "scan.batch" {
			batchEvent = true
		}
	}
	if !batchEvent {
		t.Fatalf("no scan.batch complete event in trace: %s", traceData)
	}
}

// fetchURL GETs a live-service endpoint during an acceptance test.
func fetchURL(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(body)
}

// promValue extracts the sample value of a label-less metric from an
// exposition document (-1 when absent).
func promValue(text, name string) int64 {
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			n, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				return -1
			}
			return n
		}
	}
	return -1
}

// TestRunScanServeLiveMetrics is the acceptance-criterion test for the
// live metrics service: a real `encore scan -serve :0` run is probed over
// HTTP at two deterministic points — listener-up (/healthz reports the
// scan phase) and pipeline-complete-but-still-serving (/metrics) — and the
// fetched exposition must be well-formed, report a non-zero
// encore_scan_images_total, keep its histogram bucket series cumulative,
// and agree exactly with the -stats-json snapshot written for the same
// run.
func TestRunScanServeLiveMetrics(t *testing.T) {
	training, _ := fixture(t)
	targets := t.TempDir()
	images, err := corpus.Training("mysql", 5, 91)
	if err != nil {
		t.Fatal(err)
	}
	if err := sysimage.SaveDir(targets, images); err != nil {
		t.Fatal(err)
	}

	var health, metrics string
	obsHooks = telemetry.ServeHooks{
		OnServe: func(srv *telemetry.Server) {
			health = fetchURL(t, "http://"+srv.Addr()+"/healthz")
		},
		BeforeShutdown: func(srv *telemetry.Server) {
			metrics = fetchURL(t, "http://"+srv.Addr()+"/metrics")
		},
	}
	defer func() { obsHooks = telemetry.ServeHooks{} }()

	statsOut := filepath.Join(t.TempDir(), "stats.json")
	err = runScan([]string{
		"-training", training, "-targets", targets,
		"-serve", "127.0.0.1:0", "-stats-json", statsOut,
	})
	if err != nil {
		t.Fatal(err)
	}

	var h struct {
		Status string `json:"status"`
		Phase  string `json:"phase"`
	}
	if err := json.Unmarshal([]byte(health), &h); err != nil {
		t.Fatalf("/healthz does not parse: %v: %q", err, health)
	}
	if h.Status != "ok" || h.Phase != "scan" {
		t.Fatalf("/healthz at startup = %+v, want status ok in phase scan", h)
	}

	scanned := promValue(metrics, "encore_scan_images_total")
	if scanned != 5 {
		t.Fatalf("encore_scan_images_total = %d, want 5\n%s", scanned, metrics)
	}
	if !strings.Contains(metrics, `encore_phase{phase="done"} 1`) {
		t.Fatalf("/metrics after the run missing the done phase:\n%s", metrics)
	}
	if promValue(metrics, "encore_goroutines") <= 0 || promValue(metrics, "encore_heap_bytes") <= 0 {
		t.Fatalf("/metrics missing runtime sampler gauges:\n%s", metrics)
	}
	if promValue(metrics, "encore_progress_done") != 5 || promValue(metrics, "encore_progress_total") != 5 {
		t.Fatalf("/metrics progress gauges wrong:\n%s", metrics)
	}

	// Bucket series must be cumulative within each histogram family.
	var prev int64
	var inBuckets string
	for _, line := range strings.Split(metrics, "\n") {
		if !strings.Contains(line, "_bucket{le=") {
			continue
		}
		family := line[:strings.Index(line, "{")]
		n, err := strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
		if err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if family == inBuckets && n < prev {
			t.Fatalf("bucket series not cumulative at %q", line)
		}
		inBuckets, prev = family, n
	}

	// The live exposition fetched before shutdown and the exported JSON
	// snapshot describe the same completed run: counters must agree.
	data, err := os.ReadFile(statsOut)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Version  int    `json:"version"`
		Phase    string `json:"phase"`
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
		Runtime *struct {
			Samples []struct {
				HeapBytes uint64 `json:"heapBytes"`
			} `json:"samples"`
		} `json:"runtime"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Version != 2 || snap.Phase != "done" {
		t.Fatalf("snapshot version/phase = %d/%q, want 2/done", snap.Version, snap.Phase)
	}
	if snap.Runtime == nil || len(snap.Runtime.Samples) == 0 {
		t.Fatal("snapshot lost the runtime sampler section")
	}
	counterNames := map[string]string{
		"scan.images.scanned":   "encore_scan_images_total",
		"scan.findings.emitted": "encore_scan_findings_total",
	}
	for _, c := range snap.Counters {
		prom, ok := counterNames[c.Name]
		if !ok {
			continue
		}
		if got := promValue(metrics, prom); got != c.Value {
			t.Fatalf("%s: live exposition says %d, exported snapshot says %d", prom, got, c.Value)
		}
	}
}

// TestRunScanStatsJSONStdout checks `-stats-json -` streams the snapshot
// to stdout instead of creating a file named "-".
func TestRunScanStatsJSONStdout(t *testing.T) {
	training, _ := fixture(t)
	targets := t.TempDir()
	images, err := corpus.Training("mysql", 2, 13)
	if err != nil {
		t.Fatal(err)
	}
	if err := sysimage.SaveDir(targets, images); err != nil {
		t.Fatal(err)
	}

	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	outCh := make(chan []byte)
	go func() {
		data, _ := io.ReadAll(r)
		outCh <- data
	}()
	runErr := runScan([]string{"-training", training, "-targets", targets, "-stats-json", "-"})
	w.Close()
	os.Stdout = old
	out := string(<-outCh)
	if runErr != nil {
		t.Fatal(runErr)
	}
	idx := strings.Index(out, "{\n  \"version\"")
	if idx < 0 {
		t.Fatalf("no snapshot document on stdout:\n%s", out)
	}
	var snap struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal([]byte(out[idx:]), &snap); err != nil {
		t.Fatalf("stdout snapshot does not parse: %v", err)
	}
	if snap.Version != 2 {
		t.Fatalf("stdout snapshot version = %d, want 2", snap.Version)
	}
	if _, err := os.Stat(filepath.Join(wd, "-")); !os.IsNotExist(err) {
		t.Fatalf(`a file named "-" was created (stat err: %v)`, err)
	}
}

// TestRunScanProgress captures stderr and checks the -progress reporter
// prints its final done/total line.
func TestRunScanProgress(t *testing.T) {
	training, _ := fixture(t)
	targets := t.TempDir()
	images, err := corpus.Training("mysql", 3, 55)
	if err != nil {
		t.Fatal(err)
	}
	if err := sysimage.SaveDir(targets, images); err != nil {
		t.Fatal(err)
	}
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	runErr := runScan([]string{"-training", training, "-targets", targets, "-progress"})
	w.Close()
	os.Stderr = old
	out, readErr := io.ReadAll(r)
	if runErr != nil {
		t.Fatal(runErr)
	}
	if readErr != nil {
		t.Fatal(readErr)
	}
	if !strings.Contains(string(out), "scan: 3/3 images") {
		t.Fatalf("progress output missing final line:\n%s", out)
	}
}

// TestRunLearnPprof checks the runtime-profiling hooks write profiles and
// reject unknown modes.
func TestRunLearnPprof(t *testing.T) {
	training, _ := fixture(t)
	for _, mode := range []string{"cpu", "heap"} {
		pprofFile := filepath.Join(t.TempDir(), mode+".pprof")
		err := runLearn([]string{"-training", training, "-pprof", mode, "-pprof-out", pprofFile})
		if err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		info, err := os.Stat(pprofFile)
		if err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		if info.Size() == 0 {
			t.Fatalf("mode %s: empty profile", mode)
		}
	}
	if err := runLearn([]string{"-training", training, "-pprof", "goroutine"}); err == nil {
		t.Fatal("unsupported -pprof mode should error")
	}
}

func TestRunRules(t *testing.T) {
	training, _ := fixture(t)
	if err := runRules([]string{"-training", training}); err != nil {
		t.Fatal(err)
	}
	profileFile := filepath.Join(t.TempDir(), "p.json")
	if err := runLearn([]string{"-training", training, "-profile", profileFile}); err != nil {
		t.Fatal(err)
	}
	if err := runRules([]string{"-profile", profileFile}); err != nil {
		t.Fatal(err)
	}
	if err := runRules([]string{}); err == nil {
		t.Fatal("rules without knowledge source should error")
	}
	if err := runRules([]string{"-profile", "/missing.json"}); err == nil {
		t.Fatal("missing profile should error")
	}
}

func TestRunCollect(t *testing.T) {
	root := t.TempDir()
	os.MkdirAll(filepath.Join(root, "etc"), 0o755)
	os.WriteFile(filepath.Join(root, "etc/passwd"), []byte("root:x:0:0:r:/root:/bin/sh\n"), 0o644)
	os.WriteFile(filepath.Join(root, "etc/my.cnf"), []byte("[mysqld]\nuser = root\n"), 0o644)
	out := filepath.Join(t.TempDir(), "img.json")
	err := runCollect([]string{"-root", root, "-id", "tree-1", "-app", "mysql=etc/my.cnf", "-out", out})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	img, err := sysimage.LoadJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if img.ID != "tree-1" || img.ConfigFor("mysql") == nil || !img.UserExists("root") {
		t.Fatalf("collected image incomplete: %+v", img.ID)
	}
	// Argument validation.
	if err := runCollect([]string{"-root", root}); err == nil {
		t.Fatal("missing flags should error")
	}
	if err := runCollect([]string{"-root", "/nope", "-id", "x", "-out", out}); err == nil {
		t.Fatal("missing root should error")
	}
}

func TestAppFlagsSet(t *testing.T) {
	a := appFlags{}
	if err := a.Set("mysql=etc/my.cnf"); err != nil || a["mysql"] != "etc/my.cnf" {
		t.Fatalf("Set = %v, map = %v", err, a)
	}
	if err := a.Set("badformat"); err == nil {
		t.Fatal("malformed app flag should error")
	}
	if err := a.Set("=x"); err == nil || a.String() == "" {
		t.Fatal("empty name should error; String should render")
	}
}

// TestRunScanFleetByteIdentical is the CLI half of the fleet determinism
// property: `encore scan -shards N` must print byte-identical stdout to
// the unsharded engine across topologies, corrupt images included.
func TestRunScanFleetByteIdentical(t *testing.T) {
	training, _ := fixture(t)
	targets := t.TempDir()
	images, err := corpus.Training("mysql", 6, 91)
	if err != nil {
		t.Fatal(err)
	}
	images = append(images, corpus.RealWorldCases()[2].Build())
	if err := sysimage.SaveDir(targets, images); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(targets, "corrupt.json"), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}

	capture := func(args ...string) string {
		t.Helper()
		oldOut, oldErr := os.Stdout, os.Stderr
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		os.Stdout, os.Stderr = w, devnull
		runErr := runScan(args)
		w.Close()
		os.Stdout, os.Stderr = oldOut, oldErr
		devnull.Close()
		out, readErr := io.ReadAll(r)
		if runErr != nil {
			t.Fatal(runErr)
		}
		if readErr != nil {
			t.Fatal(readErr)
		}
		return string(out)
	}

	want := capture("-training", training, "-targets", targets)
	if !strings.Contains(want, "FAILED") || !strings.Contains(want, "scanned 8 images") {
		t.Fatalf("baseline output unexpected:\n%s", want)
	}
	for _, shards := range []string{"1", "2", "5"} {
		got := capture("-training", training, "-targets", targets, "-shards", shards)
		if got != want {
			t.Fatalf("-shards %s output diverged:\ngot:\n%s\nwant:\n%s", shards, got, want)
		}
	}

	// Synthetic fleets scale a (clean) corpus; the summary must count the
	// synthetic size, not the corpus size.
	clean := t.TempDir()
	if err := sysimage.SaveDir(clean, images); err != nil {
		t.Fatal(err)
	}
	syn := capture("-training", training, "-targets", clean, "-fleet", "40", "-shards", "2")
	if !strings.Contains(syn, "scanned 40 images") {
		t.Fatalf("-fleet 40 summary wrong:\n%s", syn)
	}

	// -strict is incompatible with the out-of-order coordinator.
	if err := runScan([]string{"-training", training, "-targets", targets, "-shards", "2", "-strict"}); err == nil {
		t.Fatal("-strict -shards should be rejected")
	}
}
