package dataset

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/conftypes"
)

// freshOracle rebuilds an equivalent dataset from scratch — same attribute
// declarations in the same order, same rows — so its lazily built index is
// the from-scratch reference for a delta-maintained one.
func freshOracle(d *Dataset) *Dataset {
	o := New()
	for _, a := range d.Attributes() {
		o.DeclareAttr(a.Name, a.Type, a.Augmented)
	}
	o.Rows = append(o.Rows, d.Rows...)
	return o
}

// requireIndexEqual compares two columnar snapshots attribute by attribute
// — presence, instance counts, exact float entropy, cardinality, bit-level
// co-support, and the per-row value columns. Delta snapshots may carry
// shorter bitsets for untouched columns; equality is on the semantics, not
// the physical word count.
func requireIndexEqual(t *testing.T, step string, got, want *Index, attrs []Attribute) {
	t.Helper()
	if got.Rows() != want.Rows() {
		t.Fatalf("%s: rows = %d, want %d", step, got.Rows(), want.Rows())
	}
	for _, a := range attrs {
		if g, w := got.Present(a.Name), want.Present(a.Name); g != w {
			t.Fatalf("%s: Present(%s) = %d, want %d", step, a.Name, g, w)
		}
		if g, w := got.Instances(a.Name), want.Instances(a.Name); g != w {
			t.Fatalf("%s: Instances(%s) = %d, want %d", step, a.Name, g, w)
		}
		if g, w := got.Entropy(a.Name), want.Entropy(a.Name); g != w {
			t.Fatalf("%s: Entropy(%s) = %v, want %v (floats must match exactly)", step, a.Name, g, w)
		}
		if g, w := got.Cardinality(a.Name), want.Cardinality(a.Name); g != w {
			t.Fatalf("%s: Cardinality(%s) = %d, want %d", step, a.Name, g, w)
		}
		gv, wv := got.RowValues(a.Name), want.RowValues(a.Name)
		for r := 0; r < want.Rows(); r++ {
			var gRow, wRow []string
			if r < len(gv) {
				gRow = gv[r]
			}
			if r < len(wv) {
				wRow = wv[r]
			}
			if len(gRow) != len(wRow) {
				t.Fatalf("%s: RowValues(%s)[%d] lengths differ: %v vs %v", step, a.Name, r, gRow, wRow)
			}
			for k := range gRow {
				if gRow[k] != wRow[k] {
					t.Fatalf("%s: RowValues(%s)[%d][%d] = %q, want %q", step, a.Name, r, k, gRow[k], wRow[k])
				}
			}
		}
	}
	for _, a := range attrs {
		for _, b := range attrs {
			if g, w := got.CoSupport(a.Name, b.Name), want.CoSupport(a.Name, b.Name); g != w {
				t.Fatalf("%s: CoSupport(%s, %s) = %d, want %d", step, a.Name, b.Name, g, w)
			}
		}
	}
}

// randomRow builds a row drawing attributes and values from small pools so
// columns overlap across rows (co-support > 0) and histograms repeat
// values (entropy exercises the memo path).
func randomRow(rng *rand.Rand, id string, attrPool []string) *Row {
	row := &Row{SystemID: id, Cells: make(map[string][]string)}
	for _, attr := range attrPool {
		if rng.Intn(3) == 0 {
			continue // absent on this system
		}
		n := 1 + rng.Intn(2)
		for k := 0; k < n; k++ {
			row.Cells[attr] = append(row.Cells[attr], fmt.Sprintf("v%d", rng.Intn(4)))
		}
	}
	return row
}

// TestDeltaIndexMatchesRebuild drives a randomized add/retire sequence and
// checks after every mutation that the delta-maintained index is
// indistinguishable from one built from scratch over the same rows.
func TestDeltaIndexMatchesRebuild(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			attrPool := []string{"app:a", "app:b", "app:c", "app:d", "app:e"}
			d := New()
			next := 0
			newRows := func(n int) []*Row {
				rows := make([]*Row, n)
				for i := range rows {
					rows[i] = randomRow(rng, fmt.Sprintf("sys-%d", next), attrPool)
					next++
				}
				return rows
			}

			d.AddRows(newRows(6)...)
			// Materialize the snapshot so subsequent mutations maintain it
			// by delta rather than rebuilding lazily.
			d.Index()

			for step := 0; step < 30; step++ {
				label := fmt.Sprintf("step %d", step)
				switch rng.Intn(3) {
				case 0: // add a batch
					d.AddRows(newRows(1 + rng.Intn(3))...)
				case 1: // retire a random subset
					if len(d.Rows) > 2 {
						var ids []string
						for _, row := range d.Rows {
							if rng.Intn(4) == 0 {
								ids = append(ids, row.SystemID)
							}
						}
						ids = append(ids, "no-such-system")
						d.RetireRows(ids...)
					}
				case 2: // add-then-retire leaving the row count unchanged
					batch := newRows(2)
					d.AddRows(batch...)
					d.RetireRows(d.Rows[0].SystemID, d.Rows[1].SystemID)
				}
				if d.idx.Load() == nil {
					t.Fatalf("%s: mutation dropped the cached index instead of maintaining it", label)
				}
				requireIndexEqual(t, label, d.Index(), freshOracle(d).Index(), d.Attributes())
			}
		})
	}
}

// TestAddRowsDeclaresNewAttrs locks the declaration semantics: attributes
// first seen in an added batch are declared sorted by name with type
// String (exactly as Add would), and existing declarations are untouched.
func TestAddRowsDeclaresNewAttrs(t *testing.T) {
	d := New()
	d.DeclareAttr("app:known", conftypes.TypeFilePath, false)
	d.Index() // cache a snapshot before the columns exist in it
	d.AddRows(
		&Row{SystemID: "s1", Cells: map[string][]string{
			"app:zeta": {"1"}, "app:alpha": {"2"}, "app:known": {"/x"},
		}},
	)
	attrs := d.Attributes()
	if len(attrs) != 3 {
		t.Fatalf("attrs = %d, want 3", len(attrs))
	}
	if attrs[0].Name != "app:known" || attrs[0].Type != conftypes.TypeFilePath {
		t.Fatalf("existing declaration disturbed: %+v", attrs[0])
	}
	if attrs[1].Name != "app:alpha" || attrs[2].Name != "app:zeta" {
		t.Fatalf("new attrs not declared in sorted order: %v, %v", attrs[1].Name, attrs[2].Name)
	}
	if attrs[1].Type != conftypes.TypeString {
		t.Fatalf("new attr type = %v, want String", attrs[1].Type)
	}
	if d.Present("app:known") != 1 || d.Present("app:zeta") != 1 {
		t.Fatal("delta index missed cells of the added row")
	}
}

// TestRetireRowsReturnsRemoved locks RetireRows' contract: removed rows
// come back in original order, unknown IDs are ignored, and surviving row
// order is preserved.
func TestRetireRowsReturnsRemoved(t *testing.T) {
	d := New()
	for i := 0; i < 5; i++ {
		r := d.NewRow(fmt.Sprintf("s%d", i))
		d.Add(r, "app:x", fmt.Sprintf("v%d", i))
	}
	removed := d.RetireRows("s3", "s1", "nope")
	if len(removed) != 2 || removed[0].SystemID != "s1" || removed[1].SystemID != "s3" {
		t.Fatalf("removed = %v", removed)
	}
	var left []string
	for _, r := range d.Rows {
		left = append(left, r.SystemID)
	}
	if fmt.Sprint(left) != "[s0 s2 s4]" {
		t.Fatalf("surviving rows = %v", left)
	}
	if d.RetireRows("s1") != nil {
		t.Fatal("retiring an already-retired ID should remove nothing")
	}
}

// TestDeltaSharesUntouchedColumns pins the copy-on-write property the
// whole delta path is built around: a column absent from every added row
// keeps its exact *colStats pointer in the new snapshot.
func TestDeltaSharesUntouchedColumns(t *testing.T) {
	d := New()
	r1 := d.NewRow("s1")
	d.Add(r1, "app:x", "1")
	d.Add(r1, "app:y", "2")
	old := d.Index()
	d.AddRows(&Row{SystemID: "s2", Cells: map[string][]string{"app:x": {"3"}}})
	nix := d.Index()
	if nix == old {
		t.Fatal("AddRows did not produce a new snapshot")
	}
	if nix.cols["app:y"] != old.cols["app:y"] {
		t.Fatal("untouched column was copied instead of shared")
	}
	if nix.cols["app:x"] == old.cols["app:x"] {
		t.Fatal("touched column was shared instead of copied")
	}
	if old.Present("app:x") != 1 || nix.Present("app:x") != 2 {
		t.Fatal("old snapshot mutated or new snapshot wrong")
	}
}
