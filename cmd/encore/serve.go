// The serve subcommand: a resident scan daemon. Instead of paying
// learn-or-load per invocation like check/scan, serve loads compiled
// plans once into a versioned in-memory registry and answers scan
// requests over HTTP until signalled to stop:
//
//	encore serve -plans DIR [-addr HOST:PORT] [-alerts POLICY.yaml] [-shutdown-timeout DUR]
//
//	POST /v1/scan/{app}       scan an image (JSON body, or ?path=FILE)
//	POST /v1/profiles/{app}   hot-swap a plan (binary plan or profile JSON)
//	GET  /v1/status           registry versions + rolling latency quantiles
//	GET  /v1/alerts           recent severity-routed alerts with delivery outcomes
//	GET  /healthz /readyz     liveness / readiness
//	GET  /metrics /snapshot   Prometheus text / JSON telemetry snapshot
//
// SIGHUP re-scans -plans and swaps every loadable plan in place; SIGTERM
// and SIGINT drain in-flight requests (bounded by -shutdown-timeout),
// flush the final telemetry snapshot, and exit 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	encore "repro"
	"repro/internal/alert"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

func runServe(args []string) (err error) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for a random port)")
	alertsFile := fs.String("alerts", "", "alerting policy YAML; findings fan out to its notifiers (see examples/alerts.yaml)")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening (process managers, tests)")
	plansDir := fs.String("plans", "", "directory of <app>.plan compiled plans to preload; SIGHUP re-scans it")
	shutdownTimeout := fs.Duration("shutdown-timeout", 10*time.Second, "max time to drain in-flight requests on SIGTERM/SIGINT")
	customFile := fs.String("custom", "", "customization file applied when compiling uploaded profiles")
	statsJSON := fs.String("stats-json", "", "write the final JSON telemetry snapshot here on shutdown (- for stdout)")
	sampleEvery := fs.Duration("sample-every", telemetry.DefaultSampleInterval, "runtime sampler cadence (heap, GC, goroutines)")
	logFormat := fs.String("log", "text", "structured log format: "+telemetry.LogFormats)
	logLevel := fs.String("log-level", "info", "structured log level: debug|info|warn|error")
	spanCap := fs.Int("span-cap", 8192, "max request spans retained in memory (oldest half shed on overflow)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	log, err := telemetry.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		return err
	}
	rec := telemetry.New()
	rec.SetPhase("serve")
	rec.SetBuildInfo(version)
	rec.SetSpanCap(*spanCap)
	sampler := telemetry.NewSampler(*sampleEvery, 0)
	rec.AttachSampler(sampler)
	sampler.Start()
	defer sampler.Stop()

	fw, err := newFramework(*customFile)
	if err != nil {
		return err
	}
	fw.SetTelemetry(rec)
	fw.SetLogger(log)
	loadProfile := func(data []byte) (*encore.Plan, error) {
		p, err := encore.LoadProfile(data)
		if err != nil {
			return nil, err
		}
		return fw.CompilePlanFromProfile(p), nil
	}

	var alerts *alert.Pipeline
	if *alertsFile != "" {
		policy, err := alert.LoadPolicyFile(*alertsFile)
		if err != nil {
			return err
		}
		alerts, err = alert.NewPipeline(alert.Options{Policy: policy, Rec: rec, Log: log})
		if err != nil {
			return err
		}
		log.Info("alerting enabled", "policy", *alertsFile,
			"notifiers", len(policy.Notifiers), "rules", len(policy.Rules))
	}

	d, err := serve.New(serve.Options{
		Addr:        *addr,
		Rec:         rec,
		Log:         log,
		LoadPlan:    fw.LoadPlan,
		LoadProfile: loadProfile,
		Version:     version,
		Alerts:      alerts,
	})
	if err != nil {
		// The daemon never started, so nothing will drain the pipeline.
		alerts.Shutdown(context.Background())
		return err
	}
	defer d.Close()

	if *plansDir != "" {
		n, err := d.Registry().LoadDir(*plansDir, fw.LoadPlan)
		if err != nil {
			if n == 0 {
				return err
			}
			log.Warn("some plans failed to load", "dir", *plansDir, "loaded", n, "err", err)
		}
		log.Info("plans preloaded", "dir", *plansDir, "loaded", n)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(d.Addr()+"\n"), 0o644); err != nil {
			return err
		}
	}
	log.Info("scan daemon listening", "addr", d.Addr(), "version", version,
		"apps", d.Registry().Len(),
		"endpoints", "/v1/scan /v1/profiles /v1/status /v1/alerts /healthz /readyz /metrics")

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	defer signal.Stop(sigs)
	for sig := range sigs {
		if sig == syscall.SIGHUP {
			if *plansDir == "" {
				log.Warn("SIGHUP ignored: no -plans directory to re-scan")
				continue
			}
			n, err := d.Registry().LoadDir(*plansDir, fw.LoadPlan)
			if err != nil {
				log.Warn("plan re-scan failed", "dir", *plansDir, "loaded", n, "err", err)
				continue
			}
			log.Info("plans reloaded", "dir", *plansDir, "loaded", n)
			continue
		}
		log.Info("shutdown signal received", "signal", sig.String(),
			"timeout", shutdownTimeout.String())
		break
	}

	// Graceful drain: readiness flips first, in-flight requests finish
	// bounded by the timeout, then the final snapshot is flushed.
	ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		log.Warn("drain incomplete, connections closed", "err", err)
	}
	if alerts != nil {
		s := alerts.Stats()
		log.Info("alert pipeline drained", "published", s.Published,
			"delivered", s.Delivered, "failed", s.Failed,
			"dropped", s.Dropped, "suppressed", s.Suppressed)
	}
	sampler.Stop()
	rec.SetPhase("done")
	if *statsJSON != "" {
		if err := rec.Snapshot().WriteJSON(*statsJSON); err != nil {
			return err
		}
	}
	log.Info("scan daemon stopped", "addr", d.Addr())
	return nil
}

// printVersion implements `encore -version`: the -ldflags-stamped build
// version (also exposed as encore_build_info on /metrics) plus toolchain.
func printVersion() {
	fmt.Printf("encore %s %s\n", version, goVersion())
}
