package assemble

import (
	"strings"
	"testing"

	"repro/internal/conftypes"
	"repro/internal/sysimage"
)

// mysqlImage builds an image with a well-formed MySQL configuration whose
// datadir is owned by the configured user.
func mysqlImage(id, datadir, user string) *sysimage.Image {
	im := sysimage.New(id)
	im.Users["root"] = &sysimage.User{Name: "root", UID: 0, GID: 0, IsAdmin: true}
	im.Users[user] = &sysimage.User{Name: user, UID: 27, GID: 27}
	im.Groups["root"] = &sysimage.Group{Name: "root", GID: 0}
	im.Groups[user] = &sysimage.Group{Name: user, GID: 27}
	im.Services = []sysimage.Service{{Name: "mysql", Port: 3306, Protocol: "tcp"}}
	im.AddDir(datadir, user, user, 0o750)
	im.AddRegular(datadir+"/ibdata1", user, user, 0o660, 4096)
	im.OS = sysimage.OSInfo{DistName: "centos", Version: "6.3", SELinux: "disabled", HostName: id, IPAddress: "10.0.0.5", FSType: "ext4"}
	im.SetConfig("mysql", "/etc/my.cnf",
		"[mysqld]\ndatadir = "+datadir+"\nuser = "+user+"\nport = 3306\nbind-address = 10.0.0.5\nmax_allowed_packet = 16M\n")
	return im
}

func TestAssembleTrainingTypesAndAugmentation(t *testing.T) {
	images := []*sysimage.Image{
		mysqlImage("a", "/var/lib/mysql", "mysql"),
		mysqlImage("b", "/data/mysql", "mysql"),
		mysqlImage("c", "/var/lib/mysql", "mysql"),
	}
	d, err := New().AssembleTraining(images)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 3 {
		t.Fatalf("rows = %d", len(d.Rows))
	}
	attr, ok := d.Attr("mysql:mysqld/datadir")
	if !ok || attr.Type != conftypes.TypeFilePath {
		t.Fatalf("datadir attr = %+v ok=%v", attr, ok)
	}
	if a, _ := d.Attr("mysql:mysqld/user"); a.Type != conftypes.TypeUserName {
		t.Fatalf("user type = %s", a.Type)
	}
	if a, _ := d.Attr("mysql:mysqld/port"); a.Type != conftypes.TypePortNumber {
		t.Fatalf("port type = %s", a.Type)
	}
	if a, _ := d.Attr("mysql:mysqld/max_allowed_packet"); a.Type != conftypes.TypeSize {
		t.Fatalf("packet type = %s", a.Type)
	}
	// Augmented attributes exist and carry environment facts.
	owner, ok := d.Rows[0].First("mysql:mysqld/datadir.owner")
	if !ok || owner != "mysql" {
		t.Fatalf("datadir.owner = %q ok=%v", owner, ok)
	}
	kind, _ := d.Rows[0].First("mysql:mysqld/datadir.type")
	if kind != "dir" {
		t.Fatalf("datadir.type = %q", kind)
	}
	if a, _ := d.Attr("mysql:mysqld/datadir.owner"); !a.Augmented || a.Type != conftypes.TypeUserName {
		t.Fatalf("augmented attr meta = %+v", a)
	}
	// IP augmentation.
	local, ok := d.Rows[0].First("mysql:mysqld/bind-address.Local")
	if !ok || local != "true" {
		t.Fatalf("bind-address.Local = %q ok=%v", local, ok)
	}
	// Table 5b env attrs.
	if v, ok := d.Rows[0].First("OS.DistName"); !ok || v != "centos" {
		t.Fatalf("OS.DistName = %q ok=%v", v, ok)
	}
	// HW absent: no MemSize column value.
	if _, ok := d.Rows[0].First("MemSize"); ok {
		t.Fatal("MemSize must be absent for dormant images")
	}
}

func TestAssembleHardwarePresent(t *testing.T) {
	im := mysqlImage("hw", "/var/lib/mysql", "mysql")
	im.HW = sysimage.Hardware{Present: true, CPUThreads: 8, CPUFreqMHz: 2400, MemBytes: 16 << 30, DiskBytes: 100 << 30}
	d, err := New().AssembleTraining([]*sysimage.Image{im})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := d.Rows[0].First("MemSize"); !ok || v != "16G" {
		t.Fatalf("MemSize = %q ok=%v", v, ok)
	}
	if a, _ := d.Attr("MemSize"); a.Type != conftypes.TypeSize || !a.Augmented {
		t.Fatalf("MemSize attr = %+v", a)
	}
	if v, _ := d.Rows[0].First("CPU.Threads"); v != "8" {
		t.Fatalf("CPU.Threads = %q", v)
	}
}

func TestAssembleTargetUsesTrainingTypes(t *testing.T) {
	training, err := New().AssembleTraining([]*sysimage.Image{
		mysqlImage("a", "/var/lib/mysql", "mysql"),
		mysqlImage("b", "/data/mysql", "mysql"),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Target has a broken datadir (a file, not a dir) — the attribute must
	// still be typed FilePath from training even though the target value
	// wouldn't verify.
	target := mysqlImage("t", "/var/lib/mysql", "mysql")
	target.AddRegular("/var/lib/mysql.bad", "mysql", "mysql", 0o644, 1)
	target.SetConfig("mysql", "/etc/my.cnf",
		"[mysqld]\ndatadir = /var/lib/mysql.bad\nuser = mysql\nport = 3306\nbind-address = 10.0.0.5\nmax_allowed_packet = 16M\n")
	a := New()
	td, err := a.AssembleTarget(target, training)
	if err != nil {
		t.Fatal(err)
	}
	if len(td.Rows) != 1 {
		t.Fatalf("target rows = %d", len(td.Rows))
	}
	attr, _ := td.Attr("mysql:mysqld/datadir")
	if attr.Type != conftypes.TypeFilePath {
		t.Fatalf("target datadir type = %s (must come from training)", attr.Type)
	}
	// The augmented .type should say "file" for the bad value.
	kind, ok := td.Rows[0].First("mysql:mysqld/datadir.type")
	if !ok || kind != "file" {
		t.Fatalf("datadir.type = %q ok=%v", kind, ok)
	}
}

func TestAssembleTargetUnseenAttr(t *testing.T) {
	training, _ := New().AssembleTraining([]*sysimage.Image{mysqlImage("a", "/var/lib/mysql", "mysql")})
	target := mysqlImage("t", "/var/lib/mysql", "mysql")
	target.SetConfig("mysql", "/etc/my.cnf", "[mysqld]\ndatadir = /var/lib/mysql\nuser = mysql\nbrand_new_opt = 42\n")
	td, err := New().AssembleTarget(target, training)
	if err != nil {
		t.Fatal(err)
	}
	attr, ok := td.Attr("mysql:mysqld/brand_new_opt")
	if !ok {
		t.Fatal("unseen attribute should be declared")
	}
	if attr.Type != conftypes.TypeNumber {
		t.Fatalf("unseen attr type = %s", attr.Type)
	}
}

func TestMultiArgEntriesBecomeArgColumns(t *testing.T) {
	im := sysimage.New("apache-1")
	im.Users["root"] = &sysimage.User{Name: "root", UID: 0, IsAdmin: true}
	im.Users["apache"] = &sysimage.User{Name: "apache", UID: 48, GID: 48}
	im.Groups["apache"] = &sysimage.Group{Name: "apache", GID: 48}
	im.AddDir("/etc/httpd", "root", "root", 0o755)
	im.AddRegular("/etc/httpd/modules/libphp5.so", "root", "root", 0o755, 10)
	im.SetConfig("apache", "/etc/httpd/conf/httpd.conf",
		"ServerRoot /etc/httpd\nLoadModule php5_module modules/libphp5.so\nUser apache\n")
	d, err := New().AssembleTraining([]*sysimage.Image{im})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Attr("apache:LoadModule/arg1"); !ok {
		t.Fatal("LoadModule/arg1 missing")
	}
	a2, ok := d.Attr("apache:LoadModule/arg2")
	if !ok || a2.Type != conftypes.TypePartialFilePath {
		t.Fatalf("LoadModule/arg2 = %+v ok=%v", a2, ok)
	}
	sr, _ := d.Attr("apache:ServerRoot")
	if sr.Type != conftypes.TypeFilePath {
		t.Fatalf("ServerRoot type = %s", sr.Type)
	}
}

func TestFlagEntriesGetOnValue(t *testing.T) {
	im := mysqlImage("f", "/var/lib/mysql", "mysql")
	im.SetConfig("mysql", "/etc/my.cnf", "[mysqld]\nskip-networking\nuser = mysql\n")
	d, err := New().AssembleTraining([]*sysimage.Image{im})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := d.Rows[0].First("mysql:mysqld/skip-networking")
	if !ok || v != "on" {
		t.Fatalf("flag value = %q ok=%v", v, ok)
	}
	if a, _ := d.Attr("mysql:mysqld/skip-networking"); a.Type != conftypes.TypeBoolean {
		t.Fatalf("flag type = %s", a.Type)
	}
}

func TestPatternValuesSkipAugmentation(t *testing.T) {
	im := mysqlImage("p", "/var/lib/mysql", "mysql")
	im.SetConfig("mysql", "/etc/my.cnf", "[mysqld]\ndatadir = /var/lib/mysql\nuser = mysql\nlog-bin = /var/log/mysql-bin.*\n")
	d, err := New().AssembleTraining([]*sysimage.Image{im})
	if err != nil {
		t.Fatal(err)
	}
	// Glob value should not get .owner etc.
	if _, ok := d.Rows[0].First("mysql:mysqld/log-bin.owner"); ok {
		t.Fatal("glob value must not be augmented")
	}
}

func TestParseErrorPropagates(t *testing.T) {
	im := mysqlImage("bad", "/var/lib/mysql", "mysql")
	im.SetConfig("mysql", "/etc/my.cnf", "[unterminated\n")
	if _, err := New().AssembleTraining([]*sysimage.Image{im}); err == nil {
		t.Fatal("parse error should propagate")
	}
	if _, err := New().AssembleTarget(im, nil); err == nil {
		t.Fatal("target parse error should propagate")
	}
}

func TestCustomAugmenterAndEnvAttr(t *testing.T) {
	a := New()
	a.AddAugmenter(conftypes.TypeUserName, Augmenter{
		Suffix: "shell",
		Type:   conftypes.TypeString,
		Compute: func(v string, im *sysimage.Image) (string, bool) {
			if u, ok := im.Users[v]; ok {
				return u.Shell, u.Shell != ""
			}
			return "", false
		},
	})
	a.AddEnvAttr(EnvAttr{
		Name: "Sys.Magic", Type: conftypes.TypeNumber,
		Compute: func(*sysimage.Image) (string, bool) { return "7", true },
	})
	im := mysqlImage("c", "/var/lib/mysql", "mysql")
	im.Users["mysql"].Shell = "/sbin/nologin"
	d, err := a.AssembleTraining([]*sysimage.Image{im})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := d.Rows[0].First("mysql:mysqld/user.shell"); !ok || v != "/sbin/nologin" {
		t.Fatalf("custom augment = %q ok=%v", v, ok)
	}
	if v, _ := d.Rows[0].First("Sys.Magic"); v != "7" {
		t.Fatalf("custom env attr = %q", v)
	}
}

func TestAppsIn(t *testing.T) {
	a := mysqlImage("a", "/var/lib/mysql", "mysql")
	b := sysimage.New("b")
	b.SetConfig("apache", "/etc/httpd/conf/httpd.conf", "Listen 80\n")
	apps := AppsIn([]*sysimage.Image{a, b})
	if len(apps) != 2 || apps[0] != "apache" || apps[1] != "mysql" {
		t.Fatalf("apps = %v", apps)
	}
}

func TestBaseEntryName(t *testing.T) {
	if got := BaseEntryName("mysql:mysqld/datadir"); got != "mysqld/datadir" {
		t.Fatalf("BaseEntryName = %q", got)
	}
	if got := BaseEntryName("noprefix"); got != "noprefix" {
		t.Fatalf("BaseEntryName = %q", got)
	}
}

func TestWorldReadableAugment(t *testing.T) {
	im := mysqlImage("wr", "/var/lib/mysql", "mysql")
	im.AddRegular("/var/log/mysql.log", "mysql", "mysql", 0o644, 0)
	im.SetConfig("mysql", "/etc/my.cnf", "[mysqld]\ndatadir = /var/lib/mysql\nuser = mysql\nlog = /var/log/mysql.log\n")
	d, err := New().AssembleTraining([]*sysimage.Image{im})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := d.Rows[0].First("mysql:mysqld/log.worldReadable"); !ok || v != "true" {
		t.Fatalf("worldReadable = %q ok=%v", v, ok)
	}
}

func TestCSVIntegration(t *testing.T) {
	d, err := New().AssembleTraining([]*sysimage.Image{mysqlImage("a", "/var/lib/mysql", "mysql")})
	if err != nil {
		t.Fatal(err)
	}
	csv := d.CSV()
	if !strings.Contains(csv, "mysql:mysqld/datadir") || !strings.Contains(csv, "/var/lib/mysql") {
		t.Fatal("csv should include assembled data")
	}
}
