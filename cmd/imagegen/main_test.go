package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunAppMode(t *testing.T) {
	dir := t.TempDir()
	if err := run("mysql", "", 4, 1, dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("files = %d", len(entries))
	}
}

func TestRunPopulationMode(t *testing.T) {
	dir := t.TempDir()
	if err := run("", "ec2", 0, 2, dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "truth.txt")); err != nil {
		t.Fatalf("truth file missing: %v", err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 121 { // 120 images + truth.txt
		t.Fatalf("files = %d", len(entries))
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nginx", "", 1, 1, t.TempDir()); err == nil {
		t.Fatal("unknown app should error")
	}
	if err := run("", "moon-base", 0, 1, t.TempDir()); err == nil {
		t.Fatal("unknown population should error")
	}
}
