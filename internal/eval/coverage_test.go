package eval

import (
	"testing"

	"repro/internal/corpus"
)

// TestTemplateCoverageAcrossCorpora asserts that the core rule templates
// each produce at least one rule somewhere across the standard corpora —
// i.e. that the predefined templates are not dead weight on realistic
// data. (subnet and not-access fire only on corpora with the matching
// shape; their validators are unit-tested in internal/templates.)
func TestTemplateCoverageAcrossCorpora(t *testing.T) {
	covered := map[string]bool{}
	for _, app := range Apps {
		tr, err := Train(app, 60, testSeed)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range tr.Rules {
			covered[r.Template] = true
		}
	}
	// The LAMP corpus adds the cross-component shapes.
	images, err := corpus.LAMPTraining(40, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := TrainImages(images)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tr.Rules {
		covered[r.Template] = true
	}

	want := []string{
		"owner", "eq", "match-one", "size-lt", "num-lt",
		"concat", "substr", "bool-implies", "user-group",
	}
	for _, tpl := range want {
		if !covered[tpl] {
			t.Errorf("template %q never learned a rule on the standard corpora (covered: %v)", tpl, covered)
		}
	}
}
