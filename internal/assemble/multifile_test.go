package assemble

import (
	"testing"

	"repro/internal/conftypes"
	"repro/internal/sysimage"
)

// multiFileImage builds an Apache image whose modules live in an included
// conf.d fragment, mirroring the multi-file layout real distributions use.
func multiFileImage(id string) *sysimage.Image {
	im := sysimage.New(id)
	im.Users["root"] = &sysimage.User{Name: "root", UID: 0, IsAdmin: true}
	im.Users["apache"] = &sysimage.User{Name: "apache", UID: 48, GID: 48}
	im.Groups["apache"] = &sysimage.Group{Name: "apache", GID: 48}
	im.AddDir("/etc/httpd", "root", "root", 0o755)
	im.AddDir("/etc/httpd/conf.d", "root", "root", 0o755)
	im.AddRegular("/etc/httpd/modules/libphp5.so", "root", "root", 0o755, 64)
	im.AddRegular("/etc/httpd/conf.d/modules.conf", "root", "root", 0o644, 50)
	im.SetConfig("apache", "/etc/httpd/conf/httpd.conf",
		"ServerRoot /etc/httpd\nUser apache\nInclude conf.d/modules.conf\n")
	im.AddConfig("apache", "/etc/httpd/conf.d/modules.conf",
		"LoadModule php5_module modules/libphp5.so\n")
	return im
}

func TestAssembleMergesIncludedFragments(t *testing.T) {
	images := []*sysimage.Image{multiFileImage("a"), multiFileImage("b")}
	d, err := New().AssembleTraining(images)
	if err != nil {
		t.Fatal(err)
	}
	// The fragment's entries are first-class attributes.
	lm, ok := d.Attr("apache:LoadModule/arg2")
	if !ok || lm.Type != conftypes.TypePartialFilePath {
		t.Fatalf("fragment entry = %+v ok=%v", lm, ok)
	}
	if v, ok := d.Rows[0].First("apache:LoadModule/arg2"); !ok || v != "modules/libphp5.so" {
		t.Fatalf("fragment value = %q ok=%v", v, ok)
	}
	// The Include directive itself is typed as a partial path (its target
	// sits under ServerRoot).
	inc, ok := d.Attr("apache:Include")
	if !ok || inc.Type != conftypes.TypePartialFilePath {
		t.Fatalf("Include attr = %+v ok=%v", inc, ok)
	}
}

func TestAssembleTargetWithFragments(t *testing.T) {
	training, err := New().AssembleTraining([]*sysimage.Image{multiFileImage("a")})
	if err != nil {
		t.Fatal(err)
	}
	target := multiFileImage("t")
	td, err := New().AssembleTarget(target, training)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := td.Rows[0].First("apache:LoadModule/arg2"); !ok {
		t.Fatal("fragment entries missing from target assembly")
	}
}

func TestConfigsForAndAddConfig(t *testing.T) {
	im := multiFileImage("x")
	cfgs := im.ConfigsFor("apache")
	if len(cfgs) != 2 {
		t.Fatalf("configs = %d", len(cfgs))
	}
	if cfgs[0].Path != "/etc/httpd/conf/httpd.conf" {
		t.Fatalf("primary config = %s", cfgs[0].Path)
	}
	// ConfigFor returns the primary only.
	if im.ConfigFor("apache").Path != cfgs[0].Path {
		t.Fatal("ConfigFor should return the primary file")
	}
	// SetConfig replaces only the primary, leaving fragments alone.
	im.SetConfig("apache", cfgs[0].Path, "ServerRoot /etc/httpd\n")
	if len(im.ConfigsFor("apache")) != 2 {
		t.Fatal("SetConfig must not drop fragments")
	}
	if len(im.ConfigsFor("nginx")) != 0 {
		t.Fatal("unknown app should have no configs")
	}
}
