package conftypes

import (
	"testing"
	"testing/quick"

	"repro/internal/sysimage"
)

func envImage() *sysimage.Image {
	im := sysimage.New("env")
	im.Users["mysql"] = &sysimage.User{Name: "mysql", UID: 27, GID: 27}
	im.Users["apache"] = &sysimage.User{Name: "apache", UID: 48, GID: 48}
	im.Groups["mysql"] = &sysimage.Group{Name: "mysql", GID: 27}
	im.Services = []sysimage.Service{{Name: "mysql", Port: 3306, Protocol: "tcp"}, {Name: "http", Port: 80, Protocol: "tcp"}}
	im.AddDir("/var/lib/mysql", "mysql", "mysql", 0o750)
	im.AddRegular("/usr/lib/php/modules/libphp5.so", "root", "root", 0o644, 100)
	im.AddRegular("/etc/httpd/conf/httpd.conf", "root", "root", 0o644, 100)
	return im
}

func one(v string, img *sysimage.Image) []Sample { return []Sample{{Value: v, Image: img}} }

func TestInferValueKinds(t *testing.T) {
	im := envImage()
	inf := NewInferencer()
	cases := []struct {
		value string
		want  Type
	}{
		{"/var/lib/mysql", TypeFilePath},
		{"mysql", TypeUserName}, // user wins over group by priority
		{"3306", TypePortNumber},
		{"42", TypeNumber},     // unregistered port degrades to Number
		{"999999", TypeNumber}, // out of port range
		{"16M", TypeSize},
		{"10.0.1.1", TypeIPAddress},
		{"fe80::1", TypeIPAddress},
		{"300.1.1.1", TypeString}, // invalid octet is not an IP; degrades
		{"http://example.com/x", TypeURL},
		{"text/html", TypeMIMEType},
		{"utf-8", TypeCharset},
		{"en", TypeLanguage},
		{"On", TypeBoolean},
		{"modules/libphp5.so", TypePartialFilePath},
		{"httpd.conf", TypeFileName},
		{"some arbitrary words", TypeString},
	}
	for _, c := range cases {
		if got := inf.InferValue(c.value, im); got != c.want {
			t.Errorf("InferValue(%q) = %s, want %s", c.value, got, c.want)
		}
	}
}

func TestSemanticVerificationGates(t *testing.T) {
	im := envImage()
	inf := NewInferencer()
	// Path-looking value that does not exist: semantic verification fails,
	// so FilePath is rejected and the value degrades to String.
	if got := inf.InferValue("/no/such/path", im); got == TypeFilePath {
		t.Fatalf("nonexistent path should not verify as FilePath, got %s", got)
	}
	// Unknown user name degrades to String (no account verification).
	if got := inf.InferValue("ghostuser", im); got == TypeUserName || got == TypeGroupName {
		t.Fatalf("unknown account inferred as %s", got)
	}
}

func TestBooleanFromValueSet(t *testing.T) {
	inf := NewInferencer()
	im := envImage()
	samples := []Sample{{Value: "On", Image: im}, {Value: "Off", Image: im}, {Value: "on", Image: im}}
	if got := inf.InferEntry(samples); got != TypeBoolean {
		t.Fatalf("on/off entry = %s", got)
	}
	// The 0/1 false-type source from Table 11: all-0/1 integers infer as
	// Boolean even when the entry is semantically a count.
	zeroOne := []Sample{{Value: "0", Image: im}, {Value: "1", Image: im}, {Value: "0", Image: im}}
	if got := inf.InferEntry(zeroOne); got != TypeBoolean {
		t.Fatalf("0/1 entry = %s, want Boolean (paper's false-type behaviour)", got)
	}
	// A wider integer range is a Number.
	nums := []Sample{{Value: "0", Image: im}, {Value: "10", Image: im}}
	if got := inf.InferEntry(nums); got != TypeNumber {
		t.Fatalf("0/10 entry = %s", got)
	}
}

func TestInferEntryMajority(t *testing.T) {
	im := envImage()
	inf := NewInferencer()
	// 4 of 5 samples are existing paths in their images; one sample is
	// garbage. 0.8 match fraction admits FilePath.
	samples := []Sample{
		{Value: "/var/lib/mysql", Image: im},
		{Value: "/var/lib/mysql", Image: im},
		{Value: "/usr/lib/php/modules/libphp5.so", Image: im},
		{Value: "/etc/httpd/conf/httpd.conf", Image: im},
		{Value: "not a path", Image: im},
	}
	if got := inf.InferEntry(samples); got != TypeFilePath {
		t.Fatalf("majority path entry = %s", got)
	}
}

func TestInferEntryEmpty(t *testing.T) {
	inf := NewInferencer()
	if got := inf.InferEntry(nil); got != TypeString {
		t.Fatalf("empty samples = %s", got)
	}
	if got := inf.InferEntry([]Sample{{Value: ""}}); got != TypeString {
		t.Fatalf("all-empty values = %s", got)
	}
}

func TestCustomTypePriority(t *testing.T) {
	inf := NewInferencer()
	im := envImage()
	inf.AddCustom(&Def{
		Name:  Type("MysqlWord"),
		Match: func(v string) bool { return v == "mysql" },
	})
	if got := inf.InferValue("mysql", im); got != Type("MysqlWord") {
		t.Fatalf("custom type should win: got %s", got)
	}
}

func TestCheckValue(t *testing.T) {
	im := envImage()
	inf := NewInferencer()
	syn, sem := inf.CheckValue(TypeFilePath, "/var/lib/mysql", im)
	if !syn || !sem {
		t.Fatal("existing path should pass both steps")
	}
	syn, sem = inf.CheckValue(TypeFilePath, "/no/such", im)
	if !syn || sem {
		t.Fatalf("missing path: syn=%v sem=%v, want true,false", syn, sem)
	}
	syn, sem = inf.CheckValue(TypeFilePath, "not-a-path", im)
	if syn || sem {
		t.Fatal("non-path must fail syntactic step")
	}
	syn, sem = inf.CheckValue(TypeBoolean, "On", im)
	if !syn || !sem {
		t.Fatal("boolean word should pass")
	}
	syn, sem = inf.CheckValue(TypeBoolean, "Onn", im)
	if syn || sem {
		t.Fatal("non-boolean word should fail")
	}
	if syn, sem = inf.CheckValue(TypeString, "anything", im); !syn || !sem {
		t.Fatal("trivial type always passes")
	}
	if syn, sem = inf.CheckValue(Type("Unknown"), "x", im); !syn || !sem {
		t.Fatal("unknown type must not fail the check")
	}
	if syn, sem = inf.CheckValue(TypeSize, "16M", im); !syn || !sem {
		t.Fatal("size with no verifier passes semantically when syntactic passes")
	}
}

func TestPortVsNumberPriority(t *testing.T) {
	im := envImage()
	inf := NewInferencer()
	// 80 is registered: PortNumber. 81 is not: Number.
	if got := inf.InferValue("80", im); got != TypePortNumber {
		t.Fatalf("80 = %s", got)
	}
	if got := inf.InferValue("81", im); got != TypeNumber {
		t.Fatalf("81 = %s", got)
	}
}

func TestIsTrivial(t *testing.T) {
	if !TypeString.IsTrivial() || !TypeNumber.IsTrivial() || !Type("").IsTrivial() {
		t.Fatal("String/Number/empty are trivial")
	}
	if TypeFilePath.IsTrivial() || TypeUserName.IsTrivial() {
		t.Fatal("semantic types are not trivial")
	}
}

func TestLooksLikeRegexOrGlob(t *testing.T) {
	if !LooksLikeRegexOrGlob("*.php") || !LooksLikeRegexOrGlob("^/cgi-bin/") {
		t.Fatal("glob/regex should be detected")
	}
	if LooksLikeRegexOrGlob("/var/www") {
		t.Fatal("plain path is not a pattern")
	}
}

func TestInferEntryNamedDisambiguatesGroups(t *testing.T) {
	im := envImage()
	im.Groups["apache"] = &sysimage.Group{Name: "apache", GID: 48}
	inf := NewInferencer()
	samples := []Sample{{Value: "apache", Image: im}}
	// "apache" is both a user and a group: by value alone UserName wins.
	if got := inf.InferEntry(samples); got != TypeUserName {
		t.Fatalf("InferEntry = %s", got)
	}
	// An entry *named* Group whose values all verify as groups flips.
	if got := inf.InferEntryNamed("apache:Group", samples); got != TypeGroupName {
		t.Fatalf("InferEntryNamed(Group) = %s", got)
	}
	// The hint only applies when the name says so...
	if got := inf.InferEntryNamed("apache:User", samples); got != TypeUserName {
		t.Fatalf("InferEntryNamed(User) = %s", got)
	}
	// ...and only when every sample verifies as a group.
	im.Users["deploy"] = &sysimage.User{Name: "deploy", UID: 1000, GID: 1000}
	mixed := append(samples, Sample{Value: "deploy", Image: im}) // user only
	if got := inf.InferEntryNamed("apache:Group", mixed); got != TypeUserName {
		t.Fatalf("InferEntryNamed(mixed) = %s", got)
	}
	// Non-UserName inferences pass through untouched.
	nums := []Sample{{Value: "42", Image: im}}
	if got := inf.InferEntryNamed("some_group_count", nums); got != TypeNumber {
		t.Fatalf("InferEntryNamed(number) = %s", got)
	}
}

func TestGroupNameInference(t *testing.T) {
	im := envImage()
	im.Groups["www"] = &sysimage.Group{Name: "www", GID: 48}
	inf := NewInferencer()
	// "www" is a group but not a user: GroupName.
	if got := inf.InferValue("www", im); got != TypeGroupName {
		t.Fatalf("www = %s", got)
	}
}

func TestInferValueNeverPanics(t *testing.T) {
	im := envImage()
	inf := NewInferencer()
	f := func(v string) bool {
		_ = inf.InferValue(v, im)
		_ = inf.InferValue(v, nil)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestInferEntryDeterministic(t *testing.T) {
	im := envImage()
	inf := NewInferencer()
	samples := one("/var/lib/mysql", im)
	first := inf.InferEntry(samples)
	for i := 0; i < 10; i++ {
		if got := inf.InferEntry(samples); got != first {
			t.Fatalf("nondeterministic inference: %s vs %s", got, first)
		}
	}
}

func TestPermissionType(t *testing.T) {
	inf := NewInferencer()
	if got := inf.InferValue("0644", nil); got != TypePermission {
		t.Fatalf("0644 = %s", got)
	}
	// Without a leading zero, 644 is indistinguishable from a count; the
	// inferencer is conservative and leaves it numeric.
	if got := inf.InferValue("644", nil); got != TypeNumber {
		t.Fatalf("644 = %s", got)
	}
	// 999 is not octal.
	if got := inf.InferValue("999", nil); got == TypePermission {
		t.Fatal("999 must not be a permission")
	}
}
