package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/sysimage"
)

func fixture(t *testing.T) (trainingDir, targetFile string) {
	t.Helper()
	images, err := corpus.Training("mysql", 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	trainingDir = t.TempDir()
	if err := sysimage.SaveDir(trainingDir, images); err != nil {
		t.Fatal(err)
	}
	target := corpus.RealWorldCases()[2].Build()
	data, err := target.MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	targetFile = filepath.Join(t.TempDir(), "target.json")
	if err := os.WriteFile(targetFile, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return trainingDir, targetFile
}

// TestRunLearnStatsShowsPruning asserts the -stats block surfaces the
// rule engine's columnar-index pruning counters alongside the existing
// pipeline counters.
func TestRunLearnStatsShowsPruning(t *testing.T) {
	training, _ := fixture(t)
	rulesFile := filepath.Join(t.TempDir(), "rules.json")

	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	runErr := runLearn([]string{"-training", training, "-rules", rulesFile, "-stats"})
	w.Close()
	os.Stderr = old
	out, readErr := io.ReadAll(r)
	if runErr != nil {
		t.Fatal(runErr)
	}
	if readErr != nil {
		t.Fatal(readErr)
	}
	for _, counter := range []string{
		"rules.candidates.validated",
		"rules.pruned.support",
		"rules.pruned.entropy",
	} {
		if !strings.Contains(string(out), counter) {
			t.Fatalf("-stats output missing %q:\n%s", counter, out)
		}
	}
}

func TestRunLearnWritesRules(t *testing.T) {
	training, _ := fixture(t)
	rulesFile := filepath.Join(t.TempDir(), "rules.json")
	if err := runLearn([]string{"-training", training, "-rules", rulesFile}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(rulesFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty rules file")
	}
}

func TestRunLearnWritesProfile(t *testing.T) {
	training, _ := fixture(t)
	profileFile := filepath.Join(t.TempDir(), "profile.json")
	if err := runLearn([]string{"-training", training, "-profile", profileFile}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(profileFile); err != nil {
		t.Fatal(err)
	}
}

func TestRunCheckWithTraining(t *testing.T) {
	training, target := fixture(t)
	if err := runCheck([]string{"-training", training, "-target", target, "-top", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCheckWithProfile(t *testing.T) {
	training, target := fixture(t)
	profileFile := filepath.Join(t.TempDir(), "profile.json")
	if err := runLearn([]string{"-training", training, "-profile", profileFile}); err != nil {
		t.Fatal(err)
	}
	if err := runCheck([]string{"-profile", profileFile, "-target", target}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAssembleWritesCSV(t *testing.T) {
	training, _ := fixture(t)
	csvFile := filepath.Join(t.TempDir(), "data.csv")
	if err := runAssemble([]string{"-training", training, "-csv", csvFile}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csvFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty CSV")
	}
}

func TestRunArgumentValidation(t *testing.T) {
	if err := runLearn([]string{}); err == nil {
		t.Fatal("learn without -training should error")
	}
	if err := runCheck([]string{"-target", "x.json"}); err == nil {
		t.Fatal("check without knowledge source should error")
	}
	if err := runCheck([]string{"-training", "a", "-profile", "b", "-target", "x.json"}); err == nil {
		t.Fatal("check with both knowledge sources should error")
	}
	if err := runAssemble([]string{}); err == nil {
		t.Fatal("assemble without -training should error")
	}
	if err := runCheck([]string{"-profile", "/no/such.json", "-target", "/no/such.json"}); err == nil {
		t.Fatal("missing files should error")
	}
}

func TestRunWithCustomization(t *testing.T) {
	training, target := fixture(t)
	customFile := filepath.Join(t.TempDir(), "custom.txt")
	custom := "$$TypeDeclaration\nDataDir\n$$TypeInference\nDataDir (value): { matches(value, 'mysql') && hasPrefix(value, '/') }\n"
	if err := os.WriteFile(customFile, []byte(custom), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runCheck([]string{"-training", training, "-target", target, "-custom", customFile}); err != nil {
		t.Fatal(err)
	}
	if err := runCheck([]string{"-training", training, "-target", target, "-custom", "/missing.txt"}); err == nil {
		t.Fatal("missing customization file should error")
	}
}

func TestRunScan(t *testing.T) {
	training, _ := fixture(t)
	// Scan a small fleet containing one broken image.
	targets := t.TempDir()
	images, err := corpus.Training("mysql", 3, 91)
	if err != nil {
		t.Fatal(err)
	}
	broken := corpus.RealWorldCases()[2].Build()
	images = append(images, broken)
	if err := sysimage.SaveDir(targets, images); err != nil {
		t.Fatal(err)
	}
	if err := runScan([]string{"-training", training, "-targets", targets}); err != nil {
		t.Fatal(err)
	}
	// Profile-based scan.
	profileFile := filepath.Join(t.TempDir(), "p.json")
	if err := runLearn([]string{"-training", training, "-profile", profileFile}); err != nil {
		t.Fatal(err)
	}
	if err := runScan([]string{"-profile", profileFile, "-targets", targets}); err != nil {
		t.Fatal(err)
	}
	// Argument validation.
	if err := runScan([]string{"-targets", targets}); err == nil {
		t.Fatal("scan without knowledge source should error")
	}
	if err := runScan([]string{"-training", training}); err == nil {
		t.Fatal("scan without targets should error")
	}
}

func TestRunRules(t *testing.T) {
	training, _ := fixture(t)
	if err := runRules([]string{"-training", training}); err != nil {
		t.Fatal(err)
	}
	profileFile := filepath.Join(t.TempDir(), "p.json")
	if err := runLearn([]string{"-training", training, "-profile", profileFile}); err != nil {
		t.Fatal(err)
	}
	if err := runRules([]string{"-profile", profileFile}); err != nil {
		t.Fatal(err)
	}
	if err := runRules([]string{}); err == nil {
		t.Fatal("rules without knowledge source should error")
	}
	if err := runRules([]string{"-profile", "/missing.json"}); err == nil {
		t.Fatal("missing profile should error")
	}
}

func TestRunCollect(t *testing.T) {
	root := t.TempDir()
	os.MkdirAll(filepath.Join(root, "etc"), 0o755)
	os.WriteFile(filepath.Join(root, "etc/passwd"), []byte("root:x:0:0:r:/root:/bin/sh\n"), 0o644)
	os.WriteFile(filepath.Join(root, "etc/my.cnf"), []byte("[mysqld]\nuser = root\n"), 0o644)
	out := filepath.Join(t.TempDir(), "img.json")
	err := runCollect([]string{"-root", root, "-id", "tree-1", "-app", "mysql=etc/my.cnf", "-out", out})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	img, err := sysimage.LoadJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if img.ID != "tree-1" || img.ConfigFor("mysql") == nil || !img.UserExists("root") {
		t.Fatalf("collected image incomplete: %+v", img.ID)
	}
	// Argument validation.
	if err := runCollect([]string{"-root", root}); err == nil {
		t.Fatal("missing flags should error")
	}
	if err := runCollect([]string{"-root", "/nope", "-id", "x", "-out", out}); err == nil {
		t.Fatal("missing root should error")
	}
}

func TestAppFlagsSet(t *testing.T) {
	a := appFlags{}
	if err := a.Set("mysql=etc/my.cnf"); err != nil || a["mysql"] != "etc/my.cnf" {
		t.Fatalf("Set = %v, map = %v", err, a)
	}
	if err := a.Set("badformat"); err == nil {
		t.Fatal("malformed app flag should error")
	}
	if err := a.Set("=x"); err == nil || a.String() == "" {
		t.Fatal("empty name should error; String should render")
	}
}
