// Package planio serializes compiled check plans (detect.PlanSpec) to a
// compact, versioned binary format, so a scanner cold-starts from an
// `app.plan` file in milliseconds instead of re-learning or re-compiling.
//
// Format v1 (all integers little-endian; "uvarint" is encoding/binary's
// unsigned varint):
//
//	magic   4 bytes  "ENCP"
//	version uint16   currently 1; any other value is rejected
//	flags   uint16   reserved, must be 0
//	payload          (see below)
//	crc32   uint32   IEEE checksum of everything before the trailer
//
// The payload begins with a deduplicated string table — every attribute
// name, type name, histogram value, and rule field is stored once, in
// first-reference order, and referenced by index thereafter — followed by
// the plan sections:
//
//	strings  uvarint count, then per string: uvarint length + bytes
//	header   uvarint samples, uvarint suspLimit
//	attrs    uvarint count, uvarint total histogram entries (so the
//	         decoder carves every histogram from one arena allocation),
//	         then per attribute:
//	           uvarint nameRef, uvarint typeRef,
//	           1 flag byte (bit0 augmented, bit1 has),
//	           8-byte presence signature (misspelling prefilter),
//	           uvarint histLen + histLen × (uvarint valueRef, uvarint count)
//	types    uvarint count × (uvarint nameRef, uvarint typeRef)
//	rules    uvarint count, then per rule:
//	           uvarint templateRef, specRef, attrARef, attrBRef,
//	           uvarint support, uvarint valid,
//	           3 × 8-byte float64 bits (confidence, entropyA, entropyB)
//
// Decoding is hardened against hostile input: the checksum is verified
// first, every declared count is bounds-checked against the bytes that
// remain (so a corrupt length cannot trigger a huge allocation), string
// references are range-checked, and all failures return errors — never
// panics. Decoded strings go through internal/intern, so loading a plan
// whose vocabulary overlaps a scanned corpus allocates almost no new
// string storage.
package planio

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/conftypes"
	"repro/internal/detect"
	"repro/internal/intern"
	"repro/internal/rules"
)

// Version is the current binary format version.
const Version = 1

// magic identifies a binary plan file.
const magic = "ENCP"

// headerSize is magic + version + flags; trailerSize is the CRC32.
const (
	headerSize  = 4 + 2 + 2
	trailerSize = 4
)

// attrMinBytes / histMinBytes / typeMinBytes / ruleMinBytes are the
// smallest possible encodings of one element of each section, used to
// bounds-check declared counts before allocating.
const (
	histMinBytes = 2 // valueRef + count, one byte each
	attrMinBytes = 2 + 1 + 8 + 1
	typeMinBytes = 2
	ruleMinBytes = 4 + 2 + 3*8
)

// encoder accumulates the payload body while assigning string references
// in first-use order; the string table is prepended at the end.
type encoder struct {
	body []byte
	strs []string
	refs map[string]uint64
}

func (e *encoder) uvarint(v uint64) {
	e.body = binary.AppendUvarint(e.body, v)
}

func (e *encoder) str(s string) {
	ref, ok := e.refs[s]
	if !ok {
		ref = uint64(len(e.strs))
		e.refs[s] = ref
		e.strs = append(e.strs, s)
	}
	e.uvarint(ref)
}

func (e *encoder) u64(v uint64) {
	e.body = binary.LittleEndian.AppendUint64(e.body, v)
}

func (e *encoder) f64(v float64) {
	e.u64(math.Float64bits(v))
}

// Encode serializes a plan spec to the binary plan format. Encoding the
// same spec always yields the same bytes (the spec's own ordering is
// deterministic and the string table follows first-use order).
func Encode(spec *detect.PlanSpec) []byte {
	e := &encoder{refs: make(map[string]uint64, 64)}
	e.uvarint(uint64(spec.Samples))
	e.uvarint(uint64(spec.SuspLimit))
	e.uvarint(uint64(len(spec.Attrs)))
	histTotal := 0
	for i := range spec.Attrs {
		histTotal += len(spec.Attrs[i].Hist)
	}
	e.uvarint(uint64(histTotal))
	for i := range spec.Attrs {
		a := &spec.Attrs[i]
		e.str(a.Name)
		e.str(string(a.Type))
		var flags byte
		if a.Augmented {
			flags |= 1
		}
		if a.Has {
			flags |= 2
		}
		e.body = append(e.body, flags)
		e.u64(a.Sig)
		e.uvarint(uint64(len(a.Hist)))
		for _, h := range a.Hist {
			e.str(h.Value)
			e.uvarint(uint64(h.Count))
		}
	}
	e.uvarint(uint64(len(spec.Types)))
	for _, t := range spec.Types {
		e.str(t.Name)
		e.str(string(t.Type))
	}
	e.uvarint(uint64(len(spec.Rules)))
	for _, r := range spec.Rules {
		e.str(r.Template)
		e.str(r.Spec)
		e.str(r.AttrA)
		e.str(r.AttrB)
		e.uvarint(uint64(r.Support))
		e.uvarint(uint64(r.Valid))
		e.f64(r.Confidence)
		e.f64(r.EntropyA)
		e.f64(r.EntropyB)
	}

	// Assemble header + string table + body, then the CRC trailer.
	size := headerSize + len(e.body) + trailerSize
	table := binary.AppendUvarint(nil, uint64(len(e.strs)))
	for _, s := range e.strs {
		table = binary.AppendUvarint(table, uint64(len(s)))
		table = append(table, s...)
	}
	out := make([]byte, 0, size+len(table))
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint16(out, Version)
	out = binary.LittleEndian.AppendUint16(out, 0) // flags
	out = append(out, table...)
	out = append(out, e.body...)
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
}

// decoder walks the payload with bounds-checked reads.
type decoder struct {
	data []byte
	pos  int
	strs []string
}

func (d *decoder) remaining() int { return len(d.data) - d.pos }

func (d *decoder) uvarint(what string) (uint64, error) {
	// Fast path: one-byte varints are the overwhelming majority (string
	// refs, counts, histogram buckets), and this avoids binary.Uvarint's
	// call and loop for them.
	if d.pos < len(d.data) {
		if b := d.data[d.pos]; b < 0x80 {
			d.pos++
			return uint64(b), nil
		}
	}
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("planio: truncated or malformed %s at offset %d", what, d.pos)
	}
	d.pos += n
	return v, nil
}

// count reads a uvarint element count and rejects values that could not
// possibly fit in the remaining bytes at minBytes per element — the guard
// that keeps corrupt input from driving a huge allocation.
func (d *decoder) count(what string, minBytes int) (int, error) {
	v, err := d.uvarint(what)
	if err != nil {
		return 0, err
	}
	if v > uint64(d.remaining()/minBytes) {
		return 0, fmt.Errorf("planio: %s count %d exceeds remaining payload (%d bytes)", what, v, d.remaining())
	}
	return int(v), nil
}

// intVal reads a uvarint that must fit in a non-negative int.
func (d *decoder) intVal(what string) (int, error) {
	v, err := d.uvarint(what)
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt64/2 {
		return 0, fmt.Errorf("planio: %s value %d out of range", what, v)
	}
	return int(v), nil
}

func (d *decoder) str(what string) (string, error) {
	ref, err := d.uvarint(what)
	if err != nil {
		return "", err
	}
	if ref >= uint64(len(d.strs)) {
		return "", fmt.Errorf("planio: %s string reference %d out of range (table has %d)", what, ref, len(d.strs))
	}
	return d.strs[ref], nil
}

func (d *decoder) u64(what string) (uint64, error) {
	if d.remaining() < 8 {
		return 0, fmt.Errorf("planio: truncated %s at offset %d", what, d.pos)
	}
	v := binary.LittleEndian.Uint64(d.data[d.pos:])
	d.pos += 8
	return v, nil
}

func (d *decoder) f64(what string) (float64, error) {
	v, err := d.u64(what)
	return math.Float64frombits(v), err
}

func (d *decoder) byte(what string) (byte, error) {
	if d.remaining() < 1 {
		return 0, fmt.Errorf("planio: truncated %s at offset %d", what, d.pos)
	}
	b := d.data[d.pos]
	d.pos++
	return b, nil
}

// Decode parses a binary plan produced by Encode. Corrupt, truncated, or
// version-skewed input returns an error; Decode never panics and never
// allocates more than the input's size warrants.
func Decode(data []byte) (*detect.PlanSpec, error) {
	if len(data) < headerSize+trailerSize {
		return nil, fmt.Errorf("planio: input too short (%d bytes) for a plan file", len(data))
	}
	if uint64(len(data)) >= 1<<40 {
		return nil, fmt.Errorf("planio: input too large (%d bytes) for a plan file", len(data))
	}
	if string(data[:4]) != magic {
		return nil, fmt.Errorf("planio: bad magic %q (not a binary plan)", data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != Version {
		return nil, fmt.Errorf("planio: unsupported plan version %d (this build reads version %d)", v, Version)
	}
	if f := binary.LittleEndian.Uint16(data[6:8]); f != 0 {
		return nil, fmt.Errorf("planio: unsupported plan flags %#x", f)
	}
	body := data[:len(data)-trailerSize]
	want := binary.LittleEndian.Uint32(data[len(data)-trailerSize:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("planio: checksum mismatch (file %08x, computed %08x)", want, got)
	}

	d := &decoder{data: body, pos: headerSize}
	nStrs, err := d.count("string table", 1)
	if err != nil {
		return nil, err
	}
	// Parse the raw table first, then intern the whole batch under one
	// lock acquisition instead of one per string. Spans pack offset and
	// length into one word each so the scratch slice carries no pointers.
	d.strs = make([]string, nStrs)
	spans := make([]uint64, nStrs)
	for i := 0; i < nStrs; i++ {
		n, err := d.uvarint("string length")
		if err != nil {
			return nil, err
		}
		if n > uint64(d.remaining()) {
			return nil, fmt.Errorf("planio: string %d length %d exceeds remaining payload", i, n)
		}
		if n >= 1<<24 {
			return nil, fmt.Errorf("planio: string %d length %d exceeds the 16MB per-string limit", i, n)
		}
		spans[i] = uint64(d.pos)<<24 | n
		d.pos += int(n)
	}
	intern.BytesInto(d.strs, func(i int) []byte {
		sp := spans[i]
		off := sp >> 24
		return d.data[off : off+sp&(1<<24-1)]
	})

	spec := &detect.PlanSpec{}
	if spec.Samples, err = d.intVal("samples"); err != nil {
		return nil, err
	}
	if spec.SuspLimit, err = d.intVal("suspicious-value limit"); err != nil {
		return nil, err
	}

	nAttrs, err := d.count("attribute", attrMinBytes)
	if err != nil {
		return nil, err
	}
	histTotal, err := d.count("histogram total", histMinBytes)
	if err != nil {
		return nil, err
	}
	// All histograms share one arena so decoding allocates per section, not
	// per attribute; each attribute takes a full-capacity subslice.
	var histArena []detect.PlanSpecHistEntry
	if histTotal > 0 {
		histArena = make([]detect.PlanSpecHistEntry, histTotal)
	}
	histUsed := 0
	spec.Attrs = make([]detect.PlanSpecAttr, nAttrs)
	for i := 0; i < nAttrs; i++ {
		a := &spec.Attrs[i]
		if a.Name, err = d.str("attribute name"); err != nil {
			return nil, err
		}
		var ty string
		if ty, err = d.str("attribute type"); err != nil {
			return nil, err
		}
		a.Type = conftypes.Type(ty)
		flags, err := d.byte("attribute flags")
		if err != nil {
			return nil, err
		}
		if flags&^3 != 0 {
			return nil, fmt.Errorf("planio: attribute %q has unknown flag bits %#x", a.Name, flags)
		}
		a.Augmented = flags&1 != 0
		a.Has = flags&2 != 0
		if a.Sig, err = d.u64("attribute signature"); err != nil {
			return nil, err
		}
		nHist, err := d.count("histogram", histMinBytes)
		if err != nil {
			return nil, err
		}
		if nHist > 0 {
			if nHist > histTotal-histUsed {
				return nil, fmt.Errorf("planio: attribute %q histogram length %d exceeds declared total %d", a.Name, nHist, histTotal)
			}
			a.Hist = histArena[histUsed : histUsed+nHist : histUsed+nHist]
			histUsed += nHist
			for j := 0; j < nHist; j++ {
				h := &a.Hist[j]
				if h.Value, err = d.str("histogram value"); err != nil {
					return nil, err
				}
				if h.Count, err = d.intVal("histogram count"); err != nil {
					return nil, err
				}
			}
		}
	}
	if histUsed != histTotal {
		return nil, fmt.Errorf("planio: histogram total %d does not match entries present (%d)", histTotal, histUsed)
	}

	nTypes, err := d.count("type declaration", typeMinBytes)
	if err != nil {
		return nil, err
	}
	spec.Types = make([]detect.PlanSpecType, nTypes)
	for i := range spec.Types {
		t := &spec.Types[i]
		if t.Name, err = d.str("type declaration name"); err != nil {
			return nil, err
		}
		var ty string
		if ty, err = d.str("type declaration type"); err != nil {
			return nil, err
		}
		t.Type = conftypes.Type(ty)
	}

	nRules, err := d.count("rule", ruleMinBytes)
	if err != nil {
		return nil, err
	}
	spec.Rules = make([]*rules.Rule, nRules)
	ruleArena := make([]rules.Rule, nRules)
	for i := range spec.Rules {
		r := &ruleArena[i]
		if r.Template, err = d.str("rule template"); err != nil {
			return nil, err
		}
		if r.Spec, err = d.str("rule spec"); err != nil {
			return nil, err
		}
		if r.AttrA, err = d.str("rule attrA"); err != nil {
			return nil, err
		}
		if r.AttrB, err = d.str("rule attrB"); err != nil {
			return nil, err
		}
		if r.Support, err = d.intVal("rule support"); err != nil {
			return nil, err
		}
		if r.Valid, err = d.intVal("rule valid"); err != nil {
			return nil, err
		}
		if r.Confidence, err = d.f64("rule confidence"); err != nil {
			return nil, err
		}
		if r.EntropyA, err = d.f64("rule entropyA"); err != nil {
			return nil, err
		}
		if r.EntropyB, err = d.f64("rule entropyB"); err != nil {
			return nil, err
		}
		spec.Rules[i] = r
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("planio: %d trailing bytes after rule section", d.remaining())
	}
	return spec, nil
}
