package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
)

// ChromeTrace renders the snapshot's spans in the Chrome trace_event
// format (the JSON Object Format with a traceEvents array), loadable in
// chrome://tracing and Perfetto. Every span becomes one complete ("X")
// event; spans are laid out on per-worker timelines: a span's lane is
// its nearest self-or-ancestor "worker" attribute scoped under its root
// span, so the assemble, rules, and scan pools each render as a row of
// worker tracks. Lanes are named with thread_name metadata events.
func (s Snapshot) ChromeTrace() ([]byte, error) {
	type traceEvent struct {
		Name string            `json:"name"`
		Cat  string            `json:"cat,omitempty"`
		Ph   string            `json:"ph"`
		Pid  int               `json:"pid"`
		Tid  int               `json:"tid"`
		Ts   int64             `json:"ts"`
		Dur  int64             `json:"dur"`
		Args map[string]string `json:"args,omitempty"`
	}
	type traceFile struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}

	byID := make(map[int64]*SpanData, len(s.Spans))
	for i := range s.Spans {
		byID[s.Spans[i].ID] = &s.Spans[i]
	}
	// laneOf resolves a span's timeline label: walk ancestors to the root,
	// remembering the deepest "worker" attribute on the way up.
	laneOf := func(sp *SpanData) string {
		worker := ""
		cur := sp
		for {
			if worker == "" {
				for _, a := range cur.Attrs {
					if a.Key == "worker" {
						worker = a.Value
						break
					}
				}
			}
			parent, ok := byID[cur.Parent]
			if cur.Parent == 0 || !ok {
				break
			}
			cur = parent
		}
		if worker != "" {
			return cur.Name + "/worker " + worker
		}
		return cur.Name
	}

	lanes := map[string]int{}
	var laneNames []string
	for i := range s.Spans {
		lane := laneOf(&s.Spans[i])
		if _, seen := lanes[lane]; !seen {
			lanes[lane] = 0
			laneNames = append(laneNames, lane)
		}
	}
	sort.Strings(laneNames)
	for i, name := range laneNames {
		lanes[name] = i
	}

	var events []traceEvent
	for _, name := range laneNames {
		events = append(events, traceEvent{
			Name: "thread_name",
			Ph:   "M",
			Pid:  1,
			Tid:  lanes[name],
			Args: map[string]string{"name": name},
		})
	}
	for i := range s.Spans {
		sp := &s.Spans[i]
		var args map[string]string
		if len(sp.Attrs) > 0 {
			args = make(map[string]string, len(sp.Attrs)+1)
			for _, a := range sp.Attrs {
				args[a.Key] = a.Value
			}
		} else {
			args = make(map[string]string, 1)
		}
		args["spanId"] = strconv.FormatInt(sp.ID, 10)
		events = append(events, traceEvent{
			Name: sp.Name,
			Cat:  "encore",
			Ph:   "X",
			Pid:  1,
			Tid:  lanes[laneOf(sp)],
			Ts:   sp.Start.Microseconds(),
			Dur:  sp.Dur.Microseconds(),
			Args: args,
		})
	}
	if events == nil {
		events = []traceEvent{}
	}
	data, err := json.MarshalIndent(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"}, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("telemetry: encode trace: %w", err)
	}
	return append(data, '\n'), nil
}

// WriteChromeTrace writes the Chrome trace document to a file ("-" for
// stdout).
func (s Snapshot) WriteChromeTrace(path string) error {
	data, err := s.ChromeTrace()
	if err != nil {
		return err
	}
	return writeArtifact(path, data, "trace")
}
