package inject

import (
	"strings"
	"testing"

	"repro/internal/confparse"
	"repro/internal/corpus"
	"repro/internal/sysimage"
)

// entrySnapshot is a (name → value → count) multiset of one app's parsed
// configuration, for delta assertions around an injection.
type entrySnapshot map[string]map[string]int

func snapshotConfig(t *testing.T, img *sysimage.Image, app string) (entrySnapshot, int) {
	t.Helper()
	cf := img.ConfigFor(app)
	if cf == nil {
		t.Fatalf("image %s has no %s config", img.ID, app)
	}
	f, err := confparse.Parse(app, cf.Path, cf.Content)
	if err != nil {
		t.Fatalf("parse %s config: %v", app, err)
	}
	snap := entrySnapshot{}
	for _, e := range f.Entries {
		name := app + ":" + e.Name()
		if snap[name] == nil {
			snap[name] = map[string]int{}
		}
		snap[name][e.Value()]++
	}
	return snap, len(f.Entries)
}

func (s entrySnapshot) count(name, value string) int { return s[name][value] }

// TestInjectKindRoundTrip asserts, for every error model on every corpus
// app, that (a) the mutated configuration re-parses cleanly and (b) the
// recorded Injection ground truth (Attr/OrigAttr/Before/After) matches
// exactly what a re-scan of the file shows: the Before value left the
// original name, the After value arrived at the recorded name.
func TestInjectKindRoundTrip(t *testing.T) {
	apps := []string{"apache", "mysql", "php", "sshd"}
	covered := map[Kind]bool{}
	for _, app := range apps {
		for _, kind := range Kinds {
			for seed := int64(1); seed <= 5; seed++ {
				imgs, err := corpus.Training(app, 1, seed)
				if err != nil {
					t.Fatal(err)
				}
				img := imgs[0]
				before, beforeTotal := snapshotConfig(t, img, app)
				injs, err := New(seed*31).InjectKind(img, app, kind, 1)
				if err != nil {
					t.Fatalf("%s/%s seed %d: %v", app, kind, seed, err)
				}
				if len(injs) == 0 {
					continue // kind inapplicable to this configuration
				}
				covered[kind] = true
				inj := injs[0]
				if inj.Kind != kind {
					t.Fatalf("%s/%s: injection kind %s", app, kind, inj.Kind)
				}
				after, afterTotal := snapshotConfig(t, img, app) // re-parse must succeed
				assertInjectionDelta(t, app, inj, before, after, beforeTotal, afterTotal)
			}
		}
	}
	for _, kind := range Kinds {
		if !covered[kind] {
			t.Errorf("kind %s never injected on any app/seed — round trip untested", kind)
		}
	}
}

func assertInjectionDelta(t *testing.T, app string, inj Injection, before, after entrySnapshot, beforeTotal, afterTotal int) {
	t.Helper()
	ctx := func() string { return app + " " + inj.String() }
	switch inj.Kind {
	case KindOmission:
		if afterTotal != beforeTotal-1 {
			t.Errorf("%s: entry count %d -> %d, want one fewer", ctx(), beforeTotal, afterTotal)
		}
		if got, want := after.count(inj.Attr, inj.Before), before.count(inj.Attr, inj.Before)-1; got != want {
			t.Errorf("%s: %d occurrences of removed value remain, want %d", ctx(), got, want)
		}
	case KindNameTypo, KindSectionMove:
		// The entry migrated: Before left OrigAttr, After (== Before)
		// arrived at the new Attr.
		if inj.Attr == inj.OrigAttr {
			t.Errorf("%s: rename recorded identical names", ctx())
		}
		if got, want := after.count(inj.OrigAttr, inj.Before), before.count(inj.OrigAttr, inj.Before)-1; got != want {
			t.Errorf("%s: old name still has %d occurrences of %q, want %d", ctx(), got, inj.Before, want)
		}
		if got, want := after.count(inj.Attr, inj.After), before.count(inj.Attr, inj.After)+1; got != want {
			t.Errorf("%s: new name has %d occurrences of %q, want %d", ctx(), got, inj.After, want)
		}
	default: // value mutations in place
		if inj.Attr != inj.OrigAttr {
			t.Errorf("%s: value mutation renamed the entry", ctx())
		}
		if inj.Before == inj.After {
			t.Errorf("%s: recorded no value change", ctx())
		}
		if got, want := after.count(inj.Attr, inj.Before), before.count(inj.Attr, inj.Before)-1; got != want {
			t.Errorf("%s: old value %q count %d, want %d", ctx(), inj.Before, got, want)
		}
		if got, want := after.count(inj.Attr, inj.After), before.count(inj.Attr, inj.After)+1; got != want {
			t.Errorf("%s: new value %q count %d, want %d", ctx(), inj.After, got, want)
		}
	}
}

// TestInjectKindDeterminism pins that same-seed InjectKind runs mutate
// identically — the evaluation matrix's reproducibility rests on it.
func TestInjectKindDeterminism(t *testing.T) {
	for _, kind := range Kinds {
		a, b := testImage(), testImage()
		la, errA := New(9).InjectKind(a, "mysql", kind, 3)
		lb, errB := New(9).InjectKind(b, "mysql", kind, 3)
		if errA != nil || errB != nil {
			t.Fatal(errA, errB)
		}
		if len(la) != len(lb) {
			t.Fatalf("%s: log sizes %d vs %d", kind, len(la), len(lb))
		}
		for i := range la {
			if la[i] != lb[i] {
				t.Fatalf("%s: injection %d differs: %v vs %v", kind, i, la[i], lb[i])
			}
		}
		if a.ConfigFor("mysql").Content != b.ConfigFor("mysql").Content {
			t.Fatalf("%s: same seed produced different configs", kind)
		}
	}
}

// TestInjectKindShortfallAndErrors pins the contract differences from
// Inject: a shortfall is not an error (the matrix uses the achieved count
// as its denominator), but a missing configuration still is.
func TestInjectKindShortfallAndErrors(t *testing.T) {
	im := testImage()
	// The mysql test config has no boolean-word values: zero injections,
	// no error, image untouched.
	before := im.ConfigFor("mysql").Content
	injs, err := New(1).InjectKind(im, "mysql", KindBooleanFlip, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(injs) != 0 {
		t.Fatalf("expected no boolean-flip sites, got %v", injs)
	}
	if im.ConfigFor("mysql").Content != before {
		t.Fatal("zero-injection run must not rewrite the config")
	}
	if _, err := New(1).InjectKind(im, "apache", KindNameTypo, 1); err == nil {
		t.Fatal("missing app config should error")
	}
	// Asking for more than the config can host returns what it achieved.
	injs, err = New(1).InjectKind(im, "mysql", KindNameTypo, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(injs) == 0 {
		t.Fatal("name typos should always be injectable")
	}
}

// TestMatchesEdgeCases is the table-driven sweep over the warning
// attributions the evaluation matrix depends on: omission findings,
// section-moved entries under both names, augmented/derived attribute
// suffixes, and near-name collisions that must NOT be credited.
func TestMatchesEdgeCases(t *testing.T) {
	omission := Injection{Kind: KindOmission, Attr: "mysql:mysqld/tmpdir", OrigAttr: "mysql:mysqld/tmpdir", Before: "/tmp", After: "<removed>"}
	moved := Injection{Kind: KindSectionMove, Attr: "mysql:misc/key_buffer_size", OrigAttr: "mysql:mysqld/key_buffer_size", Before: "8M", After: "8M"}
	typo := Injection{Kind: KindNameTypo, Attr: "php:PHP/memory_limti", OrigAttr: "php:PHP/memory_limit", Before: "128M", After: "128M"}
	value := Injection{Kind: KindValueTypo, Attr: "apache:User", OrigAttr: "apache:User", Before: "www-data", After: "ww-data"}
	cases := []struct {
		name string
		inj  Injection
		attr string
		want bool
	}{
		// Omission: the removed entry's own name and its derived columns.
		{"omission exact", omission, "mysql:mysqld/tmpdir", true},
		{"omission augmented", omission, "mysql:mysqld/tmpdir.type", true},
		{"omission arg column", omission, "mysql:mysqld/tmpdir/arg1", true},
		{"omission sibling", omission, "mysql:mysqld/tmpdir2", false},
		{"omission prefix of name", omission, "mysql:mysqld/tmp", false},
		// Section move: detected under the new (wrong-section) name or the
		// original, including augmented derivations of both.
		{"moved new name", moved, "mysql:misc/key_buffer_size", true},
		{"moved old name", moved, "mysql:mysqld/key_buffer_size", true},
		{"moved new augmented", moved, "mysql:misc/key_buffer_size.owner", true},
		{"moved old augmented", moved, "mysql:mysqld/key_buffer_size.owner", true},
		{"moved other section", moved, "mysql:mysqld2/key_buffer_size", false},
		{"moved unrelated key in misc", moved, "mysql:misc/sort_buffer_size", false},
		// Name typo: both spellings count; longer names sharing the
		// misspelling as a prefix (no separator) do not.
		{"typo new name", typo, "php:PHP/memory_limti", true},
		{"typo old name", typo, "php:PHP/memory_limit", true},
		{"typo new derived", typo, "php:PHP/memory_limti.type", true},
		{"typo collision no separator", typo, "php:PHP/memory_limit_max", false},
		{"typo dotted sibling", typo, "php:PHP/memory_limits", false},
		// Derived/augmented collisions: suffix must start with a
		// separator, a bare extension of the name is a different attr.
		{"value exact", value, "apache:User", true},
		{"value augmented owner", value, "apache:User.owner", true},
		{"value arg column", value, "apache:User/arg1", true},
		{"value name extension", value, "apache:UserDir", false},
		{"value digit extension", value, "apache:User2", false},
		{"value empty attr", value, "", false},
		{"value dash extension", value, "apache:User-agent", false},
	}
	for _, c := range cases {
		if got := c.inj.Matches(c.attr); got != c.want {
			t.Errorf("%s: Matches(%q) = %v, want %v (injection %v)", c.name, c.attr, got, c.want, c.inj)
		}
	}
}

// TestMatchesDoesNotCreditPartnerAttr documents a deliberate limitation:
// a correlation warning is attributed to the rule's A-side attribute, so
// an injection on the B side is only credited when the detector also
// flags the injected entry itself. Matches stays attr-level — credit via
// rule partners would let one warning explain arbitrarily many
// injections.
func TestMatchesDoesNotCreditPartnerAttr(t *testing.T) {
	inj := Injection{Kind: KindNumeric, Attr: "mysql:mysqld/net_buffer_length", OrigAttr: "mysql:mysqld/net_buffer_length", Before: "8K", After: "80K"}
	if inj.Matches("mysql:mysqld/max_allowed_packet") {
		t.Fatal("partner attribute must not be credited to the injection")
	}
	if !strings.HasPrefix(inj.Attr, "mysql:") {
		t.Fatal("sanity")
	}
}
