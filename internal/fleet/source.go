package fleet

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/sysimage"
)

// Source enumerates a fleet of scan targets by global input index. The
// index order is the fleet's canonical order (for directories: file name
// sort, exactly like sysimage.LoadDir), which is what the coordinator's
// deterministic aggregation is keyed on. Load is called by coordinator
// workers concurrently and must be safe for concurrent use with distinct
// indices; the same index is never loaded twice.
type Source interface {
	// Len is the fleet size.
	Len() int
	// Name identifies task i for error records and span attributes — a
	// file path for directory fleets. Names are unique per index.
	Name(i int) string
	// Size estimates the in-memory payload of task i in bytes (file size
	// on disk, blob length). The coordinator's memory budget meters this
	// estimate; 0 means the task holds no transient payload (an already
	// resident image) and bypasses the budget.
	Size(i int) int64
	// Load materializes image i. The coordinator releases the budget
	// reservation when the image's check completes, so Load's result must
	// not be retained by the source.
	Load(i int) (*sysimage.Image, error)
}

// DirSource walks a directory of "*.json" image snapshots in sorted file
// name order — the streaming fleet source behind `encore scan -shards`
// and the daemon's ?dir= batch mode. Only the name list is resident
// (~bytes per image); image payloads are decoded one at a time through
// sysimage's pooled read buffers.
type DirSource struct {
	dir   string
	names []string
}

// NewDirSource lists dir's "*.json" entries, sorted by file name.
func NewDirSource(dir string) (*DirSource, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fleet: read %s: %w", dir, err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return &DirSource{dir: dir, names: names}, nil
}

// Len is the number of image files found.
func (s *DirSource) Len() int { return len(s.names) }

// Name returns the full path of image i, matching the path the unsharded
// engine's ScanDir records in its ScanErrors.
func (s *DirSource) Name(i int) string { return filepath.Join(s.dir, s.names[i]) }

// Size is the on-disk file size — the budget estimate for the decoded
// image. A stat failure reports 0; the subsequent Load fails with the
// real error.
func (s *DirSource) Size(i int) int64 {
	st, err := os.Stat(s.Name(i))
	if err != nil {
		return 0
	}
	return st.Size()
}

// Load decodes image i through the pooled file reader.
func (s *DirSource) Load(i int) (*sysimage.Image, error) {
	return sysimage.LoadFile(s.Name(i))
}

// ImageSource adapts an already-resident image slice — the in-memory
// equivalent of Engine.Scan. Size is 0 for every task: the images are
// alive regardless, so the memory budget has nothing to meter.
type ImageSource struct {
	Images []*sysimage.Image
}

// Len is the image count.
func (s *ImageSource) Len() int { return len(s.Images) }

// Name is the image ID.
func (s *ImageSource) Name(i int) string { return s.Images[i].ID }

// Size is always 0 (already resident).
func (s *ImageSource) Size(i int) int64 { return 0 }

// Load returns the resident image.
func (s *ImageSource) Load(i int) (*sysimage.Image, error) { return s.Images[i], nil }

// BlobSource scans a slice of raw image JSON payloads — the daemon's
// batch-body mode, where the request carried the images inline.
type BlobSource struct {
	// Blobs holds one encoded image per task.
	Blobs [][]byte
	// BaseName prefixes the per-index task names ("body" → "body[3]").
	BaseName string
}

// Len is the blob count.
func (s *BlobSource) Len() int { return len(s.Blobs) }

// Name labels blob i by its position in the request.
func (s *BlobSource) Name(i int) string {
	base := s.BaseName
	if base == "" {
		base = "blob"
	}
	return fmt.Sprintf("%s[%d]", base, i)
}

// Size is the encoded payload length.
func (s *BlobSource) Size(i int) int64 { return int64(len(s.Blobs[i])) }

// Load decodes blob i.
func (s *BlobSource) Load(i int) (*sysimage.Image, error) {
	return sysimage.LoadJSON(s.Blobs[i])
}

// SyntheticSource fabricates an arbitrarily large fleet from a small set
// of pre-rendered image JSON variants: task i decodes variant i mod K and
// restamps its ID, so a 100k-image walk exercises the full decode path
// (pooled buffers, interning, per-image garbage) while only K blobs stay
// resident. This is the fleet-scale benchmark and smoke-test source —
// constant memory by construction, at any fleet size.
type SyntheticSource struct {
	variants [][]byte
	n        int
}

// NewSyntheticSource renders each image to JSON once and returns a source
// of n tasks cycling through them.
func NewSyntheticSource(images []*sysimage.Image, n int) (*SyntheticSource, error) {
	if len(images) == 0 {
		return nil, fmt.Errorf("fleet: synthetic source needs at least one variant image")
	}
	variants := make([][]byte, len(images))
	for i, im := range images {
		data, err := im.MarshalJSONIndent()
		if err != nil {
			return nil, fmt.Errorf("fleet: encode variant %s: %w", im.ID, err)
		}
		variants[i] = data
	}
	return &SyntheticSource{variants: variants, n: n}, nil
}

// Len is the synthetic fleet size.
func (s *SyntheticSource) Len() int { return s.n }

// Name stamps a stable synthetic identity per index.
func (s *SyntheticSource) Name(i int) string {
	return fmt.Sprintf("synthetic-%07d.json", i)
}

// Size is the encoded variant length.
func (s *SyntheticSource) Size(i int) int64 {
	return int64(len(s.variants[i%len(s.variants)]))
}

// Load decodes the variant and restamps its ID with the task index so
// every report carries a unique image identity.
func (s *SyntheticSource) Load(i int) (*sysimage.Image, error) {
	im, err := sysimage.LoadJSON(s.variants[i%len(s.variants)])
	if err != nil {
		return nil, err
	}
	im.ID = fmt.Sprintf("synthetic-%07d", i)
	return im, nil
}
