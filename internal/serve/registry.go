// Package serve is the resident scan daemon behind `encore serve`: a
// long-running HTTP service that holds compiled detect.Plans for many
// apps in memory, answers scan requests against them, and hot-swaps
// plans without dropping or mixing in-flight scans.
//
// The profile registry is the core structure. Each app owns one
// atomic.Pointer[Entry]; a scan request loads the pointer exactly once
// and uses that entry — plan and version together — for its whole
// lifetime, so a concurrent swap is invisible to it: every response is
// consistent with exactly one registry version, never a blend. The
// registry map itself (app set membership) is guarded by an RWMutex that
// scan requests only read-lock for the one pointer lookup.
package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/detect"
	"repro/internal/telemetry"
)

// PlanLoader turns uploaded or on-disk bytes into a live check plan; the
// CLI wires Framework.LoadPlan (binary plans) and a profile-compiling
// variant here, keeping this package decoupled from the root framework.
type PlanLoader func(data []byte) (*detect.Plan, error)

// Entry is one immutable registry version: the compiled plan plus its
// identity. A swap installs a fresh Entry; nothing in an Entry is ever
// mutated after Register publishes it.
type Entry struct {
	// App is the registry key.
	App string
	// Version identifies this plan generation ("v1", "v2", ... when
	// auto-assigned; uploads may name their own).
	Version string
	// Plan is the compiled, immutable, share-safe check plan.
	Plan *detect.Plan
	// Source records where the plan came from ("upload", "dir:<path>").
	Source string
	// LoadedAt is the swap wall-clock time.
	LoadedAt time.Time
	// Seq is the app's swap sequence number (1 for the first load).
	Seq int64
}

// appSlot is one app's hot-swap cell.
type appSlot struct {
	cur   atomic.Pointer[Entry]
	swaps atomic.Int64
}

// Registry is the versioned profile registry. All methods are safe for
// concurrent use; Get is one RLock plus one atomic load on the hot path.
type Registry struct {
	mu    sync.RWMutex
	apps  map[string]*appSlot
	rec   *telemetry.Recorder
	clock func() time.Time
}

// NewRegistry returns an empty registry reporting its gauges (loaded
// plans, per-app swap counts, last-swap timestamps) to rec (nil-safe).
func NewRegistry(rec *telemetry.Recorder) *Registry {
	return &Registry{
		apps:  make(map[string]*appSlot),
		rec:   rec,
		clock: time.Now,
	}
}

// Get returns the app's current registry entry. The returned entry is
// immutable: callers use its Plan and Version together for the whole
// request, which is what makes a concurrent swap atomic from their
// perspective.
func (g *Registry) Get(app string) (*Entry, bool) {
	g.mu.RLock()
	slot := g.apps[app]
	g.mu.RUnlock()
	if slot == nil {
		return nil, false
	}
	e := slot.cur.Load()
	if e == nil {
		return nil, false
	}
	return e, true
}

// Register installs a new plan for app and returns the entry it
// published. version == "" auto-assigns "v<seq>" from the app's swap
// sequence. In-flight scans holding the previous entry finish against
// it; requests that Get after Register see only the new one.
func (g *Registry) Register(app, version string, plan *detect.Plan, source string) (*Entry, error) {
	if app == "" {
		return nil, fmt.Errorf("serve: empty app name")
	}
	if plan == nil {
		return nil, fmt.Errorf("serve: nil plan for app %s", app)
	}
	g.mu.Lock()
	slot := g.apps[app]
	if slot == nil {
		slot = &appSlot{}
		g.apps[app] = slot
	}
	loaded := len(g.apps)
	g.mu.Unlock()

	seq := slot.swaps.Add(1)
	if version == "" {
		version = fmt.Sprintf("v%d", seq)
	}
	e := &Entry{
		App:      app,
		Version:  version,
		Plan:     plan,
		Source:   source,
		LoadedAt: g.clock(),
		Seq:      seq,
	}
	slot.cur.Store(e)

	appLabel := telemetry.L("app", app)
	g.rec.SetGauge("encore_serve_plans_loaded", "", float64(loaded))
	g.rec.AddLabeled("encore_serve_plan_swaps_total", appLabel, 1)
	g.rec.SetGauge("encore_serve_plan_last_swap_timestamp_seconds", appLabel,
		float64(e.LoadedAt.UnixNano())/1e9)
	return e, nil
}

// Len reports the number of apps with a loaded plan.
func (g *Registry) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := 0
	for _, slot := range g.apps {
		if slot.cur.Load() != nil {
			n++
		}
	}
	return n
}

// Entries snapshots the current entry of every app, sorted by app name.
func (g *Registry) Entries() []*Entry {
	g.mu.RLock()
	out := make([]*Entry, 0, len(g.apps))
	for _, slot := range g.apps {
		if e := slot.cur.Load(); e != nil {
			out = append(out, e)
		}
	}
	g.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].App < out[j].App })
	return out
}

// Swaps reports the app's swap count (0 when the app was never loaded).
func (g *Registry) Swaps(app string) int64 {
	g.mu.RLock()
	slot := g.apps[app]
	g.mu.RUnlock()
	if slot == nil {
		return 0
	}
	return slot.swaps.Load()
}

// LoadDir scans dir for "<app>.plan" files and registers each through
// loader — the cold-start path (binary plan decode is ~35µs/plan) and
// the SIGHUP re-scan path. Files that fail to load are reported in the
// returned error, but every loadable plan is still swapped in; the
// first return value counts successful registrations.
func (g *Registry) LoadDir(dir string, loader PlanLoader) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("serve: scan plan dir: %w", err)
	}
	var failures []string
	n := 0
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".plan") {
			continue
		}
		app := strings.TrimSuffix(ent.Name(), ".plan")
		path := filepath.Join(dir, ent.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", ent.Name(), err))
			continue
		}
		plan, err := loader(data)
		if err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", ent.Name(), err))
			continue
		}
		if _, err := g.Register(app, "", plan, "dir:"+path); err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", ent.Name(), err))
			continue
		}
		n++
	}
	if len(failures) > 0 {
		return n, fmt.Errorf("serve: %d plan file(s) failed to load: %s", len(failures), strings.Join(failures, "; "))
	}
	return n, nil
}
