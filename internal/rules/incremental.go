// Incremental rule inference: InferWithState captures per-candidate
// evaluation tallies during a full run, and InferDelta revalidates only the
// candidates whose evidence a row delta could have changed.
//
// The key observation is that every filter decision is a pure function of
// four numbers — total rows, support, applicable, valid — plus the two
// memoized column entropies. All four counts are sums over rows, so a
// batch of added or retired rows adjusts them in O(Δrows) per candidate
// (and the support adjustment alone decides most candidates, since the
// pruned majority never needs a Validate call). A candidate is re-swept
// from scratch only when (a) it is new or its attributes' types changed,
// so the cached tally does not exist or cannot be trusted, or (b) it was
// support-pruned before — its applicable/valid counts were never computed
// — and the adjusted support would now clear the threshold.
//
// Correctness rests on two invariants: template validation is a pure
// function of the row and its image, so a retired row's contribution can
// be subtracted by re-validating it; and the dataset's columnar index is
// maintained by the same deltas (dataset.AddRows/RetireRows), so support
// and entropy reads agree with a from-scratch rebuild bit for bit. Infer
// remains the oracle; the randomized add/retire property test enforces
// InferDelta ≡ Infer on both the rule list and LastStats.
package rules

import (
	"sort"
	"strconv"

	"repro/internal/conftypes"
	"repro/internal/dataset"
	"repro/internal/stats"
	"repro/internal/sysimage"
	"repro/internal/telemetry"
	"repro/internal/templates"
)

// candKey identifies a candidate across inference runs.
type candKey struct {
	tpl   string
	attrA string
	attrB string
}

// candTally is the raw evidence for one candidate. validated reports that
// the validation sweep ran, i.e. applicable and valid are meaningful; a
// support-pruned candidate carries only its support count.
type candTally struct {
	support    int
	applicable int
	valid      int
	validated  bool
}

// capturedCand pairs a candidate's key with its tally for state capture.
type capturedCand struct {
	key   candKey
	tally candTally
}

// InferState carries per-candidate evidence between inference runs so that
// InferDelta can update it instead of re-sweeping the corpus. Populate it
// with InferWithState; a zero-value state is valid and simply forces the
// first InferDelta to evaluate every candidate.
//
// The state is owned by one inference sequence: it must only be advanced
// by the same engine, with deltas that exactly describe the dataset's
// mutations since the state was captured.
type InferState struct {
	// total is the row count the tallies were computed against.
	total int
	// tallies maps each enumerated candidate to its evidence.
	tallies map[candKey]candTally
	// types snapshots each attribute's semantic type at capture time;
	// candidates over attributes whose type has since changed (SetType, or
	// a newly declared attribute) are re-evaluated from scratch because
	// type changes reshape the eligible candidate set.
	types map[string]conftypes.Type
}

// Candidates reports the number of candidates tracked by the state.
func (st *InferState) Candidates() int { return len(st.tallies) }

// InferWithState runs a full inference exactly like Infer and additionally
// captures every candidate's evaluation tally into st, priming it for
// subsequent InferDelta calls.
func (e *Engine) InferWithState(d *dataset.Dataset, images map[string]*sysimage.Image, st *InferState) []*Rule {
	rules, cands := e.infer(d, images, true)
	st.total = len(d.Rows)
	st.tallies = make(map[candKey]candTally, len(cands))
	for _, cc := range cands {
		st.tallies[cc.key] = cc.tally
	}
	st.types = snapshotTypes(d)
	return rules
}

// InferDelta re-infers the rule set after a row delta, reusing st's
// per-candidate tallies: each cached candidate is adjusted by the added
// and retired rows in O(Δrows) and re-classified against the current
// thresholds; only new, type-shifted, or newly-support-eligible candidates
// pay a full validation sweep. The result — rules and LastStats alike — is
// identical to a from-scratch Infer over the current dataset.
//
// added and retired are the rows the dataset gained and lost since st was
// last advanced (they must be disjoint; pass one batch per mutation).
// images must still map every retired row's system ID to its image at call
// time — validation of a retired row must see the same environment it saw
// when the row was counted in, so retire from the image map only after
// InferDelta returns. st is advanced in place. If st does not match the
// pre-delta dataset (wrong row count, never primed), every candidate is
// evaluated from scratch — the call degrades to Infer, never to a wrong
// answer.
func (e *Engine) InferDelta(d *dataset.Dataset, images map[string]*sysimage.Image, st *InferState, added, retired []*dataset.Row) []*Rule {
	defer e.Telemetry.StartStage(telemetry.StageRulesInfer)()
	ix := d.Index()
	ctxs := e.contexts(d, images)
	total := len(ctxs)

	stale := st.tallies == nil || st.total != total-len(added)+len(retired)
	curTypes := snapshotTypes(d)
	changed := make(map[string]bool)
	for name, t := range curTypes {
		if old, ok := st.types[name]; !ok || old != t {
			changed[name] = true
		}
	}

	root := e.Telemetry.StartSpan("rules.infer.delta",
		telemetry.A("added", strconv.Itoa(len(added))),
		telemetry.A("retired", strconv.Itoa(len(retired))),
		telemetry.A("stale", strconv.FormatBool(stale)))
	defer root.End()

	newTallies := make(map[candKey]candTally, len(st.tallies))
	var tally inferTally
	candidates, reused, revalidated := 0, 0, 0
	e.forEachCandidate(d, func(c candidate) {
		candidates++
		key := candKey{tpl: c.tpl.ID, attrA: c.attrA, attrB: c.attrB}
		var r *Rule
		var reason rejectReason
		var ct candTally
		old, ok := st.tallies[key]
		if stale || !ok || changed[c.attrA] || changed[c.attrB] {
			r, reason, ct = e.evaluateCandidate(ix, ctxs, c)
			revalidated++
		} else {
			ct = old
			for _, row := range added {
				e.applyRowDelta(&ct, c, row, images[row.SystemID], +1)
			}
			for _, row := range retired {
				e.applyRowDelta(&ct, c, row, images[row.SystemID], -1)
			}
			if !ct.validated && ct.support > 0 &&
				stats.SupportFraction(ct.support, total) >= e.Config.MinSupportFraction {
				// Previously support-pruned, now above threshold: the
				// applicable/valid counts were never computed, so this
				// candidate needs its first full sweep.
				r, reason, ct = e.evaluateCandidate(ix, ctxs, c)
				revalidated++
			} else {
				r, reason = e.classify(ix, c, total, ct)
				reused++
			}
		}
		tally.record(r, reason)
		if !ct.validated {
			tally.prunedSupport++
		}
		newTallies[key] = ct
	})

	st.total, st.tallies, st.types = total, newTallies, curTypes

	tally.stats.Candidates = candidates
	e.LastStats = tally.stats
	e.Telemetry.Add(telemetry.CounterRulesValidated, int64(candidates))
	e.Telemetry.Add(telemetry.CounterRulesKept, int64(tally.stats.Kept))
	e.Telemetry.Add(telemetry.CounterRulesPrunedSupport, tally.prunedSupport)
	e.Telemetry.Add(telemetry.CounterRulesPrunedEntropy, int64(tally.stats.EntropyRejected))
	e.Telemetry.Add(telemetry.CounterRulesDeltaReused, int64(reused))
	e.Telemetry.Add(telemetry.CounterRulesDeltaRevalidated, int64(revalidated))
	root.Logger(e.Log).Debug("incremental rule inference done",
		"candidates", candidates, "kept", tally.stats.Kept,
		"reused", reused, "revalidated", revalidated)
	rules := tally.rules
	sort.Slice(rules, func(i, j int) bool { return rules[i].Key() < rules[j].Key() })
	return rules
}

// applyRowDelta folds one row into (sign +1) or out of (sign -1) a
// candidate's tally. Support moves whenever both attributes are present;
// applicable/valid move only for tallies whose sweep ran — a pruned tally
// maintains support alone, which is all its classification reads.
func (e *Engine) applyRowDelta(ct *candTally, c candidate, row *dataset.Row, img *sysimage.Image, sign int) {
	va := row.Instances(c.attrA)
	vb := row.Instances(c.attrB)
	if len(va) == 0 || len(vb) == 0 {
		return
	}
	ct.support += sign
	if !ct.validated {
		return
	}
	holds, app := c.tpl.Validate(va, vb, &templates.Ctx{Row: row, Image: img})
	if !app {
		return
	}
	ct.applicable += sign
	if holds {
		ct.valid += sign
	}
}

// classify derives a candidate's outcome from its tally without a sweep —
// the same filter chain evaluateCandidate applies, fed by maintained
// counts and the index's memoized entropies.
func (e *Engine) classify(ix *dataset.Index, c candidate, total int, ct candTally) (*Rule, rejectReason) {
	if total == 0 || ct.support == 0 {
		return nil, noEvidence
	}
	if stats.SupportFraction(ct.support, total) < e.Config.MinSupportFraction {
		return nil, supportRejected
	}
	return e.finish(c, total, ct.support, ct.applicable, ct.valid, ix.Entropy(c.attrA), ix.Entropy(c.attrB))
}

// snapshotTypes records each attribute's current semantic type.
func snapshotTypes(d *dataset.Dataset) map[string]conftypes.Type {
	types := make(map[string]conftypes.Type, len(d.Attributes()))
	for _, a := range d.Attributes() {
		types[a.Name] = a.Type
	}
	return types
}
