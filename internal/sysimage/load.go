package sysimage

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/intern"
)

// internStrings canonicalizes the image's small-vocabulary fields through
// the process-wide interner: a corpus repeats the same owners, groups,
// shells, apps, and paths in every image, so deduplicating them on load
// keeps one copy alive instead of one per image.
func (im *Image) internStrings() {
	for _, fm := range im.Files {
		fm.Owner = intern.String(fm.Owner)
		fm.Group = intern.String(fm.Group)
		fm.Target = intern.String(fm.Target)
	}
	for _, u := range im.Users {
		u.Home = intern.String(u.Home)
		u.Shell = intern.String(u.Shell)
	}
	for i := range im.Services {
		im.Services[i].Name = intern.String(im.Services[i].Name)
		im.Services[i].Protocol = intern.String(im.Services[i].Protocol)
	}
	for i := range im.ConfigFiles {
		im.ConfigFiles[i].App = intern.String(im.ConfigFiles[i].App)
		im.ConfigFiles[i].Path = intern.String(im.ConfigFiles[i].Path)
	}
	im.OS.DistName = intern.String(im.OS.DistName)
	im.OS.Version = intern.String(im.OS.Version)
	im.OS.SELinux = intern.String(im.OS.SELinux)
	im.OS.FSType = intern.String(im.OS.FSType)
}

// readBufPool recycles whole-file read buffers across LoadFile calls.
// LoadJSON never retains the raw bytes (encoding/json copies into fresh
// strings), so returning the buffer right after decoding is safe.
var readBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 64<<10)
	return &b
}}

// LoadFile reads and decodes one image snapshot through a pooled read
// buffer, so a batch scanner loading thousands of files does not allocate
// one decode buffer per file.
func LoadFile(path string) (*Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sysimage: read %s: %w", path, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("sysimage: read %s: %w", path, err)
	}
	bp := readBufPool.Get().(*[]byte)
	defer readBufPool.Put(bp)
	n := int(st.Size())
	if cap(*bp) < n {
		*bp = make([]byte, 0, n)
	}
	buf := (*bp)[:n]
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, fmt.Errorf("sysimage: read %s: %w", path, err)
	}
	im, err := LoadJSON(buf)
	if err != nil {
		return nil, fmt.Errorf("sysimage: %s: %w", path, err)
	}
	return im, nil
}

// WithPooledRead reads r to EOF through a pooled buffer and passes the
// bytes to fn — the streaming-body sibling of LoadFile's pooled read,
// used by the serve daemon so per-request image decode allocates no
// transient body buffer. The buffer is recycled when fn returns, so fn
// must not retain it (decoding through LoadJSON is safe: encoding/json
// copies into fresh strings). sizeHint, when positive, pre-sizes the
// buffer (a Content-Length); reads still grow past it as needed.
func WithPooledRead(r io.Reader, sizeHint int, fn func([]byte) error) error {
	bp := readBufPool.Get().(*[]byte)
	defer readBufPool.Put(bp)
	buf := (*bp)[:0]
	// Clamp adversarial hints: a faked Content-Length must not pin a huge
	// pooled allocation. Growth below handles genuinely large bodies.
	const hintCap = 1 << 20
	if sizeHint > cap(buf) && sizeHint <= hintCap {
		buf = make([]byte, 0, sizeHint)
	}
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			*bp = buf
			return fmt.Errorf("sysimage: read body: %w", err)
		}
	}
	*bp = buf // keep the grown buffer for the pool
	return fn(buf)
}

// jsonNamesIn lists the "*.json" entries of dir sorted by file name (the
// deterministic corpus order LoadDir established).
func jsonNamesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("sysimage: read %s: %w", dir, err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// LoadDirStream visits every "*.json" image in dir in LoadDir's sorted
// order, decoding one image at a time through the pooled reader and
// passing it to fn. Unlike LoadDir it holds a single image in memory at
// once, so callers that process images independently (batch checking,
// filtering, statistics) run in constant memory over corpora of any size.
// A non-nil error from fn stops the walk and is returned unchanged.
func LoadDirStream(dir string, fn func(*Image) error) error {
	names, err := jsonNamesIn(dir)
	if err != nil {
		return err
	}
	for _, n := range names {
		im, err := LoadFile(filepath.Join(dir, n))
		if err != nil {
			return err
		}
		if err := fn(im); err != nil {
			return err
		}
	}
	return nil
}
