// Package mining provides from-scratch implementations of the two
// association-rule miners the paper evaluates in its motivation study
// (Section 2.2, Table 3): Apriori and FP-Growth.
//
// Both mine frequent item sets from boolean transactions (the binomially
// discretized configuration data). Both accept a memory budget — a cap on
// the number of frequent item sets materialized — so the paper's
// out-of-memory terminations past ~200 attributes are reproduced as a
// budget-exceeded error rather than by actually exhausting the host.
package mining

import (
	"errors"
	"sort"
)

// ErrBudgetExceeded is returned when a miner materializes more frequent
// item sets than its budget allows; it corresponds to the OOM rows of
// Table 3.
var ErrBudgetExceeded = errors.New("mining: frequent item set budget exceeded (simulated OOM)")

// FrequentSet is a frequent item set with its absolute support.
type FrequentSet struct {
	Items   []int
	Support int
}

// Result summarizes one mining run.
type Result struct {
	Sets []FrequentSet
	// Count is the number of frequent item sets found (== len(Sets)).
	Count int
}

// Miner mines frequent item sets from transactions.
type Miner interface {
	// Name identifies the algorithm.
	Name() string
	// Mine returns all item sets with support >= minSupport. Transactions
	// must be sorted, duplicate-free item-id slices.
	Mine(txns [][]int, minSupport int) (*Result, error)
}

// countSingletons tallies per-item support.
func countSingletons(txns [][]int) map[int]int {
	counts := make(map[int]int)
	for _, t := range txns {
		for _, it := range t {
			counts[it]++
		}
	}
	return counts
}

// keyOf builds a map key for an item set.
func keyOf(items []int) string {
	// Item ids are small ints; a compact byte key avoids fmt overhead.
	b := make([]byte, 0, len(items)*3)
	for _, it := range items {
		b = append(b, byte(it>>16), byte(it>>8), byte(it))
	}
	return string(b)
}

// sortSets orders frequent sets deterministically (by length, then
// lexicographic items).
func sortSets(sets []FrequentSet) {
	sort.Slice(sets, func(i, j int) bool {
		a, b := sets[i].Items, sets[j].Items
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}
