#!/bin/sh
# bench_summary.sh FILE... — append a compact machine-readable summary to
# each recorded benchmark file.
#
# The BENCH_*.json files are raw `go test -json` event streams: benchmark
# measurements are buried in "output" events as text lines. Trend tooling
# should not have to reassemble them, so this script distills one JSON
# line per benchmark:
#
#   {"summary":"bench","benchmark":"BenchmarkServeScan","ns_per_op":304855,"b_per_op":59355,"allocs_per_op":556}
#
# and appends it to the stream (valid JSONL; consumers of the raw events
# skip it by Action being absent, consumers of the trend grep
# '"summary":"bench"'). Re-running is idempotent: prior summary lines are
# stripped before the refreshed ones are appended.
set -eu

if [ "$#" -eq 0 ]; then
    echo "usage: $0 BENCH_file.json..." >&2
    exit 2
fi

for f in "$@"; do
    [ -f "$f" ] || { echo "bench_summary: no such file: $f" >&2; exit 1; }
    tmp="$f.tmp"
    grep -v '"summary":"bench"' "$f" > "$tmp" || true
    # A measurement event looks like:
    #   {"Action":"output","Test":"BenchmarkX","Output":"  3813\t 304855 ns/op\t 59355 B/op\t 556 allocs/op\n"}
    # Pull the Test name, unescape the \t separators, then read the value
    # preceding each unit token. Extra units (custom ReportMetric columns)
    # pass through harmlessly; missing -benchmem columns yield 0.
    awk '
        /"Action":"output"/ && / ns\/op/ {
            name = ""
            if (match($0, /"Test":"[^"]*"/)) {
                name = substr($0, RSTART + 8, RLENGTH - 9)
            }
            if (name == "") next
            out = $0
            sub(/.*"Output":"/, "", out)
            sub(/\\n"}.*/, "", out)
            gsub(/\\t/, " ", out)
            n = split(out, tok, /[ ]+/)
            ns = b = allocs = ""
            for (i = 2; i <= n; i++) {
                if (tok[i] == "ns/op") ns = tok[i-1]
                else if (tok[i] == "B/op") b = tok[i-1]
                else if (tok[i] == "allocs/op") allocs = tok[i-1]
            }
            if (ns == "") next
            if (b == "") b = 0
            if (allocs == "") allocs = 0
            printf "{\"summary\":\"bench\",\"benchmark\":\"%s\",\"ns_per_op\":%s,\"b_per_op\":%s,\"allocs_per_op\":%s}\n", name, ns, b, allocs
        }
    ' "$tmp" >> "$tmp"
    mv "$tmp" "$f"
    grep -c '"summary":"bench"' "$f" | {
        read -r n
        echo "bench_summary: $f — $n benchmark(s) summarized"
    }
done
