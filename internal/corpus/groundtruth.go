package corpus

import (
	"regexp"
	"strings"

	"repro/internal/conftypes"
)

// sectionScopedTypes types entries that appear inside dynamic sections
// (Apache <Directory> blocks), keyed by "Key" or "Key/argN" independent of
// the enclosing section path.
var sectionScopedTypes = map[string]conftypes.Type{
	"Options":       conftypes.TypeString,
	"AllowOverride": conftypes.TypeString,
	"Require":       conftypes.TypeString,
	"Require/arg1":  conftypes.TypeString,
	"Require/arg2":  conftypes.TypeString,
	"Limit":         conftypes.TypeString,
}

var argSuffix = regexp.MustCompile(`^arg\d+$`)

// GroundTruthType returns the expected semantic type for a generated
// attribute, consulting the app's exact map first and falling back to the
// section-scoped key patterns.
func GroundTruthType(app, attr string) (conftypes.Type, bool) {
	var exact map[string]conftypes.Type
	switch app {
	case "apache":
		exact = ApacheEntryTypes()
	case "mysql":
		exact = MySQLEntryTypes()
	case "php":
		exact = PHPEntryTypes()
	case "sshd":
		exact = SSHDEntryTypes()
	default:
		return "", false
	}
	if t, ok := exact[attr]; ok {
		return t, true
	}
	// Strip the app prefix and extract "Key" or "Key/argN" from the tail
	// of the section-scoped name.
	name := attr
	if i := strings.Index(name, ":"); i >= 0 {
		name = name[i+1:]
	}
	segs := strings.Split(name, "/")
	if len(segs) == 0 {
		return "", false
	}
	key := segs[len(segs)-1]
	if argSuffix.MatchString(key) && len(segs) >= 2 {
		key = segs[len(segs)-2] + "/" + key
	}
	if t, ok := sectionScopedTypes[key]; ok {
		return t, true
	}
	return "", false
}

// GroundTruthRules returns the ground-truth correlations for an app.
func GroundTruthRules(app string) []TrueRule {
	switch app {
	case "apache":
		return ApacheTrueRules()
	case "mysql":
		return MySQLTrueRules()
	case "php":
		return PHPTrueRules()
	default:
		return nil
	}
}
