package detect

import (
	"strings"
	"testing"

	"repro/internal/conftypes"
	"repro/internal/dataset"
	"repro/internal/rules"
	"repro/internal/sysimage"
)

// tinyTraining builds a minimal dataset with one typed attribute.
func tinyTraining() *dataset.Dataset {
	d := dataset.New()
	d.DeclareAttr("mysql:mysqld/user", conftypes.TypeUserName, false)
	for _, id := range []string{"a", "b", "c"} {
		r := d.NewRow(id)
		d.Add(r, "mysql:mysqld/user", "mysql")
	}
	return d
}

func tinyTarget() *sysimage.Image {
	im := sysimage.New("t")
	im.Users["mysql"] = &sysimage.User{Name: "mysql", UID: 27, GID: 27}
	im.Groups["mysql"] = &sysimage.Group{Name: "mysql", GID: 27}
	im.SetConfig("mysql", "/etc/my.cnf", "[mysqld]\nuser = mysql\n")
	return im
}

func TestUnknownRuleTemplateIsSkipped(t *testing.T) {
	d := tinyTraining()
	dt := New(d, []*rules.Rule{{
		Template: "no-such-template",
		AttrA:    "mysql:mysqld/user",
		AttrB:    "mysql:mysqld/user",
	}})
	rep, err := dt.Check(tinyTarget())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range rep.Warnings {
		if w.Kind == KindCorrelation {
			t.Fatalf("unknown template produced a warning: %s", w.Message)
		}
	}
}

func TestEmptyRuleSetStillChecksTypesAndValues(t *testing.T) {
	d := tinyTraining()
	dt := New(d, nil)
	target := tinyTarget()
	target.Users["other"] = &sysimage.User{Name: "other", UID: 5, GID: 5}
	target.SetConfig("mysql", "/etc/my.cnf", "[mysqld]\nuser = other\n")
	rep, err := dt.Check(target)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RankOf(func(w *Warning) bool { return w.Kind == KindSuspicious }) == 0 {
		t.Fatal("suspicious-value check should run without rules")
	}
}

func TestTargetParseErrorSurfaces(t *testing.T) {
	dt := New(tinyTraining(), nil)
	bad := tinyTarget()
	bad.SetConfig("mysql", "/etc/my.cnf", "[broken\n")
	if _, err := dt.Check(bad); err == nil {
		t.Fatal("parse error should surface")
	}
}

func TestDatasetViewAccessors(t *testing.T) {
	d := tinyTraining()
	v := DatasetView{D: d}
	if v.Samples() != 3 {
		t.Fatalf("samples = %d", v.Samples())
	}
	if v.Present("mysql:mysqld/user") != 3 {
		t.Fatal("present wrong")
	}
	h := v.Histogram("mysql:mysqld/user")
	if h["mysql"] != 3 {
		t.Fatalf("histogram = %v", h)
	}
	if len(v.Attributes()) != 1 {
		t.Fatal("attributes wrong")
	}
	if _, ok := v.Attr("ghost"); ok {
		t.Fatal("ghost attr")
	}
}

func TestGlobValuesSkipTypeCheck(t *testing.T) {
	d := dataset.New()
	d.DeclareAttr("mysql:mysqld/log-bin", conftypes.TypeFilePath, false)
	r := d.NewRow("a")
	d.Add(r, "mysql:mysqld/log-bin", "/var/log/bin-a")
	dt := New(d, nil)
	target := tinyTarget()
	target.SetConfig("mysql", "/etc/my.cnf", "[mysqld]\nlog-bin = /var/log/mysql-bin.*\n")
	rep, err := dt.Check(target)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range rep.Warnings {
		if w.Kind == KindType && strings.Contains(w.Attr, "log-bin") {
			t.Fatalf("glob value should skip type checking: %s", w.Message)
		}
	}
}

func TestEnvAttrsNeverNameViolations(t *testing.T) {
	// Table 5b env attrs (no app prefix) on a target never trained with
	// them must not be reported as misspelled entries.
	d := tinyTraining()
	dt := New(d, nil)
	target := tinyTarget()
	target.OS.DistName = "ubuntu"
	rep, err := dt.Check(target)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range rep.Warnings {
		if w.Kind == KindName && !strings.Contains(w.Attr, ":") {
			t.Fatalf("env attr flagged as name violation: %s", w.Message)
		}
	}
}
