package telemetry

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestPromTextGolden locks the Prometheus text exposition byte-for-byte on
// the shared deterministic fixture.
func TestPromTextGolden(t *testing.T) {
	got := exportFixture().PromText()
	checkGolden(t, []byte(got), "metrics.golden.prom")
}

// TestPromTextWellFormed checks the exposition's structural invariants on
// the fixture: every sample belongs to an announced family, histogram
// bucket series are cumulative (monotonically non-decreasing, ending at
// the +Inf count), and _count agrees with the snapshot.
func TestPromTextWellFormed(t *testing.T) {
	text := exportFixture().PromText()
	types := map[string]string{}
	var lastFamily string
	var bucketPrev uint64
	var bucketSeen bool
	var infCount, count uint64
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			continue
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			if parts[2] < lastFamily {
				t.Fatalf("families out of order: %q after %q", parts[2], lastFamily)
			}
			lastFamily = parts[2]
			types[parts[2]] = parts[3]
		default:
			name := line[:strings.IndexAny(line, "{ ")]
			base := name
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if strings.HasSuffix(name, suffix) && types[strings.TrimSuffix(name, suffix)] == "histogram" {
					base = strings.TrimSuffix(name, suffix)
				}
			}
			if _, ok := types[base]; !ok {
				t.Fatalf("sample %q has no TYPE header", line)
			}
			if !strings.HasPrefix(base, "encore_") {
				t.Fatalf("metric %q not in the encore_ namespace", name)
			}
			val := line[strings.LastIndex(line, " ")+1:]
			if strings.HasSuffix(name, "_bucket") {
				n, err := strconv.ParseUint(val, 10, 64)
				if err != nil {
					t.Fatalf("bucket value %q: %v", val, err)
				}
				if bucketSeen && n < bucketPrev {
					t.Fatalf("bucket series not cumulative at %q (%d < %d)", line, n, bucketPrev)
				}
				bucketPrev, bucketSeen = n, true
				if strings.Contains(line, `le="+Inf"`) {
					infCount = n
					bucketPrev, bucketSeen = 0, false
				}
			}
			if name == "encore_scan_image_scan_seconds_count" {
				count, _ = strconv.ParseUint(val, 10, 64)
			}
		}
	}
	if infCount == 0 || count == 0 || infCount != count {
		t.Fatalf("le=+Inf bucket = %d, _count = %d; want equal and non-zero", infCount, count)
	}
	if types["encore_scan_images_total"] != "counter" {
		t.Fatalf("encore_scan_images_total missing or mistyped: %v", types)
	}
}

// TestPromCounterNames pins the curated names and the sanitized fallback.
func TestPromCounterNames(t *testing.T) {
	if got := promCounterName(CounterImagesScanned); got != "encore_scan_images_total" {
		t.Fatalf("scan.images.scanned -> %q", got)
	}
	if got := promCounterName("custom.thing-2"); got != "encore_custom_thing_2_total" {
		t.Fatalf("fallback -> %q", got)
	}
	if got := promHistName(HistImageScan); got != "encore_scan_image_scan_seconds" {
		t.Fatalf("hist name -> %q", got)
	}
}

// TestPromTextPhaseAndRuntime checks the phase gauge and the runtime
// gauges reflect the snapshot's latest sample.
func TestPromTextPhaseAndRuntime(t *testing.T) {
	s := Snapshot{
		Phase:       `sc"an\`,
		SampleEvery: 2 * time.Second,
		Runtime: []RuntimeSample{
			{HeapBytes: 10, Goroutines: 3},
			{HeapBytes: 42, Goroutines: 7, GCCycles: 5, GCPauseTotal: 1500 * time.Microsecond, ProgressDone: 3, ProgressTotal: 9},
		},
	}
	text := s.PromText()
	for _, want := range []string{
		"encore_phase{phase=\"sc\\\"an\\\\\"} 1\n",
		"encore_heap_bytes 42\n",
		"encore_goroutines 7\n",
		"encore_gc_cycles_total 5\n",
		"encore_gc_pause_seconds_total 0.0015\n",
		"encore_progress_done 3\n",
		"encore_progress_total 9\n",
		"encore_runtime_samples 2\n",
		"encore_runtime_sample_interval_seconds 2\n",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	// Progress gauges only appear when a total is known.
	if text := (Snapshot{Runtime: []RuntimeSample{{HeapBytes: 1}}}).PromText(); strings.Contains(text, "encore_progress") {
		t.Fatalf("progress gauges leaked without a progress source:\n%s", text)
	}
	// An empty snapshot renders to nothing rather than junk families.
	if text := (Snapshot{}).PromText(); text != "" {
		t.Fatalf("empty snapshot rendered %q", text)
	}
}

// TestPromFloat pins the sample-value formats Prometheus parsers expect.
func TestPromFloat(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		1.5:    "1.5",
		0.0015: "0.0015",
	}
	for in, want := range cases {
		if got := promFloat(in); got != want {
			t.Fatalf("promFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
