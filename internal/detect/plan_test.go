package detect

import (
	"fmt"
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/conftypes"
	"repro/internal/dataset"
	"repro/internal/rules"
)

// randomName draws an attribute-like name: app prefix, a few path
// segments over a small alphabet so edit-distance neighbours are common.
func randomName(rng *rand.Rand) string {
	const alphabet = "abcde_"
	apps := []string{"mysql", "apache", "php"}
	n := 3 + rng.Intn(8)
	b := make([]byte, 0, n+8)
	b = append(b, apps[rng.Intn(len(apps))]...)
	b = append(b, ':')
	for i := 0; i < n; i++ {
		if i > 0 && i%4 == 0 {
			b = append(b, '/')
			continue
		}
		b = append(b, alphabet[rng.Intn(len(alphabet))])
	}
	return string(b)
}

// TestPlanNearestMatchesBruteForce is the pruned misspelling index's
// property test: against random training vocabularies and random probes
// (including near-misses of real names), Plan.nearest must return exactly
// what the legacy declaration-order scan returns.
func TestPlanNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		d := dataset.New()
		for i := 0; i < 60; i++ {
			d.DeclareAttr(randomName(rng), conftypes.TypeString, rng.Intn(4) == 0)
		}
		dt := New(d, nil)
		p := dt.Compile()
		s := p.pool.Get().(*scratch)
		attrs := d.Attributes()
		for probe := 0; probe < 80; probe++ {
			var name string
			if probe%2 == 0 {
				name = randomName(rng)
			} else {
				// Mutate a real name so suggestions actually fire.
				base := []byte(attrs[rng.Intn(len(attrs))].Name)
				pos := rng.Intn(len(base))
				switch rng.Intn(3) {
				case 0:
					base[pos] = "abcde_"[rng.Intn(6)]
				case 1:
					base = append(base[:pos], base[pos:]...)
					base[pos] = 'x'
				case 2:
					base = append(base[:pos], base[min(pos+1, len(base)):]...)
				}
				name = string(base)
			}
			want := dt.nearestTrainingAttr(name)
			got := p.nearest(s, name)
			if want != got {
				t.Fatalf("trial %d: nearest(%q) = %q, legacy %q", trial, name, got, want)
			}
		}
		s.release()
	}
}

// TestCharSigBoundsEditDistance verifies the pruning invariant the name
// index relies on: the signature popcount never exceeds the true edit
// distance, so signature-based skips are always sound.
func TestCharSigBoundsEditDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		a, b := randomName(rng), randomName(rng)
		d := editDistance(a, b, 1<<30)
		sa, sb := charSig(a), charSig(b)
		if lb := bits.OnesCount64(sa &^ sb); lb > d {
			t.Fatalf("sig lower bound %d > distance %d for %q vs %q", lb, d, a, b)
		}
		if lb := bits.OnesCount64(sb &^ sa); lb > d {
			t.Fatalf("sig lower bound %d > distance %d for %q vs %q", lb, d, b, a)
		}
	}
}

// TestEditDistanceIntoMatchesAlloc pins the buffer-reusing DP against the
// allocating wrapper across random pairs and bounds.
func TestEditDistanceIntoMatchesAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := &scratch{}
	for i := 0; i < 5000; i++ {
		a, b := randomName(rng), randomName(rng)
		bound := 1 + rng.Intn(6)
		if got, want := s.editDistance(a, b, bound), editDistance(a, b, bound); got != want {
			t.Fatalf("editDistance(%q, %q, %d) = %d via scratch, %d via alloc", a, b, bound, got, want)
		}
	}
}

// TestPlanRulesDropMissingTemplates pins compile-time rule resolution: a
// rule naming an uninstalled template is dropped (the legacy
// checkCorrelations skip), while rules with installed templates compile.
func TestPlanRulesDropMissingTemplates(t *testing.T) {
	d := dataset.New()
	d.DeclareAttr("mysql:a", conftypes.TypeString, false)
	dt := New(d, nil)
	dt.Rules = []*rules.Rule{
		{Template: "no-such-template", AttrA: "mysql:a", AttrB: "mysql:a"},
		{Template: dt.Templates[0].ID, AttrA: "mysql:a", AttrB: "mysql:a"},
	}
	p := dt.Compile()
	if len(p.rules) != 1 || p.rules[0].tpl != dt.Templates[0] {
		t.Fatalf("compiled %d rules; want exactly the one with an installed template", len(p.rules))
	}
}

// TestScratchArenaReuse pins the arena rewind: repeated checks through
// one scratch must not leak previously-scanned cell values into later
// reports (covered end to end by the reused-scratch equivalence test,
// verified here at the unit level).
func TestScratchArenaReuse(t *testing.T) {
	p := &Plan{}
	p.pool.New = func() any { return newScratch(p) }
	s := p.pool.Get().(*scratch)
	for round := 0; round < 3; round++ {
		for i := 0; i < 700; i++ { // crosses the initial arena capacity
			s.Add(fmt.Sprintf("attr-%d", i), fmt.Sprintf("v%d-%d", round, i))
		}
		for i := 0; i < 700; i++ {
			vs := s.cells[fmt.Sprintf("attr-%d", i)]
			if len(vs) != 1 || vs[0] != fmt.Sprintf("v%d-%d", round, i) {
				t.Fatalf("round %d attr-%d: cells = %v", round, i, vs)
			}
		}
		// Multi-instance attributes must keep append order.
		s.Add("multi", "one")
		s.Add("multi", "two")
		s.Add("multi", "three")
		if got := s.cells["multi"]; len(got) != 3 || got[0] != "one" || got[2] != "three" {
			t.Fatalf("round %d multi: %v", round, got)
		}
		clear(s.cells)
		s.arena = s.arena[:0]
	}
}
