package collector

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/assemble"
	"repro/internal/dataset"
	"repro/internal/sysimage"
)

// buildTree creates an extracted-image-like tree in a temp dir.
func buildTree(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	mk := func(rel, content string, mode os.FileMode) {
		t.Helper()
		p := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), mode); err != nil {
			t.Fatal(err)
		}
	}
	uid := os.Getuid()
	gid := os.Getgid()
	passwd := "root:x:0:0:root:/root:/bin/bash\n" +
		"mysql:x:27:27:MySQL:/var/lib/mysql:/sbin/nologin\n" +
		"# a comment\n" +
		"me:x:" + itoa(uid) + ":" + itoa(gid) + ":Me:/home/me:/bin/bash\n" +
		"broken-line\n"
	group := "root:x:0:\nmysql:x:27:\nwww:x:48:mysql,me\nme:x:" + itoa(gid) + ":\nbad\n"
	services := "# services\nssh 22/tcp\nmysql 3306/tcp\nmalformed\nnoport x/tcp\n"
	osRelease := "ID=ubuntu\nVERSION_ID=\"12.04\"\nPRETTY_NAME=\"Ubuntu\"\n"

	mk("etc/passwd", passwd, 0o644)
	mk("etc/group", group, 0o644)
	mk("etc/services", services, 0o644)
	mk("etc/os-release", osRelease, 0o644)
	mk("etc/my.cnf", "[mysqld]\ndatadir = /var/lib/mysql\nuser = mysql\n", 0o644)
	mk("etc/my.cnf.d/extra.cnf", "[mysqld]\nmax_connections = 100\n", 0o644)
	mk("var/lib/mysql/ibdata1", "data", 0o660)
	mk("var/log/mysqld.log", "log", 0o640)
	if err := os.Symlink("/var/lib/mysql", filepath.Join(root, "data")); err != nil {
		t.Fatal(err)
	}
	// Directories the collector must skip.
	if err := os.MkdirAll(filepath.Join(root, "proc/self"), 0o755); err != nil {
		t.Fatal(err)
	}
	return root
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func collectTree(t *testing.T) *sysimage.Image {
	t.Helper()
	img, err := Collect(buildTree(t), "collected-1", Options{
		Apps:         map[string]string{"mysql": "etc/my.cnf"},
		ExtraConfigs: map[string][]string{"mysql": {"etc/my.cnf.d/extra.cnf"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestCollectAccounts(t *testing.T) {
	img := collectTree(t)
	if !img.UserExists("mysql") || !img.UserExists("root") || !img.UserExists("me") {
		t.Fatal("users missing")
	}
	if !img.IsAdmin("root") || img.IsAdmin("mysql") {
		t.Fatal("admin flags wrong")
	}
	if !img.GroupExists("www") || !img.UserInGroup("mysql", "www") {
		t.Fatal("groups/membership missing")
	}
}

func TestCollectServicesAndOS(t *testing.T) {
	img := collectTree(t)
	if !img.PortRegistered(3306) || !img.PortRegistered(22) {
		t.Fatal("services missing")
	}
	if img.PortRegistered(9999) {
		t.Fatal("phantom service")
	}
	if img.OS.DistName != "ubuntu" || img.OS.Version != "12.04" {
		t.Fatalf("OS facts = %+v", img.OS)
	}
}

func TestCollectFileSystem(t *testing.T) {
	img := collectTree(t)
	if !img.IsDir("/var/lib/mysql") {
		t.Fatal("dir missing")
	}
	fm := img.Lookup("/var/log/mysqld.log")
	if fm == nil || fm.Kind != sysimage.KindFile {
		t.Fatalf("log meta = %+v", fm)
	}
	if fm.Mode != 0o640 {
		t.Fatalf("log mode = %o", fm.Mode)
	}
	// Ownership resolves via the image's passwd: files created by the
	// current user map to the "me" account (or root when running as uid 0).
	if fm.Owner != "me" && fm.Owner != "root" {
		t.Fatalf("owner = %q", fm.Owner)
	}
	link := img.Lookup("/data")
	if link == nil || link.Kind != sysimage.KindSymlink || link.Target != "/var/lib/mysql" {
		t.Fatalf("symlink = %+v", link)
	}
	if img.Exists("/proc/self") {
		t.Fatal("proc must be skipped")
	}
}

func TestCollectConfigs(t *testing.T) {
	img := collectTree(t)
	cfgs := img.ConfigsFor("mysql")
	if len(cfgs) != 2 {
		t.Fatalf("configs = %d", len(cfgs))
	}
	if cfgs[0].Path != "/etc/my.cnf" || cfgs[1].Path != "/etc/my.cnf.d/extra.cnf" {
		t.Fatalf("config paths = %s, %s", cfgs[0].Path, cfgs[1].Path)
	}
}

func TestCollectErrors(t *testing.T) {
	if _, err := Collect("/no/such/root", "x", Options{}); err == nil {
		t.Fatal("missing root should error")
	}
	f := filepath.Join(t.TempDir(), "file")
	os.WriteFile(f, []byte("x"), 0o644)
	if _, err := Collect(f, "x", Options{}); err == nil {
		t.Fatal("non-directory root should error")
	}
	root := buildTree(t)
	if _, err := Collect(root, "x", Options{Apps: map[string]string{"mysql": "etc/missing.cnf"}}); err == nil {
		t.Fatal("missing app config should error")
	}
	if _, err := Collect(root, "x", Options{
		Apps:         map[string]string{"mysql": "etc/my.cnf"},
		ExtraConfigs: map[string][]string{"mysql": {"etc/missing.d/x.cnf"}},
	}); err == nil {
		t.Fatal("missing fragment should error")
	}
}

func TestCollectMaxFiles(t *testing.T) {
	root := buildTree(t)
	img, err := Collect(root, "bounded", Options{MaxFiles: 3})
	if err != nil {
		t.Fatal(err)
	}
	// AddFile creates implicit parents, so the count can exceed the bound
	// slightly, but the walk must have stopped early.
	if len(img.Files) > 10 {
		t.Fatalf("bound ignored: %d files", len(img.Files))
	}
}

func TestCollectMinimalTree(t *testing.T) {
	// A tree with no passwd/group/services/os-release still collects.
	root := t.TempDir()
	os.MkdirAll(filepath.Join(root, "srv"), 0o755)
	img, err := Collect(root, "minimal", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !img.IsDir("/srv") {
		t.Fatal("tree not collected")
	}
}

// TestCollectedImageThroughPipeline runs a collected image through the
// full assembler, proving the collector's output is pipeline-ready.
func TestCollectedImageThroughPipeline(t *testing.T) {
	img := collectTree(t)
	// Assemble as a (tiny) training set.
	ds, err := assembleOne(img)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := ds.Rows[0].First("mysql:mysqld/datadir"); !ok || v != "/var/lib/mysql" {
		t.Fatalf("datadir = %q ok=%v", v, ok)
	}
	if _, ok := ds.Rows[0].First("mysql:mysqld/max_connections"); !ok {
		t.Fatal("fragment entry missing")
	}
	if v, ok := ds.Rows[0].First("mysql:mysqld/datadir.type"); !ok || v != "dir" {
		t.Fatalf("augmented type = %q ok=%v", v, ok)
	}
}

// assembleOne runs the standard assembler over a single collected image.
func assembleOne(img *sysimage.Image) (*dataset.Dataset, error) {
	return assemble.New().AssembleTraining([]*sysimage.Image{img})
}
