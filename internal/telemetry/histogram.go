package telemetry

import (
	"math"
	"time"
)

// Histogram buckets are fixed log2 boundaries: bucket i counts samples d
// with upper(i-1) < d <= upper(i), where upper(i) = 1µs << i. Forty
// boundaries reach ~152 hours, far past any realistic pipeline latency;
// one extra overflow bucket catches the rest. Fixed boundaries mean two
// histograms — e.g. one per pool worker — merge by adding counts, with no
// rebucketing and no loss beyond the original bucket resolution.
const histBuckets = 40

// Histogram is a log-bucketed latency distribution. The zero value is
// ready to use. It is NOT safe for concurrent use: either confine one
// histogram per goroutine and fold the results with Recorder.MergeHistogram,
// or record through Recorder.ObserveDur, which locks.
type Histogram struct {
	buckets [histBuckets + 1]uint64
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

// bucketUpper returns the inclusive upper bound of bucket i; the overflow
// bucket's bound is the maximum Duration.
func bucketUpper(i int) time.Duration {
	if i >= histBuckets {
		return time.Duration(math.MaxInt64)
	}
	return time.Microsecond << i
}

// bucketFor returns the bucket index for one sample. Negative samples
// (clock weirdness) land in bucket 0 with the sub-microsecond ones.
func bucketFor(d time.Duration) int {
	for i := 0; i < histBuckets; i++ {
		if d <= bucketUpper(i) {
			return i
		}
	}
	return histBuckets
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.buckets[bucketFor(d)]++
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if h.count == 0 || d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
}

// Merge adds another histogram's samples into h. Merging per-worker
// histograms is equivalent to observing every sample into one histogram:
// the bucket boundaries are fixed, and min/max/sum/count are all
// order-independent.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.count == 0 || o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the total of all recorded samples.
func (h *Histogram) Sum() time.Duration { return h.sum }

// Min returns the smallest recorded sample (0 when empty).
func (h *Histogram) Min() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample (0 when empty).
func (h *Histogram) Max() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile estimates the q-quantile (0 <= q <= 1) by locating the bucket
// holding the ceil(q*count)-th smallest sample and interpolating linearly
// inside it. The estimate is clamped to the observed [min, max], so it
// always lies within the bucket that holds the true sample quantile under
// the same nearest-rank rule — the property the oracle tests assert.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		if cum+n < target {
			cum += n
			continue
		}
		lower := time.Duration(0)
		if i > 0 {
			lower = bucketUpper(i - 1)
		}
		upper := bucketUpper(i)
		if i == histBuckets {
			// Overflow bucket: the real upper bound is whatever we saw.
			upper = h.max
		}
		pos := float64(target-cum) / float64(n)
		v := lower + time.Duration(pos*float64(upper-lower))
		return h.clamp(v)
	}
	return h.clamp(h.max)
}

func (h *Histogram) clamp(d time.Duration) time.Duration {
	if d < h.min {
		return h.min
	}
	if d > h.max {
		return h.max
	}
	return d
}

// Bucket is one non-empty histogram bucket in a snapshot. Upper is the
// inclusive upper bound; the overflow bucket reports the maximum Duration.
type Bucket struct {
	Upper time.Duration
	Count uint64
}

// HistogramData is one histogram in a snapshot: the summary statistics,
// the estimated quantiles, and the non-empty buckets in ascending bound
// order.
type HistogramData struct {
	Name          string
	Count         uint64
	Sum, Min, Max time.Duration
	P50, P90, P99 time.Duration
	Buckets       []Bucket
}

// data snapshots the histogram under the recorder's lock.
func (h *Histogram) data(name string) HistogramData {
	d := HistogramData{
		Name:  name,
		Count: h.count,
		Sum:   h.sum,
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
	for i, n := range h.buckets {
		if n > 0 {
			d.Buckets = append(d.Buckets, Bucket{Upper: bucketUpper(i), Count: n})
		}
	}
	return d
}
