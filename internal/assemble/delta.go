package assemble

import (
	"strconv"

	"repro/internal/conftypes"
	"repro/internal/dataset"
	"repro/internal/sysimage"
	"repro/internal/telemetry"
)

// AssembleDeltaRows assembles a batch of new images against an existing
// training dataset, returning detached rows ready for dataset.AddRows.
// Types are frozen: attributes the dataset already knows keep their learned
// type (so the delta rows are augmented exactly as the original training
// rows were), and only attributes first seen in this batch get entry-level
// inference — from the batch's samples alone. The rows are not attached to
// the dataset here; new columns (entries, augments, environment attributes)
// are declared so AddRows can maintain the columnar index by delta.
func (a *Assembler) AssembleDeltaRows(d *dataset.Dataset, images []*sysimage.Image) ([]*dataset.Row, error) {
	root := a.Telemetry.StartSpan("assemble.delta",
		telemetry.A("images", strconv.Itoa(len(images))))
	defer root.End()
	attrsBefore := len(d.Attributes())

	stopParse := a.Telemetry.StartStage(telemetry.StageAssembleParse)
	parsed, err := a.parseImages(images)
	stopParse()
	if err != nil {
		return nil, err
	}
	a.Telemetry.Add(telemetry.CounterImagesParsed, int64(len(images)))
	a.Telemetry.Add(telemetry.CounterFilesParsed, countFiles(images))

	// Pass 1: resolve a type for every entry attribute the batch mentions.
	// Known attributes reuse the dataset's learned type; unknown ones
	// collect their batch samples (in first-seen order, like
	// AssembleTraining) for entry-level inference.
	stopInfer := a.Telemetry.StartStage(telemetry.StageAssembleInfer)
	types := make(map[string]conftypes.Type)
	samples := make(map[string][]conftypes.Sample)
	var order []string
	for _, pi := range parsed {
		for _, nv := range extractPairs(pi) {
			if _, done := types[nv.Name]; done {
				continue
			}
			if attr, ok := d.Attr(nv.Name); ok {
				types[nv.Name] = attr.Type
				continue
			}
			if _, seen := samples[nv.Name]; !seen {
				order = append(order, nv.Name)
			}
			samples[nv.Name] = append(samples[nv.Name], conftypes.Sample{Value: nv.Value, Image: pi.img})
		}
	}
	for _, name := range order {
		types[name] = a.Inferencer.InferEntryNamed(name, samples[name])
	}
	stopInfer()

	// Pass 2: declare the new entry columns up front (first-seen order,
	// mirroring AssembleTraining), then emit each image into a detached row.
	// Augmented and environment columns declare themselves through the sink
	// exactly as the training paths do.
	stopRows := a.Telemetry.StartStage(telemetry.StageAssembleRows)
	for _, name := range order {
		d.DeclareAttr(name, types[name], false)
	}
	rows := make([]*dataset.Row, len(parsed))
	for i, pi := range parsed {
		row := &dataset.Row{SystemID: pi.img.ID, Cells: make(map[string][]string)}
		a.emitRow(deltaSink{d: d, row: row}, pi, types)
		rows[i] = row
	}
	stopRows()
	a.Telemetry.Add(telemetry.CounterAttrsDeclared, int64(len(d.Attributes())-attrsBefore))
	root.SetAttr("new_attributes", strconv.Itoa(len(d.Attributes())-attrsBefore))
	return rows, nil
}

// deltaSink routes emitRow's operations for a detached row: declarations
// and type refinements go to the shared dataset (new augmented/environment
// columns must exist before AddRows indexes the rows), values go into the
// detached row's cells.
type deltaSink struct {
	d   *dataset.Dataset
	row *dataset.Row
}

func (s deltaSink) declare(name string, t conftypes.Type, augmented bool) {
	s.d.DeclareAttr(name, t, augmented)
}
func (s deltaSink) add(name, value string) {
	s.row.Cells[name] = append(s.row.Cells[name], value)
}
func (s deltaSink) setType(name string, t conftypes.Type) { s.d.SetType(name, t) }
