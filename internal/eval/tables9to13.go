package eval

import (
	"fmt"
	"strings"

	"repro/internal/corpus"
	"repro/internal/detect"
	"repro/internal/rules"
	"repro/internal/sysimage"
)

// ---- Table 9 ----

// Table9Row is the detection result for one real-world case.
type Table9Row struct {
	Case     corpus.Case
	Detected bool
	Rank     int
	Total    int
}

// Table9 reproduces the real-world case study: each of the ten
// reconstructed cases is checked against the knowledge learned for its
// application.
func Table9(seed int64) ([]Table9Row, error) {
	trained, err := trainAll(seed)
	if err != nil {
		return nil, err
	}
	var rows []Table9Row
	for _, c := range corpus.RealWorldCases() {
		tr := trained[c.App]
		target := c.Build()
		report, err := tr.Detector().Check(target)
		if err != nil {
			return nil, err
		}
		row := Table9Row{Case: c, Total: len(report.Warnings)}
		row.Rank = report.RankOf(func(w *detect.Warning) bool {
			return attrRefers(w.Attr, c.MatchAttr)
		})
		row.Detected = row.Rank > 0
		rows = append(rows, row)
	}
	return rows, nil
}

// attrRefers reports whether attr names base or one of its derived
// (augmented / argument) attributes.
func attrRefers(attr, base string) bool {
	if attr == base {
		return true
	}
	if strings.HasPrefix(attr, base) && len(attr) > len(base) {
		switch attr[len(base)] {
		case '.', '/':
			return true
		}
	}
	return false
}

// RenderTable9 prints Table 9.
func RenderTable9(rows []Table9Row) string {
	var b strings.Builder
	b.WriteString("Table 9: detection of real-world misconfigurations\n")
	fmt.Fprintf(&b, "%-3s %-8s %-12s %-10s %-10s %s\n", "ID", "App", "Info", "Rank", "Paper", "Problem")
	for _, r := range rows {
		rank := "-"
		if r.Detected {
			rank = fmt.Sprintf("%d(%d)", r.Rank, r.Total)
		}
		paper := "-"
		if r.Case.PaperRank > 0 {
			paper = fmt.Sprintf("%d(%d)", r.Case.PaperRank, r.Case.PaperTotal)
		}
		problem := r.Case.Problem
		if len(problem) > 60 {
			problem = problem[:57] + "..."
		}
		fmt.Fprintf(&b, "%-3d %-8s %-12s %-10s %-10s %s\n", r.Case.ID, r.Case.App, r.Case.Info, rank, paper, problem)
	}
	return b.String()
}

// ---- Table 10 ----

// Table10Row is one source's detected-misconfiguration category counts.
type Table10Row struct {
	Source       string
	FilePath     int
	Permission   int
	ValueCompare int
	Total        int
	Images       int // distinct images with at least one detection
}

// Table10 applies the EC2-trained detectors to the EC2-like and
// private-cloud-like target populations and categorizes detections against
// the planted ground truth.
func Table10(seed int64) ([]Table10Row, error) {
	trained, err := trainAll(seed)
	if err != nil {
		return nil, err
	}
	ec2, err := corpus.EC2Targets(seed + 1)
	if err != nil {
		return nil, err
	}
	pc, err := corpus.PrivateCloudTargets(seed + 2)
	if err != nil {
		return nil, err
	}
	var rows []Table10Row
	for _, src := range []struct {
		name string
		pop  *corpus.TargetPopulation
	}{{"EC2", ec2}, {"PrivateCloud", pc}} {
		row := Table10Row{Source: src.name}
		byID := corpus.ByID(src.pop.Images)
		reports := map[string]*detect.Report{}
		imagesHit := map[string]bool{}
		for _, l := range src.pop.Truth {
			img := byID[l.ImageID]
			rep, ok := reports[l.ImageID]
			if !ok {
				app := appOf(img)
				r, err := trained[app].Detector().Check(img)
				if err != nil {
					return nil, err
				}
				rep, reports[l.ImageID] = r, r
			}
			if rep.RankOf(func(w *detect.Warning) bool { return attrRefers(w.Attr, l.Attr) }) > 0 {
				switch l.Category {
				case "FilePath":
					row.FilePath++
				case "Permission":
					row.Permission++
				case "ValueCompare":
					row.ValueCompare++
				}
				row.Total++
				imagesHit[l.ImageID] = true
			}
		}
		row.Images = len(imagesHit)
		rows = append(rows, row)
	}
	return rows, nil
}

func appOf(img *sysimage.Image) string {
	for _, app := range Apps {
		if img.ConfigFor(app) != nil {
			return app
		}
	}
	return ""
}

// RenderTable10 prints Table 10.
func RenderTable10(rows []Table10Row) string {
	var b strings.Builder
	b.WriteString("Table 10: categories of newly detected misconfigurations\n")
	fmt.Fprintf(&b, "%-14s %9s %11s %13s %6s %7s\n", "Source", "FilePath", "Permission", "ValueCompare", "Total", "Images")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %9d %11d %13d %6d %7d\n", r.Source, r.FilePath, r.Permission, r.ValueCompare, r.Total, r.Images)
	}
	return b.String()
}

// ---- Table 11 ----

// Table11Row is the type-inference accuracy for one app.
type Table11Row struct {
	App        string
	Entries    int
	NonTrivial int
	FalseTypes int
	Undetected int
}

// Table11 compares inferred attribute types against the corpus ground
// truth: FalseTypes counts attributes inferred with a wrong non-trivial
// type; Undetected counts ground-truth non-trivial attributes inferred as
// trivial.
func Table11(seed int64) ([]Table11Row, error) {
	rows := make([]Table11Row, len(Apps))
	if err := forEachApp(func(i int, app string) error {
		tr, err := Train(app, 0, seed)
		if err != nil {
			return err
		}
		row := Table11Row{App: app}
		for _, a := range tr.Data.Attributes() {
			if a.Augmented {
				continue
			}
			truth, ok := corpus.GroundTruthType(app, a.Name)
			if !ok {
				continue
			}
			row.Entries++
			if !truth.IsTrivial() {
				row.NonTrivial++
			}
			switch {
			case a.Type == truth:
			case truth.IsTrivial() && a.Type.IsTrivial():
			case a.Type.IsTrivial() && !truth.IsTrivial():
				row.Undetected++
			default:
				row.FalseTypes++
			}
		}
		rows[i] = row
		return nil
	}); err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderTable11 prints Table 11.
func RenderTable11(rows []Table11Row) string {
	var b strings.Builder
	b.WriteString("Table 11: data type detection results\n")
	fmt.Fprintf(&b, "%-8s %8s %11s %11s %11s\n", "App", "Entries", "NonTrivial", "FalseTypes", "Undetected")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %8d %11d %11d %11d\n", r.App, r.Entries, r.NonTrivial, r.FalseTypes, r.Undetected)
	}
	return b.String()
}

// ---- Table 12 ----

// Table12Row is the rule-inference result for one app.
type Table12Row struct {
	App            string
	DetectedRules  int
	FalsePositives int
}

// Table12 counts the rules learned with all filters on, classifying each
// against the corpus ground truth.
func Table12(seed int64) ([]Table12Row, error) {
	rows := make([]Table12Row, len(Apps))
	if err := forEachApp(func(i int, app string) error {
		tr, err := Train(app, 0, seed)
		if err != nil {
			return err
		}
		truth := corpus.GroundTruthRules(app)
		row := Table12Row{App: app, DetectedRules: len(tr.Rules)}
		for _, r := range tr.Rules {
			if !isTrueRule(r, truth) {
				row.FalsePositives++
			}
		}
		rows[i] = row
		return nil
	}); err != nil {
		return nil, err
	}
	return rows, nil
}

func isTrueRule(r *rules.Rule, truth []corpus.TrueRule) bool {
	for _, t := range truth {
		if t.Matches(r.Template, r.AttrA, r.AttrB) {
			return true
		}
	}
	return false
}

// RenderTable12 prints Table 12.
func RenderTable12(rows []Table12Row) string {
	var b strings.Builder
	b.WriteString("Table 12: detected correlation rules with the filters\n")
	fmt.Fprintf(&b, "%-8s %15s %16s\n", "App", "Detected Rules", "False Positives")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %15d %16d\n", r.App, r.DetectedRules, r.FalsePositives)
	}
	return b.String()
}

// ---- Table 13 ----

// Table13Row is the entropy-filter ablation for one app.
type Table13Row struct {
	App          string
	Original     int // rules passing support+confidence only
	FPReduced    int // false rules removed by the entropy filter
	FNIntroduced int // true rules removed by the entropy filter
}

// Table13 re-runs inference with the entropy filter disabled and measures
// what the filter removes.
func Table13(seed int64) ([]Table13Row, error) {
	rows := make([]Table13Row, len(Apps))
	if err := forEachApp(func(i int, app string) error {
		tr, err := Train(app, 0, seed)
		if err != nil {
			return err
		}
		truth := corpus.GroundTruthRules(app)
		withFilter := map[string]bool{}
		for _, r := range tr.Rules {
			withFilter[r.Key()] = true
		}
		// Reuse the training engine (its evaluation contexts for tr.Data /
		// tr.ByID are already memoized) with the entropy filter toggled
		// off for the ablation run.
		eng := tr.Engine
		eng.Config.UseEntropyFilter = false
		unfiltered := eng.Infer(tr.Data, tr.ByID)
		eng.Config.UseEntropyFilter = true
		row := Table13Row{App: app, Original: len(unfiltered)}
		for _, r := range unfiltered {
			if withFilter[r.Key()] {
				continue // survived the filter
			}
			if isTrueRule(r, truth) {
				row.FNIntroduced++
			} else {
				row.FPReduced++
			}
		}
		rows[i] = row
		return nil
	}); err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderTable13 prints Table 13.
func RenderTable13(rows []Table13Row) string {
	var b strings.Builder
	b.WriteString("Table 13: effectiveness of the entropy filter\n")
	fmt.Fprintf(&b, "%-8s %10s %12s %14s\n", "App", "Original", "FP Reduced", "FN Introduced")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %10d %12d %14d\n", r.App, r.Original, r.FPReduced, r.FNIntroduced)
	}
	return b.String()
}
