package eval

import (
	"strings"
	"testing"
)

const testSeed = 1

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The study catalog is asserted in detail in internal/study; here we
	// only check the rendering includes the headline numbers.
	out := RenderTable1()
	for _, want := range []string{"Apache", "94", "29", "42", "113", "31%", "51%"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	rows, err := Table2(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !(r.Original < r.Augmented && r.Augmented < r.Binomial) {
			t.Errorf("%s: attribute growth violated: %d / %d / %d", r.App, r.Original, r.Augmented, r.Binomial)
		}
	}
	out := RenderTable2(rows)
	if !strings.Contains(out, "Original") || !strings.Contains(out, "Binomial") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestTable3Shape(t *testing.T) {
	rows, err := Table3(testSeed, nil, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	perApp := map[string][]Table3Row{}
	for _, r := range rows {
		perApp[r.App] = append(perApp[r.App], r)
	}
	for app, rs := range perApp {
		if len(rs) != len(Table3Fractions) {
			t.Fatalf("%s: %d sweep points", app, len(rs))
		}
		// Finding 3: growth is monotone until the budget blows, and the
		// full attribute set always exceeds the budget (the OOM row).
		last := rs[len(rs)-1]
		if !last.OOM {
			t.Errorf("%s: full attribute set should exceed the budget, got %d sets", app, last.FreqSets)
		}
		prev := -1
		for _, r := range rs {
			if r.OOM {
				break
			}
			if r.FreqSets < prev {
				t.Errorf("%s: frequent sets shrank: %v", app, rs)
			}
			prev = r.FreqSets
		}
	}
	out := RenderTable3(rows)
	if !strings.Contains(out, "OOM") {
		t.Fatalf("render should mention OOM:\n%s", out)
	}
}

func TestTable8Shape(t *testing.T) {
	rows, err := Table8(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Total != InjectionsPerApp {
			t.Errorf("%s: total = %d", r.App, r.Total)
		}
		// The paper's ordering: Baseline <= Baseline+Env <= EnCore, with
		// EnCore near-perfect and clearly dominant.
		if !(r.Baseline <= r.BaselineEnv && r.BaselineEnv <= r.EnCore) {
			t.Errorf("%s: ordering violated: %d / %d / %d", r.App, r.Baseline, r.BaselineEnv, r.EnCore)
		}
		if r.EnCore < r.Total-2 {
			t.Errorf("%s: EnCore detected only %d of %d", r.App, r.EnCore, r.Total)
		}
		if r.Baseline > 0 && float64(r.EnCore)/float64(r.Baseline) < 1.6 {
			t.Errorf("%s: improvement factor %.2f below the paper's 1.6x floor",
				r.App, float64(r.EnCore)/float64(r.Baseline))
		}
	}
	out := RenderTable8(rows)
	if !strings.Contains(out, "EnCore") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestTable9Shape(t *testing.T) {
	rows, err := Table9(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	detected := 0
	for _, r := range rows {
		if r.Case.ExpectMiss {
			if r.Detected {
				t.Errorf("case %d should be missed (no hardware info in training), got rank %d", r.Case.ID, r.Rank)
			}
			continue
		}
		if !r.Detected {
			t.Errorf("case %d (%s) not detected", r.Case.ID, r.Case.Problem)
			continue
		}
		detected++
		if r.Rank > 3 {
			t.Errorf("case %d ranked %d (want top 3)", r.Case.ID, r.Rank)
		}
	}
	if detected != 9 {
		t.Errorf("detected %d of 9 detectable cases", detected)
	}
	out := RenderTable9(rows)
	if !strings.Contains(out, "AppArmor") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestTable10Shape(t *testing.T) {
	rows, err := Table10(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	var ec2, pc Table10Row
	for _, r := range rows {
		if r.Source == "EC2" {
			ec2 = r
		} else {
			pc = r
		}
	}
	// The planted mixes are 3/10/24 (EC2) and 10/3/11 (private cloud);
	// detection should recover most of each category and preserve the
	// skew the paper reports.
	if ec2.ValueCompare <= ec2.FilePath {
		t.Errorf("EC2 skew lost: %+v", ec2)
	}
	if pc.FilePath <= pc.Permission {
		t.Errorf("private-cloud skew lost: %+v", pc)
	}
	if ec2.Total < 30 || pc.Total < 18 {
		t.Errorf("detection recall too low: EC2 %d/37, PC %d/24", ec2.Total, pc.Total)
	}
	if ec2.Images == 0 || pc.Images == 0 {
		t.Error("image counts missing")
	}
	out := RenderTable10(rows)
	if !strings.Contains(out, "PrivateCloud") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestTable11Shape(t *testing.T) {
	rows, err := Table11(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Entries == 0 || r.NonTrivial == 0 {
			t.Errorf("%s: empty row %+v", r.App, r)
		}
		if r.NonTrivial > r.Entries {
			t.Errorf("%s: non-trivial exceeds entries: %+v", r.App, r)
		}
		// Inference errors exist (the paper reports them) but stay a small
		// fraction.
		if r.FalseTypes+r.Undetected > r.Entries/3 {
			t.Errorf("%s: too many inference errors: %+v", r.App, r)
		}
	}
	out := RenderTable11(rows)
	if !strings.Contains(out, "FalseTypes") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestTable12And13Shape(t *testing.T) {
	t12, err := Table12(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range t12 {
		if r.DetectedRules == 0 {
			t.Errorf("%s: no rules", r.App)
		}
		if r.FalsePositives >= r.DetectedRules {
			t.Errorf("%s: more FPs than true rules: %+v", r.App, r)
		}
	}
	t13, err := Table13(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range t13 {
		if r.Original == 0 {
			t.Errorf("%s: no unfiltered rules", r.App)
			continue
		}
		// The entropy filter removes far more false rules than true ones.
		if r.FPReduced <= r.FNIntroduced*10 {
			t.Errorf("%s: entropy filter trade-off wrong: %+v", r.App, r)
		}
	}
	if !strings.Contains(RenderTable12(t12), "False Positives") {
		t.Fatal("table 12 render")
	}
	if !strings.Contains(RenderTable13(t13), "FN Introduced") {
		t.Fatal("table 13 render")
	}
}

func TestTrainUsesPaperSizes(t *testing.T) {
	if TrainingSize("apache") != 127 || TrainingSize("mysql") != 187 || TrainingSize("php") != 123 {
		t.Fatal("training sizes diverge from the paper")
	}
	if TrainingSize("other") == 0 {
		t.Fatal("unknown app should get a default size")
	}
	tr, err := Train("php", 10, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Images) != 10 || tr.Detector() == nil {
		t.Fatal("Train(10) wrong")
	}
}

func TestAttrRefers(t *testing.T) {
	if !attrRefers("a.owner", "a") || !attrRefers("a/arg2", "a") || !attrRefers("a", "a") {
		t.Fatal("positive cases failed")
	}
	if attrRefers("ab", "a") || attrRefers("b", "a") {
		t.Fatal("negative cases failed")
	}
}
