package alert

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// fastWebhook builds a webhook notifier with millisecond backoff so the
// retry ladder doesn't slow the suite.
func fastWebhook(name, url string, retries int, timeout time.Duration) *WebhookNotifier {
	return NewWebhookNotifier(NotifierConfig{
		Name: name, Type: "webhook", URL: url,
		Timeout: timeout, Retries: retries, Backoff: time.Millisecond,
	})
}

// TestWebhookDeliversPayloadAndHeaders: the receiver sees the alert JSON
// plus the provenance headers that join it to the daemon access log.
func TestWebhookDeliversPayloadAndHeaders(t *testing.T) {
	var gotBody []byte
	var gotReqID, gotPlanVersion, gotContentType string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotReqID = r.Header.Get("X-Request-Id")
		gotPlanVersion = r.Header.Get("X-Encore-Plan-Version")
		gotContentType = r.Header.Get("Content-Type")
		var buf bytes.Buffer
		buf.ReadFrom(r.Body)
		gotBody = buf.Bytes()
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	n := fastWebhook("hook", srv.URL, 0, time.Second)
	defer n.Close()
	a := testAlert("mysql", "mysql:port", 85)
	a.FiredAtUnix = 1700000000
	if err := n.Notify(&a); err != nil {
		t.Fatal(err)
	}
	if gotReqID != "req-1" || gotPlanVersion != "v1" || gotContentType != "application/json" {
		t.Fatalf("headers = id %q, plan %q, ct %q", gotReqID, gotPlanVersion, gotContentType)
	}
	var decoded Alert
	if err := json.Unmarshal(gotBody, &decoded); err != nil {
		t.Fatalf("payload not JSON: %v\n%s", err, gotBody)
	}
	if decoded != a {
		t.Fatalf("payload round-trip mismatch:\n got %+v\nwant %+v", decoded, a)
	}
}

// TestWebhookRetriesThenSucceeds: transient 500s are retried with
// backoff until the receiver recovers.
func TestWebhookRetriesThenSucceeds(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	n := fastWebhook("hook", srv.URL, 3, time.Second)
	defer n.Close()
	a := testAlert("mysql", "mysql:port", 85)
	if err := n.Notify(&a); err != nil {
		t.Fatalf("notify should succeed on attempt 3: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
}

// TestWebhookExhaustsRetries: a persistently failing receiver consumes
// exactly 1+retries attempts and surfaces an error.
func TestWebhookExhaustsRetries(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()

	n := fastWebhook("hook", srv.URL, 2, time.Second)
	defer n.Close()
	a := testAlert("mysql", "mysql:port", 85)
	err := n.Notify(&a)
	if err == nil {
		t.Fatal("notify succeeded against a 500-only receiver")
	}
	if !strings.Contains(err.Error(), "status 500") {
		t.Fatalf("error should carry the status: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", got)
	}
}

// TestWebhookClientErrorNoRetry: a 4xx (other than 429) is permanent —
// exactly one attempt.
func TestWebhookClientErrorNoRetry(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer srv.Close()

	n := fastWebhook("hook", srv.URL, 5, time.Second)
	defer n.Close()
	a := testAlert("mysql", "mysql:port", 85)
	if err := n.Notify(&a); err == nil {
		t.Fatal("notify succeeded against a 400 receiver")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (4xx must not retry)", got)
	}
}

// TestWebhookTimeout: a receiver that never answers within the
// per-attempt timeout fails the attempt (and retries).
func TestWebhookTimeout(t *testing.T) {
	release := make(chan struct{})
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		<-release
	}))
	// LIFO: the gate must open before srv.Close() waits on the wedged
	// handlers.
	defer srv.Close()
	defer close(release)

	n := fastWebhook("hook", srv.URL, 1, 30*time.Millisecond)
	defer n.Close()
	a := testAlert("mysql", "mysql:port", 85)
	start := time.Now()
	err := n.Notify(&a)
	if err == nil {
		t.Fatal("notify succeeded against a hung receiver")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout not enforced: notify took %v", elapsed)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("attempts = %d, want 2 (timeout retries once)", got)
	}
}

// TestWebhookFaultMetricsNoLeak is the pipeline-level fault contract: a
// webhook that always 500s lands outcome="error" in
// encore_alerts_total, records the failure in the ring, and leaves no
// goroutines behind after Shutdown (leak-pinned like serve.Close).
func TestWebhookFaultMetricsNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()

	rec := telemetry.New()
	pol := DefaultPolicy()
	pol.Notifiers = []NotifierConfig{{
		Name: "hook", Type: "webhook", URL: srv.URL,
		Timeout: time.Second, Retries: 1, Backoff: time.Millisecond,
	}}
	p, err := NewPipeline(Options{Policy: pol, Rec: rec})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Publish(testAlert("mysql", "mysql:port", 85)) {
		t.Fatal("publish rejected")
	}
	shutdownPipeline(t, p)

	if n := rec.LabeledCounter(MetricAlertsTotal,
		telemetry.L("notifier", "hook", "severity", "high", "outcome", "error")); n != 1 {
		t.Fatalf("alerts_total{hook,high,error} = %d, want 1", n)
	}
	if st := p.Stats(); st.Failed != 1 || st.Delivered != 0 {
		t.Fatalf("stats = %+v", st)
	}
	recent := p.Recent(1)
	if len(recent) != 1 || recent[0].Deliveries[0].Outcome != OutcomeError ||
		recent[0].Deliveries[0].Error == "" {
		t.Fatalf("ring should record the failed delivery: %+v", recent)
	}

	srv.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: before=%d after=%d\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFileNotifierJSONL: one parseable JSON line per alert, carrying
// request ID and plan version.
func TestFileNotifierJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "alerts.jsonl")
	n, err := NewFileNotifier("audit", path)
	if err != nil {
		t.Fatal(err)
	}
	a1 := testAlert("mysql", "mysql:port", 85)
	a2 := testAlert("apache", "apache:Listen", 45)
	a2.RequestID, a2.PlanVersion = "req-2", "v7"
	for _, a := range []Alert{a1, a2} {
		a := a
		if err := n.Notify(&a); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	a3 := a1
	if err := n.Notify(&a3); err == nil {
		t.Fatal("notify after close should fail")
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("file holds %d lines, want 2:\n%s", len(lines), data)
	}
	var got Alert
	if err := json.Unmarshal([]byte(lines[1]), &got); err != nil {
		t.Fatalf("line 2 not JSON: %v", err)
	}
	if got.RequestID != "req-2" || got.PlanVersion != "v7" || got.App != "apache" {
		t.Fatalf("JSONL line lost provenance: %+v", got)
	}
}

// TestSlogNotifierFields: the log line carries the correlation fields and
// is leveled by severity.
func TestSlogNotifierFields(t *testing.T) {
	var buf bytes.Buffer
	log := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelInfo}))
	n := NewSlogNotifier("ops-log", log)
	a := testAlert("mysql", "mysql:port", 85)
	if err := n.Notify(&a); err != nil {
		t.Fatal(err)
	}
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log line not JSON: %v\n%s", err, buf.Bytes())
	}
	if rec["level"] != "ERROR" {
		t.Fatalf("high severity should log at error, got %v", rec["level"])
	}
	if rec["request_id"] != "req-1" || rec["plan_version"] != "v1" || rec["attr"] != "mysql:port" {
		t.Fatalf("log line missing fields: %v", rec)
	}
}

// TestBuildNotifiersFromPolicy: the policy-built set matches the
// declarations, and a bad file path fails at startup.
func TestBuildNotifiersFromPolicy(t *testing.T) {
	dir := t.TempDir()
	pol, err := ParsePolicy([]byte(strings.ReplaceAll(fullPolicyDoc,
		"/tmp/alerts.jsonl", filepath.Join(dir, "a.jsonl"))))
	if err != nil {
		t.Fatal(err)
	}
	ns, err := BuildNotifiers(pol, slog.New(slog.NewTextHandler(os.Stderr, nil)))
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 3 || ns[0].Name() != "ops-log" || ns[1].Name() != "audit" || ns[2].Name() != "pager" {
		t.Fatalf("built notifiers wrong: %v", ns)
	}
	for _, n := range ns {
		if c, ok := n.(interface{ Close() error }); ok {
			c.Close()
		}
	}

	pol.Notifiers = []NotifierConfig{{Name: "bad", Type: "file", Path: filepath.Join(dir, "missing", "a.jsonl")}}
	if _, err := BuildNotifiers(pol, nil); err == nil {
		t.Fatal("unwritable file path should fail at build time")
	}
}

// TestPipelineShutdownClosesNotifiers: file notifiers are closed on
// shutdown (a second Shutdown must not re-close).
func TestPipelineShutdownClosesNotifiers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "alerts.jsonl")
	n, err := NewFileNotifier("audit", path)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(Options{Notifiers: []Notifier{n}})
	if err != nil {
		t.Fatal(err)
	}
	p.Publish(testAlert("mysql", "mysql:port", 85))
	shutdownPipeline(t, p)
	a := testAlert("mysql", "mysql:late", 85)
	if err := n.Notify(&a); err == nil {
		t.Fatal("file notifier should be closed after pipeline shutdown")
	}
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
