package corpus

import (
	"fmt"
	"strings"

	"repro/internal/conftypes"
)

// MySQLOptions tunes MySQL image generation.
type MySQLOptions struct {
	// Hardware attaches a hardware spec and sizes memory-dependent
	// options against it (running-instance crawl).
	Hardware bool
}

// BuildMySQL generates one coherent MySQL image.
func (b *Builder) BuildMySQL(opts MySQLOptions) {
	b.SetOS()
	if opts.Hardware {
		b.SetHardware()
	}
	img := b.Img
	rng := b.Rng

	user := PickWeighted(rng, []string{"mysql", "mysqld"}, []int{5, 1})
	b.AddAccount(user, 27)

	datadir := Pick(rng, []string{"/var/lib/mysql", "/data/mysql", "/srv/mysql", "/opt/mysql/data"})
	img.AddDir(datadir, user, user, uint32(Pick(rng, []int{0o750, 0o700})))
	img.AddRegular(datadir+"/ibdata1", user, user, 0o660, int64(rng.Intn(64)+1)<<20)
	img.AddDir(datadir+"/mysql", user, user, 0o700)

	socket := datadir + "/mysql.sock"
	img.AddRegular(socket, user, user, 0o777, 0)

	logFile := Pick(rng, []string{"/var/log/mysqld.log", "/var/log/mysql.log"})
	// Best practice in the population: the log is not world readable
	// because it can contain sensitive data (the Table 10 finding).
	img.AddRegular(logFile, user, user, 0o640, int64(rng.Intn(8))<<20)

	pidFile := "/var/run/mysqld.pid"
	img.AddRegular(pidFile, user, user, 0o644, 16)

	tmpdir := "/tmp"

	port := 3306
	bind := PickWeighted(rng, []string{"127.0.0.1", img.OS.IPAddress, "0.0.0.0"}, []int{4, 3, 3})

	// Ordered size pair: net_buffer_length is the protocol floor and is
	// effectively never tuned (constant — the entropy-filter FN example),
	// max_allowed_packet varies.
	netBuf := "8K"
	packet := Pick(rng, []string{"1M", "16M", "32M", "64M"})
	keyBuf := Pick(rng, []string{"8M", "16M", "32M"})

	// Memory-coupled option: on running instances it is sized below the
	// machine memory. Dormant template images carry whatever the config
	// was copied from, across a wide spread of machine sizes — which is
	// precisely why, without hardware information, a heap equal to the
	// target's memory is indistinguishable from a legitimate setting
	// (real-world case #8 is missed for this reason).
	heap := Pick(rng, []string{"16M", "64M", "256M", "1G", "8G"})
	if opts.Hardware {
		heap = conftypes.FormatSize(img.HW.MemBytes / int64(Pick(rng, []int{8, 16, 32})))
	}

	maxConn := Pick(rng, []string{"100", "151", "200", "500"})

	var sb strings.Builder
	sb.WriteString("[mysqld]\n")
	fmt.Fprintf(&sb, "datadir = %s\n", datadir)
	fmt.Fprintf(&sb, "user = %s\n", user)
	fmt.Fprintf(&sb, "port = %d\n", port)
	fmt.Fprintf(&sb, "bind-address = %s\n", bind)
	fmt.Fprintf(&sb, "socket = %s\n", socket)
	fmt.Fprintf(&sb, "log-error = %s\n", logFile)
	fmt.Fprintf(&sb, "pid-file = %s\n", pidFile)
	fmt.Fprintf(&sb, "tmpdir = %s\n", tmpdir)
	fmt.Fprintf(&sb, "max_allowed_packet = %s\n", packet)
	fmt.Fprintf(&sb, "net_buffer_length = %s\n", netBuf)
	fmt.Fprintf(&sb, "key_buffer_size = %s\n", keyBuf)
	fmt.Fprintf(&sb, "max_heap_table_size = %s\n", heap)
	fmt.Fprintf(&sb, "max_connections = %s\n", maxConn)
	if Chance(rng, 0.3) {
		sb.WriteString("skip-external-locking\n")
	}
	if Chance(rng, 0.15) {
		sb.WriteString("skip-networking\n")
	}
	sb.WriteString("\n[client]\n")
	fmt.Fprintf(&sb, "socket = %s\n", socket)

	img.SetConfig("mysql", "/etc/my.cnf", sb.String())
}

// MySQLEntryTypes is the ground-truth semantic type of each MySQL
// attribute the generator can emit (Table 11 reference).
func MySQLEntryTypes() map[string]conftypes.Type {
	return map[string]conftypes.Type{
		"mysql:mysqld/datadir":               conftypes.TypeFilePath,
		"mysql:mysqld/user":                  conftypes.TypeUserName,
		"mysql:mysqld/port":                  conftypes.TypePortNumber,
		"mysql:mysqld/bind-address":          conftypes.TypeIPAddress,
		"mysql:mysqld/socket":                conftypes.TypeFilePath,
		"mysql:mysqld/log-error":             conftypes.TypeFilePath,
		"mysql:mysqld/pid-file":              conftypes.TypeFilePath,
		"mysql:mysqld/tmpdir":                conftypes.TypeFilePath,
		"mysql:mysqld/max_allowed_packet":    conftypes.TypeSize,
		"mysql:mysqld/net_buffer_length":     conftypes.TypeSize,
		"mysql:mysqld/key_buffer_size":       conftypes.TypeSize,
		"mysql:mysqld/max_heap_table_size":   conftypes.TypeSize,
		"mysql:mysqld/max_connections":       conftypes.TypeNumber,
		"mysql:mysqld/skip-external-locking": conftypes.TypeBoolean,
		"mysql:mysqld/skip-networking":       conftypes.TypeBoolean,
		"mysql:client/socket":                conftypes.TypeFilePath,
	}
}

// MySQLTrueRules lists the correlations that genuinely hold by
// construction in clean MySQL images: the ground truth against which
// inferred rules are classified for Table 12.
func MySQLTrueRules() []TrueRule {
	return []TrueRule{
		{Template: "owner", AttrA: "mysql:mysqld/datadir", AttrB: "mysql:mysqld/user"},
		{Template: "owner", AttrA: "mysql:mysqld/socket", AttrB: "mysql:mysqld/user"},
		{Template: "owner", AttrA: "mysql:mysqld/log-error", AttrB: "mysql:mysqld/user"},
		{Template: "owner", AttrA: "mysql:mysqld/pid-file", AttrB: "mysql:mysqld/user"},
		{Template: "eq", AttrA: "mysql:client/socket", AttrB: "mysql:mysqld/socket"},
		{Template: "match-one", AttrA: "mysql:client/socket", AttrB: "mysql:mysqld/socket"},
		{Template: "match-one", AttrA: "mysql:mysqld/socket", AttrB: "mysql:client/socket"},
		{Template: "size-lt", AttrA: "mysql:mysqld/net_buffer_length", AttrB: "mysql:mysqld/max_allowed_packet"},
		{Template: "substr", AttrA: "mysql:mysqld/datadir", AttrB: "mysql:mysqld/socket"},
		{Template: "substr", AttrA: "mysql:mysqld/datadir", AttrB: "mysql:client/socket"},
		{Template: "size-lt", AttrA: "mysql:mysqld/max_heap_table_size", AttrB: "MemSize"},
	}
}

// TrueRule is a ground-truth correlation key.
type TrueRule struct {
	Template string
	AttrA    string
	AttrB    string
}

// Matches reports whether a learned rule corresponds to this ground truth.
func (t TrueRule) Matches(template, attrA, attrB string) bool {
	return t.Template == template && t.AttrA == attrA && t.AttrB == attrB
}
