package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/sysimage"
)

// Case is one of the ten real-world misconfiguration cases of Table 9,
// reconstructed as a concrete target image exhibiting the same problem.
type Case struct {
	ID int
	// App the misconfiguration lives in.
	App string
	// Problem summarizes the failure the misconfiguration causes.
	Problem string
	// Info is the information class the paper says the detection needs:
	// "Corr", "Env", or "Env + Corr".
	Info string
	// PaperRank and PaperTotal are the rank and warning count the paper
	// reports ("1(5)" -> 1, 5); 0 means the paper missed the case.
	PaperRank, PaperTotal int
	// ExpectMiss marks case #8, which is missed because the dormant
	// training images carry no hardware information.
	ExpectMiss bool
	// MatchAttr is the attribute a warning must reference (possibly via an
	// augmented or argument suffix) to count as detecting the case.
	MatchAttr string
	// Build constructs the target image.
	Build func() *sysimage.Image
}

// caseRng gives each case its own deterministic randomness.
func caseRng(id int) *rand.Rand { return rand.New(rand.NewSource(int64(1000 + id))) }

// RealWorldCases reconstructs the ten ServerFault cases of Table 9.
func RealWorldCases() []Case {
	return []Case{
		{
			ID: 1, App: "apache", Info: "Corr", PaperRank: 1, PaperTotal: 5,
			Problem:   "Website not granted desired protection because DocumentRoot has no related Directory section",
			MatchAttr: "apache:DocumentRoot",
			Build: func() *sysimage.Image {
				b := NewBuilder("rw-case-1", caseRng(1))
				b.BuildApache(ApacheOptions{})
				cf := b.Img.ConfigFor("apache")
				doc, _ := findConfValue(b.Img, "apache", "DocumentRoot")
				b.Img.SetConfig("apache", cf.Path, removeSection(cf.Content, fmt.Sprintf("<Directory %q>", doc)))
				return b.Img
			},
		},
		{
			ID: 2, App: "php", Info: "Env", PaperRank: 1, PaperTotal: 1,
			Problem:   "Does not connect to database because extension_dir points to a file instead of the directory",
			MatchAttr: "php:PHP/extension_dir",
			Build: func() *sysimage.Image {
				b := NewBuilder("rw-case-2", caseRng(2))
				b.BuildPHP(PHPOptions{})
				cf := b.Img.ConfigFor("php")
				old, _ := findConfValue(b.Img, "php", "extension_dir")
				b.Img.SetConfig("php", cf.Path, replaceValue(cf.Content, old, old+"/mysql.so"))
				return b.Img
			},
		},
		{
			ID: 3, App: "mysql", Info: "Env + Corr", PaperRank: 1, PaperTotal: 1,
			Problem:   "File creation error due to datadir's wrong owner",
			MatchAttr: "mysql:mysqld/datadir",
			Build: func() *sysimage.Image {
				b := NewBuilder("rw-case-3", caseRng(3))
				b.BuildMySQL(MySQLOptions{})
				dd, _ := findConfValue(b.Img, "mysql", "datadir")
				b.Img.Files[dd].Owner = "root"
				b.Img.Files[dd].Group = "root"
				return b.Img
			},
		},
		{
			ID: 4, App: "mysql", Info: "Env", PaperRank: 1, PaperTotal: 2,
			Problem:   "Data writing error due to undesired protection from AppArmor",
			MatchAttr: "mysql:mysqld/datadir",
			Build: func() *sysimage.Image {
				b := NewBuilder("rw-case-4", caseRng(4))
				b.BuildMySQL(MySQLOptions{})
				// The AppArmor profile denies writes to the relocated data
				// directory. The paper's collector sees this as the
				// effective protection on the directory; we model the
				// denial as a read-only effective mode on datadir.
				b.Img.OS.AppArmor = true
				dd, _ := findConfValue(b.Img, "mysql", "datadir")
				b.Img.Files[dd].Mode = 0o555
				return b.Img
			},
		},
		{
			ID: 5, App: "php", Info: "Env", PaperRank: 1, PaperTotal: 1,
			Problem:   "Modules not loaded because extension_dir is set to a wrong location",
			MatchAttr: "php:PHP/extension_dir",
			Build: func() *sysimage.Image {
				b := NewBuilder("rw-case-5", caseRng(5))
				b.BuildPHP(PHPOptions{})
				cf := b.Img.ConfigFor("php")
				old, _ := findConfValue(b.Img, "php", "extension_dir")
				b.Img.SetConfig("php", cf.Path, replaceValue(cf.Content, old, "/usr/local/lib/php/extensions"))
				return b.Img
			},
		},
		{
			ID: 6, App: "apache", Info: "Env + Corr", PaperRank: 1, PaperTotal: 3,
			Problem:   "Website unavailable because the document root contains symbolic links while FollowSymLinks is off",
			MatchAttr: "apache:DocumentRoot",
			Build: func() *sysimage.Image {
				b := NewBuilder("rw-case-6", caseRng(6))
				b.BuildApache(ApacheOptions{SymlinkInDocroot: true})
				return b.Img
			},
		},
		{
			ID: 7, App: "apache", Info: "Env + Corr", PaperRank: 1, PaperTotal: 1,
			Problem:   "Website visitors unable to upload files due to wrong permission for the Apache user",
			MatchAttr: "apache:Alias/arg2",
			Build: func() *sysimage.Image {
				b := NewBuilder("rw-case-7", caseRng(7))
				b.BuildApache(ApacheOptions{})
				cf := b.Img.ConfigFor("apache")
				up, err := confValueAt(cf.Content, "apache", cf.Path, "Alias", 1)
				if err == nil {
					b.Img.Files[up].Owner = "root"
					b.Img.Files[up].Group = "root"
					b.Img.Files[up].Mode = 0o755
				}
				return b.Img
			},
		},
		{
			ID: 8, App: "mysql", Info: "Env + Corr", ExpectMiss: true,
			Problem:   "Out-of-memory error because the allowed table size equals the machine's memory",
			MatchAttr: "mysql:mysqld/max_heap_table_size",
			Build: func() *sysimage.Image {
				b := NewBuilder("rw-case-8", caseRng(8))
				b.BuildMySQL(MySQLOptions{Hardware: true})
				// The heap limit equals the machine memory: a value that
				// also occurs on (bigger) training machines, so without
				// hardware info in the training set nothing is anomalous.
				cf := b.Img.ConfigFor("mysql")
				b.Img.HW.MemBytes = 8 << 30
				b.Img.SetConfig("mysql", cf.Path,
					replaceLine(cf.Content, "max_heap_table_size", "max_heap_table_size = 8G"))
				return b.Img
			},
		},
		{
			ID: 9, App: "mysql", Info: "Env + Corr", PaperRank: 1, PaperTotal: 1,
			Problem:   "Logging is not performed even though the entry is set correctly, due to wrong permission",
			MatchAttr: "mysql:mysqld/log-error",
			Build: func() *sysimage.Image {
				b := NewBuilder("rw-case-9", caseRng(9))
				b.BuildMySQL(MySQLOptions{})
				lf, _ := findConfValue(b.Img, "mysql", "log-error")
				b.Img.Files[lf].Owner = "root"
				b.Img.Files[lf].Group = "root"
				b.Img.Files[lf].Mode = 0o600
				return b.Img
			},
		},
		{
			ID: 10, App: "php", Info: "Corr", PaperRank: 2, PaperTotal: 2,
			Problem:   "Failure when uploading a large file due to the wrong setting of the file size limits",
			MatchAttr: "php:PHP/upload_max_filesize",
			Build: func() *sysimage.Image {
				b := NewBuilder("rw-case-10", caseRng(10))
				b.BuildPHP(PHPOptions{})
				cf := b.Img.ConfigFor("php")
				// upload_max_filesize exceeds post_max_size; the same file
				// also carries a second, higher-confidence violation
				// (memory_limit below post_max_size), which outranks this
				// one — the reason the paper reports rank 2 of 2.
				content := replaceLine(cf.Content, "upload_max_filesize", "upload_max_filesize = 64M")
				content = replaceLine(content, "memory_limit", "memory_limit = 4M")
				b.Img.SetConfig("php", cf.Path, content)
				return b.Img
			},
		},
	}
}

// removeSection deletes the block starting at the line equal to header
// through its matching close tag.
func removeSection(content, header string) string {
	lines := strings.Split(content, "\n")
	start := -1
	for i, line := range lines {
		if strings.TrimSpace(line) == header {
			start = i
			break
		}
	}
	if start < 0 {
		return content
	}
	kind := strings.Fields(strings.Trim(header, "<>"))[0]
	closeTag := "</" + kind + ">"
	for j := start + 1; j < len(lines); j++ {
		if strings.TrimSpace(lines[j]) == closeTag {
			return strings.Join(append(lines[:start:start], lines[j+1:]...), "\n")
		}
	}
	return content
}
