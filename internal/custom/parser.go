package custom

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"sync"
)

// ---- regex cache ----

var (
	reCacheMu sync.Mutex
	reCache   = map[string]*regexp.Regexp{}
)

func compileCached(pattern string) (*regexp.Regexp, error) {
	reCacheMu.Lock()
	defer reCacheMu.Unlock()
	if re, ok := reCache[pattern]; ok {
		return re, nil
	}
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, fmt.Errorf("custom: bad pattern %q: %w", pattern, err)
	}
	reCache[pattern] = re
	return re, nil
}

// ---- expression tokenizer ----

type token struct {
	kind string // "ident", "str", "num", "op", "(", ")", ","
	text string
}

func tokenize(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(' || c == ')' || c == ',':
			toks = append(toks, token{kind: string(c), text: string(c)})
			i++
		case c == '\'' || c == '"':
			quote := c
			j := i + 1
			for j < len(src) && src[j] != quote {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("custom: unterminated string at %d", i)
			}
			toks = append(toks, token{kind: "str", text: src[i+1 : j]})
			i = j + 1
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				j++
			}
			toks = append(toks, token{kind: "num", text: src[i:j]})
			i = j
		case isIdentStart(c):
			j := i
			for j < len(src) && isIdentChar(src[j]) {
				j++
			}
			toks = append(toks, token{kind: "ident", text: src[i:j]})
			i = j
		default:
			// Operators, longest first.
			matched := false
			for _, op := range []string{"==", "!=", "<=", ">=", "&&", "||", "<", ">", "!", "+", "-"} {
				if strings.HasPrefix(src[i:], op) {
					toks = append(toks, token{kind: "op", text: op})
					i += len(op)
					matched = true
					break
				}
			}
			if !matched {
				return nil, fmt.Errorf("custom: unexpected character %q at %d", c, i)
			}
		}
	}
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '.'
}

// ---- recursive-descent parser ----
//
// Precedence (loosest first): || , && , comparisons , + - , unary , primary.

type exprParser struct {
	toks []token
	pos  int
}

// CompileExpr compiles an expression string.
func CompileExpr(src string) (Expr, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &exprParser{toks: toks}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("custom: trailing tokens after expression: %v", p.toks[p.pos:])
	}
	return e, nil
}

func (p *exprParser) peek() (token, bool) {
	if p.pos < len(p.toks) {
		return p.toks[p.pos], true
	}
	return token{}, false
}

func (p *exprParser) accept(kind, text string) bool {
	if t, ok := p.peek(); ok && t.kind == kind && (text == "" || t.text == text) {
		p.pos++
		return true
	}
	return false
}

func (p *exprParser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept("op", "||") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = binExpr{op: "||", l: l, r: r}
	}
	return l, nil
}

func (p *exprParser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.accept("op", "&&") {
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = binExpr{op: "&&", l: l, r: r}
	}
	return l, nil
}

func (p *exprParser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for {
		t, ok := p.peek()
		if !ok || t.kind != "op" {
			return l, nil
		}
		switch t.text {
		case "==", "!=", "<", "<=", ">", ">=":
			p.pos++
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			l = binExpr{op: t.text, l: l, r: r}
		default:
			return l, nil
		}
	}
}

func (p *exprParser) parseAdd() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t, ok := p.peek()
		if !ok || t.kind != "op" || (t.text != "+" && t.text != "-") {
			return l, nil
		}
		p.pos++
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = binExpr{op: t.text, l: l, r: r}
	}
}

func (p *exprParser) parseUnary() (Expr, error) {
	if p.accept("op", "!") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryExpr{op: "!", x: x}, nil
	}
	if p.accept("op", "-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryExpr{op: "-", x: x}, nil
	}
	return p.parsePrimary()
}

func (p *exprParser) parsePrimary() (Expr, error) {
	t, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("custom: unexpected end of expression")
	}
	switch t.kind {
	case "str":
		p.pos++
		return litExpr{v: str(t.text)}, nil
	case "num":
		p.pos++
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("custom: bad number %q", t.text)
		}
		return litExpr{v: num(f)}, nil
	case "ident":
		p.pos++
		switch t.text {
		case "true":
			return litExpr{v: boolean(true)}, nil
		case "false":
			return litExpr{v: boolean(false)}, nil
		}
		if p.accept("(", "") {
			var args []Expr
			if !p.accept(")", "") {
				for {
					a, err := p.parseOr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.accept(")", "") {
						break
					}
					if !p.accept(",", "") {
						return nil, fmt.Errorf("custom: expected ',' or ')' in call to %s", t.text)
					}
				}
			}
			if _, ok := builtins[t.text]; !ok {
				return nil, fmt.Errorf("custom: unknown function %q", t.text)
			}
			return callExpr{name: t.text, args: args}, nil
		}
		return varExpr{name: t.text}, nil
	case "(":
		p.pos++
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if !p.accept(")", "") {
			return nil, fmt.Errorf("custom: missing ')'")
		}
		return e, nil
	}
	return nil, fmt.Errorf("custom: unexpected token %q", t.text)
}
