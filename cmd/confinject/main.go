// Command confinject injects seeded configuration errors into an image
// snapshot (the ConfErr-substitute used by the Table 8 injection study).
//
// Usage:
//
//	confinject -image img.json -app mysql -n 15 -seed 7 -out broken.json
//
// The injection log is printed to stdout, one error per line.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/inject"
	"repro/internal/sysimage"
)

func main() {
	imagePath := flag.String("image", "", "input image JSON file")
	app := flag.String("app", "", "application whose configuration to corrupt")
	n := flag.Int("n", 15, "number of errors to inject")
	seed := flag.Int64("seed", 7, "injection seed")
	out := flag.String("out", "", "output image JSON file")
	flag.Parse()

	if *imagePath == "" || *app == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "usage: confinject -image FILE -app NAME -n N -seed S -out FILE")
		os.Exit(2)
	}
	if err := run(*imagePath, *app, *n, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "confinject:", err)
		os.Exit(1)
	}
}

func run(imagePath, app string, n int, seed int64, out string) error {
	data, err := os.ReadFile(imagePath)
	if err != nil {
		return err
	}
	img, err := sysimage.LoadJSON(data)
	if err != nil {
		return err
	}
	log, err := inject.New(seed).Inject(img, app, n)
	if err != nil {
		return err
	}
	for i, inj := range log {
		fmt.Printf("%2d. %s\n", i+1, inj)
	}
	encoded, err := img.MarshalJSONIndent()
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, encoded, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote corrupted image to %s\n", out)
	return nil
}
