package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	encore "repro"
	"repro/internal/corpus"
	"repro/internal/inject"
)

// TestRunServeLifecycle drives the daemon through its whole CLI life:
// preload from a -plans dir, readiness, a scan with findings, per-app
// metrics, SIGHUP plan reload, and SIGTERM graceful shutdown (runServe
// returns nil and flushes -stats-json).
func TestRunServeLifecycle(t *testing.T) {
	// Compile a mysql plan into a plans dir.
	imgs, err := corpus.Training("mysql", 20, 19)
	if err != nil {
		t.Fatal(err)
	}
	fw := encore.New()
	k, err := fw.Learn(imgs)
	if err != nil {
		t.Fatal(err)
	}
	plansDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(plansDir, "mysql.plan"), fw.MarshalPlan(fw.CompilePlan(k)), 0o644); err != nil {
		t.Fatal(err)
	}

	// A victim with injected misconfigurations.
	victims, err := corpus.Training("mysql", 1, 304)
	if err != nil {
		t.Fatal(err)
	}
	victim := victims[0]
	victim.ID = "victim"
	if _, err := inject.New(4).Inject(victim, "mysql", 8); err != nil {
		t.Fatal(err)
	}
	victimJSON, err := victim.MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	statsFile := filepath.Join(dir, "stats.json")
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- runServe([]string{
			"-addr", "127.0.0.1:0",
			"-addr-file", addrFile,
			"-plans", plansDir,
			"-shutdown-timeout", "5s",
			"-stats-json", statsFile,
			"-log-level", "error",
		})
	}()

	// Wait for the daemon to publish its address.
	var base string
	deadline := time.Now().Add(5 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			base = "http://" + strings.TrimSpace(string(data))
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never wrote addr-file")
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after preload = %d", resp.StatusCode)
	}

	// Scan the broken victim through the preloaded plan.
	resp, err = http.Post(base+"/v1/scan/mysql", "application/json", bytes.NewReader(victimJSON))
	if err != nil {
		t.Fatal(err)
	}
	var sr struct {
		PlanVersion string `json:"planVersion"`
		Findings    int    `json:"findings"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || sr.PlanVersion != "v1" || sr.Findings == 0 {
		t.Fatalf("scan = %d %+v", resp.StatusCode, sr)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`encore_serve_requests_total{app="mysql",code="200"} 1`,
		`encore_serve_scan_seconds_count{app="mysql"} 1`,
		`encore_build_info{go_version=`,
		`encore_serve_plans_loaded 1`,
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("live metrics missing %q", want)
		}
	}

	// SIGHUP re-scans the plans dir: same plan file, new registry version.
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/status")
		if err != nil {
			t.Fatal(err)
		}
		var doc struct {
			Apps []struct {
				Version string `json:"version"`
				Swaps   int64  `json:"swaps"`
			} `json:"apps"`
		}
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if err == nil && len(doc.Apps) == 1 && doc.Apps[0].Swaps == 2 {
			if doc.Apps[0].Version != "v2" {
				t.Fatalf("reload version = %q", doc.Apps[0].Version)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("SIGHUP reload never landed")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// SIGTERM: graceful exit with the final snapshot flushed.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("runServe returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("runServe did not exit after SIGTERM")
	}
	stats, err := os.ReadFile(statsFile)
	if err != nil {
		t.Fatalf("final stats snapshot not written: %v", err)
	}
	for _, want := range []string{`"phase": "done"`, `encore_serve_requests_total`, `"labeledHistograms"`} {
		if !strings.Contains(string(stats), want) {
			t.Errorf("stats snapshot missing %q", want)
		}
	}
}
