package detect

import (
	"strings"
	"testing"

	"repro/internal/assemble"
	"repro/internal/dataset"
	"repro/internal/rules"
	"repro/internal/sysimage"
)

// mkImage builds a MySQL image whose datadir ownership matches the
// configured user and whose values vary a little across ids.
func mkImage(id, datadir, user, packet string) *sysimage.Image {
	im := sysimage.New(id)
	im.Users["root"] = &sysimage.User{Name: "root", UID: 0, GID: 0, IsAdmin: true}
	im.Users[user] = &sysimage.User{Name: user, UID: 27, GID: 27}
	im.Users["nobody"] = &sysimage.User{Name: "nobody", UID: 99, GID: 99}
	im.Groups[user] = &sysimage.Group{Name: user, GID: 27}
	im.Services = []sysimage.Service{{Name: "mysql", Port: 3306, Protocol: "tcp"}}
	im.AddDir(datadir, user, user, 0o750)
	im.SetConfig("mysql", "/etc/my.cnf", strings.Join([]string{
		"[mysqld]",
		"datadir = " + datadir,
		"user = " + user,
		"port = 3306",
		"max_allowed_packet = " + packet,
		"",
	}, "\n"))
	return im
}

type fixture struct {
	det      *Detector
	training *dataset.Dataset
}

func buildFixture(t *testing.T) *fixture {
	t.Helper()
	dirs := []string{"/var/lib/mysql", "/data/mysql", "/srv/mysql"}
	packets := []string{"16M", "32M", "64M"}
	var images []*sysimage.Image
	byID := map[string]*sysimage.Image{}
	for i := 0; i < 18; i++ {
		user := "mysql"
		if i%6 == 0 {
			user = "mysqld_safe"
		}
		im := mkImage(string(rune('a'+i))+"-train", dirs[i%3], user, packets[i%3])
		images = append(images, im)
		byID[im.ID] = im
	}
	training, err := assemble.New().AssembleTraining(images)
	if err != nil {
		t.Fatal(err)
	}
	learned := rules.NewEngine().Infer(training, byID)
	if len(learned) == 0 {
		t.Fatal("fixture learned no rules")
	}
	return &fixture{det: New(training, learned), training: training}
}

func TestCleanTargetProducesNoHighWarnings(t *testing.T) {
	f := buildFixture(t)
	target := mkImage("clean", "/var/lib/mysql", "mysql", "16M")
	rep, err := f.det.Check(target)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range rep.Warnings {
		if w.Kind == KindCorrelation || w.Kind == KindType || w.Kind == KindName {
			t.Fatalf("clean target produced %s warning: %s", w.Kind, w.Message)
		}
	}
}

func TestOwnershipViolationDetected(t *testing.T) {
	f := buildFixture(t)
	// Figure 1(b): datadir owned by root, not the configured user.
	target := mkImage("bad-owner", "/var/lib/mysql", "mysql", "16M")
	target.Files["/var/lib/mysql"].Owner = "root"
	rep, err := f.det.Check(target)
	if err != nil {
		t.Fatal(err)
	}
	rank := rep.RankOf(func(w *Warning) bool {
		return w.Kind == KindCorrelation && w.Rule != nil && w.Rule.Template == "owner"
	})
	if rank == 0 {
		t.Fatalf("ownership violation not reported; warnings: %v", messages(rep))
	}
	if rank > 3 {
		t.Fatalf("ownership violation ranked too low: %d", rank)
	}
}

func TestTypeViolationFileVsDir(t *testing.T) {
	f := buildFixture(t)
	// Figure 1(a) analogue: datadir points at a regular file.
	target := mkImage("file-dir", "/var/lib/mysql", "mysql", "16M")
	target.AddRegular("/var/lib/mysql.tar", "mysql", "mysql", 0o644, 9)
	cfg := target.ConfigFor("mysql")
	target.SetConfig("mysql", cfg.Path, strings.Replace(cfg.Content, "datadir = /var/lib/mysql", "datadir = /var/lib/mysql.tar", 1))
	rep, err := f.det.Check(target)
	if err != nil {
		t.Fatal(err)
	}
	// The path exists, so FilePath type passes; but the ownership rule and
	// any dir-related correlation may fire. At minimum the suspicious
	// value should be flagged.
	if rep.RankOf(func(w *Warning) bool { return w.Attr == "mysql:mysqld/datadir" }) == 0 {
		t.Fatalf("no warning for file-vs-dir datadir; warnings: %v", messages(rep))
	}
}

func TestTypeViolationMissingPath(t *testing.T) {
	f := buildFixture(t)
	target := mkImage("missing-path", "/var/lib/mysql", "mysql", "16M")
	cfg := target.ConfigFor("mysql")
	target.SetConfig("mysql", cfg.Path, strings.Replace(cfg.Content, "datadir = /var/lib/mysql", "datadir = /nonexistent/dir", 1))
	rep, err := f.det.Check(target)
	if err != nil {
		t.Fatal(err)
	}
	rank := rep.RankOf(func(w *Warning) bool {
		return w.Kind == KindType && w.Attr == "mysql:mysqld/datadir"
	})
	if rank == 0 {
		t.Fatalf("missing path not flagged as type violation; warnings: %v", messages(rep))
	}
}

func TestNameViolationWithSuggestion(t *testing.T) {
	f := buildFixture(t)
	target := mkImage("typo", "/var/lib/mysql", "mysql", "16M")
	cfg := target.ConfigFor("mysql")
	target.SetConfig("mysql", cfg.Path, strings.Replace(cfg.Content, "max_allowed_packet", "max_alowed_packet", 1))
	rep, err := f.det.Check(target)
	if err != nil {
		t.Fatal(err)
	}
	var nameWarning *Warning
	for _, w := range rep.Warnings {
		if w.Kind == KindName {
			nameWarning = w
		}
	}
	if nameWarning == nil {
		t.Fatalf("misspelled entry not flagged; warnings: %v", messages(rep))
	}
	if !strings.Contains(nameWarning.Message, "did you mean") ||
		!strings.Contains(nameWarning.Message, "max_allowed_packet") {
		t.Fatalf("no suggestion in %q", nameWarning.Message)
	}
}

func TestSuspiciousValueRankedByICF(t *testing.T) {
	f := buildFixture(t)
	// port was always 3306 (cardinality 1); packet had 3 values. A new
	// port value must rank above a new packet value.
	target := mkImage("susp", "/var/lib/mysql", "mysql", "16M")
	cfg := target.ConfigFor("mysql")
	content := strings.Replace(cfg.Content, "port = 3306", "port = 3307", 1)
	content = strings.Replace(content, "max_allowed_packet = 16M", "max_allowed_packet = 48M", 1)
	target.SetConfig("mysql", cfg.Path, content)
	target.Services = []sysimage.Service{{Name: "x", Port: 3307, Protocol: "tcp"}}
	rep, err := f.det.Check(target)
	if err != nil {
		t.Fatal(err)
	}
	portRank := rep.RankOf(func(w *Warning) bool {
		return w.Kind == KindSuspicious && w.Attr == "mysql:mysqld/port"
	})
	packetRank := rep.RankOf(func(w *Warning) bool {
		return w.Kind == KindSuspicious && w.Attr == "mysql:mysqld/max_allowed_packet"
	})
	if portRank == 0 || packetRank == 0 {
		t.Fatalf("suspicious values missing (port=%d packet=%d): %v", portRank, packetRank, messages(rep))
	}
	if portRank >= packetRank {
		t.Fatalf("ICF ranking wrong: stable entry rank %d should beat volatile entry rank %d", portRank, packetRank)
	}
}

func TestAbsentEntriesIgnoreRules(t *testing.T) {
	f := buildFixture(t)
	target := mkImage("absent", "/var/lib/mysql", "mysql", "16M")
	cfg := target.ConfigFor("mysql")
	// Remove the user entry entirely: ownership rule must be skipped, not
	// violated.
	target.SetConfig("mysql", cfg.Path, strings.Replace(cfg.Content, "user = mysql\n", "", 1))
	rep, err := f.det.Check(target)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RankOf(func(w *Warning) bool { return w.Kind == KindCorrelation }) != 0 {
		t.Fatalf("rule with absent entry should be ignored; warnings: %v", messages(rep))
	}
}

func TestRanksAreSequential(t *testing.T) {
	f := buildFixture(t)
	target := mkImage("bad", "/var/lib/mysql", "mysql", "16M")
	target.Files["/var/lib/mysql"].Owner = "root"
	cfg := target.ConfigFor("mysql")
	target.SetConfig("mysql", cfg.Path, strings.Replace(cfg.Content, "port = 3306", "port = 12345", 1))
	rep, err := f.det.Check(target)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Warnings) == 0 {
		t.Fatal("expected warnings")
	}
	for i, w := range rep.Warnings {
		if w.Rank != i+1 {
			t.Fatalf("rank %d at index %d", w.Rank, i)
		}
		if i > 0 && rep.Warnings[i-1].Score < w.Score {
			t.Fatal("warnings not sorted by score")
		}
	}
	if rep.Top() == nil || rep.Top().Rank != 1 {
		t.Fatal("Top() should be rank 1")
	}
}

func TestSuspiciousValueLimit(t *testing.T) {
	f := buildFixture(t)
	f.det.SuspiciousValueLimit = 1
	target := mkImage("limit", "/weird/dir", "mysql", "99M")
	rep, err := f.det.Check(target)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, w := range rep.Warnings {
		if w.Kind == KindSuspicious {
			n++
		}
	}
	if n > 1 {
		t.Fatalf("suspicious warnings = %d, want <= 1", n)
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b  string
		bound int
		want  int
	}{
		{"abc", "abc", 3, 0},
		{"abc", "abd", 3, 1},
		{"abc", "acb", 3, 2},
		{"abc", "xyz", 3, 3}, // clamped at bound
		{"", "ab", 3, 2},
		{"kitten", "sitting", 5, 3},
	}
	for _, c := range cases {
		if got := editDistance(c.a, c.b, c.bound); got != c.want {
			t.Errorf("editDistance(%q,%q,%d) = %d, want %d", c.a, c.b, c.bound, got, c.want)
		}
	}
}

func TestReportRankOfMissing(t *testing.T) {
	r := &Report{}
	if r.RankOf(func(*Warning) bool { return true }) != 0 {
		t.Fatal("empty report should rank 0")
	}
	if r.Top() != nil {
		t.Fatal("empty report Top should be nil")
	}
}

func messages(r *Report) []string {
	out := make([]string, len(r.Warnings))
	for i, w := range r.Warnings {
		out[i] = string(w.Kind) + ": " + w.Message
	}
	return out
}
