package conftypes

import (
	"testing"
	"testing/quick"
)

func TestParseSizeUnits(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"0", 0, true},
		{"512", 512, true},
		{"8K", 8 << 10, true},
		{"8k", 8 << 10, true},
		{"16M", 16 << 20, true},
		{"16MB", 16 << 20, true},
		{"2G", 2 << 30, true},
		{"1T", 1 << 40, true},
		{"3KB", 3 << 10, true},
		{" 4M ", 4 << 20, true},
		{"", 0, false},
		{"abc", 0, false},
		{"-1", 0, false},
		{"12X", 0, false},
		{"M", 0, false},
	}
	for _, c := range cases {
		got, ok := ParseSize(c.in)
		if ok != c.ok || got != c.want {
			t.Errorf("ParseSize(%q) = %d %v, want %d %v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestFormatSizeLargestExactUnit(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{0, "0"},
		{512, "512"},
		{1 << 10, "1K"},
		{16 << 20, "16M"},
		{3 << 30, "3G"},
		{2 << 40, "2T"},
		{(1 << 20) + 1, "1048577"}, // not exactly divisible: raw bytes
		{1536, "1536"},             // 1.5K is not exact in integer units
	}
	for _, c := range cases {
		if got := FormatSize(c.in); got != c.want {
			t.Errorf("FormatSize(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

// Property: ParseSize inverts FormatSize for every non-negative count.
func TestSizeRoundTripProperty(t *testing.T) {
	f := func(n int64) bool {
		if n < 0 {
			n = -n
		}
		n %= 1 << 50
		got, ok := ParseSize(FormatSize(n))
		return ok && got == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding a suffix multiplies by the right power of 1024.
func TestSizeSuffixProperty(t *testing.T) {
	f := func(n uint16) bool {
		base := int64(n)
		k, ok1 := ParseSize(FormatSize(base << 10))
		m, ok2 := ParseSize(FormatSize(base << 20))
		return ok1 && ok2 && k == base<<10 && m == base<<20
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
