// The built-in notifier implementations: structured log, JSONL file,
// and HTTP webhook with timeout, bounded retries, and exponential
// backoff. All three carry the alert's request ID and plan version so a
// delivered alert is joinable against the daemon access log and the
// registry version that produced it.
package alert

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Webhook defaults; overridable per notifier in the policy.
const (
	DefaultWebhookTimeout = 5 * time.Second
	DefaultWebhookRetries = 2
	DefaultWebhookBackoff = 500 * time.Millisecond
	// maxWebhookBackoff caps the exponential growth so a long retry
	// ladder cannot sleep unbounded.
	maxWebhookBackoff = 30 * time.Second
)

// BuildNotifiers instantiates the policy's notifier declarations. The
// slog type logs through log; file notifiers open (and create) their
// JSONL targets eagerly so a bad path fails at startup, not at the first
// alert.
func BuildNotifiers(p *Policy, log *slog.Logger) ([]Notifier, error) {
	out := make([]Notifier, 0, len(p.Notifiers))
	for _, nc := range p.Notifiers {
		switch nc.Type {
		case "slog":
			out = append(out, NewSlogNotifier(nc.Name, log))
		case "file":
			n, err := NewFileNotifier(nc.Name, nc.Path)
			if err != nil {
				return nil, err
			}
			out = append(out, n)
		case "webhook":
			out = append(out, NewWebhookNotifier(nc))
		default:
			return nil, &PolicyError{Msg: "notifier " + nc.Name + ": unknown type " + nc.Type}
		}
	}
	return out, nil
}

// SlogNotifier records alerts as structured log lines, leveled by
// severity (high=error, medium=warn, low=info).
type SlogNotifier struct {
	name string
	log  *slog.Logger
}

// NewSlogNotifier builds a log notifier; a nil logger discards.
func NewSlogNotifier(name string, log *slog.Logger) *SlogNotifier {
	return &SlogNotifier{name: name, log: telemetry.LoggerOr(log)}
}

// Name implements Notifier.
func (n *SlogNotifier) Name() string { return n.name }

// Notify implements Notifier; it cannot fail.
func (n *SlogNotifier) Notify(a *Alert) error {
	n.log.Log(context.Background(), severityLogLevel(a.Severity), "alert",
		"app", a.App, "image", a.ImageID, "family", a.Family, "attr", a.Attr,
		"severity", string(a.Severity), "score", a.Score, "message", a.Message,
		"request_id", a.RequestID, "plan_version", a.PlanVersion)
	return nil
}

// FileNotifier appends one compact JSON line per alert — the same
// payload the webhook posts, so downstream tooling parses both alike.
type FileNotifier struct {
	name string
	path string
	mu   sync.Mutex
	f    *os.File
}

// NewFileNotifier opens (creating if needed) the JSONL target for
// append.
func NewFileNotifier(name, path string) (*FileNotifier, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("alert: file notifier %s: %w", name, err)
	}
	return &FileNotifier{name: name, path: path, f: f}, nil
}

// Name implements Notifier.
func (n *FileNotifier) Name() string { return n.name }

// Notify appends the alert as one JSON line.
func (n *FileNotifier) Notify(a *Alert) error {
	data, err := json.Marshal(a)
	if err != nil {
		return fmt.Errorf("alert: encode: %w", err)
	}
	data = append(data, '\n')
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.f == nil {
		return fmt.Errorf("alert: file notifier %s: closed", n.name)
	}
	if _, err := n.f.Write(data); err != nil {
		return fmt.Errorf("alert: file notifier %s: %w", n.name, err)
	}
	return nil
}

// Close flushes and closes the JSONL target (called by the pipeline on
// shutdown).
func (n *FileNotifier) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.f == nil {
		return nil
	}
	err := n.f.Close()
	n.f = nil
	return err
}

// WebhookNotifier POSTs the alert JSON to a URL. Each attempt is bounded
// by the per-attempt timeout; server errors (5xx), 429, and transport
// errors retry with exponential backoff; other 4xx responses are
// permanent failures (the receiver rejected the payload — retrying
// cannot help).
type WebhookNotifier struct {
	name    string
	url     string
	retries int
	backoff time.Duration
	client  *http.Client
	// sleep is the backoff sleeper; a test seam (defaults to time.Sleep).
	sleep func(time.Duration)
}

// NewWebhookNotifier builds a webhook notifier from its policy
// declaration, applying the webhook defaults to unset knobs.
func NewWebhookNotifier(nc NotifierConfig) *WebhookNotifier {
	timeout := nc.Timeout
	if timeout <= 0 {
		timeout = DefaultWebhookTimeout
	}
	retries := nc.Retries
	if retries < 0 {
		retries = DefaultWebhookRetries
	}
	backoff := nc.Backoff
	if backoff <= 0 {
		backoff = DefaultWebhookBackoff
	}
	return &WebhookNotifier{
		name:    nc.Name,
		url:     nc.URL,
		retries: retries,
		backoff: backoff,
		// A dedicated transport: delivery must not share (or pollute)
		// the default transport's connection pool, and Close can drop
		// idle connections without affecting anyone else.
		client: &http.Client{Timeout: timeout, Transport: &http.Transport{}},
		sleep:  time.Sleep,
	}
}

// Name implements Notifier.
func (n *WebhookNotifier) Name() string { return n.name }

// Notify implements Notifier: up to 1+retries POST attempts with
// exponential backoff between them.
func (n *WebhookNotifier) Notify(a *Alert) error {
	body, err := json.Marshal(a)
	if err != nil {
		return fmt.Errorf("alert: encode: %w", err)
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		retryable, err := n.post(a, body)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable || attempt >= n.retries {
			return fmt.Errorf("alert: webhook %s: %w (attempt %d/%d)", n.name, lastErr, attempt+1, n.retries+1)
		}
		d := n.backoff << attempt
		if d > maxWebhookBackoff || d <= 0 {
			d = maxWebhookBackoff
		}
		n.sleep(d)
	}
}

// post runs one delivery attempt; retryable reports whether a failure is
// worth another attempt.
func (n *WebhookNotifier) post(a *Alert, body []byte) (retryable bool, err error) {
	req, err := http.NewRequest(http.MethodPost, n.url, bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", "application/json")
	// The provenance headers: a webhook receiver can join the alert
	// against the daemon access log without parsing the body.
	if a.RequestID != "" {
		req.Header.Set("X-Request-Id", a.RequestID)
	}
	if a.PlanVersion != "" {
		req.Header.Set("X-Encore-Plan-Version", a.PlanVersion)
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return true, err
	}
	// Drain a bounded prefix so the connection is reusable.
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return false, nil
	}
	err = fmt.Errorf("status %d", resp.StatusCode)
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500 {
		return true, err
	}
	return false, err
}

// Close drops idle connections (called by the pipeline on shutdown; the
// leak-pinned tests require no lingering transport goroutines).
func (n *WebhookNotifier) Close() error {
	if t, ok := n.client.Transport.(*http.Transport); ok {
		t.CloseIdleConnections()
	}
	return nil
}
