// Cross-component misconfiguration detection on a LAMP stack — the
// paper's future-work extension: "the configuration of other components
// can be seen as one kind of environment factors."
//
// Because attributes are namespaced per application and rule templates are
// type-driven, the unchanged rule engine learns correlations that span
// Apache, MySQL, and PHP: the web tier's database socket must equal the
// database's actual socket, and the PHP session store must belong to the
// Apache service account.
//
//	go run ./examples/lamp-stack
package main

import (
	"fmt"
	"log"
	"strings"

	encore "repro"
	"repro/internal/corpus"
)

func main() {
	training, err := corpus.LAMPTraining(60, 31)
	if err != nil {
		log.Fatal(err)
	}
	fw := encore.New()
	knowledge, err := fw.Learn(training)
	if err != nil {
		log.Fatal(err)
	}

	cross := 0
	for _, r := range knowledge.Rules {
		if app(r.AttrA) != app(r.AttrB) {
			cross++
			if cross <= 6 {
				fmt.Printf("cross-component rule: %s\n", r)
			}
		}
	}
	fmt.Printf("%d rules total, %d spanning components\n\n", len(knowledge.Rules), cross)

	// Failure 1: PHP points at a stale MySQL socket (the database moved).
	victims, err := corpus.LAMPTraining(1, 77)
	if err != nil {
		log.Fatal(err)
	}
	brokenSocket := corpus.BreakLAMPSocket(victims[0])
	report, err := fw.Check(knowledge, brokenSocket)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("target %s:\n", brokenSocket.ID)
	printTop(report, 4)

	// Failure 2: the session store was chowned away from Apache.
	brokenSession := corpus.BreakLAMPSessionOwner(victims[0])
	report, err = fw.Check(knowledge, brokenSession)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntarget %s:\n", brokenSession.ID)
	printTop(report, 4)
}

func app(attr string) string {
	if i := strings.Index(attr, ":"); i >= 0 {
		return attr[:i]
	}
	return ""
}

func printTop(report *encore.Report, n int) {
	for _, w := range report.Warnings {
		if w.Rank > n {
			break
		}
		fmt.Printf("%3d. [%-16s] %s\n", w.Rank, w.Kind, w.Message)
	}
}
