// Package custom implements EnCore's customization interface
// (Section 5.3): a customization file with seven "$$" sections lets users
// declare new semantic types (with inference and validation methods), new
// augmented attributes, new relation operators, and new rule templates —
// without recompiling the tool.
//
// The paper embeds Python snippets for the user-supplied methods; this
// implementation provides a small, safe expression language instead. An
// expression evaluates over the bound configuration values ("value" for
// type methods, "v1"/"v2" for operators) and can consult the system
// environment through built-in functions backed by the data structures of
// Table 7 (file system metadata, accounts, services, environment
// variables, security state, hardware).
package custom

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/conftypes"
	"repro/internal/sysimage"
)

// Env is the evaluation environment for one expression.
type Env struct {
	// Vars binds the expression variables (value, v1, v2, ...).
	Vars map[string]string
	// Image is the system environment; may be nil, in which case all
	// environment probes return their zero results.
	Image *sysimage.Image
}

// Value is a DSL runtime value: a string, number, or boolean.
type Value struct {
	S string
	N float64
	B bool
	// Kind is 's', 'n', or 'b'.
	Kind byte
}

func str(s string) Value   { return Value{S: s, Kind: 's'} }
func num(n float64) Value  { return Value{N: n, Kind: 'n'} }
func boolean(b bool) Value { return Value{B: b, Kind: 'b'} }

// Bool coerces the value to a boolean: booleans themselves, non-zero
// numbers, non-empty strings.
func (v Value) Bool() bool {
	switch v.Kind {
	case 'b':
		return v.B
	case 'n':
		return v.N != 0
	default:
		return v.S != ""
	}
}

// String renders the value for error messages.
func (v Value) String() string {
	switch v.Kind {
	case 'b':
		return strconv.FormatBool(v.B)
	case 'n':
		return strconv.FormatFloat(v.N, 'f', -1, 64)
	default:
		return v.S
	}
}

// asNumber coerces strings that parse as numbers or sizes.
func (v Value) asNumber() (float64, bool) {
	switch v.Kind {
	case 'n':
		return v.N, true
	case 'b':
		if v.B {
			return 1, true
		}
		return 0, true
	default:
		if f, err := strconv.ParseFloat(v.S, 64); err == nil {
			return f, true
		}
		if n, ok := conftypes.ParseSize(v.S); ok {
			return float64(n), true
		}
		return 0, false
	}
}

// Expr is a compiled expression.
type Expr interface {
	Eval(env *Env) (Value, error)
}

type litExpr struct{ v Value }

func (e litExpr) Eval(*Env) (Value, error) { return e.v, nil }

type varExpr struct{ name string }

func (e varExpr) Eval(env *Env) (Value, error) {
	if v, ok := env.Vars[e.name]; ok {
		return str(v), nil
	}
	return Value{}, fmt.Errorf("custom: unknown variable %q", e.name)
}

type unaryExpr struct {
	op string
	x  Expr
}

func (e unaryExpr) Eval(env *Env) (Value, error) {
	v, err := e.x.Eval(env)
	if err != nil {
		return Value{}, err
	}
	switch e.op {
	case "!":
		return boolean(!v.Bool()), nil
	case "-":
		n, ok := v.asNumber()
		if !ok {
			return Value{}, fmt.Errorf("custom: cannot negate %q", v)
		}
		return num(-n), nil
	}
	return Value{}, fmt.Errorf("custom: unknown unary op %q", e.op)
}

type binExpr struct {
	op   string
	l, r Expr
}

func (e binExpr) Eval(env *Env) (Value, error) {
	// Short-circuit logic.
	if e.op == "&&" || e.op == "||" {
		l, err := e.l.Eval(env)
		if err != nil {
			return Value{}, err
		}
		if e.op == "&&" && !l.Bool() {
			return boolean(false), nil
		}
		if e.op == "||" && l.Bool() {
			return boolean(true), nil
		}
		r, err := e.r.Eval(env)
		if err != nil {
			return Value{}, err
		}
		return boolean(r.Bool()), nil
	}
	l, err := e.l.Eval(env)
	if err != nil {
		return Value{}, err
	}
	r, err := e.r.Eval(env)
	if err != nil {
		return Value{}, err
	}
	switch e.op {
	case "+":
		if l.Kind == 's' || r.Kind == 's' {
			return str(l.String() + r.String()), nil
		}
		ln, _ := l.asNumber()
		rn, _ := r.asNumber()
		return num(ln + rn), nil
	case "==":
		return boolean(l.String() == r.String()), nil
	case "!=":
		return boolean(l.String() != r.String()), nil
	case "<", "<=", ">", ">=":
		ln, lok := l.asNumber()
		rn, rok := r.asNumber()
		if lok && rok {
			switch e.op {
			case "<":
				return boolean(ln < rn), nil
			case "<=":
				return boolean(ln <= rn), nil
			case ">":
				return boolean(ln > rn), nil
			default:
				return boolean(ln >= rn), nil
			}
		}
		// String comparison fallback.
		switch e.op {
		case "<":
			return boolean(l.String() < r.String()), nil
		case "<=":
			return boolean(l.String() <= r.String()), nil
		case ">":
			return boolean(l.String() > r.String()), nil
		default:
			return boolean(l.String() >= r.String()), nil
		}
	}
	return Value{}, fmt.Errorf("custom: unknown operator %q", e.op)
}

type callExpr struct {
	name string
	args []Expr
}

func (e callExpr) Eval(env *Env) (Value, error) {
	fn, ok := builtins[e.name]
	if !ok {
		return Value{}, fmt.Errorf("custom: unknown function %q", e.name)
	}
	args := make([]Value, len(e.args))
	for i, a := range e.args {
		v, err := a.Eval(env)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	return fn(env, args)
}

// builtin implements one DSL function.
type builtin func(env *Env, args []Value) (Value, error)

func need(name string, args []Value, n int) error {
	if len(args) != n {
		return fmt.Errorf("custom: %s expects %d arguments, got %d", name, n, len(args))
	}
	return nil
}

// builtins expose the Table 7 environment data structures as functions.
var builtins = map[string]builtin{
	"matches": func(env *Env, args []Value) (Value, error) {
		if err := need("matches", args, 2); err != nil {
			return Value{}, err
		}
		re, err := compileCached(args[1].String())
		if err != nil {
			return Value{}, err
		}
		return boolean(re.MatchString(args[0].String())), nil
	},
	"contains": func(env *Env, args []Value) (Value, error) {
		if err := need("contains", args, 2); err != nil {
			return Value{}, err
		}
		return boolean(strings.Contains(args[0].String(), args[1].String())), nil
	},
	"hasPrefix": func(env *Env, args []Value) (Value, error) {
		if err := need("hasPrefix", args, 2); err != nil {
			return Value{}, err
		}
		return boolean(strings.HasPrefix(args[0].String(), args[1].String())), nil
	},
	"hasSuffix": func(env *Env, args []Value) (Value, error) {
		if err := need("hasSuffix", args, 2); err != nil {
			return Value{}, err
		}
		return boolean(strings.HasSuffix(args[0].String(), args[1].String())), nil
	},
	"lower": func(env *Env, args []Value) (Value, error) {
		if err := need("lower", args, 1); err != nil {
			return Value{}, err
		}
		return str(strings.ToLower(args[0].String())), nil
	},
	"size": func(env *Env, args []Value) (Value, error) {
		if err := need("size", args, 1); err != nil {
			return Value{}, err
		}
		n, ok := conftypes.ParseSize(args[0].String())
		if !ok {
			return num(0), nil
		}
		return num(float64(n)), nil
	},
	// FS.* accessors.
	"exists": func(env *Env, args []Value) (Value, error) {
		if err := need("exists", args, 1); err != nil {
			return Value{}, err
		}
		return boolean(env.Image != nil && env.Image.Exists(args[0].String())), nil
	},
	"isDir": func(env *Env, args []Value) (Value, error) {
		if err := need("isDir", args, 1); err != nil {
			return Value{}, err
		}
		return boolean(env.Image != nil && env.Image.IsDir(args[0].String())), nil
	},
	"isFile": func(env *Env, args []Value) (Value, error) {
		if err := need("isFile", args, 1); err != nil {
			return Value{}, err
		}
		return boolean(env.Image != nil && env.Image.IsFile(args[0].String())), nil
	},
	"owner": func(env *Env, args []Value) (Value, error) {
		if err := need("owner", args, 1); err != nil {
			return Value{}, err
		}
		if env.Image == nil {
			return str(""), nil
		}
		if fm := env.Image.Resolve(args[0].String()); fm != nil {
			return str(fm.Owner), nil
		}
		return str(""), nil
	},
	"group": func(env *Env, args []Value) (Value, error) {
		if err := need("group", args, 1); err != nil {
			return Value{}, err
		}
		if env.Image == nil {
			return str(""), nil
		}
		if fm := env.Image.Resolve(args[0].String()); fm != nil {
			return str(fm.Group), nil
		}
		return str(""), nil
	},
	"perm": func(env *Env, args []Value) (Value, error) {
		if err := need("perm", args, 1); err != nil {
			return Value{}, err
		}
		if env.Image == nil {
			return str(""), nil
		}
		if fm := env.Image.Resolve(args[0].String()); fm != nil {
			return str(fmt.Sprintf("0%o", fm.Mode&0o777)), nil
		}
		return str(""), nil
	},
	"accessible": func(env *Env, args []Value) (Value, error) {
		if err := need("accessible", args, 2); err != nil {
			return Value{}, err
		}
		return boolean(env.Image != nil && env.Image.Accessible(args[1].String(), args[0].String())), nil
	},
	"writable": func(env *Env, args []Value) (Value, error) {
		if err := need("writable", args, 2); err != nil {
			return Value{}, err
		}
		return boolean(env.Image != nil && env.Image.Writable(args[1].String(), args[0].String())), nil
	},
	// Acct.* accessors.
	"userExists": func(env *Env, args []Value) (Value, error) {
		if err := need("userExists", args, 1); err != nil {
			return Value{}, err
		}
		return boolean(env.Image != nil && env.Image.UserExists(args[0].String())), nil
	},
	"groupExists": func(env *Env, args []Value) (Value, error) {
		if err := need("groupExists", args, 1); err != nil {
			return Value{}, err
		}
		return boolean(env.Image != nil && env.Image.GroupExists(args[0].String())), nil
	},
	"userInGroup": func(env *Env, args []Value) (Value, error) {
		if err := need("userInGroup", args, 2); err != nil {
			return Value{}, err
		}
		return boolean(env.Image != nil && env.Image.UserInGroup(args[0].String(), args[1].String())), nil
	},
	"primaryGroup": func(env *Env, args []Value) (Value, error) {
		if err := need("primaryGroup", args, 1); err != nil {
			return Value{}, err
		}
		if env.Image == nil {
			return str(""), nil
		}
		return str(env.Image.PrimaryGroup(args[0].String())), nil
	},
	// Service.* accessors.
	"portRegistered": func(env *Env, args []Value) (Value, error) {
		if err := need("portRegistered", args, 1); err != nil {
			return Value{}, err
		}
		n, ok := args[0].asNumber()
		return boolean(ok && env.Image != nil && env.Image.PortRegistered(int(n))), nil
	},
	// Env.* accessor.
	"envVar": func(env *Env, args []Value) (Value, error) {
		if err := need("envVar", args, 1); err != nil {
			return Value{}, err
		}
		if env.Image == nil {
			return str(""), nil
		}
		return str(env.Image.Env[args[0].String()]), nil
	},
	// Sec.* accessor.
	"selinux": func(env *Env, args []Value) (Value, error) {
		if err := need("selinux", args, 0); err != nil {
			return Value{}, err
		}
		if env.Image == nil {
			return str(""), nil
		}
		return str(env.Image.OS.SELinux), nil
	},
	// HW.* accessors (zero when hardware is unavailable, as on dormant
	// images).
	"memBytes": func(env *Env, args []Value) (Value, error) {
		if err := need("memBytes", args, 0); err != nil {
			return Value{}, err
		}
		if env.Image == nil || !env.Image.HW.Present {
			return num(0), nil
		}
		return num(float64(env.Image.HW.MemBytes)), nil
	},
	"cpuCores": func(env *Env, args []Value) (Value, error) {
		if err := need("cpuCores", args, 0); err != nil {
			return Value{}, err
		}
		if env.Image == nil || !env.Image.HW.Present {
			return num(0), nil
		}
		return num(float64(env.Image.HW.CPUCores)), nil
	},
}
