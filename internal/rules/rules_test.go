package rules

import (
	"strings"
	"testing"

	"repro/internal/assemble"
	"repro/internal/conftypes"
	"repro/internal/dataset"
	"repro/internal/stats"
	"repro/internal/sysimage"
	"repro/internal/templates"
)

// trainingImage builds a MySQL-style image with the datadir/user ownership
// correlation intact and some diversity in paths.
func trainingImage(id, datadir, user string) *sysimage.Image {
	im := sysimage.New(id)
	im.Users["root"] = &sysimage.User{Name: "root", UID: 0, GID: 0, IsAdmin: true}
	im.Users[user] = &sysimage.User{Name: user, UID: 27, GID: 27}
	im.Groups[user] = &sysimage.Group{Name: user, GID: 27}
	im.Services = []sysimage.Service{{Name: "mysql", Port: 3306, Protocol: "tcp"}}
	im.AddDir(datadir, user, user, 0o750)
	im.SetConfig("mysql", "/etc/my.cnf",
		"[mysqld]\ndatadir = "+datadir+"\nuser = "+user+"\nnet_buffer_length = 16K\nmax_allowed_packet = "+packetFor(id)+"\n")
	return im
}

// packetFor varies max_allowed_packet across images so the entropy filter
// keeps it.
func packetFor(id string) string {
	sizes := []string{"16M", "32M", "64M", "128M"}
	return sizes[len(id)%len(sizes)]
}

func buildTraining(t *testing.T, n int) (*dataset.Dataset, map[string]*sysimage.Image) {
	t.Helper()
	dirs := []string{"/var/lib/mysql", "/data/mysql", "/srv/mysql", "/opt/mysql/data"}
	images := make([]*sysimage.Image, 0, n)
	byID := map[string]*sysimage.Image{}
	for i := 0; i < n; i++ {
		id := strings.Repeat("x", i%7+1) + "-img"
		// A minority of images run MySQL as a differently named account;
		// ownership still tracks the configured user, so the ownership
		// correlation holds while the user attribute keeps enough entropy
		// to survive the filter.
		user := "mysql"
		if i%5 == 0 {
			user = "mysqld_safe"
		}
		im := trainingImage(id+string(rune('a'+i%26)), dirs[i%len(dirs)], user)
		images = append(images, im)
		byID[im.ID] = im
	}
	d, err := assemble.New().AssembleTraining(images)
	if err != nil {
		t.Fatal(err)
	}
	return d, byID
}

func TestInferOwnershipRule(t *testing.T) {
	d, imgs := buildTraining(t, 20)
	e := NewEngine()
	rules := e.Infer(d, imgs)
	var found *Rule
	for _, r := range rules {
		if r.Template == "owner" && r.AttrA == "mysql:mysqld/datadir" && r.AttrB == "mysql:mysqld/user" {
			found = r
		}
	}
	if found == nil {
		t.Fatalf("datadir => user ownership rule not learned; got %d rules", len(rules))
	}
	if found.Confidence < 0.9 {
		t.Fatalf("ownership confidence = %v", found.Confidence)
	}
}

func TestEntropyFilterDropsConstantAttrs(t *testing.T) {
	d, imgs := buildTraining(t, 20)
	e := NewEngine()
	withFilter := e.Infer(d, imgs)
	e.Config.UseEntropyFilter = false
	withoutFilter := e.Infer(d, imgs)
	if len(withoutFilter) <= len(withFilter) {
		t.Fatalf("entropy filter should reduce rules: %d vs %d", len(withoutFilter), len(withFilter))
	}
	// net_buffer_length is constant (16K) so size-lt rules involving it
	// must be filtered, reproducing the paper's false-negative example.
	for _, r := range withFilter {
		if strings.Contains(r.AttrA, "net_buffer_length") || strings.Contains(r.AttrB, "net_buffer_length") {
			t.Fatalf("constant attribute survived entropy filter: %s", r)
		}
	}
	foundWithout := false
	for _, r := range withoutFilter {
		if strings.Contains(r.AttrA, "net_buffer_length") && r.Template == "size-lt" {
			foundWithout = true
		}
	}
	if !foundWithout {
		t.Fatal("without entropy filter the size rule should exist (the FN the paper reports)")
	}
}

func TestSupportFilter(t *testing.T) {
	d, imgs := buildTraining(t, 10)
	// Add one image with a unique pair of attributes: support 1/11 < 10%.
	extra := trainingImage("rare", "/var/lib/mysql", "mysql")
	extra.SetConfig("mysql", "/etc/my.cnf",
		"[mysqld]\ndatadir = /var/lib/mysql\nuser = mysql\nrare_a = 5\nrare_b = 10\nmax_allowed_packet = 32M\nnet_buffer_length = 16K\n")
	images := []*sysimage.Image{extra}
	for _, im := range imgs {
		images = append(images, im)
	}
	byID := map[string]*sysimage.Image{}
	for _, im := range images {
		byID[im.ID] = im
	}
	d2, err := assemble.New().AssembleTraining(images)
	if err != nil {
		t.Fatal(err)
	}
	_ = d
	e := NewEngine()
	e.Config.UseEntropyFilter = false
	rules := e.Infer(d2, byID)
	for _, r := range rules {
		if strings.Contains(r.AttrA, "rare_a") || strings.Contains(r.AttrB, "rare_b") {
			t.Fatalf("low-support rule survived: %s", r)
		}
	}
}

func TestConfidenceFilter(t *testing.T) {
	// Build a dataset where A < B holds on only half the rows.
	d := dataset.New()
	d.DeclareAttr("a", conftypes.TypeNumber, false)
	d.DeclareAttr("b", conftypes.TypeNumber, false)
	for i := 0; i < 10; i++ {
		r := d.NewRow(strings.Repeat("s", i+1))
		if i%2 == 0 {
			d.Add(r, "a", "1")
			d.Add(r, "b", "2")
		} else {
			d.Add(r, "a", "2")
			d.Add(r, "b", "1")
		}
	}
	e := NewEngine()
	e.Config.UseEntropyFilter = false
	rules := e.Infer(d, nil)
	for _, r := range rules {
		if r.Template == "num-lt" {
			t.Fatalf("50%% confidence rule survived: %s", r)
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	d, imgs := buildTraining(t, 15)
	e := NewEngine()
	par := e.Infer(d, imgs)
	ser := e.InferSerial(d, imgs)
	if len(par) != len(ser) {
		t.Fatalf("parallel %d rules, serial %d", len(par), len(ser))
	}
	for i := range par {
		if par[i].Key() != ser[i].Key() || par[i].Confidence != ser[i].Confidence {
			t.Fatalf("rule %d differs: %s vs %s", i, par[i], ser[i])
		}
	}
}

func TestSelfAndAugmentPairsExcluded(t *testing.T) {
	d, imgs := buildTraining(t, 12)
	e := NewEngine()
	e.Config.UseEntropyFilter = false
	for _, r := range e.Infer(d, imgs) {
		if r.AttrA == r.AttrB {
			t.Fatalf("self pair: %s", r)
		}
		if strings.HasPrefix(r.AttrA, r.AttrB+".") || strings.HasPrefix(r.AttrB, r.AttrA+".") {
			t.Fatalf("base/augment tautology: %s", r)
		}
	}
}

func TestCandidateCountScalesWithTypes(t *testing.T) {
	d, _ := buildTraining(t, 5)
	e := NewEngine()
	typed := e.CandidateCount(d)
	if typed == 0 {
		t.Fatal("no candidates at all")
	}
	// Untyped ablation: treating every attribute as every type explodes the
	// space. Simulate by making templates accept Strings everywhere.
	allString := dataset.New()
	for _, a := range d.Attributes() {
		allString.DeclareAttr(a.Name, conftypes.TypeNumber, false)
	}
	e2 := NewEngine()
	untypedCount := 0
	for _, tpl := range e2.Templates {
		if tpl.ID == "num-lt" {
			n := len(allString.Attributes())
			untypedCount += n * (n - 1)
		}
	}
	if untypedCount <= typed {
		t.Fatalf("untyped space (%d) should exceed typed space (%d)", untypedCount, typed)
	}
}

func TestRuleSetRoundTrip(t *testing.T) {
	d, imgs := buildTraining(t, 12)
	e := NewEngine()
	rules := e.Infer(d, imgs)
	rs := NewRuleSet(rules, d)
	data, err := rs.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalRuleSet(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rules) != len(rs.Rules) {
		t.Fatalf("round trip lost rules: %d vs %d", len(back.Rules), len(rs.Rules))
	}
	if back.Types["mysql:mysqld/datadir"] != string(conftypes.TypeFilePath) {
		t.Fatal("types lost in round trip")
	}
	if _, err := UnmarshalRuleSet([]byte("{bad")); err == nil {
		t.Fatal("bad JSON should error")
	}
}

func TestCustomTemplateParticipates(t *testing.T) {
	d, imgs := buildTraining(t, 12)
	tpl, err := templates.ParseSpec("my-size", "[A:Size] < [B:Size]")
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine()
	e.Templates = nil
	e.AddTemplate(tpl)
	e.Config.UseEntropyFilter = false
	rules := e.Infer(d, imgs)
	found := false
	for _, r := range rules {
		if r.Template == "my-size" {
			found = true
		}
	}
	if !found {
		t.Fatalf("custom template produced no rules (have %d rules)", len(rules))
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig()
	if c.MinConfidence != 0.90 || c.MinSupportFraction != 0.10 {
		t.Fatalf("thresholds = %+v", c)
	}
	if c.EntropyThreshold != stats.DefaultEntropyThreshold || !c.UseEntropyFilter {
		t.Fatalf("entropy config = %+v", c)
	}
}

func TestRuleString(t *testing.T) {
	r := &Rule{Template: "owner", AttrA: "a", AttrB: "b", Support: 3, Confidence: 1}
	if !strings.Contains(r.String(), "owner(a, b)") {
		t.Fatalf("String = %q", r.String())
	}
	if r.Key() != "owner|a|b" {
		t.Fatalf("Key = %q", r.Key())
	}
}

func TestEmptyDataset(t *testing.T) {
	e := NewEngine()
	if got := e.Infer(dataset.New(), nil); len(got) != 0 {
		t.Fatalf("empty dataset produced rules: %v", got)
	}
}

func TestInferStats(t *testing.T) {
	d, imgs := buildTraining(t, 20)
	e := NewEngine()
	learned := e.Infer(d, imgs)
	s := e.LastStats
	if s.Candidates == 0 {
		t.Fatal("no candidates counted")
	}
	if s.Kept != len(learned) {
		t.Fatalf("kept = %d, rules = %d", s.Kept, len(learned))
	}
	total := s.Kept + s.NoEvidence + s.SupportRejected + s.ConfidenceRejected + s.EntropyRejected
	if total != s.Candidates {
		t.Fatalf("stats do not partition the candidate space: %+v", s)
	}
	if s.EntropyRejected == 0 {
		t.Fatal("entropy filter should reject something on this corpus")
	}
	// Serial run produces the same accounting.
	e2 := NewEngine()
	e2.InferSerial(d, imgs)
	if e2.LastStats != s {
		t.Fatalf("serial stats differ: %+v vs %+v", e2.LastStats, s)
	}
}
