package corpus

import (
	"fmt"
	"math/rand"

	"repro/internal/sysimage"
)

// Training population sizes matching the paper (Section 7): 127 Apache
// images, 187 MySQL images, 123 PHP images.
const (
	TrainingApache = 127
	TrainingMySQL  = 187
	TrainingPHP    = 123
)

// BuildApp generates one clean image for app (with optional hardware).
func BuildApp(app, id string, rng *rand.Rand, hardware bool) (*sysimage.Image, error) {
	b := NewBuilder(id, rng)
	switch app {
	case "apache":
		b.BuildApache(ApacheOptions{Hardware: hardware})
	case "mysql":
		b.BuildMySQL(MySQLOptions{Hardware: hardware})
	case "php":
		b.BuildPHP(PHPOptions{Hardware: hardware})
	case "sshd":
		b.BuildSSHD(SSHDOptions{Hardware: hardware})
	default:
		return nil, fmt.Errorf("corpus: unknown app %q", app)
	}
	return b.Img, nil
}

// Training generates n clean training images for app. Dormant EC2 template
// images have no hardware specification, matching the paper's crawl.
func Training(app string, n int, seed int64) ([]*sysimage.Image, error) {
	rng := rand.New(rand.NewSource(seed))
	images := make([]*sysimage.Image, 0, n)
	for i := 0; i < n; i++ {
		img, err := BuildApp(app, fmt.Sprintf("%s-train-%03d", app, i), rng, false)
		if err != nil {
			return nil, err
		}
		images = append(images, img)
	}
	return images, nil
}

// ByID indexes images by their ID.
func ByID(images []*sysimage.Image) map[string]*sysimage.Image {
	m := make(map[string]*sysimage.Image, len(images))
	for _, im := range images {
		m[im.ID] = im
	}
	return m
}

// Latent is a ground-truth latent misconfiguration planted in a target
// population (Table 10 categories).
type Latent struct {
	ImageID  string
	Category string // "FilePath", "Permission", "ValueCompare"
	Attr     string
	Desc     string
}

// TargetPopulation is a generated target set with its ground truth.
type TargetPopulation struct {
	Images []*sysimage.Image
	Truth  []Latent
}

// categoryMix drives how many issues of each category a population gets.
type categoryMix struct {
	filePath     int
	permission   int
	valueCompare int
}

// EC2Mix and PrivateCloudMix reproduce Table 10's category skew: EC2
// template images are dominated by value-comparison violations, while the
// long-deployed private cloud mostly shows file-path drift.
var (
	EC2Mix          = categoryMix{filePath: 3, permission: 10, valueCompare: 24}
	PrivateCloudMix = categoryMix{filePath: 10, permission: 3, valueCompare: 11}
)

// EC2Targets generates a 120-image EC2-like target population with the
// EC2Mix of latent issues concentrated on 25 images (the paper found its
// 37 EC2 issues in 25 images — some images carry several).
func EC2Targets(seed int64) (*TargetPopulation, error) {
	return targets("ec2", 120, seed, EC2Mix, false, 25)
}

// PrivateCloudTargets generates a 300-image private-cloud-like population
// with the PrivateCloudMix of latent issues concentrated on 22 images.
// Private-cloud instances are running systems, so they carry hardware
// specifications.
func PrivateCloudTargets(seed int64) (*TargetPopulation, error) {
	return targets("pc", 300, seed, PrivateCloudMix, true, 22)
}

func targets(prefix string, n int, seed int64, mix categoryMix, hardware bool, spread int) (*TargetPopulation, error) {
	rng := rand.New(rand.NewSource(seed))
	apps := []string{"apache", "mysql", "php"}
	pop := &TargetPopulation{}
	for i := 0; i < n; i++ {
		app := apps[i%len(apps)]
		img, err := BuildApp(app, fmt.Sprintf("%s-%s-%03d", prefix, app, i), rng, hardware)
		if err != nil {
			return nil, err
		}
		pop.Images = append(pop.Images, img)
	}
	// Plant issues on a bounded set of randomly chosen images: the cursor
	// wraps after `spread` distinct images, so later issues land on
	// already-affected images (with a different category) just as the
	// paper's populations carried several issues per affected image.
	order := rng.Perm(n)
	if spread <= 0 || spread > n {
		spread = n
	}
	cursor := 0
	nextImage := func() *sysimage.Image {
		im := pop.Images[order[cursor%spread]]
		cursor++
		return im
	}
	for i := 0; i < mix.permission; i++ {
		if l, ok := plantPermission(nextImage(), rng); ok {
			pop.Truth = append(pop.Truth, l)
		} else {
			i--
		}
	}
	for i := 0; i < mix.filePath; i++ {
		if l, ok := plantFilePath(nextImage(), rng); ok {
			pop.Truth = append(pop.Truth, l)
		} else {
			i--
		}
	}
	for i := 0; i < mix.valueCompare; i++ {
		if l, ok := plantValueCompare(nextImage(), rng); ok {
			pop.Truth = append(pop.Truth, l)
		} else {
			i--
		}
	}
	return pop, nil
}

// plantPermission introduces a permission/ownership issue appropriate to
// the image's app.
func plantPermission(img *sysimage.Image, rng *rand.Rand) (Latent, bool) {
	switch {
	case img.ConfigFor("mysql") != nil:
		f, ok := findConfValue(img, "mysql", "log-error")
		if !ok {
			return Latent{}, false
		}
		if fm := img.Lookup(f); fm != nil {
			fm.Mode = 0o644 // world-readable MySQL log: the security finding
			return Latent{ImageID: img.ID, Category: "Permission", Attr: "mysql:mysqld/log-error",
				Desc: "MySQL log file readable by other users (sensitive data exposure)"}, true
		}
	case img.ConfigFor("apache") != nil:
		cf := img.ConfigFor("apache")
		f, err := confValueAt(cf.Content, "apache", cf.Path, "Alias", 1)
		if err != nil {
			return Latent{}, false
		}
		if fm := img.Lookup(f); fm != nil {
			fm.Owner = "root"
			fm.Mode = 0o755
			return Latent{ImageID: img.ID, Category: "Permission", Attr: "apache:Alias/arg2",
				Desc: "upload directory not writable by the Apache user"}, true
		}
	case img.ConfigFor("php") != nil:
		f, ok := findConfValue(img, "php", "session.save_path")
		if !ok || f == "/tmp" {
			return Latent{}, false
		}
		if fm := img.Lookup(f); fm != nil {
			fm.Mode = 0o700
			fm.Group = "root"
			return Latent{ImageID: img.ID, Category: "Permission", Attr: "php:Session/session.save_path",
				Desc: "session directory not accessible to the web server"}, true
		}
	}
	return Latent{}, false
}

// plantFilePath breaks a path configuration: the configured object is
// missing or of the wrong kind.
func plantFilePath(img *sysimage.Image, rng *rand.Rand) (Latent, bool) {
	switch {
	case img.ConfigFor("php") != nil:
		cf := img.ConfigFor("php")
		old, ok := findConfValue(img, "php", "extension_dir")
		if !ok {
			return Latent{}, false
		}
		img.SetConfig("php", cf.Path, replaceValue(cf.Content, old, "/usr/lib/php/modules-old"))
		return Latent{ImageID: img.ID, Category: "FilePath", Attr: "php:PHP/extension_dir",
			Desc: "extension_dir points to a non-existent directory"}, true
	case img.ConfigFor("mysql") != nil:
		cf := img.ConfigFor("mysql")
		old, ok := findConfValue(img, "mysql", "tmpdir")
		if !ok {
			return Latent{}, false
		}
		img.SetConfig("mysql", cf.Path, replaceValue(cf.Content, old, "/var/tmp/mysql"))
		return Latent{ImageID: img.ID, Category: "FilePath", Attr: "mysql:mysqld/tmpdir",
			Desc: "tmpdir points to a non-existent directory"}, true
	case img.ConfigFor("apache") != nil:
		cf := img.ConfigFor("apache")
		old, ok := findConfValue(img, "apache", "ErrorLog")
		if !ok {
			return Latent{}, false
		}
		img.SetConfig("apache", cf.Path, replaceValue(cf.Content, old, "/var/log/httpd-missing/error_log"))
		return Latent{ImageID: img.ID, Category: "FilePath", Attr: "apache:ErrorLog",
			Desc: "ErrorLog directory does not exist"}, true
	}
	return Latent{}, false
}

// plantValueCompare violates an ordering correlation.
func plantValueCompare(img *sysimage.Image, rng *rand.Rand) (Latent, bool) {
	switch {
	case img.ConfigFor("php") != nil:
		cf := img.ConfigFor("php")
		post, ok := findConfValue(img, "php", "post_max_size")
		if !ok {
			return Latent{}, false
		}
		// upload_max_filesize jumps above post_max_size: uploads of
		// allowed-size files fail (the paper's PHP finding).
		img.SetConfig("php", cf.Path, replaceLine(cf.Content, "upload_max_filesize", "upload_max_filesize = 1G"))
		_ = post
		return Latent{ImageID: img.ID, Category: "ValueCompare", Attr: "php:PHP/upload_max_filesize",
			Desc: "upload_max_filesize exceeds post_max_size"}, true
	case img.ConfigFor("apache") != nil:
		cf := img.ConfigFor("apache")
		img.SetConfig("apache", cf.Path, replaceLine(cf.Content, "MinSpareServers", "MinSpareServers 600"))
		return Latent{ImageID: img.ID, Category: "ValueCompare", Attr: "apache:MinSpareServers",
			Desc: "MinSpareServers exceeds MaxSpareServers/MaxClients"}, true
	case img.ConfigFor("mysql") != nil:
		cf := img.ConfigFor("mysql")
		img.SetConfig("mysql", cf.Path, replaceLine(cf.Content, "max_allowed_packet", "max_allowed_packet = 4K"))
		return Latent{ImageID: img.ID, Category: "ValueCompare", Attr: "mysql:mysqld/max_allowed_packet",
			Desc: "max_allowed_packet below net_buffer_length"}, true
	}
	return Latent{}, false
}
