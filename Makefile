GO ?= go

.PHONY: tier1 tier2 bench bench-rules fuzz fmt

# Tier 1: the gate every change must keep green — build + full test suite.
tier1:
	$(GO) build ./... && $(GO) test ./...

# Tier 2: static analysis + the full suite under the race detector.
# The parallel assembly, rule inference, batch scan, and eval paths all
# run real goroutine pools, so tier 2 is where data races would surface.
tier2:
	$(GO) vet ./... && $(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# Rule-inference perf trajectory: run the RuleInference benches (serial
# oracle, parallel, indexed with the corpus-scaling axis) and record the
# machine-readable results so speedups/regressions are tracked across PRs.
bench-rules:
	$(GO) test -run '^$$' -bench=RuleInference -benchmem -json . > BENCH_rules.json
	@grep -o '"Output":"[^"]*"' BENCH_rules.json | sed 's/^"Output":"//;s/"$$//' | \
		awk '{gsub(/\\t/,"\t");gsub(/\\n/,"\n");printf "%s",$$0}' | grep 'ns/op'

# Short fuzz pass over each config-parser dialect (seed corpus always
# runs as part of tier 1; this explores beyond it).
fuzz:
	$(GO) test ./internal/confparse -fuzz FuzzApacheParse -fuzztime 10s
	$(GO) test ./internal/confparse -fuzz FuzzINIParse -fuzztime 10s
	$(GO) test ./internal/confparse -fuzz FuzzSSHDParse -fuzztime 10s

fmt:
	gofmt -l .
