package corpus

import (
	"fmt"
	"strings"

	"repro/internal/conftypes"
)

// ApacheOptions tunes Apache image generation.
type ApacheOptions struct {
	Hardware bool
	// SymlinkInDocroot plants a symbolic link in the document root (used
	// by real-world case #6; clean training images never have one).
	SymlinkInDocroot bool
	// LimitRequestBody, when positive, emits a LimitRequestBody directive
	// with this byte count (the LAMP stack couples it to PHP's upload
	// limits).
	LimitRequestBody int64
}

// BuildApache generates one coherent Apache httpd image.
func (b *Builder) BuildApache(opts ApacheOptions) {
	b.SetOS()
	if opts.Hardware {
		b.SetHardware()
	}
	img := b.Img
	rng := b.Rng

	user := PickWeighted(rng, []string{"apache", "www-data", "nobody"}, []int{5, 3, 2})
	if user != "nobody" {
		b.AddAccount(user, 48)
	}

	serverRoot := Pick(rng, []string{"/etc/httpd", "/etc/apache2"})
	img.AddDir(serverRoot, "root", "root", 0o755)
	img.AddDir(serverRoot+"/conf", "root", "root", 0o755)
	img.AddDir(serverRoot+"/modules", "root", "root", 0o755)

	modules := [][2]string{
		{"php5_module", "modules/libphp5.so"},
		{"rewrite_module", "modules/mod_rewrite.so"},
		{"ssl_module", "modules/mod_ssl.so"},
		{"alias_module", "modules/mod_alias.so"},
	}
	nMods := 2 + rng.Intn(3)
	for i := 0; i < nMods; i++ {
		img.AddRegular(serverRoot+"/"+modules[i][1], "root", "root", 0o755, int64(rng.Intn(512)+64)<<10)
	}

	docRoot := Pick(rng, []string{"/var/www/html", "/var/www", "/srv/www/htdocs"})
	img.AddDir(docRoot, "root", user, 0o755)
	img.AddRegular(docRoot+"/index.html", "root", user, 0o644, 1024)
	if opts.SymlinkInDocroot {
		img.AddSymlink(docRoot+"/shared", "/opt", "root", user)
	}

	// The upload area is owned by the serving user so visitors can upload
	// (real-world case #7 breaks this).
	uploadDir := docRoot + "/uploads"
	img.AddDir(uploadDir, user, user, 0o775)

	errorLog := Pick(rng, []string{"/var/log/httpd/error_log", "/var/log/apache2/error.log"})
	img.AddRegular(errorLog, "root", "root", 0o644, int64(rng.Intn(4))<<20)
	pidFile := "/var/run/httpd.pid"
	img.AddRegular(pidFile, "root", "root", 0o644, 8)

	listen := PickWeighted(rng, []string{"80", "8080"}, []int{8, 2})

	// Worker tuning: MinSpareServers < MaxSpareServers < MaxClients holds
	// by construction.
	minSpare := Pick(rng, []int{5, 10})
	maxSpare := minSpare * (2 + rng.Intn(2))
	maxClients := Pick(rng, []int{150, 256, 512})
	startServers := minSpare
	timeout := Pick(rng, []int{60, 120, 300})
	keepAlive := PickWeighted(rng, []string{"On", "Off"}, []int{7, 3})

	var sb strings.Builder
	fmt.Fprintf(&sb, "ServerRoot %q\n", serverRoot)
	fmt.Fprintf(&sb, "Listen %s\n", listen)
	fmt.Fprintf(&sb, "User %s\n", user)
	fmt.Fprintf(&sb, "Group %s\n", user)
	fmt.Fprintf(&sb, "ServerAdmin root@localhost\n")
	fmt.Fprintf(&sb, "DocumentRoot %q\n", docRoot)
	fmt.Fprintf(&sb, "ErrorLog %s\n", errorLog)
	fmt.Fprintf(&sb, "PidFile %s\n", pidFile)
	fmt.Fprintf(&sb, "Timeout %d\n", timeout)
	fmt.Fprintf(&sb, "KeepAlive %s\n", keepAlive)
	fmt.Fprintf(&sb, "HostnameLookups Off\n") // constant across the fleet
	fmt.Fprintf(&sb, "StartServers %d\n", startServers)
	fmt.Fprintf(&sb, "MinSpareServers %d\n", minSpare)
	fmt.Fprintf(&sb, "MaxSpareServers %d\n", maxSpare)
	fmt.Fprintf(&sb, "MaxClients %d\n", maxClients)
	// About half the fleet keeps module loading in an included conf.d
	// fragment — the multi-file layout real distributions ship. Both the
	// main file and the fragment are captured; the Include argument itself
	// is a PartialFilePath correlated with ServerRoot (concat template).
	includeModules := Chance(rng, 0.5)
	var frag strings.Builder
	for i := 0; i < nMods; i++ {
		if includeModules {
			fmt.Fprintf(&frag, "LoadModule %s %s\n", modules[i][0], modules[i][1])
		} else {
			fmt.Fprintf(&sb, "LoadModule %s %s\n", modules[i][0], modules[i][1])
		}
	}
	if includeModules {
		fmt.Fprintf(&sb, "Include conf.d/modules.conf\n")
	}
	fmt.Fprintf(&sb, "DirectoryIndex index.html\n")
	fmt.Fprintf(&sb, "Alias /uploads/ %s\n", uploadDir)
	if opts.LimitRequestBody > 0 {
		fmt.Fprintf(&sb, "LimitRequestBody %d\n", opts.LimitRequestBody)
	}
	// The root directory is locked down; the document root gets its own
	// section (the correlation behind real-world case #1).
	sb.WriteString("<Directory />\n")
	sb.WriteString("    AllowOverride None\n")
	sb.WriteString("    Require all denied\n")
	sb.WriteString("</Directory>\n")
	fmt.Fprintf(&sb, "<Directory %q>\n", docRoot)
	fmt.Fprintf(&sb, "    Options %s\n", Pick(rng, []string{"Indexes", "None"}))
	sb.WriteString("    AllowOverride None\n")
	sb.WriteString("    Require all granted\n")
	sb.WriteString("</Directory>\n")

	img.SetConfig("apache", serverRoot+"/conf/httpd.conf", sb.String())
	if includeModules {
		img.AddDir(serverRoot+"/conf.d", "root", "root", 0o755)
		img.AddRegular(serverRoot+"/conf.d/modules.conf", "root", "root", 0o644, int64(frag.Len()))
		img.AddConfig("apache", serverRoot+"/conf.d/modules.conf", frag.String())
	}
}

// ApacheEntryTypes is the ground-truth semantic type of each Apache
// attribute the generator can emit.
func ApacheEntryTypes() map[string]conftypes.Type {
	return map[string]conftypes.Type{
		"apache:ServerRoot":       conftypes.TypeFilePath,
		"apache:Listen":           conftypes.TypePortNumber,
		"apache:User":             conftypes.TypeUserName,
		"apache:Group":            conftypes.TypeGroupName,
		"apache:ServerAdmin":      conftypes.TypeString,
		"apache:DocumentRoot":     conftypes.TypeFilePath,
		"apache:ErrorLog":         conftypes.TypeFilePath,
		"apache:PidFile":          conftypes.TypeFilePath,
		"apache:Timeout":          conftypes.TypeNumber,
		"apache:KeepAlive":        conftypes.TypeBoolean,
		"apache:HostnameLookups":  conftypes.TypeBoolean,
		"apache:StartServers":     conftypes.TypeNumber,
		"apache:MinSpareServers":  conftypes.TypeNumber,
		"apache:MaxSpareServers":  conftypes.TypeNumber,
		"apache:MaxClients":       conftypes.TypeNumber,
		"apache:LoadModule/arg1":  conftypes.TypeString,
		"apache:LoadModule/arg2":  conftypes.TypePartialFilePath,
		"apache:DirectoryIndex":   conftypes.TypeFileName,
		"apache:Alias/arg1":       conftypes.TypeString,
		"apache:Alias/arg2":       conftypes.TypeFilePath,
		"apache:LimitRequestBody": conftypes.TypeNumber,
		"apache:Include":          conftypes.TypePartialFilePath,
		"apache:Directory":        conftypes.TypeFilePath,
	}
}

// ApacheTrueRules lists correlations that hold by construction in clean
// Apache images.
func ApacheTrueRules() []TrueRule {
	return []TrueRule{
		{Template: "concat", AttrA: "apache:ServerRoot", AttrB: "apache:LoadModule/arg2"},
		{Template: "concat", AttrA: "apache:ServerRoot", AttrB: "apache:Include"},
		{Template: "eq", AttrA: "apache:Group", AttrB: "apache:User"},
		{Template: "match-one", AttrA: "apache:User", AttrB: "apache:Group"},
		{Template: "match-one", AttrA: "apache:Group", AttrB: "apache:User"},
		{Template: "match-one", AttrA: "apache:DocumentRoot", AttrB: "apache:Directory"},
		{Template: "match-one", AttrA: "apache:Directory", AttrB: "apache:DocumentRoot"},
		{Template: "num-lt", AttrA: "apache:MinSpareServers", AttrB: "apache:MaxSpareServers"},
		{Template: "num-lt", AttrA: "apache:MinSpareServers", AttrB: "apache:MaxClients"},
		{Template: "num-lt", AttrA: "apache:MaxSpareServers", AttrB: "apache:MaxClients"},
		{Template: "num-lt", AttrA: "apache:StartServers", AttrB: "apache:MaxClients"},
		{Template: "num-lt", AttrA: "apache:StartServers", AttrB: "apache:MaxSpareServers"},
		{Template: "substr", AttrA: "apache:DocumentRoot", AttrB: "apache:Alias/arg2"},
		{Template: "user-group", AttrA: "apache:User", AttrB: "apache:Group"},
		{Template: "owner", AttrA: "apache:Alias/arg2", AttrB: "apache:User"},
	}
}
