package mining

import "sort"

// FPGrowth mines frequent item sets without candidate generation: it
// compresses the transactions into an FP-tree and recursively mines
// conditional trees per item. It avoids Apriori's repeated scans but the
// number of frequent item sets it materializes still grows exponentially
// with attribute count on dense configuration data — the Table 3 blow-up.
type FPGrowth struct {
	// MaxSets bounds the total number of frequent item sets materialized;
	// 0 means unlimited.
	MaxSets int
}

// Name implements Miner.
func (f *FPGrowth) Name() string { return "fp-growth" }

type fpNode struct {
	item     int
	count    int
	parent   *fpNode
	children map[int]*fpNode
	next     *fpNode // header-table sibling chain
}

type fpTree struct {
	root    *fpNode
	headers map[int]*fpNode // item -> first node in chain
	counts  map[int]int     // item -> total support in this tree
}

func newFPTree() *fpTree {
	return &fpTree{
		root:    &fpNode{item: -1, children: make(map[int]*fpNode)},
		headers: make(map[int]*fpNode),
		counts:  make(map[int]int),
	}
}

// insert adds a (sorted-by-frequency) transaction with a count.
func (t *fpTree) insert(items []int, count int) {
	node := t.root
	for _, it := range items {
		child, ok := node.children[it]
		if !ok {
			child = &fpNode{item: it, parent: node, children: make(map[int]*fpNode)}
			node.children[it] = child
			child.next = t.headers[it]
			t.headers[it] = child
		}
		child.count += count
		t.counts[it] += count
		node = child
	}
}

// Mine implements Miner.
func (f *FPGrowth) Mine(txns [][]int, minSupport int) (*Result, error) {
	if minSupport < 1 {
		minSupport = 1
	}
	counts := countSingletons(txns)

	// Order items by descending global frequency (ties by id) and filter
	// infrequent ones.
	rank := make(map[int]int)
	var order []int
	for it, c := range counts {
		if c >= minSupport {
			order = append(order, it)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if counts[order[i]] != counts[order[j]] {
			return counts[order[i]] > counts[order[j]]
		}
		return order[i] < order[j]
	})
	for r, it := range order {
		rank[it] = r
	}

	tree := newFPTree()
	buf := make([]int, 0, 32)
	for _, txn := range txns {
		buf = buf[:0]
		for _, it := range txn {
			if _, ok := rank[it]; ok {
				buf = append(buf, it)
			}
		}
		sort.Slice(buf, func(i, j int) bool { return rank[buf[i]] < rank[buf[j]] })
		if len(buf) > 0 {
			tree.insert(buf, 1)
		}
	}

	res := &Result{}
	if err := f.growth(tree, nil, minSupport, res); err != nil {
		return nil, err
	}
	sortSets(res.Sets)
	res.Count = len(res.Sets)
	return res, nil
}

// growth recursively mines the tree, extending the current suffix.
func (f *FPGrowth) growth(tree *fpTree, suffix []int, minSupport int, res *Result) error {
	// Items in ascending frequency within this conditional tree.
	var items []int
	for it, c := range tree.counts {
		if c >= minSupport {
			items = append(items, it)
		}
	}
	sort.Slice(items, func(i, j int) bool {
		if tree.counts[items[i]] != tree.counts[items[j]] {
			return tree.counts[items[i]] < tree.counts[items[j]]
		}
		return items[i] < items[j]
	})

	for _, it := range items {
		newSet := make([]int, 0, len(suffix)+1)
		newSet = append(newSet, suffix...)
		newSet = append(newSet, it)
		sorted := append([]int(nil), newSet...)
		sort.Ints(sorted)
		res.Sets = append(res.Sets, FrequentSet{Items: sorted, Support: tree.counts[it]})
		if f.MaxSets > 0 && len(res.Sets) > f.MaxSets {
			return ErrBudgetExceeded
		}

		// Build the conditional pattern base for this item.
		cond := newFPTree()
		for node := tree.headers[it]; node != nil; node = node.next {
			var path []int
			for p := node.parent; p != nil && p.item != -1; p = p.parent {
				path = append(path, p.item)
			}
			// path is leaf-to-root; reverse to root-to-leaf.
			for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
				path[l], path[r] = path[r], path[l]
			}
			if len(path) > 0 {
				cond.insert(path, node.count)
			}
		}
		if len(cond.counts) > 0 {
			if err := f.growth(cond, newSet, minSupport, res); err != nil {
				return err
			}
		}
	}
	return nil
}
