// Package inject is the ConfErr substitute: it injects realistic
// configuration errors into an image's configuration file for the
// injection study (Table 8).
//
// The error models follow ConfErr's taxonomy — typographical errors
// (keyboard-proximity typos in entry names and values), structural errors
// (entries moved to the wrong section, omitted entries), and semantic
// errors (numeric/size perturbations, broken paths, swapped identities,
// flipped booleans). As in the paper, injection stays within the scope of
// the configuration file: it never changes file ownership or permissions in
// the environment.
package inject

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/confparse"
	"repro/internal/conftypes"
	"repro/internal/sysimage"
)

// Kind labels an error model.
type Kind string

// The error models.
const (
	KindNameTypo    Kind = "name-typo"    // misspelled entry name
	KindValueTypo   Kind = "value-typo"   // misspelled value
	KindOmission    Kind = "omission"     // entry deleted
	KindNumeric     Kind = "numeric"      // numeric value perturbed
	KindSizeJump    Kind = "size-jump"    // size value scaled way up
	KindPathBreak   Kind = "path-break"   // path truncated/mangled
	KindIdentity    Kind = "identity"     // user/group swapped
	KindBooleanFlip Kind = "boolean-flip" // on<->off
	KindSectionMove Kind = "section-move" // entry moved to wrong section
)

// Kinds lists every error model in a stable order, for harnesses that
// sweep the full taxonomy (one evaluation-matrix row per kind).
var Kinds = []Kind{
	KindNameTypo, KindValueTypo, KindOmission, KindNumeric, KindSizeJump,
	KindPathBreak, KindIdentity, KindBooleanFlip, KindSectionMove,
}

// Injection records one injected error.
type Injection struct {
	Kind Kind
	// Attr is the canonical attribute name of the affected entry
	// (app-prefixed, as the assembler names it). For name typos this is
	// the *new* (misspelled) name; OrigAttr holds the original.
	Attr     string
	OrigAttr string
	Before   string
	After    string
}

// String describes the injection.
func (in Injection) String() string {
	return fmt.Sprintf("%s %s: %q -> %q", in.Kind, in.OrigAttr, in.Before, in.After)
}

// Matches reports whether a warning attribute refers to this injection's
// entry: the attribute itself, an argument column, or an augmented
// attribute derived from it. Name typos match on the misspelled name.
func (in Injection) Matches(attr string) bool {
	for _, base := range []string{in.Attr, in.OrigAttr} {
		if base == "" {
			continue
		}
		if attr == base {
			return true
		}
		if strings.HasPrefix(attr, base) && len(attr) > len(base) {
			switch attr[len(base)] {
			case '.', '/':
				return true
			}
		}
	}
	return false
}

// Injector applies seeded, reproducible error models.
type Injector struct {
	rng *rand.Rand
}

// New returns an injector seeded for reproducibility.
func New(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// keyboard maps each lowercase key to its physical neighbours, for
// ConfErr-style proximity typos.
var keyboard = map[rune]string{
	'a': "sqzw", 'b': "vngh", 'c': "xdfv", 'd': "sfer", 'e': "wrds",
	'f': "dgrt", 'g': "fhty", 'h': "gjyu", 'i': "uojk", 'j': "hkui",
	'k': "jlio", 'l': "kop", 'm': "njk", 'n': "bmhj", 'o': "ipkl",
	'p': "ol", 'q': "wa", 'r': "etdf", 's': "adwx", 't': "ryfg",
	'u': "yihj", 'v': "cfgb", 'w': "qesa", 'x': "zcsd", 'y': "tugh",
	'z': "xas", '_': "-", '-': "_",
}

// typo applies one keyboard-proximity substitution, insertion, or deletion
// to s.
func (in *Injector) typo(s string) string {
	if s == "" {
		return "x"
	}
	runes := []rune(s)
	pos := in.rng.Intn(len(runes))
	switch in.rng.Intn(3) {
	case 0: // substitute with a neighbour
		if ns, ok := keyboard[runes[pos]]; ok && len(ns) > 0 {
			runes[pos] = rune(ns[in.rng.Intn(len(ns))])
			return string(runes)
		}
		return string(runes[:pos]) + string(runes[pos:])[1:] // fall back to deletion
	case 1: // delete
		return string(runes[:pos]) + string(runes[pos+1:])
	default: // duplicate (insertion)
		return string(runes[:pos+1]) + string(runes[pos:])
	}
}

// applicable returns the error models that make sense for an entry given
// its value. Entry omission (KindOmission) is deliberately excluded from
// random campaigns: ConfErr's omission errors are character-level (covered
// by the typo model); silently *removing* an entry is undetectable for
// every peer-comparison approach and would only add noise to Table 8.
func (in *Injector) applicable(e *confparse.Entry) []Kind {
	kinds := []Kind{KindNameTypo}
	v := e.Value()
	if v == "" {
		return kinds
	}
	if _, err := strconv.ParseFloat(v, 64); err == nil {
		kinds = append(kinds, KindNumeric)
	}
	if _, ok := conftypes.ParseSize(v); ok && !isPlainNumber(v) {
		kinds = append(kinds, KindSizeJump)
	}
	if strings.HasPrefix(v, "/") {
		kinds = append(kinds, KindPathBreak)
	}
	if conftypes.IsBooleanWord(v) {
		kinds = append(kinds, KindBooleanFlip)
	}
	if isIdentifier(v) && !conftypes.IsBooleanWord(v) {
		kinds = append(kinds, KindIdentity, KindValueTypo)
	}
	if e.Section != "" {
		kinds = append(kinds, KindSectionMove)
	}
	return kinds
}

func isPlainNumber(v string) bool {
	_, err := strconv.ParseFloat(v, 64)
	return err == nil
}

func isIdentifier(v string) bool {
	for _, r := range v {
		if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_' || r == '-') {
			return false
		}
	}
	return v != ""
}

// Inject applies n random errors to the app's configuration inside img,
// mutating the image in place, and returns the injection log. Each error
// hits a distinct entry.
func (in *Injector) Inject(img *sysimage.Image, app string, n int) ([]Injection, error) {
	cf := img.ConfigFor(app)
	if cf == nil {
		return nil, fmt.Errorf("inject: image %s has no %s configuration", img.ID, app)
	}
	f, err := confparse.Parse(app, cf.Path, cf.Content)
	if err != nil {
		return nil, fmt.Errorf("inject: %w", err)
	}
	if len(f.Entries) == 0 {
		return nil, fmt.Errorf("inject: %s configuration is empty", app)
	}

	// Snapshot entries before mutating: omission shrinks f.Entries.
	entries := append([]*confparse.Entry(nil), f.Entries...)
	var log []Injection
	used := map[int]bool{}
	// A randomly drawn error model can be inapplicable to the drawn entry;
	// make several passes so such misses retry with a different model.
	for pass := 0; pass < 4 && len(log) < n; pass++ {
		for _, idx := range in.rng.Perm(len(entries)) {
			if len(log) >= n {
				break
			}
			if used[idx] {
				continue
			}
			e := entries[idx]
			kinds := in.applicable(e)
			kind := kinds[in.rng.Intn(len(kinds))]
			inj, ok := in.apply(f, e, app, kind)
			if !ok {
				continue
			}
			used[idx] = true
			log = append(log, inj)
		}
	}
	if len(log) < n {
		return log, fmt.Errorf("inject: only %d of %d errors injected (config too small)", len(log), n)
	}
	rendered, err := confparse.Render(f)
	if err != nil {
		return nil, err
	}
	img.SetConfig(app, cf.Path, rendered)
	return log, nil
}

// InjectKind applies up to n errors of exactly one error model to the
// app's configuration inside img, mutating the image in place. Unlike
// Inject, a shortfall is not an error: some models are inapplicable to
// some configurations (a file with no size-typed values yields no
// size-jump injections), and the evaluation matrix treats the achieved
// injection count as the cell's denominator. KindOmission, excluded from
// random campaigns, is allowed here — the matrix measures precisely how
// invisible silent removals are to each detector.
func (in *Injector) InjectKind(img *sysimage.Image, app string, kind Kind, n int) ([]Injection, error) {
	cf := img.ConfigFor(app)
	if cf == nil {
		return nil, fmt.Errorf("inject: image %s has no %s configuration", img.ID, app)
	}
	f, err := confparse.Parse(app, cf.Path, cf.Content)
	if err != nil {
		return nil, fmt.Errorf("inject: %w", err)
	}
	entries := append([]*confparse.Entry(nil), f.Entries...)
	var log []Injection
	for _, idx := range in.rng.Perm(len(entries)) {
		if len(log) >= n {
			break
		}
		e := entries[idx]
		if !in.kindApplicable(e, kind) {
			continue
		}
		inj, ok := in.apply(f, e, app, kind)
		if !ok {
			continue
		}
		log = append(log, inj)
	}
	if len(log) == 0 {
		return nil, nil
	}
	rendered, err := confparse.Render(f)
	if err != nil {
		return nil, err
	}
	img.SetConfig(app, cf.Path, rendered)
	return log, nil
}

// kindApplicable reports whether the error model makes sense for the
// entry. Section pseudo-entries are excluded entirely: their children
// re-open the original container on render, so mutating the container
// yields ambiguous ground truth. Omission applies to any remaining
// entry; everything else defers to the applicable() gate the random
// campaigns use.
func (in *Injector) kindApplicable(e *confparse.Entry, kind Kind) bool {
	if e.IsSection {
		return false
	}
	if kind == KindOmission {
		return true
	}
	for _, k := range in.applicable(e) {
		if k == kind {
			return true
		}
	}
	return false
}

func (in *Injector) apply(f *confparse.File, e *confparse.Entry, app string, kind Kind) (Injection, bool) {
	orig := app + ":" + e.Name()
	before := e.Value()
	inj := Injection{Kind: kind, Attr: orig, OrigAttr: orig, Before: before}
	switch kind {
	case KindNameTypo:
		newKey := in.typo(e.Key)
		if newKey == e.Key || newKey == "" {
			return inj, false
		}
		e.Key = newKey
		inj.Attr = app + ":" + e.Name()
		inj.After = before
	case KindValueTypo:
		nv := in.typo(before)
		if nv == before {
			return inj, false
		}
		e.Values = []string{nv}
		inj.After = nv
	case KindOmission:
		removed := false
		for i, cur := range f.Entries {
			if cur == e {
				f.Entries = append(f.Entries[:i], f.Entries[i+1:]...)
				removed = true
				break
			}
		}
		if !removed {
			return inj, false
		}
		inj.After = "<removed>"
	case KindNumeric:
		x, err := strconv.ParseFloat(before, 64)
		if err != nil {
			return inj, false
		}
		factor := []float64{0, 10, 100, -1}[in.rng.Intn(4)]
		nv := strconv.FormatFloat(x*factor, 'f', -1, 64)
		if factor == -1 {
			nv = strconv.FormatFloat(-x, 'f', -1, 64)
		}
		if nv == before {
			nv = strconv.FormatFloat(x+17, 'f', -1, 64)
		}
		e.Values = []string{nv}
		inj.After = nv
	case KindSizeJump:
		bytes, ok := conftypes.ParseSize(before)
		if !ok || bytes == 0 {
			return inj, false
		}
		nv := conftypes.FormatSize(bytes * 1024)
		e.Values = []string{nv}
		inj.After = nv
	case KindPathBreak:
		if len(before) < 3 {
			return inj, false
		}
		nv := before[:len(before)-1-in.rng.Intn(len(before)/2)]
		if nv == "" || nv == before {
			return inj, false
		}
		e.Values = []string{nv}
		inj.After = nv
	case KindIdentity:
		candidates := []string{"root", "daemon", "games", "backup"}
		nv := candidates[in.rng.Intn(len(candidates))]
		if nv == before {
			nv = "nobody2"
		}
		e.Values = []string{nv}
		inj.After = nv
	case KindBooleanFlip:
		nv := flipBool(before)
		if nv == before {
			return inj, false
		}
		e.Values = []string{nv}
		inj.After = nv
	case KindSectionMove:
		if e.Section == "" {
			return inj, false
		}
		e.Section = "misc"
		inj.Attr = app + ":" + e.Name()
		inj.After = before
	default:
		return inj, false
	}
	return inj, true
}

func flipBool(v string) string {
	switch strings.ToLower(v) {
	case "on":
		return "Off"
	case "off":
		return "On"
	case "true":
		return "false"
	case "false":
		return "true"
	case "yes":
		return "no"
	case "no":
		return "yes"
	case "1":
		return "0"
	case "0":
		return "1"
	default:
		return v
	}
}
